package ires

import (
	"github.com/asap-project/ires/internal/analytics"
	"github.com/asap-project/ires/internal/datagen"
)

// Reference implementations of the analytics operators the paper's
// workflows run, plus the synthetic data generators that substitute for
// the proprietary CDR/WARC inputs. Examples execute these for real at
// laptop scale while the platform schedules them.
type (
	// Edge is one directed call-graph edge.
	Edge = datagen.Edge
	// Document is one corpus entry.
	Document = datagen.Document
	// Vector is a dense feature vector.
	Vector = datagen.Vector
	// SparseVector maps term -> tf-idf weight.
	SparseVector = analytics.SparseVector
	// KMeansResult packages a clustering outcome.
	KMeansResult = analytics.KMeansResult
)

// GenerateCallGraph produces a power-law directed graph with the given
// number of edges (a synthetic CDR trace).
func GenerateCallGraph(edges int, seed int64) []Edge {
	return datagen.CallGraph(edges, seed)
}

// GenerateCorpus produces a Zipf-vocabulary document corpus (a synthetic
// web crawl).
func GenerateCorpus(docs, meanLen int, seed int64) []Document {
	return datagen.Corpus(docs, meanLen, seed)
}

// PageRank runs power iteration over the edge list.
func PageRank(edges []Edge, iterations int, damping float64) []float64 {
	return analytics.PageRank(edges, iterations, damping)
}

// TopRanked returns the k most influential vertices by rank.
func TopRanked(rank []float64, k int) []int {
	return analytics.TopRanked(rank, k)
}

// TFIDF computes tf-idf vectors for a corpus.
func TFIDF(corpus []Document) []SparseVector {
	return analytics.TFIDF(corpus)
}

// VectorizeTFIDF embeds sparse tf-idf vectors into a dense space spanned
// by the top dims terms.
func VectorizeTFIDF(vecs []SparseVector, dims int) []Vector {
	return analytics.VectorizeTFIDF(vecs, dims)
}

// KMeans clusters dense vectors (k-means++ seeding, Lloyd iterations).
func KMeans(points []Vector, k, maxIters int, seed int64) (*KMeansResult, error) {
	return analytics.KMeans(points, k, maxIters, seed)
}

// WordCount counts token frequencies over a corpus.
func WordCount(corpus []Document) map[string]int {
	return analytics.WordCount(corpus)
}

// CorpusSizeBytes approximates the serialized size of a corpus.
func CorpusSizeBytes(corpus []Document) int64 {
	return datagen.SizeOfCorpus(corpus)
}
