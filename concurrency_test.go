package ires

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/model"
	"github.com/asap-project/ires/internal/trace"
)

// concAlgos are four distinct algorithms on one engine. Engine noise streams
// are keyed by (engine, algorithm), so four workflows each built on its own
// algorithm draw from pairwise-disjoint streams — the precondition for the
// solo-equality assertions below.
var concAlgos = []string{
	engine.AlgTFIDF, engine.AlgKMeans, engine.AlgPagerank, engine.AlgLineCount,
}

// registerConcOps installs one Spark operator per concurrency-test algorithm
// and profiles it.
func registerConcOps(t *testing.T, p *Platform) {
	t.Helper()
	p.Profiler.Factories = []model.Factory{
		func() model.Model { return model.NewLinear() },
		func() model.Model { return model.NewKNN(2) },
	}
	space := ProfileSpace{
		Records:        []int64{1_000, 10_000, 100_000},
		BytesPerRecord: 1_000,
		Resources: []engine.Resources{
			{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 8, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
		},
	}
	for _, algo := range concAlgos {
		name := "conc_" + algo
		desc := `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=` + algo + `
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
Constraints.Output0.type=SequenceFile
`
		if err := p.RegisterOperator(name, desc); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ProfileOperator(name, space); err != nil {
			t.Fatalf("profiling %s: %v", name, err)
		}
	}
}

// singleAlgoWorkflow builds dataset -> <algo> -> output with an HDFS input,
// so the plan needs no inter-engine moves (moves would share noise streams
// across workflows and break solo-equality).
func singleAlgoWorkflow(t *testing.T, p *Platform, algo string, records int64) *Workflow {
	t.Helper()
	wf, err := p.NewWorkflow().
		DatasetWithMeta("in",
			"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///in"+
				"\nOptimization.documents="+itoa(records)+
				"\nOptimization.size="+itoa(records*1_000)).
		Operator("op", "Constraints.OpSpecification.Algorithm.name="+algo).
		Dataset("out").
		Chain("in", "op", "out").
		Target("out").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

var concRecords = []int64{120_000, 60_000, 200_000, 90_000}

// concurrentBatch builds a fresh platform, submits one workflow per
// concurrency algorithm as a batch, drains, and returns each run's demuxed
// JSONL trace plus its snapshot, in submission order.
func concurrentBatch(t *testing.T, seed int64, admission AdmissionPolicy) ([][]byte, []RunSnapshot) {
	t.Helper()
	p, err := NewPlatform(Options{
		Seed:          seed,
		Admission:     admission,
		Retry:         RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Second},
		TimeoutFactor: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerConcOps(t, p)
	if err := p.InjectFaults(FaultConfig{
		Seed:      seed,
		Default:   FaultTransient{FailProb: 0.15},
		Straggler: StragglerFaults{Prob: 0.15, Factor: 3},
	}); err != nil {
		t.Fatal(err)
	}
	var runs []*Run
	for i, algo := range concAlgos {
		wf := singleAlgoWorkflow(t, p, algo, concRecords[i])
		runs = append(runs, p.SubmitNamed(fmt.Sprintf("wf-%s", algo), wf))
	}
	p.Drain()
	var (
		logs  [][]byte
		snaps []RunSnapshot
	)
	for _, r := range runs {
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", r.ID(), err)
		}
		events := p.TraceForRun(r.ID())
		if len(events) == 0 {
			t.Fatalf("%s: empty per-run trace", r.ID())
		}
		var b bytes.Buffer
		if err := trace.WriteJSONL(&b, events); err != nil {
			t.Fatal(err)
		}
		logs = append(logs, b.Bytes())
		snaps = append(snaps, r.Status())
	}
	return logs, snaps
}

// Fixed seed, four concurrently submitted workflows under fair-share
// admission with chaos enabled: every run's demuxed trace must be
// byte-identical across two independent executions. This is the headline
// determinism regression — run it with -race and the interleaving is proven
// a pure function of the virtual-time schedule, not of goroutine scheduling.
func TestConcurrentPerRunTracesDeterministic(t *testing.T) {
	first, firstSnaps := concurrentBatch(t, 21, FairShare(2))
	second, _ := concurrentBatch(t, 21, FairShare(2))
	if len(first) < 4 {
		t.Fatalf("got %d runs, want >= 4", len(first))
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			a := strings.Split(string(first[i]), "\n")
			b := strings.Split(string(second[i]), "\n")
			for j := 0; j < len(a) && j < len(b); j++ {
				if a[j] != b[j] {
					t.Fatalf("run %d traces diverge at line %d:\n  %s\n  %s", i, j, a[j], b[j])
				}
			}
			t.Fatalf("run %d traces differ in length: %d vs %d lines", i, len(a), len(b))
		}
	}
	// Fair-share actually overlapped runs (this was a concurrent execution,
	// not an accidental serialization).
	overlapped := false
	for i, a := range firstSnaps {
		for _, b := range firstSnaps[i+1:] {
			if a.StartedSec < b.FinishedSec && b.StartedSec < a.FinishedSec {
				overlapped = true
			}
		}
	}
	if !overlapped {
		t.Fatal("no two fair-share runs overlapped in virtual time")
	}

	// A different seed must change the logs (chaos and noise are seeded).
	other, _ := concurrentBatch(t, 22, FairShare(2))
	same := true
	for i := range first {
		if !bytes.Equal(first[i], other[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical per-run traces")
	}
}

// Under FIFO admission a batch is serialized with the whole cluster leased to
// each run — so every run must produce exactly the plan and result it would
// have produced on a dedicated platform.
func TestFIFOBatchMatchesSolo(t *testing.T) {
	const seed = 31
	p, err := NewPlatform(Options{Seed: seed, Admission: FIFO()})
	if err != nil {
		t.Fatal(err)
	}
	registerConcOps(t, p)
	var runs []*Run
	for i, algo := range concAlgos {
		runs = append(runs, p.SubmitNamed(algo, singleAlgoWorkflow(t, p, algo, concRecords[i])))
	}
	p.Drain()

	for i, algo := range concAlgos {
		plan, res, err := runs[i].Wait()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		solo, err := NewPlatform(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		registerConcOps(t, solo)
		soloPlan, soloRes, err := solo.Run(singleAlgoWorkflow(t, solo, algo, concRecords[i]))
		if err != nil {
			t.Fatalf("solo %s: %v", algo, err)
		}
		batchSteps, soloSteps := plan.OperatorSteps(), soloPlan.OperatorSteps()
		if len(batchSteps) != len(soloSteps) {
			t.Fatalf("%s: %d steps in batch vs %d solo", algo, len(batchSteps), len(soloSteps))
		}
		for j := range batchSteps {
			if batchSteps[j].Engine != soloSteps[j].Engine || batchSteps[j].Name != soloSteps[j].Name {
				t.Errorf("%s step %d: batch %s@%s vs solo %s@%s", algo, j,
					batchSteps[j].Name, batchSteps[j].Engine, soloSteps[j].Name, soloSteps[j].Engine)
			}
		}
		if res.Makespan != soloRes.Makespan {
			t.Errorf("%s: batch makespan %v != solo %v", algo, res.Makespan, soloRes.Makespan)
		}
		if res.FinalRecords != soloRes.FinalRecords {
			t.Errorf("%s: batch records %d != solo %d", algo, res.FinalRecords, soloRes.FinalRecords)
		}
	}
}

// Concurrent Submit, Cancel, InjectFaults, metrics scrapes and status polls
// against one platform must be race-free (run with -race) and drain to
// terminal states with no leaked reservations or containers.
func TestPlatformConcurrentAPIRace(t *testing.T) {
	p, err := NewPlatform(Options{
		Seed:      41,
		Admission: FairShare(3),
		Retry:     RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerConcOps(t, p)

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		runs []*Run
	)
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				algo := concAlgos[(w+i)%len(concAlgos)]
				r := p.SubmitNamed(fmt.Sprintf("w%d-%d", w, i), singleAlgoWorkflow(t, p, algo, 30_000))
				mu.Lock()
				runs = append(runs, r)
				mu.Unlock()
				r.Status()
				if w == 0 && i == 1 {
					r.Cancel()
				}
			}
		}()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := p.InjectFaults(FaultConfig{Seed: int64(i), Default: FaultTransient{FailProb: 0.05}}); err != nil {
				t.Errorf("InjectFaults: %v", err)
			}
			p.FaultStats()
		}
	}()
	go func() {
		defer wg.Done()
		var b bytes.Buffer
		for i := 0; i < 50; i++ {
			b.Reset()
			if err := p.Metrics().WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus: %v", err)
			}
			p.Runs()
			p.TraceEvents()
		}
	}()
	wg.Wait()
	p.Drain()

	mu.Lock()
	defer mu.Unlock()
	for _, r := range runs {
		st := r.Status()
		switch st.Status {
		case "succeeded", "failed", "canceled":
		default:
			t.Fatalf("%s not terminal after drain: %s", st.ID, st.Status)
		}
		if _, _, err := r.Wait(); err != nil && !errors.Is(err, ErrRunCanceled) {
			// Failures are possible under injected faults; they must be
			// reported, not hidden.
			if st.Error == "" {
				t.Fatalf("%s failed silently: %v", st.ID, err)
			}
		}
	}
	if got := p.Cluster.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	if err := p.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// invariantTracer audits the cluster at every trace-event boundary: resource
// accounting must hold and reservations must never exceed the cluster, no
// matter how submissions, faults and recoveries interleave.
type invariantTracer struct {
	mu         sync.Mutex
	clu        *cluster.Cluster
	total      int
	events     int
	violations []string
}

func (it *invariantTracer) Emit(ev TraceEvent) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.clu == nil {
		return
	}
	it.events++
	if err := it.clu.CheckInvariants(); err != nil {
		it.violations = append(it.violations, fmt.Sprintf("%s: %v", ev.Type, err))
	}
	if got := it.clu.ReservedNodes(); got > it.total {
		it.violations = append(it.violations, fmt.Sprintf("%s: %d reserved > %d nodes", ev.Type, got, it.total))
	}
}

// Property test: randomized submission bursts and fault schedules never
// violate the cluster invariants at any event boundary, and the scheduler
// always drains.
func TestConcurrencyPropertyInvariants(t *testing.T) {
	for iter := 0; iter < 3; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("seed%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + iter)))
			it := &invariantTracer{}
			p, err := NewPlatform(Options{
				Seed:      int64(100 + iter),
				Admission: FairShare(1 + rng.Intn(3)),
				Retry:     RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second},
				Tracer:    it,
			})
			if err != nil {
				t.Fatal(err)
			}
			it.mu.Lock()
			it.clu = p.Cluster
			it.total = len(p.Cluster.Nodes())
			it.mu.Unlock()
			registerConcOps(t, p)

			cfg := FaultConfig{
				Seed:    rng.Int63(),
				Default: FaultTransient{FailProb: 0.1 + 0.2*rng.Float64()},
			}
			// At most two node crashes, each with a scheduled restore, so
			// admission can always make progress.
			for n := 0; n < 1+rng.Intn(2); n++ {
				node := fmt.Sprintf("node%d", rng.Intn(16))
				at := time.Duration(20+rng.Intn(60)) * time.Second
				cfg.NodeCrashes = append(cfg.NodeCrashes, NodeCrash{Node: node, At: at})
				p.Clock.Schedule(at+time.Duration(30+rng.Intn(30))*time.Second, func(time.Duration) {
					_ = p.RestoreNode(node)
				})
			}
			if err := p.InjectFaults(cfg); err != nil {
				t.Fatal(err)
			}

			var runs []*Run
			for i, n := 0, 3+rng.Intn(4); i < n; i++ {
				algo := concAlgos[rng.Intn(len(concAlgos))]
				records := int64(10_000 + rng.Intn(90_000))
				runs = append(runs, p.SubmitNamed(fmt.Sprintf("rnd-%d", i), singleAlgoWorkflow(t, p, algo, records)))
			}
			p.Drain()

			for _, r := range runs {
				if st := r.Status(); st.Status != "succeeded" && st.Status != "failed" {
					t.Fatalf("%s not terminal: %s", st.ID, st.Status)
				}
			}
			it.mu.Lock()
			violations, events := it.violations, it.events
			it.mu.Unlock()
			if len(violations) > 0 {
				t.Fatalf("%d invariant violations (first: %s)", len(violations), violations[0])
			}
			if events == 0 {
				t.Fatal("invariant tracer saw no events")
			}
			if got := p.Cluster.ReservedNodes(); got != 0 {
				t.Fatalf("%d nodes still reserved after drain", got)
			}
			if got := p.Cluster.LiveContainers(); got != 0 {
				t.Fatalf("%d containers still live after drain", got)
			}
		})
	}
}
