package ires

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/workflow"
)

func parseMeta(description string) (*metadata.Tree, error) {
	return metadata.ParseString(description)
}

// WorkflowBuilder assembles abstract workflows fluently. Errors accumulate
// and surface at Build.
type WorkflowBuilder struct {
	p   *Platform
	g   *Workflow
	err error
}

// NewWorkflow starts a workflow definition.
func (p *Platform) NewWorkflow() *WorkflowBuilder {
	return &WorkflowBuilder{p: p, g: workflow.NewGraph()}
}

func (b *WorkflowBuilder) fail(err error) *WorkflowBuilder {
	if b.err == nil && err != nil {
		b.err = err
	}
	return b
}

// Dataset adds a dataset node. When the name matches a library dataset the
// registered description is used; otherwise the node is an abstract
// intermediate.
func (b *WorkflowBuilder) Dataset(name string) *WorkflowBuilder {
	if b.err != nil {
		return b
	}
	d, _ := b.p.Library.Dataset(name)
	_, err := b.g.AddDataset(name, d)
	return b.fail(err)
}

// DatasetWithMeta adds a dataset node with an inline description.
func (b *WorkflowBuilder) DatasetWithMeta(name, description string) *WorkflowBuilder {
	if b.err != nil {
		return b
	}
	meta, err := parseMeta(description)
	if err != nil {
		return b.fail(err)
	}
	_, err = b.g.AddDataset(name, operator.NewDataset(name, meta))
	return b.fail(err)
}

// Operator adds an abstract operator node described inline (typically just
// the algorithm constraint).
func (b *WorkflowBuilder) Operator(name, description string) *WorkflowBuilder {
	if b.err != nil {
		return b
	}
	meta, err := parseMeta(description)
	if err != nil {
		return b.fail(err)
	}
	_, err = b.g.AddOperator(name, operator.NewAbstract(name, meta))
	return b.fail(err)
}

// Connect adds a dataflow edge.
func (b *WorkflowBuilder) Connect(from, to string) *WorkflowBuilder {
	if b.err != nil {
		return b
	}
	return b.fail(b.g.Connect(from, to))
}

// Chain connects a linear sequence of nodes.
func (b *WorkflowBuilder) Chain(names ...string) *WorkflowBuilder {
	for i := 1; i < len(names); i++ {
		b.Connect(names[i-1], names[i])
	}
	return b
}

// Target designates the output dataset.
func (b *WorkflowBuilder) Target(name string) *WorkflowBuilder {
	if b.err != nil {
		return b
	}
	return b.fail(b.g.SetTarget(name))
}

// Build validates and returns the workflow.
func (b *WorkflowBuilder) Build() (*Workflow, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// ParseWorkflow parses the paper's `graph` file format (D3.3 §3.3) against
// the platform's registered datasets and abstract operators.
func (p *Platform) ParseWorkflow(graph string) (*Workflow, error) {
	res := workflow.LibraryResolver{Library: p.Library, Abstracts: p.abstracts}
	g, err := workflow.ParseGraphString(graph, res)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadLibraryDir loads an asapLibrary-style directory tree (D3.3 §3):
//
//	<dir>/datasets/<name>                 dataset descriptions
//	<dir>/operators/<name>/description    materialized operators
//	<dir>/operators/<name>                (flat file alternative)
//	<dir>/abstractOperators/<name>        abstract operators
//	<dir>/abstractWorkflows/<name>/graph  workflow graphs
//
// It returns the named workflows found.
func (p *Platform) LoadLibraryDir(dir string) (map[string]*Workflow, error) {
	readDir := func(sub string) ([]os.DirEntry, error) {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if os.IsNotExist(err) {
			return nil, nil
		}
		return entries, err
	}

	entries, err := readDir("datasets")
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "datasets", e.Name()))
		if err != nil {
			return nil, err
		}
		if err := p.RegisterDataset(e.Name(), string(data)); err != nil {
			return nil, err
		}
	}

	entries, err = readDir("operators")
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		path := filepath.Join(dir, "operators", e.Name())
		if e.IsDir() {
			path = filepath.Join(path, "description")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("ires: operator %s: %w", e.Name(), err)
		}
		if err := p.RegisterOperator(e.Name(), string(data)); err != nil {
			return nil, err
		}
	}

	entries, err = readDir("abstractOperators")
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "abstractOperators", e.Name()))
		if err != nil {
			return nil, err
		}
		if err := p.RegisterAbstractOperator(e.Name(), string(data)); err != nil {
			return nil, err
		}
	}

	workflows := make(map[string]*Workflow)
	entries, err = readDir("abstractWorkflows")
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "abstractWorkflows", e.Name(), "graph"))
		if err != nil {
			return nil, fmt.Errorf("ires: workflow %s: %w", e.Name(), err)
		}
		g, err := p.ParseWorkflow(string(data))
		if err != nil {
			return nil, fmt.Errorf("ires: workflow %s: %w", e.Name(), err)
		}
		workflows[e.Name()] = g
	}
	return workflows, nil
}
