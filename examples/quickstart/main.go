// Quickstart: register two implementations of one operator, profile them,
// let IReS pick per input size, and execute the plan on the simulated
// multi-engine cluster.
package main

import (
	"fmt"
	"log"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
)

func main() {
	p, err := ires.NewPlatform(ires.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Register two materialized implementations of a "wordcount"
	// operator: a centralized Java one and a distributed Spark one. The
	// description format is the paper's dotted-property format.
	must(p.RegisterOperator("wordcount_java", `
Constraints.Engine=Java
Constraints.OpSpecification.Algorithm.name=wordcount
Constraints.Input0.Engine.FS=LFS
Constraints.Output0.Engine.FS=LFS
`))
	must(p.RegisterOperator("wordcount_spark", `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=wordcount
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
`))

	// 2. Profile both offline: IReS runs them over a grid of input sizes
	// and resource configurations and trains cross-validated cost models.
	space := ires.ProfileSpace{
		Records:        []int64{1_000, 10_000, 100_000, 1_000_000},
		BytesPerRecord: 1_000,
		Resources: []engine.Resources{
			{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
		},
	}
	for _, op := range []string{"wordcount_java", "wordcount_spark"} {
		n, err := p.ProfileOperator(op, space)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiled %s with %d runs\n", op, n)
	}

	// 3. Build and run the same abstract workflow at two scales; IReS
	// materializes it differently each time.
	for _, docs := range []int64{5_000, 2_000_000} {
		wf, err := p.NewWorkflow().
			DatasetWithMeta("docs", fmt.Sprintf(
				"Constraints.Engine.FS=HDFS\nExecution.path=hdfs:///docs\nOptimization.documents=%d\nOptimization.size=%d",
				docs, docs*1_000)).
			Operator("count", "Constraints.OpSpecification.Algorithm.name=wordcount").
			Dataset("out").
			Chain("docs", "count", "out").
			Target("out").
			Build()
		if err != nil {
			log.Fatal(err)
		}
		plan, res, err := p.Run(wf)
		if err != nil {
			log.Fatal(err)
		}
		step, _ := plan.StepFor("count")
		fmt.Printf("%9d docs -> %-6s engine, simulated %v\n", docs, step.Engine, res.Makespan)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
