// Graph analytics (the Fig 11 scenario): compute subscriber influence
// scores over a synthetic telecom call graph by running PageRank. IReS
// picks Java, Hama or Spark depending on graph size; the example also runs
// the real PageRank algorithm on real (synthetic) data to produce actual
// influence scores.
package main

import (
	"fmt"
	"log"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
)

func main() {
	p, err := ires.NewPlatform(ires.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// PageRank implementations on three engines (input resides in HDFS).
	for _, eng := range []string{ires.EngineJava, ires.EngineHama, ires.EngineSpark} {
		desc := "Constraints.Engine=" + eng + `
Constraints.OpSpecification.Algorithm.name=pagerank
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
Optimization.param.iterations=10
`
		if err := p.RegisterOperator("pagerank_"+eng, desc); err != nil {
			log.Fatal(err)
		}
		res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
		if eng == ires.EngineJava {
			res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
		}
		if _, err := p.ProfileOperator("pagerank_"+eng, ires.ProfileSpace{
			Records:        []int64{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000},
			BytesPerRecord: 40,
			Params:         map[string][]float64{"iterations": {10}},
			Resources:      res,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Schedule the workflow at three scales and watch the engine flip.
	for _, edges := range []int64{50_000, 20_000_000, 150_000_000} {
		wf, err := p.NewWorkflow().
			DatasetWithMeta("cdr", fmt.Sprintf(
				"Constraints.Engine.FS=HDFS\nExecution.path=hdfs:///cdr\nOptimization.documents=%d\nOptimization.size=%d",
				edges, edges*40)).
			Operator("pagerank", "Constraints.OpSpecification.Algorithm.name=pagerank").
			Dataset("influence").
			Chain("cdr", "pagerank", "influence").
			Target("influence").
			Build()
		if err != nil {
			log.Fatal(err)
		}
		plan, res, err := p.Run(wf)
		if err != nil {
			log.Fatal(err)
		}
		step, _ := plan.StepFor("pagerank")
		fmt.Printf("%12d edges -> %-6s simulated %v\n", edges, step.Engine, res.Makespan)
	}

	// And compute real influence scores on a small real graph.
	graph := ires.GenerateCallGraph(50_000, 7)
	rank := ires.PageRank(graph, 10, 0.85)
	fmt.Println("top influencers (vertex ids):", ires.TopRanked(rank, 5))
}
