// Relational analytics (the Fig 13 / MuSQLE scenario): SQL queries over
// tables spread across PostgreSQL, MemSQL and Spark. The MuSQLE optimizer
// plans each query across engines — pushing subqueries to the stores that
// hold the tables and moving only small intermediates — then executes the
// plan over real generated TPC-H-like data.
package main

import (
	"fmt"
	"log"

	"github.com/asap-project/ires/internal/musqle"
	"github.com/asap-project/ires/internal/sqldata"
)

func main() {
	// Generate TPC-H-like data and place it as the paper does: small
	// legacy tables in PostgreSQL, medium in MemSQL, facts in HDFS/Spark.
	tables := sqldata.Generate(0.01, 3)
	cat := musqle.NewCatalog()
	if err := cat.LoadTPCH(tables); err != nil {
		log.Fatal(err)
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)

	fmt.Print(sqldata.Describe(tables))

	queries := []string{
		// q1: legacy-only -> stays in PostgreSQL.
		"SELECT c_custkey FROM customer, nation, region WHERE c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 2",
		// q2: medium tables -> stays in MemSQL.
		"SELECT ps_partkey FROM part, partsupp WHERE p_partkey = ps_partkey AND p_retailprice > 150000",
		// Cross-store: the planner splits it between engines.
		`SELECT c_custkey, o_orderkey FROM customer, nation, orders, lineitem
		 WHERE c_nationkey = n_nationkey AND o_custkey = c_custkey AND l_orderkey = o_orderkey AND n_name = 7`,
	}
	for i, sql := range queries {
		q, err := musqle.Parse(sql, cat)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := opt.Optimize(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := musqle.Execute(plan, q, cat, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nq%d: %d rows, %.3f simulated s, engines %v (optimized in %v)\n",
			i+1, res.Table.NumRows(), res.SimSec, plan.EnginesUsed, plan.OptimizationTime)
		fmt.Print(plan.Describe())

		// Compare against forcing a single engine.
		for _, eng := range reg.Names() {
			forced, err := opt.OptimizeOn(q, eng)
			if err != nil {
				fmt.Printf("  forced %-11s infeasible (%v)\n", eng, err)
				continue
			}
			fmt.Printf("  forced %-11s estimated %.3fs (multi-engine: %.3fs)\n",
				eng, forced.EstSec, plan.EstSec)
		}
	}
}
