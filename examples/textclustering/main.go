// Text clustering (the Fig 12 / §3.4 scenario): tf-idf feature extraction
// followed by k-means, with scikit and Spark implementations for both
// steps. In the mid-size range IReS picks a hybrid plan — tf-idf on
// centralized scikit, k-means on Spark — inserting the move operator
// between engines. The example then clusters a real synthetic corpus.
package main

import (
	"fmt"
	"log"
	"strings"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
)

func main() {
	p, err := ires.NewPlatform(ires.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	register(p, "tfidf_scikit", ires.EngineScikit, "TF_IDF", "LFS", "csv")
	register(p, "tfidf_spark", ires.EngineSpark, "TF_IDF", "HDFS", "SequenceFile")
	register(p, "kmeans_scikit", ires.EngineScikit, "kmeans", "LFS", "csv")
	register(p, "kmeans_spark", ires.EngineSpark, "kmeans", "HDFS", "SequenceFile")

	for _, docs := range []int64{1_000, 6_000, 200_000} {
		wf, err := p.NewWorkflow().
			DatasetWithMeta("crawl", fmt.Sprintf(
				"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///crawl\nOptimization.documents=%d\nOptimization.size=%d",
				docs, docs*5_000)).
			Operator("tfidf", "Constraints.OpSpecification.Algorithm.name=TF_IDF").
			Operator("kmeans", "Constraints.OpSpecification.Algorithm.name=kmeans").
			Dataset("vectors").
			Dataset("clusters").
			Chain("crawl", "tfidf", "vectors", "kmeans", "clusters").
			Target("clusters").
			Build()
		if err != nil {
			log.Fatal(err)
		}
		plan, res, err := p.Run(wf)
		if err != nil {
			log.Fatal(err)
		}
		tf, _ := plan.StepFor("tfidf")
		km, _ := plan.StepFor("kmeans")
		kind := "single-engine"
		if tf.Engine != km.Engine {
			kind = "HYBRID"
		}
		fmt.Printf("%8d docs: tfidf@%-7s kmeans@%-7s (%s) simulated %v\n",
			docs, tf.Engine, km.Engine, kind, res.Makespan)
	}

	// Real pipeline on a small corpus: tf-idf -> dense vectors -> k-means.
	corpus := ires.GenerateCorpus(400, 60, 11)
	dense := ires.VectorizeTFIDF(ires.TFIDF(corpus), 32)
	clusters, err := ires.KMeans(dense, 4, 30, 11)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int]int{}
	for _, c := range clusters.Assignments {
		sizes[c]++
	}
	fmt.Printf("clustered %d real documents into %d clusters (sizes %v) in %d iterations\n",
		len(corpus), len(clusters.Centroids), sizes, clusters.Iterations)
}

func register(p *ires.Platform, name, eng, alg, fs, typ string) {
	desc := strings.Join([]string{
		"Constraints.Engine=" + eng,
		"Constraints.OpSpecification.Algorithm.name=" + alg,
		"Constraints.Input0.Engine.FS=" + fs,
		"Constraints.Input0.type=" + typ,
		"Constraints.Output0.Engine.FS=" + fs,
		"Constraints.Output0.type=" + typ,
	}, "\n")
	if err := p.RegisterOperator(name, desc); err != nil {
		log.Fatal(err)
	}
	res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
	if eng == ires.EngineScikit {
		res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
	}
	if _, err := p.ProfileOperator(name, ires.ProfileSpace{
		Records:        []int64{1_000, 3_000, 10_000, 30_000, 100_000, 1_000_000},
		BytesPerRecord: 5_000,
		Resources:      res,
	}); err != nil {
		log.Fatal(err)
	}
}
