// Fault tolerance (the §4.5 scenario): a four-operator HelloWorld chain
// executes while an engine is killed mid-flight. IReS detects the failure,
// replans only the remaining workflow — reusing every materialized
// intermediate — and finishes on the surviving engines.
package main

import (
	"fmt"
	"log"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
)

func main() {
	p, err := ires.NewPlatform(ires.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	// Table 1 of the paper: per-operator engine alternatives.
	alternatives := []struct {
		alg     string
		engines []string
	}{
		{"HelloWorld", []string{ires.EnginePython}},
		{"HelloWorld1", []string{ires.EngineSpark, ires.EnginePython}},
		{"HelloWorld2", []string{ires.EngineSpark, "MLlib", ires.EnginePostgreSQL, "Hive"}},
		{"HelloWorld3", []string{ires.EngineSpark, ires.EnginePython}},
	}
	for _, alt := range alternatives {
		for _, eng := range alt.engines {
			fs := "HDFS"
			res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
			if eng == ires.EnginePython {
				fs = "LFS"
				res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
			} else if eng == ires.EnginePostgreSQL {
				fs = "PostgreSQL"
				res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
			}
			name := alt.alg + "_" + eng
			if err := p.RegisterOperator(name,
				"Constraints.Engine="+eng+
					"\nConstraints.OpSpecification.Algorithm.name="+alt.alg+
					"\nConstraints.Input0.Engine.FS="+fs+
					"\nConstraints.Output0.Engine.FS="+fs); err != nil {
				log.Fatal(err)
			}
			if _, err := p.ProfileOperator(name, ires.ProfileSpace{
				Records:        []int64{200, 1_000, 5_000},
				BytesPerRecord: 1_000,
				Resources:      res,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	// d0 -> HelloWorld -> d1 -> HelloWorld1 -> d2 -> HelloWorld2 -> d3 -> HelloWorld3 -> d4
	b := p.NewWorkflow().
		DatasetWithMeta("d0", "Constraints.Engine.FS=LFS\nExecution.path=/d0\nOptimization.documents=1000\nOptimization.size=1000000")
	prev := "d0"
	for i, alg := range []string{"HelloWorld", "HelloWorld1", "HelloWorld2", "HelloWorld3"} {
		op := fmt.Sprintf("op%d", i)
		out := fmt.Sprintf("d%d", i+1)
		b = b.Operator(op, "Constraints.OpSpecification.Algorithm.name="+alg).
			Dataset(out).Chain(prev, op, out)
		prev = out
	}
	wf, err := b.Target(prev).Build()
	if err != nil {
		log.Fatal(err)
	}

	plan, err := p.Plan(wf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal plan:")
	fmt.Print(plan.Describe())
	victim := ""
	for _, s := range plan.OperatorSteps() {
		if s.WorkflowNode == "op2" {
			victim = s.Engine
		}
	}

	// Kill HelloWorld2's engine the moment HelloWorld1 finishes.
	p.SetRunObserver(func(op string, run *ires.RunMetrics) {
		if run.Algorithm == "HelloWorld1" && !run.Failed {
			fmt.Printf(">>> killing engine %s mid-execution\n", victim)
			p.SetEngineAvailable(victim, false)
		}
	})
	res, err := p.Execute(wf, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %v with %d replan(s); replanning took %v of real time\n",
		res.Makespan, res.Replans, res.ReplanTime)
	for _, step := range res.StepLog {
		status := "ok"
		if step.Failed {
			status = "FAILED -> replanned"
		}
		fmt.Printf("  %-35s %-12s %s\n", step.Name, step.Engine, status)
	}
}
