// Fault tolerance, in two layers.
//
// Layer 1 (the §4.5 scenario): a four-operator HelloWorld chain executes
// while an engine is killed mid-flight. IReS detects the failure, replans
// only the remaining workflow — reusing every materialized intermediate —
// and finishes on the surviving engines.
//
// Layer 2 (sub-operator checkpointing): a node crash lands in the middle of
// a 40-iteration PageRank. Operator-granular recovery restarts the operator
// from iteration zero; with checkpointing enabled the retry restores the
// last banked iteration boundary and re-executes only the un-checkpointed
// tail. The example runs the same crash both ways and prints the recomputed
// virtual-seconds side by side.
package main

import (
	"fmt"
	"log"
	"time"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/trace"
)

func main() {
	engineOutageDemo()
	fmt.Println()
	checkpointDemo()
}

// engineOutageDemo is the operator-granular recovery path: engine dies,
// the remaining workflow is replanned onto the survivors.
func engineOutageDemo() {
	p, err := ires.NewPlatform(ires.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	// Table 1 of the paper: per-operator engine alternatives.
	alternatives := []struct {
		alg     string
		engines []string
	}{
		{"HelloWorld", []string{ires.EnginePython}},
		{"HelloWorld1", []string{ires.EngineSpark, ires.EnginePython}},
		{"HelloWorld2", []string{ires.EngineSpark, "MLlib", ires.EnginePostgreSQL, "Hive"}},
		{"HelloWorld3", []string{ires.EngineSpark, ires.EnginePython}},
	}
	for _, alt := range alternatives {
		for _, eng := range alt.engines {
			fs := "HDFS"
			res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
			if eng == ires.EnginePython {
				fs = "LFS"
				res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
			} else if eng == ires.EnginePostgreSQL {
				fs = "PostgreSQL"
				res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
			}
			name := alt.alg + "_" + eng
			if err := p.RegisterOperator(name,
				"Constraints.Engine="+eng+
					"\nConstraints.OpSpecification.Algorithm.name="+alt.alg+
					"\nConstraints.Input0.Engine.FS="+fs+
					"\nConstraints.Output0.Engine.FS="+fs); err != nil {
				log.Fatal(err)
			}
			if _, err := p.ProfileOperator(name, ires.ProfileSpace{
				Records:        []int64{200, 1_000, 5_000},
				BytesPerRecord: 1_000,
				Resources:      res,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	// d0 -> HelloWorld -> d1 -> HelloWorld1 -> d2 -> HelloWorld2 -> d3 -> HelloWorld3 -> d4
	b := p.NewWorkflow().
		DatasetWithMeta("d0", "Constraints.Engine.FS=LFS\nExecution.path=/d0\nOptimization.documents=1000\nOptimization.size=1000000")
	prev := "d0"
	for i, alg := range []string{"HelloWorld", "HelloWorld1", "HelloWorld2", "HelloWorld3"} {
		op := fmt.Sprintf("op%d", i)
		out := fmt.Sprintf("d%d", i+1)
		b = b.Operator(op, "Constraints.OpSpecification.Algorithm.name="+alg).
			Dataset(out).Chain(prev, op, out)
		prev = out
	}
	wf, err := b.Target(prev).Build()
	if err != nil {
		log.Fatal(err)
	}

	plan, err := p.Plan(wf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal plan:")
	fmt.Print(plan.Describe())
	victim := ""
	for _, s := range plan.OperatorSteps() {
		if s.WorkflowNode == "op2" {
			victim = s.Engine
		}
	}

	// Kill HelloWorld2's engine the moment HelloWorld1 finishes.
	p.SetRunObserver(func(op string, run *ires.RunMetrics) {
		if run.Algorithm == "HelloWorld1" && !run.Failed {
			fmt.Printf(">>> killing engine %s mid-execution\n", victim)
			p.SetEngineAvailable(victim, false)
		}
	})
	res, err := p.Execute(wf, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %v with %d replan(s); replanning took %v of real time\n",
		res.Makespan, res.Replans, res.ReplanTime)
	for _, step := range res.StepLog {
		status := "ok"
		if step.Failed {
			status = "FAILED -> replanned"
		}
		fmt.Printf("  %-35s %-12s %s\n", step.Name, step.Engine, status)
	}
}

// ckptCrashAt is where the node crash lands: mid-operator, between the
// PageRank's checkpoint boundaries (a write lands roughly every 6 virtual
// seconds on this seed).
const ckptCrashAt = 25 * time.Second

// checkpointDemo runs the same mid-operator node crash with and without
// sub-operator checkpointing and compares the recomputed virtual-seconds.
func checkpointDemo() {
	fmt.Println("mid-operator node crash: operator-granular vs checkpointed recovery")
	type outcome struct {
		name          string
		recomputed    float64
		makespan      time.Duration
		restoredUnits int
	}
	var outs []outcome
	for _, mode := range []struct {
		name string
		ckpt ires.CheckpointPolicy
	}{
		{"operator-granular", ires.CheckpointPolicy{}},
		{"checkpointed", ires.CheckpointPolicy{Enabled: true}},
	} {
		clean, err := runPagerank(mode.ckpt, 0)
		if err != nil {
			log.Fatal(err)
		}
		crashed, err := runPagerank(mode.ckpt, ckptCrashAt)
		if err != nil {
			log.Fatal(err)
		}
		o := outcome{
			name:          mode.name,
			recomputed:    crashed.busySec - clean.busySec,
			makespan:      crashed.makespan,
			restoredUnits: crashed.restoredUnits,
		}
		outs = append(outs, o)
		resumed := "restarted from iteration 0"
		if o.restoredUnits > 0 {
			resumed = fmt.Sprintf("resumed from checkpointed iteration %d", o.restoredUnits)
		}
		fmt.Printf("  %-18s %s; recomputed %.1f virtual-seconds (makespan %v)\n",
			o.name, resumed, o.recomputed, o.makespan)
	}
	fmt.Printf("checkpointing saved %.1f virtual-seconds of re-execution on the same crash\n",
		outs[0].recomputed-outs[1].recomputed)
}

// pagerankOutcome is one pass of the crash scenario.
type pagerankOutcome struct {
	busySec       float64 // virtual seconds spent inside operator attempts
	makespan      time.Duration
	restoredUnits int
}

// runPagerank executes a 40-iteration PageRank over 300k records on Spark,
// optionally crashing node0 mid-operator (repaired 45 seconds later).
func runPagerank(ckpt ires.CheckpointPolicy, crashAt time.Duration) (*pagerankOutcome, error) {
	p, err := ires.NewPlatform(ires.Options{
		Seed:       13,
		Retry:      ires.RetryPolicy{MaxAttempts: 4, BaseBackoff: 2 * time.Second},
		Checkpoint: ckpt,
	})
	if err != nil {
		return nil, err
	}
	if err := p.RegisterOperator("pagerank_spark",
		"Constraints.Engine="+ires.EngineSpark+
			"\nConstraints.OpSpecification.Algorithm.name=pagerank"+
			"\nConstraints.Input0.Engine.FS=HDFS\nConstraints.Output0.Engine.FS=HDFS"+
			"\nOptimization.param.iterations=40"); err != nil {
		return nil, err
	}
	if _, err := p.ProfileOperator("pagerank_spark", ires.ProfileSpace{
		Records:        []int64{10_000, 100_000, 1_000_000},
		BytesPerRecord: 1_000,
		Params:         map[string][]float64{"iterations": {40}},
		Resources:      []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}},
	}); err != nil {
		return nil, err
	}
	wf, err := p.NewWorkflow().
		DatasetWithMeta("graph",
			"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///graph"+
				"\nOptimization.documents=300000\nOptimization.size=300000000").
		Operator("rank", "Constraints.OpSpecification.Algorithm.name=pagerank").
		Dataset("scores").
		Chain("graph", "rank", "scores").
		Target("scores").
		Build()
	if err != nil {
		return nil, err
	}
	plan, err := p.Plan(wf)
	if err != nil {
		return nil, err
	}
	if crashAt > 0 {
		if err := p.InjectFaults(ires.FaultConfig{
			Seed:        13,
			NodeCrashes: []ires.NodeCrash{{Node: "node0", At: crashAt}},
		}); err != nil {
			return nil, err
		}
		p.Clock.Schedule(crashAt+45*time.Second, func(time.Duration) {
			_ = p.RestoreNode("node0")
		})
	}
	res, err := p.Execute(wf, plan)
	if err != nil {
		return nil, err
	}
	out := &pagerankOutcome{makespan: res.Makespan, restoredUnits: res.RestoredUnits}
	started := map[int]float64{}
	for _, ev := range p.TraceEvents() {
		switch ev.Type {
		case trace.EvAttemptStart:
			started[ev.Attempt] = ev.VTimeSec
		case trace.EvAttemptFinish, trace.EvAttemptFail:
			if at, ok := started[ev.Attempt]; ok {
				out.busySec += ev.VTimeSec - at
				delete(started, ev.Attempt)
			}
		}
	}
	return out, nil
}
