// Command bench-drf runs the tracked Dominant-Resource-Fairness benchmark:
// a cores-heavy and a memory-heavy tenant submit identical workloads, and
// DRF must equalize their dominant shares (within 10%) over the early
// concurrent window where FIFO starves one of them; a second scenario
// oversubscribes memory 1.5x and must complete through the OOM-kill ->
// retry/checkpoint-restore loop with zero re-executed operators and
// fixed-seed byte-identical traces. Measurements go to BENCH_DRF.json.
//
// Usage:
//
//	bench-drf [-seed N] [-out FILE] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/asap-project/ires/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for the simulated environment")
	out := flag.String("out", "BENCH_DRF.json", "output file (empty: stdout only)")
	check := flag.Bool("check", true, "fail unless DRF equalizes dominant shares FIFO skews and the oversubscribed workload recovers deterministically")
	flag.Parse()

	bench, err := experiments.RunDRFBench(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-drf:", err)
		os.Exit(1)
	}

	fmt.Printf("dominant shares over the first %.0fs:\n", bench.WindowSec)
	for _, o := range []experiments.DRFFairnessOutcome{bench.DRF, bench.FIFO} {
		fmt.Printf("%-5s", o.Policy)
		for _, s := range o.Shares {
			fmt.Printf("  %s=%.3f", s.Tenant, s.AvgDominantShare)
		}
		fmt.Printf("  spread=%.2f  min/max=%.2f  batch %6.1fs  deterministic=%v\n",
			o.Spread, o.MinMaxRatio, o.BatchSec, o.Deterministic)
	}
	oc := bench.Overcommit
	fmt.Printf("overcommit 1.5x: oomKills=%d restores=%d re-executed=%d batch %6.1fs deterministic=%v\n",
		oc.OOMKills, oc.Restores, oc.ReExecutedOps, oc.BatchSec, oc.Deterministic)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-drf:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench-drf:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-drf:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		if err := bench.Gate(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-drf:", err)
			os.Exit(1)
		}
	}
}
