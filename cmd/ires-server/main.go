// Command ires-server runs the IReS REST API (D3.3 §3.5) over a simulated
// multi-engine cluster. The original server listens on :1323; so does this
// one by default.
//
// Usage:
//
//	ires-server [-addr :1323] [-lib <asapLibrary dir>] [-seed N]
//
// With -lib, the directory's datasets, operators and abstract operators are
// pre-registered and its abstract workflows become available under
// /api/workflows/<name>.
package main

import (
	"flag"
	"fmt"
	"log"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/server"
)

func main() {
	addr := flag.String("addr", ":1323", "listen address")
	lib := flag.String("lib", "", "optional asapLibrary-style directory to preload")
	seed := flag.Int64("seed", 1, "simulation seed")
	profile := flag.Bool("profile", true, "profile preloaded operators with a default grid")
	flag.Parse()

	p, err := ires.NewPlatform(ires.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(p)
	if *lib != "" {
		if err := srv.PreloadLibrary(*lib); err != nil {
			log.Fatal(err)
		}
		if *profile {
			space := ires.ProfileSpace{
				Records:        []int64{1_000, 10_000, 100_000, 1_000_000},
				BytesPerRecord: 1_000,
				Resources: []engine.Resources{
					{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456},
					{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
				},
			}
			for _, mo := range p.Library.Operators() {
				if _, err := p.ProfileOperator(mo.Name, space); err != nil {
					log.Fatalf("profiling %s: %v", mo.Name, err)
				}
			}
			fmt.Printf("profiled %d operators\n", p.Library.Len())
		}
	}
	fmt.Printf("IReS server listening on %s (%d operators registered)\n", *addr, p.Library.Len())
	log.Fatal(srv.ListenAndServe(*addr))
}
