// Command bench-planner runs the tracked planner micro-benchmark suite
// (cold plan, warm replan, warm Pareto on the Fig 12 text-analytics
// workflow), plus the giant-DAG cell (a Pegasus Montage workflow at
// -giant-size operators measuring cold plan, warm replan, and the replan
// after a single engine flap under partial vs wholesale invalidation),
// verifies the warm builds reproduce the cold plans byte for byte, and
// writes the measurements to BENCH_PLANNER.json.
//
// Usage:
//
//	bench-planner [-seed N] [-docs N] [-out FILE] [-check]
//	              [-giant-size N] [-giant-engines M]
//	              [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/asap-project/ires/internal/experiments"
)

func fatal(a ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"bench-planner:"}, a...)...)
	os.Exit(1)
}

func run() error {
	seed := flag.Int64("seed", 42, "seed for the simulated environment")
	docs := flag.Int64("docs", 100_000, "workflow input size (documents)")
	out := flag.String("out", "BENCH_PLANNER.json", "output file (empty: stdout only)")
	check := flag.Bool("check", true, "fail unless warm replan is >=3x faster and >=50% fewer allocs than cold plan, and the giant-DAG partial flap replan is >=5x faster than the wholesale baseline")
	giantSize := flag.Int("giant-size", 10_000, "giant-DAG operator count (0 skips the giant cell)")
	giantEngines := flag.Int("giant-engines", 6, "giant-DAG engine implementations per algorithm")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to FILE")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the benchmark run to FILE")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	report, err := experiments.RunPlannerBench(*seed, *docs)
	if err != nil {
		return err
	}
	if *giantSize > 0 {
		report.Giant, err = experiments.RunGiantDAGBench(*giantSize, *giantEngines)
		if err != nil {
			return err
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	for _, r := range report.Results {
		fmt.Printf("%-34s %10d ns/op  %9d B/op  %7d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("replan speedup:  %.1fx (cold plan vs warm replan)\n", report.ReplanSpeedup)
	fmt.Printf("alloc reduction: %.0f%%\n", report.AllocReduction*100)
	fmt.Printf("warm identical:  %v   cache hits/misses: %d/%d (epoch %d)\n",
		report.WarmIdentical, report.CacheHits, report.CacheMisses, report.CacheEpoch)
	if g := report.Giant; g != nil {
		fmt.Printf("giant DAG: %s, %d operators, %d engines/algorithm\n", g.Category, g.Operators, g.Engines)
		for _, r := range g.Results {
			fmt.Printf("%-34s %10d ns/op  %9d B/op  %7d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		fmt.Printf("partial flap speedup: %.1fx (wholesale vs partial invalidation)\n", g.PartialFlapSpeedup)
		fmt.Printf("flap identical: %v   partial invalidations: %d   evicted entries: %d\n",
			g.FlapIdentical, g.PartialInvalidations, g.EvictedEntries)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		if report.ReplanSpeedup < 3 {
			return fmt.Errorf("warm replan speedup %.2fx below the 3x floor", report.ReplanSpeedup)
		}
		if report.AllocReduction < 0.5 {
			return fmt.Errorf("allocation reduction %.0f%% below the 50%% floor", report.AllocReduction*100)
		}
		if !report.WarmIdentical {
			return fmt.Errorf("warm plans diverged from cold references")
		}
		if g := report.Giant; g != nil {
			if g.PartialFlapSpeedup < 5 {
				return fmt.Errorf("giant-DAG partial flap speedup %.2fx below the 5x floor", g.PartialFlapSpeedup)
			}
			if !g.FlapIdentical {
				return fmt.Errorf("giant-DAG flap replans diverged from cold references")
			}
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fatal(err)
	}
}
