// Command bench-planner runs the tracked planner micro-benchmark suite
// (cold plan, warm replan, warm Pareto on the Fig 12 text-analytics
// workflow), verifies the warm builds reproduce the cold plans byte for
// byte, and writes the measurements to BENCH_PLANNER.json.
//
// Usage:
//
//	bench-planner [-seed N] [-docs N] [-out FILE] [-check]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/asap-project/ires/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for the simulated environment")
	docs := flag.Int64("docs", 100_000, "workflow input size (documents)")
	out := flag.String("out", "BENCH_PLANNER.json", "output file (empty: stdout only)")
	check := flag.Bool("check", true, "fail unless warm replan is >=3x faster and >=50% fewer allocs than cold plan")
	flag.Parse()

	report, err := experiments.RunPlannerBench(*seed, *docs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-planner:", err)
		os.Exit(1)
	}

	for _, r := range report.Results {
		fmt.Printf("%-22s %10d ns/op  %8d B/op  %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("replan speedup:  %.1fx (cold plan vs warm replan)\n", report.ReplanSpeedup)
	fmt.Printf("alloc reduction: %.0f%%\n", report.AllocReduction*100)
	fmt.Printf("warm identical:  %v   cache hits/misses: %d/%d (epoch %d)\n",
		report.WarmIdentical, report.CacheHits, report.CacheMisses, report.CacheEpoch)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-planner:", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench-planner:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-planner:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		if report.ReplanSpeedup < 3 {
			fmt.Fprintf(os.Stderr, "bench-planner: warm replan speedup %.2fx below the 3x floor\n", report.ReplanSpeedup)
			os.Exit(1)
		}
		if report.AllocReduction < 0.5 {
			fmt.Fprintf(os.Stderr, "bench-planner: allocation reduction %.0f%% below the 50%% floor\n", report.AllocReduction*100)
			os.Exit(1)
		}
		if !report.WarmIdentical {
			fmt.Fprintln(os.Stderr, "bench-planner: warm plans diverged from cold references")
			os.Exit(1)
		}
	}
}
