// Command bench-sched-scale runs the tracked fleet-scale scheduling
// benchmark: a fully reserved cluster with 10k–100k queued runs, where every
// decision round is a hold-decision. It measures decision rounds per second
// for the incrementally maintained indexed state against the
// rebuild-everything baseline (the seed scheduler's per-event cost) and the
// heap allocations per indexed round, and writes the measurements to
// BENCH_SCHED_SCALE.json. The gate requires the indexed state to be at
// least 10x faster at 10k queued runs under every policy and its
// allocations per decision to stay O(1) in queue depth.
//
// Usage:
//
//	bench-sched-scale [-seed N] [-out FILE] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/asap-project/ires/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for the synthetic submission mix")
	out := flag.String("out", "BENCH_SCHED_SCALE.json", "output file (empty: stdout only)")
	check := flag.Bool("check", true, "fail unless the indexed state is >=10x faster at 10k queued runs with O(1) allocs/decision")
	flag.Parse()

	bench, err := experiments.RunSchedScaleBench(*seed, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-sched-scale:", err)
		os.Exit(1)
	}

	fmt.Printf("%d-node cluster fully reserved; hold-decision rounds over queued-run depth\n", bench.Nodes)
	for _, p := range bench.Policies {
		fmt.Printf("%s\n", p.Policy)
		for _, pt := range p.Points {
			fmt.Printf("  depth %6d  indexed %12.0f dec/s  rebuild %10.0f dec/s  speedup %8.0fx  allocs/dec %.1f\n",
				pt.Depth, pt.IndexedPerSec, pt.RebuildPerSec, pt.Speedup, pt.AllocsPerDecision)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-sched-scale:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench-sched-scale:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-sched-scale:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		if err := bench.Gate(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-sched-scale:", err)
			os.Exit(1)
		}
	}
}
