// Command musqle runs multi-engine SQL over a TPC-H-like catalog spread
// across simulated PostgreSQL, MemSQL and SparkSQL engines (the Appendix B
// side system).
//
// Usage:
//
//	musqle [-sf 0.01] [-placement home|everywhere] [-stats-sf 0]
//	       [-explain] "SELECT ... FROM ... WHERE ..."
//
// Without a query argument, the catalog is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/asap-project/ires/internal/musqle"
	"github.com/asap-project/ires/internal/sqldata"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "musqle:", err)
		os.Exit(1)
	}
}

func run() error {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor of the generated data")
	placement := flag.String("placement", "home", "table placement: home|everywhere")
	statsSF := flag.Float64("stats-sf", 0, "override planning statistics to this scale factor (0 = physical)")
	explain := flag.Bool("explain", false, "print the optimized plan without executing")
	seed := flag.Int64("seed", 1, "data generation seed")
	flag.Parse()

	cat := musqle.NewCatalog()
	tables := sqldata.Generate(*sf, *seed)
	var err error
	switch *placement {
	case "home":
		err = cat.LoadTPCH(tables)
	case "everywhere":
		err = cat.LoadTPCHEverywhere(tables)
	default:
		err = fmt.Errorf("unknown placement %q", *placement)
	}
	if err != nil {
		return err
	}
	if *statsSF > 0 {
		if err := cat.ScaleStatsTo(*statsSF); err != nil {
			return err
		}
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)

	if flag.NArg() == 0 {
		fmt.Print(sqldata.Describe(tables))
		for _, name := range cat.Tables() {
			ti, _ := cat.Table(name)
			fmt.Printf("%s @ %v\n", name, ti.Engines)
		}
		return nil
	}

	sql := strings.Join(flag.Args(), " ")
	q, err := musqle.Parse(sql, cat)
	if err != nil {
		return err
	}
	plan, err := opt.Optimize(q)
	if err != nil {
		return err
	}
	fmt.Printf("optimized in %v, estimated %.3fs, engines %v\n",
		plan.OptimizationTime, plan.EstSec, plan.EnginesUsed)
	fmt.Print(plan.Describe())
	if *explain {
		return nil
	}
	if *statsSF > 0 {
		fmt.Println("(execution skipped: statistics overridden beyond physical data)")
		return nil
	}
	res, err := musqle.Execute(plan, q, cat, reg)
	if err != nil {
		return err
	}
	fmt.Printf("result: %d rows in %.3f simulated seconds (%d rows moved between engines)\n",
		res.Table.NumRows(), res.SimSec, res.MoveRows)
	limit := res.Table.NumRows()
	if limit > 10 {
		limit = 10
	}
	fmt.Println(strings.Join(res.Table.Cols, "\t"))
	for _, row := range res.Table.Rows[:limit] {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	if res.Table.NumRows() > limit {
		fmt.Printf("... (%d more rows)\n", res.Table.NumRows()-limit)
	}
	return nil
}
