// Command bench-sched runs the tracked scheduling benchmark: a long text
// workflow holds the cluster while a small urgent workflow with a deadline
// arrives mid-run. It verifies that the Deadline (EDF) policy meets a
// deadline FIFO misses by preempting the long run at an operator boundary
// and resuming it from its materialized intermediates — with fixed-seed
// byte-identical per-run traces under both policies — and writes the
// measurements to BENCH_SCHED.json.
//
// Usage:
//
//	bench-sched [-seed N] [-out FILE] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/asap-project/ires/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for the simulated environment")
	out := flag.String("out", "BENCH_SCHED.json", "output file (empty: stdout only)")
	check := flag.Bool("check", true, "fail unless Deadline meets a deadline FIFO misses with deterministic traces and zero re-executed operators")
	flag.Parse()

	bench, err := experiments.RunSchedDeadlineBench(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-sched:", err)
		os.Exit(1)
	}

	fmt.Printf("urgent submitted at t=%.0fs, deadline %.0fs\n", bench.SubmitSec, bench.DeadlineSec)
	for _, o := range []experiments.SchedPolicyOutcome{bench.FIFO, bench.EDF} {
		fmt.Printf("%-9s urgent finish %6.1fs  met=%-5v  batch %6.1fs  preemptions=%d  suspended %5.1fs  re-executed=%d  deterministic=%v\n",
			o.Policy, o.UrgentFinishSec, o.MeetsDeadline, o.BatchSec,
			o.Preemptions, o.SuspendedSec, o.ReExecutedOps, o.Deterministic)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-sched:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench-sched:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-sched:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		if err := bench.Gate(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-sched:", err)
			os.Exit(1)
		}
	}
}
