// Command ires-bench regenerates every table and figure of the paper's
// evaluation (D3.3 §4 plus the MuSQLE appendix) and prints them as text
// reports. See EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	ires-bench [-seed N] [-quick] [-only FIG11,FIG17,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/asap-project/ires/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for every stochastic component")
	quick := flag.Bool("quick", false, "reduced sweep sizes for a fast pass")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	flag.Parse()

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			wanted[id] = true
		}
	}
	selected := func(id string) bool { return len(wanted) == 0 || wanted[id] }

	sizes14 := []int{30, 100, 300, 1000}
	reps := 3
	fig16Runs, fig16bRuns, fig16bChange := 100, 180, 100
	if *quick {
		sizes14 = []int{30, 100}
		reps = 1
		fig16Runs, fig16bRuns, fig16bChange = 50, 80, 40
	}

	failures := 0
	show := func(r *experiments.Report, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiment failed:", err)
			failures++
			return
		}
		fmt.Println(r.Render())
	}
	timed := func(id string, fn func()) {
		if !selected(id) {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	timed("FIG11", func() { show(experiments.Fig11(*seed)) })
	timed("FIG12", func() { show(experiments.Fig12(*seed)) })
	timed("FIG13", func() { show(experiments.Fig13(*seed)) })
	timed("FIG14", func() {
		rs, err := experiments.Fig14(sizes14, []int{4, 8}, reps)
		if err != nil {
			show(nil, err)
			return
		}
		for _, r := range rs {
			show(r, nil)
		}
	})
	timed("FIG15", func() {
		rs, err := experiments.Fig15(sizes14, []int{2, 4, 6, 8}, reps)
		if err != nil {
			show(nil, err)
			return
		}
		for _, r := range rs {
			show(r, nil)
		}
	})
	timed("FIG16A", func() { show(experiments.Fig16a(fig16Runs, *seed)) })
	timed("FIG16B", func() { show(experiments.Fig16b(fig16bRuns, fig16bChange, *seed)) })
	timed("FIG17", func() {
		tr, cr, err := experiments.Fig17(*seed)
		if err != nil {
			show(nil, err)
			return
		}
		show(tr, nil)
		show(cr, nil)
	})
	timed("FIG20-22", func() { show(experiments.FaultTolerance(*seed)) })
	timed("FAULTSWEEP", func() { show(experiments.FaultSweep(*seed)) })
	timed("SCHED", func() { show(experiments.SchedContention(*seed)) })
	timed("SCHEDDL", func() { show(experiments.SchedDeadline(*seed)) })
	timed("CKPT", func() { show(experiments.CkptReport(*seed)) })
	timed("MQ-F4", func() { show(experiments.MusqleOptTime(*seed, reps)) })
	timed("MQ-F5", func() { show(experiments.MusqleEngineScaling(*seed, reps)) })
	timed("MQ-EXEC", func() {
		for _, sf := range []float64{5, 20, 50} {
			show(experiments.MusqleExec(*seed, sf))
		}
	})
	timed("MQ-CORRECT", func() { show(experiments.MusqleCorrectness(*seed)) })
	timed("ABL-DP", func() { show(experiments.AblationDPvsExhaustive(*seed)) })
	timed("ABL-CV", func() { show(experiments.AblationModelSelection(*seed)) })

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
