// Command bench-fed runs the tracked multi-cluster federation benchmark.
// Two regions of 64 node agents each run a batch of checkpointing workflows
// placed by data locality; a full region outage lands mid-flight. The gate:
// every stranded run must complete via a cross-cluster replan that restores
// the durable checkpoints mirrored at write time — zero checkpointed work
// units re-executed — and two fixed-seed executions must produce
// byte-identical merged traces. Measurements are written to BENCH_FED.json.
//
// Usage:
//
//	bench-fed [-seed N] [-out FILE] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/asap-project/ires/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for the simulated environment")
	out := flag.String("out", "BENCH_FED.json", "output file (empty: stdout only)")
	check := flag.Bool("check", true, "fail unless the outage is recovered by cross-cluster replans with zero re-executed checkpointed units and deterministic traces")
	flag.Parse()

	bench, err := experiments.RunFedBench(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-fed:", err)
		os.Exit(1)
	}

	fmt.Printf("federation: %d members x %d agents, %d runs, region outage at t=%.0fs\n",
		bench.Members, bench.NodesPerMember, bench.Runs, bench.OutageAtSec)
	fmt.Printf("  affected=%d replanned=%d moved=%d\n", bench.AffectedRuns, bench.Replans, bench.MovedRuns)
	fmt.Printf("  units: total=%d executed=%d restored-from-mirror=%d re-executed=%d\n",
		bench.TotalUnits, bench.ExecutedUnits, bench.RestoredUnits, bench.ReExecutedUnits)
	fmt.Printf("  makespan=%.1fs deterministic=%v\n", bench.MakespanSec, bench.Deterministic)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-fed:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench-fed:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-fed:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		if err := bench.Gate(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-fed:", err)
			os.Exit(1)
		}
	}
}
