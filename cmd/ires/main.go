// Command ires is the IReS platform CLI. It loads an asapLibrary-style
// directory (the D3.3 §3 format: datasets/, operators/, abstractOperators/,
// abstractWorkflows/<name>/graph), materializes a named abstract workflow
// into the optimal multi-engine plan, and optionally executes it on the
// simulated cluster.
//
// Usage:
//
//	ires -lib <dir> [-workflow <name>] [-policy time|cost|balanced]
//	     [-profile] [-execute] [-kill <engine>] [-dot]
//	     [-fault-prob p] [-fault-seed n] [-straggler p] [-crash-node node@sec]
//	     [-retries n] [-timeout-factor f] [-breaker n]
//	     [-trace] [-trace-out file.jsonl] [-trace-dot file.dot]
//
// Without -workflow, the available workflows and registered operators are
// listed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ires:", err)
		os.Exit(1)
	}
}

func run() error {
	lib := flag.String("lib", "", "asapLibrary-style directory to load (required)")
	workflowName := flag.String("workflow", "", "abstract workflow to materialize")
	policy := flag.String("policy", "time", "optimization policy: time|cost|balanced")
	doProfile := flag.Bool("profile", true, "profile operators offline before planning")
	execute := flag.Bool("execute", false, "execute the materialized plan on the simulated cluster")
	kill := flag.String("kill", "", "engine to mark unavailable before planning (what-if)")
	dot := flag.Bool("dot", false, "print the abstract workflow in Graphviz format")
	seed := flag.Int64("seed", 1, "simulation seed")
	faultProb := flag.Float64("fault-prob", 0, "per-attempt transient failure probability to inject (0 disables)")
	faultSeed := flag.Int64("fault-seed", 0, "seed of the fault schedule (default: -seed)")
	straggler := flag.Float64("straggler", 0, "probability a run straggles (slowed 3x)")
	crashNode := flag.String("crash-node", "", "inject a node crash, format node@seconds (e.g. node0@40)")
	retries := flag.Int("retries", 1, "max same-engine attempts per step before replanning")
	timeoutFactor := flag.Float64("timeout-factor", 0, "speculate when a step exceeds this multiple of its predicted time (0 disables)")
	breaker := flag.Int("breaker", 0, "consecutive failures that blacklist an engine (0 disables)")
	traceStdout := flag.Bool("trace", false, "dump the structured event log (JSONL) to stdout at the end")
	traceOut := flag.String("trace-out", "", "write the structured event log (JSONL) to this file")
	traceDot := flag.String("trace-dot", "", "write a Gantt-style Graphviz timeline of the execution to this file")
	flag.Parse()

	if *lib == "" {
		flag.Usage()
		return fmt.Errorf("-lib is required")
	}
	var pol ires.Policy
	switch *policy {
	case "time":
		pol = ires.MinTime
	case "cost":
		pol = ires.MinCost
	case "balanced":
		pol = ires.Balanced
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	p, err := ires.NewPlatform(ires.Options{
		Seed:             *seed,
		Policy:           pol,
		Retry:            ires.RetryPolicy{MaxAttempts: *retries},
		TimeoutFactor:    *timeoutFactor,
		BreakerThreshold: *breaker,
	})
	if err != nil {
		return err
	}
	workflows, err := p.LoadLibraryDir(*lib)
	if err != nil {
		return err
	}

	if *workflowName == "" {
		fmt.Println("abstract workflows:")
		names := make([]string, 0, len(workflows))
		for n := range workflows {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			g := workflows[n]
			fmt.Printf("  %s (%d nodes, target %s)\n", n, g.Len(), g.Target)
		}
		fmt.Println("materialized operators:")
		for _, mo := range p.Library.Operators() {
			fmt.Printf("  %s [%s/%s]\n", mo.Name, mo.Engine(), mo.Algorithm())
		}
		return nil
	}

	g, ok := workflows[*workflowName]
	if !ok {
		return fmt.Errorf("unknown workflow %q (run without -workflow to list)", *workflowName)
	}
	if *dot {
		fmt.Println(g.DOT())
	}

	if *doProfile {
		for _, mo := range p.Library.Operators() {
			space := ires.ProfileSpace{
				Records:        []int64{1_000, 10_000, 100_000, 1_000_000},
				BytesPerRecord: 1_000,
				Resources: []engine.Resources{
					{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456},
					{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
				},
			}
			if _, err := p.ProfileOperator(mo.Name, space); err != nil {
				return fmt.Errorf("profiling %s: %w", mo.Name, err)
			}
		}
		fmt.Printf("profiled %d operators\n", p.Library.Len())
	}
	if *kill != "" {
		p.SetEngineAvailable(*kill, false)
		fmt.Printf("engine %s marked unavailable\n", *kill)
	}
	if *faultProb > 0 || *straggler > 0 || *crashNode != "" {
		cfg := ires.FaultConfig{
			Seed:      *faultSeed,
			Default:   ires.FaultTransient{FailProb: *faultProb},
			Straggler: ires.StragglerFaults{Prob: *straggler},
		}
		if cfg.Seed == 0 {
			cfg.Seed = *seed
		}
		if *crashNode != "" {
			node, at, err := parseCrash(*crashNode)
			if err != nil {
				return err
			}
			cfg.NodeCrashes = []ires.NodeCrash{{Node: node, At: at}}
		}
		if err := p.InjectFaults(cfg); err != nil {
			return err
		}
		fmt.Printf("fault injection armed (prob %.2f, straggler %.2f)\n", *faultProb, *straggler)
	}

	plan, err := p.Plan(g)
	if err != nil {
		return err
	}
	fmt.Print(plan.Describe())

	if *execute {
		res, err := p.Execute(g, plan)
		if err != nil {
			return err
		}
		fmt.Printf("executed in %v (simulated), cost %.1f units, %d replans\n",
			res.Makespan, res.TotalCostUnits, res.Replans)
		if res.Retries+res.SpeculativeLaunches+res.ContainersLost > 0 {
			fmt.Printf("recovery: %d retries, %d/%d speculative wins, %d containers lost\n",
				res.Retries, res.SpeculativeWins, res.SpeculativeLaunches, res.ContainersLost)
		}
		for _, log := range res.StepLog {
			status := "ok"
			if log.Failed {
				status = "FAILED: " + log.Failure
			}
			fmt.Printf("  %-40s %-12s %10v -> %10v  %s\n", log.Name, log.Engine, log.Start, log.End, status)
		}
		st := p.FaultStats()
		if st.Transient+st.Stragglers+st.Outages+st.NodeCrash > 0 {
			fmt.Printf("faults injected: %d transient, %d straggled, %d outages, %d node crashes\n",
				st.Transient, st.Stragglers, st.Outages, st.NodeCrash)
		}
		if bl := p.BlacklistedEngines(); len(bl) > 0 {
			fmt.Printf("circuit-broken engines: %s\n", strings.Join(bl, ", "))
		}
	}
	return dumpTrace(p, *traceStdout, *traceOut, *traceDot)
}

// dumpTrace writes the recorded event log as JSONL (stdout and/or a file) and
// optionally renders the Gantt-style DOT timeline.
func dumpTrace(p *ires.Platform, toStdout bool, outPath, dotPath string) error {
	if !toStdout && outPath == "" && dotPath == "" {
		return nil
	}
	events := p.TraceEvents()
	if toStdout {
		if err := trace.WriteJSONL(os.Stdout, events); err != nil {
			return err
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := trace.WriteJSONL(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", len(events), outPath)
	}
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(trace.GanttDOT(events)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote execution timeline to %s\n", dotPath)
	}
	return nil
}

// parseCrash parses -crash-node values of the form "node0@40" (node name and
// the virtual time of the crash in seconds).
func parseCrash(s string) (string, time.Duration, error) {
	node, secStr, ok := strings.Cut(s, "@")
	if !ok || node == "" {
		return "", 0, fmt.Errorf("bad -crash-node %q: want node@seconds", s)
	}
	sec, err := strconv.ParseFloat(secStr, 64)
	if err != nil || sec < 0 {
		return "", 0, fmt.Errorf("bad -crash-node %q: want node@seconds", s)
	}
	return node, time.Duration(sec * float64(time.Second)), nil
}
