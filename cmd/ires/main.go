// Command ires is the IReS platform CLI. It loads an asapLibrary-style
// directory (the D3.3 §3 format: datasets/, operators/, abstractOperators/,
// abstractWorkflows/<name>/graph), materializes a named abstract workflow
// into the optimal multi-engine plan, and optionally executes it on the
// simulated cluster.
//
// Usage:
//
//	ires -lib <dir> [-workflow <name>] [-policy time|cost|balanced]
//	     [-profile] [-execute] [-kill <engine>] [-dot]
//
// Without -workflow, the available workflows and registered operators are
// listed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ires:", err)
		os.Exit(1)
	}
}

func run() error {
	lib := flag.String("lib", "", "asapLibrary-style directory to load (required)")
	workflowName := flag.String("workflow", "", "abstract workflow to materialize")
	policy := flag.String("policy", "time", "optimization policy: time|cost|balanced")
	doProfile := flag.Bool("profile", true, "profile operators offline before planning")
	execute := flag.Bool("execute", false, "execute the materialized plan on the simulated cluster")
	kill := flag.String("kill", "", "engine to mark unavailable before planning (what-if)")
	dot := flag.Bool("dot", false, "print the abstract workflow in Graphviz format")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *lib == "" {
		flag.Usage()
		return fmt.Errorf("-lib is required")
	}
	var pol ires.Policy
	switch *policy {
	case "time":
		pol = ires.MinTime
	case "cost":
		pol = ires.MinCost
	case "balanced":
		pol = ires.Balanced
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	p, err := ires.NewPlatform(ires.Options{Seed: *seed, Policy: pol})
	if err != nil {
		return err
	}
	workflows, err := p.LoadLibraryDir(*lib)
	if err != nil {
		return err
	}

	if *workflowName == "" {
		fmt.Println("abstract workflows:")
		names := make([]string, 0, len(workflows))
		for n := range workflows {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			g := workflows[n]
			fmt.Printf("  %s (%d nodes, target %s)\n", n, g.Len(), g.Target)
		}
		fmt.Println("materialized operators:")
		for _, mo := range p.Library.Operators() {
			fmt.Printf("  %s [%s/%s]\n", mo.Name, mo.Engine(), mo.Algorithm())
		}
		return nil
	}

	g, ok := workflows[*workflowName]
	if !ok {
		return fmt.Errorf("unknown workflow %q (run without -workflow to list)", *workflowName)
	}
	if *dot {
		fmt.Println(g.DOT())
	}

	if *doProfile {
		for _, mo := range p.Library.Operators() {
			space := ires.ProfileSpace{
				Records:        []int64{1_000, 10_000, 100_000, 1_000_000},
				BytesPerRecord: 1_000,
				Resources: []engine.Resources{
					{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456},
					{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
				},
			}
			if _, err := p.ProfileOperator(mo.Name, space); err != nil {
				return fmt.Errorf("profiling %s: %w", mo.Name, err)
			}
		}
		fmt.Printf("profiled %d operators\n", p.Library.Len())
	}
	if *kill != "" {
		p.SetEngineAvailable(*kill, false)
		fmt.Printf("engine %s marked unavailable\n", *kill)
	}

	plan, err := p.Plan(g)
	if err != nil {
		return err
	}
	fmt.Print(plan.Describe())

	if *execute {
		res, err := p.Execute(g, plan)
		if err != nil {
			return err
		}
		fmt.Printf("executed in %v (simulated), cost %.1f units, %d replans\n",
			res.Makespan, res.TotalCostUnits, res.Replans)
		for _, log := range res.StepLog {
			status := "ok"
			if log.Failed {
				status = "FAILED: " + log.Failure
			}
			fmt.Printf("  %-40s %-12s %10v -> %10v  %s\n", log.Name, log.Engine, log.Start, log.End, status)
		}
	}
	return nil
}
