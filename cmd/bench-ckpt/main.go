// Command bench-ckpt runs the tracked sub-operator checkpointing benchmark.
// Two fixed-seed scenarios: (1) the Deadline policy preempts a long
// iterative operator mid-run — with checkpointing the attempt yields at the
// next checkpoint boundary, bounding the suspension latency by one
// checkpoint interval, where operator-granular preemption waits out the
// whole remaining operator; (2) a node crash lands between checkpoint
// boundaries — checkpointed recovery restores the banked iterations and
// re-executes strictly fewer virtual-seconds than restarting the operator.
// Both scenarios must produce byte-identical traces across two executions.
// Measurements are written to BENCH_CKPT.json.
//
// Usage:
//
//	bench-ckpt [-seed N] [-out FILE] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/asap-project/ires/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for the simulated environment")
	out := flag.String("out", "BENCH_CKPT.json", "output file (empty: stdout only)")
	check := flag.Bool("check", true, "fail unless preempt latency is bounded by one checkpoint interval, crash recovery re-executes strictly less than operator-granular, and traces are deterministic")
	flag.Parse()

	bench, err := experiments.RunCkptBench(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-ckpt:", err)
		os.Exit(1)
	}

	fmt.Printf("latency: urgent at t=%.0fs, checkpoint interval %.2fs\n", bench.SubmitSec, bench.IntervalSec)
	for _, o := range []experiments.CkptLatencyOutcome{bench.LatencyCkpt, bench.LatencyGran} {
		fmt.Printf("  %-18s preempt latency %7.2fs  urgent finish %7.1fs  yields=%d  writes=%-3d re-executed=%d  deterministic=%v\n",
			o.Mode, o.PreemptLatencySec, o.UrgentFinishSec, o.Yields, o.Writes, o.ReExecutedOps, o.Deterministic)
	}
	fmt.Printf("recovery: node0 crashes at t=%.1fs\n", bench.CrashAtSec)
	for _, o := range []experiments.CkptRecoveryOutcome{bench.RecoveryCkpt, bench.RecoveryGran} {
		fmt.Printf("  %-18s clean %7.1fs  crashed %7.1fs  recomputed %6.1fs  restores=%d  restored units=%-3d deterministic=%v\n",
			o.Mode, o.CleanExecSec, o.CrashedExecSec, o.RecomputedSec, o.Restores, o.RestoredUnits, o.Deterministic)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-ckpt:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench-ckpt:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-ckpt:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check {
		if err := bench.Gate(); err != nil {
			fmt.Fprintln(os.Stderr, "bench-ckpt:", err)
			os.Exit(1)
		}
	}
}
