package ires_test

// One benchmark per paper table/figure (D3.3 §4 + the MuSQLE appendix),
// each regenerating the corresponding experiment through the harnesses in
// internal/experiments, plus micro-benchmarks of the planner-critical
// paths. Run with:
//
//	go test -bench=. -benchmem
import (
	"sync"
	"testing"

	"github.com/asap-project/ires/internal/experiments"
	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/musqle"
	"github.com/asap-project/ires/internal/pegasus"
	"github.com/asap-project/ires/internal/sqldata"
)

// BenchmarkFig11GraphAnalytics regenerates Figure 11 (graph analytics,
// single engines vs IReS across input scales).
func BenchmarkFig11GraphAnalytics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12TextAnalytics regenerates Figure 12 (text analytics with
// hybrid plans).
func BenchmarkFig12TextAnalytics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Relational regenerates Figure 13 (relational workflow over
// three stores vs TPC-H scale).
func BenchmarkFig13Relational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14PlannerScaling regenerates Figure 14 (planner time over the
// five Pegasus categories; reduced sweep per iteration).
func BenchmarkFig14PlannerScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14([]int{30, 100, 300}, []int{4, 8}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15EngineScaling regenerates Figure 15 (planner time vs engine
// count for Montage/Epigenomics).
func BenchmarkFig15EngineScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15([]int{30, 100}, []int{2, 4, 6, 8}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16Modeling regenerates Figure 16a (estimation error vs
// executions under online refinement).
func BenchmarkFig16Modeling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16a(50, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16bInfraChange regenerates Figure 16b (error under an
// HDD->SSD swap).
func BenchmarkFig16bInfraChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16b(120, 60, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17Provisioning regenerates Figure 17 (NSGA-II resource
// provisioning vs static min/max).
func BenchmarkFig17Provisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig17(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig20to22Replan regenerates Table 1 / Figures 18-22 (fault
// tolerance: IResReplan vs TrivialReplan vs SubOptPlan).
func BenchmarkFig20to22Replan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FaultTolerance(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMusqleOptTime regenerates MuSQLE Figures 4-5 (optimization time
// vs query size and engine count).
func BenchmarkMusqleOptTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MusqleOptTime(int64(i+1), 2); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.MusqleEngineScaling(int64(i+1), 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMusqleExec regenerates MuSQLE Figures 7-10 (18-query workload,
// multi-engine vs forced single engines at 20GB statistics).
func BenchmarkMusqleExec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MusqleExec(int64(i+1), 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDP regenerates the DP-vs-exhaustive planner ablation.
func BenchmarkAblationDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDPvsExhaustive(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModelSelection regenerates the CV-selection ablation.
func BenchmarkAblationModelSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationModelSelection(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of planner-critical paths ---

// plannerBench lazily builds the shared Fig12 planner-benchmark harness so
// the setup cost (profiling, cold reference plans) is paid once, outside
// every timed loop.
var plannerBench = struct {
	once sync.Once
	env  *experiments.PlannerBench
	err  error
}{}

func plannerBenchEnv(b *testing.B) *experiments.PlannerBench {
	plannerBench.once.Do(func() {
		plannerBench.env, plannerBench.err = experiments.NewPlannerBench(42, 100_000)
	})
	if plannerBench.err != nil {
		b.Fatal(plannerBench.err)
	}
	return plannerBench.env
}

// BenchmarkPlanCold measures a from-scratch optimization pass over the Fig12
// text-analytics workflow: every planner cache (DP memo, prediction cache,
// match index) is flushed before each iteration.
func BenchmarkPlanCold(b *testing.B) {
	plannerBenchEnv(b).BenchPlanCold(b)
}

// BenchmarkReplanWarm measures a mid-flight Replan with all planner caches
// warm — the memoized-DP fast path tracked in BENCH_PLANNER.json.
func BenchmarkReplanWarm(b *testing.B) {
	plannerBenchEnv(b).BenchReplanWarm(b)
}

// BenchmarkParetoWarm measures a warm multi-objective ParetoPlans pass over
// the same workflow.
func BenchmarkParetoWarm(b *testing.B) {
	plannerBenchEnv(b).BenchParetoWarm(b)
}

// BenchmarkPlannerMontage1000 measures one optimization pass over a
// 1000-node Montage workflow with 8 engines (the paper's extreme case,
// bounded at 10s there).
func BenchmarkPlannerMontage1000(b *testing.B) {
	g, err := pegasus.Generate(pegasus.Montage, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PlanPegasus(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetadataMatch measures the one-pass tree matching primitive.
func BenchmarkMetadataMatch(b *testing.B) {
	abstract := metadata.MustParse(`
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Output.number=1
`)
	materialized := metadata.MustParse(`
Constraints.Engine=Hadoop
Constraints.Input.number=1
Constraints.Input0.type=SequenceFile
Constraints.Input0.Engine.FS=HDFS
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Output.number=1
Constraints.Output0.type=SequenceFile
Execution.LuaScript=tfidf.lua
Optimization.model.execTime=UserFunction
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !metadata.Matches(abstract, materialized) {
			b.Fatal("should match")
		}
	}
}

// BenchmarkMusqleOptimize7Tables measures one DP join-ordering pass for a
// 7-table query over 3 engines.
func BenchmarkMusqleOptimize7Tables(b *testing.B) {
	cat := musqle.NewCatalog()
	if err := cat.LoadTPCH(sqldata.Generate(0.002, 1)); err != nil {
		b.Fatal(err)
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)
	q, err := musqle.GenerateQuery(cat, 7, true, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin measures the MuSQLE execution hash join on ~60k rows.
func BenchmarkHashJoin(b *testing.B) {
	tables := sqldata.Generate(0.01, 1)
	pred := []musqle.JoinPred{{
		LeftTable: "lineitem", LeftCol: "l_orderkey",
		RightTable: "orders", RightCol: "o_orderkey",
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := musqle.HashJoin(tables["lineitem"], tables["orders"], pred)
		if err != nil || out.NumRows() == 0 {
			b.Fatalf("join failed: %v", err)
		}
	}
}
