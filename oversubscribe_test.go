package ires

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/trace"
)

// oversubscribeBatch runs the memory-oversubscription scenario: a 4-node
// cluster with a 1.5x memory overcommit ratio, two tenants whose slice
// demands fit under the overcommitted cap but exceed physical memory when
// both actually allocate on a node, and an always-fire OOM killer. The
// victim (the largest container — run A's, sized above run B's) dies
// mid-operator; durable checkpoints carry its banked iterations across the
// OOM-kill -> retry arc. Returns the full platform trace as JSONL, per-run
// traces, and the run snapshots in submission order.
func oversubscribeBatch(t *testing.T, seed int64) ([]byte, [][]trace.Event, []RunSnapshot) {
	t.Helper()
	p, err := NewPlatform(Options{
		Seed:          seed,
		ClusterNodes:  4,
		CoresPerNode:  4,
		MemMBPerNode:  3456,
		MemOvercommit: 1.5, // cap 5184MB per node
		Admission:     DRF(nil, 2),
		Retry:         RetryPolicy{MaxAttempts: 8, BaseBackoff: 4 * time.Second},
		Checkpoint:    CheckpointPolicy{Enabled: true, MinIntervalSec: 4, Durable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerStormOps(t, p)
	if err := p.InjectFaults(FaultConfig{Seed: seed, OOM: OOMKillFaults{Prob: 1}}); err != nil {
		t.Fatal(err)
	}

	// A's 2916MB slice and B's 2268MB slice sum to the 5184MB overcommitted
	// cap, but to 5184 > 3456 physical once both allocate: B's allocation
	// triggers the sweep and the victim — the largest container — is A's,
	// killing A's in-flight checkpointed attempt rather than B's newcomer.
	runA := p.SubmitWith(chainWorkflow(t, p, engine.AlgPagerank, engine.AlgKMeans, 120_000),
		SubmitOptions{Name: "mem-a", Tenant: "tenant-a", DemandCores: 2, DemandMemMB: 2916})
	runBCh := make(chan *Run, 1)
	p.Clock.Schedule(5*time.Second, func(time.Duration) {
		runBCh <- p.SubmitWith(singleAlgoWorkflow(t, p, engine.AlgKMeans, 15_000),
			SubmitOptions{Name: "mem-b", Tenant: "tenant-b", DemandCores: 2, DemandMemMB: 2268})
	})

	p.Drain()
	runs := []*Run{runA, <-runBCh}

	var snaps []RunSnapshot
	var perRun [][]trace.Event
	for _, r := range runs {
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", r.ID(), err)
		}
		perRun = append(perRun, p.TraceForRun(r.ID()))
		snaps = append(snaps, r.Status())
	}
	if got := p.Cluster.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	if sc, sm := p.Cluster.ReservedSlices(); sc != 0 || sm != 0 {
		t.Fatalf("slices still reserved after drain: (%d,%d)", sc, sm)
	}
	if err := p.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, p.TraceEvents()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), perRun, snaps
}

// TestOversubscriptionOOMRecovery drives the OOM fault loop end to end: the
// oversubscribed workload completes, the killer actually fired, the killed
// run's checkpointed operators restore exactly their banked units (zero
// re-executed iterations), and the fault schedule counted its kills.
func TestOversubscriptionOOMRecovery(t *testing.T) {
	for _, seed := range []int64{71, 73} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			full, perRun, snaps := oversubscribeBatch(t, seed)

			oomKills := bytes.Count(full, []byte(`"`+string(trace.EvOOMKill)+`"`))
			if oomKills == 0 {
				t.Fatal("no fault.oomkill events — the scenario no longer oversubscribes")
			}
			restores := 0
			for i, s := range snaps {
				_, r := assertCheckpointConsistency(t, s.ID, perRun[i])
				restores += r
			}
			if restores == 0 {
				t.Fatal("no checkpoint restores — OOM kills no longer hit checkpointed operators")
			}

			// Byte-identical repeat under the same seed.
			again, _, _ := oversubscribeBatch(t, seed)
			if !bytes.Equal(full, again) {
				t.Fatal("traces differ between two same-seed executions")
			}
		})
	}
}

// TestOversubscriptionDeterministicAcrossGOMAXPROCS pins the OOM-recovery
// timeline against scheduler parallelism: GOMAXPROCS=1 must reproduce the
// same bytes as the parallel run.
func TestOversubscriptionDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const seed = 71
	first, _, _ := oversubscribeBatch(t, seed)
	prev := runtime.GOMAXPROCS(1)
	second, _, _ := oversubscribeBatch(t, seed)
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(first, second) {
		t.Fatal("traces differ under GOMAXPROCS=1")
	}
}
