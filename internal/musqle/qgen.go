package musqle

import (
	"fmt"
	"math/rand"

	"github.com/asap-project/ires/internal/sqldata"
)

// GenerateQuery builds a random connected SPJ query over nTables tables of
// the TPC-H join graph, with optional filters — the query workload of the
// MuSQLE evaluation (18 join-only and join-filter queries over 2-7 tables).
func GenerateQuery(cat *Catalog, nTables int, withFilters bool, seed int64) (*Query, error) {
	fks := sqldata.ForeignKeys()
	adj := make(map[string][]sqldata.ForeignKey)
	for _, fk := range fks {
		adj[fk.Table] = append(adj[fk.Table], fk)
		adj[fk.RefTable] = append(adj[fk.RefTable], fk)
	}
	if nTables < 1 {
		return nil, fmt.Errorf("musqle: nTables must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	starts := sqldata.TableNames()
	q := &Query{}
	in := make(map[string]bool)
	add := func(t string) {
		if !in[t] {
			in[t] = true
			q.Tables = append(q.Tables, t)
		}
	}
	add(starts[rng.Intn(len(starts))])
	for len(q.Tables) < nTables {
		// Pick a random FK edge touching the current set and extending it.
		var candidates []sqldata.ForeignKey
		for t := range in {
			for _, fk := range adj[t] {
				other := fk.Table
				if other == t {
					other = fk.RefTable
				}
				if !in[other] {
					candidates = append(candidates, fk)
				}
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("musqle: cannot grow query to %d tables from %v", nTables, q.Tables)
		}
		fk := candidates[rng.Intn(len(candidates))]
		add(fk.Table)
		add(fk.RefTable)
		q.Joins = append(q.Joins, JoinPred{
			LeftTable: fk.Table, LeftCol: fk.Col,
			RightTable: fk.RefTable, RightCol: fk.RefCol,
		})
	}
	if withFilters {
		nf := 1 + rng.Intn(2)
		filterable := map[string][2]interface{}{
			"part":     {"p_retailprice", int64(150_000)},
			"customer": {"c_acctbal", int64(500_000)},
			"orders":   {"o_totalprice", int64(25_000_000)},
			"lineitem": {"l_quantity", int64(25)},
			"supplier": {"s_acctbal", int64(500_000)},
			"nation":   {"n_name", int64(7)},
		}
		for t := range in {
			if nf == 0 {
				break
			}
			if spec, ok := filterable[t]; ok {
				op := OpGt
				if spec[0].(string) == "n_name" {
					op = OpEq
				}
				q.Filters = append(q.Filters, Filter{
					Table: t, Col: spec[0].(string), Op: op, Value: spec[1].(int64),
				})
				nf--
			}
		}
	}
	return q, nil
}

// Fig13Queries returns the three SPJ queries of the relational analytics
// workflow (D3.3 Figure 10): q1 joins the small PostgreSQL-resident legacy
// tables, q2 the medium MemSQL-resident tables, q3 the large HDFS-resident
// fact tables.
func Fig13Queries(cat *Catalog) ([]*Query, error) {
	sqls := []string{
		"SELECT c_custkey FROM customer, nation, region WHERE c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 2",
		"SELECT ps_partkey FROM part, partsupp WHERE p_partkey = ps_partkey AND p_retailprice > 150000",
		"SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey AND l_quantity > 25",
	}
	out := make([]*Query, 0, len(sqls))
	for _, s := range sqls {
		q, err := Parse(s, cat)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// QuerySet18 generates the evaluation's 18-query workload: queries Q0-Q8
// are join-only, Q9-Q17 add filters, spanning 2-7 tables.
func QuerySet18(cat *Catalog) ([]*Query, error) {
	var out []*Query
	for i := 0; i < 18; i++ {
		n := 2 + i%6
		q, err := GenerateQuery(cat, n, i >= 9, int64(1000+i))
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}
