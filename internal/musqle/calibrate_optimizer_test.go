package musqle

import (
	"testing"

	"github.com/asap-project/ires/internal/sqldata"
)

// liarEngine wraps an engine and reports estimates scaled by estFactor —
// the cost-API inaccuracy scenario of Appendix B §V-B (engines can
// misestimate by 1000x).
type liarEngine struct {
	Engine
	estFactor float64
}

func (l liarEngine) ScanSec(rows, bytes float64) float64 {
	return l.Engine.ScanSec(rows, bytes) * l.estFactor
}

func (l liarEngine) JoinSec(a, b, out float64) (float64, bool) {
	sec, ok := l.Engine.JoinSec(a, b, out)
	return sec * l.estFactor, ok
}

func (l liarEngine) LoadSec(rows, bytes float64) float64 {
	return l.Engine.LoadSec(rows, bytes) * l.estFactor
}

func TestCalibratorFixesLyingEngine(t *testing.T) {
	tables := sqldata.Generate(0.002, 7)
	cat := NewCatalog()
	// Both engines hold everything; planning is purely a cost contest.
	for _, name := range sqldata.TableNames() {
		if err := cat.AddTable(tables[name], "honest", "liar"); err != nil {
			t.Fatal(err)
		}
	}
	honest := SyntheticEngine{ID: "honest", ScanRate: 1e6, JoinRate: 1e6, Fixed: 0.01, LoadRate: 50e6}
	// The liar is actually 4x slower but claims to be 40x faster.
	slow := SyntheticEngine{ID: "liar", ScanRate: 0.25e6, JoinRate: 0.25e6, Fixed: 0.04, LoadRate: 50e6}

	// Planning registry sees the lying estimates; the execution registry is
	// the ground truth.
	planReg := NewRegistry(honest, liarEngine{Engine: slow, estFactor: 0.1})
	execReg := NewRegistry(honest, slow)

	q, err := Parse("SELECT o_orderkey FROM orders, lineitem, customer WHERE o_orderkey = l_orderkey AND o_custkey = c_custkey", cat)
	if err != nil {
		t.Fatal(err)
	}

	naive := NewOptimizer(cat, planReg)
	plan, err := naive.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.EnginesUsed) != 1 || plan.EnginesUsed[0] != "liar" {
		t.Fatalf("precondition: uncalibrated optimizer should fall for the liar, used %v", plan.EnginesUsed)
	}
	uncalibrated, err := Execute(plan, q, cat, execReg)
	if err != nil {
		t.Fatal(err)
	}

	// Train the calibrator from a few observed executions.
	cal := NewCalibrator()
	for i := 0; i < 6; i++ {
		tq, err := GenerateQuery(cat, 2+i%3, i%2 == 0, int64(50+i))
		if err != nil {
			t.Fatal(err)
		}
		p, err := naive.Optimize(tq)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(p, tq, cat, execReg)
		if err != nil {
			t.Fatal(err)
		}
		// Pair the lying estimates with truthful actuals.
		cal.ObserveExecution(p, res)
	}
	if cal.SampleCount("liar") == 0 {
		t.Fatal("calibrator saw no liar samples")
	}

	calibrated := NewOptimizer(cat, planReg)
	calibrated.Calibrator = cal
	plan2, err := calibrated.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Execute(plan2, q, cat, execReg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SimSec > uncalibrated.SimSec*1.01 {
		t.Fatalf("calibration did not help: %.3fs vs %.3fs", res2.SimSec, uncalibrated.SimSec)
	}
	for _, e := range plan2.EnginesUsed {
		if e == "liar" && len(plan2.EnginesUsed) == 1 {
			t.Fatalf("calibrated optimizer still trusts the liar exclusively:\n%s", plan2.Describe())
		}
	}
}

func TestDistrustPenalty(t *testing.T) {
	c := NewCalibrator()
	// Uncorrelated samples for engine "x".
	pairs := [][2]float64{{1, 90}, {2, 5}, {3, 70}, {4, 12}, {5, 66}, {6, 8}}
	for _, p := range pairs {
		c.Record("x", p[0], p[1])
	}
	o := &Optimizer{Calibrator: c, MinCorrelation: 0.9}
	raw := 10.0
	if got := o.adjust("x", raw); got <= c.Adjust("x", raw) {
		t.Fatalf("distrusted engine not penalised: %v", got)
	}
	// Without a calibrator the estimate passes through.
	o2 := &Optimizer{}
	if got := o2.adjust("x", raw); got != raw {
		t.Fatalf("nil calibrator changed estimate: %v", got)
	}
}
