package musqle

import (
	"math"
	"sort"
	"sync"
)

// Calibrator implements the estimation-accuracy machinery of Appendix B
// §V-B: MuSQLE records every (estimated, actual) execution-time pair per
// engine, fits a linear correction mapping raw engine estimates to observed
// times, and computes the estimate/actual correlation. Engines whose
// estimates fail to correlate with reality can be discounted by the
// optimizer (low confidence).
type Calibrator struct {
	mu      sync.Mutex
	samples map[string][][2]float64 // engine -> (estimated, actual)
	// MinSamples before a correction is applied (default 3).
	MinSamples int
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator {
	return &Calibrator{samples: make(map[string][][2]float64), MinSamples: 3}
}

// Record stores one estimated-vs-actual observation for an engine.
func (c *Calibrator) Record(engine string, estimated, actual float64) {
	if estimated <= 0 || actual <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples[engine] = append(c.samples[engine], [2]float64{estimated, actual})
}

// SampleCount reports the observations recorded for an engine.
func (c *Calibrator) SampleCount(engine string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.samples[engine])
}

// Adjust maps a raw engine estimate to a calibrated execution-time
// prediction using the fitted linear model; with insufficient samples the
// estimate passes through unchanged.
func (c *Calibrator) Adjust(engine string, estimated float64) float64 {
	c.mu.Lock()
	pts := c.samples[engine]
	minN := c.MinSamples
	c.mu.Unlock()
	if len(pts) < minN {
		return estimated
	}
	slope, intercept := fitLine(pts)
	adjusted := slope*estimated + intercept
	if adjusted <= 0 {
		return estimated
	}
	return adjusted
}

// Correlation returns the Pearson correlation between estimates and actual
// times for an engine (0 when undetermined). The paper uses it as the
// confidence in the engine's cost API.
func (c *Calibrator) Correlation(engine string) float64 {
	c.mu.Lock()
	pts := append([][2]float64(nil), c.samples[engine]...)
	c.mu.Unlock()
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for _, p := range pts {
		cov += (p[0] - mx) * (p[1] - my)
		vx += (p[0] - mx) * (p[0] - mx)
		vy += (p[1] - my) * (p[1] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Trusted reports whether the engine's estimates correlate with actual
// times at or above the threshold (engines with too few samples are trusted
// by default, as in the paper's bootstrap phase).
func (c *Calibrator) Trusted(engine string, minCorrelation float64) bool {
	c.mu.Lock()
	n := len(c.samples[engine])
	minN := c.MinSamples
	c.mu.Unlock()
	if n < minN {
		return true
	}
	return c.Correlation(engine) >= minCorrelation
}

// Engines lists engines with recorded samples, sorted.
func (c *Calibrator) Engines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.samples))
	for n := range c.samples {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// fitLine computes the least-squares line actual = slope*estimated +
// intercept over the samples; degenerate inputs return the identity.
func fitLine(pts [][2]float64) (slope, intercept float64) {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		sxy += p[0] * p[1]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 1, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	if slope <= 0 {
		return 1, 0 // refuse anti-correlated corrections
	}
	return slope, intercept
}

// ObserveExecution feeds a completed execution back into the calibrator:
// each engine's estimated share (from the plan) is paired with its actual
// share (from the result).
func (c *Calibrator) ObserveExecution(plan *OptimizedPlan, res *ExecResult) {
	if plan == nil || res == nil {
		return
	}
	est := perEngineEstimates(plan.Root)
	for engine, actual := range res.PerEngineSec {
		if e, ok := est[engine]; ok {
			c.Record(engine, e, actual)
		}
	}
}

// perEngineEstimates sums each engine's own estimated contribution in the
// plan tree (node cost minus children, attributed to the node's engine).
func perEngineEstimates(n *PlanNode) map[string]float64 {
	out := make(map[string]float64)
	var walk func(n *PlanNode) float64
	walk = func(n *PlanNode) float64 {
		if n == nil {
			return 0
		}
		children := walk(n.Left) + walk(n.Right) + walk(n.Child)
		own := n.CostSec - children
		if own > 0 {
			out[n.Engine] += own
		}
		return n.CostSec
	}
	walk(n)
	return out
}
