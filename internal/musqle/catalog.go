// Package musqle implements the MuSQLE side system of D3.3 §5 / Appendix B:
// multi-engine SQL execution with a location-aware dynamic-programming join
// optimizer. Engines expose the paper's generic API — cost/statistics
// estimation, load cost, statistics injection and execution — and the
// optimizer keeps, for every connected join subgraph, the best plan per
// engine location, inserting intermediate-result moves where beneficial.
package musqle

import (
	"fmt"
	"sort"
	"sync"

	"github.com/asap-project/ires/internal/sqldata"
)

// TableInfo is one catalog entry: the data itself plus its locations.
type TableInfo struct {
	Table *sqldata.Table
	// Engines lists the engine names holding the table.
	Engines []string
	// RowsOverride, when positive, replaces the physical cardinality in
	// catalog statistics — used to plan against scales too large to
	// materialize in memory (the 20/50GB TPC-H experiments).
	RowsOverride int
	// DistinctOverride optionally replaces per-column distinct counts.
	DistinctOverride map[string]int
}

// Catalog is MuSQLE's metastore: schema, statistics and table locations.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableInfo
	// colOwner resolves an unqualified column to its table.
	colOwner map[string]string
	// distinct memoizes per-column distinct counts.
	distinct map[string]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:   make(map[string]*TableInfo),
		colOwner: make(map[string]string),
		distinct: make(map[string]int),
	}
}

// AddTable registers a table resident on the given engines.
func (c *Catalog) AddTable(t *sqldata.Table, engines ...string) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("musqle: nil or unnamed table")
	}
	if len(engines) == 0 {
		return fmt.Errorf("musqle: table %s has no location", t.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, col := range t.Cols {
		if owner, ok := c.colOwner[col]; ok && owner != t.Name {
			return fmt.Errorf("musqle: column %s of %s collides with table %s", col, t.Name, owner)
		}
	}
	c.tables[t.Name] = &TableInfo{Table: t, Engines: append([]string(nil), engines...)}
	for _, col := range t.Cols {
		c.colOwner[col] = t.Name
	}
	return nil
}

// Table returns a catalog entry.
func (c *Catalog) Table(name string) (*TableInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ti, ok := c.tables[name]
	return ti, ok
}

// Tables lists catalog table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OwnerOf resolves an unqualified column name to its table.
func (c *Catalog) OwnerOf(col string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.colOwner[col]
	return t, ok
}

// Rows returns a table's cardinality (0 for unknown tables), honouring any
// statistics override.
func (c *Catalog) Rows(table string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ti, ok := c.tables[table]; ok {
		if ti.RowsOverride > 0 {
			return ti.RowsOverride
		}
		return ti.Table.NumRows()
	}
	return 0
}

// Distinct returns the (memoized) distinct count of table.col, honouring
// any statistics override.
func (c *Catalog) Distinct(table, col string) int {
	key := table + "." + col
	c.mu.RLock()
	if ti, ok := c.tables[table]; ok && ti.DistinctOverride != nil {
		if v, ok2 := ti.DistinctOverride[col]; ok2 {
			c.mu.RUnlock()
			return v
		}
	}
	if v, ok := c.distinct[key]; ok {
		c.mu.RUnlock()
		return v
	}
	ti, ok := c.tables[table]
	c.mu.RUnlock()
	if !ok {
		return 0
	}
	v := ti.Table.DistinctCount(col)
	c.mu.Lock()
	c.distinct[key] = v
	c.mu.Unlock()
	return v
}

// SetStatsOverride installs synthetic statistics for a table — planning at
// arbitrary scale factors without materializing the data. distinct may be
// nil (physical distinct counts are then used).
func (c *Catalog) SetStatsOverride(table string, rows int, distinct map[string]int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ti, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("musqle: unknown table %q", table)
	}
	ti.RowsOverride = rows
	ti.DistinctOverride = distinct
	return nil
}

// ScaleStatsTo multiplies every variable-size TPC-H table's statistics to
// the given scale factor (region and nation stay fixed). Key-column
// distinct counts scale with the table.
func (c *Catalog) ScaleStatsTo(sf float64) error {
	rowsAt := map[string]int{
		"supplier": int(10_000 * sf), "customer": int(150_000 * sf),
		"part": int(200_000 * sf), "partsupp": int(800_000 * sf),
		"orders": int(1_500_000 * sf), "lineitem": int(6_000_000 * sf),
	}
	keyCols := map[string][]string{
		"supplier": {"s_suppkey"}, "customer": {"c_custkey"},
		"part": {"p_partkey"}, "partsupp": {"ps_partkey", "ps_suppkey"},
		"orders": {"o_orderkey", "o_custkey"}, "lineitem": {"l_orderkey", "l_partkey", "l_suppkey"},
	}
	refRows := map[string]int{
		"ps_partkey": int(200_000 * sf), "ps_suppkey": int(10_000 * sf),
		"o_orderkey": int(1_500_000 * sf), "o_custkey": int(150_000 * sf),
		"l_orderkey": int(1_500_000 * sf), "l_partkey": int(200_000 * sf), "l_suppkey": int(10_000 * sf),
		"s_suppkey": int(10_000 * sf), "c_custkey": int(150_000 * sf), "p_partkey": int(200_000 * sf),
	}
	for table, rows := range rowsAt {
		if rows < 2 {
			rows = 2
		}
		distinct := make(map[string]int)
		for _, col := range keyCols[table] {
			d := refRows[col]
			if d < 2 {
				d = 2
			}
			if d > rows {
				d = rows
			}
			distinct[col] = d
		}
		if err := c.SetStatsOverride(table, rows, distinct); err != nil {
			return err
		}
	}
	return nil
}

// LoadTPCH registers a generated TPC-H-like dataset with the paper's
// placement (Fig 13): small legacy tables in PostgreSQL, medium tables in
// MemSQL, large fact tables in HDFS/Spark.
func (c *Catalog) LoadTPCH(tables map[string]*sqldata.Table) error {
	placement := map[string]string{
		"region": EnginePostgres, "nation": EnginePostgres, "customer": EnginePostgres,
		"part": EngineMemSQL, "partsupp": EngineMemSQL, "supplier": EngineMemSQL,
		"orders": EngineSpark, "lineitem": EngineSpark,
	}
	for _, name := range sqldata.TableNames() {
		t, ok := tables[name]
		if !ok {
			return fmt.Errorf("musqle: missing table %s", name)
		}
		if err := c.AddTable(t, placement[name]); err != nil {
			return err
		}
	}
	return nil
}

// LoadTPCHEverywhere registers every table on all three engines (the
// "tables stored in all engines" scenario of MuSQLE Fig 7).
func (c *Catalog) LoadTPCHEverywhere(tables map[string]*sqldata.Table) error {
	for _, name := range sqldata.TableNames() {
		t, ok := tables[name]
		if !ok {
			return fmt.Errorf("musqle: missing table %s", name)
		}
		if err := c.AddTable(t, EnginePostgres, EngineMemSQL, EngineSpark); err != nil {
			return err
		}
	}
	return nil
}
