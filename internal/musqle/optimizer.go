package musqle

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// NodeKind enumerates plan-tree node types.
type NodeKind int

// Plan node kinds.
const (
	NodeScan NodeKind = iota
	NodeJoin
	NodeMove
)

// PlanNode is one node of a multi-engine plan tree. Engine is where the
// node's result resides after execution.
type PlanNode struct {
	Kind NodeKind

	Table       string    // NodeScan
	Left, Right *PlanNode // NodeJoin
	Child       *PlanNode // NodeMove

	Engine   string
	EstRows  float64
	EstBytes float64
	// CostSec is the cumulative estimated cost including children.
	CostSec float64
	// mask records which query tables the subtree covers.
	mask uint
}

// OptimizedPlan is the optimizer's output.
type OptimizedPlan struct {
	Root    *PlanNode
	EstSec  float64 // including per-engine startup
	EstRows float64
	// OptimizationTime is the wall-clock planning duration.
	OptimizationTime time.Duration
	// EnginesUsed lists distinct engines in the plan.
	EnginesUsed []string
}

// Optimizer performs location-aware multi-engine join ordering by dynamic
// programming over connected subgraphs of the join graph, keeping the best
// plan per (subgraph, engine) pair — the dpTable extension of Appendix B
// Algorithm 1.
type Optimizer struct {
	Cat *Catalog
	Reg *Registry
	// StatsInjection mirrors the injectStats API: when true (the default
	// via NewOptimizer) the optimizer's intermediate cardinality estimates
	// are passed to engine cost calls; when false, engines fall back to
	// DefaultRows for intermediates — the ablation of the paper's
	// statistics-injection contribution.
	StatsInjection bool
	// DefaultRows is the cardinality engines assume for un-injected
	// intermediates (default 1000).
	DefaultRows float64
	// RowBytes is the assumed width of intermediate rows (default 48).
	RowBytes float64
	// Calibrator, when set, maps raw engine cost estimates to calibrated
	// execution-time predictions learned from past (estimated, actual)
	// pairs (Appendix B §V-B). Untrusted engines' estimates are inflated.
	Calibrator *Calibrator
	// MinCorrelation is the trust threshold for calibrated engines
	// (default 0, i.e. only the linear correction applies).
	MinCorrelation float64
}

// NewOptimizer builds an optimizer with statistics injection enabled.
func NewOptimizer(cat *Catalog, reg *Registry) *Optimizer {
	return &Optimizer{Cat: cat, Reg: reg, StatsInjection: true, DefaultRows: 1000, RowBytes: 48}
}

// MaxTables bounds the bitmask DP.
const MaxTables = 16

// adjust calibrates one engine's raw estimate. Distrusted engines (their
// estimates do not correlate with observed times) are penalised so plans
// prefer engines with reliable cost APIs.
func (o *Optimizer) adjust(engine string, sec float64) float64 {
	if o.Calibrator == nil {
		return sec
	}
	adjusted := o.Calibrator.Adjust(engine, sec)
	if o.MinCorrelation > 0 && !o.Calibrator.Trusted(engine, o.MinCorrelation) {
		adjusted *= 10
	}
	return adjusted
}

// Optimize finds the minimum-estimated-time multi-engine plan for a query.
func (o *Optimizer) Optimize(q *Query) (*OptimizedPlan, error) {
	return o.optimize(q, o.Reg.Names())
}

// OptimizeOn finds the best plan restricted to a single engine (every table
// not resident there is loaded first) — the single-engine baselines of the
// evaluation.
func (o *Optimizer) OptimizeOn(q *Query, engineName string) (*OptimizedPlan, error) {
	if _, ok := o.Reg.Get(engineName); !ok {
		return nil, fmt.Errorf("musqle: unknown engine %q", engineName)
	}
	return o.optimize(q, []string{engineName})
}

type queryCtx struct {
	q        *Query
	tables   []string
	idx      map[string]int
	adj      []uint // adjacency mask per table index
	edgeSel  map[[2]int]float64
	leafRaw  []float64 // unfiltered cardinalities
	leafRows []float64 // post-filter estimates
	rowsMemo map[uint]float64
}

func (o *Optimizer) optimize(q *Query, allowed []string) (*OptimizedPlan, error) {
	started := time.Now()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Tables) > MaxTables {
		return nil, fmt.Errorf("musqle: %d tables exceeds the %d-table optimizer limit", len(q.Tables), MaxTables)
	}
	ctx, err := o.buildCtx(q)
	if err != nil {
		return nil, err
	}
	sort.Strings(allowed)

	// dp[mask][engine] -> best plan with result residing on engine.
	dp := make([]map[string]*PlanNode, 1<<len(ctx.tables))

	// Leaves.
	for i, t := range ctx.tables {
		mask := uint(1) << i
		dp[mask] = make(map[string]*PlanNode)
		ti, _ := o.Cat.Table(t)
		raw := ctx.leafRaw[i]
		est := ctx.leafRows[i]
		bytes := est * o.RowBytes

		// Scan at each holder.
		holders := make(map[string]bool, len(ti.Engines))
		for _, h := range ti.Engines {
			holders[h] = true
		}
		for _, e := range allowed {
			eng, ok := o.Reg.Get(e)
			if !ok {
				return nil, fmt.Errorf("musqle: unknown engine %q", e)
			}
			if holders[e] {
				dp[mask][e] = &PlanNode{
					Kind: NodeScan, Table: t, Engine: e,
					EstRows: est, EstBytes: bytes,
					CostSec: o.adjust(e, eng.ScanSec(raw, raw*o.RowBytes)),
					mask:    mask,
				}
			}
		}
		// Scanning on a non-allowed holder then loading is still legal even
		// for the forced single-engine baseline (the data must come from
		// somewhere).
		var cheapestHolder *PlanNode
		for _, h := range ti.Engines {
			eng, ok := o.Reg.Get(h)
			if !ok {
				continue
			}
			n := &PlanNode{
				Kind: NodeScan, Table: t, Engine: h,
				EstRows: est, EstBytes: bytes,
				CostSec: o.adjust(h, eng.ScanSec(raw, raw*o.RowBytes)),
				mask:    mask,
			}
			if cheapestHolder == nil || n.CostSec < cheapestHolder.CostSec {
				cheapestHolder = n
			}
		}
		if cheapestHolder == nil {
			return nil, fmt.Errorf("musqle: table %s resides on no registered engine", t)
		}
		for _, e := range allowed {
			if dp[mask][e] != nil {
				continue
			}
			eng, _ := o.Reg.Get(e)
			dp[mask][e] = &PlanNode{
				Kind: NodeMove, Child: cheapestHolder, Engine: e,
				EstRows: est, EstBytes: bytes,
				CostSec: cheapestHolder.CostSec + o.adjust(e, eng.LoadSec(est, bytes)),
				mask:    mask,
			}
		}
	}

	full := uint(1)<<len(ctx.tables) - 1
	for mask := uint(1); mask <= full; mask++ {
		if bits.OnesCount(mask) < 2 || !ctx.connected(mask) {
			continue
		}
		if dp[mask] == nil {
			dp[mask] = make(map[string]*PlanNode)
		}
		outRows := ctx.rows(mask)
		outBytes := outRows * o.RowBytes
		lowest := mask & (^mask + 1)
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&lowest == 0 {
				continue // canonical split: keep the lowest bit on the left
			}
			rest := mask ^ sub
			if !ctx.connected(sub) || !ctx.connected(rest) || !ctx.joined(sub, rest) {
				continue
			}
			for _, e := range allowed {
				eng, _ := o.Reg.Get(e)
				left := o.atEngine(dp[sub], e, eng, o.RowBytes)
				right := o.atEngine(dp[rest], e, eng, o.RowBytes)
				if left == nil || right == nil {
					continue
				}
				lRows, rRows := left.EstRows, right.EstRows
				if !o.StatsInjection {
					// Without injected statistics the engine assumes a
					// default cardinality for non-base inputs.
					if left.Kind != NodeScan {
						lRows = o.DefaultRows
					}
					if right.Kind != NodeScan {
						rRows = o.DefaultRows
					}
				}
				joinSec, ok := eng.JoinSec(lRows, rRows, outRows)
				if !ok {
					continue
				}
				node := &PlanNode{
					Kind: NodeJoin, Left: left, Right: right, Engine: e,
					EstRows: outRows, EstBytes: outBytes,
					CostSec: left.CostSec + right.CostSec + o.adjust(e, joinSec),
					mask:    mask,
				}
				if cur := dp[mask][e]; cur == nil || node.CostSec < cur.CostSec {
					dp[mask][e] = node
				}
			}
		}
	}

	var best *PlanNode
	bestTotal := math.Inf(1)
	for _, e := range allowed {
		n := dp[full][e]
		if n == nil {
			continue
		}
		total := n.CostSec + startupTotal(o.Reg, n)
		if total < bestTotal {
			best, bestTotal = n, total
		}
	}
	if best == nil {
		return nil, fmt.Errorf("musqle: no feasible plan (engine memory limits?)")
	}
	return &OptimizedPlan{
		Root:             best,
		EstSec:           bestTotal,
		EstRows:          best.EstRows,
		OptimizationTime: time.Since(started),
		EnginesUsed:      enginesOf(best),
	}, nil
}

// atEngine returns the cheapest way to have the subresult resident on e:
// either it is already there, or the best foreign plan is moved in.
func (o *Optimizer) atEngine(options map[string]*PlanNode, e string, eng Engine, rowBytes float64) *PlanNode {
	best := options[e]
	for from, n := range options {
		if from == e {
			continue
		}
		rows := n.EstRows
		if !o.StatsInjection {
			rows = o.DefaultRows
		}
		moved := &PlanNode{
			Kind: NodeMove, Child: n, Engine: e,
			EstRows: n.EstRows, EstBytes: n.EstBytes,
			CostSec: n.CostSec + o.adjust(e, eng.LoadSec(rows, n.EstBytes)),
			mask:    n.mask,
		}
		if best == nil || moved.CostSec < best.CostSec {
			best = moved
		}
	}
	return best
}

func (o *Optimizer) buildCtx(q *Query) (*queryCtx, error) {
	ctx := &queryCtx{
		q:        q,
		tables:   q.Tables,
		idx:      make(map[string]int, len(q.Tables)),
		adj:      make([]uint, len(q.Tables)),
		edgeSel:  make(map[[2]int]float64),
		rowsMemo: make(map[uint]float64),
	}
	for i, t := range q.Tables {
		ctx.idx[t] = i
	}
	for _, j := range q.Joins {
		a, okA := ctx.idx[j.LeftTable]
		b, okB := ctx.idx[j.RightTable]
		if !okA || !okB {
			return nil, fmt.Errorf("musqle: join references table outside FROM: %+v", j)
		}
		ctx.adj[a] |= 1 << b
		ctx.adj[b] |= 1 << a
		dl := float64(o.Cat.Distinct(j.LeftTable, j.LeftCol))
		dr := float64(o.Cat.Distinct(j.RightTable, j.RightCol))
		sel := 1.0 / math.Max(1, math.Max(dl, dr))
		key := edgeKey(a, b)
		if prev, ok := ctx.edgeSel[key]; ok {
			ctx.edgeSel[key] = prev * sel
		} else {
			ctx.edgeSel[key] = sel
		}
	}
	ctx.leafRaw = make([]float64, len(q.Tables))
	ctx.leafRows = make([]float64, len(q.Tables))
	for i, t := range q.Tables {
		raw := float64(o.Cat.Rows(t))
		ctx.leafRaw[i] = raw
		est := raw
		for _, f := range q.FiltersOn(t) {
			est *= filterSelectivity(o.Cat, t, f)
		}
		if est < 1 {
			est = 1
		}
		ctx.leafRows[i] = est
	}
	return ctx, nil
}

func filterSelectivity(cat *Catalog, table string, f Filter) float64 {
	d := float64(cat.Distinct(table, f.Col))
	if d < 1 {
		d = 1
	}
	switch f.Op {
	case OpEq:
		return 1 / d
	case OpNe:
		return 1 - 1/d
	default:
		return 1.0 / 3.0
	}
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// rows estimates the cardinality of joining all tables in mask under
// attribute independence.
func (c *queryCtx) rows(mask uint) float64 {
	if v, ok := c.rowsMemo[mask]; ok {
		return v
	}
	est := 1.0
	for i := range c.tables {
		if mask&(1<<i) != 0 {
			est *= c.leafRows[i]
		}
	}
	for key, sel := range c.edgeSel {
		if mask&(1<<key[0]) != 0 && mask&(1<<key[1]) != 0 {
			est *= sel
		}
	}
	if est < 1 {
		est = 1
	}
	c.rowsMemo[mask] = est
	return est
}

// connected reports whether the join subgraph induced by mask is connected.
func (c *queryCtx) connected(mask uint) bool {
	if mask == 0 {
		return false
	}
	start := mask & (^mask + 1)
	seen := start
	frontier := start
	for frontier != 0 {
		var next uint
		for i := range c.tables {
			if frontier&(1<<i) != 0 {
				next |= c.adj[i] & mask &^ seen
			}
		}
		seen |= next
		frontier = next
	}
	return seen == mask
}

// joined reports whether at least one join edge crosses the two sets.
func (c *queryCtx) joined(a, b uint) bool {
	for i := range c.tables {
		if a&(1<<i) != 0 && c.adj[i]&b != 0 {
			return true
		}
	}
	return false
}

func enginesOf(n *PlanNode) []string {
	seen := make(map[string]bool)
	var walk func(*PlanNode)
	walk = func(n *PlanNode) {
		if n == nil {
			return
		}
		if n.Kind != NodeMove {
			seen[n.Engine] = true
		}
		walk(n.Left)
		walk(n.Right)
		walk(n.Child)
	}
	walk(n)
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

func startupTotal(reg *Registry, n *PlanNode) float64 {
	total := 0.0
	for _, e := range enginesOf(n) {
		if eng, ok := reg.Get(e); ok {
			total += eng.StartupSec()
		}
	}
	return total
}

// Describe renders the plan tree.
func (p *OptimizedPlan) Describe() string {
	var b []byte
	var walk func(n *PlanNode, depth int)
	indent := func(d int) {
		for i := 0; i < d; i++ {
			b = append(b, ' ', ' ')
		}
	}
	walk = func(n *PlanNode, depth int) {
		if n == nil {
			return
		}
		indent(depth)
		switch n.Kind {
		case NodeScan:
			b = append(b, fmt.Sprintf("scan %s @%s (%.0f rows, %.3fs)\n", n.Table, n.Engine, n.EstRows, n.CostSec)...)
		case NodeMove:
			b = append(b, fmt.Sprintf("move -> %s (%.0f rows, %.3fs)\n", n.Engine, n.EstRows, n.CostSec)...)
			walk(n.Child, depth+1)
		case NodeJoin:
			b = append(b, fmt.Sprintf("join @%s (%.0f rows, %.3fs)\n", n.Engine, n.EstRows, n.CostSec)...)
			walk(n.Left, depth+1)
			walk(n.Right, depth+1)
		}
	}
	walk(p.Root, 0)
	return string(b)
}
