package musqle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/asap-project/ires/internal/sqldata"
)

func TestCalibratorLinearCorrection(t *testing.T) {
	c := NewCalibrator()
	// Engine consistently underestimates 3x (actual = 3*estimated + 1).
	for _, est := range []float64{1, 2, 5, 10, 20} {
		c.Record("biased", est, 3*est+1)
	}
	got := c.Adjust("biased", 8)
	if math.Abs(got-25) > 1e-6 {
		t.Fatalf("Adjust = %v, want 25", got)
	}
	if corr := c.Correlation("biased"); corr < 0.999 {
		t.Fatalf("correlation = %v, want ~1", corr)
	}
	if !c.Trusted("biased", 0.9) {
		t.Fatal("well-correlated engine not trusted")
	}
}

func TestCalibratorPassThroughWithFewSamples(t *testing.T) {
	c := NewCalibrator()
	c.Record("fresh", 10, 30)
	if got := c.Adjust("fresh", 10); got != 10 {
		t.Fatalf("early Adjust = %v, want pass-through", got)
	}
	if !c.Trusted("fresh", 0.9) {
		t.Fatal("bootstrap engine should be trusted")
	}
}

func TestCalibratorUncorrelatedEngineDistrusted(t *testing.T) {
	c := NewCalibrator()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		// Estimates carry no signal at all.
		c.Record("noisy", 1+rng.Float64()*10, 1+rng.Float64()*100)
	}
	if corr := c.Correlation("noisy"); math.Abs(corr) > 0.5 {
		t.Fatalf("correlation = %v for noise", corr)
	}
	if c.Trusted("noisy", 0.8) {
		t.Fatal("uncorrelated engine trusted")
	}
	if got := c.Engines(); len(got) != 1 || got[0] != "noisy" {
		t.Fatalf("Engines = %v", got)
	}
}

func TestCalibratorIgnoresInvalidSamples(t *testing.T) {
	c := NewCalibrator()
	c.Record("x", 0, 5)
	c.Record("x", 5, -1)
	if c.SampleCount("x") != 0 {
		t.Fatal("invalid samples recorded")
	}
}

func TestCalibratorAntiCorrelatedRefused(t *testing.T) {
	c := NewCalibrator()
	for _, est := range []float64{1, 2, 5, 10} {
		c.Record("anti", est, 100/est)
	}
	// Negative slope fits are refused; estimates pass through.
	if got := c.Adjust("anti", 4); got != 4 {
		t.Fatalf("anti-correlated Adjust = %v, want pass-through", got)
	}
}

func TestObserveExecutionFeedsCalibrator(t *testing.T) {
	cat := NewCatalog()
	if err := cat.LoadTPCH(sqldata.Generate(0.002, 5)); err != nil {
		t.Fatal(err)
	}
	reg := DefaultRegistry()
	opt := NewOptimizer(cat, reg)
	cal := NewCalibrator()
	for i := 0; i < 5; i++ {
		q, err := GenerateQuery(cat, 3, true, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(plan, q, cat, reg)
		if err != nil {
			t.Fatal(err)
		}
		cal.ObserveExecution(plan, res)
	}
	if len(cal.Engines()) == 0 {
		t.Fatal("no engines observed")
	}
	for _, e := range cal.Engines() {
		if cal.SampleCount(e) == 0 {
			t.Fatalf("engine %s has no samples", e)
		}
	}
	cal.ObserveExecution(nil, nil) // no-op safety
}

// Property: for any affine relation with positive slope, Adjust recovers
// actual values exactly once enough samples exist.
func TestQuickCalibratorRecoversAffine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := 0.5 + rng.Float64()*5
		intercept := rng.Float64() * 10
		c := NewCalibrator()
		for i := 0; i < 10; i++ {
			est := 1 + rng.Float64()*50
			c.Record("e", est, slope*est+intercept)
		}
		probe := 1 + rng.Float64()*50
		want := slope*probe + intercept
		got := c.Adjust("e", probe)
		return math.Abs(got-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
