package musqle

import (
	"fmt"
	"math/bits"

	"github.com/asap-project/ires/internal/sqldata"
)

// ExecResult is the outcome of executing a multi-engine plan: the actual
// result rows plus the simulated execution time, computed from the
// engines' cost models over the *actual* intermediate cardinalities.
type ExecResult struct {
	Table *sqldata.Table
	// SimSec is the simulated execution duration (including per-engine
	// startup).
	SimSec float64
	// PerEngineSec breaks the time down by engine (moves are attributed to
	// the destination).
	PerEngineSec map[string]float64
	// MoveRows counts rows shipped between engines.
	MoveRows int64
}

// Execute runs the plan bottom-up: scans apply the query's filters, joins
// are hash joins on the predicates crossing the node, moves materialize
// intermediates on the destination engine. The final result is projected
// onto the query's SELECT list.
func Execute(plan *OptimizedPlan, q *Query, cat *Catalog, reg *Registry) (*ExecResult, error) {
	if plan == nil || plan.Root == nil {
		return nil, fmt.Errorf("musqle: nil plan")
	}
	res := &ExecResult{PerEngineSec: make(map[string]float64)}
	idx := make(map[string]int, len(q.Tables))
	for i, t := range q.Tables {
		idx[t] = i
	}
	out, err := execNode(plan.Root, q, cat, reg, idx, res)
	if err != nil {
		return nil, err
	}
	for _, e := range plan.EnginesUsed {
		if eng, ok := reg.Get(e); ok {
			res.SimSec += eng.StartupSec()
			res.PerEngineSec[e] += eng.StartupSec()
		}
	}
	if len(q.Select) > 0 {
		out, err = project(out, q.Select)
		if err != nil {
			return nil, err
		}
	}
	res.Table = out
	return res, nil
}

func execNode(n *PlanNode, q *Query, cat *Catalog, reg *Registry, idx map[string]int, res *ExecResult) (*sqldata.Table, error) {
	eng, ok := reg.Get(n.Engine)
	if !ok {
		return nil, fmt.Errorf("musqle: plan references unknown engine %q", n.Engine)
	}
	switch n.Kind {
	case NodeScan:
		ti, ok := cat.Table(n.Table)
		if !ok {
			return nil, fmt.Errorf("musqle: unknown table %q", n.Table)
		}
		raw := float64(ti.Table.NumRows())
		sec := eng.ScanSec(raw, raw*48)
		res.SimSec += sec
		res.PerEngineSec[n.Engine] += sec
		return applyFilters(ti.Table, q.FiltersOn(n.Table)), nil

	case NodeMove:
		child, err := execNode(n.Child, q, cat, reg, idx, res)
		if err != nil {
			return nil, err
		}
		rows := float64(child.NumRows())
		sec := eng.LoadSec(rows, float64(child.Bytes()))
		res.SimSec += sec
		res.PerEngineSec[n.Engine] += sec
		res.MoveRows += int64(child.NumRows())
		return child, nil

	case NodeJoin:
		left, err := execNode(n.Left, q, cat, reg, idx, res)
		if err != nil {
			return nil, err
		}
		right, err := execNode(n.Right, q, cat, reg, idx, res)
		if err != nil {
			return nil, err
		}
		preds := crossingPreds(q, idx, n.Left.mask, n.Right.mask)
		if len(preds) == 0 {
			return nil, fmt.Errorf("musqle: join node without crossing predicates")
		}
		joined, err := HashJoin(left, right, preds)
		if err != nil {
			return nil, err
		}
		sec, feasible := eng.JoinSec(float64(left.NumRows()), float64(right.NumRows()), float64(joined.NumRows()))
		if !feasible {
			return nil, fmt.Errorf("musqle: engine %s ran out of memory joining %d x %d rows",
				n.Engine, left.NumRows(), right.NumRows())
		}
		res.SimSec += sec
		res.PerEngineSec[n.Engine] += sec
		return joined, nil
	}
	return nil, fmt.Errorf("musqle: unknown node kind %d", n.Kind)
}

// crossingPreds selects the query joins with one side in each mask.
func crossingPreds(q *Query, idx map[string]int, leftMask, rightMask uint) []JoinPred {
	var out []JoinPred
	for _, j := range q.Joins {
		l, r := uint(1)<<idx[j.LeftTable], uint(1)<<idx[j.RightTable]
		switch {
		case leftMask&l != 0 && rightMask&r != 0:
			out = append(out, j)
		case leftMask&r != 0 && rightMask&l != 0:
			out = append(out, JoinPred{
				LeftTable: j.RightTable, LeftCol: j.RightCol,
				RightTable: j.LeftTable, RightCol: j.LeftCol,
			})
		}
	}
	return out
}

func applyFilters(t *sqldata.Table, filters []Filter) *sqldata.Table {
	if len(filters) == 0 {
		return t
	}
	out := &sqldata.Table{Name: t.Name, Cols: t.Cols}
	cols := make([]int, len(filters))
	for i, f := range filters {
		cols[i] = t.ColIndex(f.Col)
	}
	for _, row := range t.Rows {
		keep := true
		for i, f := range filters {
			if cols[i] < 0 || !f.Op.Eval(row[cols[i]], f.Value) {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// HashJoin performs an equality hash join on the given predicates. The
// output schema concatenates both inputs' columns (TPC-H column prefixes
// keep names unique).
func HashJoin(left, right *sqldata.Table, preds []JoinPred) (*sqldata.Table, error) {
	lcols := make([]int, len(preds))
	rcols := make([]int, len(preds))
	for i, p := range preds {
		lcols[i] = left.ColIndex(p.LeftCol)
		rcols[i] = right.ColIndex(p.RightCol)
		if lcols[i] < 0 || rcols[i] < 0 {
			return nil, fmt.Errorf("musqle: join column %s/%s missing from inputs", p.LeftCol, p.RightCol)
		}
	}
	out := &sqldata.Table{
		Name: left.Name + "_" + right.Name,
		Cols: append(append([]string(nil), left.Cols...), right.Cols...),
	}
	// Build on the smaller side.
	build, probe := right, left
	bcols, pcols := rcols, lcols
	buildRight := true
	if left.NumRows() < right.NumRows() {
		build, probe = left, right
		bcols, pcols = lcols, rcols
		buildRight = false
	}
	type key [4]int64 // up to 4 join columns
	if len(preds) > 4 {
		return nil, fmt.Errorf("musqle: more than 4 join predicates between two relations")
	}
	mkKey := func(row []int64, cols []int) key {
		var k key
		for i, c := range cols {
			k[i] = row[c]
		}
		return k
	}
	ht := make(map[key][][]int64, build.NumRows())
	for _, row := range build.Rows {
		k := mkKey(row, bcols)
		ht[k] = append(ht[k], row)
	}
	for _, prow := range probe.Rows {
		k := mkKey(prow, pcols)
		for _, brow := range ht[k] {
			var lrow, rrow []int64
			if buildRight {
				lrow, rrow = prow, brow
			} else {
				lrow, rrow = brow, prow
			}
			combined := make([]int64, 0, len(lrow)+len(rrow))
			combined = append(combined, lrow...)
			combined = append(combined, rrow...)
			out.Rows = append(out.Rows, combined)
		}
	}
	return out, nil
}

func project(t *sqldata.Table, cols []string) (*sqldata.Table, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = t.ColIndex(c)
		if idxs[i] < 0 {
			return nil, fmt.Errorf("musqle: projection column %q not in result", c)
		}
	}
	out := &sqldata.Table{Name: t.Name, Cols: append([]string(nil), cols...)}
	out.Rows = make([][]int64, len(t.Rows))
	for r, row := range t.Rows {
		nr := make([]int64, len(idxs))
		for i, ci := range idxs {
			nr[i] = row[ci]
		}
		out.Rows[r] = nr
	}
	return out, nil
}

// ReferenceExecute computes the query result with filtered nested-loop
// joins in table order — the correctness oracle for tests.
func ReferenceExecute(q *Query, cat *Catalog) (*sqldata.Table, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var acc *sqldata.Table
	joinedMask := uint(0)
	idx := make(map[string]int, len(q.Tables))
	for i, t := range q.Tables {
		idx[t] = i
	}
	remaining := append([]string(nil), q.Tables...)
	filteredOf := func(t string) (*sqldata.Table, error) {
		ti, ok := cat.Table(t)
		if !ok {
			return nil, fmt.Errorf("musqle: unknown table %q", t)
		}
		return applyFilters(ti.Table, q.FiltersOn(t)), nil
	}
	// Greedily attach the smallest connected table next: keeps reference
	// intermediates from exploding on star-shaped queries.
	for len(remaining) > 0 {
		bestIdx := -1
		var bestTable *sqldata.Table
		for i, t := range remaining {
			filtered, err := filteredOf(t)
			if err != nil {
				return nil, err
			}
			if acc != nil && len(crossingPreds(q, idx, joinedMask, 1<<idx[t])) == 0 {
				continue
			}
			if bestIdx < 0 || filtered.NumRows() < bestTable.NumRows() {
				bestIdx, bestTable = i, filtered
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("musqle: reference execution stuck (disconnected graph)")
		}
		t := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if acc == nil {
			acc = bestTable
			joinedMask = 1 << idx[t]
			continue
		}
		preds := crossingPreds(q, idx, joinedMask, 1<<idx[t])
		var err error
		acc, err = nestedLoopJoin(acc, bestTable, preds)
		if err != nil {
			return nil, err
		}
		joinedMask |= 1 << idx[t]
	}
	if bits.OnesCount(joinedMask) != len(q.Tables) {
		return nil, fmt.Errorf("musqle: reference execution incomplete")
	}
	if len(q.Select) > 0 {
		return project(acc, q.Select)
	}
	return acc, nil
}

func nestedLoopJoin(left, right *sqldata.Table, preds []JoinPred) (*sqldata.Table, error) {
	lcols := make([]int, len(preds))
	rcols := make([]int, len(preds))
	for i, p := range preds {
		lcols[i] = left.ColIndex(p.LeftCol)
		rcols[i] = right.ColIndex(p.RightCol)
		if lcols[i] < 0 || rcols[i] < 0 {
			return nil, fmt.Errorf("musqle: join column %s/%s missing", p.LeftCol, p.RightCol)
		}
	}
	out := &sqldata.Table{
		Name: left.Name + "_" + right.Name,
		Cols: append(append([]string(nil), left.Cols...), right.Cols...),
	}
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			match := true
			for i := range preds {
				if lr[lcols[i]] != rr[rcols[i]] {
					match = false
					break
				}
			}
			if match {
				combined := make([]int64, 0, len(lr)+len(rr))
				combined = append(combined, lr...)
				combined = append(combined, rr...)
				out.Rows = append(out.Rows, combined)
			}
		}
	}
	return out, nil
}
