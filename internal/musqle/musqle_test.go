package musqle

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/asap-project/ires/internal/sqldata"
)

func tpchCatalog(t *testing.T, sf float64) *Catalog {
	t.Helper()
	cat := NewCatalog()
	if err := cat.LoadTPCH(sqldata.Generate(sf, 11)); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestParseExampleQuery(t *testing.T) {
	cat := tpchCatalog(t, 0.002)
	q, err := Parse(`SELECT c_custkey, o_orderdate FROM part, partsupp, lineitem, orders, customer, nation
		WHERE p_partkey = ps_partkey AND c_nationkey = n_nationkey AND l_partkey = p_partkey
		AND o_custkey = c_custkey AND o_orderkey = l_orderkey AND p_retailprice > 209000 AND n_name = 7`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 6 || len(q.Joins) != 5 || len(q.Filters) != 2 {
		t.Fatalf("parsed %d tables %d joins %d filters", len(q.Tables), len(q.Joins), len(q.Filters))
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.SQL(), "SELECT c_custkey, o_orderdate") {
		t.Fatalf("SQL() = %s", q.SQL())
	}
}

func TestParseErrors(t *testing.T) {
	cat := tpchCatalog(t, 0.002)
	cases := []string{
		"UPDATE customer SET x=1",
		"SELECT c_custkey",
		"SELECT c_custkey FROM nosuchtable",
		"SELECT nosuchcol FROM customer",
		"SELECT c_custkey FROM customer WHERE c_acctbal ~ 5",
		"SELECT c_custkey FROM customer WHERE o_custkey = c_custkey", // orders not in FROM
		"SELECT c_custkey FROM customer, nation WHERE c_nationkey > n_nationkey",
	}
	for _, sql := range cases {
		if _, err := Parse(sql, cat); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
	// Disconnected join graph rejected at validation.
	q, err := Parse("SELECT c_custkey FROM customer, part", cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err == nil {
		t.Error("cross product accepted")
	}
}

func TestOptimizeResidentEngines(t *testing.T) {
	cat := tpchCatalog(t, 0.002)
	// Plan against realistic TPC-H scale (5GB): at that size, shipping the
	// fact tables anywhere else is prohibitive — the Fig 13 behaviour.
	if err := cat.ScaleStatsTo(5); err != nil {
		t.Fatal(err)
	}
	reg := DefaultRegistry()
	opt := NewOptimizer(cat, reg)

	queries, err := Fig13Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	// q1: all tables in PostgreSQL -> plan must stay there.
	plan, err := opt.Optimize(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.EnginesUsed) != 1 || plan.EnginesUsed[0] != EnginePostgres {
		t.Fatalf("q1 engines = %v\n%s", plan.EnginesUsed, plan.Describe())
	}
	// q2: both tables in MemSQL. The post-filter working set at 5GB is too
	// large for MemSQL's 2GB wall, so plan q2 at a smaller scale where it
	// fits and shipping still loses.
	if err := cat.ScaleStatsTo(0.5); err != nil {
		t.Fatal(err)
	}
	plan2, err := opt.Optimize(queries[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.EnginesUsed) != 1 || plan2.EnginesUsed[0] != EngineMemSQL {
		t.Fatalf("q2 engines = %v", plan2.EnginesUsed)
	}
	// q3: large tables in Spark.
	if err := cat.ScaleStatsTo(5); err != nil {
		t.Fatal(err)
	}
	plan3, err := opt.Optimize(queries[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(plan3.EnginesUsed) != 1 || plan3.EnginesUsed[0] != EngineSpark {
		t.Fatalf("q3 engines = %v", plan3.EnginesUsed)
	}
}

func TestMultiEngineNeverWorseThanForced(t *testing.T) {
	cat := tpchCatalog(t, 0.002)
	reg := DefaultRegistry()
	opt := NewOptimizer(cat, reg)
	queries, err := QuerySet18(cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		multi, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("Q%d: %v", i, err)
		}
		for _, e := range reg.Names() {
			forced, err := opt.OptimizeOn(q, e)
			if err != nil {
				continue // single engine may be infeasible (MemSQL OOM)
			}
			if multi.EstSec > forced.EstSec+1e-9 {
				t.Errorf("Q%d: multi %.3fs worse than forced %s %.3fs", i, multi.EstSec, e, forced.EstSec)
			}
		}
	}
}

func TestExecuteMatchesReference(t *testing.T) {
	cat := tpchCatalog(t, 0.0004)
	reg := DefaultRegistry()
	opt := NewOptimizer(cat, reg)
	queries, err := QuerySet18(cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[:10] {
		plan, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("Q%d optimize: %v", i, err)
		}
		got, err := Execute(plan, q, cat, reg)
		if err != nil {
			t.Fatalf("Q%d execute: %v", i, err)
		}
		want, err := ReferenceExecute(q, cat)
		if err != nil {
			t.Fatalf("Q%d reference: %v", i, err)
		}
		if !sameRows(got.Table, want) {
			t.Fatalf("Q%d (%s): result mismatch: %d vs %d rows", i, q.SQL(), got.Table.NumRows(), want.NumRows())
		}
		if got.SimSec <= 0 {
			t.Fatalf("Q%d: no simulated time", i)
		}
	}
}

// sameRows compares two tables as multisets of rows (column order may
// differ across plans, so compare on the intersection ordering).
func sameRows(a, b *sqldata.Table) bool {
	if a.NumRows() != b.NumRows() {
		return false
	}
	// Reorder b's columns to a's order.
	idx := make([]int, len(a.Cols))
	for i, c := range a.Cols {
		idx[i] = b.ColIndex(c)
		if idx[i] < 0 {
			return false
		}
	}
	canon := func(rows [][]int64, reorder []int) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			var sb strings.Builder
			if reorder == nil {
				for _, v := range r {
					sb.WriteString(itoa64(v))
					sb.WriteByte(',')
				}
			} else {
				for _, j := range reorder {
					sb.WriteString(itoa64(r[j]))
					sb.WriteByte(',')
				}
			}
			out[i] = sb.String()
		}
		sort.Strings(out)
		return out
	}
	ca := canon(a.Rows, nil)
	cb := canon(b.Rows, idx)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	if neg {
		return "-" + string(buf)
	}
	return string(buf)
}

func TestMemSQLMemoryWallAvoided(t *testing.T) {
	cat := NewCatalog()
	tables := sqldata.Generate(0.01, 3)
	// Place the big tables ONLY in MemSQL with a tiny memory limit; the
	// optimizer must route the join elsewhere.
	if err := cat.AddTable(tables["orders"], EngineMemSQL); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(tables["lineitem"], EngineMemSQL); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(PostgresEngine{}, MemSQLEngine{MemLimitBytes: 1e6}, SparkEngine{})
	opt := NewOptimizer(cat, reg)
	q, err := Parse("SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey", cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range plan.EnginesUsed {
		if n == EngineMemSQL {
			// MemSQL may appear for scans but the join must be elsewhere.
			if plan.Root.Kind == NodeJoin && plan.Root.Engine == EngineMemSQL {
				t.Fatalf("join placed on memory-limited MemSQL:\n%s", plan.Describe())
			}
		}
	}
	// Forced MemSQL must be infeasible.
	if _, err := opt.OptimizeOn(q, EngineMemSQL); err == nil {
		t.Fatal("OOM-bound forced plan accepted")
	}
	// Execution of the multi-engine plan still succeeds.
	if _, err := Execute(plan, q, cat, reg); err != nil {
		t.Fatal(err)
	}
}

func TestStatsInjectionAblation(t *testing.T) {
	cat := tpchCatalog(t, 0.005)
	reg := DefaultRegistry()
	withInj := NewOptimizer(cat, reg)
	without := NewOptimizer(cat, reg)
	without.StatsInjection = false

	q, err := Parse(`SELECT l_orderkey FROM lineitem, orders, customer, nation
		WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey AND c_nationkey = n_nationkey AND n_name = 3`, cat)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := withInj.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := without.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Execute(pi, q, cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Execute(pn, q, cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(ri.Table, rn.Table) {
		t.Fatal("ablation changed results")
	}
	// Injected statistics must not yield a slower actual execution.
	if ri.SimSec > rn.SimSec*1.05 {
		t.Errorf("stats injection hurt: %.3fs vs %.3fs", ri.SimSec, rn.SimSec)
	}
}

func TestCatalogErrors(t *testing.T) {
	cat := NewCatalog()
	if err := cat.AddTable(nil, EngineSpark); err == nil {
		t.Fatal("nil table accepted")
	}
	tables := sqldata.Generate(0.001, 1)
	if err := cat.AddTable(tables["part"]); err == nil {
		t.Fatal("location-less table accepted")
	}
	if err := cat.AddTable(tables["part"], EngineSpark); err != nil {
		t.Fatal(err)
	}
	// Column collision.
	dup := &sqldata.Table{Name: "partclone", Cols: []string{"p_partkey"}}
	if err := cat.AddTable(dup, EngineSpark); err == nil {
		t.Fatal("column collision accepted")
	}
	if cat.Rows("missing") != 0 || cat.Distinct("missing", "x") != 0 {
		t.Fatal("missing-table stats nonzero")
	}
	if got := cat.Tables(); len(got) != 1 || got[0] != "part" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestSyntheticRegistry(t *testing.T) {
	reg := SyntheticRegistry(6)
	if len(reg.Names()) != 6 {
		t.Fatalf("names = %v", reg.Names())
	}
	e, ok := reg.Get("engine0")
	if !ok {
		t.Fatal("engine0 missing")
	}
	if s := e.ScanSec(1000, 8000); s <= 0 {
		t.Fatal("scan cost non-positive")
	}
}

// Property: optimizer plans execute to reference-identical results on
// random queries.
func TestQuickPlanCorrectness(t *testing.T) {
	cat := tpchCatalog(t, 0.0005)
	reg := DefaultRegistry()
	opt := NewOptimizer(cat, reg)
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%4)
		q, err := GenerateQuery(cat, n, seed%2 == 0, seed)
		if err != nil {
			return false
		}
		plan, err := opt.Optimize(q)
		if err != nil {
			return false
		}
		got, err := Execute(plan, q, cat, reg)
		if err != nil {
			return false
		}
		want, err := ReferenceExecute(q, cat)
		if err != nil {
			return false
		}
		return sameRows(got.Table, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeErrors(t *testing.T) {
	cat := tpchCatalog(t, 0.001)
	reg := DefaultRegistry()
	opt := NewOptimizer(cat, reg)
	if _, err := opt.OptimizeOn(&Query{Tables: []string{"part"}}, "NoSuchEngine"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	big := &Query{}
	for i := 0; i < MaxTables+1; i++ {
		big.Tables = append(big.Tables, "t")
	}
	if _, err := opt.Optimize(big); err == nil {
		t.Fatal("oversized query accepted")
	}
}
