package musqle

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Engine names of the integrated stack (Appendix B integrates exactly these
// three).
const (
	EnginePostgres = "PostgreSQL"
	EngineMemSQL   = "MemSQL"
	EngineSpark    = "SparkSQL"
)

// Engine is the generic SQL engine API of MuSQLE (Appendix B §IV): cost and
// statistics estimation plus load-cost for intermediate shipping. The
// optimizer is engine-agnostic; integrating a new engine means implementing
// this interface. Statistics injection is modelled by the optimizer passing
// its cardinality estimates into the cost calls (a what-if interface); see
// Optimizer.StatsInjection.
type Engine interface {
	// Name identifies the engine.
	Name() string
	// ScanSec estimates scanning (and filtering) rows of bytes total size
	// resident on this engine.
	ScanSec(rows, bytes float64) float64
	// JoinSec estimates a binary join with the given input/output
	// cardinalities. ok=false signals the engine cannot execute it (e.g.
	// distributed-memory OOM).
	JoinSec(leftRows, rightRows, outRows float64) (sec float64, ok bool)
	// LoadSec estimates materializing an external intermediate of the
	// given size into this engine.
	LoadSec(rows, bytes float64) float64
	// StartupSec is a once-per-query session cost when the engine
	// participates in the plan.
	StartupSec() float64
}

// PostgresEngine models a centralized disk-based RDBMS: instant startup,
// fast for small inputs, single-core scaling, expensive ingest of external
// data.
type PostgresEngine struct{}

// Name implements Engine.
func (PostgresEngine) Name() string { return EnginePostgres }

// ScanSec implements Engine.
func (PostgresEngine) ScanSec(rows, bytes float64) float64 {
	return 0.002 + rows/2e6
}

// JoinSec implements Engine.
func (PostgresEngine) JoinSec(l, r, out float64) (float64, bool) {
	// Single-node hash join: linear in inputs and output, with a mild
	// super-linear term once inputs spill past the buffer cache.
	n := l + r
	sec := 0.002 + n/4e6 + out/4e6
	if n > 5e6 {
		sec += (n - 5e6) * math.Log2(n) / 40e6
	}
	return sec, true
}

// LoadSec implements Engine.
func (PostgresEngine) LoadSec(rows, bytes float64) float64 {
	return 0.3 + bytes/30e6
}

// StartupSec implements Engine.
func (PostgresEngine) StartupSec() float64 { return 0.05 }

// MemSQLEngine models a distributed in-memory store: very fast joins while
// the working set fits the cluster's aggregate memory, hard failure beyond.
type MemSQLEngine struct {
	// MemLimitBytes bounds the join working set (default 2GB, the paper's
	// observed MemSQL failure point).
	MemLimitBytes float64
}

// Name implements Engine.
func (MemSQLEngine) Name() string { return EngineMemSQL }

// ScanSec implements Engine.
func (MemSQLEngine) ScanSec(rows, bytes float64) float64 {
	return 0.01 + rows/2e7
}

// JoinSec implements Engine.
func (e MemSQLEngine) JoinSec(l, r, out float64) (float64, bool) {
	limit := e.MemLimitBytes
	if limit == 0 {
		limit = 2e9
	}
	// Hash tables + intermediate result must fit in memory; ~64B/row with
	// operational overhead x3.
	if (l+r+out)*64*3 > limit {
		return 0, false
	}
	return 0.05 + (l+r)/2e7 + out/2e7, true
}

// LoadSec implements Engine.
func (MemSQLEngine) LoadSec(rows, bytes float64) float64 {
	return 0.2 + bytes/80e6
}

// StartupSec implements Engine.
func (MemSQLEngine) StartupSec() float64 { return 0.1 }

// SparkEngine models the distributed disk-backed executor: session startup
// and per-stage shuffle overheads, linear scaling, no memory wall.
type SparkEngine struct{}

// Name implements Engine.
func (SparkEngine) Name() string { return EngineSpark }

// ScanSec implements Engine.
func (SparkEngine) ScanSec(rows, bytes float64) float64 {
	return 0.5 + rows/1e7
}

// JoinSec implements Engine.
func (SparkEngine) JoinSec(l, r, out float64) (float64, bool) {
	return 1.5 + (l+r)/1e7 + out/1e7, true
}

// LoadSec implements Engine.
func (SparkEngine) LoadSec(rows, bytes float64) float64 {
	return 0.5 + bytes/100e6
}

// StartupSec implements Engine.
func (SparkEngine) StartupSec() float64 { return 6.0 }

// Registry holds the deployed engines.
type Registry struct {
	mu      sync.RWMutex
	engines map[string]Engine
}

// NewRegistry builds a registry with the given engines.
func NewRegistry(engines ...Engine) *Registry {
	r := &Registry{engines: make(map[string]Engine, len(engines))}
	for _, e := range engines {
		r.engines[e.Name()] = e
	}
	return r
}

// DefaultRegistry returns the three-engine stack of the paper.
func DefaultRegistry() *Registry {
	return NewRegistry(PostgresEngine{}, MemSQLEngine{}, SparkEngine{})
}

// Add registers an engine.
func (r *Registry) Add(e Engine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.engines[e.Name()] = e
}

// Get returns an engine by name.
func (r *Registry) Get(name string) (Engine, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.engines[name]
	return e, ok
}

// Names lists engine names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.engines))
	for n := range r.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SyntheticEngine is a tunable engine used by the optimization-time
// benchmarks (MuSQLE Fig 5 simulates 2-6 engine APIs).
type SyntheticEngine struct {
	ID        string
	ScanRate  float64 // rows/sec
	JoinRate  float64 // rows/sec
	Fixed     float64 // per-operation overhead sec
	LoadRate  float64 // bytes/sec
	StartSec  float64
	MaxJoinIn float64 // 0 = unlimited
}

// Name implements Engine.
func (e SyntheticEngine) Name() string { return e.ID }

// ScanSec implements Engine.
func (e SyntheticEngine) ScanSec(rows, bytes float64) float64 {
	return e.Fixed + rows/e.ScanRate
}

// JoinSec implements Engine.
func (e SyntheticEngine) JoinSec(l, r, out float64) (float64, bool) {
	if e.MaxJoinIn > 0 && l+r > e.MaxJoinIn {
		return 0, false
	}
	return e.Fixed + (l+r+out)/e.JoinRate, true
}

// LoadSec implements Engine.
func (e SyntheticEngine) LoadSec(rows, bytes float64) float64 {
	return e.Fixed + bytes/e.LoadRate
}

// StartupSec implements Engine.
func (e SyntheticEngine) StartupSec() float64 { return e.StartSec }

// SyntheticRegistry builds n synthetic engines with varied rates, for the
// engine-count scaling experiments.
func SyntheticRegistry(n int) *Registry {
	r := &Registry{engines: make(map[string]Engine, n)}
	for i := 0; i < n; i++ {
		r.Add(SyntheticEngine{
			ID:       fmt.Sprintf("engine%d", i),
			ScanRate: 1e6 * float64(1+i%4),
			JoinRate: 5e5 * float64(1+i%3),
			Fixed:    0.01 * float64(1+i%5),
			LoadRate: 50e6,
			StartSec: 0.2 * float64(i%3),
		})
	}
	return r
}
