package musqle

import (
	"fmt"
	"strconv"
	"strings"
)

// CmpOp is a comparison operator of a filter predicate.
type CmpOp string

// Supported comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Eval applies the operator.
func (o CmpOp) Eval(a, b int64) bool {
	switch o {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

// JoinPred is an equality join between two tables' columns.
type JoinPred struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// Filter is a comparison of a column against a literal.
type Filter struct {
	Table, Col string
	Op         CmpOp
	Value      int64
}

// Query is a parsed Select-Project-Join query.
type Query struct {
	Select  []string // projected columns; empty means *
	Tables  []string
	Joins   []JoinPred
	Filters []Filter
}

// FiltersOn returns the filters applying to one table.
func (q *Query) FiltersOn(table string) []Filter {
	var out []Filter
	for _, f := range q.Filters {
		if f.Table == table {
			out = append(out, f)
		}
	}
	return out
}

// SQL renders the query back to text.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.Select, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Tables, ", "))
	var preds []string
	for _, j := range q.Joins {
		preds = append(preds, fmt.Sprintf("%s = %s", j.LeftCol, j.RightCol))
	}
	for _, f := range q.Filters {
		preds = append(preds, fmt.Sprintf("%s %s %d", f.Col, f.Op, f.Value))
	}
	if len(preds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(preds, " AND "))
	}
	return b.String()
}

// Parse parses an SPJ query of the form
//
//	SELECT c1, c2 FROM t1, t2 WHERE t1.a = t2.b AND t1.x > 5
//
// Columns may be written qualified (t.col) or bare (col); bare names are
// resolved through the catalog (TPC-H column prefixes make them unique).
// Conjunctive predicates only; literals are integers.
func Parse(sql string, cat *Catalog) (*Query, error) {
	q := &Query{}
	s := strings.Join(strings.Fields(sql), " ") // normalize all whitespace
	s = strings.TrimSpace(strings.TrimSuffix(s, ";"))
	upper := strings.ToUpper(s)
	if !strings.HasPrefix(upper, "SELECT ") {
		return nil, fmt.Errorf("musqle: query must start with SELECT: %q", sql)
	}
	fromIdx := strings.Index(upper, " FROM ")
	if fromIdx < 0 {
		return nil, fmt.Errorf("musqle: missing FROM clause")
	}
	selectPart := strings.TrimSpace(s[len("SELECT "):fromIdx])
	rest := s[fromIdx+len(" FROM "):]
	upperRest := strings.ToUpper(rest)
	wherePart := ""
	fromPart := rest
	if wi := strings.Index(upperRest, " WHERE "); wi >= 0 {
		fromPart = rest[:wi]
		wherePart = rest[wi+len(" WHERE "):]
	}

	// Tables.
	for _, t := range strings.Split(fromPart, ",") {
		name := strings.ToLower(strings.TrimSpace(t))
		if name == "" {
			return nil, fmt.Errorf("musqle: empty table in FROM")
		}
		if _, ok := cat.Table(name); !ok {
			return nil, fmt.Errorf("musqle: unknown table %q", name)
		}
		q.Tables = append(q.Tables, name)
	}

	resolve := func(ref string) (table, col string, err error) {
		ref = strings.ToLower(strings.TrimSpace(ref))
		if dot := strings.Index(ref, "."); dot >= 0 {
			table, col = ref[:dot], ref[dot+1:]
		} else {
			owner, ok := cat.OwnerOf(ref)
			if !ok {
				return "", "", fmt.Errorf("musqle: unknown column %q", ref)
			}
			table, col = owner, ref
		}
		ti, ok := cat.Table(table)
		if !ok {
			return "", "", fmt.Errorf("musqle: unknown table %q", table)
		}
		if ti.Table.ColIndex(col) < 0 {
			return "", "", fmt.Errorf("musqle: table %s has no column %s", table, col)
		}
		inFrom := false
		for _, t := range q.Tables {
			if t == table {
				inFrom = true
			}
		}
		if !inFrom {
			return "", "", fmt.Errorf("musqle: column %s.%s references table outside FROM", table, col)
		}
		return table, col, nil
	}

	// Projection.
	if selectPart != "*" {
		for _, c := range strings.Split(selectPart, ",") {
			_, col, err := resolve(c)
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, col)
		}
	}

	// Predicates.
	if wherePart != "" {
		for _, predStr := range splitAnd(wherePart) {
			pred := strings.TrimSpace(predStr)
			op, lhs, rhs, err := splitCmp(pred)
			if err != nil {
				return nil, err
			}
			lt, lc, err := resolve(lhs)
			if err != nil {
				return nil, err
			}
			if v, errLit := strconv.ParseInt(strings.TrimSpace(rhs), 10, 64); errLit == nil {
				q.Filters = append(q.Filters, Filter{Table: lt, Col: lc, Op: op, Value: v})
				continue
			}
			rt, rc, err := resolve(rhs)
			if err != nil {
				return nil, err
			}
			if op != OpEq {
				return nil, fmt.Errorf("musqle: only equality joins supported: %q", pred)
			}
			if lt == rt {
				return nil, fmt.Errorf("musqle: self-join predicates unsupported: %q", pred)
			}
			q.Joins = append(q.Joins, JoinPred{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc})
		}
	}
	return q, nil
}

func splitAnd(where string) []string {
	upper := strings.ToUpper(where)
	var out []string
	start := 0
	for {
		i := strings.Index(upper[start:], " AND ")
		if i < 0 {
			out = append(out, where[start:])
			return out
		}
		out = append(out, where[start:start+i])
		start += i + len(" AND ")
	}
}

func splitCmp(pred string) (CmpOp, string, string, error) {
	for _, op := range []CmpOp{OpNe, OpLe, OpGe, OpEq, OpLt, OpGt} {
		if i := strings.Index(pred, string(op)); i >= 0 {
			return op, pred[:i], pred[i+len(op):], nil
		}
	}
	return "", "", "", fmt.Errorf("musqle: no comparison operator in %q", pred)
}

// Validate checks the query's join graph is connected (required by the
// optimizer; cross products are rejected as in the MuSQLE prototype).
func (q *Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("musqle: no tables")
	}
	if len(q.Tables) == 1 {
		return nil
	}
	idx := make(map[string]int, len(q.Tables))
	for i, t := range q.Tables {
		idx[t] = i
	}
	adj := make(map[int][]int)
	for _, j := range q.Joins {
		a, b := idx[j.LeftTable], idx[j.RightTable]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	seen := map[int]bool{0: true}
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if len(seen) != len(q.Tables) {
		return fmt.Errorf("musqle: join graph disconnected (cross products unsupported)")
	}
	return nil
}
