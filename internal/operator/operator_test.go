package operator

import (
	"fmt"
	"testing"

	"github.com/asap-project/ires/internal/metadata"
)

const lineCountDesc = `
Constraints.Engine=Spark
Constraints.Output.number=1
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=LineCount
Optimization.cost=1.0
Optimization.execTime=1.0
Execution.Arguments.number=2
Execution.Output0.path=$HDFS_OP_DIR/lines.out
`

func TestNewMaterialized(t *testing.T) {
	m, err := NewMaterialized("LineCount", metadata.MustParse(lineCountDesc))
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine() != "Spark" {
		t.Errorf("Engine = %q", m.Engine())
	}
	if m.Algorithm() != "LineCount" {
		t.Errorf("Algorithm = %q", m.Algorithm())
	}
	if m.Inputs() != 1 || m.Outputs() != 1 {
		t.Errorf("arity = %d/%d", m.Inputs(), m.Outputs())
	}
}

func TestNewMaterializedMissingCompulsory(t *testing.T) {
	if _, err := NewMaterialized("x", metadata.MustParse("Constraints.Engine=Spark")); err == nil {
		t.Fatal("missing algorithm should fail")
	}
	if _, err := NewMaterialized("x", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=a")); err == nil {
		t.Fatal("missing engine should fail")
	}
	if _, err := NewMaterialized("x", nil); err == nil {
		t.Fatal("nil metadata should fail")
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := NewDataset("textData", metadata.MustParse(`
Constraints.Engine.FS=HDFS
Constraints.type=text
Execution.path=hdfs:///user/asap/input/textData
Optimization.size=932E06
Optimization.documents=1200
`))
	if !d.IsMaterialized() {
		t.Fatal("dataset with path should be materialized")
	}
	if got := d.SizeBytes(); got != 932000000 {
		t.Errorf("SizeBytes = %d", got)
	}
	if got := d.Records(); got != 1200 {
		t.Errorf("Records = %d", got)
	}
	abstract := NewDataset("d1", nil)
	if abstract.IsMaterialized() {
		t.Fatal("empty dataset should be abstract")
	}
	if abstract.SizeBytes() != 0 || abstract.Records() != 0 {
		t.Fatal("abstract dataset should have zero size/records")
	}
}

func TestMatchesAbstract(t *testing.T) {
	m, err := NewMaterialized("tfidf_mahout", metadata.MustParse(`
Constraints.Engine=Hadoop
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.OpSpecification.Algorithm.name=TF_IDF
`))
	if err != nil {
		t.Fatal(err)
	}
	a := NewAbstract("tfidf", metadata.MustParse(`
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Output.number=1
`))
	if !m.MatchesAbstract(a) {
		t.Fatal("materialized should match abstract")
	}
	wrongArity := NewAbstract("tfidf2", metadata.MustParse(`
Constraints.Input.number=2
Constraints.OpSpecification.Algorithm.name=TF_IDF
`))
	if m.MatchesAbstract(wrongArity) {
		t.Fatal("arity mismatch should not match")
	}
}

func TestAcceptsInput(t *testing.T) {
	m, err := NewMaterialized("kmeans_cilk", metadata.MustParse(`
Constraints.Engine=Cilk
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Input0.Engine.FS=HDFS
Constraints.Input0.type=arff
`))
	if err != nil {
		t.Fatal(err)
	}
	good := metadata.MustParse("Engine.FS=HDFS\ntype=arff")
	bad := metadata.MustParse("Engine.FS=HDFS\ntype=text")
	if !m.AcceptsInput(0, good) {
		t.Fatal("arff input should be accepted")
	}
	if m.AcceptsInput(0, bad) {
		t.Fatal("text input should be rejected")
	}
	// Input slot without constraints accepts anything.
	if !m.AcceptsInput(1, bad) {
		t.Fatal("unconstrained slot should accept anything")
	}
}

func TestLibraryIndexAndMatch(t *testing.T) {
	lib := NewLibrary()
	for i, eng := range []string{"Spark", "Hadoop", "Java"} {
		desc := fmt.Sprintf("Constraints.Engine=%s\nConstraints.OpSpecification.Algorithm.name=TF_IDF", eng)
		if _, err := lib.AddOperatorDescription(fmt.Sprintf("tfidf_%d", i), desc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lib.AddOperatorDescription("kmeans_0",
		"Constraints.Engine=Spark\nConstraints.OpSpecification.Algorithm.name=kmeans"); err != nil {
		t.Fatal(err)
	}

	a := NewAbstract("tfidf", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=TF_IDF"))
	got := lib.FindMaterialized(a)
	if len(got) != 3 {
		t.Fatalf("FindMaterialized found %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Name >= got[i].Name {
			t.Fatal("results not sorted by name")
		}
	}

	// Unconstrained abstract matches everything.
	any := NewAbstract("any", metadata.New())
	if n := len(lib.FindMaterialized(any)); n != 4 {
		t.Fatalf("unconstrained match found %d, want 4", n)
	}

	// Removal updates the index.
	if !lib.RemoveOperator("tfidf_1") {
		t.Fatal("RemoveOperator failed")
	}
	if n := len(lib.FindMaterialized(a)); n != 2 {
		t.Fatalf("after removal found %d, want 2", n)
	}
	if lib.RemoveOperator("tfidf_1") {
		t.Fatal("double remove should report false")
	}
}

func TestLibraryReplaceOperator(t *testing.T) {
	lib := NewLibrary()
	if _, err := lib.AddOperatorDescription("op",
		"Constraints.Engine=Spark\nConstraints.OpSpecification.Algorithm.name=a"); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.AddOperatorDescription("op",
		"Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=b"); err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 1 {
		t.Fatalf("Len = %d, want 1", lib.Len())
	}
	a := NewAbstract("a", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=a"))
	if len(lib.FindMaterialized(a)) != 0 {
		t.Fatal("stale index entry after replacement")
	}
	b := NewAbstract("b", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=b"))
	if len(lib.FindMaterialized(b)) != 1 {
		t.Fatal("replacement not indexed")
	}
}

func TestLibraryDatasets(t *testing.T) {
	lib := NewLibrary()
	if _, err := lib.AddDatasetDescription("logs", "Execution.path=hdfs:///logs"); err != nil {
		t.Fatal(err)
	}
	d, ok := lib.Dataset("logs")
	if !ok || !d.IsMaterialized() {
		t.Fatal("dataset lookup failed")
	}
	if len(lib.Datasets()) != 1 {
		t.Fatal("Datasets() wrong length")
	}
	if _, ok := lib.Dataset("absent"); ok {
		t.Fatal("absent dataset reported present")
	}
}

func TestLibraryParseErrors(t *testing.T) {
	lib := NewLibrary()
	if _, err := lib.AddOperatorDescription("bad", "not a property"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := lib.AddDatasetDescription("bad", "also not"); err == nil {
		t.Fatal("expected parse error")
	}
	if err := lib.AddOperator(nil); err == nil {
		t.Fatal("expected nil operator error")
	}
	if err := lib.AddDataset(nil); err == nil {
		t.Fatal("expected nil dataset error")
	}
}
