package operator

import (
	"fmt"
	"sort"
	"sync"

	"github.com/asap-project/ires/internal/metadata"
)

// Library is the IReS operator library: the store of materialized operators
// and named datasets. Matching an abstract operator against the library is
// accelerated by an index on highly selective metadata attributes — the
// algorithm name — so only operators with the right algorithm are examined
// by the full tree-matching pass (D3.3 §2.2.3).
//
// Library is safe for concurrent use.
type Library struct {
	mu          sync.RWMutex
	ops         map[string]*Materialized
	byAlgorithm map[string][]string // algorithm -> sorted operator names
	datasets    map[string]*Dataset
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{
		ops:         make(map[string]*Materialized),
		byAlgorithm: make(map[string][]string),
		datasets:    make(map[string]*Dataset),
	}
}

// AddOperator registers a materialized operator. Re-registering a name
// replaces the previous definition.
func (l *Library) AddOperator(m *Materialized) error {
	if m == nil {
		return fmt.Errorf("library: nil operator")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.ops[m.Name]; ok {
		l.removeFromIndexLocked(old)
	}
	l.ops[m.Name] = m
	alg := m.Algorithm()
	names := l.byAlgorithm[alg]
	i := sort.SearchStrings(names, m.Name)
	if i == len(names) || names[i] != m.Name {
		names = append(names, "")
		copy(names[i+1:], names[i:])
		names[i] = m.Name
		l.byAlgorithm[alg] = names
	}
	return nil
}

// AddOperatorDescription parses a description string and registers the
// resulting operator under the given name.
func (l *Library) AddOperatorDescription(name, description string) (*Materialized, error) {
	meta, err := metadata.ParseString(description)
	if err != nil {
		return nil, fmt.Errorf("library: operator %s: %w", name, err)
	}
	m, err := NewMaterialized(name, meta)
	if err != nil {
		return nil, err
	}
	if err := l.AddOperator(m); err != nil {
		return nil, err
	}
	return m, nil
}

// RemoveOperator deletes an operator by name; it reports whether the
// operator existed.
func (l *Library) RemoveOperator(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.ops[name]
	if !ok {
		return false
	}
	delete(l.ops, name)
	l.removeFromIndexLocked(m)
	return true
}

func (l *Library) removeFromIndexLocked(m *Materialized) {
	alg := m.Algorithm()
	names := l.byAlgorithm[alg]
	i := sort.SearchStrings(names, m.Name)
	if i < len(names) && names[i] == m.Name {
		l.byAlgorithm[alg] = append(names[:i], names[i+1:]...)
	}
}

// Operator returns a registered operator by name.
func (l *Library) Operator(name string) (*Materialized, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	m, ok := l.ops[name]
	return m, ok
}

// Operators returns all registered operators sorted by name.
func (l *Library) Operators() []*Materialized {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.ops))
	for n := range l.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Materialized, len(names))
	for i, n := range names {
		out[i] = l.ops[n]
	}
	return out
}

// FindMaterialized returns all materialized operators matching the abstract
// operator, in deterministic (name) order. When the abstract operator
// declares an algorithm, only the indexed candidates are tree-matched.
func (l *Library) FindMaterialized(a *Abstract) []*Materialized {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var candidates []string
	if alg := a.Algorithm(); alg != "" && alg != metadata.Wildcard {
		candidates = l.byAlgorithm[alg]
	} else {
		candidates = make([]string, 0, len(l.ops))
		for n := range l.ops {
			candidates = append(candidates, n)
		}
		sort.Strings(candidates)
	}
	var out []*Materialized
	for _, name := range candidates {
		m := l.ops[name]
		if m.MatchesAbstract(a) {
			out = append(out, m)
		}
	}
	return out
}

// AddDataset registers a named dataset description.
func (l *Library) AddDataset(d *Dataset) error {
	if d == nil {
		return fmt.Errorf("library: nil dataset")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.datasets[d.Name] = d
	return nil
}

// AddDatasetDescription parses a dataset description string and registers it.
func (l *Library) AddDatasetDescription(name, description string) (*Dataset, error) {
	meta, err := metadata.ParseString(description)
	if err != nil {
		return nil, fmt.Errorf("library: dataset %s: %w", name, err)
	}
	d := NewDataset(name, meta)
	if err := l.AddDataset(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Dataset returns a registered dataset by name.
func (l *Library) Dataset(name string) (*Dataset, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d, ok := l.datasets[name]
	return d, ok
}

// Datasets returns all registered datasets sorted by name.
func (l *Library) Datasets() []*Dataset {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.datasets))
	for n := range l.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Dataset, len(names))
	for i, n := range names {
		out[i] = l.datasets[n]
	}
	return out
}

// Len reports the number of registered operators.
func (l *Library) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.ops)
}
