package operator

import (
	"fmt"
	"sort"
	"sync"

	"github.com/asap-project/ires/internal/metadata"
)

// Library is the IReS operator library: the store of materialized operators
// and named datasets. Matching an abstract operator against the library is
// accelerated by an index on highly selective metadata attributes — the
// algorithm name — so only operators with the right algorithm are examined
// by the full tree-matching pass (D3.3 §2.2.3). On top of that, full match
// results are memoized per abstract constraints tree and maintained
// incrementally on AddOperator/RemoveOperator, so the planner's repeated
// FindMaterialized calls are map lookups instead of tree-matching scans.
//
// Library is safe for concurrent use.
type Library struct {
	mu          sync.RWMutex
	ops         map[string]*Materialized
	byAlgorithm map[string][]string // algorithm -> sorted operator names
	datasets    map[string]*Dataset
	// matchIdx memoizes FindMaterialized: abstract Constraints tree string
	// -> the matching operator names (sorted) plus the constraints tree the
	// incremental maintenance re-matches new operators against.
	matchIdx map[string]*matchEntry
	// gen counts operator mutations; the planner folds it into its cache
	// validity so library changes invalidate memoized plans.
	gen uint64
	// listeners are notified (with the operator name, under l.mu) on every
	// operator mutation — the planner registers one to turn library changes
	// into typed partial-invalidation events.
	listeners []func(opName string)
}

// matchEntry is one memoized FindMaterialized result.
type matchEntry struct {
	constraints *metadata.Tree // cloned abstract Constraints subtree (may be nil)
	names       []string       // sorted names of matching operators
}

// maxMatchIdx bounds the number of distinct abstract shapes memoized;
// overflow clears the index (it rebuilds on demand).
const maxMatchIdx = 256

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{
		ops:         make(map[string]*Materialized),
		byAlgorithm: make(map[string][]string),
		datasets:    make(map[string]*Dataset),
		matchIdx:    make(map[string]*matchEntry),
	}
}

// Gen returns the library's operator-mutation generation counter.
func (l *Library) Gen() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.gen
}

// AddChangeListener registers a callback invoked with the operator name on
// every AddOperator/RemoveOperator, after the generation counter bumps. The
// callback runs with the library lock held and must not call back into the
// library; enqueueing the event for later processing is the intended use.
func (l *Library) AddChangeListener(fn func(opName string)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.listeners = append(l.listeners, fn)
}

func (l *Library) notifyLocked(opName string) {
	for _, fn := range l.listeners {
		fn(opName)
	}
}

// AddOperator registers a materialized operator. Re-registering a name
// replaces the previous definition.
func (l *Library) AddOperator(m *Materialized) error {
	if m == nil {
		return fmt.Errorf("library: nil operator")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.ops[m.Name]; ok {
		l.removeFromIndexLocked(old)
	}
	l.ops[m.Name] = m
	alg := m.Algorithm()
	names := l.byAlgorithm[alg]
	i := sort.SearchStrings(names, m.Name)
	if i == len(names) || names[i] != m.Name {
		names = append(names, "")
		copy(names[i+1:], names[i:])
		names[i] = m.Name
		l.byAlgorithm[alg] = names
	}
	// Incrementally maintain the memoized match lists: the new definition
	// joins every cached abstract shape it satisfies (replacements were
	// dropped by removeFromIndexLocked above).
	cons := m.Meta.Node("Constraints")
	for _, e := range l.matchIdx {
		if metadata.Matches(e.constraints, cons) {
			e.names = insertSorted(e.names, m.Name)
		}
	}
	l.gen++
	l.notifyLocked(m.Name)
	return nil
}

// insertSorted adds name to a sorted slice if absent.
func insertSorted(names []string, name string) []string {
	i := sort.SearchStrings(names, name)
	if i < len(names) && names[i] == name {
		return names
	}
	names = append(names, "")
	copy(names[i+1:], names[i:])
	names[i] = name
	return names
}

// removeSorted deletes name from a sorted slice if present.
func removeSorted(names []string, name string) []string {
	i := sort.SearchStrings(names, name)
	if i < len(names) && names[i] == name {
		return append(names[:i], names[i+1:]...)
	}
	return names
}

// AddOperatorDescription parses a description string and registers the
// resulting operator under the given name.
func (l *Library) AddOperatorDescription(name, description string) (*Materialized, error) {
	meta, err := metadata.ParseString(description)
	if err != nil {
		return nil, fmt.Errorf("library: operator %s: %w", name, err)
	}
	m, err := NewMaterialized(name, meta)
	if err != nil {
		return nil, err
	}
	if err := l.AddOperator(m); err != nil {
		return nil, err
	}
	return m, nil
}

// RemoveOperator deletes an operator by name; it reports whether the
// operator existed.
func (l *Library) RemoveOperator(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.ops[name]
	if !ok {
		return false
	}
	delete(l.ops, name)
	l.removeFromIndexLocked(m)
	l.gen++
	l.notifyLocked(name)
	return true
}

func (l *Library) removeFromIndexLocked(m *Materialized) {
	alg := m.Algorithm()
	names := l.byAlgorithm[alg]
	i := sort.SearchStrings(names, m.Name)
	if i < len(names) && names[i] == m.Name {
		l.byAlgorithm[alg] = append(names[:i], names[i+1:]...)
	}
	for _, e := range l.matchIdx {
		e.names = removeSorted(e.names, m.Name)
	}
}

// Operator returns a registered operator by name.
func (l *Library) Operator(name string) (*Materialized, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	m, ok := l.ops[name]
	return m, ok
}

// Operators returns all registered operators sorted by name.
func (l *Library) Operators() []*Materialized {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.ops))
	for n := range l.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Materialized, len(names))
	for i, n := range names {
		out[i] = l.ops[n]
	}
	return out
}

// FindMaterialized returns all materialized operators matching the abstract
// operator, in deterministic (name) order. Matching depends only on the
// abstract operator's Constraints subtree, so results are memoized per
// constraints shape and maintained incrementally on operator mutation; a
// miss falls back to the algorithm-indexed tree-matching scan.
func (l *Library) FindMaterialized(a *Abstract) []*Materialized {
	cons := a.Meta.Node("Constraints")
	key := ""
	if cons != nil {
		key = cons.String()
	}
	l.mu.RLock()
	if e, ok := l.matchIdx[key]; ok {
		out := l.resolveLocked(e.names)
		l.mu.RUnlock()
		return out
	}
	l.mu.RUnlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.matchIdx[key]; ok {
		return l.resolveLocked(e.names)
	}
	names := l.matchNamesLocked(a)
	var consClone *metadata.Tree
	if cons != nil {
		consClone = cons.Clone()
	}
	if len(l.matchIdx) >= maxMatchIdx {
		l.matchIdx = make(map[string]*matchEntry)
	}
	l.matchIdx[key] = &matchEntry{constraints: consClone, names: names}
	return l.resolveLocked(names)
}

// matchNamesLocked runs the algorithm-prefiltered tree-matching scan and
// returns the sorted matching operator names.
func (l *Library) matchNamesLocked(a *Abstract) []string {
	var candidates []string
	if alg := a.Algorithm(); alg != "" && alg != metadata.Wildcard {
		candidates = l.byAlgorithm[alg]
	} else {
		candidates = make([]string, 0, len(l.ops))
		for n := range l.ops {
			candidates = append(candidates, n)
		}
		sort.Strings(candidates)
	}
	var names []string
	for _, name := range candidates {
		if l.ops[name].MatchesAbstract(a) {
			names = append(names, name)
		}
	}
	return names
}

// resolveLocked maps operator names to their current definitions.
func (l *Library) resolveLocked(names []string) []*Materialized {
	if len(names) == 0 {
		return nil
	}
	out := make([]*Materialized, 0, len(names))
	for _, n := range names {
		if m, ok := l.ops[n]; ok {
			out = append(out, m)
		}
	}
	return out
}

// ResetMatchIndex drops the memoized FindMaterialized results; they rebuild
// on demand. Match results are unchanged — the generation counter does not
// move — so this exists for cold-start benchmarking, not invalidation,
// which is maintained incrementally on operator mutation.
func (l *Library) ResetMatchIndex() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.matchIdx = make(map[string]*matchEntry)
}

// Engines returns the distinct engines of the registered operators, sorted.
// The planner fingerprints engine availability against this set.
func (l *Library) Engines() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := make(map[string]bool)
	for _, m := range l.ops {
		seen[m.Engine()] = true
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// AddDataset registers a named dataset description.
func (l *Library) AddDataset(d *Dataset) error {
	if d == nil {
		return fmt.Errorf("library: nil dataset")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.datasets[d.Name] = d
	return nil
}

// AddDatasetDescription parses a dataset description string and registers it.
func (l *Library) AddDatasetDescription(name, description string) (*Dataset, error) {
	meta, err := metadata.ParseString(description)
	if err != nil {
		return nil, fmt.Errorf("library: dataset %s: %w", name, err)
	}
	d := NewDataset(name, meta)
	if err := l.AddDataset(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Dataset returns a registered dataset by name.
func (l *Library) Dataset(name string) (*Dataset, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d, ok := l.datasets[name]
	return d, ok
}

// Datasets returns all registered datasets sorted by name.
func (l *Library) Datasets() []*Dataset {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.datasets))
	for n := range l.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Dataset, len(names))
	for i, n := range names {
		out[i] = l.datasets[n]
	}
	return out
}

// Len reports the number of registered operators.
func (l *Library) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.ops)
}
