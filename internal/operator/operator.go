// Package operator defines the execution artefacts of IReS: datasets,
// abstract operators, materialized operators, and the operator library that
// stores materialized implementations together with a selective-attribute
// index used by the planner's matching phase (D3.3 §2.1, §2.2.3).
package operator

import (
	"fmt"
	"strconv"

	"github.com/asap-project/ires/internal/metadata"
)

// Well-known metadata paths used across the platform. These mirror the
// description files of D3.3 §3.
const (
	PathEngine        = "Constraints.Engine"
	PathEngineFS      = "Constraints.Engine.FS"
	PathAlgorithm     = "Constraints.OpSpecification.Algorithm.name"
	PathInputNumber   = "Constraints.Input.number"
	PathOutputNumber  = "Constraints.Output.number"
	PathExecutionPath = "Execution.path"
	PathDocuments     = "Optimization.documents"
	PathSize          = "Optimization.size"
	PathType          = "Constraints.type"
)

// Dataset describes a dataset node. A dataset is materialized when it has
// concrete execution information (a path) and existing metadata; abstract
// datasets (intermediate results in a workflow) carry no execution info.
type Dataset struct {
	Name string
	Meta *metadata.Tree
}

// NewDataset builds a dataset from its description tree. A nil tree is
// replaced by an empty one.
func NewDataset(name string, meta *metadata.Tree) *Dataset {
	if meta == nil {
		meta = metadata.New()
	}
	return &Dataset{Name: name, Meta: meta}
}

// IsMaterialized reports whether the dataset refers to existing data
// (carries an Execution.path).
func (d *Dataset) IsMaterialized() bool {
	if d == nil || d.Meta == nil {
		return false
	}
	v, ok := d.Meta.Get(PathExecutionPath)
	return ok && v != ""
}

// SizeBytes returns the Optimization.size field (bytes), or 0 when unknown.
func (d *Dataset) SizeBytes() int64 {
	if d == nil || d.Meta == nil {
		return 0
	}
	v, _ := d.Meta.Get(PathSize)
	n, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0
	}
	return int64(n)
}

// Records returns the record count of the dataset: Optimization.documents,
// falling back to Optimization.count, or 0 when unknown.
func (d *Dataset) Records() int64 {
	if d == nil || d.Meta == nil {
		return 0
	}
	for _, p := range []string{PathDocuments, "Optimization.count"} {
		if v, ok := d.Meta.Get(p); ok {
			if n, err := strconv.ParseFloat(v, 64); err == nil {
				return int64(n)
			}
		}
	}
	return 0
}

// Constraints returns the dataset's Constraints subtree (possibly nil).
func (d *Dataset) Constraints() *metadata.Tree {
	if d == nil || d.Meta == nil {
		return nil
	}
	return d.Meta.Node("Constraints")
}

// Abstract is an operator as it appears in an abstract workflow: a
// functionality contract (algorithm name, arity) that materialized
// implementations must satisfy.
type Abstract struct {
	Name string
	Meta *metadata.Tree
}

// NewAbstract builds an abstract operator from its description tree.
func NewAbstract(name string, meta *metadata.Tree) *Abstract {
	if meta == nil {
		meta = metadata.New()
	}
	return &Abstract{Name: name, Meta: meta}
}

// Algorithm returns the declared algorithm name ("" when unconstrained).
func (a *Abstract) Algorithm() string { return a.Meta.GetDefault(PathAlgorithm, "") }

// Inputs returns the declared input arity (defaults to 1).
func (a *Abstract) Inputs() int { return atoiDefault(a.Meta, PathInputNumber, 1) }

// Outputs returns the declared output arity (defaults to 1).
func (a *Abstract) Outputs() int { return atoiDefault(a.Meta, PathOutputNumber, 1) }

// Materialized is a concrete operator implementation bound to an engine,
// stored in the operator library.
type Materialized struct {
	Name string
	Meta *metadata.Tree
}

// NewMaterialized builds a materialized operator from its description.
func NewMaterialized(name string, meta *metadata.Tree) (*Materialized, error) {
	if meta == nil {
		return nil, fmt.Errorf("operator %s: nil metadata", name)
	}
	m := &Materialized{Name: name, Meta: meta}
	if m.Engine() == "" {
		return nil, fmt.Errorf("operator %s: missing compulsory field %s", name, PathEngine)
	}
	if m.Algorithm() == "" {
		return nil, fmt.Errorf("operator %s: missing compulsory field %s", name, PathAlgorithm)
	}
	return m, nil
}

// Engine returns the engine the implementation runs on.
func (m *Materialized) Engine() string { return m.Meta.GetDefault(PathEngine, "") }

// Algorithm returns the implemented algorithm name.
func (m *Materialized) Algorithm() string { return m.Meta.GetDefault(PathAlgorithm, "") }

// Inputs returns the input arity.
func (m *Materialized) Inputs() int { return atoiDefault(m.Meta, PathInputNumber, 1) }

// Outputs returns the output arity.
func (m *Materialized) Outputs() int { return atoiDefault(m.Meta, PathOutputNumber, 1) }

// InputConstraint returns the constraints subtree for input i
// (Constraints.Input<i>), or nil when the operator accepts anything.
func (m *Materialized) InputConstraint(i int) *metadata.Tree {
	return m.Meta.Node(fmt.Sprintf("Constraints.Input%d", i))
}

// OutputSpec returns the specification subtree for output i
// (Constraints.Output<i>), or nil when unspecified.
func (m *Materialized) OutputSpec(i int) *metadata.Tree {
	return m.Meta.Node(fmt.Sprintf("Constraints.Output%d", i))
}

// MatchesAbstract reports whether this implementation satisfies the abstract
// operator's constraints (tree matching, D3.3 §2.1).
func (m *Materialized) MatchesAbstract(a *Abstract) bool {
	return metadata.Matches(a.Meta.Node("Constraints"), m.Meta.Node("Constraints"))
}

// AcceptsInput reports whether the given dataset constraints satisfy the
// operator's input-i requirements.
func (m *Materialized) AcceptsInput(i int, datasetConstraints *metadata.Tree) bool {
	req := m.InputConstraint(i)
	if req == nil {
		return true
	}
	return metadata.Matches(req, datasetConstraints)
}

// Params returns the operator-specific execution parameters declared under
// Optimization.param.* (e.g. Optimization.param.k=8), parsed as floats.
func (m *Materialized) Params() map[string]float64 {
	out := make(map[string]float64)
	node := m.Meta.Node("Optimization.param")
	if node == nil {
		return out
	}
	for _, name := range node.Children() {
		if v, err := strconv.ParseFloat(node.Child(name).Value(), 64); err == nil {
			out[name] = v
		}
	}
	return out
}

func atoiDefault(t *metadata.Tree, path string, def int) int {
	v, ok := t.Get(path)
	if !ok || v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
