package operator

import (
	"fmt"
	"testing"

	"github.com/asap-project/ires/internal/metadata"
)

// TestMatchIndexIncrementalMaintenance exercises the memoized match lists:
// once FindMaterialized has cached a result for an abstract shape, adding a
// matching operator must appear in subsequent lookups, removing it must
// disappear, and a replacement under the same name that no longer matches
// must drop out — all without a fresh scan per call.
func TestMatchIndexIncrementalMaintenance(t *testing.T) {
	lib := NewLibrary()
	mk := func(name, engine, alg string) {
		t.Helper()
		desc := fmt.Sprintf("Constraints.Engine=%s\nConstraints.OpSpecification.Algorithm.name=%s", engine, alg)
		if _, err := lib.AddOperatorDescription(name, desc); err != nil {
			t.Fatal(err)
		}
	}
	mk("tfidf_spark", "Spark", "TF_IDF")
	a := NewAbstract("tfidf", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=TF_IDF"))

	// Prime the index.
	if got := lib.FindMaterialized(a); len(got) != 1 || got[0].Name != "tfidf_spark" {
		t.Fatalf("initial match = %v", got)
	}

	// A new matching operator joins the cached list.
	mk("tfidf_hadoop", "Hadoop", "TF_IDF")
	got := lib.FindMaterialized(a)
	if len(got) != 2 || got[0].Name != "tfidf_hadoop" || got[1].Name != "tfidf_spark" {
		names := make([]string, len(got))
		for i, m := range got {
			names[i] = m.Name
		}
		t.Fatalf("after add: %v, want [tfidf_hadoop tfidf_spark]", names)
	}

	// A non-matching operator stays out.
	mk("kmeans_spark", "Spark", "kmeans")
	if got := lib.FindMaterialized(a); len(got) != 2 {
		t.Fatalf("non-matching add leaked into index: %d results", len(got))
	}

	// Removal drops the name from the cached list.
	if !lib.RemoveOperator("tfidf_hadoop") {
		t.Fatal("RemoveOperator failed")
	}
	if got := lib.FindMaterialized(a); len(got) != 1 || got[0].Name != "tfidf_spark" {
		t.Fatalf("after remove: %v", got)
	}

	// Replacing a matching operator with a non-matching definition under the
	// same name removes it from the cached list.
	mk("tfidf_spark", "Spark", "kmeans")
	if got := lib.FindMaterialized(a); len(got) != 0 {
		t.Fatalf("stale entry after non-matching replacement: %v", got)
	}
	// And replacing it back restores it.
	mk("tfidf_spark", "Spark", "TF_IDF")
	if got := lib.FindMaterialized(a); len(got) != 1 || got[0].Name != "tfidf_spark" {
		t.Fatalf("matching replacement not re-indexed: %v", got)
	}
}

// TestLibraryGen checks the mutation generation counter the planner folds
// into its cache validity.
func TestLibraryGen(t *testing.T) {
	lib := NewLibrary()
	if lib.Gen() != 0 {
		t.Fatalf("fresh library Gen = %d", lib.Gen())
	}
	if _, err := lib.AddOperatorDescription("op",
		"Constraints.Engine=Spark\nConstraints.OpSpecification.Algorithm.name=a"); err != nil {
		t.Fatal(err)
	}
	g1 := lib.Gen()
	if g1 == 0 {
		t.Fatal("AddOperator did not bump Gen")
	}
	a := NewAbstract("a", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=a"))
	lib.FindMaterialized(a) // read-only: must not bump
	if lib.Gen() != g1 {
		t.Fatal("FindMaterialized bumped Gen")
	}
	lib.RemoveOperator("op")
	if lib.Gen() <= g1 {
		t.Fatal("RemoveOperator did not bump Gen")
	}
}

// TestLibraryEngines checks the sorted distinct-engine listing used by the
// planner's availability fingerprint.
func TestLibraryEngines(t *testing.T) {
	lib := NewLibrary()
	for i, eng := range []string{"Spark", "Hadoop", "Spark", "Java"} {
		desc := fmt.Sprintf("Constraints.Engine=%s\nConstraints.OpSpecification.Algorithm.name=a%d", eng, i)
		if _, err := lib.AddOperatorDescription(fmt.Sprintf("op%d", i), desc); err != nil {
			t.Fatal(err)
		}
	}
	got := lib.Engines()
	want := []string{"Hadoop", "Java", "Spark"}
	if len(got) != len(want) {
		t.Fatalf("Engines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Engines = %v, want %v", got, want)
		}
	}
}
