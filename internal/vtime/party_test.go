package vtime

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// partyLoop runs a party that appends "<name>@<now>" to log at each of its
// wake times, then leaves. The log is guarded by mu because appends happen
// from different goroutines — though never concurrently, which is exactly
// what the -race run validates.
func partyLoop(c *Clock, p *Party, name string, wakes []time.Duration, mu *sync.Mutex, log *[]string, wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		p.Await()
		for _, t := range wakes {
			mu.Lock()
			*log = append(*log, fmt.Sprintf("%s@%v", name, c.Now()))
			mu.Unlock()
			p.WaitUntil(t)
		}
		mu.Lock()
		*log = append(*log, fmt.Sprintf("%s@%v", name, c.Now()))
		mu.Unlock()
		p.Leave()
	}()
}

// Parties wake in (time, registration order) priority, one at a time, and
// the schedule is a pure function of the wake times.
func TestPartyWakeOrdering(t *testing.T) {
	run := func() string {
		c := NewClock()
		var (
			mu  sync.Mutex
			log []string
			wg  sync.WaitGroup
		)
		wg.Add(3)
		// a and b contend at t=10 (a registered first, wins the tiebreak);
		// c2 sleeps past both.
		pa := c.Join()
		pb := c.Join()
		pc := c.Join()
		partyLoop(c, pa, "a", []time.Duration{10, 30}, &mu, &log, &wg)
		partyLoop(c, pb, "b", []time.Duration{10, 20}, &mu, &log, &wg)
		partyLoop(c, pc, "c", []time.Duration{40}, &mu, &log, &wg)
		c.Kick()
		wg.Wait()
		return strings.Join(log, " ")
	}
	want := "a@0s b@0s c@0s a@10ns b@10ns b@20ns a@30ns c@40ns"
	for i := 0; i < 20; i++ {
		if got := run(); got != want {
			t.Fatalf("iteration %d: wake order = %q, want %q", i, got, want)
		}
	}
}

// No party runs before Kick, no matter how long the goroutines have been
// scheduled: Join parks without dispatching.
func TestPartyJoinParksUntilKick(t *testing.T) {
	c := NewClock()
	p := c.Join()
	ran := make(chan struct{})
	go func() {
		p.Await()
		close(ran)
		p.Leave()
	}()
	select {
	case <-ran:
		t.Fatal("party ran before Kick")
	case <-time.After(10 * time.Millisecond):
	}
	c.Kick()
	<-ran
}

// WaitUntil with a non-future time keeps the execution token but still fires
// events due at the current instant (Schedule clamps past times to now).
func TestPartyWaitUntilAtNow(t *testing.T) {
	c := NewClock()
	p := c.Join()
	fired := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Await()
		c.Schedule(0, func(time.Duration) { fired = true })
		p.WaitUntil(c.Now()) // must not block: p is the only party
		if !fired {
			t.Error("due event not fired by zero-length WaitUntil")
		}
		p.Leave()
	}()
	c.Kick()
	<-done
}

// The clock advances only when every party is parked, and scheduled events
// fire (in order) on the way to the earliest wake time.
func TestPartyAdvanceFiresScheduledEvents(t *testing.T) {
	c := NewClock()
	var (
		mu  sync.Mutex
		log []string
	)
	c.Schedule(5, func(now time.Duration) {
		mu.Lock()
		log = append(log, fmt.Sprintf("ev@%v", now))
		mu.Unlock()
	})
	p := c.Join()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Await()
		p.WaitUntil(10)
		mu.Lock()
		log = append(log, fmt.Sprintf("party@%v", c.Now()))
		mu.Unlock()
		p.Leave()
	}()
	c.Kick()
	<-done
	got := strings.Join(log, " ")
	if want := "ev@5ns party@10ns"; got != want {
		t.Fatalf("log = %q, want %q", got, want)
	}
}

// A leaving party unblocks the rest: the remaining minimum wake time wins.
func TestPartyLeaveUnblocksRemaining(t *testing.T) {
	c := NewClock()
	pa := c.Join()
	pb := c.Join()
	done := make(chan struct{})
	go func() {
		pa.Await()
		pa.Leave() // departs immediately; b must still be dispatched
	}()
	go func() {
		defer close(done)
		pb.Await()
		pb.WaitUntil(100)
		pb.Leave()
	}()
	c.Kick()
	<-done
	if now := c.Now(); now != 100 {
		t.Fatalf("clock at %v after drain, want 100ns", now)
	}
	if c.Parties() != 0 {
		t.Fatalf("parties = %d after all left", c.Parties())
	}
}

// Joins from a running party (as the scheduler admits successor runs) take
// effect before the joiner parks again, and the new party is dispatched in
// time order with the rest. Run with -race.
func TestPartyDynamicJoin(t *testing.T) {
	c := NewClock()
	var (
		mu  sync.Mutex
		log []string
		wg  sync.WaitGroup
	)
	wg.Add(2)
	pa := c.Join()
	go func() {
		defer wg.Done()
		pa.Await()
		// Spawn a second party mid-run; it must not execute until a parks.
		pb := c.Join()
		partyLoop(c, pb, "b", []time.Duration{15}, &mu, &log, &wg)
		mu.Lock()
		log = append(log, fmt.Sprintf("a@%v", c.Now()))
		mu.Unlock()
		p := pa
		p.WaitUntil(20)
		mu.Lock()
		log = append(log, fmt.Sprintf("a@%v", c.Now()))
		mu.Unlock()
		p.Leave()
	}()
	c.Kick()
	wg.Wait()
	got := strings.Join(log, " ")
	if want := "a@0s b@0s b@15ns a@20ns"; got != want {
		t.Fatalf("log = %q, want %q", got, want)
	}
}

// Hammering Kick from many goroutines while parties cooperate must neither
// race nor wake two parties at once. Run with -race.
func TestPartyConcurrentKick(t *testing.T) {
	c := NewClock()
	const parties = 4
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		running int
		maxSeen int
	)
	wg.Add(parties)
	for i := 0; i < parties; i++ {
		p := c.Join()
		step := time.Duration(i + 1)
		go func() {
			defer wg.Done()
			p.Await()
			for k := 1; k <= 50; k++ {
				mu.Lock()
				running++
				if running > maxSeen {
					maxSeen = running
				}
				mu.Unlock()
				mu.Lock()
				running--
				mu.Unlock()
				p.WaitUntil(c.Now() + step)
			}
			p.Leave()
		}()
	}
	stop := make(chan struct{})
	var kickers sync.WaitGroup
	for i := 0; i < 3; i++ {
		kickers.Add(1)
		go func() {
			defer kickers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Kick()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	kickers.Wait()
	if maxSeen != 1 {
		t.Fatalf("observed %d parties running concurrently, want exactly 1", maxSeen)
	}
}
