package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestAdvanceAndNow(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(5 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", got)
	}
	c.AdvanceTo(3 * time.Second) // past: no-op
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("AdvanceTo past moved clock: %v", got)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestScheduleFiresInOrder(t *testing.T) {
	c := NewClock()
	var fired []time.Duration
	for _, d := range []time.Duration{30, 10, 20} {
		d := d * time.Second
		c.Schedule(d, func(now time.Duration) {
			if now != d {
				t.Errorf("event at %v fired at %v", d, now)
			}
			fired = append(fired, d)
		})
	}
	c.Advance(25 * time.Second)
	if len(fired) != 2 || fired[0] != 10*time.Second || fired[1] != 20*time.Second {
		t.Fatalf("fired = %v", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
	c.RunUntilIdle()
	if len(fired) != 3 {
		t.Fatalf("RunUntilIdle left events unfired: %v", fired)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(time.Second, func(time.Duration) { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	c := NewClock()
	var hits int
	c.Schedule(time.Second, func(now time.Duration) {
		hits++
		c.Schedule(now+time.Second, func(time.Duration) { hits++ })
	})
	end := c.RunUntilIdle()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if end != 2*time.Second {
		t.Fatalf("end = %v, want 2s", end)
	}
}

func TestPastScheduleFiresAtCurrentInstant(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Second)
	var at time.Duration = -1
	c.Schedule(time.Second, func(now time.Duration) { at = now })
	c.Advance(0)
	if at != 10*time.Second {
		t.Fatalf("past event fired at %v, want 10s", at)
	}
}

// Regression: RunUntilIdle must fire events scheduled at the current
// instant (at == now) instead of spinning forever.
func TestRunUntilIdleCurrentInstant(t *testing.T) {
	c := NewClock()
	fired := 0
	c.Schedule(0, func(time.Duration) { fired++ })
	c.Advance(5 * time.Second)
	c.Schedule(5*time.Second, func(time.Duration) { fired++ })
	if end := c.RunUntilIdle(); end != 5*time.Second {
		t.Fatalf("end = %v", end)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// Property: events always fire in non-decreasing timestamp order regardless
// of scheduling order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewClock()
		n := r.Intn(50) + 1
		var fired []time.Duration
		for i := 0; i < n; i++ {
			at := time.Duration(r.Intn(1000)) * time.Millisecond
			c.Schedule(at, func(now time.Duration) { fired = append(fired, now) })
		}
		c.RunUntilIdle()
		return len(fired) == n && sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNextEventAt(t *testing.T) {
	c := NewClock()
	if _, ok := c.NextEventAt(); ok {
		t.Fatal("empty clock reported a pending event")
	}
	c.Schedule(30*time.Second, func(time.Duration) {})
	c.Schedule(10*time.Second, func(time.Duration) {})
	at, ok := c.NextEventAt()
	if !ok || at != 10*time.Second {
		t.Fatalf("NextEventAt = %v,%v, want 10s,true", at, ok)
	}
	c.Advance(15 * time.Second)
	at, ok = c.NextEventAt()
	if !ok || at != 30*time.Second {
		t.Fatalf("NextEventAt after advance = %v,%v, want 30s,true", at, ok)
	}
}

// AdvanceTo(now) must fire events clamped to the current instant (scheduled
// "in the past"), not silently skip them.
func TestAdvanceToCurrentInstantFires(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Second)
	fired := false
	c.Schedule(5*time.Second, func(time.Duration) { fired = true }) // clamped to 10s
	c.AdvanceTo(c.Now())
	if !fired {
		t.Fatal("event clamped to the current instant did not fire on AdvanceTo(now)")
	}
	if c.Now() != 10*time.Second {
		t.Fatalf("clock moved to %v, want 10s", c.Now())
	}
}
