// Package vtime provides a discrete-event virtual clock.
//
// Every simulated component in the repository (engines, cluster, executor)
// charges time against a Clock rather than sleeping. This keeps experiments
// deterministic and lets a multi-hour "cluster run" finish in microseconds
// of wall time, while preserving the relative performance shapes the paper
// reports.
package vtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct with NewClock. Clock is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	now    time.Duration
	events eventHeap
	seq    int64

	// Cooperative-party state (see Join). parties counts registered
	// parties; waiters holds the parked ones. started gates dispatch so a
	// batch of Join calls can complete before any party runs.
	parties     int
	partySeq    int64
	waiters     []*waiter
	started     bool
	dispatching bool
}

// Party is one cooperating goroutine multiplexed over a shared Clock.
//
// The cooperation protocol makes concurrent executors deterministic: at most
// one party executes at any moment. A party runs until it blocks on a future
// virtual time via WaitUntil; only when every registered party is blocked
// does the clock advance — to the earliest requested wake time, firing due
// scheduled events on the way — and exactly one party (smallest wake time,
// registration order as tiebreak) resumes. Goroutines are real, so the race
// detector still validates the locking, but the interleaving is a pure
// function of the virtual-time schedule, never of OS scheduling.
type Party struct {
	c    *Clock
	id   int64
	wake chan struct{}
}

type waiter struct {
	p  *Party
	at time.Duration
}

// Join registers a new party, parked at the current virtual time. The party
// does not run until it is dispatched: the caller must hand the returned
// Party to a goroutine whose first act is Await. Dispatch begins when Kick
// is called (or a running party blocks) and all registered parties are
// parked — so a batch of Joins is deterministic regardless of when the
// parties' goroutines actually start.
func (c *Clock) Join() *Party {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.parties++
	c.partySeq++
	p := &Party{c: c, id: c.partySeq, wake: make(chan struct{}, 1)}
	c.waiters = append(c.waiters, &waiter{p: p, at: c.now})
	return p
}

// Await blocks until the party is first dispatched. It must be the party
// goroutine's first interaction with the clock.
func (p *Party) Await() {
	<-p.wake
}

// WaitUntil blocks the party until virtual time t. If t is not in the
// future it fires the events due at the current instant and returns without
// yielding the execution token. Otherwise the party parks; when all parties
// are parked the clock advances to the earliest wake time and resumes that
// party.
func (p *Party) WaitUntil(t time.Duration) {
	c := p.c
	c.mu.Lock()
	if t <= c.now {
		// Zero-length advance: fire events already due at this instant
		// (Schedule clamps past times to now) while keeping the token.
		c.advanceLocked(c.now)
		c.mu.Unlock()
		return
	}
	c.waiters = append(c.waiters, &waiter{p: p, at: t})
	c.dispatchLocked()
	c.mu.Unlock()
	<-p.wake
}

// Leave deregisters the party. The party must be running (not parked); its
// departure may unblock the remaining parties.
func (p *Party) Leave() {
	c := p.c
	c.mu.Lock()
	c.parties--
	c.dispatchLocked()
	c.mu.Unlock()
}

// Kick starts (or resumes) cooperative dispatch: if every registered party
// is parked, the earliest waiter is woken. Callers use it after a batch of
// Join calls, and whenever an external waiter (Run.Wait, Drain) needs the
// party system to make progress.
func (c *Clock) Kick() {
	c.mu.Lock()
	c.started = true
	c.dispatchLocked()
	c.mu.Unlock()
}

// Parties reports the number of registered cooperative parties.
func (c *Clock) Parties() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parties
}

// dispatchLocked wakes the earliest parked party when every party is
// parked, advancing the clock (and firing due scheduled events) to its wake
// time first. Caller holds c.mu.
func (c *Clock) dispatchLocked() {
	// advanceLocked releases the lock around callbacks; a concurrent Kick
	// must not start a second dispatch in that window.
	if c.dispatching {
		return
	}
	c.dispatching = true
	defer func() { c.dispatching = false }()
	for {
		if !c.started || c.parties == 0 || len(c.waiters) < c.parties {
			return
		}
		// Earliest wake time; registration order as tiebreak.
		best := 0
		for i := 1; i < len(c.waiters); i++ {
			w, b := c.waiters[i], c.waiters[best]
			if w.at < b.at || (w.at == b.at && w.p.id < b.p.id) {
				best = i
			}
		}
		target := c.waiters[best].at
		// advanceLocked unlocks around callbacks; callbacks may Join new
		// parties or change the waiter set, so re-examine afterwards.
		before := len(c.waiters)
		c.advanceLocked(target)
		if len(c.waiters) != before {
			continue
		}
		w := c.waiters[best]
		c.waiters = append(c.waiters[:best], c.waiters[best+1:]...)
		w.p.wake <- struct{}{}
		return
	}
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the simulation
// start.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, firing any events scheduled within
// the interval in timestamp order. Advance panics if d is negative.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative advance %v", d))
	}
	c.mu.Lock()
	c.advanceLocked(c.now + d)
	c.mu.Unlock()
}

// advanceLocked moves the clock to target (>= now), firing due events in
// timestamp order. Caller holds c.mu; the lock is released around each
// callback so callbacks may schedule further events or read the clock.
func (c *Clock) advanceLocked(target time.Duration) {
	for len(c.events) > 0 && c.events[0].at <= target {
		ev := heap.Pop(&c.events).(*event)
		if ev.at > c.now {
			c.now = ev.at
		}
		c.mu.Unlock()
		ev.fn(ev.at)
		c.mu.Lock()
	}
	if target > c.now {
		c.now = target
	}
}

// AdvanceTo moves the clock forward to absolute virtual time t, firing the
// events due on the way. When t equals the current time it still fires the
// events due at this instant (e.g. ones scheduled with an `at` in the past,
// which Schedule clamps to now); it is a no-op only when t is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	if t >= now {
		c.Advance(t - now)
	}
}

// Schedule registers fn to run when the clock reaches absolute time at.
// Events scheduled for the same instant fire in scheduling order. If at is
// not after the current time, fn fires on the next Advance call (at the
// current instant).
func (c *Clock) Schedule(at time.Duration, fn func(now time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn})
}

// After schedules fn to run d from the current virtual time.
func (c *Clock) After(d time.Duration, fn func(now time.Duration)) {
	c.Schedule(c.Now()+d, fn)
}

// RunUntilIdle advances the clock until no scheduled events remain and
// returns the final virtual time.
func (c *Clock) RunUntilIdle() time.Duration {
	for {
		c.mu.Lock()
		if len(c.events) == 0 {
			now := c.now
			c.mu.Unlock()
			return now
		}
		delta := c.events[0].at - c.now
		c.mu.Unlock()
		if delta < 0 {
			// Events scheduled at (or clamped to) the current instant fire
			// on a zero-length advance.
			delta = 0
		}
		c.Advance(delta)
	}
}

// Pending reports the number of scheduled events that have not yet fired.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// NextEventAt returns the timestamp of the earliest scheduled event, if any.
// The executor uses it to advance event-by-event, so fault injections and
// monitor polls scheduled between step completions fire at their exact
// virtual times.
func (c *Clock) NextEventAt() (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == 0 {
		return 0, false
	}
	at := c.events[0].at
	if at < c.now {
		at = c.now
	}
	return at, true
}

type event struct {
	at  time.Duration
	seq int64
	fn  func(now time.Duration)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
