// Package vtime provides a discrete-event virtual clock.
//
// Every simulated component in the repository (engines, cluster, executor)
// charges time against a Clock rather than sleeping. This keeps experiments
// deterministic and lets a multi-hour "cluster run" finish in microseconds
// of wall time, while preserving the relative performance shapes the paper
// reports.
package vtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct with NewClock. Clock is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	now    time.Duration
	events eventHeap
	seq    int64
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the simulation
// start.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, firing any events scheduled within
// the interval in timestamp order. Advance panics if d is negative.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative advance %v", d))
	}
	c.mu.Lock()
	target := c.now + d
	for len(c.events) > 0 && c.events[0].at <= target {
		ev := heap.Pop(&c.events).(*event)
		c.now = ev.at
		// Release the lock while running the callback so callbacks may
		// schedule further events or read the clock.
		c.mu.Unlock()
		ev.fn(ev.at)
		c.mu.Lock()
	}
	c.now = target
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to absolute virtual time t, firing the
// events due on the way. When t equals the current time it still fires the
// events due at this instant (e.g. ones scheduled with an `at` in the past,
// which Schedule clamps to now); it is a no-op only when t is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	if t >= now {
		c.Advance(t - now)
	}
}

// Schedule registers fn to run when the clock reaches absolute time at.
// Events scheduled for the same instant fire in scheduling order. If at is
// not after the current time, fn fires on the next Advance call (at the
// current instant).
func (c *Clock) Schedule(at time.Duration, fn func(now time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn})
}

// After schedules fn to run d from the current virtual time.
func (c *Clock) After(d time.Duration, fn func(now time.Duration)) {
	c.Schedule(c.Now()+d, fn)
}

// RunUntilIdle advances the clock until no scheduled events remain and
// returns the final virtual time.
func (c *Clock) RunUntilIdle() time.Duration {
	for {
		c.mu.Lock()
		if len(c.events) == 0 {
			now := c.now
			c.mu.Unlock()
			return now
		}
		delta := c.events[0].at - c.now
		c.mu.Unlock()
		if delta < 0 {
			// Events scheduled at (or clamped to) the current instant fire
			// on a zero-length advance.
			delta = 0
		}
		c.Advance(delta)
	}
}

// Pending reports the number of scheduled events that have not yet fired.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// NextEventAt returns the timestamp of the earliest scheduled event, if any.
// The executor uses it to advance event-by-event, so fault injections and
// monitor polls scheduled between step completions fire at their exact
// virtual times.
func (c *Clock) NextEventAt() (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == 0 {
		return 0, false
	}
	at := c.events[0].at
	if at < c.now {
		at = c.now
	}
	return at, true
}

type event struct {
	at  time.Duration
	seq int64
	fn  func(now time.Duration)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
