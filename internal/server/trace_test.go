package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestMetricsAndTraceEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t)
	setupWordcount(t, ts)

	// Before any execution: no recorded trace for the workflow.
	resp, body := do(t, "GET", ts.URL+"/api/workflows/wc/trace", "")
	expectCode(t, resp, body, http.StatusNotFound)

	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/execute", "")
	expectCode(t, resp, body, http.StatusOK)

	// Prometheus exposition reflects the execution.
	resp, body = do(t, "GET", ts.URL+"/metrics", "")
	expectCode(t, resp, body, http.StatusOK)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE ires_attempts_total counter",
		"ires_attempts_total{engine=",
		"ires_vtime_seconds",
		"ires_plans_total",
		"ires_trace_events_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Per-run timeline: only the events of the execute window.
	resp, body = do(t, "GET", ts.URL+"/api/workflows/wc/trace", "")
	expectCode(t, resp, body, http.StatusOK)
	var tr struct {
		Workflow string `json:"workflow"`
		Events   []struct {
			Seq   int64   `json:"seq"`
			VTime float64 `json:"vtime"`
			Type  string  `json:"type"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace payload: %v\n%s", err, body)
	}
	if tr.Workflow != "wc" || len(tr.Events) == 0 {
		t.Fatalf("trace: %s", body)
	}
	sawStart, sawFinish := false, false
	for _, ev := range tr.Events {
		switch ev.Type {
		case "attempt.start":
			sawStart = true
		case "attempt.finish":
			sawFinish = true
		}
	}
	if !sawStart || !sawFinish {
		t.Fatalf("trace lacks attempt lifecycle events: %s", body)
	}
}
