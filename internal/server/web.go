package server

import "net/http"

// The minimal web user interface of D3.3 §3.2: the IReS home page lists the
// abstract workflows and offers Materialize/Execute buttons, driven by the
// JSON API. Served at /web/main like the original server.
const webMain = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>IReS Platform</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 70em; }
 h1 { border-bottom: 2px solid #444; }
 table { border-collapse: collapse; margin: 1em 0; }
 td, th { border: 1px solid #999; padding: 0.3em 0.8em; text-align: left; }
 button { margin-right: 0.5em; }
 pre { background: #f4f4f4; padding: 1em; overflow-x: auto; }
 .err { color: #a00; }
</style>
</head>
<body>
<h1>IReS &mdash; Intelligent Multi-Engine Resource Scheduler</h1>

<h2>Abstract Workflows</h2>
<table id="workflows"><tr><th>name</th><th>actions</th></tr></table>

<h2>Operators</h2>
<table id="operators"><tr><th>name</th><th>engine</th><th>algorithm</th><th>profiled</th></tr></table>

<h2>Engines</h2>
<table id="engines"><tr><th>name</th><th>status</th><th>actions</th></tr></table>

<h2>Output</h2>
<pre id="out">select a workflow and press Materialize or Execute</pre>

<script>
const out = document.getElementById('out');
function show(v) { out.textContent = typeof v === 'string' ? v : JSON.stringify(v, null, 2); }
async function call(method, path) {
  try {
    const resp = await fetch(path, {method});
    const body = await resp.json();
    show(body);
    return body;
  } catch (e) { show('error: ' + e); }
}
async function refresh() {
  const wf = await (await fetch('/api/workflows')).json() || [];
  const wfT = document.getElementById('workflows');
  wfT.innerHTML = '<tr><th>name</th><th>actions</th></tr>';
  for (const name of wf) {
    const row = wfT.insertRow();
    row.insertCell().textContent = name;
    const actions = row.insertCell();
    for (const act of ['materialize', 'pareto', 'execute']) {
      const b = document.createElement('button');
      b.textContent = act;
      b.onclick = () => call('POST', '/api/workflows/' + name + '/' + act);
      actions.appendChild(b);
    }
  }
  const ops = await (await fetch('/api/operators')).json() || [];
  const opT = document.getElementById('operators');
  opT.innerHTML = '<tr><th>name</th><th>engine</th><th>algorithm</th><th>profiled</th></tr>';
  for (const op of ops) {
    const row = opT.insertRow();
    for (const k of ['name', 'engine', 'algorithm', 'profiled']) {
      row.insertCell().textContent = op[k];
    }
  }
  const engines = await (await fetch('/api/engines')).json() || [];
  const enT = document.getElementById('engines');
  enT.innerHTML = '<tr><th>name</th><th>status</th><th>actions</th></tr>';
  for (const e of engines) {
    const row = enT.insertRow();
    row.insertCell().textContent = e.name;
    row.insertCell().textContent = e.available ? 'ON' : 'OFF';
    const b = document.createElement('button');
    b.textContent = e.available ? 'kill' : 'restore';
    b.onclick = async () => {
      await fetch('/api/engines/' + e.name + '/availability', {
        method: 'POST',
        body: JSON.stringify({on: !e.available}),
      });
      refresh();
    };
    row.insertCell().appendChild(b);
  }
}
refresh();
</script>
</body>
</html>
`

func (s *Server) handleWeb(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(webMain))
}
