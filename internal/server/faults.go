package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	ires "github.com/asap-project/ires"
)

// faultTransientDTO mirrors ires.FaultTransient in JSON.
type faultTransientDTO struct {
	FailProb float64 `json:"failProb"`
	MTBFSec  float64 `json:"mtbfSec,omitempty"`
}

// faultConfigDTO is the JSON surface of ires.FaultConfig: virtual times are
// given in seconds from the simulation start.
type faultConfigDTO struct {
	Seed      int64                        `json:"seed"`
	Default   faultTransientDTO            `json:"default"`
	PerEngine map[string]faultTransientDTO `json:"perEngine,omitempty"`
	Outages   []struct {
		Engine string  `json:"engine"`
		AtSec  float64 `json:"atSec"`
	} `json:"outages,omitempty"`
	NodeCrashes []struct {
		Node  string  `json:"node"`
		AtSec float64 `json:"atSec"`
	} `json:"nodeCrashes,omitempty"`
	Straggler struct {
		Prob   float64 `json:"prob"`
		Factor float64 `json:"factor"`
	} `json:"straggler"`
}

func (dto faultConfigDTO) toConfig() ires.FaultConfig {
	cfg := ires.FaultConfig{
		Seed:    dto.Seed,
		Default: ires.FaultTransient{FailProb: dto.Default.FailProb, MTBFSec: dto.Default.MTBFSec},
		Straggler: ires.StragglerFaults{
			Prob:   dto.Straggler.Prob,
			Factor: dto.Straggler.Factor,
		},
	}
	if len(dto.PerEngine) > 0 {
		cfg.PerEngine = make(map[string]ires.FaultTransient, len(dto.PerEngine))
		for name, t := range dto.PerEngine {
			cfg.PerEngine[name] = ires.FaultTransient{FailProb: t.FailProb, MTBFSec: t.MTBFSec}
		}
	}
	for _, o := range dto.Outages {
		cfg.Outages = append(cfg.Outages, ires.EngineOutage{
			Engine: o.Engine,
			At:     time.Duration(o.AtSec * float64(time.Second)),
		})
	}
	for _, nc := range dto.NodeCrashes {
		cfg.NodeCrashes = append(cfg.NodeCrashes, ires.NodeCrash{
			Node: nc.Node,
			At:   time.Duration(nc.AtSec * float64(time.Second)),
		})
	}
	return cfg
}

// handleFaults implements the chaos-injection surface:
//
//	POST /api/faults  — arm a fault schedule (body: faultConfigDTO)
//	GET  /api/faults  — injection counters + circuit-breaker blacklist
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var dto faultConfigDTO
		if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.platform.InjectFaults(dto.toConfig()); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"faults": "armed"})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"stats":              s.platform.FaultStats(),
			"blacklistedEngines": s.platform.BlacklistedEngines(),
			"availableEngines":   s.platform.AvailableEngines(),
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST only"))
	}
}
