// Package server implements the IReS external REST API (D3.3 §3.5): the
// interface through which the other ASAP components — and any downstream
// client — register datasets and operators, define abstract workflows,
// materialize them into multi-engine plans and trigger execution. The
// original server listens on :1323; this one wraps an *ires.Platform with
// net/http.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
)

// Server exposes a Platform over HTTP. Construct with New and mount via
// Handler.
type Server struct {
	mu       sync.Mutex
	platform *ires.Platform
	// workflows stores registered abstract workflow graph files by name.
	workflows map[string]string
	// traces stores, per workflow name, the event timeline captured during
	// its most recent execute action.
	traces map[string][]ires.TraceEvent
	mux    *http.ServeMux
}

// New builds a server around the platform.
func New(p *ires.Platform) *Server {
	s := &Server{platform: p, workflows: make(map[string]string), traces: make(map[string][]ires.TraceEvent)}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/operators", s.handleOperators)
	mux.HandleFunc("/api/operators/", s.handleOperator)
	mux.HandleFunc("/api/datasets/", s.handleDataset)
	mux.HandleFunc("/api/abstractOperators/", s.handleAbstractOperator)
	mux.HandleFunc("/api/workflows", s.handleWorkflows)
	mux.HandleFunc("/api/workflows/", s.handleWorkflow)
	mux.HandleFunc("/api/runs", s.handleRuns)
	mux.HandleFunc("/api/runs/", s.handleRun)
	mux.HandleFunc("/api/engines", s.handleEngines)
	mux.HandleFunc("/api/engines/", s.handleEngine)
	mux.HandleFunc("/api/faults", s.handleFaults)
	mux.HandleFunc("/api/cluster", s.handleCluster)
	mux.HandleFunc("/web/main", s.handleWeb)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			http.Redirect(w, r, "/web/main", http.StatusFound)
			return
		}
		http.NotFound(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "HEALTHY"})
	})
	s.mux = mux
	return s
}

// Handler returns the HTTP handler (mount under any address/port).
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func readBody(r *http.Request) (string, error) {
	b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	return string(b), err
}

// tailName extracts the final path element after the given prefix.
func tailName(path, prefix string) (string, string) {
	rest := strings.TrimPrefix(path, prefix)
	if i := strings.Index(rest, "/"); i >= 0 {
		return rest[:i], rest[i+1:]
	}
	return rest, ""
}

// --- operators ---

type operatorDTO struct {
	Name      string `json:"name"`
	Engine    string `json:"engine"`
	Algorithm string `json:"algorithm"`
	Profiled  bool   `json:"profiled"`
}

func (s *Server) handleOperators(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	var out []operatorDTO
	for _, mo := range s.platform.Library.Operators() {
		_, profiled := s.platform.Profiler.Models(mo.Name)
		out = append(out, operatorDTO{Name: mo.Name, Engine: mo.Engine(), Algorithm: mo.Algorithm(), Profiled: profiled})
	}
	writeJSON(w, http.StatusOK, out)
}

// profileRequest mirrors ires.ProfileSpace in JSON.
type profileRequest struct {
	Records        []int64              `json:"records"`
	BytesPerRecord int64                `json:"bytesPerRecord"`
	Params         map[string][]float64 `json:"params,omitempty"`
	Resources      []resourceDTO        `json:"resources"`
}

type resourceDTO struct {
	Nodes     int `json:"nodes"`
	CoresPerN int `json:"coresPerNode"`
	MemMBPerN int `json:"memMBPerNode"`
}

func (s *Server) handleOperator(w http.ResponseWriter, r *http.Request) {
	name, action := tailName(r.URL.Path, "/api/operators/")
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("operator name required"))
		return
	}
	switch {
	case r.Method == http.MethodPost && action == "":
		// Register a materialized operator; the body is the paper's
		// description-file format (the send_operator.sh flow).
		body, err := readBody(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.platform.RegisterOperator(name, body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"operator": name})
	case r.Method == http.MethodPost && action == "profile":
		var req profileRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		space := ires.ProfileSpace{
			Records:        req.Records,
			BytesPerRecord: req.BytesPerRecord,
			Params:         req.Params,
		}
		for _, res := range req.Resources {
			space.Resources = append(space.Resources, engine.Resources{
				Nodes: res.Nodes, CoresPerN: res.CoresPerN, MemMBPerN: res.MemMBPerN,
			})
		}
		n, err := s.platform.ProfileOperator(name, space)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"operator": name, "runs": n})
	case r.Method == http.MethodGet && action == "":
		mo, ok := s.platform.Library.Operator(name)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown operator %q", name))
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, mo.Meta.String())
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("unsupported %s %s", r.Method, r.URL.Path))
	}
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	name, _ := tailName(r.URL.Path, "/api/datasets/")
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dataset name required"))
		return
	}
	switch r.Method {
	case http.MethodPost:
		body, err := readBody(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.platform.RegisterDataset(name, body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"dataset": name})
	case http.MethodGet:
		d, ok := s.platform.Library.Dataset(name)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, d.Meta.String())
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("unsupported method"))
	}
}

func (s *Server) handleAbstractOperator(w http.ResponseWriter, r *http.Request) {
	name, _ := tailName(r.URL.Path, "/api/abstractOperators/")
	if name == "" || r.Method != http.MethodPost {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("POST /api/abstractOperators/<name>"))
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.platform.RegisterAbstractOperator(name, body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"abstractOperator": name})
}

// --- workflows ---

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.workflows))
	for n := range s.workflows {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

// planDTO serialises a materialized plan.
type planDTO struct {
	RunID        string        `json:"runId,omitempty"`
	Target       string        `json:"target"`
	EstTimeSec   float64       `json:"estTimeSec"`
	EstCost      float64       `json:"estCost"`
	PlanningMs   float64       `json:"planningMs"`
	Engines      []string      `json:"engines"`
	Steps        []planStepDTO `json:"steps"`
	ExecutionSec float64       `json:"executionSec,omitempty"`
	CostUnits    float64       `json:"costUnits,omitempty"`
	Replans      int           `json:"replans,omitempty"`
}

type planStepDTO struct {
	ID        int      `json:"id"`
	Kind      string   `json:"kind"`
	Name      string   `json:"name"`
	Engine    string   `json:"engine"`
	EstTime   float64  `json:"estTimeSec"`
	DependsOn []int    `json:"dependsOn,omitempty"`
	Sources   []string `json:"sources,omitempty"`
}

func planToDTO(plan *ires.Plan) planDTO {
	dto := planDTO{
		Target:     plan.Target,
		EstTimeSec: plan.EstTimeSec,
		EstCost:    plan.EstCost,
		PlanningMs: float64(plan.PlanningTime.Microseconds()) / 1000,
		Engines:    plan.Engines(),
	}
	for _, st := range plan.Steps {
		dto.Steps = append(dto.Steps, planStepDTO{
			ID: st.ID, Kind: st.Kind.String(), Name: st.Name, Engine: st.Engine,
			EstTime: st.EstTimeSec, DependsOn: st.DependsOn, Sources: st.SourceInputs,
		})
	}
	return dto
}

func (s *Server) handleWorkflow(w http.ResponseWriter, r *http.Request) {
	name, action := tailName(r.URL.Path, "/api/workflows/")
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("workflow name required"))
		return
	}
	switch {
	case r.Method == http.MethodPost && action == "":
		body, err := readBody(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// Validate eagerly so registration errors surface immediately.
		if _, err := s.platform.ParseWorkflow(body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		s.workflows[name] = body
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, map[string]string{"workflow": name})
	case r.Method == http.MethodGet && action == "":
		s.mu.Lock()
		body, ok := s.workflows[name]
		s.mu.Unlock()
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown workflow %q", name))
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, body)
	case r.Method == http.MethodPost && action == "materialize":
		plan, _, err := s.materialize(name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, planToDTO(plan))
	case r.Method == http.MethodPost && action == "pareto":
		_, g, err := s.graphOf(name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		plans, err := s.platform.ParetoPlans(g)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		out := make([]planDTO, 0, len(plans))
		for _, plan := range plans {
			out = append(out, planToDTO(plan))
		}
		writeJSON(w, http.StatusOK, out)
	case r.Method == http.MethodPost && action == "execute":
		// Synchronous execution: submit to the multi-workflow scheduler and
		// wait — the request occupies a queue slot like any other run, so
		// concurrent execute calls are arbitrated by the admission policy.
		_, g, err := s.graphOf(name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		run := s.platform.SubmitNamed(name, g)
		plan, res, err := run.Wait()
		events := s.platform.TraceForRun(run.ID())
		s.mu.Lock()
		s.traces[name] = events
		s.mu.Unlock()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		dto := planToDTO(plan)
		dto.RunID = run.ID()
		dto.ExecutionSec = res.Makespan.Seconds()
		dto.CostUnits = res.TotalCostUnits
		dto.Replans = res.Replans
		writeJSON(w, http.StatusOK, dto)
	case r.Method == http.MethodPost && action == "submit":
		// Asynchronous execution: enqueue and return the run handle
		// immediately; poll GET /api/runs/{id} for progress. Optional query
		// parameters feed the scheduling policies: ?tenant= charges the run
		// to a budget account (CostQuota) or fair-share group, ?user= and
		// ?priority= refine hierarchical fair-share accounting, and
		// ?deadlineSec= sets an absolute virtual-time deadline
		// (Deadline/EDF), and ?demandCores=&demandMemMB= (both required
		// together) ask for per-node resource slices instead of whole
		// nodes (DRF and memory overcommit).
		_, g, err := s.graphOf(name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		opts := ires.SubmitOptions{
			Name:   name,
			Tenant: r.URL.Query().Get("tenant"),
			User:   r.URL.Query().Get("user"),
		}
		if raw := r.URL.Query().Get("priority"); raw != "" {
			p, err := strconv.Atoi(raw)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid priority %q", raw))
				return
			}
			opts.Priority = p
		}
		if raw := r.URL.Query().Get("deadlineSec"); raw != "" {
			sec, err := strconv.ParseFloat(raw, 64)
			if err != nil || sec < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid deadlineSec %q", raw))
				return
			}
			opts.Deadline = time.Duration(sec * float64(time.Second))
		}
		rawC, rawM := r.URL.Query().Get("demandCores"), r.URL.Query().Get("demandMemMB")
		if (rawC == "") != (rawM == "") {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("demandCores and demandMemMB must be given together"))
			return
		}
		if rawC != "" {
			dc, errC := strconv.Atoi(rawC)
			dm, errM := strconv.Atoi(rawM)
			if errC != nil || errM != nil || dc < 1 || dm < 1 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid demand %q cores / %q memMB", rawC, rawM))
				return
			}
			opts.DemandCores, opts.DemandMemMB = dc, dm
		}
		run := s.platform.SubmitWith(g, opts)
		s.platform.Start()
		writeJSON(w, http.StatusAccepted, run.Status())
	case r.Method == http.MethodGet && action == "trace":
		s.mu.Lock()
		events, ok := s.traces[name]
		s.mu.Unlock()
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no recorded execution for workflow %q", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"workflow": name, "events": events})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("unsupported %s %s", r.Method, r.URL.Path))
	}
}

func (s *Server) graphOf(name string) (string, *ires.Workflow, error) {
	s.mu.Lock()
	body, ok := s.workflows[name]
	s.mu.Unlock()
	if !ok {
		return "", nil, fmt.Errorf("unknown workflow %q", name)
	}
	g, err := s.platform.ParseWorkflow(body)
	return body, g, err
}

func (s *Server) materialize(name string) (*ires.Plan, *ires.Workflow, error) {
	_, g, err := s.graphOf(name)
	if err != nil {
		return nil, nil, err
	}
	plan, err := s.platform.Plan(g)
	return plan, g, err
}

// --- runs ---

// handleRuns lists every submitted run in submission order.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	runs := s.platform.Runs()
	if runs == nil {
		runs = []ires.RunSnapshot{}
	}
	writeJSON(w, http.StatusOK, runs)
}

// handleRun serves GET /api/runs/{id} (status snapshot), GET
// /api/runs/{id}/trace (the run's demuxed event timeline) and POST
// /api/runs/{id}/cancel.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id, action := tailName(r.URL.Path, "/api/runs/")
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("run id required"))
		return
	}
	// Snapshot-based lookup: terminal runs are pruned from the scheduler's
	// live index but stay addressable here via their frozen records.
	snap, ok := s.platform.RunSnapshotByID(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	switch {
	case r.Method == http.MethodGet && action == "":
		writeJSON(w, http.StatusOK, snap)
	case r.Method == http.MethodGet && action == "trace":
		writeJSON(w, http.StatusOK, map[string]any{
			"run":    id,
			"events": s.platform.TraceForRun(id),
		})
	case r.Method == http.MethodPost && action == "cancel":
		// Canceling a terminal run is a no-op; return its current state.
		s.platform.CancelRun(id)
		if cur, ok := s.platform.RunSnapshotByID(id); ok {
			snap = cur
		}
		writeJSON(w, http.StatusOK, snap)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("unsupported %s %s", r.Method, r.URL.Path))
	}
}

// handleMetrics serves the platform's counter/gauge registry in the
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.platform.Metrics().WritePrometheus(w)
}

// --- cluster ---

// agentNodeDTO pairs the control plane's believed (desired) view of a node
// with the node agent's last published report. While a node is partitioned
// the report is the snapshot frozen at partition time (stale=true), so the
// two views can legitimately disagree until the next reconcile round.
type agentNodeDTO struct {
	Node             string   `json:"node"`
	BelievedHealthy  bool     `json:"believedHealthy"`
	DesiredUsedCores int      `json:"desiredUsedCores"`
	DesiredUsedMemMB int      `json:"desiredUsedMemMB"`
	ReportHealthy    bool     `json:"reportHealthy"`
	Incarnation      int      `json:"incarnation"`
	Seq              int64    `json:"seq"`
	UsedCores        int      `json:"usedCores"`
	UsedMemMB        int      `json:"usedMemMB"`
	Containers       []int    `json:"containers,omitempty"`
	Replicas         []string `json:"replicas,omitempty"`
	Stale            bool     `json:"stale"`
	Partitioned      bool     `json:"partitioned"`
}

type clusterDTO struct {
	Nodes             []agentNodeDTO `json:"nodes"`
	DriftObserved     int            `json:"driftObserved"`
	DeathsDetected    int            `json:"deathsDetected"`
	DesiredActualDiff int            `json:"desiredActualDiff"`
	Checkpoints       int            `json:"checkpoints"`
}

// handleCluster serves GET /api/cluster: the per-agent desired/actual state
// of every node plus the reconciler's drift and death counters.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	clu := s.platform.Cluster
	reports := clu.AgentReports()
	byName := make(map[string]int, len(reports))
	for i, rep := range reports {
		byName[rep.Node] = i
	}
	dto := clusterDTO{
		Nodes:             []agentNodeDTO{},
		DriftObserved:     clu.DriftObserved(),
		DeathsDetected:    clu.DeathsDetected(),
		DesiredActualDiff: clu.DesiredActualDiff(),
		Checkpoints:       clu.Checkpoints(),
	}
	for _, n := range clu.Nodes() {
		nd := agentNodeDTO{
			Node:             n.Name,
			BelievedHealthy:  n.Healthy(),
			DesiredUsedCores: n.Cores - n.FreeCores(),
			DesiredUsedMemMB: n.MemMB - n.FreeMemMB(),
			Partitioned:      n.Agent().Partitioned(),
		}
		if i, ok := byName[n.Name]; ok {
			rep := reports[i]
			nd.ReportHealthy = rep.Healthy
			nd.Incarnation = rep.Incarnation
			nd.Seq = rep.Seq
			nd.UsedCores = rep.UsedCores
			nd.UsedMemMB = rep.UsedMemMB
			nd.Containers = rep.Containers
			nd.Replicas = rep.Replicas
			nd.Stale = rep.Stale
		}
		dto.Nodes = append(dto.Nodes, nd)
	}
	writeJSON(w, http.StatusOK, dto)
}

// --- engines ---

type engineDTO struct {
	Name      string `json:"name"`
	Available bool   `json:"available"`
}

func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	var out []engineDTO
	for _, name := range s.platform.Env.Engines() {
		out = append(out, engineDTO{Name: name, Available: s.platform.Env.Available(name)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEngine(w http.ResponseWriter, r *http.Request) {
	name, action := tailName(r.URL.Path, "/api/engines/")
	if name == "" || action != "availability" || r.Method != http.MethodPost {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("POST /api/engines/<name>/availability"))
		return
	}
	if _, ok := s.platform.Env.Engine(name); !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown engine %q", name))
		return
	}
	var req struct {
		On bool `json:"on"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.platform.SetEngineAvailable(name, req.On)
	writeJSON(w, http.StatusOK, engineDTO{Name: name, Available: req.On})
}

// PreloadLibrary loads an asapLibrary-style directory into the platform and
// registers its abstract workflow graph files with the server.
func (s *Server) PreloadLibrary(dir string) error {
	if _, err := s.platform.LoadLibraryDir(dir); err != nil {
		return err
	}
	entries, err := os.ReadDir(filepath.Join(dir, "abstractWorkflows"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "abstractWorkflows", e.Name(), "graph"))
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.workflows[e.Name()] = string(data)
		s.mu.Unlock()
	}
	return nil
}

// ListenAndServe runs the server on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
