package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/model"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *ires.Platform) {
	t.Helper()
	// Retry and breaker knobs let the fault-injection endpoint test drive a
	// full recovery path; they are inert for fault-free flows.
	p, err := ires.NewPlatform(ires.Options{
		Seed:             2,
		Retry:            ires.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Profiler.Factories = []model.Factory{
		func() model.Model { return model.NewLinear() },
		func() model.Model { return model.NewKNN(2) },
	}
	s := New(p)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, p
}

func do(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.String()
}

func expectCode(t *testing.T, resp *http.Response, body string, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, body)
	}
}

const wordcountJava = `
Constraints.Engine=Java
Constraints.OpSpecification.Algorithm.name=wordcount
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
`

const wordcountSpark = `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=wordcount
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
`

// setupWordcount registers datasets, operators and the workflow through the
// REST API only — the external-component flow of D3.3 §3.5.
func setupWordcount(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, body := do(t, "POST", ts.URL+"/api/datasets/logs",
		"Constraints.Engine.FS=HDFS\nExecution.path=hdfs:///logs\nOptimization.documents=50000\nOptimization.size=50000000")
	expectCode(t, resp, body, http.StatusCreated)

	resp, body = do(t, "POST", ts.URL+"/api/operators/wordcount_java", wordcountJava)
	expectCode(t, resp, body, http.StatusCreated)
	resp, body = do(t, "POST", ts.URL+"/api/operators/wordcount_spark", wordcountSpark)
	expectCode(t, resp, body, http.StatusCreated)

	resp, body = do(t, "POST", ts.URL+"/api/abstractOperators/wordcount",
		"Constraints.OpSpecification.Algorithm.name=wordcount")
	expectCode(t, resp, body, http.StatusCreated)

	profile := `{"records":[1000,10000,100000],"bytesPerRecord":1000,
		"resources":[{"nodes":1,"coresPerNode":2,"memMBPerNode":3456},
		             {"nodes":16,"coresPerNode":2,"memMBPerNode":3456}]}`
	for _, op := range []string{"wordcount_java", "wordcount_spark"} {
		resp, body = do(t, "POST", ts.URL+"/api/operators/"+op+"/profile", profile)
		expectCode(t, resp, body, http.StatusOK)
	}

	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc",
		"logs,wordcount,0\nwordcount,d1,0\nd1,$$target\n")
	expectCode(t, resp, body, http.StatusCreated)
}

func TestFullRESTFlow(t *testing.T) {
	_, ts, _ := newTestServer(t)
	setupWordcount(t, ts)

	// List workflows and operators.
	resp, body := do(t, "GET", ts.URL+"/api/workflows", "")
	expectCode(t, resp, body, http.StatusOK)
	if !strings.Contains(body, "wc") {
		t.Fatalf("workflow list: %s", body)
	}
	resp, body = do(t, "GET", ts.URL+"/api/operators", "")
	expectCode(t, resp, body, http.StatusOK)
	var ops []map[string]any
	if err := json.Unmarshal([]byte(body), &ops); err != nil || len(ops) != 2 {
		t.Fatalf("operators: %s", body)
	}
	for _, op := range ops {
		if op["profiled"] != true {
			t.Fatalf("operator not profiled: %v", op)
		}
	}

	// Materialize.
	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/materialize", "")
	expectCode(t, resp, body, http.StatusOK)
	var plan map[string]any
	if err := json.Unmarshal([]byte(body), &plan); err != nil {
		t.Fatal(err)
	}
	if plan["target"] != "d1" || plan["estTimeSec"].(float64) <= 0 {
		t.Fatalf("plan: %s", body)
	}

	// Pareto front.
	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/pareto", "")
	expectCode(t, resp, body, http.StatusOK)
	var front []map[string]any
	if err := json.Unmarshal([]byte(body), &front); err != nil || len(front) == 0 {
		t.Fatalf("pareto: %s", body)
	}

	// Execute.
	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/execute", "")
	expectCode(t, resp, body, http.StatusOK)
	var exec map[string]any
	if err := json.Unmarshal([]byte(body), &exec); err != nil {
		t.Fatal(err)
	}
	if exec["executionSec"].(float64) <= 0 {
		t.Fatalf("execution: %s", body)
	}
}

func TestEngineAvailabilityEndpoint(t *testing.T) {
	_, ts, p := newTestServer(t)
	resp, body := do(t, "GET", ts.URL+"/api/engines", "")
	expectCode(t, resp, body, http.StatusOK)
	if !strings.Contains(body, `"Spark"`) {
		t.Fatalf("engines: %s", body)
	}
	resp, body = do(t, "POST", ts.URL+"/api/engines/Spark/availability", `{"on":false}`)
	expectCode(t, resp, body, http.StatusOK)
	if p.Env.Available(ires.EngineSpark) {
		t.Fatal("availability not applied")
	}
	resp, body = do(t, "POST", ts.URL+"/api/engines/NoSuch/availability", `{"on":true}`)
	expectCode(t, resp, body, http.StatusNotFound)
}

func TestErrorPaths(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/api/operators/bad", "not a description", http.StatusBadRequest},
		{"GET", "/api/operators/missing", "", http.StatusNotFound},
		{"GET", "/api/datasets/missing", "", http.StatusNotFound},
		{"POST", "/api/workflows/bad", "malformed graph line", http.StatusBadRequest},
		{"POST", "/api/workflows/none/materialize", "", http.StatusBadRequest},
		{"DELETE", "/api/workflows", "", http.StatusMethodNotAllowed},
		{"POST", "/api/operators/x/profile", "{not json", http.StatusBadRequest},
		{"POST", "/api/engines/Spark/availability", "{not json", http.StatusBadRequest},
		{"PUT", "/api/engines", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp, body := do(t, c.method, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := do(t, "GET", ts.URL+"/healthz", "")
	expectCode(t, resp, body, http.StatusOK)
	if !strings.Contains(body, "HEALTHY") {
		t.Fatalf("healthz: %s", body)
	}
}

func TestRoundTripDescriptions(t *testing.T) {
	_, ts, _ := newTestServer(t)
	setupWordcount(t, ts)
	resp, body := do(t, "GET", ts.URL+"/api/operators/wordcount_java", "")
	expectCode(t, resp, body, http.StatusOK)
	if !strings.Contains(body, "Constraints.Engine=Java") {
		t.Fatalf("operator description: %s", body)
	}
	resp, body = do(t, "GET", ts.URL+"/api/datasets/logs", "")
	expectCode(t, resp, body, http.StatusOK)
	if !strings.Contains(body, "Execution.path=hdfs:///logs") {
		t.Fatalf("dataset description: %s", body)
	}
	resp, body = do(t, "GET", ts.URL+"/api/workflows/wc", "")
	expectCode(t, resp, body, http.StatusOK)
	if !strings.Contains(body, "$$target") {
		t.Fatalf("workflow body: %s", body)
	}
}

func TestExecuteAvoidsDeadEngineViaAPI(t *testing.T) {
	_, ts, p := newTestServer(t)
	setupWordcount(t, ts)

	// Figure out the engine the optimal plan uses, kill it through the
	// API-visible state, and execute: the endpoint re-materializes against
	// live availability, so the run must finish on the surviving engine
	// with no failure.
	resp, body := do(t, "POST", ts.URL+"/api/workflows/wc/materialize", "")
	expectCode(t, resp, body, http.StatusOK)
	var plan struct {
		Steps []struct {
			Kind   string `json:"kind"`
			Engine string `json:"engine"`
		} `json:"steps"`
	}
	if err := json.Unmarshal([]byte(body), &plan); err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, s := range plan.Steps {
		if s.Kind == "operator" {
			victim = s.Engine
		}
	}
	if victim == "" {
		t.Fatal("no operator step in plan")
	}
	p.SetEngineAvailable(victim, false)

	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/execute", "")
	expectCode(t, resp, body, http.StatusOK)
	var exec struct {
		Engines      []string `json:"engines"`
		ExecutionSec float64  `json:"executionSec"`
		Replans      int      `json:"replans"`
	}
	if err := json.Unmarshal([]byte(body), &exec); err != nil {
		t.Fatal(err)
	}
	if exec.ExecutionSec <= 0 || exec.Replans != 0 {
		t.Fatalf("execution after kill: %s", body)
	}
	for _, e := range exec.Engines {
		if e == victim {
			t.Fatalf("dead engine %s still used: %s", victim, body)
		}
	}
	_ = fmt.Sprint() // keep fmt for diagnostics
}

func TestWebUIServed(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := do(t, "GET", ts.URL+"/web/main", "")
	expectCode(t, resp, body, http.StatusOK)
	for _, frag := range []string{"Abstract Workflows", "Materialize", "/api/workflows", "IReS"} {
		if !strings.Contains(body, frag) && !strings.Contains(body, strings.ToLower(frag)) {
			t.Errorf("web UI missing %q", frag)
		}
	}
	// Root redirects to the UI, like the original server's home page.
	resp, body = do(t, "GET", ts.URL+"/", "")
	expectCode(t, resp, body, http.StatusOK) // client follows the redirect
	if resp, body := do(t, "POST", ts.URL+"/web/main", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to web UI: %d %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, "GET", ts.URL+"/nosuchpage", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %d", resp.StatusCode)
	}
}

func TestRunEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// Fresh platform: the run list is an empty array, not null.
	resp, body := do(t, "GET", ts.URL+"/api/runs", "")
	expectCode(t, resp, body, http.StatusOK)
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty run list = %q, want []", body)
	}

	setupWordcount(t, ts)

	// Asynchronous submission returns 202 with the run handle immediately.
	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/submit", "")
	expectCode(t, resp, body, http.StatusAccepted)
	var snap struct {
		ID       string `json:"id"`
		Workflow string `json:"workflow"`
		Status   string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Workflow != "wc" {
		t.Fatalf("submit snapshot: %s", body)
	}

	// Poll until the run is terminal (virtual time makes this near-instant
	// in wall time, but the goroutine handoff is asynchronous).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = do(t, "GET", ts.URL+"/api/runs/"+snap.ID, "")
		expectCode(t, resp, body, http.StatusOK)
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Status == "succeeded" || snap.Status == "failed" || snap.Status == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %s", snap.ID, snap.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if snap.Status != "succeeded" {
		t.Fatalf("run finished %s: %s", snap.Status, body)
	}

	// The run shows up in the listing.
	resp, body = do(t, "GET", ts.URL+"/api/runs", "")
	expectCode(t, resp, body, http.StatusOK)
	var list []struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil || len(list) != 1 {
		t.Fatalf("run list: %s", body)
	}

	// Its demuxed trace carries only events stamped with this run's id.
	resp, body = do(t, "GET", ts.URL+"/api/runs/"+snap.ID+"/trace", "")
	expectCode(t, resp, body, http.StatusOK)
	var tr struct {
		Run    string `json:"run"`
		Events []struct {
			Run  string `json:"run"`
			Type string `json:"type"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Run != snap.ID || len(tr.Events) == 0 {
		t.Fatalf("trace: %s", body)
	}
	for _, ev := range tr.Events {
		if ev.Run != snap.ID {
			t.Fatalf("foreign event in run trace: %+v", ev)
		}
	}

	// Cancel on a terminal run is a safe no-op that returns the snapshot.
	resp, body = do(t, "POST", ts.URL+"/api/runs/"+snap.ID+"/cancel", "")
	expectCode(t, resp, body, http.StatusOK)

	// The synchronous execute action also records its run id, addressable
	// through the same endpoints.
	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/execute", "")
	expectCode(t, resp, body, http.StatusOK)
	var exec struct {
		RunID string `json:"runId"`
	}
	if err := json.Unmarshal([]byte(body), &exec); err != nil || exec.RunID == "" {
		t.Fatalf("execute runId: %s", body)
	}
	resp, body = do(t, "GET", ts.URL+"/api/runs/"+exec.RunID, "")
	expectCode(t, resp, body, http.StatusOK)

	// Error paths.
	for _, c := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/api/runs/run-999", http.StatusNotFound},
		{"DELETE", "/api/runs", http.StatusMethodNotAllowed},
		{"POST", "/api/runs/" + snap.ID + "/bogus", http.StatusMethodNotAllowed},
		{"POST", "/api/workflows/none/submit", http.StatusBadRequest},
	} {
		resp, body := do(t, c.method, ts.URL+c.path, "")
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.want, body)
		}
	}
}

func TestSubmitDemandParams(t *testing.T) {
	_, ts, _ := newTestServer(t)
	setupWordcount(t, ts)

	// Demand parameters must come as a pair of positive integers.
	for _, q := range []string{
		"?demandCores=2",
		"?demandMemMB=1024",
		"?demandCores=0&demandMemMB=1024",
		"?demandCores=2&demandMemMB=-1",
		"?demandCores=x&demandMemMB=1024",
	} {
		resp, body := do(t, "POST", ts.URL+"/api/workflows/wc/submit"+q, "")
		expectCode(t, resp, body, http.StatusBadRequest)
	}

	// A well-formed slice demand is accepted and the run completes on its
	// slice lease.
	resp, body := do(t, "POST", ts.URL+"/api/workflows/wc/submit?tenant=acme&demandCores=1&demandMemMB=1024", "")
	expectCode(t, resp, body, http.StatusAccepted)
	var snap struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.ID == "" {
		t.Fatalf("submit snapshot: %s", body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for snap.Status != "succeeded" {
		if snap.Status == "failed" || snap.Status == "canceled" || time.Now().After(deadline) {
			t.Fatalf("demand run %s ended %s", snap.ID, snap.Status)
		}
		time.Sleep(time.Millisecond)
		resp, body = do(t, "GET", ts.URL+"/api/runs/"+snap.ID, "")
		expectCode(t, resp, body, http.StatusOK)
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFaultInjectionEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	setupWordcount(t, ts)

	// Malformed JSON and unknown nodes are rejected.
	resp, body := do(t, "POST", ts.URL+"/api/faults", `{`)
	expectCode(t, resp, body, http.StatusBadRequest)
	resp, body = do(t, "POST", ts.URL+"/api/faults", `{"nodeCrashes":[{"node":"node99"}]}`)
	expectCode(t, resp, body, http.StatusBadRequest)

	// Out-of-range fields are rejected with the offending field named, so a
	// schedule that would inject nothing (or everything) is never armed.
	for _, c := range []struct{ payload, field string }{
		{`{"default":{"failProb":1.5}}`, "Default.FailProb"},
		{`{"perEngine":{"Spark":{"mtbfSec":-10}}}`, "PerEngine[Spark].MTBFSec"},
		{`{"outages":[{"engine":"Spark","atSec":-5}]}`, "Outages[0].AtSec"},
		{`{"straggler":{"prob":0.5,"factor":0.5}}`, "Straggler.Factor"},
	} {
		resp, body = do(t, "POST", ts.URL+"/api/faults", c.payload)
		expectCode(t, resp, body, http.StatusBadRequest)
		if !strings.Contains(body, c.field) {
			t.Errorf("400 body %q does not name the bad field %s", body, c.field)
		}
	}

	// Arm a schedule where every Java attempt fails. Retries exhaust, the
	// breaker trips Java, and the replan must land the work on Spark.
	cfg := `{"seed": 5, "perEngine": {"Java": {"failProb": 1}},
		"straggler": {"prob": 0, "factor": 3}}`
	resp, body = do(t, "POST", ts.URL+"/api/faults", cfg)
	expectCode(t, resp, body, http.StatusCreated)

	resp, body = do(t, "POST", ts.URL+"/api/workflows/wc/execute", `{"policy":"time"}`)
	expectCode(t, resp, body, http.StatusOK)

	resp, body = do(t, "GET", ts.URL+"/api/faults", "")
	expectCode(t, resp, body, http.StatusOK)
	var got struct {
		Stats struct {
			Transient int `json:"transient"`
		} `json:"stats"`
		BlacklistedEngines []string `json:"blacklistedEngines"`
		AvailableEngines   []string `json:"availableEngines"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("bad GET /api/faults body %q: %v", body, err)
	}
	if got.Stats.Transient < 2 {
		t.Fatalf("expected >= 2 transient injections, got %d: %s", got.Stats.Transient, body)
	}
	java := false
	for _, e := range got.BlacklistedEngines {
		if e == "Java" {
			java = true
		}
	}
	if !java {
		t.Fatalf("Java not circuit-broken after repeated failures: %s", body)
	}
	for _, e := range got.AvailableEngines {
		if e == "Java" {
			t.Fatalf("blacklisted engine still listed available: %s", body)
		}
	}

	resp, body = do(t, "DELETE", ts.URL+"/api/faults", "")
	expectCode(t, resp, body, http.StatusMethodNotAllowed)
}

// GET /api/cluster exposes the per-agent desired/actual split: fresh agents
// agree with the control plane; a partitioned agent serves its frozen report
// (stale) while the believed view keeps the last known health.
func TestClusterEndpointAgentState(t *testing.T) {
	_, ts, p := newTestServer(t)

	var dto struct {
		Nodes []struct {
			Node            string `json:"node"`
			BelievedHealthy bool   `json:"believedHealthy"`
			ReportHealthy   bool   `json:"reportHealthy"`
			Stale           bool   `json:"stale"`
			Partitioned     bool   `json:"partitioned"`
			Incarnation     int    `json:"incarnation"`
		} `json:"nodes"`
		DriftObserved     int `json:"driftObserved"`
		DeathsDetected    int `json:"deathsDetected"`
		DesiredActualDiff int `json:"desiredActualDiff"`
	}
	resp, body := do(t, "GET", ts.URL+"/api/cluster", "")
	expectCode(t, resp, body, http.StatusOK)
	if err := json.Unmarshal([]byte(body), &dto); err != nil {
		t.Fatalf("bad /api/cluster body %q: %v", body, err)
	}
	if len(dto.Nodes) == 0 {
		t.Fatal("no nodes in /api/cluster")
	}
	for _, n := range dto.Nodes {
		if !n.BelievedHealthy || !n.ReportHealthy || n.Stale || n.Partitioned {
			t.Fatalf("fresh cluster node out of agreement: %+v", n)
		}
	}
	if dto.DesiredActualDiff != 0 {
		t.Fatalf("fresh cluster desired/actual diff = %d", dto.DesiredActualDiff)
	}

	// Partition node0 and silently fail it: the endpoint shows the stale
	// frozen report still claiming health while the partition flag is up.
	victim := dto.Nodes[0].Node
	if err := p.Cluster.PartitionNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := p.Cluster.FailNode(victim, 0); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, "GET", ts.URL+"/api/cluster", "")
	expectCode(t, resp, body, http.StatusOK)
	if err := json.Unmarshal([]byte(body), &dto); err != nil {
		t.Fatal(err)
	}
	n0 := dto.Nodes[0]
	if !n0.Partitioned || !n0.Stale || !n0.ReportHealthy || !n0.BelievedHealthy {
		t.Fatalf("partitioned node state: %+v", n0)
	}

	// Heal and reconcile: the silent death is detected and both views agree
	// on the crash.
	if err := p.Cluster.HealPartition(victim); err != nil {
		t.Fatal(err)
	}
	p.Cluster.Reconcile()
	resp, body = do(t, "GET", ts.URL+"/api/cluster", "")
	expectCode(t, resp, body, http.StatusOK)
	if err := json.Unmarshal([]byte(body), &dto); err != nil {
		t.Fatal(err)
	}
	n0 = dto.Nodes[0]
	if n0.BelievedHealthy || n0.ReportHealthy || n0.Stale {
		t.Fatalf("post-reconcile node state: %+v", n0)
	}
	if dto.DeathsDetected != 1 {
		t.Fatalf("deathsDetected = %d, want 1", dto.DeathsDetected)
	}
	if dto.DesiredActualDiff != 0 {
		t.Fatalf("post-reconcile desired/actual diff = %d", dto.DesiredActualDiff)
	}
}
