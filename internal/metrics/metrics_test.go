package metrics

import (
	"testing"
	"time"
)

func sampleRun() *Run {
	return &Run{
		Operator:  "tfidf_spark",
		Algorithm: "TF_IDF",
		Engine:    "Spark",
		Params: map[string]float64{
			"records": 1000, "bytes": 5e6, "nodes": 16, "cores": 2, "memoryMB": 3456,
		},
		ExecTimeSec:   12.5,
		CostUnits:     800,
		InputBytes:    5_000_000,
		OutputBytes:   2_500_000,
		InputRecords:  1000,
		OutputRecords: 1000,
		Timeline:      []Snapshot{{AtSec: 0, CPUUtil: 0.3}, {AtSec: 12.5, CPUUtil: 0.3}},
		Date:          time.Unix(100, 0),
	}
}

func TestFeatureLookup(t *testing.T) {
	r := sampleRun()
	cases := map[string]float64{
		"records":       1000,
		"nodes":         16,
		"execTime":      12.5,
		"cost":          800,
		"inputBytes":    5e6,
		"outputBytes":   2.5e6,
		"inputRecords":  1000,
		"outputRecords": 1000,
	}
	for name, want := range cases {
		got, ok := r.Feature(name)
		if !ok || got != want {
			t.Errorf("Feature(%s) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := r.Feature("nonexistent"); ok {
		t.Error("unknown feature reported present")
	}
}

func TestFeaturesVector(t *testing.T) {
	r := sampleRun()
	v, err := r.Features([]string{"records", "nodes", "execTime"})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 || v[0] != 1000 || v[1] != 16 || v[2] != 12.5 {
		t.Fatalf("Features = %v", v)
	}
	if _, err := r.Features([]string{"records", "missing"}); err == nil {
		t.Fatal("missing feature accepted")
	}
}

func TestParamNamesSorted(t *testing.T) {
	names := sampleRun().ParamNames()
	if len(names) != 5 {
		t.Fatalf("ParamNames = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}

func TestMetricNamesSurface(t *testing.T) {
	names := MetricNames()
	// The paper reports 45 monitored metrics; we enumerate 46.
	if len(names) < 45 {
		t.Fatalf("metric surface has %d entries, want >= 45", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate metric name %q", n)
		}
		seen[n] = true
	}
}
