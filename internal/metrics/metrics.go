// Package metrics defines the monitoring record IReS collects for every
// operator execution (D3.3 §2.2.1 lists 45 monitored metrics: execution
// time, input/output sizes and counts, operator parameters, experiment date,
// and a periodic timeline of cluster system metrics pulled from Ganglia).
// The simulated engines produce the same records the real monitoring layer
// would, so the profiler/modeler code is identical to what would run against
// a live cluster.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Snapshot is one sample of the periodic system-metric timeline.
type Snapshot struct {
	AtSec       float64 // seconds since run start
	CPUUtil     float64 // [0,1] cluster-average CPU utilisation
	MemUsedMB   float64
	NetworkMBps float64
	DiskIOPS    float64
}

// Run is the full monitoring record of a single operator execution.
type Run struct {
	Operator  string // materialized operator name
	Algorithm string
	Engine    string

	// Params carries the data-, operator- and resource-specific input
	// parameters of the run (e.g. "documents", "k", "iterations", "nodes",
	// "cores", "memoryMB"). These are the model features.
	Params map[string]float64

	ExecTimeSec   float64
	CostUnits     float64 // #VM * cores/VM * GB/VM * t (Truong-Dustdar style)
	InputBytes    int64
	OutputBytes   int64
	InputRecords  int64
	OutputRecords int64

	Timeline []Snapshot
	Date     time.Time

	Failed        bool
	FailureReason string
}

// Feature returns a named feature of the run, looking first at Params and
// then at the built-in scalar metrics.
func (r *Run) Feature(name string) (float64, bool) {
	if v, ok := r.Params[name]; ok {
		return v, true
	}
	switch name {
	case "execTime":
		return r.ExecTimeSec, true
	case "cost":
		return r.CostUnits, true
	case "inputBytes":
		return float64(r.InputBytes), true
	case "outputBytes":
		return float64(r.OutputBytes), true
	case "inputRecords":
		return float64(r.InputRecords), true
	case "outputRecords":
		return float64(r.OutputRecords), true
	}
	return 0, false
}

// Features extracts the named features as a vector, returning an error when
// one is missing.
func (r *Run) Features(names []string) ([]float64, error) {
	out := make([]float64, len(names))
	for i, n := range names {
		v, ok := r.Feature(n)
		if !ok {
			return nil, fmt.Errorf("metrics: run of %s/%s lacks feature %q", r.Algorithm, r.Engine, n)
		}
		out[i] = v
	}
	return out, nil
}

// ParamNames returns the sorted parameter names of the run.
func (r *Run) ParamNames() []string {
	names := make([]string, 0, len(r.Params))
	for n := range r.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MetricNames enumerates the monitored metric surface, mirroring the 45
// metrics listed in the paper: scalar run metrics, operator parameters, and
// the periodic system timeline (8 samples x 4 system metrics).
func MetricNames() []string {
	names := []string{
		"execTime", "cost",
		"inputBytes", "outputBytes", "inputRecords", "outputRecords",
		"date",
		"param.records", "param.bytes", "param.iterations", "param.k",
		"param.nodes", "param.cores", "param.memoryMB",
	}
	for i := 0; i < 8; i++ {
		for _, m := range []string{"cpuUtil", "memUsedMB", "networkMBps", "diskIOPS"} {
			names = append(names, fmt.Sprintf("timeline[%d].%s", i, m))
		}
	}
	return names // 14 + 32 = 46 monitored metrics (paper: "45 in total")
}
