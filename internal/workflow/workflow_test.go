package workflow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
)

func matDataset(name string) *operator.Dataset {
	return operator.NewDataset(name, metadata.MustParse("Execution.path=hdfs:///"+name))
}

func abstractOp(name, alg string) *operator.Abstract {
	return operator.NewAbstract(name, metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name="+alg))
}

// buildLineCount builds the paper's LineCount workflow: log -> LineCount -> d1.
func buildLineCount(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	mustAddDataset(t, g, "asapServerLog", matDataset("asapServerLog"))
	mustAddOperator(t, g, "LineCount", abstractOp("LineCount", "LineCount"))
	mustAddDataset(t, g, "d1", nil)
	mustConnect(t, g, "asapServerLog", "LineCount")
	mustConnect(t, g, "LineCount", "d1")
	if err := g.SetTarget("d1"); err != nil {
		t.Fatal(err)
	}
	return g
}

func mustAddDataset(t *testing.T, g *Graph, name string, d *operator.Dataset) {
	t.Helper()
	if _, err := g.AddDataset(name, d); err != nil {
		t.Fatal(err)
	}
}

func mustAddOperator(t *testing.T, g *Graph, name string, a *operator.Abstract) {
	t.Helper()
	if _, err := g.AddOperator(name, a); err != nil {
		t.Fatal(err)
	}
}

func mustConnect(t *testing.T, g *Graph, from, to string) {
	t.Helper()
	if err := g.Connect(from, to); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndValidate(t *testing.T) {
	g := buildLineCount(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Sources()) != 1 || g.Sources()[0].Name != "asapServerLog" {
		t.Fatalf("Sources = %v", g.Sources())
	}
	if len(g.Operators()) != 1 || len(g.Datasets()) != 2 {
		t.Fatal("wrong node partition")
	}
}

func TestBipartiteEnforced(t *testing.T) {
	g := NewGraph()
	mustAddDataset(t, g, "a", matDataset("a"))
	mustAddDataset(t, g, "b", nil)
	if err := g.Connect("a", "b"); err == nil {
		t.Fatal("dataset->dataset edge allowed")
	}
	mustAddOperator(t, g, "o1", abstractOp("o1", "x"))
	mustAddOperator(t, g, "o2", abstractOp("o2", "y"))
	if err := g.Connect("o1", "o2"); err == nil {
		t.Fatal("operator->operator edge allowed")
	}
}

func TestDuplicateAndUnknownNodes(t *testing.T) {
	g := NewGraph()
	mustAddDataset(t, g, "a", nil)
	if _, err := g.AddDataset("a", nil); err == nil {
		t.Fatal("duplicate node allowed")
	}
	if _, err := g.AddDataset("", nil); err == nil {
		t.Fatal("empty name allowed")
	}
	if err := g.Connect("a", "missing"); err == nil {
		t.Fatal("edge to unknown node allowed")
	}
	if err := g.Connect("missing", "a"); err == nil {
		t.Fatal("edge from unknown node allowed")
	}
	if err := g.SetTarget("missing"); err == nil {
		t.Fatal("unknown target allowed")
	}
	if _, err := g.AddOperator("op", nil); err == nil {
		t.Fatal("nil abstract operator allowed")
	}
}

func TestValidateFailures(t *testing.T) {
	// No target.
	g := NewGraph()
	mustAddDataset(t, g, "a", matDataset("a"))
	if err := g.Validate(); err == nil {
		t.Fatal("missing target not caught")
	}

	// Operator target.
	g2 := NewGraph()
	mustAddOperator(t, g2, "op", abstractOp("op", "x"))
	if err := g2.SetTarget("op"); err == nil {
		t.Fatal("operator target allowed")
	}

	// Unmaterialized source.
	g3 := NewGraph()
	mustAddDataset(t, g3, "in", nil)
	mustAddOperator(t, g3, "op", abstractOp("op", "x"))
	mustAddDataset(t, g3, "out", nil)
	mustConnect(t, g3, "in", "op")
	mustConnect(t, g3, "op", "out")
	if err := g3.SetTarget("out"); err != nil {
		t.Fatal(err)
	}
	if err := g3.Validate(); err == nil || !strings.Contains(err.Error(), "not materialized") {
		t.Fatalf("unmaterialized source not caught: %v", err)
	}

	// Operator without output.
	g4 := NewGraph()
	mustAddDataset(t, g4, "in", matDataset("in"))
	mustAddOperator(t, g4, "op", abstractOp("op", "x"))
	mustConnect(t, g4, "in", "op")
	if err := g4.SetTarget("in"); err != nil {
		t.Fatal(err)
	}
	if err := g4.Validate(); err == nil || !strings.Contains(err.Error(), "no outputs") {
		t.Fatalf("output-less operator not caught: %v", err)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := buildLineCount(t)
	order, err := g.Topological()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n.Name] = i
	}
	if !(pos["asapServerLog"] < pos["LineCount"] && pos["LineCount"] < pos["d1"]) {
		t.Fatalf("bad topological order: %v", pos)
	}
	ops, err := g.OperatorsTopological()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Name != "LineCount" {
		t.Fatalf("OperatorsTopological = %v", ops)
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph()
	mustAddDataset(t, g, "d", nil)
	mustAddOperator(t, g, "o", abstractOp("o", "x"))
	mustConnect(t, g, "d", "o")
	mustConnect(t, g, "o", "d")
	if _, err := g.Topological(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildLineCount(t)
	c := g.Clone()
	if c.Len() != g.Len() || c.Target != g.Target {
		t.Fatal("clone structure mismatch")
	}
	// Adding to the clone must not affect the original.
	mustAddDataset(t, c, "extra", nil)
	if _, ok := g.Node("extra"); ok {
		t.Fatal("clone shares node map")
	}
	// Clone node pointers are distinct.
	gn, _ := g.Node("LineCount")
	cn, _ := c.Node("LineCount")
	if gn == cn {
		t.Fatal("clone shares nodes")
	}
	if cn.Inputs[0].Name != "asapServerLog" {
		t.Fatal("clone lost edges")
	}
}

func TestParseGraphPaperFormat(t *testing.T) {
	lib := operator.NewLibrary()
	if _, err := lib.AddDatasetDescription("asapServerLog", "Execution.path=hdfs:///log"); err != nil {
		t.Fatal(err)
	}
	res := LibraryResolver{
		Library: lib,
		Abstracts: map[string]*operator.Abstract{
			"LineCount": abstractOp("LineCount", "LineCount"),
		},
	}
	g, err := ParseGraphString(`
# the LineCount workflow from D3.3 §3.3
asapServerLog,LineCount,0
LineCount,d1,0
d1,$$target
`, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Target != "d1" {
		t.Fatalf("target = %q", g.Target)
	}
	n, _ := g.Node("LineCount")
	if n.Kind != OperatorNode {
		t.Fatal("LineCount should be an operator node")
	}
	d, _ := g.Node("asapServerLog")
	if !d.Dataset.IsMaterialized() {
		t.Fatal("resolved dataset should be materialized")
	}
}

func TestParseGraphTextClustering(t *testing.T) {
	res := LibraryResolver{
		Abstracts: map[string]*operator.Abstract{
			"tfidf_cilk": abstractOp("tfidf_cilk", "TF_IDF"),
			"kmeans":     abstractOp("kmeans", "kmeans"),
		},
	}
	g, err := ParseGraphString(`
testdir,tfidf_cilk,0
tfidf_cilk,d1,0
d1,kmeans,0
kmeans,d2,0
d2,$$target
`, res)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	ops, err := g.OperatorsTopological()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Name != "tfidf_cilk" || ops[1].Name != "kmeans" {
		t.Fatalf("operator order = %v", ops)
	}
}

func TestParseGraphErrors(t *testing.T) {
	if _, err := ParseGraphString("just-one-field", nil); err == nil {
		t.Fatal("malformed line accepted")
	}
	// Target on an operator node.
	res := LibraryResolver{Abstracts: map[string]*operator.Abstract{"op": abstractOp("op", "x")}}
	if _, err := ParseGraphString("a,op\nop,$$target", res); err == nil {
		t.Fatal("operator target accepted")
	}
}

func TestDOT(t *testing.T) {
	g := buildLineCount(t)
	dot := g.DOT()
	for _, frag := range []string{"digraph", `"LineCount" [shape=box]`, `"asapServerLog" -> "LineCount"`, "peripheries=2"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

// Property: topological order is valid for random layered DAGs — every edge
// points forward.
func TestQuickTopologicalValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		layers := r.Intn(5) + 2
		var prev []string
		for l := 0; l < layers; l++ {
			width := r.Intn(3) + 1
			var cur []string
			for w := 0; w < width; w++ {
				name := string(rune('a'+l)) + string(rune('0'+w))
				if l%2 == 0 {
					g.AddDataset(name, matDatasetQuick(name))
				} else {
					g.AddOperator(name, abstractOpQuick(name))
				}
				cur = append(cur, name)
			}
			for _, c := range cur {
				for _, p := range prev {
					if r.Intn(2) == 0 {
						g.Connect(p, c)
					}
				}
			}
			prev = cur
		}
		order, err := g.Topological()
		if err != nil {
			return false
		}
		pos := make(map[string]int)
		for i, n := range order {
			pos[n.Name] = i
		}
		for _, n := range g.Nodes() {
			for _, out := range n.Outputs {
				if pos[n.Name] >= pos[out.Name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func matDatasetQuick(name string) *operator.Dataset {
	return operator.NewDataset(name, metadata.MustParse("Execution.path=hdfs:///"+name))
}

func abstractOpQuick(name string) *operator.Abstract {
	return operator.NewAbstract(name, metadata.MustParse("Constraints.OpSpecification.Algorithm.name="+name))
}
