// Package workflow models analytics workflows as bipartite DAGs of dataset
// and operator nodes, the representation the IReS parser builds from a user
// submission (D3.3 §2.1, §3.3). It also parses the `graph` file format used
// by the paper's abstract-workflow directories:
//
//	asapServerLog,LineCount,0
//	LineCount,d1,0
//	d1,$$target
package workflow

import (
	"fmt"
	"sort"
	"strings"

	"github.com/asap-project/ires/internal/operator"
)

// Kind distinguishes the two node species of the bipartite workflow DAG.
type Kind int

const (
	// DatasetNode is a data vertex: a workflow input, intermediate, or the
	// target output.
	DatasetNode Kind = iota
	// OperatorNode is an abstract operator vertex.
	OperatorNode
)

func (k Kind) String() string {
	switch k {
	case DatasetNode:
		return "dataset"
	case OperatorNode:
		return "operator"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TargetMarker is the sentinel the graph-file format uses to designate the
// workflow's final output dataset.
const TargetMarker = "$$target"

// Node is a vertex of the workflow DAG. Inputs and Outputs are ordered: the
// i-th input edge of an operator feeds its i-th input slot.
type Node struct {
	Name    string
	Kind    Kind
	Inputs  []*Node
	Outputs []*Node

	// Dataset is set for DatasetNode vertices; for intermediate datasets it
	// carries whatever (possibly empty) description the user supplied.
	Dataset *operator.Dataset
	// Operator is set for OperatorNode vertices.
	Operator *operator.Abstract
}

// Graph is an abstract workflow: a DAG of alternating dataset and operator
// nodes with a designated target dataset.
type Graph struct {
	nodes  map[string]*Node
	order  []string // insertion order, for deterministic iteration
	Target string
}

// NewGraph returns an empty workflow graph.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string]*Node)}
}

// AddDataset adds a dataset node. A nil dataset gets an empty description.
func (g *Graph) AddDataset(name string, d *operator.Dataset) (*Node, error) {
	if d == nil {
		d = operator.NewDataset(name, nil)
	}
	return g.addNode(&Node{Name: name, Kind: DatasetNode, Dataset: d})
}

// AddOperator adds an abstract operator node.
func (g *Graph) AddOperator(name string, a *operator.Abstract) (*Node, error) {
	if a == nil {
		return nil, fmt.Errorf("workflow: operator node %s requires an abstract operator", name)
	}
	return g.addNode(&Node{Name: name, Kind: OperatorNode, Operator: a})
}

func (g *Graph) addNode(n *Node) (*Node, error) {
	if n.Name == "" {
		return nil, fmt.Errorf("workflow: empty node name")
	}
	if _, ok := g.nodes[n.Name]; ok {
		return nil, fmt.Errorf("workflow: duplicate node %q", n.Name)
	}
	g.nodes[n.Name] = n
	g.order = append(g.order, n.Name)
	return n, nil
}

// Connect adds an edge from -> to. Edges must alternate between dataset and
// operator nodes.
func (g *Graph) Connect(from, to string) error {
	f, ok := g.nodes[from]
	if !ok {
		return fmt.Errorf("workflow: unknown node %q", from)
	}
	t, ok := g.nodes[to]
	if !ok {
		return fmt.Errorf("workflow: unknown node %q", to)
	}
	if f.Kind == t.Kind {
		return fmt.Errorf("workflow: edge %s->%s connects two %s nodes; the graph is bipartite", from, to, f.Kind)
	}
	f.Outputs = append(f.Outputs, t)
	t.Inputs = append(t.Inputs, f)
	return nil
}

// SetTarget designates the workflow's output dataset.
func (g *Graph) SetTarget(name string) error {
	n, ok := g.nodes[name]
	if !ok {
		return fmt.Errorf("workflow: unknown target %q", name)
	}
	if n.Kind != DatasetNode {
		return fmt.Errorf("workflow: target %q is not a dataset", name)
	}
	g.Target = name
	return nil
}

// Node returns a node by name.
func (g *Graph) Node(name string) (*Node, bool) {
	n, ok := g.nodes[name]
	return n, ok
}

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.order))
	for i, n := range g.order {
		out[i] = g.nodes[n]
	}
	return out
}

// Len reports the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Datasets returns the dataset nodes in insertion order.
func (g *Graph) Datasets() []*Node { return g.byKind(DatasetNode) }

// Operators returns the operator nodes in insertion order.
func (g *Graph) Operators() []*Node { return g.byKind(OperatorNode) }

func (g *Graph) byKind(k Kind) []*Node {
	var out []*Node
	for _, name := range g.order {
		if n := g.nodes[name]; n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// Sources returns the dataset nodes with no producers (workflow inputs).
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, name := range g.order {
		n := g.nodes[name]
		if n.Kind == DatasetNode && len(n.Inputs) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Topological returns all nodes in a topological order (stable with respect
// to insertion order), or an error when the graph has a cycle.
func (g *Graph) Topological() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.nodes))
	for _, name := range g.order {
		indeg[g.nodes[name]] = len(g.nodes[name].Inputs)
	}
	// Kahn's algorithm with a deterministic frontier.
	var frontier []*Node
	for _, name := range g.order {
		if indeg[g.nodes[name]] == 0 {
			frontier = append(frontier, g.nodes[name])
		}
	}
	out := make([]*Node, 0, len(g.nodes))
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		out = append(out, n)
		for _, succ := range n.Outputs {
			indeg[succ]--
			if indeg[succ] == 0 {
				frontier = append(frontier, succ)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("workflow: graph contains a cycle")
	}
	return out, nil
}

// OperatorsTopological returns only the operator nodes, topologically
// ordered.
func (g *Graph) OperatorsTopological() ([]*Node, error) {
	all, err := g.Topological()
	if err != nil {
		return nil, err
	}
	var out []*Node
	for _, n := range all {
		if n.Kind == OperatorNode {
			out = append(out, n)
		}
	}
	return out, nil
}

// Validate checks structural well-formedness: a designated dataset target,
// acyclicity, bipartite alternation (enforced on Connect, re-checked here),
// every operator with at least one input and one output, and every source
// dataset materialized.
func (g *Graph) Validate() error {
	if g.Target == "" {
		return fmt.Errorf("workflow: no target dataset designated")
	}
	if _, ok := g.nodes[g.Target]; !ok {
		return fmt.Errorf("workflow: target %q not in graph", g.Target)
	}
	if _, err := g.Topological(); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		switch n.Kind {
		case OperatorNode:
			if len(n.Inputs) == 0 {
				return fmt.Errorf("workflow: operator %s has no inputs", n.Name)
			}
			if len(n.Outputs) == 0 {
				return fmt.Errorf("workflow: operator %s has no outputs", n.Name)
			}
		case DatasetNode:
			if len(n.Inputs) == 0 && !n.Dataset.IsMaterialized() {
				return fmt.Errorf("workflow: source dataset %s is not materialized (missing %s)", n.Name, operator.PathExecutionPath)
			}
			if len(n.Inputs) > 1 {
				return fmt.Errorf("workflow: dataset %s has %d producers; at most one allowed", n.Name, len(n.Inputs))
			}
		}
	}
	return nil
}

// Clone returns a deep structural copy of the graph. Dataset and Operator
// descriptions are shared (they are immutable by convention).
func (g *Graph) Clone() *Graph {
	ng := NewGraph()
	for _, name := range g.order {
		n := g.nodes[name]
		cp := &Node{Name: n.Name, Kind: n.Kind, Dataset: n.Dataset, Operator: n.Operator}
		ng.nodes[name] = cp
		ng.order = append(ng.order, name)
	}
	for _, name := range g.order {
		n := g.nodes[name]
		cp := ng.nodes[name]
		for _, in := range n.Inputs {
			cp.Inputs = append(cp.Inputs, ng.nodes[in.Name])
		}
		for _, out := range n.Outputs {
			cp.Outputs = append(cp.Outputs, ng.nodes[out.Name])
		}
	}
	ng.Target = g.Target
	return ng
}

// DOT renders the workflow in Graphviz format (datasets as ellipses,
// operators as boxes), handy for debugging and documentation.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph workflow {\n")
	names := make([]string, len(g.order))
	copy(names, g.order)
	sort.Strings(names)
	for _, name := range names {
		n := g.nodes[name]
		shape := "ellipse"
		if n.Kind == OperatorNode {
			shape = "box"
		}
		extra := ""
		if name == g.Target {
			extra = ", peripheries=2"
		}
		fmt.Fprintf(&b, "  %q [shape=%s%s];\n", name, shape, extra)
	}
	for _, name := range names {
		n := g.nodes[name]
		for _, out := range n.Outputs {
			fmt.Fprintf(&b, "  %q -> %q;\n", n.Name, out.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
