package workflow

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/asap-project/ires/internal/operator"
)

// Resolver supplies node descriptions while parsing a graph file. The
// operator library implements it; tests can supply stubs.
type Resolver interface {
	// ResolveDataset returns the description of a named dataset, or nil when
	// unknown (the node becomes an abstract intermediate dataset).
	ResolveDataset(name string) *operator.Dataset
	// ResolveOperator returns the abstract operator description for a named
	// operator node, or nil when unknown.
	ResolveOperator(name string) *operator.Abstract
}

// LibraryResolver adapts an operator.Library plus a set of abstract operator
// descriptions to the Resolver interface.
type LibraryResolver struct {
	Library   *operator.Library
	Abstracts map[string]*operator.Abstract
}

// ResolveDataset implements Resolver using the library's dataset registry.
func (r LibraryResolver) ResolveDataset(name string) *operator.Dataset {
	if r.Library == nil {
		return nil
	}
	d, _ := r.Library.Dataset(name)
	return d
}

// ResolveOperator implements Resolver using the provided abstract set.
func (r LibraryResolver) ResolveOperator(name string) *operator.Abstract {
	return r.Abstracts[name]
}

// ParseGraph reads the `graph` file format of D3.3 §3.3. Each line is
// either an edge "from,to[,port]" or the target designation
// "dataset,$$target". Node kinds are inferred: a name resolving to an
// abstract operator becomes an operator node; anything else becomes a
// dataset node (materialized when the resolver knows it, abstract
// otherwise).
func ParseGraph(r io.Reader, res Resolver) (*Graph, error) {
	g := NewGraph()
	ensure := func(name string) (*Node, error) {
		if n, ok := g.Node(name); ok {
			return n, nil
		}
		if res != nil {
			if a := res.ResolveOperator(name); a != nil {
				return g.AddOperator(name, a)
			}
			if d := res.ResolveDataset(name); d != nil {
				return g.AddDataset(name, d)
			}
		}
		return g.AddDataset(name, nil)
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		switch {
		case len(parts) >= 2 && parts[1] == TargetMarker:
			if _, err := ensure(parts[0]); err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
			if err := g.SetTarget(parts[0]); err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
		case len(parts) == 2 || len(parts) == 3:
			// Third field is the port/ordinal; edge order already encodes it.
			if _, err := ensure(parts[0]); err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
			if _, err := ensure(parts[1]); err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
			if err := g.Connect(parts[0], parts[1]); err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("workflow: line %d: malformed %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workflow: read: %w", err)
	}
	return g, nil
}

// ParseGraphString parses a graph file from a string.
func ParseGraphString(s string, res Resolver) (*Graph, error) {
	return ParseGraph(strings.NewReader(s), res)
}
