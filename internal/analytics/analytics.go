// Package analytics implements the actual analytics operators the paper's
// workflows run — PageRank, tf-idf, k-means, wordcount, linecount — as real
// algorithms over real (synthetic) data. Examples execute them at laptop
// scale inside the simulated engines, so the multi-engine plans produce
// genuine results, not placeholders.
package analytics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/asap-project/ires/internal/datagen"
)

// PageRank runs power iteration over the directed edge list and returns the
// rank vector (indexed by vertex). Dangling mass is redistributed
// uniformly; damping defaults to 0.85 when out of (0,1).
func PageRank(edges []datagen.Edge, iterations int, damping float64) []float64 {
	n := datagen.VertexCount(edges)
	if n == 0 {
		return nil
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iterations < 1 {
		iterations = 10
	}
	outDeg := make([]int, n)
	for _, e := range edges {
		outDeg[e.Src]++
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		base := (1 - damping) / float64(n)
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
			next[v] = base
		}
		share := damping * dangling / float64(n)
		for v := range next {
			next[v] += share
		}
		for _, e := range edges {
			next[e.Dst] += damping * rank[e.Src] / float64(outDeg[e.Src])
		}
		rank, next = next, rank
	}
	return rank
}

// TopRanked returns the k highest-ranked vertex ids in descending rank
// order — the "influence score" output of the graph analytics workflow.
func TopRanked(rank []float64, k int) []int {
	idx := make([]int, len(rank))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if rank[idx[a]] != rank[idx[b]] {
			return rank[idx[a]] > rank[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// SparseVector maps term -> weight.
type SparseVector map[string]float64

// TFIDF computes tf-idf vectors for a corpus: tf is term frequency within
// the document, idf is log(N / df) with add-one smoothing.
func TFIDF(corpus []datagen.Document) []SparseVector {
	n := len(corpus)
	if n == 0 {
		return nil
	}
	df := make(map[string]int)
	for _, d := range corpus {
		seen := make(map[string]bool, len(d.Tokens))
		for _, t := range d.Tokens {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	out := make([]SparseVector, n)
	for i, d := range corpus {
		tf := make(map[string]int, len(d.Tokens))
		for _, t := range d.Tokens {
			tf[t]++
		}
		vec := make(SparseVector, len(tf))
		for t, f := range tf {
			idf := math.Log(float64(n+1) / float64(df[t]+1))
			vec[t] = float64(f) / float64(len(d.Tokens)) * idf
		}
		out[i] = vec
	}
	return out
}

// KMeansResult packages the clustering output.
type KMeansResult struct {
	Centroids   []datagen.Vector
	Assignments []int
	Iterations  int
	Inertia     float64 // sum of squared distances to assigned centroids
}

// KMeans clusters dense vectors with Lloyd's algorithm and k-means++
// seeding. It stops at convergence or maxIters.
func KMeans(points []datagen.Vector, k, maxIters int, seed int64) (*KMeansResult, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("analytics: kmeans on empty input")
	}
	if k <= 0 || k > len(points) {
		return nil, fmt.Errorf("analytics: kmeans k=%d with %d points", k, len(points))
	}
	if maxIters < 1 {
		maxIters = 20
	}
	dims := len(points[0])
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("analytics: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([]datagen.Vector, 0, k)
	centroids = append(centroids, append(datagen.Vector(nil), points[rng.Intn(len(points))]...))
	dist2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sq(p, c); d < best {
					best = d
				}
			}
			dist2[i] = best
			total += best
		}
		target := rng.Float64() * total
		chosen := len(points) - 1
		acc := 0.0
		for i, d := range dist2 {
			acc += d
			if acc >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, append(datagen.Vector(nil), points[chosen]...))
	}

	assign := make([]int, len(points))
	res := &KMeansResult{}
	for it := 1; it <= maxIters; it++ {
		res.Iterations = it
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c := range centroids {
				if d := sq(p, centroids[c]); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		counts := make([]int, k)
		sums := make([]datagen.Vector, k)
		for c := range sums {
			sums[c] = make(datagen.Vector, dims)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep empty centroid in place
			}
			for d := range sums[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed && it > 1 {
			break
		}
	}
	res.Centroids = centroids
	res.Assignments = assign
	for i, p := range points {
		res.Inertia += sq(p, centroids[assign[i]])
	}
	return res, nil
}

func sq(a, b datagen.Vector) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// VectorizeTFIDF embeds sparse tf-idf vectors into a dense space spanned by
// the top dims terms by document frequency — the bridge between the tf-idf
// and k-means stages of the text-clustering workflow.
func VectorizeTFIDF(vecs []SparseVector, dims int) []datagen.Vector {
	counts := make(map[string]int)
	for _, v := range vecs {
		for t := range v {
			counts[t]++
		}
	}
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if counts[terms[i]] != counts[terms[j]] {
			return counts[terms[i]] > counts[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if dims > len(terms) {
		dims = len(terms)
	}
	terms = terms[:dims]
	out := make([]datagen.Vector, len(vecs))
	for i, v := range vecs {
		dense := make(datagen.Vector, dims)
		for d, t := range terms {
			dense[d] = v[t]
		}
		out[i] = dense
	}
	return out
}

// WordCount counts distinct token frequencies over a corpus.
func WordCount(corpus []datagen.Document) map[string]int {
	out := make(map[string]int)
	for _, d := range corpus {
		for _, t := range d.Tokens {
			out[t]++
		}
	}
	return out
}

// LineCount counts newline-separated lines, the HelloWorld-grade operator
// of the IReS tutorial (wc -l semantics: number of newline characters).
func LineCount(text string) int {
	return strings.Count(text, "\n")
}

// Grep returns the lines containing the pattern.
func Grep(lines []string, pattern string) []string {
	var out []string
	for _, l := range lines {
		if strings.Contains(l, pattern) {
			out = append(out, l)
		}
	}
	return out
}
