package analytics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asap-project/ires/internal/datagen"
)

func TestPageRankKnownGraph(t *testing.T) {
	// Classic 3-node cycle: uniform ranks.
	edges := []datagen.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	rank := PageRank(edges, 50, 0.85)
	for v, r := range rank {
		if math.Abs(r-1.0/3) > 1e-6 {
			t.Errorf("vertex %d rank %.6f, want 1/3", v, r)
		}
	}
}

func TestPageRankSink(t *testing.T) {
	// 0 -> 2, 1 -> 2: vertex 2 is the most influential.
	edges := []datagen.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}
	rank := PageRank(edges, 30, 0.85)
	if top := TopRanked(rank, 1); top[0] != 2 {
		t.Fatalf("top vertex = %d, want 2 (ranks %v)", top[0], rank)
	}
	// Ranks sum to ~1 (stochastic with dangling redistribution).
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %.6f", sum)
	}
}

func TestPageRankEmptyAndDefaults(t *testing.T) {
	if PageRank(nil, 10, 0.85) != nil {
		t.Fatal("empty graph should yield nil")
	}
	edges := []datagen.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	a := PageRank(edges, 0, 0)   // defaults kick in
	b := PageRank(edges, 10, -1) // invalid damping -> default
	if len(a) != 2 || len(b) != 2 {
		t.Fatal("defaults broken")
	}
}

func TestTopRankedStable(t *testing.T) {
	rank := []float64{0.2, 0.5, 0.2, 0.1}
	top := TopRanked(rank, 3)
	if top[0] != 1 || top[1] != 0 || top[2] != 2 {
		t.Fatalf("TopRanked = %v", top)
	}
	if got := TopRanked(rank, 10); len(got) != 4 {
		t.Fatalf("k clamp failed: %v", got)
	}
}

func TestTFIDFKnownValues(t *testing.T) {
	corpus := []datagen.Document{
		{ID: 0, Tokens: []string{"cat", "dog", "cat"}},
		{ID: 1, Tokens: []string{"dog", "fish"}},
	}
	vecs := TFIDF(corpus)
	if len(vecs) != 2 {
		t.Fatal("wrong vector count")
	}
	// "cat" appears in 1 of 2 docs: idf = ln(3/2); tf in doc0 = 2/3.
	wantCat := (2.0 / 3.0) * math.Log(3.0/2.0)
	if got := vecs[0]["cat"]; math.Abs(got-wantCat) > 1e-9 {
		t.Errorf("tfidf(cat, doc0) = %v, want %v", got, wantCat)
	}
	// "dog" appears in both docs: idf = ln(3/3) = 0.
	if got := vecs[0]["dog"]; got != 0 {
		t.Errorf("tfidf(dog, doc0) = %v, want 0", got)
	}
	if _, ok := vecs[0]["fish"]; ok {
		t.Error("doc0 has weight for absent term")
	}
	if TFIDF(nil) != nil {
		t.Error("empty corpus should yield nil")
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	vecs, truth := datagen.ClusteredVectors(300, 4, 3, 7)
	res, err := KMeans(vecs, 3, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Clusters are well separated: assignment must agree with truth up to
	// label permutation. Check purity > 95%.
	agree := make(map[[2]int]int)
	for i := range vecs {
		agree[[2]int{truth[i], res.Assignments[i]}]++
	}
	correct := 0
	for c := 0; c < 3; c++ {
		best := 0
		for a := 0; a < 3; a++ {
			if agree[[2]int{c, a}] > best {
				best = agree[[2]int{c, a}]
			}
		}
		correct += best
	}
	if purity := float64(correct) / 300; purity < 0.95 {
		t.Fatalf("purity = %.3f", purity)
	}
	if res.Inertia <= 0 || res.Iterations < 1 {
		t.Fatal("result stats missing")
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, 10, 1); err == nil {
		t.Fatal("empty input accepted")
	}
	vecs, _ := datagen.ClusteredVectors(10, 2, 2, 1)
	if _, err := KMeans(vecs, 0, 10, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(vecs, 11, 10, 1); err == nil {
		t.Fatal("k>n accepted")
	}
	ragged := []datagen.Vector{{1, 2}, {1}}
	if _, err := KMeans(ragged, 1, 10, 1); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestVectorizeTFIDF(t *testing.T) {
	corpus := datagen.Corpus(50, 40, 3)
	dense := VectorizeTFIDF(TFIDF(corpus), 16)
	if len(dense) != 50 {
		t.Fatal("wrong count")
	}
	for _, v := range dense {
		if len(v) != 16 {
			t.Fatalf("dim = %d", len(v))
		}
	}
	// Requesting more dims than terms clamps.
	tiny := VectorizeTFIDF(TFIDF(corpus[:1]), 1_000_000)
	if len(tiny[0]) > 100_000 {
		t.Fatal("dims not clamped")
	}
}

func TestWordCountAndLineCount(t *testing.T) {
	corpus := []datagen.Document{
		{Tokens: []string{"a", "b", "a"}},
		{Tokens: []string{"b"}},
	}
	wc := WordCount(corpus)
	if wc["a"] != 2 || wc["b"] != 2 {
		t.Fatalf("WordCount = %v", wc)
	}
	if LineCount("x\ny\nz\n") != 3 {
		t.Fatal("LineCount wrong")
	}
	if LineCount("") != 0 {
		t.Fatal("empty LineCount wrong")
	}
}

func TestGrep(t *testing.T) {
	lines := []string{"a ERROR x", "b INFO y", "c ERROR z"}
	if got := Grep(lines, "ERROR"); len(got) != 2 {
		t.Fatalf("Grep = %v", got)
	}
}

func TestDatagenShapes(t *testing.T) {
	edges := datagen.CallGraph(50_000, 9)
	if len(edges) != 50_000 {
		t.Fatal("edge count wrong")
	}
	if skew := datagen.ZipfSkew(edges); skew < 0.05 {
		t.Errorf("call graph not heavy-tailed: top-1%% share %.3f", skew)
	}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("self loop generated")
		}
	}

	corpus := datagen.Corpus(200, 60, 9)
	nd, nt, vocab := datagen.Stats(corpus)
	if nd != 200 || nt < 200*30 || vocab < 50 {
		t.Fatalf("corpus stats: %d docs %d tokens %d vocab", nd, nt, vocab)
	}
	if datagen.SizeOfCorpus(corpus) <= 0 {
		t.Fatal("corpus size zero")
	}

	lines := datagen.Lines(100, 1)
	if len(lines) != 100 || lines[0] == lines[1] {
		t.Fatal("lines degenerate")
	}
}

// Property: PageRank is a probability distribution on arbitrary random
// graphs.
func TestQuickPageRankStochastic(t *testing.T) {
	f := func(seed int64) bool {
		edges := datagen.CallGraph(500+int(uint64(seed)%2000), seed)
		rank := PageRank(edges, 15, 0.85)
		sum := 0.0
		for _, r := range rank {
			if r < 0 {
				return false
			}
			sum += r
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: k-means inertia never increases when k grows (with fixed seed
// and converged runs, more clusters fit at least as well).
func TestQuickKMeansInertiaMonotone(t *testing.T) {
	vecs, _ := datagen.ClusteredVectors(200, 3, 4, 11)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := KMeans(vecs, k, 60, 5)
		if err != nil {
			t.Fatal(err)
		}
		// Lloyd's is a local optimiser; allow 10% slack for bad seeds.
		if res.Inertia > prev*1.10 {
			t.Fatalf("inertia grew at k=%d: %.1f -> %.1f", k, prev, res.Inertia)
		}
		if res.Inertia < prev {
			prev = res.Inertia
		}
	}
}
