package sqldata

import "testing"

func TestGenerateCardinalities(t *testing.T) {
	tables := Generate(0.01, 1)
	if len(tables) != 8 {
		t.Fatalf("tables = %d", len(tables))
	}
	if n := tables["region"].NumRows(); n != 5 {
		t.Errorf("region rows = %d", n)
	}
	if n := tables["nation"].NumRows(); n != 25 {
		t.Errorf("nation rows = %d", n)
	}
	if n := tables["lineitem"].NumRows(); n != 60_000 {
		t.Errorf("lineitem rows = %d, want 60000", n)
	}
	if n := tables["customer"].NumRows(); n != 1_500 {
		t.Errorf("customer rows = %d, want 1500", n)
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	tables := Generate(0.005, 2)
	for _, fk := range ForeignKeys() {
		child := tables[fk.Table]
		parent := tables[fk.RefTable]
		ci := child.ColIndex(fk.Col)
		pi := parent.ColIndex(fk.RefCol)
		if ci < 0 || pi < 0 {
			t.Fatalf("fk %v: column missing", fk)
		}
		keys := make(map[int64]bool, parent.NumRows())
		for _, r := range parent.Rows {
			keys[r[pi]] = true
		}
		for _, r := range child.Rows {
			if !keys[r[ci]] {
				t.Fatalf("fk %v: dangling value %d", fk, r[ci])
			}
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tables := Generate(0.002, 3)
	c := tables["customer"]
	if c.ColIndex("c_custkey") != 0 || c.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
	if c.Width() != 4 {
		t.Fatalf("Width = %d", c.Width())
	}
	if c.Bytes() != int64(c.NumRows())*4*8 {
		t.Fatal("Bytes wrong")
	}
	if d := c.DistinctCount("c_custkey"); d != c.NumRows() {
		t.Fatalf("distinct custkey = %d, want %d", d, c.NumRows())
	}
	if c.DistinctCount("missing") != 0 {
		t.Fatal("distinct of missing column")
	}
	cl := c.Clone()
	cl.Rows[0][0] = -99
	if c.Rows[0][0] == -99 {
		t.Fatal("Clone shares rows")
	}
	if TotalBytes(tables) <= 0 || Describe(tables) == "" {
		t.Fatal("aggregate helpers broken")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(0.002, 7)
	b := Generate(0.002, 7)
	for name := range a {
		if a[name].NumRows() != b[name].NumRows() {
			t.Fatalf("%s cardinality differs", name)
		}
		for i := range a[name].Rows {
			for j := range a[name].Rows[i] {
				if a[name].Rows[i][j] != b[name].Rows[i][j] {
					t.Fatalf("%s row %d differs", name, i)
				}
			}
		}
	}
}

func TestScaleZeroClamped(t *testing.T) {
	tables := Generate(0, 1)
	if tables["lineitem"].NumRows() < 2 {
		t.Fatal("degenerate scale not clamped")
	}
}
