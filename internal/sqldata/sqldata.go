// Package sqldata generates a TPC-H-like relational dataset at a
// configurable scale factor — the substitute for the dbgen-produced data the
// paper's relational workflow and the MuSQLE evaluation use. For a compact,
// type-safe mini-database, every column is int64: keys are surrogate
// integers, prices are cents, names/regions are dictionary codes and dates
// are day numbers. Joins and filters — all the evaluation exercises — are
// unaffected by this encoding.
package sqldata

import (
	"fmt"
	"math/rand"
	"sort"
)

// Table is an in-memory relation with int64-typed columns.
type Table struct {
	Name string
	Cols []string
	Rows [][]int64
}

// ColIndex returns the position of a column, or -1.
func (t *Table) ColIndex(col string) int {
	for i, c := range t.Cols {
		if c == col {
			return i
		}
	}
	return -1
}

// NumRows reports the table's cardinality.
func (t *Table) NumRows() int { return len(t.Rows) }

// Width reports the number of columns.
func (t *Table) Width() int { return len(t.Cols) }

// Bytes approximates the table's in-memory size.
func (t *Table) Bytes() int64 { return int64(len(t.Rows)) * int64(len(t.Cols)) * 8 }

// DistinctCount returns the number of distinct values in a column (0 for an
// unknown column).
func (t *Table) DistinctCount(col string) int {
	idx := t.ColIndex(col)
	if idx < 0 {
		return 0
	}
	seen := make(map[int64]struct{}, len(t.Rows))
	for _, r := range t.Rows {
		seen[r[idx]] = struct{}{}
	}
	return len(seen)
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	nt := &Table{Name: t.Name, Cols: append([]string(nil), t.Cols...)}
	nt.Rows = make([][]int64, len(t.Rows))
	for i, r := range t.Rows {
		nt.Rows[i] = append([]int64(nil), r...)
	}
	return nt
}

// Baseline TPC-H cardinalities at scale factor 1.
const (
	regionSF1   = 5
	nationSF1   = 25
	supplierSF1 = 10_000
	customerSF1 = 150_000
	partSF1     = 200_000
	partsuppSF1 = 800_000
	ordersSF1   = 1_500_000
	lineitemSF1 = 6_000_000
)

// TableNames lists the generated tables in dependency order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}

// Generate produces the eight TPC-H-like tables at the given scale factor
// (sf=1 matches TPC-H row counts; tests use much smaller factors).
func Generate(sf float64, seed int64) map[string]*Table {
	if sf <= 0 {
		sf = 0.001
	}
	rng := rand.New(rand.NewSource(seed))
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 2 {
			n = 2
		}
		return n
	}
	nRegion := regionSF1 // fixed-size dimension tables
	nNation := nationSF1
	nSupplier := scale(supplierSF1)
	nCustomer := scale(customerSF1)
	nPart := scale(partSF1)
	nPartsupp := scale(partsuppSF1)
	nOrders := scale(ordersSF1)
	nLineitem := scale(lineitemSF1)

	tables := make(map[string]*Table, 8)

	region := &Table{Name: "region", Cols: []string{"r_regionkey", "r_name"}}
	for i := 0; i < nRegion; i++ {
		region.Rows = append(region.Rows, []int64{int64(i), int64(i)})
	}
	tables["region"] = region

	nation := &Table{Name: "nation", Cols: []string{"n_nationkey", "n_regionkey", "n_name"}}
	for i := 0; i < nNation; i++ {
		nation.Rows = append(nation.Rows, []int64{int64(i), int64(i % nRegion), int64(i)})
	}
	tables["nation"] = nation

	supplier := &Table{Name: "supplier", Cols: []string{"s_suppkey", "s_nationkey", "s_acctbal"}}
	for i := 0; i < nSupplier; i++ {
		supplier.Rows = append(supplier.Rows, []int64{
			int64(i), int64(rng.Intn(nNation)), int64(rng.Intn(1_000_000)),
		})
	}
	tables["supplier"] = supplier

	customer := &Table{Name: "customer", Cols: []string{"c_custkey", "c_nationkey", "c_acctbal", "c_mktsegment"}}
	for i := 0; i < nCustomer; i++ {
		customer.Rows = append(customer.Rows, []int64{
			int64(i), int64(rng.Intn(nNation)), int64(rng.Intn(1_000_000)), int64(rng.Intn(5)),
		})
	}
	tables["customer"] = customer

	part := &Table{Name: "part", Cols: []string{"p_partkey", "p_retailprice", "p_size", "p_brand"}}
	for i := 0; i < nPart; i++ {
		part.Rows = append(part.Rows, []int64{
			int64(i), int64(90_000 + rng.Intn(120_000)), int64(1 + rng.Intn(50)), int64(rng.Intn(25)),
		})
	}
	tables["part"] = part

	partsupp := &Table{Name: "partsupp", Cols: []string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}}
	for i := 0; i < nPartsupp; i++ {
		partsupp.Rows = append(partsupp.Rows, []int64{
			int64(rng.Intn(nPart)), int64(rng.Intn(nSupplier)), int64(rng.Intn(10_000)), int64(rng.Intn(100_000)),
		})
	}
	tables["partsupp"] = partsupp

	orders := &Table{Name: "orders", Cols: []string{"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate", "o_orderstatus"}}
	for i := 0; i < nOrders; i++ {
		orders.Rows = append(orders.Rows, []int64{
			int64(i), int64(rng.Intn(nCustomer)), int64(rng.Intn(50_000_000)), int64(rng.Intn(2557)), int64(rng.Intn(3)),
		})
	}
	tables["orders"] = orders

	lineitem := &Table{Name: "lineitem", Cols: []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_shipdate"}}
	for i := 0; i < nLineitem; i++ {
		lineitem.Rows = append(lineitem.Rows, []int64{
			int64(rng.Intn(nOrders)), int64(rng.Intn(nPart)), int64(rng.Intn(nSupplier)),
			int64(1 + rng.Intn(50)), int64(rng.Intn(10_000_000)), int64(rng.Intn(2557)),
		})
	}
	tables["lineitem"] = lineitem

	return tables
}

// ForeignKey declares one FK relationship of the schema.
type ForeignKey struct {
	Table, Col, RefTable, RefCol string
}

// ForeignKeys returns the schema's join edges (the TPC-H join graph).
func ForeignKeys() []ForeignKey {
	return []ForeignKey{
		{"nation", "n_regionkey", "region", "r_regionkey"},
		{"supplier", "s_nationkey", "nation", "n_nationkey"},
		{"customer", "c_nationkey", "nation", "n_nationkey"},
		{"partsupp", "ps_partkey", "part", "p_partkey"},
		{"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
		{"orders", "o_custkey", "customer", "c_custkey"},
		{"lineitem", "l_orderkey", "orders", "o_orderkey"},
		{"lineitem", "l_partkey", "part", "p_partkey"},
		{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
	}
}

// TotalBytes sums the approximate sizes of all tables.
func TotalBytes(tables map[string]*Table) int64 {
	var total int64
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		total += tables[n].Bytes()
	}
	return total
}

// Describe renders table cardinalities for logging.
func Describe(tables map[string]*Table) string {
	out := ""
	for _, n := range TableNames() {
		if t, ok := tables[n]; ok {
			out += fmt.Sprintf("%s: %d rows\n", n, t.NumRows())
		}
	}
	return out
}
