package scheduler

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// span records one stub execution's observable lifetime.
type span struct {
	runID string
	nodes int
	start time.Duration
	end   time.Duration
}

// stubExec simulates dur of virtual work in steps, checking the cancel probe
// between steps like the real executor's decision points.
type stubExec struct {
	clock    *vtime.Clock
	party    *vtime.Party
	lease    *cluster.Reservation
	canceled func() bool
	runID    string
	dur      time.Duration
	steps    int

	mu    *sync.Mutex
	spans *[]span
}

func (e *stubExec) Execute(g *workflow.Graph, plan *planner.Plan) (*executor.Result, error) {
	start := e.clock.Now()
	step := e.dur / time.Duration(e.steps)
	for i := 0; i < e.steps; i++ {
		if e.canceled() {
			return nil, executor.ErrCanceled
		}
		e.party.WaitUntil(e.clock.Now() + step)
	}
	e.mu.Lock()
	*e.spans = append(*e.spans, span{runID: e.runID, nodes: e.lease.Size(), start: start, end: e.clock.Now()})
	e.mu.Unlock()
	return &executor.Result{}, nil
}

// testRig wires a scheduler whose executors are stubs with per-workflow
// durations (keyed by graph target).
type testRig struct {
	clock *vtime.Clock
	clu   *cluster.Cluster
	sched *Scheduler
	mu    sync.Mutex
	spans []span
	durs  map[string]time.Duration
}

func newRig(t *testing.T, nodes int, policy Policy, durs map[string]time.Duration) *testRig {
	t.Helper()
	rig := &testRig{clock: vtime.NewClock(), durs: durs}
	rig.clu = cluster.New(rig.clock, nodes, 8, 16384)
	var err error
	rig.sched, err = New(Config{
		Clock:   rig.clock,
		Cluster: rig.clu,
		Policy:  policy,
		Plan: func(g *workflow.Graph) (*planner.Plan, error) {
			return &planner.Plan{Target: g.Target}, nil
		},
		NewExecutor: func(ctx ExecContext) Exec {
			rig.mu.Lock()
			dur := rig.durs[ctx.RunID]
			rig.mu.Unlock()
			if dur == 0 {
				dur = 10 * time.Second
			}
			return &stubExec{
				clock: rig.clock, party: ctx.Party, lease: ctx.Lease, canceled: ctx.Canceled,
				runID: ctx.RunID, dur: dur, steps: 4,
				mu: &rig.mu, spans: &rig.spans,
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func graph(name string) *workflow.Graph {
	g := workflow.NewGraph()
	g.Target = name
	return g
}

// FIFO serializes runs in submission order, each leasing the whole cluster.
func TestFIFOSerializesInOrder(t *testing.T) {
	rig := newRig(t, 4, FIFO{}, map[string]time.Duration{
		"run-001": 30 * time.Second,
		"run-002": 10 * time.Second,
		"run-003": 20 * time.Second,
	})
	var runs []*Run
	for i := 1; i <= 3; i++ {
		runs = append(runs, rig.sched.Submit(graph(fmt.Sprintf("wf%d", i))))
	}
	rig.sched.Drain()
	for _, r := range runs {
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", r.ID(), err)
		}
	}
	if len(rig.spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rig.spans))
	}
	for i, sp := range rig.spans {
		if want := fmt.Sprintf("run-%03d", i+1); sp.runID != want {
			t.Fatalf("completion order[%d] = %s, want %s (FIFO must preserve submission order)", i, sp.runID, want)
		}
		if sp.nodes != 4 {
			t.Fatalf("%s leased %d nodes, want the whole 4-node cluster", sp.runID, sp.nodes)
		}
		if i > 0 && sp.start < rig.spans[i-1].end {
			t.Fatalf("%s started at %v before %s ended at %v (FIFO runs must not overlap)",
				sp.runID, sp.start, rig.spans[i-1].runID, rig.spans[i-1].end)
		}
	}
	// Serialized makespan: 30 + 10 + 20.
	if now := rig.clock.Now(); now != 60*time.Second {
		t.Fatalf("final virtual time = %v, want 60s", now)
	}
}

// FairShare overlaps up to K runs on half-cluster leases, finishing a
// contended batch sooner than FIFO would.
func TestFairShareOverlaps(t *testing.T) {
	durs := map[string]time.Duration{
		"run-001": 20 * time.Second,
		"run-002": 20 * time.Second,
		"run-003": 20 * time.Second,
		"run-004": 20 * time.Second,
	}
	rig := newRig(t, 4, FairShare{MaxConcurrent: 2}, durs)
	for i := 1; i <= 4; i++ {
		rig.sched.Submit(graph(fmt.Sprintf("wf%d", i)))
	}
	rig.sched.Drain()
	if len(rig.spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(rig.spans))
	}
	overlapped := false
	for i, a := range rig.spans {
		if a.nodes != 2 {
			t.Fatalf("%s leased %d nodes, want 2 (4 nodes / 2 slots)", a.runID, a.nodes)
		}
		for _, b := range rig.spans[i+1:] {
			if a.start < b.end && b.start < a.end {
				overlapped = true
			}
		}
	}
	if !overlapped {
		t.Fatal("no two fair-share runs overlapped in virtual time")
	}
	// Two waves of two concurrent 20s runs: 40s total, vs 80s serialized.
	if now := rig.clock.Now(); now != 40*time.Second {
		t.Fatalf("final virtual time = %v, want 40s", now)
	}
}

// A run canceled while queued never executes; Wait returns ErrCanceled.
func TestCancelQueued(t *testing.T) {
	rig := newRig(t, 4, FIFO{}, map[string]time.Duration{"run-001": 50 * time.Second})
	first := rig.sched.Submit(graph("long"))
	second := rig.sched.Submit(graph("victim"))
	if got := rig.sched.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d, want 1 (second run held by FIFO)", got)
	}
	second.Cancel()
	if _, _, err := second.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled queued run: err = %v", err)
	}
	if st := second.Status(); st.Status != "canceled" {
		t.Fatalf("status = %s, want canceled", st.Status)
	}
	if _, _, err := first.Wait(); err != nil {
		t.Fatalf("unaffected run failed: %v", err)
	}
	for _, sp := range rig.spans {
		if sp.runID == "run-002" {
			t.Fatal("canceled queued run executed anyway")
		}
	}
}

// A running run cancels at its next decision point and releases its lease so
// successors still admit.
func TestCancelRunning(t *testing.T) {
	rig := newRig(t, 4, FIFO{}, map[string]time.Duration{
		"run-001": 40 * time.Second,
		"run-002": 10 * time.Second,
	})
	victim := rig.sched.Submit(graph("victim"))
	successor := rig.sched.Submit(graph("next"))
	// Cancel mid-flight, deterministically: a virtual-time event at 15s
	// flips the flag, and the stub polls the probe at its next 10s step.
	rig.clock.Schedule(15*time.Second, func(time.Duration) { victim.Cancel() })
	rig.sched.Start()
	if _, _, err := victim.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled running run: err = %v", err)
	}
	if _, _, err := successor.Wait(); err != nil {
		t.Fatalf("successor after cancellation: %v", err)
	}
	if got := rig.clu.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	if err := rig.clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Submissions arriving while earlier runs execute are admitted as capacity
// frees, and Drain covers them.
func TestSubmitWhileDraining(t *testing.T) {
	rig := newRig(t, 4, FairShare{MaxConcurrent: 2}, nil)
	rig.sched.Submit(graph("a"))
	rig.sched.Submit(graph("b"))
	rig.sched.Start()
	late := rig.sched.Submit(graph("late"))
	rig.sched.Drain()
	if st := late.Status(); st.Status != "succeeded" {
		t.Fatalf("late submission status = %s, want succeeded", st.Status)
	}
	if got := rig.sched.ActiveRuns(); got != 0 {
		t.Fatalf("ActiveRuns after drain = %d", got)
	}
	if got := len(rig.sched.Runs()); got != 3 {
		t.Fatalf("Runs() = %d entries, want 3", got)
	}
}

// Snapshots carry virtual-time marks and the makespan matches start/finish.
func TestSnapshotFields(t *testing.T) {
	rig := newRig(t, 4, FIFO{}, map[string]time.Duration{"run-001": 30 * time.Second})
	r := rig.sched.Submit(graph("wf"))
	if _, _, err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st.ID != "run-001" || st.Workflow != "wf" {
		t.Fatalf("snapshot identity = %+v", st)
	}
	if st.LeasedNodes != 4 {
		t.Fatalf("LeasedNodes = %d, want 4", st.LeasedNodes)
	}
	if st.MakespanSec != 30 {
		t.Fatalf("MakespanSec = %v, want 30", st.MakespanSec)
	}
	if st.FinishedSec-st.StartedSec != st.MakespanSec {
		t.Fatalf("inconsistent marks: %+v", st)
	}
	// Terminal runs are pruned from the live index: Get no longer resolves
	// them, but SnapshotOf serves the frozen record forever.
	if _, ok := rig.sched.Get("run-001"); ok {
		t.Fatal("Get kept a terminal run live")
	}
	snap, ok := rig.sched.SnapshotOf("run-001")
	if !ok {
		t.Fatal("SnapshotOf lost the terminal run")
	}
	if snap.Status != "succeeded" || snap.MakespanSec != 30 {
		t.Fatalf("frozen snapshot = %+v", snap)
	}
	if _, ok := rig.sched.SnapshotOf("run-999"); ok {
		t.Fatal("SnapshotOf invented a run")
	}
}

// Policy quota arithmetic.
func TestPolicyQuotas(t *testing.T) {
	if q := (FIFO{}).Quota(8, 8, 0, 3); q != 8 {
		t.Fatalf("FIFO idle quota = %d, want 8", q)
	}
	if q := (FIFO{}).Quota(8, 4, 1, 3); q != 0 {
		t.Fatalf("FIFO busy quota = %d, want 0", q)
	}
	fs := FairShare{MaxConcurrent: 3}
	if q := fs.Quota(9, 9, 0, 5); q != 3 {
		t.Fatalf("FairShare quota = %d, want 9/3", q)
	}
	if q := fs.Quota(9, 3, 3, 5); q != 0 {
		t.Fatalf("FairShare at capacity = %d, want 0", q)
	}
	if q := (FairShare{MaxConcurrent: 16}).Quota(4, 4, 0, 1); q != 1 {
		t.Fatalf("FairShare small-cluster quota = %d, want 1 (floor)", q)
	}
	if got := (FairShare{}).Name(); got != "fair-share(1)" {
		t.Fatalf("zero-value FairShare name = %q", got)
	}
}

// Concurrent Submits, Status polls and Runs listings against a draining
// scheduler must be race-free (run with -race) and every run must finish.
func TestConcurrentSubmitRace(t *testing.T) {
	rig := newRig(t, 6, FairShare{MaxConcurrent: 3}, nil)
	const submitters = 4
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		runs []*Run
	)
	wg.Add(submitters)
	for w := 0; w < submitters; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				r := rig.sched.Submit(graph(fmt.Sprintf("w%d-%d", w, i)))
				mu.Lock()
				runs = append(runs, r)
				mu.Unlock()
				r.Status()
				rig.sched.Runs()
				rig.sched.QueueDepth()
			}
		}()
	}
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 200; i++ {
			rig.sched.Runs()
			rig.sched.ActiveRuns()
		}
	}()
	wg.Wait()
	rig.sched.Drain()
	<-pollDone
	mu.Lock()
	defer mu.Unlock()
	if len(runs) != submitters*5 {
		t.Fatalf("submitted %d runs", len(runs))
	}
	for _, r := range runs {
		if st := r.Status(); st.Status != "succeeded" {
			t.Fatalf("%s finished %s", st.ID, st.Status)
		}
	}
	if rig.clu.ReservedNodes() != 0 {
		t.Fatal("reservations leaked after drain")
	}
	if err := rig.clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Batch submissions produce identical virtual-time schedules on every
// repetition: the cooperative clock makes the interleaving a pure function
// of the submission order, not of goroutine scheduling.
func TestBatchDeterminism(t *testing.T) {
	durs := map[string]time.Duration{
		"run-001": 25 * time.Second,
		"run-002": 15 * time.Second,
		"run-003": 35 * time.Second,
		"run-004": 5 * time.Second,
	}
	schedule := func() string {
		rig := newRig(t, 4, FairShare{MaxConcurrent: 2}, durs)
		for i := 1; i <= 4; i++ {
			rig.sched.Submit(graph(fmt.Sprintf("wf%d", i)))
		}
		rig.sched.Drain()
		out := ""
		for _, sp := range rig.spans {
			out += fmt.Sprintf("%s[%v-%v] ", sp.runID, sp.start, sp.end)
		}
		return out
	}
	want := schedule()
	for i := 0; i < 10; i++ {
		if got := schedule(); got != want {
			t.Fatalf("iteration %d: schedule %q, want %q", i, got, want)
		}
	}
}
