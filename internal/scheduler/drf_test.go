package scheduler

import (
	"testing"
	"time"
)

// DRF admission under contention: with every slot held by one tenant, a
// newly arrived tenant (dominant share zero) preempts the over-share
// tenant's latest-submitted run; the victim resumes later and every run
// completes.
func TestDRFPreemptsOverShareTenant(t *testing.T) {
	rig := newSusRig(t, 4, DRF{MaxConcurrent: 2}, map[string]susSpec{
		"run-001": {steps: 4, stepDur: 10 * time.Second},
		"run-002": {steps: 4, stepDur: 10 * time.Second},
		"run-003": {steps: 1, stepDur: 5 * time.Second},
	}, map[string][2]float64{
		"hog-a": {40, 4}, "hog-b": {40, 4}, "newcomer": {5, 1},
	})

	a := rig.sched.SubmitWith(graph("hog-a"), SubmitOptions{Tenant: "hog"})
	b := rig.sched.SubmitWith(graph("hog-b"), SubmitOptions{Tenant: "hog"})
	var late *Run
	rig.clock.Schedule(10*time.Second, func(time.Duration) {
		late = rig.sched.SubmitWith(graph("newcomer"), SubmitOptions{Tenant: "fresh"})
	})
	rig.sched.Drain()

	for _, r := range []*Run{a, b, late} {
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", r.ID(), err)
		}
	}
	// The victim is the over-share tenant's latest submission.
	if snap := b.Status(); snap.Preemptions != 1 {
		t.Fatalf("latest hog run preempted %d times, want 1 (%+v)", snap.Preemptions, snap)
	}
	if snap := a.Status(); snap.Preemptions != 0 {
		t.Fatalf("earliest hog run preempted %d times, want 0", snap.Preemptions)
	}
	if snap := late.Status(); snap.Preemptions != 0 {
		t.Fatalf("newcomer preempted %d times, want 0", snap.Preemptions)
	}
	if err := rig.clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Tenant weights divide dominant shares, so they pick the preemption
// victim: with two single-run tenants holding the slots, the waiter's
// preemption lands on the unweighted tenant — the weighted one's share
// ranks far lower despite an identical footprint.
func TestDRFWeightsPickVictim(t *testing.T) {
	rig := newSusRig(t, 4, DRF{Weights: map[string]float64{"gold": 100}, MaxConcurrent: 2}, map[string]susSpec{
		"run-001": {steps: 3, stepDur: 10 * time.Second},
		"run-002": {steps: 3, stepDur: 10 * time.Second},
		"run-003": {steps: 1, stepDur: 5 * time.Second},
	}, map[string][2]float64{
		"gold-run": {30, 4}, "plain-run": {30, 4}, "newcomer": {5, 1},
	})

	gold := rig.sched.SubmitWith(graph("gold-run"), SubmitOptions{Tenant: "gold"})
	plain := rig.sched.SubmitWith(graph("plain-run"), SubmitOptions{Tenant: "plain"})
	var late *Run
	rig.clock.Schedule(5*time.Second, func(time.Duration) {
		late = rig.sched.SubmitWith(graph("newcomer"), SubmitOptions{Tenant: "fresh"})
	})
	rig.sched.Drain()

	for _, r := range []*Run{gold, plain, late} {
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", r.ID(), err)
		}
	}
	if snap := plain.Status(); snap.Preemptions != 1 {
		t.Fatalf("unweighted tenant preempted %d times, want 1", snap.Preemptions)
	}
	if snap := gold.Status(); snap.Preemptions != 0 {
		t.Fatalf("weighted tenant preempted %d times, want 0", snap.Preemptions)
	}
}

// Small scheduler surface exercised alongside DRF: SubmitNamed labels,
// Policy exposure, Done completion channel, CancelByID routing.
func TestSchedulerSurfaceWithDRF(t *testing.T) {
	rig := newSusRig(t, 4, DRF{MaxConcurrent: 2}, map[string]susSpec{
		"run-001": {steps: 1, stepDur: 5 * time.Second},
		"run-002": {steps: 3, stepDur: 10 * time.Second},
	}, map[string][2]float64{
		"quick": {5, 1}, "doomed": {30, 3},
	})
	if got := rig.sched.Policy().Name(); got != "drf(2)" {
		t.Fatalf("Policy().Name() = %q", got)
	}
	quick := rig.sched.SubmitNamed("labelled", graph("quick"))
	doomed := rig.sched.Submit(graph("doomed"))
	if !rig.sched.CancelByID(doomed.ID()) {
		t.Fatal("CancelByID did not find a live run")
	}
	if rig.sched.CancelByID("run-999") {
		t.Fatal("CancelByID found a nonexistent run")
	}
	rig.sched.Drain()
	<-quick.Done()
	<-doomed.Done()
	if snap := quick.Status(); snap.Workflow != "labelled" || snap.Status != "succeeded" {
		t.Fatalf("labelled run: %+v", snap)
	}
	if snap := doomed.Status(); snap.Status != "canceled" {
		t.Fatalf("canceled run: %+v", snap)
	}
}

// Defaults and naming.
func TestDRFDefaults(t *testing.T) {
	if got := (DRF{}).Name(); got != "drf(4)" {
		t.Fatalf("default Name() = %q", got)
	}
	if got := (DRF{MaxConcurrent: 7}).Name(); got != "drf(7)" {
		t.Fatalf("Name() = %q", got)
	}
	if !(DRF{}).NeedsEstimates() {
		t.Fatal("DRF must require estimates for its preemption gate")
	}
	d := DRF{Weights: map[string]float64{"a": 2, "bad": -1}}
	if w := d.weight("a"); w != 2 {
		t.Fatalf("weight(a) = %v", w)
	}
	if w := d.weight("bad"); w != 1 {
		t.Fatalf("non-positive weight not defaulted: %v", w)
	}
	if w := d.weight("absent"); w != 1 {
		t.Fatalf("absent weight = %v", w)
	}
	// SliceFit on a detached State is a safe zero.
	if got := (State{}).SliceFit(1, 1); got != 0 {
		t.Fatalf("detached SliceFit = %d", got)
	}
}
