package scheduler

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// hfsStarts drains the rig and returns the terminal snapshots of started
// runs ordered by admission time.
func hfsStarts(t *testing.T, rig *susRig) []Snapshot {
	t.Helper()
	rig.sched.Drain()
	var out []Snapshot
	for _, snap := range rig.sched.Runs() {
		if snap.Status != "succeeded" {
			t.Fatalf("run %s ended %s", snap.ID, snap.Status)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartedSec < out[j].StartedSec })
	return out
}

// uniformSpecs gives every run one 10s step, so admissions serialize cleanly
// under MaxConcurrent=1 and vruntime arithmetic stays exact.
func uniformSpecs(n int) map[string]susSpec {
	specs := make(map[string]susSpec, n)
	for i := 1; i <= n; i++ {
		specs[fmt.Sprintf("run-%03d", i)] = susSpec{steps: 1, stepDur: 10 * time.Second}
	}
	return specs
}

// Two tenants with equal demand and equal priority: although one tenant's
// runs are all queued first, hierarchical fair share alternates admissions
// tenant by tenant — each grant charges the running tenant's vruntime, so
// the idle tenant's next run always ranks first.
func TestHFSTenantRotation(t *testing.T) {
	rig := newSusRig(t, 4, HierarchicalFairShare{MaxConcurrent: 1}, uniformSpecs(8), nil)
	for i := 0; i < 4; i++ {
		rig.sched.SubmitWith(graph("wf"), SubmitOptions{Tenant: "acme", User: "ana"})
	}
	for i := 0; i < 4; i++ {
		rig.sched.SubmitWith(graph("wf"), SubmitOptions{Tenant: "beta", User: "bob"})
	}
	starts := hfsStarts(t, rig)
	var order []string
	for _, s := range starts {
		order = append(order, s.Tenant)
	}
	want := []string{"acme", "beta", "acme", "beta", "acme", "beta", "acme", "beta"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want strict tenant alternation %v", order, want)
		}
	}
}

// Within one tenant, the same rotation happens user by user.
func TestHFSUserRotation(t *testing.T) {
	rig := newSusRig(t, 4, HierarchicalFairShare{MaxConcurrent: 1}, uniformSpecs(8), nil)
	for i := 0; i < 4; i++ {
		rig.sched.SubmitWith(graph("wf"), SubmitOptions{Tenant: "acme", User: "ana"})
	}
	for i := 0; i < 4; i++ {
		rig.sched.SubmitWith(graph("wf"), SubmitOptions{Tenant: "acme", User: "bob"})
	}
	starts := hfsStarts(t, rig)
	var order []string
	for _, s := range starts {
		order = append(order, s.User)
	}
	want := []string{"ana", "bob", "ana", "bob", "ana", "bob", "ana", "bob"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want strict user alternation %v", order, want)
		}
	}
}

// Priority is a runtime multiplier: a priority-3 tenant is billed
// node-seconds at 1/2³, so its vruntime grows 8× slower and it wins ~8 of
// every 9 admission rounds against an equal-demand priority-0 tenant.
func TestHFSPriorityMultiplier(t *testing.T) {
	rig := newSusRig(t, 4, HierarchicalFairShare{MaxConcurrent: 1}, uniformSpecs(13), nil)
	for i := 0; i < 10; i++ {
		rig.sched.SubmitWith(graph("wf"), SubmitOptions{Tenant: "acme", User: "ana", Priority: 3})
	}
	for i := 0; i < 3; i++ {
		rig.sched.SubmitWith(graph("wf"), SubmitOptions{Tenant: "beta", User: "bob"})
	}
	starts := hfsStarts(t, rig)
	acme := 0
	for _, s := range starts[:9] {
		if s.Tenant == "acme" {
			acme++
		}
	}
	if acme < 7 {
		t.Fatalf("priority-3 tenant won only %d of the first 9 admissions", acme)
	}
	// Sanity: the low-priority tenant is not starved outright.
	if starts[len(starts)-1].StartedSec == 0 {
		t.Fatal("no admissions recorded")
	}
	for _, s := range rig.sched.Runs() {
		if s.Tenant == "beta" && s.Status != "succeeded" {
			t.Fatalf("low-priority run %s ended %s", s.ID, s.Status)
		}
	}
}
