package scheduler

import "fmt"

// DRF is Dominant Resource Fairness (Ghodsi et al., NSDI'11) over the
// cluster's two resource dimensions. Each tenant's dominant share is the
// larger of its cores share and its memory share — summed over the capacity
// footprints of its active leases and divided by the tenant's weight — and
// admission always goes to a waiting run of the tenant with the smallest
// dominant share. Cores-heavy and memory-heavy tenants therefore each get
// roughly the whole cluster in *their* bottleneck dimension rather than
// splitting node counts, which is the property the bench-drf gate pins.
//
// When every slot is occupied DRF can preempt: if the most-starved waiting
// tenant's dominant share is strictly below the most-over-share active
// tenant's, the over-share tenant's latest-submitted run is preempted —
// gated, like Deadline's estimate check, on the victim still being able to
// meet its own deadline after re-running behind the waiter. Preemption
// requires estimates (NeedsEstimates is true) so the gate has real numbers.
//
// Decisions read only the indexed accessors in deterministic order
// (EachActive/EachWaiting); per-tenant aggregation uses map lookups keyed by
// strings encountered in that order, never map iteration, so a fixed seed
// yields a byte-identical decision stream.
type DRF struct {
	// Weights scales each tenant's dominant share down by its weight
	// (share/weight); absent tenants get weight 1. Nil means unweighted.
	Weights map[string]float64
	// MaxConcurrent bounds simultaneously admitted runs (default 4).
	MaxConcurrent int
}

// Name implements Policy.
func (d DRF) Name() string {
	return fmt.Sprintf("drf(%d)", d.slots())
}

// NeedsEstimates marks DRF as estimate-driven: the preemption gate compares
// remaining-time estimates, mirroring Deadline.
func (d DRF) NeedsEstimates() bool { return true }

func (d DRF) slots() int {
	if d.MaxConcurrent < 1 {
		return 4
	}
	return d.MaxConcurrent
}

func (d DRF) weight(tenant string) float64 {
	if w, ok := d.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// dominantShares sums active lease footprints per tenant and returns the
// weighted dominant share map. Only tenants with active runs appear; a
// tenant with nothing running has share 0.
func (d DRF) dominantShares(st State) map[string]float64 {
	cores := make(map[string]int)
	mem := make(map[string]int)
	st.EachActive(func(r RunState) bool {
		cores[r.Tenant] += r.LeasedCores
		mem[r.Tenant] += r.LeasedMemMB
		return true
	})
	shares := make(map[string]float64, len(cores))
	for t, c := range cores {
		cs := 0.0
		if st.TotalCores > 0 {
			cs = float64(c) / float64(st.TotalCores)
		}
		ms := 0.0
		if st.TotalMemMB > 0 {
			ms = float64(mem[t]) / float64(st.TotalMemMB)
		}
		s := cs
		if ms > s {
			s = ms
		}
		shares[t] = s / d.weight(t)
	}
	return shares
}

// Decide implements Policy: admit a waiting run of the min-dominant-share
// tenant when a slot is free, otherwise preempt the most-over-share active
// tenant if the estimate gate allows. One action per round, so every grant
// or preemption re-ranks shares first.
func (d DRF) Decide(st State) []Action {
	if st.WaitingLen() == 0 {
		return nil
	}
	shares := d.dominantShares(st)

	// Pick the waiting run whose tenant has the smallest dominant share;
	// EachWaiting's deterministic order (suspended first, then queue order)
	// breaks ties, so the scan keeps the first strictly-smaller tenant.
	var cand RunState
	candShare := 0.0
	found := false
	st.EachWaiting(func(r RunState) bool {
		s := shares[r.Tenant] // 0 for tenants with nothing active
		if !found || s < candShare {
			cand, candShare, found = r, s, true
		}
		return true
	})
	if !found {
		return nil
	}

	k := d.slots()
	if st.ActiveLen() < k && st.FreeNodes > 0 {
		n := st.TotalNodes / k
		if n < 1 {
			n = 1
		}
		if n > st.FreeNodes {
			// Progress clamp (the FairShare pattern): shrink the share on an
			// otherwise idle cluster instead of holding forever.
			if st.ActiveLen() > 0 {
				return nil
			}
			n = st.FreeNodes
		}
		if cand.DemandCores > 0 {
			// Slice demand: clamp to nodes that can actually host a slice so
			// the grant cannot bounce off physical capacity.
			fit := st.SliceFit(cand.DemandCores, cand.DemandMemMB)
			if fit == 0 {
				if st.ActiveLen() > 0 {
					return nil
				}
				// Nothing active yet nothing fits: fall through and let the
				// scheduler's own safety net handle it rather than wedging.
				return nil
			}
			if n > fit {
				n = fit
			}
		}
		if cand.Status == StatusSuspended {
			return []Action{Resume{Run: cand.ID, Nodes: n}}
		}
		return []Action{Admit{Run: cand.ID, Nodes: n}}
	}

	// Slots full: consider preempting the strictly-most-over-share tenant.
	// At most one preemption may be in flight — victims drain cooperatively
	// to their next boundary, and re-deciding during that window must not
	// pile further victims onto the same waiter (the Deadline pattern).
	draining := false
	maxTenant := ""
	maxShare := -1.0
	st.EachActive(func(r RunState) bool {
		if r.Preempting {
			draining = true
			return false
		}
		if s := shares[r.Tenant]; s > maxShare {
			maxShare, maxTenant = s, r.Tenant
		}
		return true
	})
	if draining {
		return nil
	}
	if maxTenant == "" || maxShare <= candShare || maxTenant == cand.Tenant {
		return nil
	}
	var victim RunState
	haveVictim := false
	st.EachActive(func(r RunState) bool {
		if r.Tenant != maxTenant || r.Preempting || r.Preemptions >= 1 {
			return true
		}
		if !haveVictim || r.SubmittedSec > victim.SubmittedSec ||
			(r.SubmittedSec == victim.SubmittedSec && r.ID > victim.ID) {
			victim, haveVictim = r, true
		}
		return true
	})
	if !haveVictim {
		return nil
	}
	if victim.DeadlineSec > 0 {
		// Estimate gate (the Deadline pattern): only preempt if the victim
		// can still finish after waiting out the preemptor.
		if st.NowSec+remainingSec(cand)+remainingSec(victim) > victim.DeadlineSec {
			return nil
		}
	}
	return []Action{Preempt{Run: victim.ID}}
}
