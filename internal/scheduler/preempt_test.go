package scheduler

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// susRecord collects, per run, which operator steps executed and when — the
// cross-segment evidence that preemption never re-executes completed work.
type susRecord struct {
	mu    sync.Mutex
	steps map[string][]int // runID -> executed step indices, in order
	spans map[string][]span
}

func newSusRecord() *susRecord {
	return &susRecord{steps: make(map[string][]int), spans: make(map[string][]span)}
}

// susExec is a preemptible stub: it simulates steps sequential operator
// steps of stepDur each, polling the cancel and suspend probes at every step
// boundary like the real executor, and supports Resume by skipping the steps
// named in the done set.
type susExec struct {
	clock   *vtime.Clock
	ctx     ExecContext
	steps   int
	stepDur time.Duration
	rec     *susRecord
}

func susDone(n int) []planner.MaterializedIntermediate {
	out := make([]planner.MaterializedIntermediate, n)
	for i := range out {
		out[i] = planner.MaterializedIntermediate{Dataset: fmt.Sprintf("step-%d", i), Records: 1}
	}
	return out
}

func (e *susExec) run(start int) (*executor.Result, error) {
	begin := e.clock.Now()
	for i := start; i < e.steps; i++ {
		if e.ctx.Canceled() {
			return nil, executor.ErrCanceled
		}
		if e.ctx.Suspend() {
			return &executor.Result{
				Makespan:      e.clock.Now() - begin,
				Intermediates: susDone(i),
			}, executor.ErrSuspended
		}
		e.ctx.Party.WaitUntil(e.clock.Now() + e.stepDur)
		e.rec.mu.Lock()
		e.rec.steps[e.ctx.RunID] = append(e.rec.steps[e.ctx.RunID], i)
		e.rec.mu.Unlock()
	}
	end := e.clock.Now()
	e.rec.mu.Lock()
	e.rec.spans[e.ctx.RunID] = append(e.rec.spans[e.ctx.RunID], span{
		runID: e.ctx.RunID, nodes: e.ctx.Lease.Size(), start: begin, end: end,
	})
	e.rec.mu.Unlock()
	return &executor.Result{Makespan: end - begin, Intermediates: susDone(e.steps)}, nil
}

func (e *susExec) Execute(g *workflow.Graph, plan *planner.Plan) (*executor.Result, error) {
	return e.run(0)
}

func (e *susExec) Resume(g *workflow.Graph, done []planner.MaterializedIntermediate) (*executor.Result, error) {
	return e.run(len(done))
}

// susRig wires a scheduler over preemptible stubs; steps/stepDur are keyed
// by run ID (fallback 4 x 10s). estimates (optional) feeds Config.Estimate
// keyed by graph target.
type susRig struct {
	clock *vtime.Clock
	clu   *cluster.Cluster
	sched *Scheduler
	rec   *susRecord
}

type susSpec struct {
	steps   int
	stepDur time.Duration
}

func newSusRig(t *testing.T, nodes int, policy Policy, specs map[string]susSpec, estimates map[string][2]float64) *susRig {
	t.Helper()
	rig := &susRig{clock: vtime.NewClock(), rec: newSusRecord()}
	rig.clu = cluster.New(rig.clock, nodes, 8, 16384)
	cfg := Config{
		Clock:   rig.clock,
		Cluster: rig.clu,
		Policy:  policy,
		Plan: func(g *workflow.Graph) (*planner.Plan, error) {
			return &planner.Plan{Target: g.Target}, nil
		},
		NewExecutor: func(ctx ExecContext) Exec {
			spec, ok := specs[ctx.RunID]
			if !ok {
				spec = susSpec{steps: 4, stepDur: 10 * time.Second}
			}
			return &susExec{clock: rig.clock, ctx: ctx, steps: spec.steps, stepDur: spec.stepDur, rec: rig.rec}
		},
	}
	if estimates != nil {
		cfg.Estimate = func(g *workflow.Graph) (float64, float64, error) {
			est, ok := estimates[g.Target]
			if !ok {
				return 0, 0, fmt.Errorf("no estimate for %s", g.Target)
			}
			return est[0], est[1], nil
		}
	}
	var err error
	rig.sched, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

// A tight-deadline late arrival preempts the deadline-less run holding the
// whole cluster; the victim suspends at an operator boundary, the urgent run
// meets its deadline, and the victim resumes from its done set without
// re-executing a single completed step.
func TestDeadlinePreemptsAndResumes(t *testing.T) {
	rig := newSusRig(t, 4, Deadline{}, map[string]susSpec{
		"run-001": {steps: 6, stepDur: 10 * time.Second}, // 60s total
		"run-002": {steps: 2, stepDur: 10 * time.Second}, // 20s total
	}, map[string][2]float64{"long": {60, 0}, "urgent": {20, 0}})

	long := rig.sched.Submit(graph("long"))
	var urgent *Run
	rig.clock.Schedule(10*time.Second, func(time.Duration) {
		urgent = rig.sched.SubmitWith(graph("urgent"), SubmitOptions{Deadline: 40 * time.Second})
	})
	rig.sched.Drain()

	if _, _, err := long.Wait(); err != nil {
		t.Fatalf("preempted run failed: %v", err)
	}
	if _, _, err := urgent.Wait(); err != nil {
		t.Fatalf("urgent run failed: %v", err)
	}
	ust := urgent.Status()
	if ust.FinishedSec > 40 {
		t.Fatalf("urgent run finished at %.0fs, past its 40s deadline", ust.FinishedSec)
	}
	lst := long.Status()
	if lst.Preemptions != 1 {
		t.Fatalf("long run preemptions = %d, want 1", lst.Preemptions)
	}
	if lst.SuspendedSec != 20 {
		t.Fatalf("long run suspended for %.0fs, want 20", lst.SuspendedSec)
	}
	// Zero re-execution: the long run's six steps executed exactly once
	// across its two segments, in order.
	rig.rec.mu.Lock()
	steps := append([]int(nil), rig.rec.steps["run-001"]...)
	rig.rec.mu.Unlock()
	if len(steps) != 6 {
		t.Fatalf("long run executed %d steps, want 6 (got %v)", len(steps), steps)
	}
	for i, s := range steps {
		if s != i {
			t.Fatalf("long run re-executed or skipped steps: %v", steps)
		}
	}
	// Total work is conserved: 60s + 20s on a cluster always fully leased
	// to someone = 80s of virtual time.
	if now := rig.clock.Now(); now != 80*time.Second {
		t.Fatalf("final virtual time = %v, want 80s", now)
	}
	if got := rig.clu.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	if err := rig.clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Without preemption (FIFO) the same contention makes the urgent run miss
// its deadline — the scenario the Deadline policy exists for.
func TestFIFOMissesDeadlineDeadlineMeets(t *testing.T) {
	finish := func(policy Policy) float64 {
		rig := newSusRig(t, 4, policy, map[string]susSpec{
			"run-001": {steps: 6, stepDur: 10 * time.Second},
			"run-002": {steps: 2, stepDur: 10 * time.Second},
		}, map[string][2]float64{"long": {60, 0}, "urgent": {20, 0}})
		rig.sched.Submit(graph("long"))
		var urgent *Run
		rig.clock.Schedule(10*time.Second, func(time.Duration) {
			urgent = rig.sched.SubmitWith(graph("urgent"), SubmitOptions{Deadline: 40 * time.Second})
		})
		rig.sched.Drain()
		return urgent.Status().FinishedSec
	}
	if fifoFinish := finish(FIFO{}); fifoFinish <= 40 {
		t.Fatalf("FIFO met the deadline (%.0fs) — contention scenario is too weak", fifoFinish)
	}
	if edfFinish := finish(Deadline{}); edfFinish > 40 {
		t.Fatalf("Deadline policy missed the deadline (%.0fs)", edfFinish)
	}
}

// A victim whose own deadline the estimates say it would miss is not
// preempted, even for an earlier-deadline waiter.
func TestDeadlineRefusesUnsafePreemption(t *testing.T) {
	// Victim: 40s of work, deadline 50s. Suspending it for the waiter's 20s
	// would land it at ~70s > 50s, so the policy must hold the waiter.
	rig := newSusRig(t, 4, Deadline{}, map[string]susSpec{
		"run-001": {steps: 4, stepDur: 10 * time.Second},
		"run-002": {steps: 2, stepDur: 10 * time.Second},
	}, map[string][2]float64{"victim": {40, 0}, "waiter": {20, 0}})
	victim := rig.sched.SubmitWith(graph("victim"), SubmitOptions{Deadline: 50 * time.Second})
	var waiter *Run
	rig.clock.Schedule(10*time.Second, func(time.Duration) {
		waiter = rig.sched.SubmitWith(graph("waiter"), SubmitOptions{Deadline: 35 * time.Second})
	})
	rig.sched.Drain()
	if st := victim.Status(); st.Preemptions != 0 {
		t.Fatalf("victim preempted %d times; the safety check should have refused", st.Preemptions)
	}
	if st := victim.Status(); st.FinishedSec > 50 {
		t.Fatalf("victim missed its deadline anyway: %.0fs", st.FinishedSec)
	}
	if st := waiter.Status(); st.Status != "succeeded" {
		t.Fatalf("waiter = %s, want succeeded after victim finishes", st.Status)
	}
}

// Canceling a suspended run finalizes it without resuming; the rest of the
// system drains clean.
func TestCancelSuspended(t *testing.T) {
	rig := newSusRig(t, 4, Deadline{}, map[string]susSpec{
		"run-001": {steps: 6, stepDur: 10 * time.Second},
		"run-002": {steps: 2, stepDur: 10 * time.Second},
	}, map[string][2]float64{"long": {60, 0}, "urgent": {20, 0}})
	long := rig.sched.Submit(graph("long"))
	rig.clock.Schedule(10*time.Second, func(time.Duration) {
		rig.sched.SubmitWith(graph("urgent"), SubmitOptions{Deadline: 40 * time.Second})
	})
	// By 25s the long run is suspended (it yields at 10s or 20s) and the
	// urgent one is mid-flight; cancel the suspended victim.
	rig.clock.Schedule(25*time.Second, func(time.Duration) {
		if long.Status().Status == "suspended" {
			long.Cancel()
		}
	})
	rig.sched.Drain()
	if _, _, err := long.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled suspended run: err = %v", err)
	}
	if st := long.Status(); st.Status != "canceled" {
		t.Fatalf("status = %s, want canceled", st.Status)
	}
	if got := rig.sched.SuspendedRuns(); got != 0 {
		t.Fatalf("SuspendedRuns after drain = %d", got)
	}
	if got := rig.clu.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	if err := rig.clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// CostQuota holds runs that would push their tenant past its budget and
// rejects runs that can never fit, while within-budget tenants proceed.
func TestCostQuotaBudget(t *testing.T) {
	est := map[string][2]float64{
		"a1": {10, 6}, "a2": {10, 6}, "a3": {10, 6}, // tenant acme, budget 10
		"big":  {10, 25}, // can never fit acme's budget
		"free": {10, 9},  // unbudgeted tenant
	}
	rig := newSusRig(t, 4, CostQuota{Budgets: map[string]float64{"acme": 10}}, nil, est)
	submit := func(name, tenant string) *Run {
		return rig.sched.SubmitWith(graph(name), SubmitOptions{Tenant: tenant})
	}
	a1 := submit("a1", "acme")
	a2 := submit("a2", "acme")
	a3 := submit("a3", "acme")
	big := submit("big", "acme")
	other := submit("free", "other")
	rig.sched.Drain()

	if _, _, err := big.Wait(); !errors.Is(err, ErrRejected) {
		t.Fatalf("over-budget run: err = %v, want ErrRejected", err)
	}
	for _, r := range []*Run{a1, a2, a3, other} {
		if st := r.Status(); st.Status != "succeeded" {
			t.Fatalf("%s = %s, want succeeded", st.ID, st.Status)
		}
	}
	// Budget 10 vs 6-cost runs: acme's runs must serialize (no two
	// concurrently committed), while the unbudgeted tenant overlaps them.
	snaps := map[string]Snapshot{}
	for _, r := range []*Run{a1, a2, a3} {
		st := r.Status()
		snaps[st.ID] = st
	}
	for id, a := range snaps {
		for jd, b := range snaps {
			if id >= jd {
				continue
			}
			if a.StartedSec < b.FinishedSec && b.StartedSec < a.FinishedSec {
				t.Fatalf("acme runs %s and %s overlapped despite the budget", id, jd)
			}
		}
	}
	if st := other.Status(); st.StartedSec >= snaps["run-001"].FinishedSec {
		t.Fatalf("unbudgeted tenant waited for acme (started %.0fs)", st.StartedSec)
	}
	if err := rig.clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Preemption decisions are a pure function of the virtual-time schedule:
// repeated executions produce identical step timelines.
func TestPreemptionDeterminism(t *testing.T) {
	timeline := func() string {
		rig := newSusRig(t, 4, Deadline{}, map[string]susSpec{
			"run-001": {steps: 6, stepDur: 10 * time.Second},
			"run-002": {steps: 2, stepDur: 10 * time.Second},
			"run-003": {steps: 3, stepDur: 5 * time.Second},
		}, map[string][2]float64{"long": {60, 0}, "urgent": {20, 0}, "mid": {15, 0}})
		rig.sched.Submit(graph("long"))
		rig.clock.Schedule(10*time.Second, func(time.Duration) {
			rig.sched.SubmitWith(graph("urgent"), SubmitOptions{Deadline: 40 * time.Second})
		})
		rig.clock.Schedule(12*time.Second, func(time.Duration) {
			rig.sched.SubmitWith(graph("mid"), SubmitOptions{Deadline: 120 * time.Second})
		})
		rig.sched.Drain()
		out := fmt.Sprintf("end=%v;", rig.clock.Now())
		for _, st := range rig.sched.Runs() {
			out += fmt.Sprintf("%s:%s[%0.f-%.0f,p%d];", st.ID, st.Status, st.StartedSec, st.FinishedSec, st.Preemptions)
		}
		return out
	}
	want := timeline()
	for i := 0; i < 5; i++ {
		if got := timeline(); got != want {
			t.Fatalf("iteration %d: timeline %q, want %q", i, got, want)
		}
	}
}
