// Indexed incremental scheduler state.
//
// The seed scheduler rebuilt its entire policy input on every event:
// stateLocked materialized a RunState for every queued, active and suspended
// run, and the policies scanned (or sorted) those slices — O(n) bookkeeping
// per event, O(n²)+ over a submission burst. This file replaces that with
// structures maintained as deltas at the scheduling boundaries
// (submit/admit/suspend/resume/finish/cancel/reject):
//
//   - runList: the submission queue as an intrusive doubly-linked list; each
//     Run carries its own list node, so membership tests and removals are
//     O(1) instead of a linear scan per policy action.
//   - edfHeap: a min-heap over every waiting run (queued + suspended) keyed
//     earliest-deadline-first with (submitted, id) tie-breaks. The key is
//     immutable after submission, so heap positions stay valid and the top
//     of the heap is exactly the head the seed scheduler found by sorting.
//   - activeOrder / suspendedOrder: the admitted and suspended sets kept
//     sorted by submission sequence (both are small: active is bounded by
//     the node count, suspended by preemption churn).
//   - fairTree (fair.go): the hierarchical fair-share accounting consumed by
//     the HierarchicalFairShare policy.
//
// checkLocked cross-checks every structure against a naive from-scratch
// rebuild — the storm test invokes it after every event.
package scheduler

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// runNode is one element of the intrusive queue list.
type runNode struct {
	run        *Run
	prev, next *runNode
}

// runList is the submission queue: FIFO order, O(1) push/remove/membership.
// Membership is intrusive — Run.qnode points at the element — so there is no
// side map to keep in sync.
type runList struct {
	head, tail *runNode
	n          int
}

func (l *runList) push(r *Run) {
	el := &runNode{run: r}
	r.qnode = el
	if l.tail == nil {
		l.head, l.tail = el, el
	} else {
		el.prev = l.tail
		l.tail.next = el
		l.tail = el
	}
	l.n++
}

// remove unlinks the run; no-op when it is not queued.
func (l *runList) remove(r *Run) {
	el := r.qnode
	if el == nil {
		return
	}
	r.qnode = nil
	if el.prev != nil {
		el.prev.next = el.next
	} else {
		l.head = el.next
	}
	if el.next != nil {
		el.next.prev = el.prev
	} else {
		l.tail = el.prev
	}
	el.prev, el.next = nil, nil
	l.n--
}

func (l *runList) front() *Run {
	if l.head == nil {
		return nil
	}
	return l.head.run
}

// each visits queued runs in submission order until fn returns false.
func (l *runList) each(fn func(*Run) bool) {
	for el := l.head; el != nil; el = el.next {
		if !fn(el.run) {
			return
		}
	}
}

// edfKeySec is the EDF heap key: absolute deadline in seconds, +Inf when the
// run has none. It matches deadlineOf on the policy-visible RunState exactly.
func (r *Run) edfKeySec() float64 {
	if r.deadline <= 0 {
		return math.Inf(1)
	}
	return r.deadline.Seconds()
}

// edfRunLess orders waiting runs earliest-deadline-first with submission-time
// then id tie-breaks — the same total order as edfLess over RunStates, so the
// heap top is exactly the head a stable sort would produce.
func edfRunLess(a, b *Run) bool {
	da, db := a.edfKeySec(), b.edfKeySec()
	if da != db {
		return da < db
	}
	as, bs := a.submittedAt.Seconds(), b.submittedAt.Seconds()
	if as != bs {
		return as < bs
	}
	return a.id < b.id
}

// edfHeap is a position-tracked min-heap over waiting runs. Keys are
// immutable after submission, so entries never need re-heapifying in place.
type edfHeap struct {
	runs []*Run
}

func (h *edfHeap) len() int { return len(h.runs) }

func (h *edfHeap) peek() *Run {
	if len(h.runs) == 0 {
		return nil
	}
	return h.runs[0]
}

func (h *edfHeap) push(r *Run) {
	r.edfPos = len(h.runs)
	h.runs = append(h.runs, r)
	h.up(r.edfPos)
}

// remove drops the run from the heap; no-op when it is not a member.
func (h *edfHeap) remove(r *Run) {
	i := r.edfPos
	if i < 0 {
		return
	}
	last := len(h.runs) - 1
	h.swap(i, last)
	h.runs[last] = nil
	h.runs = h.runs[:last]
	r.edfPos = -1
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

func (h *edfHeap) swap(i, j int) {
	h.runs[i], h.runs[j] = h.runs[j], h.runs[i]
	h.runs[i].edfPos = i
	h.runs[j].edfPos = j
}

func (h *edfHeap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !edfRunLess(h.runs[i], h.runs[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *edfHeap) down(i int) {
	n := len(h.runs)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && edfRunLess(h.runs[right], h.runs[left]) {
			least = right
		}
		if !edfRunLess(h.runs[least], h.runs[i]) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// insertBySeq adds r to a submission-sequence-sorted slice.
func insertBySeq(runs []*Run, r *Run) []*Run {
	i := sort.Search(len(runs), func(i int) bool { return runs[i].seq > r.seq })
	runs = append(runs, nil)
	copy(runs[i+1:], runs[i:])
	runs[i] = r
	return runs
}

// removeRun drops r from a slice (order preserved).
func removeRun(runs []*Run, r *Run) []*Run {
	for i, x := range runs {
		if x == r {
			copy(runs[i:], runs[i+1:])
			return runs[:len(runs)-1]
		}
	}
	return runs
}

// stateIndex is the incrementally maintained scheduler state. Every method
// is called with the scheduler mutex held; the structures are updated as
// deltas at run lifecycle boundaries and never rebuilt on the hot path.
type stateIndex struct {
	queue          runList
	edf            edfHeap
	activeOrder    []*Run // admitted runs, submission order (≤ cluster nodes)
	suspendedOrder []*Run // preempted runs, submission order
	fair           fairTree
}

func newStateIndex() stateIndex {
	return stateIndex{fair: newFairTree()}
}

// enqueue registers a freshly submitted run.
func (x *stateIndex) enqueue(r *Run, now time.Duration) {
	x.queue.push(r)
	x.edf.push(r)
	x.fair.enqueue(r, now)
}

// dequeueForGrant pulls a queued run out of the waiting structures ahead of
// an admission; the fair tree is charged by granted.
func (x *stateIndex) dequeueForGrant(r *Run) {
	x.queue.remove(r)
	x.edf.remove(r)
}

// dequeueTerminal removes a queued run that will never execute (cancel,
// reject).
func (x *stateIndex) dequeueTerminal(r *Run, now time.Duration) {
	x.queue.remove(r)
	x.edf.remove(r)
	x.fair.remove(r, now)
}

// unsuspendForGrant pulls a suspended run out of the waiting structures ahead
// of a resume grant.
func (x *stateIndex) unsuspendForGrant(r *Run) {
	x.suspendedOrder = removeRun(x.suspendedOrder, r)
	x.edf.remove(r)
}

// granted records an admission or resume: the run joins the active set and
// starts accruing virtual runtime.
func (x *stateIndex) granted(r *Run, nodes int, now time.Duration) {
	x.activeOrder = insertBySeq(x.activeOrder, r)
	x.fair.grant(r, nodes, now)
}

// suspendLanded records a preemption landing: the run leaves the active set
// and waits (suspended) with its virtual runtime preserved.
func (x *stateIndex) suspendLanded(r *Run, now time.Duration) {
	x.activeOrder = removeRun(x.activeOrder, r)
	x.suspendedOrder = insertBySeq(x.suspendedOrder, r)
	x.edf.push(r)
	x.fair.release(r, now)
	x.fair.enqueue(r, now)
}

// wokeSuspended removes a suspended run woken for cancellation.
func (x *stateIndex) wokeSuspended(r *Run, now time.Duration) {
	x.suspendedOrder = removeRun(x.suspendedOrder, r)
	x.edf.remove(r)
	x.fair.remove(r, now)
}

// finishedActive records a terminal transition of an admitted run.
func (x *stateIndex) finishedActive(r *Run, now time.Duration) {
	x.activeOrder = removeRun(x.activeOrder, r)
	x.fair.release(r, now)
	x.fair.remove(r, now)
}

// resized records a lease size change of an active run.
func (x *stateIndex) resized(r *Run, nodes int, now time.Duration) {
	x.fair.resize(r, nodes, now)
}

// --- naive rebuild oracle -------------------------------------------------

// naiveStateLocked rebuilds the policy input from scratch out of the run
// records — the seed scheduler's O(n)-per-event path — so the storm test can
// compare the incrementally maintained index against an independent source
// of truth. Classification matches the policy-visible contract (scheduler
// membership, not bare run status): a canceled suspended run is pulled from
// the schedulable sets synchronously under s.mu, while its status flips to
// terminal only when its parked goroutine finalizes in real time — status
// alone would transiently disagree with what policies may act on. s.mu held.
func (s *Scheduler) naiveStateLocked(now time.Duration) (queued, active, suspended []RunState) {
	for _, rec := range s.records {
		r := rec.run
		if r == nil {
			continue
		}
		rs := s.runStateLocked(r, now)
		switch {
		case rs.Status == StatusQueued:
			queued = append(queued, rs)
		case s.active[r.id] == r:
			active = append(active, rs)
		case s.suspended[r.id] == r:
			suspended = append(suspended, rs)
		}
	}
	return queued, active, suspended
}

// CheckIndex verifies every incrementally maintained structure against a
// naive from-scratch rebuild: queue/active/suspended membership and order,
// EDF heap size and head, fair-tree registration, and the cached node
// counters (via cluster.CheckInvariants). It must be called at a quiescent
// point of the virtual-time schedule (e.g. from a clock callback): a run
// between its terminal status flip and its index removal would otherwise
// read as a transient mismatch.
func (s *Scheduler) CheckIndex() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	nq, na, ns := s.naiveStateLocked(now)

	ids := func(rs []RunState) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.ID
		}
		return out
	}
	liveIDs := func(runs []*Run) []string {
		out := make([]string, 0, len(runs))
		for _, r := range runs {
			out = append(out, r.id)
		}
		return out
	}

	var qids []string
	s.idx.queue.each(func(r *Run) bool { qids = append(qids, r.id); return true })
	if got, want := fmt.Sprint(qids), fmt.Sprint(ids(nq)); got != want {
		return fmt.Errorf("queue index %v != naive %v", got, want)
	}
	if s.idx.queue.n != len(nq) {
		return fmt.Errorf("queue count %d != naive %d", s.idx.queue.n, len(nq))
	}
	if got, want := fmt.Sprint(liveIDs(s.idx.activeOrder)), fmt.Sprint(ids(na)); got != want {
		return fmt.Errorf("active index %v != naive %v", got, want)
	}
	if got, want := fmt.Sprint(liveIDs(s.idx.suspendedOrder)), fmt.Sprint(ids(ns)); got != want {
		return fmt.Errorf("suspended index %v != naive %v", got, want)
	}
	if len(s.active) != len(na) || len(s.suspended) != len(ns) {
		return fmt.Errorf("map sizes active=%d suspended=%d != naive %d/%d",
			len(s.active), len(s.suspended), len(na), len(ns))
	}

	// EDF heap: exactly the waiting runs, and its top is the stable-sort head.
	waiting := append(append([]RunState(nil), nq...), ns...)
	if s.idx.edf.len() != len(waiting) {
		return fmt.Errorf("EDF heap has %d entries, want %d waiting", s.idx.edf.len(), len(waiting))
	}
	if len(waiting) > 0 {
		head := waiting[0]
		for _, w := range waiting[1:] {
			if edfLess(w, head) {
				head = w
			}
		}
		if top := s.idx.edf.peek(); top == nil || top.id != head.ID {
			got := "<nil>"
			if top != nil {
				got = top.id
			}
			return fmt.Errorf("EDF head %s != naive %s", got, head.ID)
		}
	}
	for i, r := range s.idx.edf.runs {
		if r.edfPos != i {
			return fmt.Errorf("EDF position drift: %s at %d claims %d", r.id, i, r.edfPos)
		}
		if left := 2*i + 1; left < s.idx.edf.len() && edfRunLess(s.idx.edf.runs[left], r) {
			return fmt.Errorf("EDF heap order violated at %d", i)
		}
		if right := 2*i + 2; right < s.idx.edf.len() && edfRunLess(s.idx.edf.runs[right], r) {
			return fmt.Errorf("EDF heap order violated at %d", i)
		}
	}

	if err := s.idx.fair.check(now); err != nil {
		return err
	}
	want := s.idx.queue.n + len(s.idx.suspendedOrder)
	if got := s.idx.fair.waitingRuns(); got != want {
		return fmt.Errorf("fair tree tracks %d waiting runs, want %d", got, want)
	}
	return s.cluster.CheckInvariants()
}
