// Hierarchical fair-share accounting (CFS-style virtual runtime).
//
// The fairTree tracks how much weighted cluster time every tenant → user →
// run group has consumed. A running run with n nodes advances virtual
// runtime at rate n/(groupWeight·runWeight) at each level of its chain;
// priority acts as a runtime multiplier — a priority-p run is charged at
// 1/2^p of the nominal rate, so high-priority work keeps its groups "poor"
// and scheduled sooner. The HierarchicalFairShare policy admits the waiting
// run under the (vruntime, name)-minimal tenant, then user, then the
// (vruntime, submission)-minimal run — classic CFS leftmost-leaf selection
// over a three-level hierarchy.
//
// Selection must be O(log n), not a scan, so groups competing for admission
// live in one of two structures per level:
//
//   - a wait heap for groups with waiting work and no running work: their
//     rate is zero, the heap key (vruntime, name) is frozen, and heap
//     positions stay valid without re-heapification;
//   - a hot list for groups with waiting AND running work: their vruntime
//     moves, but the list is bounded by the number of running runs (≤ cluster
//     nodes), so settling and scanning it per pick is O(nodes), independent
//     of queue depth.
//
// Settling is lazy and exact: vruntime integrates rate over the time since
// the last settle, and rates change only at scheduling boundaries, so the
// result is independent of when (or how often) a group is settled — picks
// stay deterministic no matter how many decision rounds observe them.
//
// New groups enter at the level's admission floor — a monotone low-water
// mark advanced every time a group is granted work (the analogue of CFS
// min_vruntime placement) — so a freshly arrived tenant competes fairly
// instead of starving incumbents with a zero vruntime.
package scheduler

import (
	"fmt"
	"math"
	"time"
)

// priorityWeight maps a run priority to its charge divisor: weight 2^p,
// clamped to ±8 doublings.
func priorityWeight(p int) float64 {
	if p > 8 {
		p = 8
	}
	if p < -8 {
		p = -8
	}
	return math.Pow(2, float64(p))
}

// fairGroup is the accounting shared by tenant and user nodes.
type fairGroup struct {
	name     string
	weight   float64
	vruntime float64
	// rate is the current vruntime slope: Σ nodes/(weight·runWeight) over
	// running descendant runs. Zero whenever runningRuns is zero (enforced
	// exactly, so wait-heap keys are truly static).
	rate       float64
	lastSettle time.Duration

	waitingRuns int // waiting runs in this subtree
	runningRuns int // running runs in this subtree
	waitPos     int // position in the parent's wait heap (-1 = absent)
	hotIdx      int // position in the parent's hot list (-1 = absent)
}

// settle integrates vruntime up to now. Exact: splitting an interval across
// several settles yields the same value as one settle, because the rate only
// changes at scheduling boundaries (which settle first).
func (g *fairGroup) settle(now time.Duration) {
	if g.rate != 0 && now > g.lastSettle {
		g.vruntime += g.rate * (now - g.lastSettle).Seconds()
	}
	g.lastSettle = now
}

// groupLess orders groups by (vruntime, name) — a total order, names are
// unique within a parent.
func groupLess(a, b *fairGroup) bool {
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.name < b.name
}

// fairEntry lets one heap implementation serve tenants and users.
type fairEntry interface{ grp() *fairGroup }

// groupHeap is a position-tracked min-heap of idle-but-waiting groups. Keys
// are static while a group is a member (rate zero), so positions never go
// stale.
type groupHeap[T fairEntry] struct {
	items []T
}

func (h *groupHeap[T]) peek() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	return h.items[0], true
}

func (h *groupHeap[T]) push(e T) {
	e.grp().waitPos = len(h.items)
	h.items = append(h.items, e)
	h.up(e.grp().waitPos)
}

func (h *groupHeap[T]) remove(e T) {
	i := e.grp().waitPos
	if i < 0 {
		return
	}
	last := len(h.items) - 1
	h.swap(i, last)
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	e.grp().waitPos = -1
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

func (h *groupHeap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].grp().waitPos = i
	h.items[j].grp().waitPos = j
}

func (h *groupHeap[T]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !groupLess(h.items[i].grp(), h.items[parent].grp()) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *groupHeap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && groupLess(h.items[right].grp(), h.items[left].grp()) {
			least = right
		}
		if !groupLess(h.items[least].grp(), h.items[i].grp()) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// runFairLess orders waiting runs by (vruntime, submission sequence).
func runFairLess(a, b *Run) bool {
	if a.fairV != b.fairV {
		return a.fairV < b.fairV
	}
	return a.seq < b.seq
}

// runHeap is the per-user min-heap of waiting runs. Waiting runs accrue
// nothing, so keys are static.
type runHeap struct {
	runs []*Run
}

func (h *runHeap) peek() *Run {
	if len(h.runs) == 0 {
		return nil
	}
	return h.runs[0]
}

func (h *runHeap) push(r *Run) {
	r.fairPos = len(h.runs)
	h.runs = append(h.runs, r)
	h.up(r.fairPos)
}

func (h *runHeap) remove(r *Run) {
	i := r.fairPos
	if i < 0 {
		return
	}
	last := len(h.runs) - 1
	h.swap(i, last)
	h.runs[last] = nil
	h.runs = h.runs[:last]
	r.fairPos = -1
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

func (h *runHeap) swap(i, j int) {
	h.runs[i], h.runs[j] = h.runs[j], h.runs[i]
	h.runs[i].fairPos = i
	h.runs[j].fairPos = j
}

func (h *runHeap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !runFairLess(h.runs[i], h.runs[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *runHeap) down(i int) {
	n := len(h.runs)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && runFairLess(h.runs[right], h.runs[left]) {
			least = right
		}
		if !runFairLess(h.runs[least], h.runs[i]) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// fairUser is one user group under a tenant; its children are runs.
type fairUser struct {
	fairGroup
	tenant   *fairTenant
	waitRuns runHeap
	floor    float64 // admission floor for new runs under this user
}

func (u *fairUser) grp() *fairGroup { return &u.fairGroup }

// fairTenant is one tenant group; its children are users.
type fairTenant struct {
	fairGroup
	users     map[string]*fairUser
	waitUsers groupHeap[*fairUser]
	hotUsers  []*fairUser
	floor     float64 // admission floor for new users under this tenant
}

func (t *fairTenant) grp() *fairGroup { return &t.fairGroup }

// fairTree is the root of the hierarchy.
type fairTree struct {
	tenants     map[string]*fairTenant
	waitTenants groupHeap[*fairTenant]
	hotTenants  []*fairTenant
	floor       float64 // admission floor for new tenants
}

func newFairTree() fairTree {
	return fairTree{tenants: make(map[string]*fairTenant)}
}

// waitingRuns reports the total number of waiting runs tracked by the tree.
func (t *fairTree) waitingRuns() int {
	total := 0
	for _, tn := range t.tenants {
		total += tn.waitingRuns
	}
	return total
}

func (t *fairTree) ensureTenant(name string, now time.Duration) *fairTenant {
	tn, ok := t.tenants[name]
	if !ok {
		tn = &fairTenant{
			fairGroup: fairGroup{name: name, weight: 1, vruntime: t.floor, lastSettle: now, waitPos: -1, hotIdx: -1},
			users:     make(map[string]*fairUser),
			floor:     t.floor,
		}
		t.tenants[name] = tn
	}
	return tn
}

func (tn *fairTenant) ensureUser(name string, now time.Duration) *fairUser {
	u, ok := tn.users[name]
	if !ok {
		u = &fairUser{
			fairGroup: fairGroup{name: name, weight: 1, vruntime: tn.floor, lastSettle: now, waitPos: -1, hotIdx: -1},
			tenant:    tn,
			floor:     tn.floor,
		}
		tn.users[name] = u
	}
	return u
}

// placeUser reconciles a user's membership in its tenant's wait heap / hot
// list after its waiting/running counts changed.
func (tn *fairTenant) placeUser(u *fairUser) {
	wantWait := u.waitingRuns > 0 && u.runningRuns == 0
	wantHot := u.waitingRuns > 0 && u.runningRuns > 0
	if u.waitPos >= 0 && !wantWait {
		tn.waitUsers.remove(u)
	}
	if u.hotIdx >= 0 && !wantHot {
		last := len(tn.hotUsers) - 1
		tn.hotUsers[u.hotIdx] = tn.hotUsers[last]
		tn.hotUsers[u.hotIdx].hotIdx = u.hotIdx
		tn.hotUsers[last] = nil
		tn.hotUsers = tn.hotUsers[:last]
		u.hotIdx = -1
	}
	if wantWait && u.waitPos < 0 {
		tn.waitUsers.push(u)
	}
	if wantHot && u.hotIdx < 0 {
		u.hotIdx = len(tn.hotUsers)
		tn.hotUsers = append(tn.hotUsers, u)
	}
}

// placeTenant reconciles a tenant's membership in the tree's wait heap / hot
// list.
func (t *fairTree) placeTenant(tn *fairTenant) {
	wantWait := tn.waitingRuns > 0 && tn.runningRuns == 0
	wantHot := tn.waitingRuns > 0 && tn.runningRuns > 0
	if tn.waitPos >= 0 && !wantWait {
		t.waitTenants.remove(tn)
	}
	if tn.hotIdx >= 0 && !wantHot {
		last := len(t.hotTenants) - 1
		t.hotTenants[tn.hotIdx] = t.hotTenants[last]
		t.hotTenants[tn.hotIdx].hotIdx = tn.hotIdx
		t.hotTenants[last] = nil
		t.hotTenants = t.hotTenants[:last]
		tn.hotIdx = -1
	}
	if wantWait && tn.waitPos < 0 {
		t.waitTenants.push(tn)
	}
	if wantHot && tn.hotIdx < 0 {
		tn.hotIdx = len(t.hotTenants)
		t.hotTenants = append(t.hotTenants, tn)
	}
}

// prune drops a fully idle user (and then tenant) so the tree does not leak
// groups under tenant churn. The pruned group's history is forgotten — like
// a CFS sleeper, it re-enters at the admission floor, never below it.
func (t *fairTree) prune(u *fairUser) {
	tn := u.tenant
	if u.waitingRuns == 0 && u.runningRuns == 0 {
		delete(tn.users, u.name)
	}
	if tn.waitingRuns == 0 && tn.runningRuns == 0 {
		delete(t.tenants, tn.name)
	}
}

// enqueue registers a run as waiting (fresh submission or landed
// suspension). The run keeps any vruntime it already accrued, clamped up to
// the user's admission floor.
func (t *fairTree) enqueue(r *Run, now time.Duration) {
	tn := t.ensureTenant(r.tenant, now)
	u := tn.ensureUser(r.user, now)
	if r.fairV < u.floor {
		r.fairV = u.floor
	}
	r.fairLast = now
	r.fairOwner = u
	u.waitRuns.push(r)
	u.waitingRuns++
	tn.waitingRuns++
	tn.placeUser(u)
	t.placeTenant(tn)
}

// remove unregisters a run that stops waiting without running (cancel,
// reject, terminal cleanup). No-op when the run is not waiting.
func (t *fairTree) remove(r *Run, now time.Duration) {
	u := r.fairOwner
	if u == nil {
		return
	}
	if r.fairPos >= 0 {
		tn := u.tenant
		u.waitRuns.remove(r)
		u.waitingRuns--
		tn.waitingRuns--
		tn.placeUser(u)
		t.placeTenant(tn)
	}
	if r.fairNodes == 0 {
		r.fairOwner = nil
		t.prune(u)
	}
}

// grant charges a waiting run's chain for nodes leased at now, and advances
// the admission floors (the monotone min_vruntime analogue).
func (t *fairTree) grant(r *Run, nodes int, now time.Duration) {
	u := r.fairOwner
	if u == nil { // defensive: grants always come from the waiting set
		t.enqueue(r, now)
		u = r.fairOwner
	}
	tn := u.tenant
	if r.fairPos >= 0 {
		u.waitRuns.remove(r)
		u.waitingRuns--
		tn.waitingRuns--
	}
	delta := float64(nodes) / r.fairWeight
	r.fairLast = now
	r.fairRate = delta
	r.fairNodes = nodes
	u.settle(now)
	u.rate += delta / u.weight
	u.runningRuns++
	tn.settle(now)
	tn.rate += delta / tn.weight
	tn.runningRuns++
	tn.placeUser(u)
	t.placeTenant(tn)
	if tn.vruntime > t.floor {
		t.floor = tn.vruntime
	}
	if u.vruntime > tn.floor {
		tn.floor = u.vruntime
	}
	if r.fairV > u.floor {
		u.floor = r.fairV
	}
}

// release stops charging a running run (suspension landing or finish).
func (t *fairTree) release(r *Run, now time.Duration) {
	u := r.fairOwner
	if u == nil || r.fairNodes == 0 {
		return
	}
	tn := u.tenant
	if r.fairRate != 0 && now > r.fairLast {
		r.fairV += r.fairRate * (now - r.fairLast).Seconds()
	}
	delta := float64(r.fairNodes) / r.fairWeight
	r.fairLast = now
	r.fairRate = 0
	r.fairNodes = 0
	u.settle(now)
	u.rate -= delta / u.weight
	u.runningRuns--
	if u.runningRuns == 0 {
		u.rate = 0 // exact, so wait-heap keys freeze cleanly
	}
	tn.settle(now)
	tn.rate -= delta / tn.weight
	tn.runningRuns--
	if tn.runningRuns == 0 {
		tn.rate = 0
	}
	tn.placeUser(u)
	t.placeTenant(tn)
}

// resize adjusts the charge rate of a running run after a lease grow/shrink.
func (t *fairTree) resize(r *Run, nodes int, now time.Duration) {
	u := r.fairOwner
	if u == nil || r.fairNodes == 0 || nodes == r.fairNodes {
		return
	}
	tn := u.tenant
	if r.fairRate != 0 && now > r.fairLast {
		r.fairV += r.fairRate * (now - r.fairLast).Seconds()
	}
	delta := float64(nodes-r.fairNodes) / r.fairWeight
	r.fairLast = now
	r.fairRate += delta
	r.fairNodes = nodes
	u.settle(now)
	u.rate += delta / u.weight
	tn.settle(now)
	tn.rate += delta / tn.weight
}

// pick returns the waiting run CFS would admit next: minimal tenant, then
// user, then run. Hot groups (waiting work while also running) are settled
// to now first — the list is bounded by running runs, so a pick costs
// O(nodes + log tenants), independent of queue depth.
func (t *fairTree) pick(now time.Duration) *Run {
	var bt *fairTenant
	if top, ok := t.waitTenants.peek(); ok {
		bt = top
	}
	for _, tn := range t.hotTenants {
		tn.settle(now)
		if bt == nil || groupLess(&tn.fairGroup, &bt.fairGroup) {
			bt = tn
		}
	}
	if bt == nil {
		return nil
	}
	var bu *fairUser
	if top, ok := bt.waitUsers.peek(); ok {
		bu = top
	}
	for _, u := range bt.hotUsers {
		u.settle(now)
		if bu == nil || groupLess(&u.fairGroup, &bu.fairGroup) {
			bu = u
		}
	}
	if bu == nil {
		return nil
	}
	return bu.waitRuns.peek()
}

// pickNaive recomputes pick by scanning every group — the from-scratch
// oracle CheckIndex compares the heap-driven pick against.
func (t *fairTree) pickNaive(now time.Duration) *Run {
	var bt *fairTenant
	for _, tn := range t.tenants {
		if tn.waitingRuns == 0 {
			continue
		}
		tn.settle(now)
		if bt == nil || groupLess(&tn.fairGroup, &bt.fairGroup) {
			bt = tn
		}
	}
	if bt == nil {
		return nil
	}
	var bu *fairUser
	for _, u := range bt.users {
		if u.waitingRuns == 0 {
			continue
		}
		u.settle(now)
		if bu == nil || groupLess(&u.fairGroup, &bu.fairGroup) {
			bu = u
		}
	}
	if bu == nil {
		return nil
	}
	var br *Run
	for _, r := range bu.waitRuns.runs {
		if br == nil || runFairLess(r, br) {
			br = r
		}
	}
	return br
}

// check validates counts, membership flags, heap invariants and the
// heap-vs-scan pick agreement.
func (t *fairTree) check(now time.Duration) error {
	totalWaiting := 0
	for name, tn := range t.tenants {
		w, run := 0, 0
		for uname, u := range tn.users {
			uw := len(u.waitRuns.runs)
			if uw != u.waitingRuns {
				return fmt.Errorf("fair: user %s/%s waiting %d != heap %d", name, uname, u.waitingRuns, uw)
			}
			for i, r := range u.waitRuns.runs {
				if r.fairPos != i {
					return fmt.Errorf("fair: run %s heap position drift", r.id)
				}
				if left := 2*i + 1; left < uw && runFairLess(u.waitRuns.runs[left], r) {
					return fmt.Errorf("fair: run heap order violated under %s/%s", name, uname)
				}
			}
			wantWait := u.waitingRuns > 0 && u.runningRuns == 0
			if (u.waitPos >= 0) != wantWait {
				return fmt.Errorf("fair: user %s/%s wait-heap membership drift", name, uname)
			}
			wantHot := u.waitingRuns > 0 && u.runningRuns > 0
			if (u.hotIdx >= 0) != wantHot {
				return fmt.Errorf("fair: user %s/%s hot-list membership drift", name, uname)
			}
			if u.runningRuns == 0 && u.rate != 0 {
				return fmt.Errorf("fair: idle user %s/%s has rate %v", name, uname, u.rate)
			}
			w += u.waitingRuns
			run += u.runningRuns
		}
		if w != tn.waitingRuns || run != tn.runningRuns {
			return fmt.Errorf("fair: tenant %s counts %d/%d != sums %d/%d", name, tn.waitingRuns, tn.runningRuns, w, run)
		}
		wantWait := tn.waitingRuns > 0 && tn.runningRuns == 0
		if (tn.waitPos >= 0) != wantWait {
			return fmt.Errorf("fair: tenant %s wait-heap membership drift", name)
		}
		wantHot := tn.waitingRuns > 0 && tn.runningRuns > 0
		if (tn.hotIdx >= 0) != wantHot {
			return fmt.Errorf("fair: tenant %s hot-list membership drift", name)
		}
		if tn.runningRuns == 0 && tn.rate != 0 {
			return fmt.Errorf("fair: idle tenant %s has rate %v", name, tn.rate)
		}
		totalWaiting += tn.waitingRuns
	}
	if totalWaiting > 0 {
		fast, slow := t.pick(now), t.pickNaive(now)
		if fast != slow {
			fid, sid := "<nil>", "<nil>"
			if fast != nil {
				fid = fast.id
			}
			if slow != nil {
				sid = slow.id
			}
			return fmt.Errorf("fair: heap pick %s != scan pick %s", fid, sid)
		}
	}
	return nil
}
