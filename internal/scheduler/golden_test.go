package scheduler

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace fixtures")

// goldenScenario drives one fixed contention scenario under the given policy
// and returns the scheduler's full event stream as JSONL. The scenario
// exercises every action kind at least under one policy: admissions, EDF
// preemption + resume (Deadline), lease growth (Deadline), budget holds and
// an outright rejection (CostQuota), and a cancellation while queued.
func goldenScenario(t *testing.T, policy Policy) []byte {
	t.Helper()
	clock := vtime.NewClock()
	clu := cluster.New(clock, 4, 8, 16384)
	rec := trace.NewRecorder(1 << 14)
	clu.SetTracer(rec)
	specs := map[string]susSpec{
		"run-001": {steps: 6, stepDur: 10 * time.Second}, // long
		"run-002": {steps: 2, stepDur: 10 * time.Second}, // urgent
		"run-003": {steps: 3, stepDur: 5 * time.Second},  // mid
		"run-004": {steps: 2, stepDur: 5 * time.Second},  // whale
		"run-005": {steps: 1, stepDur: 5 * time.Second},  // late (canceled)
		"run-006": {steps: 1, stepDur: 4 * time.Second},  // tail
	}
	estimates := map[string][2]float64{
		"long":   {60, 8},
		"urgent": {20, 4},
		"mid":    {15, 3},
		"whale":  {10, 25},
		"late":   {5, 1},
		"tail":   {4, 1},
	}
	rig := &susRig{clock: clock, clu: clu, rec: newSusRecord()}
	sched, err := New(Config{
		Clock:   clock,
		Cluster: clu,
		Policy:  policy,
		Tracer:  rec,
		Plan: func(g *workflow.Graph) (*planner.Plan, error) {
			return &planner.Plan{Target: g.Target}, nil
		},
		NewExecutor: func(ctx ExecContext) Exec {
			spec, ok := specs[ctx.RunID]
			if !ok {
				spec = susSpec{steps: 4, stepDur: 10 * time.Second}
			}
			return &susExec{clock: clock, ctx: ctx, steps: spec.steps, stepDur: spec.stepDur, rec: rig.rec}
		},
		Estimate: func(g *workflow.Graph) (float64, float64, error) {
			est, ok := estimates[g.Target]
			if !ok {
				return 0, 0, fmt.Errorf("no estimate for %s", g.Target)
			}
			return est[0], est[1], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.sched = sched

	sched.SubmitWith(graph("long"), SubmitOptions{Tenant: "acme"})
	clock.Schedule(10*time.Second, func(time.Duration) {
		sched.SubmitWith(graph("urgent"), SubmitOptions{Tenant: "acme", Deadline: 40 * time.Second})
	})
	clock.Schedule(12*time.Second, func(time.Duration) {
		sched.SubmitWith(graph("mid"), SubmitOptions{Tenant: "beta", Deadline: 120 * time.Second})
	})
	var whale, late *Run
	clock.Schedule(13*time.Second, func(time.Duration) {
		whale = sched.SubmitWith(graph("whale"), SubmitOptions{Tenant: "acme"})
	})
	clock.Schedule(30*time.Second, func(time.Duration) {
		late = sched.SubmitWith(graph("late"), SubmitOptions{Tenant: "beta"})
	})
	clock.Schedule(31*time.Second, func(time.Duration) { late.Cancel() })
	// A node crash and repair mid-batch: free/reserved accounting must track
	// health transitions, and a sole active run under Deadline grows its
	// lease into the repaired node (lease.grow).
	if err := clu.FailNode("node3", 26*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Schedule(46*time.Second, func(time.Duration) {
		if err := clu.RestoreNode("node3"); err != nil {
			t.Fatal(err)
		}
	})
	clock.Schedule(47*time.Second, func(time.Duration) {
		sched.SubmitWith(graph("tail"), SubmitOptions{Tenant: "beta"})
	})
	sched.Drain()

	// Every run must be terminal; whale may be rejected (CostQuota), late is
	// canceled, the rest succeed.
	for _, snap := range sched.Runs() {
		switch snap.Status {
		case "succeeded":
		case "failed":
			if whale == nil || snap.ID != whale.ID() {
				t.Fatalf("unexpected failure: %+v", snap)
			}
		case "canceled":
			if late == nil || snap.ID != late.ID() {
				t.Fatalf("unexpected cancellation: %+v", snap)
			}
		default:
			t.Fatalf("run %s not terminal: %s", snap.ID, snap.Status)
		}
	}
	if err := clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenDRFScenario drives a two-tenant contention mix — tenant "compute"
// submits cores-heavy slice demands, tenant "etl" memory-heavy ones — under
// the given policy and returns the full event stream as JSONL. Under DRF the
// two tenants interleave (each dominates a different dimension, so both fit);
// the fixture pins the admission order, the slice-lease grant fields and the
// per-dimension grow/shrink byte format.
func goldenDRFScenario(t *testing.T, policy Policy) []byte {
	t.Helper()
	clock := vtime.NewClock()
	clu := cluster.New(clock, 4, 8, 16384)
	rec := trace.NewRecorder(1 << 14)
	clu.SetTracer(rec)
	specs := map[string]susSpec{
		"run-001": {steps: 4, stepDur: 10 * time.Second},
		"run-002": {steps: 4, stepDur: 10 * time.Second},
		"run-003": {steps: 3, stepDur: 8 * time.Second},
		"run-004": {steps: 3, stepDur: 8 * time.Second},
		"run-005": {steps: 2, stepDur: 5 * time.Second},
		"run-006": {steps: 2, stepDur: 5 * time.Second},
	}
	estimates := map[string][2]float64{
		"c1": {40, 8}, "c2": {40, 8}, "c3": {24, 5},
		"m1": {24, 5}, "m2": {10, 2}, "m3": {10, 2},
	}
	rig := &susRig{clock: clock, clu: clu, rec: newSusRecord()}
	sched, err := New(Config{
		Clock:   clock,
		Cluster: clu,
		Policy:  policy,
		Tracer:  rec,
		Plan: func(g *workflow.Graph) (*planner.Plan, error) {
			return &planner.Plan{Target: g.Target}, nil
		},
		NewExecutor: func(ctx ExecContext) Exec {
			spec, ok := specs[ctx.RunID]
			if !ok {
				spec = susSpec{steps: 3, stepDur: 10 * time.Second}
			}
			return &susExec{clock: clock, ctx: ctx, steps: spec.steps, stepDur: spec.stepDur, rec: rig.rec}
		},
		Estimate: func(g *workflow.Graph) (float64, float64, error) {
			est, ok := estimates[g.Target]
			if !ok {
				return 0, 0, fmt.Errorf("no estimate for %s", g.Target)
			}
			return est[0], est[1], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.sched = sched

	// Cores-heavy slices: 6 of 8 cores, 1/16 of memory. Memory-heavy
	// slices: 1 core, 12288 of 16384 MB. Neither tenant can co-locate two
	// of its own slices on a node, but one of each fits together.
	coresDemand := SubmitOptions{Tenant: "compute", DemandCores: 6, DemandMemMB: 1024}
	memDemand := SubmitOptions{Tenant: "etl", DemandCores: 1, DemandMemMB: 12288}

	c1, m1 := coresDemand, memDemand
	c1.Name, m1.Name = "c1", "m1"
	sched.SubmitWith(graph("c1"), c1)
	sched.SubmitWith(graph("m1"), m1)
	clock.Schedule(5*time.Second, func(time.Duration) {
		c2 := coresDemand
		c2.Name = "c2"
		sched.SubmitWith(graph("c2"), c2)
	})
	clock.Schedule(6*time.Second, func(time.Duration) {
		m2 := memDemand
		m2.Name = "m2"
		sched.SubmitWith(graph("m2"), m2)
	})
	clock.Schedule(20*time.Second, func(time.Duration) {
		c3 := coresDemand
		c3.Name = "c3"
		sched.SubmitWith(graph("c3"), c3)
		m3 := memDemand
		m3.Name = "m3"
		sched.SubmitWith(graph("m3"), m3)
	})
	sched.Drain()

	for _, snap := range sched.Runs() {
		if snap.Status != "succeeded" {
			t.Fatalf("run %s not succeeded: %s", snap.ID, snap.Status)
		}
	}
	if err := clu.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPolicyTraceGolden pins the scheduler's event stream for all four
// shipped policies to checked-in fixtures: the indexed-state scheduler must
// reproduce the rebuild-everything scheduler's traces byte for byte. Run with
// -update to regenerate after an intentional semantic change.
func TestPolicyTraceGolden(t *testing.T) {
	policies := []struct {
		name   string
		policy func() Policy
	}{
		{"fifo", func() Policy { return FIFO{} }},
		{"fairshare", func() Policy { return FairShare{MaxConcurrent: 2} }},
		{"deadline", func() Policy { return Deadline{} }},
		{"costquota", func() Policy { return CostQuota{Budgets: map[string]float64{"acme": 10}, MaxConcurrent: 2} }},
		{"drf", func() Policy { return DRF{MaxConcurrent: 4} }},
	}
	for _, pc := range policies {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			got := goldenScenario(t, pc.policy())
			if again := goldenScenario(t, pc.policy()); !bytes.Equal(got, again) {
				t.Fatal("scenario is not deterministic across two executions")
			}
			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.jsonl", pc.name))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trace diverges from fixture %s:\n got %d bytes\nwant %d bytes\nfirst diff at byte %d",
					path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

// TestDRFTraceGolden pins the slice-lease event stream of the two-tenant
// cores-heavy vs memory-heavy mix: DRF's interleaved admissions and the
// whole-node baseline (FIFO ignores demands' dimensions for ranking but
// still grants slice leases) each get a fixture. Run with -update to
// regenerate after an intentional semantic change.
func TestDRFTraceGolden(t *testing.T) {
	policies := []struct {
		name   string
		policy func() Policy
	}{
		{"drf_mix", func() Policy { return DRF{MaxConcurrent: 4} }},
		{"drf_mix_weighted", func() Policy { return DRF{Weights: map[string]float64{"etl": 2}, MaxConcurrent: 4} }},
		{"fifo_mix", func() Policy { return FIFO{} }},
	}
	for _, pc := range policies {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			got := goldenDRFScenario(t, pc.policy())
			if again := goldenDRFScenario(t, pc.policy()); !bytes.Equal(got, again) {
				t.Fatal("scenario is not deterministic across two executions")
			}
			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.jsonl", pc.name))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trace diverges from fixture %s:\n got %d bytes\nwant %d bytes\nfirst diff at byte %d",
					path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
