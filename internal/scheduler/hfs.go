package scheduler

import "fmt"

// HierarchicalFairShare is a CFS-style fair scheduler over a tenant → user →
// run hierarchy. Every running run charges virtual runtime to its chain at
// rate nodes/(weight·2^priority); admission always goes to the waiting run
// under the least-charged tenant, then least-charged user, then the
// least-charged (earliest-submitted on ties) run — so cluster time converges
// to equal shares per tenant, equal shares per user within a tenant, and
// priority acts as a runtime multiplier within a user (a priority-1 run is
// billed half rate, so its group stays schedulable twice as long).
//
// Like FairShare it admits up to MaxConcurrent runs, each leasing an equal
// slice of the cluster; it returns one admission per decision round (the
// scheduler re-decides until quiescence) so every grant re-ranks the
// hierarchy first. It does not preempt: fairness is enforced at admission
// boundaries, which suits operator-granular runs; combine with deadlines via
// a fronting policy if preemptive urgency is needed.
type HierarchicalFairShare struct {
	// MaxConcurrent bounds simultaneously admitted runs (default 4).
	MaxConcurrent int
}

// Name implements Policy.
func (h HierarchicalFairShare) Name() string {
	return fmt.Sprintf("hierarchical-fair-share(%d)", h.slots())
}

func (h HierarchicalFairShare) slots() int {
	if h.MaxConcurrent < 1 {
		return 4
	}
	return h.MaxConcurrent
}

// Decide implements Policy: admit (or resume) the fair-share pick with an
// equal slice of the cluster. Cost per round is O(active + log tenants) —
// independent of queue depth — because the pick comes from the fair tree's
// heaps.
func (h HierarchicalFairShare) Decide(st State) []Action {
	k := h.slots()
	if st.ActiveLen() >= k || st.FreeNodes == 0 {
		return nil
	}
	cand, ok := st.FairNext()
	if !ok {
		return nil
	}
	n := st.TotalNodes / k
	if n < 1 {
		n = 1
	}
	if n > st.FreeNodes {
		// The progress clamp FairShare uses: an otherwise idle cluster
		// shrinks the share to the free pool instead of holding forever.
		if st.ActiveLen() > 0 {
			return nil
		}
		n = st.FreeNodes
	}
	if cand.Status == StatusSuspended {
		return []Action{Resume{Run: cand.ID, Nodes: n}}
	}
	return []Action{Admit{Run: cand.ID, Nodes: n}}
}
