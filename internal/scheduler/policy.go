package scheduler

import (
	"fmt"
	"math"
	"time"
)

// RunState is the policy-visible view of one run. All times are virtual
// seconds since simulation start.
type RunState struct {
	ID       string
	Workflow string
	Tenant   string
	// User subdivides a tenant for hierarchical fair-share accounting;
	// Priority biases that accounting (higher = charged less per node-second).
	User     string
	Priority int
	Status   Status

	SubmittedSec float64
	StartedSec   float64
	// DeadlineSec is the absolute virtual-time deadline (0 = none).
	DeadlineSec float64
	// LeasedNodes is the current lease size (0 while queued/suspended).
	LeasedNodes int
	// LeasedCores/LeasedMemMB are the lease's total capacity footprint per
	// dimension — slice dimensions times nodes for slice leases, full node
	// capacity times nodes for whole-node leases. The inputs of DRF
	// dominant-share ranking.
	LeasedCores int
	LeasedMemMB int
	// DemandCores/DemandMemMB are the run's per-node slice demand
	// (0,0 = whole-node leases).
	DemandCores int
	DemandMemMB int

	// EstTimeSec/EstCost are the planner's estimates for the whole run
	// (0 when no Estimate hook is wired or the policy did not ask for one).
	EstTimeSec float64
	EstCost    float64
	// RanSec is the virtual time the run has spent actually executing
	// (suspension windows excluded).
	RanSec float64
	// Preemptions counts how many times the run has been suspended.
	Preemptions int
	// Preempting marks an active run whose suspension has been requested
	// but has not yet reached an operator boundary; its nodes are not free
	// yet and it must not be preempted again.
	Preempting bool
}

// State is the scheduler state handed to Policy.Decide. It is an indexed
// view over incrementally maintained structures, not a materialized copy:
// accessors walk the live index under the scheduler lock and build RunStates
// on demand, so a decision round costs O(runs examined), not O(runs total).
//
// Iteration orders are deterministic: EachQueued and EachSuspended visit in
// submission order, EachActive in submission order over admitted runs,
// EachWaiting suspended-then-queued (each in submission order) — exactly the
// orders the seed scheduler materialized. EDFHead is the head a stable
// earliest-deadline-first sort of the waiting runs would produce, served
// from a heap. FairNext is the hierarchical fair-share pick (see fair.go).
type State struct {
	NowSec     float64
	TotalNodes int
	// TotalCores/TotalMemMB are the cluster's full capacity per resource
	// dimension — the denominators of DRF dominant shares.
	TotalCores int
	TotalMemMB int
	FreeNodes  int

	s   *Scheduler
	now time.Duration

	// naive switches the accessors to pre-materialized slices: the
	// from-scratch rebuild path used as the storm-test oracle and the bench
	// baseline (see Scheduler.DecideRebuild).
	naive      bool
	nQueued    []RunState
	nActive    []RunState
	nSuspended []RunState
}

// QueuedLen reports the number of queued runs.
func (st State) QueuedLen() int {
	if st.naive {
		return len(st.nQueued)
	}
	return st.s.idx.queue.n
}

// ActiveLen reports the number of admitted (running or resuming) runs.
func (st State) ActiveLen() int {
	if st.naive {
		return len(st.nActive)
	}
	return len(st.s.idx.activeOrder)
}

// SuspendedLen reports the number of preempted runs awaiting resume.
func (st State) SuspendedLen() int {
	if st.naive {
		return len(st.nSuspended)
	}
	return len(st.s.idx.suspendedOrder)
}

// WaitingLen reports queued + suspended.
func (st State) WaitingLen() int { return st.QueuedLen() + st.SuspendedLen() }

// EachQueued visits queued runs in submission order until fn returns false.
func (st State) EachQueued(fn func(RunState) bool) {
	if st.naive {
		for _, rs := range st.nQueued {
			if !fn(rs) {
				return
			}
		}
		return
	}
	st.s.idx.queue.each(func(r *Run) bool {
		return fn(st.s.runStateLocked(r, st.now))
	})
}

// EachActive visits admitted runs in submission order until fn returns false.
func (st State) EachActive(fn func(RunState) bool) {
	if st.naive {
		for _, rs := range st.nActive {
			if !fn(rs) {
				return
			}
		}
		return
	}
	for _, r := range st.s.idx.activeOrder {
		if !fn(st.s.runStateLocked(r, st.now)) {
			return
		}
	}
}

// EachSuspended visits suspended runs in submission order until fn returns
// false.
func (st State) EachSuspended(fn func(RunState) bool) {
	if st.naive {
		for _, rs := range st.nSuspended {
			if !fn(rs) {
				return
			}
		}
		return
	}
	for _, r := range st.s.idx.suspendedOrder {
		if !fn(st.s.runStateLocked(r, st.now)) {
			return
		}
	}
}

// EachWaiting visits suspended runs first, then queued — both in submission
// order — until fn returns false. Suspended runs hold completed work (and
// committed budget), so policies generally serve them first.
func (st State) EachWaiting(fn func(RunState) bool) {
	stop := false
	st.EachSuspended(func(rs RunState) bool {
		if !fn(rs) {
			stop = true
		}
		return !stop
	})
	if stop {
		return
	}
	st.EachQueued(fn)
}

// EDFHead returns the earliest-deadline waiting run (queued or suspended),
// ties broken by submission time then id — the head a stable EDF sort of
// the waiting set would produce, served in O(1) from the deadline heap.
func (st State) EDFHead() (RunState, bool) {
	if st.naive {
		var head RunState
		found := false
		scan := func(rs RunState) bool {
			if !found || edfLess(rs, head) {
				head, found = rs, true
			}
			return true
		}
		for _, rs := range st.nQueued {
			scan(rs)
		}
		for _, rs := range st.nSuspended {
			scan(rs)
		}
		return head, found
	}
	r := st.s.idx.edf.peek()
	if r == nil {
		return RunState{}, false
	}
	return st.s.runStateLocked(r, st.now), true
}

// SliceFit counts the nodes that could currently host one more
// (coresPer, memPer) slice — the slice-lease analogue of FreeNodes,
// letting slice-aware policies clamp admissions to grantable capacity.
// O(nodes), served straight from the cluster.
func (st State) SliceFit(coresPer, memPer int) int {
	if st.s == nil {
		return 0
	}
	return st.s.cluster.SliceFit(coresPer, memPer)
}

// FairNext returns the waiting run hierarchical fair share would admit next
// (minimal-vruntime tenant, then user, then run). Settling group runtimes to
// now mutates bookkeeping but never a decision: settlement is exact, so a
// group's vruntime is the same whenever it is observed.
func (st State) FairNext() (RunState, bool) {
	if st.s == nil {
		return RunState{}, false
	}
	var r *Run
	if st.naive {
		r = st.s.idx.fair.pickNaive(st.now)
	} else {
		r = st.s.idx.fair.pick(st.now)
	}
	if r == nil {
		return RunState{}, false
	}
	return st.s.runStateLocked(r, st.now), true
}

// Action is one scheduling decision returned by Policy.Decide. The scheduler
// applies actions in order; an action that no longer applies (run finished,
// nodes vanished) is skipped, never an error.
type Action interface{ isAction() }

// Admit grants a queued run a lease of Nodes whole nodes and starts it.
type Admit struct {
	Run   string
	Nodes int
}

// Resume re-admits a suspended run with a fresh lease of Nodes whole nodes;
// it replans from its done set and continues.
type Resume struct {
	Run   string
	Nodes int
}

// Preempt asks an active run to suspend: the executor stops at the next
// completed-operator boundary, the lease is revoked, and the run parks until
// a later Resume.
type Preempt struct {
	Run string
}

// Resize grows or shrinks an active run's lease to Nodes (shrink releases
// only nodes idle at the operator boundary; see cluster.ShrinkReservation).
type Resize struct {
	Run   string
	Nodes int
}

// Reject refuses a queued run outright; it finishes as failed with Reason.
type Reject struct {
	Run    string
	Reason string
}

func (Admit) isAction()   {}
func (Resume) isAction()  {}
func (Preempt) isAction() {}
func (Resize) isAction()  {}
func (Reject) isAction()  {}

// Policy decides scheduling: given the indexed run state it returns the
// actions to apply — admissions, resumes, lease resizes, preemptions,
// rejections. Decide must be a pure function of its input (it runs under the
// scheduler lock and is re-invoked after every applied batch until it
// quiesces), and it should touch only the runs it needs: the accessors
// materialize run views lazily, so a policy that inspects k runs costs O(k)
// regardless of queue depth.
type Policy interface {
	Name() string
	Decide(st State) []Action
}

// Estimator is the optional marker for policies that need planner estimates
// (EstTimeSec/EstCost on RunState): the scheduler invokes its Estimate hook
// at submission only for such policies, so estimate-free policies keep their
// exact trace behaviour.
type Estimator interface {
	NeedsEstimates() bool
}

// quotaDecide adapts the legacy quota shape to Decide, replicating the old
// admission loop exactly — head-of-queue order, quota <= 0 holds, and the
// progress clamp (an idle cluster shrinks an oversized quota to the free
// pool instead of waiting forever) — so FIFO/FairShare traces are identical
// to the pre-lease-core scheduler. The waiting set is iterated lazily:
// the loop stops at the first held run, so a burst of queued runs costs
// O(admissions), not O(queue).
func quotaDecide(quota func(total, free, active, queued int) int, st State) []Action {
	var actions []Action
	free := st.FreeNodes
	active := st.ActiveLen() + st.SuspendedLen()
	remaining := st.WaitingLen()
	st.EachWaiting(func(head RunState) bool {
		q := quota(st.TotalNodes, free, active, remaining)
		if q <= 0 {
			return false
		}
		if q > free {
			if active > 0 || free == 0 {
				return false
			}
			q = free
		}
		if head.Status == StatusSuspended {
			actions = append(actions, Resume{Run: head.ID, Nodes: q})
		} else {
			actions = append(actions, Admit{Run: head.ID, Nodes: q})
		}
		free -= q
		active++
		remaining--
		return true
	})
	return actions
}

// FIFO admits one run at a time and leases it every node: strict submission
// order, zero inter-run interference, serialized makespans.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Quota returns the node lease size for the next admission given the
// cluster's total node count, the currently unreserved healthy nodes, and
// the number of active and queued runs. Returning <= 0 holds admission.
// (Legacy policy shape, kept as the basis of the Decide adapter.)
func (FIFO) Quota(totalNodes, freeNodes, active, queued int) int {
	if active > 0 {
		return 0
	}
	return totalNodes
}

// Decide implements Policy via the quota adapter.
func (f FIFO) Decide(st State) []Action { return quotaDecide(f.Quota, st) }

// FairShare admits up to MaxConcurrent runs, each leasing an equal slice of
// the cluster. Contended workloads overlap instead of serializing, trading
// per-run speed for throughput.
type FairShare struct {
	// MaxConcurrent bounds simultaneously admitted runs (min 1).
	MaxConcurrent int
}

// Name implements Policy.
func (f FairShare) Name() string { return fmt.Sprintf("fair-share(%d)", f.slots()) }

func (f FairShare) slots() int {
	if f.MaxConcurrent < 1 {
		return 1
	}
	return f.MaxConcurrent
}

// Quota implements the legacy quota shape (see FIFO.Quota).
func (f FairShare) Quota(totalNodes, freeNodes, active, queued int) int {
	k := f.slots()
	if active >= k {
		return 0
	}
	share := totalNodes / k
	if share < 1 {
		share = 1
	}
	return share
}

// Decide implements Policy via the quota adapter.
func (f FairShare) Decide(st State) []Action { return quotaDecide(f.Quota, st) }

// deadlineOf returns the EDF sort key: a run without a deadline sorts last.
func deadlineOf(r RunState) float64 {
	if r.DeadlineSec <= 0 {
		return math.Inf(1)
	}
	return r.DeadlineSec
}

// edfLess orders runs earliest-deadline-first, breaking ties by submission
// time then ID so the order is total and deterministic.
func edfLess(a, b RunState) bool {
	da, db := deadlineOf(a), deadlineOf(b)
	if da != db {
		return da < db
	}
	if a.SubmittedSec != b.SubmittedSec {
		return a.SubmittedSec < b.SubmittedSec
	}
	return a.ID < b.ID
}

// remainingSec estimates how much execution time a run still needs.
func remainingSec(r RunState) float64 {
	rem := r.EstTimeSec - r.RanSec
	if rem < 0 {
		return 0
	}
	return rem
}

// Deadline schedules earliest-deadline-first using planner time estimates:
// waiting runs (queued or suspended) are served in EDF order, each granted
// the whole free pool; when the cluster is full and an earlier-deadline run
// waits behind a later-deadline one, the victim is preempted — but only if
// the estimates say it still meets its own deadline after yielding (runs
// without deadlines are always preemptible). A sole active run with no one
// waiting absorbs freed nodes by growing its lease.
type Deadline struct {
	// MaxPreemptions bounds how many times one run may be suspended
	// (default 1); past it the run keeps its lease to completion.
	MaxPreemptions int
}

// Name implements Policy.
func (Deadline) Name() string { return "deadline" }

// NeedsEstimates implements Estimator: EDF preemption reasons about
// remaining-time estimates.
func (Deadline) NeedsEstimates() bool { return true }

func (d Deadline) maxPreemptions() int {
	if d.MaxPreemptions < 1 {
		return 1
	}
	return d.MaxPreemptions
}

// Decide implements Policy. The waiting head comes from the deadline heap in
// O(1); the preemption branch scans only the active set (bounded by the
// cluster's node count), so a decision round is independent of queue depth.
func (d Deadline) Decide(st State) []Action {
	if st.WaitingLen() == 0 {
		// Nothing waiting: the sole active run absorbs any freed capacity.
		if st.FreeNodes > 0 && st.ActiveLen() == 1 {
			var sole RunState
			st.EachActive(func(a RunState) bool { sole = a; return false })
			if !sole.Preempting {
				return []Action{Resize{Run: sole.ID, Nodes: sole.LeasedNodes + st.FreeNodes}}
			}
		}
		return nil
	}

	head, _ := st.EDFHead()
	if st.FreeNodes > 0 {
		// Serve the most urgent waiting run with the whole free pool.
		if head.Status == StatusSuspended {
			return []Action{Resume{Run: head.ID, Nodes: st.FreeNodes}}
		}
		return []Action{Admit{Run: head.ID, Nodes: st.FreeNodes}}
	}

	// Cluster full: preempt the latest-deadline active run if the most
	// urgent waiter is EDF-ahead of it and the victim would still meet its
	// own deadline after being suspended and later resumed behind the
	// waiter. The check is estimate-based: now + remaining(waiter) +
	// remaining(victim) must stay within the victim's deadline.
	var victim RunState
	found := false
	st.EachActive(func(a RunState) bool {
		if a.Preempting || a.Preemptions >= d.maxPreemptions() {
			return true
		}
		if !found || edfLess(victim, a) {
			victim, found = a, true
		}
		return true
	})
	if !found || !edfLess(head, victim) {
		return nil
	}
	if victim.DeadlineSec > 0 {
		projected := st.NowSec + remainingSec(head) + remainingSec(victim)
		if projected > victim.DeadlineSec {
			return nil
		}
	}
	return []Action{Preempt{Run: victim.ID}}
}

// CostQuota enforces per-tenant budgets on concurrently committed modeled
// cost: a queued run is admitted (fair-share-style node slices, up to
// MaxConcurrent runs) only while the summed cost estimates of its tenant's
// active and suspended runs plus its own stay within the tenant's budget;
// otherwise it queues until commitments drain. A run whose own estimate can
// never fit the budget is rejected outright, keeping the queue live.
//
// CostQuota is the one shipped policy whose decision round remains O(waiting)
// rather than O(1): budget rejections can hide anywhere in the queue, so it
// deliberately scans the full waiting set each round.
type CostQuota struct {
	// Budgets maps tenant -> cost budget; tenants not listed fall back to
	// DefaultBudget (0 = unlimited).
	Budgets       map[string]float64
	DefaultBudget float64
	// MaxConcurrent bounds simultaneously admitted runs (default 2).
	MaxConcurrent int
}

// Name implements Policy.
func (CostQuota) Name() string { return "cost-quota" }

// NeedsEstimates implements Estimator: budgets are checked against modeled
// cost.
func (CostQuota) NeedsEstimates() bool { return true }

func (c CostQuota) slots() int {
	if c.MaxConcurrent < 1 {
		return 2
	}
	return c.MaxConcurrent
}

// budget returns the tenant's budget (0 = unlimited).
func (c CostQuota) budget(tenant string) float64 {
	if b, ok := c.Budgets[tenant]; ok {
		return b
	}
	return c.DefaultBudget
}

// Decide implements Policy.
func (c CostQuota) Decide(st State) []Action {
	committed := make(map[string]float64)
	st.EachActive(func(a RunState) bool {
		committed[a.Tenant] += a.EstCost
		return true
	})
	st.EachSuspended(func(a RunState) bool {
		committed[a.Tenant] += a.EstCost
		return true
	})
	slots := c.slots()
	share := st.TotalNodes / slots
	if share < 1 {
		share = 1
	}
	free := st.FreeNodes
	activeN := st.ActiveLen()

	var actions []Action
	// Suspended runs hold budget already — resume them first so their
	// commitments convert back into progress.
	st.EachWaiting(func(w RunState) bool {
		b := c.budget(w.Tenant)
		if w.Status != StatusSuspended && b > 0 && w.EstCost > b {
			actions = append(actions, Reject{
				Run:    w.ID,
				Reason: fmt.Sprintf("estimated cost %.1f exceeds tenant %q budget %.1f", w.EstCost, w.Tenant, b),
			})
			return true
		}
		if activeN >= slots {
			return true
		}
		if w.Status != StatusSuspended && b > 0 && committed[w.Tenant]+w.EstCost > b {
			return true // hold until the tenant's commitments drain
		}
		n := share
		if n > free {
			if activeN > 0 || free == 0 {
				return true
			}
			n = free
		}
		if w.Status == StatusSuspended {
			actions = append(actions, Resume{Run: w.ID, Nodes: n})
		} else {
			actions = append(actions, Admit{Run: w.ID, Nodes: n})
			committed[w.Tenant] += w.EstCost
		}
		free -= n
		activeN++
		return true
	})
	return actions
}
