package scheduler

import (
	"fmt"
	"math"
	"sort"
)

// RunState is the policy-visible view of one run. All times are virtual
// seconds since simulation start.
type RunState struct {
	ID       string
	Workflow string
	Tenant   string
	Status   Status

	SubmittedSec float64
	StartedSec   float64
	// DeadlineSec is the absolute virtual-time deadline (0 = none).
	DeadlineSec float64
	// LeasedNodes is the current lease size (0 while queued/suspended).
	LeasedNodes int

	// EstTimeSec/EstCost are the planner's estimates for the whole run
	// (0 when no Estimate hook is wired or the policy did not ask for one).
	EstTimeSec float64
	EstCost    float64
	// RanSec is the virtual time the run has spent actually executing
	// (suspension windows excluded).
	RanSec float64
	// Preemptions counts how many times the run has been suspended.
	Preemptions int
	// Preempting marks an active run whose suspension has been requested
	// but has not yet reached an operator boundary; its nodes are not free
	// yet and it must not be preempted again.
	Preempting bool
}

// State is the scheduler state handed to Policy.Decide. Slices are in
// deterministic order: Queued and Suspended in submission order, Active in
// admission order.
type State struct {
	NowSec     float64
	TotalNodes int
	FreeNodes  int
	Queued     []RunState
	Active     []RunState
	Suspended  []RunState
}

// Action is one scheduling decision returned by Policy.Decide. The scheduler
// applies actions in order; an action that no longer applies (run finished,
// nodes vanished) is skipped, never an error.
type Action interface{ isAction() }

// Admit grants a queued run a lease of Nodes whole nodes and starts it.
type Admit struct {
	Run   string
	Nodes int
}

// Resume re-admits a suspended run with a fresh lease of Nodes whole nodes;
// it replans from its done set and continues.
type Resume struct {
	Run   string
	Nodes int
}

// Preempt asks an active run to suspend: the executor stops at the next
// completed-operator boundary, the lease is revoked, and the run parks until
// a later Resume.
type Preempt struct {
	Run string
}

// Resize grows or shrinks an active run's lease to Nodes (shrink releases
// only nodes idle at the operator boundary; see cluster.ShrinkReservation).
type Resize struct {
	Run   string
	Nodes int
}

// Reject refuses a queued run outright; it finishes as failed with Reason.
type Reject struct {
	Run    string
	Reason string
}

func (Admit) isAction()   {}
func (Resume) isAction()  {}
func (Preempt) isAction() {}
func (Resize) isAction()  {}
func (Reject) isAction()  {}

// Policy decides scheduling: given the full run state it returns the actions
// to apply — admissions, resumes, lease resizes, preemptions, rejections.
// Decide must be a pure function of its input (it runs under the scheduler
// lock and is re-invoked after every applied batch until it quiesces).
type Policy interface {
	Name() string
	Decide(st State) []Action
}

// Estimator is the optional marker for policies that need planner estimates
// (EstTimeSec/EstCost on RunState): the scheduler invokes its Estimate hook
// at submission only for such policies, so estimate-free policies keep their
// exact trace behaviour.
type Estimator interface {
	NeedsEstimates() bool
}

// quotaDecide adapts the legacy quota shape to Decide, replicating the old
// admission loop exactly — head-of-queue order, quota <= 0 holds, and the
// progress clamp (an idle cluster shrinks an oversized quota to the free
// pool instead of waiting forever) — so FIFO/FairShare traces are identical
// to the pre-lease-core scheduler.
func quotaDecide(quota func(total, free, active, queued int) int, st State) []Action {
	var actions []Action
	free := st.FreeNodes
	active := len(st.Active) + len(st.Suspended)
	queued := append([]RunState(nil), st.Suspended...)
	queued = append(queued, st.Queued...)
	for len(queued) > 0 {
		head := queued[0]
		q := quota(st.TotalNodes, free, active, len(queued))
		if q <= 0 {
			break
		}
		if q > free {
			if active > 0 || free == 0 {
				break
			}
			q = free
		}
		if head.Status == StatusSuspended {
			actions = append(actions, Resume{Run: head.ID, Nodes: q})
		} else {
			actions = append(actions, Admit{Run: head.ID, Nodes: q})
		}
		free -= q
		active++
		queued = queued[1:]
	}
	return actions
}

// FIFO admits one run at a time and leases it every node: strict submission
// order, zero inter-run interference, serialized makespans.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Quota returns the node lease size for the next admission given the
// cluster's total node count, the currently unreserved healthy nodes, and
// the number of active and queued runs. Returning <= 0 holds admission.
// (Legacy policy shape, kept as the basis of the Decide adapter.)
func (FIFO) Quota(totalNodes, freeNodes, active, queued int) int {
	if active > 0 {
		return 0
	}
	return totalNodes
}

// Decide implements Policy via the quota adapter.
func (f FIFO) Decide(st State) []Action { return quotaDecide(f.Quota, st) }

// FairShare admits up to MaxConcurrent runs, each leasing an equal slice of
// the cluster. Contended workloads overlap instead of serializing, trading
// per-run speed for throughput.
type FairShare struct {
	// MaxConcurrent bounds simultaneously admitted runs (min 1).
	MaxConcurrent int
}

// Name implements Policy.
func (f FairShare) Name() string { return fmt.Sprintf("fair-share(%d)", f.slots()) }

func (f FairShare) slots() int {
	if f.MaxConcurrent < 1 {
		return 1
	}
	return f.MaxConcurrent
}

// Quota implements the legacy quota shape (see FIFO.Quota).
func (f FairShare) Quota(totalNodes, freeNodes, active, queued int) int {
	k := f.slots()
	if active >= k {
		return 0
	}
	share := totalNodes / k
	if share < 1 {
		share = 1
	}
	return share
}

// Decide implements Policy via the quota adapter.
func (f FairShare) Decide(st State) []Action { return quotaDecide(f.Quota, st) }

// deadlineOf returns the EDF sort key: a run without a deadline sorts last.
func deadlineOf(r RunState) float64 {
	if r.DeadlineSec <= 0 {
		return math.Inf(1)
	}
	return r.DeadlineSec
}

// edfLess orders runs earliest-deadline-first, breaking ties by submission
// time then ID so the order is total and deterministic.
func edfLess(a, b RunState) bool {
	da, db := deadlineOf(a), deadlineOf(b)
	if da != db {
		return da < db
	}
	if a.SubmittedSec != b.SubmittedSec {
		return a.SubmittedSec < b.SubmittedSec
	}
	return a.ID < b.ID
}

// remainingSec estimates how much execution time a run still needs.
func remainingSec(r RunState) float64 {
	rem := r.EstTimeSec - r.RanSec
	if rem < 0 {
		return 0
	}
	return rem
}

// Deadline schedules earliest-deadline-first using planner time estimates:
// waiting runs (queued or suspended) are served in EDF order, each granted
// the whole free pool; when the cluster is full and an earlier-deadline run
// waits behind a later-deadline one, the victim is preempted — but only if
// the estimates say it still meets its own deadline after yielding (runs
// without deadlines are always preemptible). A sole active run with no one
// waiting absorbs freed nodes by growing its lease.
type Deadline struct {
	// MaxPreemptions bounds how many times one run may be suspended
	// (default 1); past it the run keeps its lease to completion.
	MaxPreemptions int
}

// Name implements Policy.
func (Deadline) Name() string { return "deadline" }

// NeedsEstimates implements Estimator: EDF preemption reasons about
// remaining-time estimates.
func (Deadline) NeedsEstimates() bool { return true }

func (d Deadline) maxPreemptions() int {
	if d.MaxPreemptions < 1 {
		return 1
	}
	return d.MaxPreemptions
}

// Decide implements Policy.
func (d Deadline) Decide(st State) []Action {
	waiting := append([]RunState(nil), st.Queued...)
	waiting = append(waiting, st.Suspended...)
	sort.SliceStable(waiting, func(i, j int) bool { return edfLess(waiting[i], waiting[j]) })

	var actions []Action
	if len(waiting) == 0 {
		// Nothing waiting: the sole active run absorbs any freed capacity.
		if st.FreeNodes > 0 && len(st.Active) == 1 && !st.Active[0].Preempting {
			actions = append(actions, Resize{Run: st.Active[0].ID, Nodes: st.Active[0].LeasedNodes + st.FreeNodes})
		}
		return actions
	}

	head := waiting[0]
	if st.FreeNodes > 0 {
		// Serve the most urgent waiting run with the whole free pool.
		if head.Status == StatusSuspended {
			return []Action{Resume{Run: head.ID, Nodes: st.FreeNodes}}
		}
		return []Action{Admit{Run: head.ID, Nodes: st.FreeNodes}}
	}

	// Cluster full: preempt the latest-deadline active run if the most
	// urgent waiter is EDF-ahead of it and the victim would still meet its
	// own deadline after being suspended and later resumed behind the
	// waiter. The check is estimate-based: now + remaining(waiter) +
	// remaining(victim) must stay within the victim's deadline.
	var victim *RunState
	for i := range st.Active {
		a := &st.Active[i]
		if a.Preempting || a.Preemptions >= d.maxPreemptions() {
			continue
		}
		if victim == nil || edfLess(*victim, *a) {
			victim = a
		}
	}
	if victim == nil || !edfLess(head, *victim) {
		return nil
	}
	if victim.DeadlineSec > 0 {
		projected := st.NowSec + remainingSec(head) + remainingSec(*victim)
		if projected > victim.DeadlineSec {
			return nil
		}
	}
	return []Action{Preempt{Run: victim.ID}}
}

// CostQuota enforces per-tenant budgets on concurrently committed modeled
// cost: a queued run is admitted (fair-share-style node slices, up to
// MaxConcurrent runs) only while the summed cost estimates of its tenant's
// active and suspended runs plus its own stay within the tenant's budget;
// otherwise it queues until commitments drain. A run whose own estimate can
// never fit the budget is rejected outright, keeping the queue live.
type CostQuota struct {
	// Budgets maps tenant -> cost budget; tenants not listed fall back to
	// DefaultBudget (0 = unlimited).
	Budgets       map[string]float64
	DefaultBudget float64
	// MaxConcurrent bounds simultaneously admitted runs (default 2).
	MaxConcurrent int
}

// Name implements Policy.
func (CostQuota) Name() string { return "cost-quota" }

// NeedsEstimates implements Estimator: budgets are checked against modeled
// cost.
func (CostQuota) NeedsEstimates() bool { return true }

func (c CostQuota) slots() int {
	if c.MaxConcurrent < 1 {
		return 2
	}
	return c.MaxConcurrent
}

// budget returns the tenant's budget (0 = unlimited).
func (c CostQuota) budget(tenant string) float64 {
	if b, ok := c.Budgets[tenant]; ok {
		return b
	}
	return c.DefaultBudget
}

// Decide implements Policy.
func (c CostQuota) Decide(st State) []Action {
	committed := make(map[string]float64)
	for _, a := range st.Active {
		committed[a.Tenant] += a.EstCost
	}
	for _, a := range st.Suspended {
		committed[a.Tenant] += a.EstCost
	}
	slots := c.slots()
	share := st.TotalNodes / slots
	if share < 1 {
		share = 1
	}
	free := st.FreeNodes
	activeN := len(st.Active)

	var actions []Action
	// Suspended runs hold budget already — resume them first so their
	// commitments convert back into progress.
	waiting := append([]RunState(nil), st.Suspended...)
	waiting = append(waiting, st.Queued...)
	for _, w := range waiting {
		b := c.budget(w.Tenant)
		if w.Status != StatusSuspended && b > 0 && w.EstCost > b {
			actions = append(actions, Reject{
				Run:    w.ID,
				Reason: fmt.Sprintf("estimated cost %.1f exceeds tenant %q budget %.1f", w.EstCost, w.Tenant, b),
			})
			continue
		}
		if activeN >= slots {
			continue
		}
		if w.Status != StatusSuspended && b > 0 && committed[w.Tenant]+w.EstCost > b {
			continue // hold until the tenant's commitments drain
		}
		n := share
		if n > free {
			if activeN > 0 || free == 0 {
				continue
			}
			n = free
		}
		if w.Status == StatusSuspended {
			actions = append(actions, Resume{Run: w.ID, Nodes: n})
		} else {
			actions = append(actions, Admit{Run: w.ID, Nodes: n})
			committed[w.Tenant] += w.EstCost
		}
		free -= n
		activeN++
	}
	return actions
}
