// Package scheduler multiplexes several workflow executions over the shared
// simulated cluster and the single virtual clock — the multi-tenant layer of
// the platform (the paper's IReS instance is a shared service: many users
// submit abstract workflows against one YARN cluster).
//
// The design splits arbitration in two:
//
//   - Scheduling: a pluggable Policy observes the full run state (queued,
//     active, suspended) and returns Actions — admit, resume, resize,
//     preempt, reject. Admitted runs hold an elastic node lease
//     (cluster.Reservation) that the policy can grow, shrink, or revoke;
//     node-granular leases make oversubscription structurally impossible and
//     keep admitted runs from starving each other of containers.
//   - Cooperation: every admitted run executes on its own goroutine but
//     blocks on virtual time through a vtime.Party, so at most one run
//     executes at any instant and the interleaving is a pure function of the
//     virtual-time schedule. Fixed seed in, byte-identical traces out — even
//     under the race detector.
//
// Policy input is served from incrementally maintained indexed state (see
// index.go): the queue is an intrusive list with O(1) membership, waiting
// runs sit in an EDF heap, active/suspended sets are kept in submission
// order, and fair-share accounting lives in a hierarchical vruntime tree.
// The structures are updated as deltas at run lifecycle boundaries, so a
// decision round costs O(runs the policy examines), not O(runs ever
// submitted). Terminal runs are pruned from the hot path entirely: a frozen
// snapshot replaces the run record, keeping Runs() listings and id lookups
// alive without leaking execution state under sustained traffic.
//
// Preemption is cooperative: a Preempt action raises the run's suspend flag;
// the executor stops at the next completed-operator boundary, drains its
// in-flight gangs, and returns the materialized intermediates. The scheduler
// revokes the lease, parks the run (its goroutine leaves the cooperative
// clock entirely), and a later Resume action replans from the banked done
// set — so no simulated work is silently lost and zero completed operators
// re-execute.
package scheduler

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// ErrCanceled indicates the run was canceled before or during execution.
var ErrCanceled = errors.New("scheduler: run canceled")

// ErrRejected indicates the admission policy refused the run outright (e.g.
// its cost estimate can never fit the tenant's budget).
var ErrRejected = errors.New("scheduler: run rejected by admission policy")

// Status is the lifecycle state of a submitted run.
type Status int

const (
	StatusQueued Status = iota
	StatusRunning
	// StatusSuspended marks a preempted run: its lease is revoked and its
	// goroutine is parked off the cooperative clock, holding the done set
	// for a later resume.
	StatusSuspended
	// StatusResuming marks a suspended run that has been granted a fresh
	// lease but has not yet re-entered execution.
	StatusResuming
	StatusSucceeded
	StatusFailed
	StatusCanceled
)

// String returns the lowercase status name.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusSuspended:
		return "suspended"
	case StatusResuming:
		return "resuming"
	case StatusSucceeded:
		return "succeeded"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s >= StatusSucceeded }

// Snapshot is a point-in-time view of a run, safe to serialize.
type Snapshot struct {
	ID       string `json:"id"`
	Workflow string `json:"workflow,omitempty"`
	Status   string `json:"status"`
	// Tenant is the budget account the run is charged to (CostQuota) and the
	// top fair-share group (HierarchicalFairShare); User subdivides it.
	Tenant string `json:"tenant,omitempty"`
	User   string `json:"user,omitempty"`
	// Priority biases hierarchical fair-share charging (higher = cheaper).
	Priority int `json:"priority,omitempty"`
	// LeasedNodes is the current node lease size (0 while queued or
	// suspended). LeasedCores/LeasedMemMB are the lease's total capacity
	// footprint per dimension — slice dimensions times nodes for slice
	// leases, full node capacity times nodes for whole-node leases.
	LeasedNodes int `json:"leasedNodes,omitempty"`
	LeasedCores int `json:"leasedCores,omitempty"`
	LeasedMemMB int `json:"leasedMemMB,omitempty"`
	// Virtual-time marks, in seconds since simulation start. FinishedSec is
	// meaningful only for terminal runs.
	SubmittedSec float64 `json:"submittedSec"`
	StartedSec   float64 `json:"startedSec,omitempty"`
	FinishedSec  float64 `json:"finishedSec,omitempty"`
	// DeadlineSec is the absolute virtual-time deadline (0 = none).
	DeadlineSec float64 `json:"deadlineSec,omitempty"`
	// MakespanSec is the run's execution duration (terminal runs only).
	MakespanSec float64 `json:"makespanSec,omitempty"`
	// Preemptions counts how many times the run has been suspended;
	// SuspendedSec is the total virtual time spent suspended.
	Preemptions  int     `json:"preemptions,omitempty"`
	SuspendedSec float64 `json:"suspendedSec,omitempty"`
	// PreemptLatencySec is the total virtual time between preempt requests
	// and the suspensions landing (lease revoked) — with checkpointing
	// enabled each contribution is bounded by one checkpoint interval.
	PreemptLatencySec float64 `json:"preemptLatencySec,omitempty"`
	Error             string  `json:"error,omitempty"`
}

// Run is the handle of one submitted workflow.
type Run struct {
	id       string
	workflow string
	tenant   string
	user     string
	priority int
	deadline time.Duration // absolute vtime; 0 = none
	g        *workflow.Graph
	sched    *Scheduler
	// demandCores/demandMemMB are the per-node slice demand (0,0 =
	// whole-node leases); immutable after submission.
	demandCores int
	demandMemMB int

	canceled atomic.Bool
	// suspend is the cooperative-preemption flag: raised by a Preempt
	// action, polled by the executor, cleared when the suspension lands.
	suspend  atomic.Bool
	done     chan struct{}
	resumeCh chan struct{} // buffered(1); signaled on resume grant or cancel-while-suspended

	mu          sync.Mutex
	status      Status
	lease       *cluster.Reservation
	leasedNodes int // current lease size; survives finish (last size), zeroed on suspend
	leasedCores int // lease capacity footprint per dimension; tracks leasedNodes
	leasedMemMB int
	party       *vtime.Party
	plan        *planner.Plan
	result      *executor.Result
	err         error
	submittedAt time.Duration
	startedAt   time.Duration
	finishedAt  time.Duration

	estTime float64 // planner estimate, seconds (0 = none)
	estCost float64

	// Suspension bookkeeping (guarded by mu).
	doneSet        []planner.MaterializedIntermediate
	preemptions    int
	suspendedAt    time.Duration
	suspendedTotal time.Duration
	running        bool          // currently charged as executing
	runningSince   time.Duration // start of the current execution stretch
	ranFor         time.Duration // accumulated execution time (suspensions excluded)
	// Preemption latency accounting: preemptPending/preemptAskedAt mark an
	// outstanding preempt request; preemptLatency accumulates request-to-
	// suspension spans across the run's preemption arcs.
	preemptPending bool
	preemptAskedAt time.Duration
	preemptLatency time.Duration

	// Index bookkeeping, guarded by the scheduler's mu (never r.mu): the
	// run's position in each incrementally maintained structure.
	seq     int      // submission sequence
	qnode   *runNode // queue-list element; nil when not queued
	edfPos  int      // EDF heap position; -1 when not waiting
	fairPos int      // fair-tree waiting-heap position; -1 when not waiting

	// Hierarchical fair-share accounting (guarded by the scheduler's mu).
	fairWeight float64 // 2^priority charge divisor
	fairV      float64 // accrued virtual runtime
	fairRate   float64 // current vruntime slope (nodes/fairWeight; 0 unless running)
	fairLast   time.Duration
	fairNodes  int       // nodes currently charged
	fairOwner  *fairUser // owning fair group while registered
}

// ID returns the scheduler-unique run id (also stamped on trace events).
func (r *Run) ID() string { return r.id }

// Wait blocks until the run reaches a terminal state and returns its plan,
// execution result and error. It kicks the cooperative clock, so waiting on
// a freshly submitted batch starts it.
func (r *Run) Wait() (*planner.Plan, *executor.Result, error) {
	r.sched.clock.Kick()
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.plan, r.result, r.err
}

// Status returns a point-in-time snapshot of the run.
func (r *Run) Status() Snapshot {
	now := r.sched.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		ID:           r.id,
		Workflow:     r.workflow,
		Tenant:       r.tenant,
		User:         r.user,
		Priority:     r.priority,
		Status:       r.status.String(),
		SubmittedSec: r.submittedAt.Seconds(),
		DeadlineSec:  r.deadline.Seconds(),
		Preemptions:  r.preemptions,
	}
	snap.LeasedNodes = r.leasedNodes
	snap.LeasedCores = r.leasedCores
	snap.LeasedMemMB = r.leasedMemMB
	if r.status >= StatusRunning {
		snap.StartedSec = r.startedAt.Seconds()
	}
	suspended := r.suspendedTotal
	if r.status == StatusSuspended {
		suspended += now - r.suspendedAt
	}
	snap.SuspendedSec = suspended.Seconds()
	snap.PreemptLatencySec = r.preemptLatency.Seconds()
	if r.status.Terminal() {
		snap.FinishedSec = r.finishedAt.Seconds()
		snap.MakespanSec = (r.finishedAt - r.startedAt).Seconds()
	}
	if r.err != nil {
		snap.Error = r.err.Error()
	}
	return snap
}

// Done exposes the run's completion channel.
func (r *Run) Done() <-chan struct{} { return r.done }

// Cancel requests cancellation: a queued run is removed from the queue
// immediately, a running one stops at its next decision point (in-flight
// attempts drain first so no containers leak), and a suspended one is woken
// to finalize. Cancel is asynchronous; use Wait to observe the terminal
// state.
func (r *Run) Cancel() {
	r.canceled.Store(true)
	r.sched.noteCancel(r)
	// A running party notices the flag at its next decision point; kick in
	// case every party is parked and the clock needs a push.
	r.sched.clock.Kick()
}

// doneSnapshot returns the banked done set of a suspended run.
func (r *Run) doneSnapshot() []planner.MaterializedIntermediate {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]planner.MaterializedIntermediate(nil), r.doneSet...)
}

// ExecContext carries the per-segment execution bindings the scheduler hands
// to NewExecutor: the lease and cooperative party of the current segment plus
// the cancellation and cooperative-suspension probes.
type ExecContext struct {
	RunID string
	Lease *cluster.Reservation
	Party *vtime.Party
	// Canceled aborts the run at the next decision point.
	Canceled func() bool
	// Suspend asks the executor to stop at the next completed-operator
	// boundary and return executor.ErrSuspended with the materialized
	// intermediates.
	Suspend func() bool
}

// Exec runs one planned workflow; *executor.Executor satisfies it.
type Exec interface {
	Execute(g *workflow.Graph, plan *planner.Plan) (*executor.Result, error)
}

// ResumableExec is the optional capability needed for preemption: resuming a
// suspended run replans from the banked done set. *executor.Executor
// satisfies it.
type ResumableExec interface {
	Exec
	Resume(g *workflow.Graph, done []planner.MaterializedIntermediate) (*executor.Result, error)
}

// Config wires a Scheduler.
type Config struct {
	Clock   *vtime.Clock
	Cluster *cluster.Cluster
	// Policy is the scheduling policy (default FIFO).
	Policy Policy
	// Plan produces the materialized plan for an admitted run. It is called
	// inside the run's party, so concurrent planning is serialized and
	// deterministic.
	Plan func(g *workflow.Graph) (*planner.Plan, error)
	// NewExecutor builds the per-segment executor. The scheduler hands it
	// the segment's lease and cooperative party plus the cancellation and
	// suspension probes; the implementation must confine the executor to
	// them. A fresh executor is built for every resume segment.
	NewExecutor func(ctx ExecContext) Exec
	// Estimate, when non-nil, predicts a workflow's execution time (virtual
	// seconds) and modeled cost. It is consulted at submission — and only
	// when the policy implements Estimator and asks for estimates — to fill
	// RunState.EstTimeSec/EstCost for deadline/budget decisions.
	Estimate func(g *workflow.Graph) (timeSec, costUnits float64, err error)
	// Tracer receives run lifecycle events; nil discards them.
	Tracer trace.Tracer
}

// SubmitOptions carries the scheduling metadata of one submission.
type SubmitOptions struct {
	// Name labels the run in status listings (default: the graph target).
	Name string
	// Tenant is the budget account for CostQuota-style policies and the top
	// fair-share group for HierarchicalFairShare.
	Tenant string
	// User subdivides a tenant for hierarchical fair-share accounting.
	User string
	// Priority biases fair-share charging: a priority-p run is billed
	// node-seconds at 1/2^p (clamped to ±8), so higher priorities are
	// scheduled sooner within their group. Ignored by other policies.
	Priority int
	// Deadline is the absolute virtual-time deadline for Deadline-style
	// policies (0 = none).
	Deadline time.Duration
	// DemandCores/DemandMemMB declare a per-node resource-slice demand.
	// When both are positive the run's leases are (cores, memMB) slices
	// instead of whole nodes, so runs with complementary demand shapes can
	// share nodes (the currency of the DRF policy). Demands are clamped to
	// single-node capacity; setting only one dimension disables both.
	DemandCores int
	DemandMemMB int
}

// runRecord is one submission-order ledger entry. While the run is live it
// points at the Run; once terminal, the pointer is dropped and a frozen
// snapshot takes its place — so the scheduler retains O(1) state per
// finished run (id + snapshot) instead of the full graph/plan/result chain,
// and the hot path never iterates terminal runs at all.
type runRecord struct {
	id    string
	run   *Run // nil once terminal
	final Snapshot
}

// Scheduler is the multi-workflow submission queue + scheduling core.
// It is safe for concurrent use.
type Scheduler struct {
	clock      *vtime.Clock
	cluster    *cluster.Cluster
	policy     Policy
	plan       func(g *workflow.Graph) (*planner.Plan, error)
	newExec    func(ctx ExecContext) Exec
	estimate   func(g *workflow.Graph) (float64, float64, error)
	tracer     trace.Tracer
	totalNodes int
	// Cached cluster capacity (per dimension and per node) for DRF share
	// math and demand clamping; the node inventory is fixed at build time.
	totalCores int
	totalMemMB int
	nodeCores  int
	nodeMemMB  int

	mu        sync.Mutex
	nextID    int
	idx       stateIndex
	active    map[string]*Run
	suspended map[string]*Run
	records   []*runRecord          // submission order
	recIdx    map[string]*runRecord // id -> record
	// pendingCancel holds runs canceled while admitted: if such a run later
	// lands a suspension instead of observing the flag, the next scheduling
	// round wakes it to finalize. (Queued and suspended runs are handled
	// synchronously by noteCancel.)
	pendingCancel map[string]*Run
}

// New builds a scheduler; Clock, Cluster, Plan and NewExecutor are required.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Clock == nil || cfg.Cluster == nil || cfg.Plan == nil || cfg.NewExecutor == nil {
		return nil, fmt.Errorf("scheduler: Clock, Cluster, Plan and NewExecutor are required")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = FIFO{}
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Nop()
	}
	nodes := cfg.Cluster.Nodes()
	totalCores, totalMemMB := cfg.Cluster.Capacity()
	nodeCores, nodeMemMB := 0, 0
	if len(nodes) > 0 {
		nodeCores, nodeMemMB = nodes[0].Cores, nodes[0].MemMB
	}
	return &Scheduler{
		clock:         cfg.Clock,
		cluster:       cfg.Cluster,
		policy:        policy,
		plan:          cfg.Plan,
		newExec:       cfg.NewExecutor,
		estimate:      cfg.Estimate,
		tracer:        tracer,
		totalNodes:    len(nodes),
		totalCores:    totalCores,
		totalMemMB:    totalMemMB,
		nodeCores:     nodeCores,
		nodeMemMB:     nodeMemMB,
		idx:           newStateIndex(),
		active:        make(map[string]*Run),
		suspended:     make(map[string]*Run),
		recIdx:        make(map[string]*runRecord),
		pendingCancel: make(map[string]*Run),
	}, nil
}

// Policy returns the active scheduling policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Submit enqueues a workflow and returns its run handle. Scheduling is
// attempted immediately, but no admitted run executes until the cooperative
// clock is kicked (Run.Wait, Drain or Start) — so a batch of Submit calls is
// deterministic regardless of goroutine scheduling.
func (s *Scheduler) Submit(g *workflow.Graph) *Run {
	return s.SubmitWith(g, SubmitOptions{})
}

// SubmitNamed is Submit with an explicit workflow label for status listings.
func (s *Scheduler) SubmitNamed(name string, g *workflow.Graph) *Run {
	return s.SubmitWith(g, SubmitOptions{Name: name})
}

// SubmitWith is Submit with full scheduling metadata (label, tenant, user,
// priority, deadline).
func (s *Scheduler) SubmitWith(g *workflow.Graph, opts SubmitOptions) *Run {
	name := opts.Name
	if name == "" {
		name = g.Target
	}
	// Estimates are produced before enqueueing (planning may take real
	// time) and only for policies that ask, so estimate-free policies keep
	// their exact event streams.
	var estTime, estCost float64
	if s.estimate != nil {
		if e, ok := s.policy.(Estimator); ok && e.NeedsEstimates() {
			if t, c, err := s.estimate(g); err == nil {
				estTime, estCost = t, c
			}
		}
	}

	// Slice demands are all-or-nothing and clamped to single-node physical
	// capacity, so a demand run can always be granted on a fully free node
	// (the progress safety net depends on that).
	demC, demM := opts.DemandCores, opts.DemandMemMB
	if demC <= 0 || demM <= 0 {
		demC, demM = 0, 0
	} else {
		if demC > s.nodeCores {
			demC = s.nodeCores
		}
		if demM > s.nodeMemMB {
			demM = s.nodeMemMB
		}
	}

	s.mu.Lock()
	s.nextID++
	r := &Run{
		id:          fmt.Sprintf("run-%03d", s.nextID),
		workflow:    name,
		tenant:      opts.Tenant,
		user:        opts.User,
		priority:    opts.Priority,
		deadline:    opts.Deadline,
		demandCores: demC,
		demandMemMB: demM,
		g:           g,
		sched:       s,
		done:        make(chan struct{}),
		resumeCh:    make(chan struct{}, 1),
		status:      StatusQueued,
		submittedAt: s.clock.Now(),
		estTime:     estTime,
		estCost:     estCost,
		seq:         s.nextID,
		edfPos:      -1,
		fairPos:     -1,
		fairWeight:  priorityWeight(opts.Priority),
	}
	rec := &runRecord{id: r.id, run: r}
	s.records = append(s.records, rec)
	s.recIdx[r.id] = rec
	s.idx.enqueue(r, r.submittedAt)
	depth := s.idx.queue.n
	s.mu.Unlock()

	fields := map[string]float64{"queueDepth": float64(depth)}
	if opts.Deadline > 0 {
		fields["deadlineSec"] = opts.Deadline.Seconds()
	}
	if estTime > 0 {
		fields["estTimeSec"] = estTime
	}
	if demC > 0 {
		fields["demandCores"] = float64(demC)
		fields["demandMemMB"] = float64(demM)
	}
	s.tracer.Emit(trace.Event{
		Type: trace.EvRunSubmit, RunID: r.id, Operator: name,
		Fields: fields,
	}.At(r.submittedAt))

	s.schedule()
	return r
}

// Start kicks the cooperative clock so admitted runs begin executing.
func (s *Scheduler) Start() { s.clock.Kick() }

// Drain waits until every submitted run (including ones submitted while
// draining) reaches a terminal state. Suspended runs count as pending: the
// policy (or the progress safety net) resumes them as capacity frees.
func (s *Scheduler) Drain() {
	for {
		s.mu.Lock()
		pending := make([]*Run, 0, s.idx.queue.n+len(s.active)+len(s.suspended))
		s.idx.queue.each(func(r *Run) bool {
			pending = append(pending, r)
			return true
		})
		for _, r := range s.active {
			pending = append(pending, r)
		}
		for _, r := range s.suspended {
			pending = append(pending, r)
		}
		s.mu.Unlock()
		if len(pending) == 0 {
			return
		}
		s.clock.Kick()
		for _, r := range pending {
			<-r.done
		}
	}
}

// Runs returns snapshots of every submitted run in submission order. Live
// runs are snapshotted fresh; terminal runs come from the frozen record.
func (s *Scheduler) Runs() []Snapshot {
	s.mu.Lock()
	out := make([]Snapshot, len(s.records))
	live := make([]*Run, len(s.records))
	for i, rec := range s.records {
		if rec.run != nil {
			live[i] = rec.run
		} else {
			out[i] = rec.final
		}
	}
	s.mu.Unlock()
	for i, r := range live {
		if r != nil {
			out[i] = r.Status()
		}
	}
	return out
}

// Get returns the live run handle with the given id. Terminal runs are
// pruned from the scheduler's hot state; use SnapshotOf for those.
func (s *Scheduler) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.recIdx[id]
	if rec == nil || rec.run == nil {
		return nil, false
	}
	return rec.run, true
}

// SnapshotOf returns the snapshot of any submitted run, live or terminal.
func (s *Scheduler) SnapshotOf(id string) (Snapshot, bool) {
	s.mu.Lock()
	rec := s.recIdx[id]
	var (
		run  *Run
		snap Snapshot
	)
	if rec != nil {
		if rec.run != nil {
			run = rec.run
		} else {
			snap = rec.final
		}
	}
	s.mu.Unlock()
	if rec == nil {
		return Snapshot{}, false
	}
	if run != nil {
		return run.Status(), true
	}
	return snap, true
}

// CancelByID cancels the run with the given id; it reports whether the id is
// known. Canceling an already-terminal run is a no-op.
func (s *Scheduler) CancelByID(id string) bool {
	s.mu.Lock()
	rec := s.recIdx[id]
	var run *Run
	if rec != nil {
		run = rec.run
	}
	s.mu.Unlock()
	if rec == nil {
		return false
	}
	if run != nil {
		run.Cancel()
	}
	return true
}

// QueueDepth reports the number of queued (not yet admitted) runs.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.queue.n
}

// ActiveRuns reports the number of admitted, unfinished runs.
func (s *Scheduler) ActiveRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// SuspendedRuns reports the number of preempted runs awaiting resume.
func (s *Scheduler) SuspendedRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.suspended)
}

// runStateLocked builds the policy-visible view of one run; s.mu held.
func (s *Scheduler) runStateLocked(r *Run, now time.Duration) RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := RunState{
		ID:           r.id,
		Workflow:     r.workflow,
		Tenant:       r.tenant,
		User:         r.user,
		Priority:     r.priority,
		Status:       r.status,
		SubmittedSec: r.submittedAt.Seconds(),
		DeadlineSec:  r.deadline.Seconds(),
		DemandCores:  r.demandCores,
		DemandMemMB:  r.demandMemMB,
		EstTimeSec:   r.estTime,
		EstCost:      r.estCost,
		Preemptions:  r.preemptions,
		Preempting:   r.suspend.Load(),
	}
	if r.status >= StatusRunning {
		rs.StartedSec = r.startedAt.Seconds()
	}
	rs.LeasedNodes = r.leasedNodes
	rs.LeasedCores = r.leasedCores
	rs.LeasedMemMB = r.leasedMemMB
	ran := r.ranFor
	if r.running {
		ran += now - r.runningSince
	}
	rs.RanSec = ran.Seconds()
	return rs
}

// stateViewLocked builds the indexed policy input; s.mu held. Nothing is
// materialized here — the State's accessors walk the live index.
func (s *Scheduler) stateViewLocked(now time.Duration) State {
	return State{
		NowSec:     now.Seconds(),
		TotalNodes: s.totalNodes,
		TotalCores: s.totalCores,
		TotalMemMB: s.totalMemMB,
		FreeNodes:  s.cluster.UnreservedHealthy(),
		s:          s,
		now:        now,
	}
}

// reserveFor draws a lease matching the run's demand shape: per-node
// (cores, memMB) slices for runs submitted with a demand, whole nodes
// otherwise.
func (s *Scheduler) reserveFor(r *Run, nodes int) (*cluster.Reservation, error) {
	if r.demandCores > 0 && r.demandMemMB > 0 {
		return s.cluster.ReserveSlices(nodes, r.demandCores, r.demandMemMB)
	}
	return s.cluster.Reserve(nodes)
}

// leaseFootprint returns the total (cores, memMB) capacity a lease pins:
// slice dimensions times nodes for slice leases, full node capacity times
// nodes for whole-node leases.
func (s *Scheduler) leaseFootprint(lease *cluster.Reservation) (cores, memMB int) {
	n := lease.Size()
	if sc, sm := lease.SliceDims(); sc > 0 {
		return n * sc, n * sm
	}
	return n * s.nodeCores, n * s.nodeMemMB
}

// leaseGrantFields builds the lease-event payload; slice leases add their
// per-node dimensions while whole-node leases keep the seed event schema
// byte-for-byte.
func leaseGrantFields(lease *cluster.Reservation) map[string]float64 {
	f := map[string]float64{"nodes": float64(lease.Size())}
	if sc, sm := lease.SliceDims(); sc > 0 {
		f["coresPerNode"] = float64(sc)
		f["memMBPerNode"] = float64(sm)
	}
	return f
}

// queuedLocked finds a run in the queue by id; s.mu held. O(1) via the
// record index + intrusive queue membership.
func (s *Scheduler) queuedLocked(id string) *Run {
	rec := s.recIdx[id]
	if rec == nil || rec.run == nil || rec.run.qnode == nil {
		return nil
	}
	return rec.run
}

// schedule runs Decide/apply rounds until the policy quiesces (a round
// applies no action). It is called at every scheduling boundary: submission,
// run finish, suspension landing, cancellation.
func (s *Scheduler) schedule() {
	for s.scheduleOnce() {
	}
}

// DecideIndexed runs one policy decision round against the maintained
// indexed state without applying anything, and returns the number of actions
// the policy produced. Bench/diagnostic hook.
func (s *Scheduler) DecideIndexed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	return len(s.policy.Decide(s.stateViewLocked(now)))
}

// DecideRebuild runs one policy decision round against a from-scratch
// rebuild of the state — every live run re-materialized into RunState slices,
// the seed scheduler's per-event cost — without applying anything. Bench
// baseline for DecideIndexed.
func (s *Scheduler) DecideRebuild() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	q, a, su := s.naiveStateLocked(now)
	st := State{
		NowSec:     now.Seconds(),
		TotalNodes: s.totalNodes,
		TotalCores: s.totalCores,
		TotalMemMB: s.totalMemMB,
		FreeNodes:  s.cluster.UnreservedHealthy(),
		s:          s,
		now:        now,
		naive:      true,
		nQueued:    q,
		nActive:    a,
		nSuspended: su,
	}
	return len(s.policy.Decide(st))
}

// grantLocked gives a run a fresh lease and a party seat; s.mu held. The
// caller has already pulled the run out of the waiting structures
// (dequeueForGrant/unsuspendForGrant).
func (s *Scheduler) grantLocked(r *Run, lease *cluster.Reservation, status Status, now time.Duration) {
	n := lease.Size()
	cores, memMB := s.leaseFootprint(lease)
	r.mu.Lock()
	r.status = status
	r.lease = lease
	r.leasedNodes = n
	r.leasedCores = cores
	r.leasedMemMB = memMB
	r.party = s.clock.Join()
	r.running = true
	r.runningSince = now
	r.mu.Unlock()
	s.active[r.id] = r
	s.idx.granted(r, n, now)
}

// scheduleOnce performs one Decide/apply round and reports whether any
// action applied.
func (s *Scheduler) scheduleOnce() bool {
	var started []*Run
	progress := false

	s.mu.Lock()
	now := s.clock.Now()

	// Scrub pending cancellations: a run canceled while admitted may have
	// landed a suspension instead of observing the flag — wake it so its
	// parked goroutine finalizes. (Queued/suspended cancels are handled
	// synchronously in noteCancel; this set only ever holds runs that were
	// active at cancel time, so the scrub is O(pending), not O(all runs).)
	if len(s.pendingCancel) > 0 {
		pend := make([]*Run, 0, len(s.pendingCancel))
		for _, r := range s.pendingCancel {
			pend = append(pend, r)
		}
		sort.Slice(pend, func(i, j int) bool { return pend[i].seq < pend[j].seq })
		for _, r := range pend {
			if _, ok := s.suspended[r.id]; ok {
				s.wakeSuspendedLocked(r, now)
				delete(s.pendingCancel, r.id)
				continue
			}
			if rec := s.recIdx[r.id]; rec != nil && rec.run == nil {
				delete(s.pendingCancel, r.id) // finalized on its own
			}
		}
	}

	st := s.stateViewLocked(now)
	actions := s.policy.Decide(st)
	for _, a := range actions {
		switch a := a.(type) {
		case Admit:
			r := s.queuedLocked(a.Run)
			if r == nil || a.Nodes < 1 || r.canceled.Load() {
				continue
			}
			lease, err := s.reserveFor(r, a.Nodes)
			if err != nil {
				continue
			}
			s.idx.dequeueForGrant(r)
			s.grantLocked(r, lease, StatusRunning, now)
			r.mu.Lock()
			r.startedAt = now
			wait := now - r.submittedAt
			r.mu.Unlock()
			s.tracer.Emit(trace.Event{
				Type: trace.EvLeaseGrant, RunID: r.id,
				Fields: leaseGrantFields(lease),
			}.At(now))
			s.tracer.Emit(trace.Event{
				Type: trace.EvRunAdmit, RunID: r.id, Operator: r.workflow,
				Fields: map[string]float64{"nodes": float64(lease.Size()), "waitSec": wait.Seconds()},
			}.At(now))
			started = append(started, r)
			progress = true

		case Resume:
			r := s.suspended[a.Run]
			if r == nil || a.Nodes < 1 || r.canceled.Load() {
				continue
			}
			lease, err := s.reserveFor(r, a.Nodes)
			if err != nil {
				continue
			}
			delete(s.suspended, r.id)
			s.idx.unsuspendForGrant(r)
			s.grantLocked(r, lease, StatusResuming, now)
			r.mu.Lock()
			slept := now - r.suspendedAt
			r.suspendedTotal += slept
			r.mu.Unlock()
			s.tracer.Emit(trace.Event{
				Type: trace.EvLeaseGrant, RunID: r.id,
				Fields: leaseGrantFields(lease),
			}.At(now))
			s.tracer.Emit(trace.Event{
				Type: trace.EvRunResume, RunID: r.id, Operator: r.workflow,
				Fields: map[string]float64{"nodes": float64(lease.Size()), "suspendedSec": slept.Seconds()},
			}.At(now))
			r.resumeCh <- struct{}{}
			progress = true

		case Preempt:
			r := s.active[a.Run]
			if r == nil {
				continue
			}
			if r.suspend.Swap(true) {
				continue // already pending
			}
			r.mu.Lock()
			r.preemptPending = true
			r.preemptAskedAt = now
			r.mu.Unlock()
			progress = true

		case Resize:
			r := s.active[a.Run]
			if r == nil || a.Nodes < 1 {
				continue
			}
			r.mu.Lock()
			lease := r.lease
			r.mu.Unlock()
			if lease == nil {
				continue
			}
			cur := lease.Size()
			if a.Nodes > cur {
				added, err := s.cluster.GrowReservation(lease, a.Nodes-cur)
				if err != nil || len(added) == 0 {
					continue
				}
				cores, memMB := s.leaseFootprint(lease)
				r.mu.Lock()
				r.leasedNodes = lease.Size()
				r.leasedCores = cores
				r.leasedMemMB = memMB
				r.mu.Unlock()
				s.idx.resized(r, lease.Size(), now)
				s.tracer.Emit(trace.Event{
					Type: trace.EvLeaseGrow, RunID: r.id,
					Fields: map[string]float64{"nodes": float64(len(added)), "total": float64(lease.Size())},
				}.At(now))
				progress = true
			} else if a.Nodes < cur {
				removed, err := s.cluster.ShrinkReservation(lease, a.Nodes)
				if err != nil || len(removed) == 0 {
					continue
				}
				cores, memMB := s.leaseFootprint(lease)
				r.mu.Lock()
				r.leasedNodes = lease.Size()
				r.leasedCores = cores
				r.leasedMemMB = memMB
				r.mu.Unlock()
				s.idx.resized(r, lease.Size(), now)
				s.tracer.Emit(trace.Event{
					Type: trace.EvLeaseShrink, RunID: r.id,
					Fields: map[string]float64{"nodes": float64(len(removed)), "total": float64(lease.Size())},
				}.At(now))
				progress = true
			}

		case Reject:
			r := s.queuedLocked(a.Run)
			if r == nil {
				continue
			}
			s.idx.dequeueTerminal(r, now)
			r.mu.Lock()
			r.status = StatusFailed
			r.err = fmt.Errorf("%w: %s", ErrRejected, a.Reason)
			r.finishedAt = now
			r.startedAt = now
			r.mu.Unlock()
			s.tracer.Emit(trace.Event{
				Type: trace.EvRunReject, RunID: r.id, Operator: r.workflow,
				Error: a.Reason,
			}.At(now))
			s.finalizeRecordLocked(r)
			close(r.done)
			progress = true
		}
	}

	// Progress safety net: a policy that yields no applicable action while
	// the cluster sits idle would deadlock Drain. Force the earliest
	// waiting run (suspended preferred over queued at equal submission
	// time: it holds completed work) onto the free pool.
	if !progress && len(s.active) == 0 {
		free := s.cluster.UnreservedHealthy()
		pick := s.idx.queue.front()
		if len(s.idx.suspendedOrder) > 0 {
			r := s.idx.suspendedOrder[0] // earliest-submitted suspended run
			if pick == nil || r.submittedAt <= pick.submittedAt {
				pick = r
			}
		}
		if pick != nil && free > 0 && !pick.canceled.Load() {
			if lease, err := s.reserveFor(pick, free); err == nil {
				if _, ok := s.suspended[pick.id]; ok {
					delete(s.suspended, pick.id)
					s.idx.unsuspendForGrant(pick)
					s.grantLocked(pick, lease, StatusResuming, now)
					pick.mu.Lock()
					slept := now - pick.suspendedAt
					pick.suspendedTotal += slept
					pick.mu.Unlock()
					s.tracer.Emit(trace.Event{
						Type: trace.EvLeaseGrant, RunID: pick.id,
						Fields: leaseGrantFields(lease),
					}.At(now))
					s.tracer.Emit(trace.Event{
						Type: trace.EvRunResume, RunID: pick.id, Operator: pick.workflow,
						Fields: map[string]float64{"nodes": float64(lease.Size()), "suspendedSec": slept.Seconds()},
					}.At(now))
					pick.resumeCh <- struct{}{}
					progress = true
				} else {
					s.idx.dequeueForGrant(pick)
					s.grantLocked(pick, lease, StatusRunning, now)
					pick.mu.Lock()
					pick.startedAt = now
					wait := now - pick.submittedAt
					pick.mu.Unlock()
					s.tracer.Emit(trace.Event{
						Type: trace.EvLeaseGrant, RunID: pick.id,
						Fields: leaseGrantFields(lease),
					}.At(now))
					s.tracer.Emit(trace.Event{
						Type: trace.EvRunAdmit, RunID: pick.id, Operator: pick.workflow,
						Fields: map[string]float64{"nodes": float64(lease.Size()), "waitSec": wait.Seconds()},
					}.At(now))
					started = append(started, pick)
					progress = true
				}
			}
		}
	}
	s.mu.Unlock()

	for _, r := range started {
		go s.runParty(r)
	}
	return progress
}

// finalizeRecordLocked freezes a terminal run's snapshot into its record and
// drops the hot-path pointer; s.mu held, the run's status already terminal.
func (s *Scheduler) finalizeRecordLocked(r *Run) {
	rec := s.recIdx[r.id]
	if rec == nil || rec.run == nil {
		return
	}
	rec.final = r.Status()
	rec.run = nil
	delete(s.pendingCancel, r.id)
}

// finalizeCanceled finishes a run that was canceled while still queued.
// Caller holds s.mu and has already removed the run from the waiting
// structures.
func (s *Scheduler) finalizeCanceled(r *Run) {
	now := s.clock.Now()
	r.mu.Lock()
	r.status = StatusCanceled
	r.err = ErrCanceled
	r.startedAt = now
	r.finishedAt = now
	r.mu.Unlock()
	s.tracer.Emit(trace.Event{Type: trace.EvRunCancel, RunID: r.id, Operator: r.workflow}.At(now))
	s.finalizeRecordLocked(r)
	close(r.done)
}

// wakeSuspendedLocked pulls a canceled suspended run out of the suspended
// structures and signals its parked goroutine to finalize; s.mu held.
func (s *Scheduler) wakeSuspendedLocked(r *Run, now time.Duration) {
	delete(s.suspended, r.id)
	s.idx.wokeSuspended(r, now)
	select {
	case r.resumeCh <- struct{}{}:
	default:
	}
}

// noteCancel routes a cancellation to the run's current stage: queued runs
// finalize immediately, suspended runs are woken, and admitted runs are
// remembered in pendingCancel in case their suspension lands before the
// executor observes the flag.
func (s *Scheduler) noteCancel(r *Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	switch {
	case r.qnode != nil:
		s.idx.dequeueTerminal(r, now)
		s.finalizeCanceled(r)
	case s.suspended[r.id] != nil:
		s.wakeSuspendedLocked(r, now)
	default:
		if rec := s.recIdx[r.id]; rec != nil && rec.run != nil {
			s.pendingCancel[r.id] = r
		}
	}
}

// mergeResults folds the per-segment results of a preempted-and-resumed run
// into one: counters add up, logs concatenate, and the final dataset comes
// from the last segment. Makespan is the summed execution time (suspension
// windows excluded — the wall-clock span lives in the run's Snapshot).
func mergeResults(segs []*executor.Result) *executor.Result {
	if len(segs) == 0 {
		return nil
	}
	if len(segs) == 1 {
		return segs[0]
	}
	out := &executor.Result{}
	for _, r := range segs {
		out.Makespan += r.Makespan
		out.TotalCostUnits += r.TotalCostUnits
		out.Runs = append(out.Runs, r.Runs...)
		out.Replans += r.Replans
		out.ReplanTime += r.ReplanTime
		out.Retries += r.Retries
		out.SpeculativeLaunches += r.SpeculativeLaunches
		out.SpeculativeWins += r.SpeculativeWins
		out.ContainersLost += r.ContainersLost
		out.CheckpointWrites += r.CheckpointWrites
		out.CheckpointRestores += r.CheckpointRestores
		out.RestoredUnits += r.RestoredUnits
		out.AttemptYields += r.AttemptYields
		out.StepLog = append(out.StepLog, r.StepLog...)
	}
	last := segs[len(segs)-1]
	out.FinalRecords = last.FinalRecords
	out.FinalBytes = last.FinalBytes
	out.Intermediates = last.Intermediates
	out.Partials = last.Partials
	return out
}

// executeSegments drives a run through its execution segments: the first
// executes the plan from scratch; each suspension banks the done set, parks,
// and the following segment resumes via replan-from-done-set on a fresh
// lease and party.
func (s *Scheduler) executeSegments(r *Run, plan *planner.Plan) (*executor.Result, error) {
	var segs []*executor.Result
	resumed := false
	for {
		r.mu.Lock()
		lease, party := r.lease, r.party
		r.mu.Unlock()
		exec := s.newExec(ExecContext{
			RunID:    r.id,
			Lease:    lease,
			Party:    party,
			Canceled: r.canceled.Load,
			Suspend:  r.suspend.Load,
		})
		var (
			res *executor.Result
			err error
		)
		if !resumed {
			res, err = exec.Execute(r.g, plan)
		} else {
			rex, ok := exec.(ResumableExec)
			if !ok {
				return mergeResults(segs), fmt.Errorf("scheduler: executor for %s cannot resume", r.id)
			}
			res, err = rex.Resume(r.g, r.doneSnapshot())
		}
		if res != nil {
			segs = append(segs, res)
		}
		if !errors.Is(err, executor.ErrSuspended) {
			return mergeResults(segs), err
		}
		if res != nil {
			r.mu.Lock()
			r.doneSet = res.Intermediates
			r.mu.Unlock()
		}
		if !s.parkSuspended(r) {
			return mergeResults(segs), ErrCanceled
		}
		resumed = true
	}
}

// parkSuspended lands a suspension: revoke the lease, move the run to the
// suspended set, leave the cooperative clock, and park until a Resume grant
// (returns true) or cancellation (returns false). The caller's goroutine is
// the running party on entry; on a true return it is the running party of a
// fresh seat.
func (s *Scheduler) parkSuspended(r *Run) bool {
	r.suspend.Store(false)
	now := s.clock.Now()

	s.mu.Lock()
	r.mu.Lock()
	lease := r.lease
	oldParty := r.party
	r.lease = nil
	r.leasedNodes = 0
	r.leasedCores = 0
	r.leasedMemMB = 0
	r.party = nil
	r.status = StatusSuspended
	r.preemptions++
	r.suspendedAt = now
	if r.running {
		r.ranFor += now - r.runningSince
		r.running = false
	}
	latency := time.Duration(-1)
	if r.preemptPending {
		latency = now - r.preemptAskedAt
		r.preemptLatency += latency
		r.preemptPending = false
	}
	r.mu.Unlock()
	nodes := 0
	if lease != nil {
		nodes = lease.Size()
	}
	dropped := s.cluster.RevokeReservation(lease)
	delete(s.active, r.id)
	s.suspended[r.id] = r
	s.idx.suspendLanded(r, now)
	suspendFields := map[string]float64{"nodes": float64(nodes), "droppedContainers": float64(dropped)}
	if latency >= 0 {
		suspendFields["latencySec"] = latency.Seconds()
	}
	s.tracer.Emit(trace.Event{
		Type: trace.EvRunSuspend, RunID: r.id, Operator: r.workflow,
		Fields: suspendFields,
	}.At(now))
	s.tracer.Emit(trace.Event{
		Type: trace.EvLeaseRevoke, RunID: r.id,
		Fields: map[string]float64{"nodes": float64(nodes)},
	}.At(now))
	s.mu.Unlock()

	// Hand the freed capacity to the policy before leaving the clock: the
	// preemptor (or any waiting run) joins as a party first, so the party
	// count never drains to zero mid-preemption.
	s.schedule()
	oldParty.Leave()

	<-r.resumeCh
	// A wake without a re-granted party means cancellation; with one, the
	// run proceeds (the executor observes the cancel flag at its next
	// decision point if both raced in).
	r.mu.Lock()
	party := r.party
	r.mu.Unlock()
	if party == nil {
		return false
	}
	party.Await()
	r.mu.Lock()
	r.status = StatusRunning
	r.mu.Unlock()
	return true
}

// runParty is the per-run goroutine: it awaits its dispatch turn, plans,
// executes confined to the (elastic) lease — possibly across several
// suspend/resume segments — and finishes, scheduling successors before
// leaving the cooperative clock.
func (s *Scheduler) runParty(r *Run) {
	r.party.Await()

	var (
		plan *planner.Plan
		res  *executor.Result
		err  error
	)
	switch {
	case r.canceled.Load():
		err = ErrCanceled
	default:
		plan, err = s.plan(r.g)
		if err == nil {
			res, err = s.executeSegments(r, plan)
			if errors.Is(err, executor.ErrCanceled) {
				err = ErrCanceled
			}
		}
	}

	now := s.clock.Now()
	status := StatusSucceeded
	switch {
	case errors.Is(err, ErrCanceled):
		status = StatusCanceled
	case err != nil:
		status = StatusFailed
	}
	r.mu.Lock()
	r.status = status
	r.plan = plan
	r.result = res
	r.err = err
	r.finishedAt = now
	if r.running {
		r.ranFor += now - r.runningSince
		r.running = false
	}
	started := r.startedAt
	lease := r.lease
	party := r.party
	r.lease = nil
	r.party = nil
	r.mu.Unlock()

	ev := trace.Event{
		Type: trace.EvRunFinish, RunID: r.id, Operator: r.workflow,
		Fields: map[string]float64{"makespanSec": (now - started).Seconds()},
	}
	if status == StatusCanceled {
		ev = trace.Event{Type: trace.EvRunCancel, RunID: r.id, Operator: r.workflow}
	} else if err != nil {
		ev.Error = err.Error()
	}
	s.tracer.Emit(ev.At(now))

	s.mu.Lock()
	if lease != nil {
		nodes := lease.Size()
		s.cluster.ReleaseReservation(lease)
		s.tracer.Emit(trace.Event{
			Type: trace.EvLeaseRevoke, RunID: r.id,
			Fields: map[string]float64{"nodes": float64(nodes)},
		}.At(now))
	}
	if _, ok := s.active[r.id]; ok {
		delete(s.active, r.id)
		s.idx.finishedActive(r, now)
	}
	if _, ok := s.suspended[r.id]; ok {
		delete(s.suspended, r.id)
		s.idx.wokeSuspended(r, now)
	}
	s.finalizeRecordLocked(r)
	s.mu.Unlock()

	// Schedule successors before leaving: the party count never touches
	// zero mid-drain, so the cooperative clock keeps flowing from run to
	// run.
	close(r.done)
	if party != nil {
		s.schedule()
		party.Leave()
	} else {
		s.schedule()
	}
}
