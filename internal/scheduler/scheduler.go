// Package scheduler multiplexes several workflow executions over the shared
// simulated cluster and the single virtual clock — the multi-tenant layer of
// the platform (the paper's IReS instance is a shared service: many users
// submit abstract workflows against one YARN cluster).
//
// The design splits arbitration in two:
//
//   - Admission: a pluggable Policy decides when a queued run may start and
//     how many whole nodes it leases (cluster.Reservation). Node-granular
//     leases make oversubscription structurally impossible and keep admitted
//     runs from starving each other of containers.
//   - Cooperation: every admitted run executes on its own goroutine but
//     blocks on virtual time through a vtime.Party, so at most one run
//     executes at any instant and the interleaving is a pure function of the
//     virtual-time schedule. Fixed seed in, byte-identical traces out — even
//     under the race detector.
package scheduler

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// ErrCanceled indicates the run was canceled before or during execution.
var ErrCanceled = errors.New("scheduler: run canceled")

// Status is the lifecycle state of a submitted run.
type Status int

const (
	StatusQueued Status = iota
	StatusRunning
	StatusSucceeded
	StatusFailed
	StatusCanceled
)

// String returns the lowercase status name.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusSucceeded:
		return "succeeded"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s >= StatusSucceeded }

// Snapshot is a point-in-time view of a run, safe to serialize.
type Snapshot struct {
	ID       string `json:"id"`
	Workflow string `json:"workflow,omitempty"`
	Status   string `json:"status"`
	// LeasedNodes is the node quota granted at admission (0 while queued).
	LeasedNodes int `json:"leasedNodes,omitempty"`
	// Virtual-time marks, in seconds since simulation start. FinishedSec is
	// meaningful only for terminal runs.
	SubmittedSec float64 `json:"submittedSec"`
	StartedSec   float64 `json:"startedSec,omitempty"`
	FinishedSec  float64 `json:"finishedSec,omitempty"`
	// MakespanSec is the run's execution duration (terminal runs only).
	MakespanSec float64 `json:"makespanSec,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// Run is the handle of one submitted workflow.
type Run struct {
	id       string
	workflow string
	g        *workflow.Graph
	sched    *Scheduler

	canceled atomic.Bool
	done     chan struct{}

	mu          sync.Mutex
	status      Status
	lease       *cluster.Reservation
	party       *vtime.Party
	plan        *planner.Plan
	result      *executor.Result
	err         error
	submittedAt time.Duration
	startedAt   time.Duration
	finishedAt  time.Duration
}

// ID returns the scheduler-unique run id (also stamped on trace events).
func (r *Run) ID() string { return r.id }

// Wait blocks until the run reaches a terminal state and returns its plan,
// execution result and error. It kicks the cooperative clock, so waiting on
// a freshly submitted batch starts it.
func (r *Run) Wait() (*planner.Plan, *executor.Result, error) {
	r.sched.clock.Kick()
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.plan, r.result, r.err
}

// Status returns a point-in-time snapshot of the run.
func (r *Run) Status() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		ID:           r.id,
		Workflow:     r.workflow,
		Status:       r.status.String(),
		SubmittedSec: r.submittedAt.Seconds(),
	}
	if r.lease != nil {
		snap.LeasedNodes = r.lease.Size()
	}
	if r.status >= StatusRunning {
		snap.StartedSec = r.startedAt.Seconds()
	}
	if r.status.Terminal() {
		snap.FinishedSec = r.finishedAt.Seconds()
		snap.MakespanSec = (r.finishedAt - r.startedAt).Seconds()
	}
	if r.err != nil {
		snap.Error = r.err.Error()
	}
	return snap
}

// Done exposes the run's completion channel.
func (r *Run) Done() <-chan struct{} { return r.done }

// Cancel requests cancellation: a queued run is removed from the queue
// immediately, a running one stops at its next decision point (in-flight
// attempts drain first so no containers leak). Cancel is asynchronous; use
// Wait to observe the terminal state.
func (r *Run) Cancel() {
	r.canceled.Store(true)
	r.sched.dropIfQueued(r)
	// A running party notices the flag at its next decision point; kick in
	// case every party is parked and the clock needs a push.
	r.sched.clock.Kick()
}

// Policy decides admission: when a queued run may start and how many whole
// nodes it leases. Implementations must be pure functions of their inputs —
// admission happens inside the scheduler lock.
type Policy interface {
	Name() string
	// Quota returns the node lease size for the next admission given the
	// cluster's total node count, the currently unreserved healthy nodes,
	// and the number of active and queued runs. Returning <= 0 holds
	// admission until the state changes.
	Quota(totalNodes, freeNodes, active, queued int) int
}

// FIFO admits one run at a time and leases it every node: strict submission
// order, zero inter-run interference, serialized makespans.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Quota implements Policy.
func (FIFO) Quota(totalNodes, freeNodes, active, queued int) int {
	if active > 0 {
		return 0
	}
	return totalNodes
}

// FairShare admits up to MaxConcurrent runs, each leasing an equal slice of
// the cluster. Contended workloads overlap instead of serializing, trading
// per-run speed for throughput.
type FairShare struct {
	// MaxConcurrent bounds simultaneously admitted runs (min 1).
	MaxConcurrent int
}

// Name implements Policy.
func (f FairShare) Name() string { return fmt.Sprintf("fair-share(%d)", f.slots()) }

func (f FairShare) slots() int {
	if f.MaxConcurrent < 1 {
		return 1
	}
	return f.MaxConcurrent
}

// Quota implements Policy.
func (f FairShare) Quota(totalNodes, freeNodes, active, queued int) int {
	k := f.slots()
	if active >= k {
		return 0
	}
	share := totalNodes / k
	if share < 1 {
		share = 1
	}
	return share
}

// Exec runs one planned workflow; *executor.Executor satisfies it.
type Exec interface {
	Execute(g *workflow.Graph, plan *planner.Plan) (*executor.Result, error)
}

// Config wires a Scheduler.
type Config struct {
	Clock   *vtime.Clock
	Cluster *cluster.Cluster
	// Policy is the admission policy (default FIFO).
	Policy Policy
	// Plan produces the materialized plan for an admitted run. It is called
	// inside the run's party, so concurrent planning is serialized and
	// deterministic.
	Plan func(g *workflow.Graph) (*planner.Plan, error)
	// NewExecutor builds the per-run executor. The scheduler hands it the
	// run's lease and cooperative party plus a cancellation probe; the
	// implementation must confine the executor to them.
	NewExecutor func(runID string, lease *cluster.Reservation, party *vtime.Party, canceled func() bool) Exec
	// Tracer receives run lifecycle events; nil discards them.
	Tracer trace.Tracer
}

// Scheduler is the multi-workflow submission queue + admission controller.
// It is safe for concurrent use.
type Scheduler struct {
	clock   *vtime.Clock
	cluster *cluster.Cluster
	policy  Policy
	plan    func(g *workflow.Graph) (*planner.Plan, error)
	newExec func(runID string, lease *cluster.Reservation, party *vtime.Party, canceled func() bool) Exec
	tracer  trace.Tracer

	mu     sync.Mutex
	nextID int
	queue  []*Run
	active map[string]*Run
	all    []*Run // submission order
}

// New builds a scheduler; Clock, Cluster, Plan and NewExecutor are required.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Clock == nil || cfg.Cluster == nil || cfg.Plan == nil || cfg.NewExecutor == nil {
		return nil, fmt.Errorf("scheduler: Clock, Cluster, Plan and NewExecutor are required")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = FIFO{}
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Nop()
	}
	return &Scheduler{
		clock:   cfg.Clock,
		cluster: cfg.Cluster,
		policy:  policy,
		plan:    cfg.Plan,
		newExec: cfg.NewExecutor,
		tracer:  tracer,
		active:  make(map[string]*Run),
	}, nil
}

// Policy returns the active admission policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Submit enqueues a workflow and returns its run handle. Admission is
// attempted immediately, but no admitted run executes until the cooperative
// clock is kicked (Run.Wait, Drain or Start) — so a batch of Submit calls is
// deterministic regardless of goroutine scheduling.
func (s *Scheduler) Submit(g *workflow.Graph) *Run {
	return s.SubmitNamed(g.Target, g)
}

// SubmitNamed is Submit with an explicit workflow label for status listings.
func (s *Scheduler) SubmitNamed(name string, g *workflow.Graph) *Run {
	s.mu.Lock()
	s.nextID++
	r := &Run{
		id:          fmt.Sprintf("run-%03d", s.nextID),
		workflow:    name,
		g:           g,
		sched:       s,
		done:        make(chan struct{}),
		status:      StatusQueued,
		submittedAt: s.clock.Now(),
	}
	s.queue = append(s.queue, r)
	s.all = append(s.all, r)
	depth := len(s.queue)
	s.mu.Unlock()

	s.tracer.Emit(trace.Event{
		Type: trace.EvRunSubmit, RunID: r.id, Operator: name,
		Fields: map[string]float64{"queueDepth": float64(depth)},
	}.At(r.submittedAt))

	s.admit()
	return r
}

// Start kicks the cooperative clock so admitted runs begin executing.
func (s *Scheduler) Start() { s.clock.Kick() }

// Drain waits until every submitted run (including ones submitted while
// draining) reaches a terminal state.
func (s *Scheduler) Drain() {
	for {
		s.mu.Lock()
		pending := make([]*Run, 0, len(s.queue)+len(s.active))
		pending = append(pending, s.queue...)
		for _, r := range s.active {
			pending = append(pending, r)
		}
		s.mu.Unlock()
		if len(pending) == 0 {
			return
		}
		s.clock.Kick()
		for _, r := range pending {
			<-r.done
		}
	}
}

// Runs returns snapshots of every submitted run in submission order.
func (s *Scheduler) Runs() []Snapshot {
	s.mu.Lock()
	runs := append([]*Run(nil), s.all...)
	s.mu.Unlock()
	out := make([]Snapshot, len(runs))
	for i, r := range runs {
		out[i] = r.Status()
	}
	return out
}

// Get returns the run with the given id.
func (s *Scheduler) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.all {
		if r.id == id {
			return r, true
		}
	}
	return nil, false
}

// QueueDepth reports the number of queued (not yet admitted) runs.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// ActiveRuns reports the number of admitted, unfinished runs.
func (s *Scheduler) ActiveRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// admit runs the admission loop under the scheduler lock.
func (s *Scheduler) admit() {
	type admitted struct {
		r     *Run
		nodes int
	}
	var started []admitted
	s.mu.Lock()
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.canceled.Load() {
			s.queue = s.queue[1:]
			s.finalizeCanceled(head)
			continue
		}
		total := len(s.cluster.Nodes())
		free := s.cluster.UnreservedHealthy()
		quota := s.policy.Quota(total, free, len(s.active), len(s.queue))
		if quota <= 0 {
			break
		}
		if quota > free {
			// Progress guarantee: with nothing running, waiting for more
			// free nodes would wait forever — shrink to what exists.
			if len(s.active) > 0 || free == 0 {
				break
			}
			quota = free
		}
		lease, err := s.cluster.Reserve(quota)
		if err != nil {
			break
		}
		s.queue = s.queue[1:]
		now := s.clock.Now()
		head.mu.Lock()
		head.status = StatusRunning
		head.lease = lease
		head.party = s.clock.Join()
		head.startedAt = now
		head.mu.Unlock()
		s.active[head.id] = head
		started = append(started, admitted{r: head, nodes: lease.Size()})
	}
	s.mu.Unlock()

	for _, a := range started {
		s.tracer.Emit(trace.Event{
			Type: trace.EvRunAdmit, RunID: a.r.id, Operator: a.r.workflow,
			Fields: map[string]float64{"nodes": float64(a.nodes)},
		}.At(a.r.startedAt))
		go s.runParty(a.r)
	}
}

// finalizeCanceled finishes a run that was canceled while still queued.
// Caller holds s.mu.
func (s *Scheduler) finalizeCanceled(r *Run) {
	now := s.clock.Now()
	r.mu.Lock()
	r.status = StatusCanceled
	r.err = ErrCanceled
	r.startedAt = now
	r.finishedAt = now
	r.mu.Unlock()
	s.tracer.Emit(trace.Event{Type: trace.EvRunCancel, RunID: r.id, Operator: r.workflow}.At(now))
	close(r.done)
}

// dropIfQueued removes a canceled run from the queue (no-op when already
// admitted; the running party observes the flag itself).
func (s *Scheduler) dropIfQueued(r *Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == r {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.finalizeCanceled(r)
			return
		}
	}
}

// runParty is the per-run goroutine: it awaits its dispatch turn, plans,
// executes confined to the lease, and finishes — admitting successors
// before leaving the cooperative clock.
func (s *Scheduler) runParty(r *Run) {
	r.party.Await()

	var (
		plan *planner.Plan
		res  *executor.Result
		err  error
	)
	switch {
	case r.canceled.Load():
		err = ErrCanceled
	default:
		plan, err = s.plan(r.g)
		if err == nil {
			exec := s.newExec(r.id, r.lease, r.party, r.canceled.Load)
			res, err = exec.Execute(r.g, plan)
			if errors.Is(err, executor.ErrCanceled) {
				err = ErrCanceled
			}
		}
	}

	now := s.clock.Now()
	status := StatusSucceeded
	switch {
	case errors.Is(err, ErrCanceled):
		status = StatusCanceled
	case err != nil:
		status = StatusFailed
	}
	r.mu.Lock()
	r.status = status
	r.plan = plan
	r.result = res
	r.err = err
	r.finishedAt = now
	started := r.startedAt
	lease := r.lease
	r.mu.Unlock()

	ev := trace.Event{
		Type: trace.EvRunFinish, RunID: r.id, Operator: r.workflow,
		Fields: map[string]float64{"makespanSec": (now - started).Seconds()},
	}
	if status == StatusCanceled {
		ev = trace.Event{Type: trace.EvRunCancel, RunID: r.id, Operator: r.workflow}
	} else if err != nil {
		ev.Error = err.Error()
	}
	s.tracer.Emit(ev.At(now))

	s.mu.Lock()
	s.cluster.ReleaseReservation(lease)
	delete(s.active, r.id)
	s.mu.Unlock()

	// Admit successors before leaving: the party count never touches zero
	// mid-drain, so the cooperative clock keeps flowing from run to run.
	s.admit()

	close(r.done)
	r.party.Leave()
}
