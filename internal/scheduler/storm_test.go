package scheduler

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
)

// stormRun fires a randomized multi-tenant burst — staggered submissions
// with mixed tenants/users/priorities/deadlines, cancellations at arbitrary
// points, and node fail/restore — at one policy, and cross-checks the
// incrementally maintained indexed state against a from-scratch naive
// rebuild (CheckIndex) at every quiescent point. The schedule is a pure
// function of the seed, so failures replay exactly.
func stormRun(t *testing.T, policy Policy, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	const nRuns = 30
	specs := make(map[string]susSpec, nRuns)
	estimates := make(map[string][2]float64, nRuns)
	type sub struct {
		at       time.Duration
		opts     SubmitOptions
		target   string
		cancelAt time.Duration // 0 = never
	}
	subs := make([]sub, nRuns)
	tenants := []string{"acme", "beta", "gamma"}
	users := []string{"ana", "bob", "cat"}
	for i := range subs {
		id := fmt.Sprintf("run-%03d", i+1)
		steps := 1 + rng.Intn(5)
		stepDur := time.Duration(3+rng.Intn(8)) * time.Second
		specs[id] = susSpec{steps: steps, stepDur: stepDur}
		target := fmt.Sprintf("wf-%d", i)
		est := (time.Duration(steps) * stepDur).Seconds()
		estimates[target] = [2]float64{est, 1 + 10*rng.Float64()}
		at := time.Duration(rng.Intn(240)) * time.Second
		s := sub{
			at:     at,
			target: target,
			opts: SubmitOptions{
				Tenant:   tenants[rng.Intn(len(tenants))],
				User:     users[rng.Intn(len(users))],
				Priority: rng.Intn(5) - 2,
			},
		}
		if rng.Intn(2) == 0 {
			s.opts.Deadline = at + time.Duration(1.5*est)*time.Second + 10*time.Second
		}
		if rng.Intn(5) == 0 {
			s.cancelAt = at + time.Duration(rng.Intn(30))*time.Second
		}
		if rng.Intn(3) == 0 {
			// A third of the runs ask for per-node slices instead of whole
			// nodes, stressing the multi-dimensional counters alongside the
			// node-granular paths.
			s.opts.DemandCores = 1 + rng.Intn(6)
			s.opts.DemandMemMB = 1024 * (1 + rng.Intn(10))
		}
		subs[i] = s
	}

	rig := newSusRig(t, 6, policy, specs, estimates)
	// Memory overcommit plus a seeded OOM killer: the churn arcs below
	// oversubscribe nodes on purpose and the kill decision replays per seed.
	if err := rig.clu.SetMemOvercommit(1.3); err != nil {
		t.Fatal(err)
	}
	oomRng := rand.New(rand.NewSource(seed ^ 0x6f6f6d))
	rig.clu.SetOOMKiller(func(string, int) bool { return oomRng.Intn(2) == 0 })
	// Checks run inside clock callbacks, i.e. on party goroutines — a
	// t.Fatalf there would Goexit the run mid-execution and wedge the
	// scheduler. Record the first failure and report it from the test
	// goroutine after the drive loop.
	var (
		checkMu  sync.Mutex
		checkErr error
	)
	check := func(now time.Duration) {
		err := rig.sched.CheckIndex()
		if err == nil {
			// Per-dimension slice accounting is cross-checked from scratch
			// on the cluster side at the same quiescent points.
			err = rig.clu.CheckInvariants()
		}
		if err != nil {
			checkMu.Lock()
			if checkErr == nil {
				checkErr = fmt.Errorf("t=%v: %w", now, err)
			}
			checkMu.Unlock()
		}
	}

	// Submissions are scheduled in run-id order so ids match specs even when
	// several land on the same tick.
	runs := make([]*Run, nRuns)
	for i, s := range subs {
		i, s := i, s
		rig.clock.Schedule(s.at, func(now time.Duration) {
			runs[i] = rig.sched.SubmitWith(graph(s.target), s.opts)
			check(now)
		})
		if s.cancelAt > 0 {
			rig.clock.Schedule(s.cancelAt, func(now time.Duration) {
				if r := runs[i]; r != nil {
					r.Cancel()
				}
				check(now)
			})
		}
	}
	// Two fail/restore arcs stress the free/reserved delta counters and the
	// safety net under shrunken capacity.
	for k, node := range []string{"node2", "node5"} {
		failAt := time.Duration(40+80*k) * time.Second
		if err := rig.clu.FailNode(node, failAt); err != nil {
			t.Fatal(err)
		}
		node := node
		rig.clock.Schedule(failAt+35*time.Second, func(now time.Duration) {
			if err := rig.clu.RestoreNode(node); err != nil {
				checkMu.Lock()
				if checkErr == nil {
					checkErr = err
				}
				checkMu.Unlock()
				return
			}
			rig.sched.schedule()
			check(now)
		})
	}
	// Churn arcs drive actual memory usage past physical capacity: pairs of
	// memory-heavy slice reservations that first-fit onto the same node, so
	// the second allocation triggers the OOM sweep (kill or tolerate per the
	// seeded hook). Failed reservations are fine — under FIFO the scheduler
	// may hold every node — the arcs only fire where slices fit.
	for k := 0; k < 6; k++ {
		at := time.Duration(15+40*k) * time.Second
		holdSec := 10 + rng.Intn(20)
		rig.clock.Schedule(at, func(now time.Duration) {
			var ctrs []*cluster.Container
			var leases []*cluster.Reservation
			for j := 0; j < 2; j++ {
				r, err := rig.clu.ReserveSlices(1, 1, 9216)
				if err != nil {
					break
				}
				leases = append(leases, r)
				if got, err := rig.clu.AllocateIn(r, 1, 1, 9216); err == nil {
					ctrs = append(ctrs, got...)
				}
			}
			check(now)
			rig.clock.Schedule(now+time.Duration(holdSec)*time.Second, func(now time.Duration) {
				rig.clu.ReleaseAll(ctrs)
				for _, r := range leases {
					rig.clu.ReleaseReservation(r)
				}
				rig.sched.schedule()
				check(now)
			})
		})
	}
	// Random per-dimension resizes of live slice leases: the cluster-side
	// resize machinery must stay invariant-preserving under scheduler load
	// (the scheduler's cached footprint may go stale; both index views share
	// it, so CheckIndex is unaffected).
	for tick := 25 * time.Second; tick < 280*time.Second; tick += 45 * time.Second {
		dc, dm := 1+rng.Intn(4), 1024*(1+rng.Intn(8))
		rig.clock.Schedule(tick, func(now time.Duration) {
			for _, r := range runs {
				if r == nil {
					continue
				}
				r.mu.Lock()
				lease := r.lease
				r.mu.Unlock()
				if lease == nil || lease.Released() {
					continue
				}
				if sc, _ := lease.SliceDims(); sc == 0 {
					continue
				}
				_ = rig.clu.ResizeSlice(lease, dc, dm)
				check(now)
				break
			}
		})
	}
	// Periodic sweeps catch drift between event-driven checks.
	for tick := 5 * time.Second; tick < 300*time.Second; tick += 15 * time.Second {
		rig.clock.Schedule(tick, func(now time.Duration) { check(now) })
	}

	// Drain only advances virtual time while runs are live; the storm's
	// submissions all arrive from scheduled callbacks, so step the clock
	// across idle gaps until the whole schedule has fired.
	for {
		rig.sched.Drain()
		at, ok := rig.clock.NextEventAt()
		if !ok {
			break
		}
		rig.clock.AdvanceTo(at)
	}
	check(rig.clock.Now())
	checkMu.Lock()
	fatal := checkErr
	checkMu.Unlock()
	if fatal != nil {
		t.Fatal(fatal)
	}

	snaps := rig.sched.Runs()
	if len(snaps) != nRuns {
		t.Fatalf("Runs() = %d entries, want %d", len(snaps), nRuns)
	}
	for _, snap := range snaps {
		switch snap.Status {
		case "succeeded", "failed", "canceled":
		default:
			t.Fatalf("non-terminal run after drain: %+v", snap)
		}
		// Terminal pruning: the live index forgets the run, the frozen
		// record still serves it.
		if _, ok := rig.sched.Get(snap.ID); ok {
			t.Fatalf("%s terminal but still live in Get", snap.ID)
		}
		if got, ok := rig.sched.SnapshotOf(snap.ID); !ok || got.Status != snap.Status {
			t.Fatalf("SnapshotOf(%s) = %+v, %v", snap.ID, got, ok)
		}
	}
}

// TestIndexStorm cross-validates the indexed scheduler state against the
// naive rebuild across every policy and several seeds.
func TestIndexStorm(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return FIFO{} },
		func() Policy { return FairShare{MaxConcurrent: 2} },
		func() Policy { return Deadline{} },
		func() Policy {
			return CostQuota{Budgets: map[string]float64{"acme": 12, "beta": 18}, DefaultBudget: 9}
		},
		func() Policy { return HierarchicalFairShare{MaxConcurrent: 3} },
		func() Policy {
			return DRF{Weights: map[string]float64{"acme": 2}, MaxConcurrent: 3}
		},
	}
	for _, mk := range policies {
		for seed := int64(1); seed <= 3; seed++ {
			p := mk()
			t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
				stormRun(t, mk(), seed)
			})
		}
	}
}
