package planner

import (
	"math"
	"testing"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/workflow"
)

// diamondGraph builds src -> a -> da; da -> b -> db; da -> c -> dc;
// db,dc -> join -> out — the shape where the DP's tree relaxation charges the
// shared producer a once per consuming branch.
func diamondGraph(t *testing.T) (*workflow.Graph, *operator.Library, stubEstimator) {
	t.Helper()
	lib := mustLib(t, map[string]string{
		"a_java":    "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=a",
		"b_java":    "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=b",
		"c_java":    "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=c",
		"join_java": "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=join\nConstraints.Input.number=2",
	})
	est := stubEstimator{
		"a_java":    {time: func(n float64) float64 { return 5 }, outFactor: 1},
		"b_java":    {time: func(n float64) float64 { return 5 }, outFactor: 1},
		"c_java":    {time: func(n float64) float64 { return 5 }, outFactor: 1},
		"join_java": {time: func(n float64) float64 { return 5 }, outFactor: 1},
	}
	g := workflow.NewGraph()
	g.AddDataset("src", operator.NewDataset("src", metadata.MustParse("Execution.path=/src\nOptimization.documents=100\nOptimization.size=1000")))
	for _, op := range []string{"a", "b", "c", "join"} {
		g.AddOperator(op, operator.NewAbstract(op, metadata.MustParse("Constraints.OpSpecification.Algorithm.name="+op)))
	}
	for _, d := range []string{"da", "db", "dc", "out"} {
		g.AddDataset(d, nil)
	}
	for _, e := range [][2]string{
		{"src", "a"}, {"a", "da"},
		{"da", "b"}, {"b", "db"},
		{"da", "c"}, {"c", "dc"},
		{"db", "join"}, {"dc", "join"}, {"join", "out"},
	} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetTarget("out")
	return g, lib, est
}

// assertTotalsMatchSteps checks a plan's headline estimates against its own
// deduplicated steps: cost is the sum over unique steps, time the critical
// path over DependsOn.
func assertTotalsMatchSteps(t *testing.T, plan *Plan) {
	t.Helper()
	wantTime, wantCost := plan.StepTotals()
	if math.Abs(plan.EstTimeSec-wantTime) > 1e-9 {
		t.Errorf("EstTimeSec = %v, step-derived critical path = %v\n%s", plan.EstTimeSec, wantTime, plan.Describe())
	}
	if math.Abs(plan.EstCost-wantCost) > 1e-9 {
		t.Errorf("EstCost = %v, step-derived sum = %v\n%s", plan.EstCost, wantCost, plan.Describe())
	}
}

// Regression for the diamond double-count: the DP table relaxes the workflow
// as a tree, so before extraction the shared producer's time/cost is charged
// once per consuming branch. The extracted plan dedups steps; its headline
// estimates must be recomputed from those steps, not inherited from the
// relaxed table entry.
func TestDiamondPlanTotalsMatchSteps(t *testing.T) {
	g, lib, est := diamondGraph(t)
	p := newPlanner(t, lib, est)
	plan, err := p.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	assertTotalsMatchSteps(t, plan)

	// Explicit ground truth: 4 unique 5s steps, critical path a -> b|c ->
	// join = 15s; cost = 4 steps x 5s x 16 nodes = 320. The tree-relaxed
	// table value would be 25s (a charged under both b and c).
	if math.Abs(plan.EstTimeSec-15) > 1e-9 {
		t.Errorf("EstTimeSec = %v, want 15 (critical path, shared producer charged once)", plan.EstTimeSec)
	}
	if math.Abs(plan.EstCost-320) > 1e-9 {
		t.Errorf("EstCost = %v, want 320", plan.EstCost)
	}
	if got := p.cfg.Objective(plan.EstTimeSec, plan.EstCost); math.Abs(plan.EstObjective-got) > 1e-9 {
		t.Errorf("EstObjective = %v, want objective(%v, %v) = %v", plan.EstObjective, plan.EstTimeSec, plan.EstCost, got)
	}
}

// The Pareto extraction dedups the same way; every front member's totals
// must equal its step-derived totals.
func TestDiamondParetoTotalsMatchSteps(t *testing.T) {
	g, lib, est := diamondGraph(t)
	p := newPlanner(t, lib, est)
	plans, err := p.ParetoPlans(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("empty Pareto front")
	}
	for i, plan := range plans {
		assertTotalsMatchSteps(t, plan)
		if math.Abs(plan.EstTimeSec-15) > 1e-9 {
			t.Errorf("front[%d]: EstTimeSec = %v, want 15", i, plan.EstTimeSec)
		}
	}
}

// Replanning recomputes totals from deduplicated steps too.
func TestReplanTotalsMatchSteps(t *testing.T) {
	g, lib, est := diamondGraph(t)
	p := newPlanner(t, lib, est)
	done := []MaterializedIntermediate{{Dataset: "da", Records: 100, Bytes: 1000}}
	plan, err := p.Replan(g, done)
	if err != nil {
		t.Fatal(err)
	}
	assertTotalsMatchSteps(t, plan)
	// a is already materialized: b|c -> join = 10s critical path, 3 steps.
	if math.Abs(plan.EstTimeSec-10) > 1e-9 {
		t.Errorf("replan EstTimeSec = %v, want 10\n%s", plan.EstTimeSec, plan.Describe())
	}
}

// captureTracer records events for assertion.
type captureTracer struct{ events []trace.Event }

func (c *captureTracer) Emit(ev trace.Event) { c.events = append(c.events, ev) }

func TestPlannerEmitsPlanEvents(t *testing.T) {
	g, lib, est := diamondGraph(t)
	cap := &captureTracer{}
	p := newPlanner(t, lib, est, func(c *Config) { c.Tracer = cap })
	if _, err := p.Plan(g); err != nil {
		t.Fatal(err)
	}
	if len(cap.events) != 2 {
		t.Fatalf("got %d events, want plan.start + plan.finish: %+v", len(cap.events), cap.events)
	}
	start, finish := cap.events[0], cap.events[1]
	if start.Type != trace.EvPlanStart || finish.Type != trace.EvPlanFinish {
		t.Fatalf("event types = %s, %s", start.Type, finish.Type)
	}
	if start.Fields["nodes"] != float64(g.Len()) {
		t.Errorf("plan.start nodes = %v, want %d", start.Fields["nodes"], g.Len())
	}
	for _, f := range []string{"candidatesTried", "candidatesKept", "entriesKept", "steps", "estTimeSec", "estCost"} {
		if _, ok := finish.Fields[f]; !ok {
			t.Errorf("plan.finish missing field %q: %v", f, finish.Fields)
		}
	}
	if finish.Fields["steps"] != 4 {
		t.Errorf("plan.finish steps = %v, want 4", finish.Fields["steps"])
	}
	if finish.Fields["estTimeSec"] != 15 {
		t.Errorf("plan.finish estTimeSec = %v, want 15 (deduplicated)", finish.Fields["estTimeSec"])
	}
}
