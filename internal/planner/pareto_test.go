package planner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/workflow"
)

// costEstimator makes time and money trade off: fast engines are expensive.
type costEstimator map[string][2]float64 // op -> {time, money}

func (c costEstimator) Estimate(opName, target string, feats map[string]float64) (float64, bool) {
	tc, ok := c[opName]
	if !ok {
		return 0, false
	}
	switch target {
	case targetExecTime:
		return tc[0], true
	case targetCost:
		return tc[1], true
	case targetOutRecords:
		return feats["records"], true
	case targetOutBytes:
		return feats["bytes"], true
	}
	return 0, false
}

func TestParetoPlansTradeoff(t *testing.T) {
	est := costEstimator{
		// Fast-but-expensive vs slow-but-cheap alternatives per step.
		"TF_IDF_mahout": {10, 100},
		"TF_IDF_weka":   {50, 10},
		"kmeans_mahout": {10, 100},
		"kmeans_weka":   {50, 10},
	}
	p := newPlanner(t, textLib(t), est)
	plans, err := p.ParetoPlans(textWorkflow(t, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("expected a front with alternatives, got %d plan(s)", len(plans))
	}
	// Mutually non-dominated and time-sorted.
	for i := 1; i < len(plans); i++ {
		if plans[i].EstTimeSec < plans[i-1].EstTimeSec {
			t.Fatal("front not sorted by time")
		}
		if plans[i].EstCost >= plans[i-1].EstCost {
			t.Fatalf("front member %d dominated (time %f cost %f after %f/%f)",
				i, plans[i].EstTimeSec, plans[i].EstCost, plans[i-1].EstTimeSec, plans[i-1].EstCost)
		}
	}
	// The endpoints must agree with the single-objective planners.
	minTimePlan, err := p.Plan(textWorkflow(t, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].EstTimeSec > minTimePlan.EstTimeSec+1e-9 {
		t.Errorf("fastest front member (%.1f) slower than MinTime plan (%.1f)",
			plans[0].EstTimeSec, minTimePlan.EstTimeSec)
	}
	pCost := newPlanner(t, textLib(t), est, func(c *Config) { c.Objective = MinCost })
	minCostPlan, err := pCost.Plan(textWorkflow(t, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	last := plans[len(plans)-1]
	if last.EstCost > minCostPlan.EstCost+1e-9 {
		t.Errorf("cheapest front member (%.1f) pricier than MinCost plan (%.1f)",
			last.EstCost, minCostPlan.EstCost)
	}
	// Every front plan is structurally complete.
	for _, plan := range plans {
		if _, ok := plan.StepFor("TF_IDF"); !ok {
			t.Fatal("front plan missing TF_IDF step")
		}
		if _, ok := plan.StepFor("kmeans"); !ok {
			t.Fatal("front plan missing kmeans step")
		}
	}
}

func TestParetoSingleOptionCollapses(t *testing.T) {
	// With no trade-off (one impl strictly dominates), the front has one plan.
	est := costEstimator{
		"TF_IDF_mahout": {10, 10},
		"TF_IDF_weka":   {50, 50},
		"kmeans_mahout": {10, 10},
		"kmeans_weka":   {50, 50},
	}
	p := newPlanner(t, textLib(t), est)
	plans, err := p.ParetoPlans(textWorkflow(t, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("expected a single-point front, got %d", len(plans))
	}
	if s, _ := plans[0].StepFor("TF_IDF"); s.Op.Name != "TF_IDF_mahout" {
		t.Fatalf("dominant implementation not chosen: %s", s.Op.Name)
	}
}

func TestParetoNoPlan(t *testing.T) {
	p := newPlanner(t, textLib(t), costEstimator{})
	if _, err := p.ParetoPlans(textWorkflow(t, 10)); err == nil {
		t.Fatal("expected ErrNoPlan")
	}
}

// Property: on random chains, every front is mutually non-dominated and its
// fastest member matches the MinTime DP optimum.
func TestQuickParetoConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		est := costEstimator{
			"TF_IDF_mahout": {float64(r.Intn(50) + 1), float64(r.Intn(50) + 1)},
			"TF_IDF_weka":   {float64(r.Intn(50) + 1), float64(r.Intn(50) + 1)},
			"kmeans_mahout": {float64(r.Intn(50) + 1), float64(r.Intn(50) + 1)},
			"kmeans_weka":   {float64(r.Intn(50) + 1), float64(r.Intn(50) + 1)},
		}
		p, err := New(Config{Library: textLibQuick(), Estimator: est})
		if err != nil {
			return false
		}
		g := textWorkflowQuick()
		plans, err := p.ParetoPlans(g)
		if err != nil {
			return false
		}
		for i := range plans {
			for j := range plans {
				if i == j {
					continue
				}
				if plans[i].EstTimeSec <= plans[j].EstTimeSec && plans[i].EstCost <= plans[j].EstCost &&
					(plans[i].EstTimeSec < plans[j].EstTimeSec || plans[i].EstCost < plans[j].EstCost) {
					return false // j dominated but kept
				}
			}
		}
		ref, err := p.Plan(g)
		if err != nil {
			return false
		}
		return plans[0].EstTimeSec <= ref.EstTimeSec+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// textLibQuick mirrors textLib without *testing.T (for quick.Check bodies).
func textLibQuick() *operator.Library {
	lib := operator.NewLibrary()
	descs := map[string]string{
		"TF_IDF_mahout": "Constraints.Engine=Hadoop\nConstraints.OpSpecification.Algorithm.name=TF_IDF\nConstraints.Input0.Engine.FS=HDFS\nConstraints.Output0.Engine.FS=HDFS",
		"TF_IDF_weka":   "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=TF_IDF\nConstraints.Input0.Engine.FS=LFS\nConstraints.Output0.Engine.FS=LFS",
		"kmeans_mahout": "Constraints.Engine=Hadoop\nConstraints.OpSpecification.Algorithm.name=kmeans\nConstraints.Input0.Engine.FS=HDFS\nConstraints.Output0.Engine.FS=HDFS",
		"kmeans_weka":   "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=kmeans\nConstraints.Input0.Engine.FS=LFS\nConstraints.Output0.Engine.FS=LFS",
	}
	for name, d := range descs {
		if _, err := lib.AddOperatorDescription(name, d); err != nil {
			panic(err)
		}
	}
	return lib
}

// textWorkflowQuick mirrors textWorkflow without *testing.T.
func textWorkflowQuick() *workflow.Graph {
	g := workflow.NewGraph()
	ds := operator.NewDataset("crawlDocuments", metadata.MustParse(
		"Constraints.Engine.FS=HDFS\nExecution.path=hdfs:///crawl\nOptimization.documents=10000\nOptimization.size=50000000"))
	mustOK(g.AddDataset("crawlDocuments", ds))
	mustOK(g.AddOperator("TF_IDF", operator.NewAbstract("TF_IDF",
		metadata.MustParse("Constraints.OpSpecification.Algorithm.name=TF_IDF"))))
	mustOK(g.AddOperator("kmeans", operator.NewAbstract("kmeans",
		metadata.MustParse("Constraints.OpSpecification.Algorithm.name=kmeans"))))
	mustOK(g.AddDataset("d1", nil))
	mustOK(g.AddDataset("d2", nil))
	for _, e := range [][2]string{{"crawlDocuments", "TF_IDF"}, {"TF_IDF", "d1"}, {"d1", "kmeans"}, {"kmeans", "d2"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	if err := g.SetTarget("d2"); err != nil {
		panic(err)
	}
	return g
}

func mustOK[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
