package planner

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/trace"
)

// kmeansSparkDesc is a third kmeans implementation on an engine (Spark) no
// other operator uses, giving eviction-scope tests an engine whose footprint
// covers exactly one workflow node.
const kmeansSparkDesc = `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.Input0.Engine.FS=HDFS
Constraints.Input0.type=SequenceFile
Constraints.Output0.Engine.FS=HDFS
Constraints.Output0.type=SequenceFile
`

// sparkEstimator extends textEstimator with a (slow, never-winning) Spark
// kmeans so the third implementation is feasible but does not change plans.
func sparkEstimator() stubEstimator {
	est := textEstimator()
	est["kmeans_spark"] = stubOp{time: func(r float64) float64 { return 500 + r }, outFactor: 0.1}
	return est
}

// TestEvictionScope drives every typed invalidation channel against the
// two-operator text workflow and pins down exactly which node results each
// one evicts: footprint hits plus their downstream dependents, nothing more.
func TestEvictionScope(t *testing.T) {
	// The cached results per plan: node TF_IDF (matches Hadoop+Java ops) and
	// node kmeans (matches Hadoop+Java+Spark ops); kmeans is downstream of
	// TF_IDF.
	cases := []struct {
		name    string
		event   func(t *testing.T, p *Planner, lib *operator.Library)
		evicted uint64 // node results evicted by the event
		hits    uint64 // warm hits on the rebuild after the event
		misses  uint64 // re-evaluations on the rebuild after the event
		epochs  uint64 // wholesale flushes the event causes
	}{
		{
			name:  "engine event with no matching operators",
			event: func(t *testing.T, p *Planner, lib *operator.Library) { p.EngineAvailability("Flink") },
			// Applied as a partial event, but no footprint touches Flink.
			evicted: 0, hits: 2, misses: 0,
		},
		{
			name:  "engine event scoped to one node",
			event: func(t *testing.T, p *Planner, lib *operator.Library) { p.EngineAvailability("Spark") },
			// Only kmeans matches a Spark operator; it has no downstream
			// operator, so exactly one result goes.
			evicted: 1, hits: 1, misses: 1,
		},
		{
			name:  "engine event hitting every node",
			event: func(t *testing.T, p *Planner, lib *operator.Library) { p.EngineAvailability("Hadoop") },
			// Both nodes match a Hadoop operator.
			evicted: 2, hits: 0, misses: 2,
		},
		{
			name:    "profiler retrain scoped to one target",
			event:   func(t *testing.T, p *Planner, lib *operator.Library) { p.ProfilerRetrain("kmeans_weka") },
			evicted: 1, hits: 1, misses: 1,
		},
		{
			name:  "profiler retrain propagates through parent links",
			event: func(t *testing.T, p *Planner, lib *operator.Library) { p.ProfilerRetrain("TF_IDF_weka") },
			// TF_IDF is footprint-hit; kmeans read its output entries, so the
			// eviction walks the DP parent links down to it.
			evicted: 2, hits: 0, misses: 2,
		},
		{
			name:    "profiler retrain of an unknown operator",
			event:   func(t *testing.T, p *Planner, lib *operator.Library) { p.ProfilerRetrain("pagerank_giraph") },
			evicted: 0, hits: 2, misses: 0,
		},
		{
			name: "library removal scoped to the matching node",
			event: func(t *testing.T, p *Planner, lib *operator.Library) {
				if !lib.RemoveOperator("kmeans_spark") {
					t.Fatal("kmeans_spark not present")
				}
			},
			evicted: 1, hits: 1, misses: 1,
		},
		{
			name:  "untyped event falls back to wholesale flush",
			event: func(t *testing.T, p *Planner, lib *operator.Library) { p.ProfilerRetrain("") },
			// Wholesale: epoch bumps, everything misses, partial counters
			// untouched.
			evicted: 0, hits: 0, misses: 2, epochs: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lib := textLib(t)
			if _, err := lib.AddOperatorDescription("kmeans_spark", kmeansSparkDesc); err != nil {
				t.Fatal(err)
			}
			p := newPlanner(t, lib, sparkEstimator())
			ref, err := p.Plan(textWorkflow(t, 1000))
			if err != nil {
				t.Fatal(err)
			}
			before := p.CacheStats()

			tc.event(t, p, lib)
			got, err := p.Plan(textWorkflow(t, 1000))
			if err != nil {
				t.Fatal(err)
			}
			after := p.CacheStats()

			if d := after.EvictedEntries - before.EvictedEntries; d != tc.evicted {
				t.Fatalf("evicted %d node results, want %d (before=%+v after=%+v)", d, tc.evicted, before, after)
			}
			if d := after.Hits - before.Hits; d != tc.hits {
				t.Fatalf("rebuild hit %d, want %d (before=%+v after=%+v)", d, tc.hits, before, after)
			}
			if d := after.Misses - before.Misses; d != tc.misses {
				t.Fatalf("rebuild missed %d, want %d (before=%+v after=%+v)", d, tc.misses, before, after)
			}
			if d := after.Epoch - before.Epoch; d != tc.epochs {
				t.Fatalf("event caused %d wholesale flushes, want %d", d, tc.epochs)
			}
			if tc.epochs == 0 && after.PartialInvalidations == before.PartialInvalidations {
				t.Fatalf("typed event was not recorded as a partial invalidation: before=%+v after=%+v", before, after)
			}
			// None of these events change the winning plan (Spark never
			// wins, the stub estimator is static); warm-after-eviction
			// results must stay byte-identical.
			if got.Describe() != ref.Describe() {
				t.Fatalf("plan diverged after partial invalidation:\nbefore:\n%s\nafter:\n%s", ref.Describe(), got.Describe())
			}
		})
	}
}

// scaledEstimator wraps a stub estimator with a mutable per-operator scale
// factor, so flap-storm retrains actually change estimates (a stale cache
// entry would surface as a divergent plan).
type scaledEstimator struct {
	base  stubEstimator
	scale map[string]float64
}

func (s *scaledEstimator) Estimate(opName, target string, feats map[string]float64) (float64, bool) {
	v, ok := s.base.Estimate(opName, target, feats)
	if !ok {
		return 0, false
	}
	if m, has := s.scale[opName]; has && (target == targetExecTime || target == targetCost) {
		v *= m
	}
	return v, ok
}

// TestFlapStorm is the randomized partial-invalidation property test: a warm
// planner subjected to a random storm of engine flaps, profiler retrains and
// library add/removes must always produce the same plan bytes as a freshly
// built cold planner observing identical external state.
func TestFlapStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lib := textLib(t)
	est := &scaledEstimator{base: sparkEstimator(), scale: map[string]float64{}}
	ops := []string{"TF_IDF_mahout", "TF_IDF_weka", "kmeans_mahout", "kmeans_weka", "kmeans_spark"}
	engines := []string{"Hadoop", "Java", "Spark"}

	var mu sync.Mutex
	down := map[string]bool{}
	avail := func(name string) bool {
		mu.Lock()
		defer mu.Unlock()
		return !down[name]
	}

	warm := newPlanner(t, lib, est, func(c *Config) { c.EngineAvailable = avail })
	hasSpark := false
	for i := 0; i < 60; i++ {
		switch action := rng.Intn(4); action {
		case 0: // availability flip, with the typed hint a platform would send
			e := engines[rng.Intn(len(engines))]
			mu.Lock()
			down[e] = !down[e]
			mu.Unlock()
			warm.EngineAvailability(e)
		case 1: // availability flip with NO typed event (breaker half-open shape)
			e := engines[rng.Intn(len(engines))]
			mu.Lock()
			down[e] = !down[e]
			mu.Unlock()
		case 2: // profiler retrain: estimates for one operator change
			op := ops[rng.Intn(len(ops))]
			est.scale[op] = 0.5 + 2*rng.Float64()
			warm.ProfilerRetrain(op)
		case 3: // library churn
			if hasSpark {
				lib.RemoveOperator("kmeans_spark")
			} else if _, err := lib.AddOperatorDescription("kmeans_spark", kmeansSparkDesc); err != nil {
				t.Fatal(err)
			}
			hasSpark = !hasSpark
		}

		cold := newPlanner(t, lib, est, func(c *Config) { c.EngineAvailable = avail })
		warmPlan, warmErr := warm.Plan(textWorkflow(t, 1000))
		coldPlan, coldErr := cold.Plan(textWorkflow(t, 1000))
		if (warmErr == nil) != (coldErr == nil) {
			t.Fatalf("step %d: warm err=%v cold err=%v", i, warmErr, coldErr)
		}
		if warmErr != nil {
			continue // both infeasible (every engine down) — consistent
		}
		if warmPlan.Describe() != coldPlan.Describe() {
			t.Fatalf("step %d: warm plan diverged from cold rebuild:\ncold:\n%s\nwarm:\n%s",
				i, coldPlan.Describe(), warmPlan.Describe())
		}
	}
	cs := warm.CacheStats()
	if cs.PartialInvalidations == 0 || cs.EvictedEntries == 0 {
		t.Fatalf("storm exercised no partial invalidation: %+v", cs)
	}
	if cs.Hits == 0 {
		t.Fatalf("storm never hit warm entries: %+v", cs)
	}
}

// TestPartialInvalidationByteIdentical extends the warm-vs-cold identity
// guard to the partial-eviction path: after an engine flap is applied by
// typed event + fingerprint, the warm planner's plan AND trace bytes must
// match a cold planner built under the same availability.
func TestPartialInvalidationByteIdentical(t *testing.T) {
	lib := textLib(t)
	est := textEstimator()

	var mu sync.Mutex
	javaUp := true
	avail := func(name string) bool {
		mu.Lock()
		defer mu.Unlock()
		return javaUp || name != "Java"
	}
	setJava := func(on bool) { mu.Lock(); javaUp = on; mu.Unlock() }

	warmRec := trace.NewRecorder(0)
	warm := newPlanner(t, lib, est, func(c *Config) { c.Tracer = warmRec; c.EngineAvailable = avail })
	if _, err := warm.Plan(textWorkflow(t, 1000)); err != nil {
		t.Fatal(err)
	}

	// Flap Java down, then back up; each replan must match a cold planner
	// under the same availability, trace bytes included.
	for step, state := range []bool{false, true} {
		setJava(state)
		warm.EngineAvailability("Java")
		before := len(warmRec.Events())
		warmPlan, err := warm.Plan(textWorkflow(t, 1000))
		if err != nil {
			t.Fatal(err)
		}

		coldRec := trace.NewRecorder(0)
		cold := newPlanner(t, lib, est, func(c *Config) { c.Tracer = coldRec; c.EngineAvailable = avail })
		coldPlan, err := cold.Plan(textWorkflow(t, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if warmPlan.Describe() != coldPlan.Describe() {
			t.Fatalf("step %d: Describe diverged:\ncold:\n%s\nwarm:\n%s", step, coldPlan.Describe(), warmPlan.Describe())
		}
		coldEvents := coldRec.Events()
		warmEvents := warmRec.Events()[before:]
		if len(warmEvents) != len(coldEvents) {
			t.Fatalf("step %d: event counts: cold=%d warm=%d", step, len(coldEvents), len(warmEvents))
		}
		for i := range warmEvents {
			warmEvents[i].Seq = coldEvents[i].Seq
		}
		var want, got bytes.Buffer
		if err := trace.WriteJSONL(&want, coldEvents); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteJSONL(&got, warmEvents); err != nil {
			t.Fatal(err)
		}
		if want.String() != got.String() {
			t.Fatalf("step %d: trace diverged:\ncold:\n%s\nwarm:\n%s", step, want.String(), got.String())
		}
	}
	if cs := warm.CacheStats(); cs.Epoch != 0 || cs.PartialInvalidations == 0 {
		t.Fatalf("flaps should be partial, not wholesale: %+v", cs)
	}
}
