package planner

// Incremental planning: the DP over the abstract workflow is memoized at
// operator-node granularity. For every operator node the planner hashes the
// node identity (name + abstract description) together with the structural
// signatures of every input tag front and the pre-existing state of every
// output tag front; the cached value is the exact sequence of table inserts
// (plus the per-node DP statistics) that the cold evaluation produced.
// Replaying the inserts through the normal min-merge reproduces the cold
// table bit for bit — including entriesKept and prunedFronts counters — so a
// warm build emits byte-identical plans and trace events.
//
// Entry signatures are structural digests: two entries with equal signatures
// describe the same producing subplan (same materialized operator chain,
// same moves, same sizes, same accumulated estimates), so a signature match
// on every input front implies the node would resolve identically.
//
// Invalidation is dependency-scoped (invalidate.go): every cached node
// result carries a footprint of the engines, estimated operators, library
// matches, and table entries it depends on; typed events (engine
// availability, profiler retrain, library add/remove) and the per-build
// availability fingerprint evict only the footprint-hit results plus their
// downstream dependents. Wholesale flush survives as the fallback for
// untyped changes (the Config.Epoch hook, unexplained library movement) and
// the cache-size bound.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/workflow"
)

// defaultMaxCachedNodes bounds the number of memoized node results (scalar +
// Pareto) plus metadata renderings held between builds; exceeding it clears
// the cache wholesale at the next build boundary (never mid-build, so one
// build never mixes entry generations). Config.MaxCachedNodes overrides it —
// the default is sized for the 10k-operator Pegasus stress DAGs.
const defaultMaxCachedNodes = 65536

// sig is a 128-bit structural digest (two independent FNV-1a-style streams).
type sig struct{ a, b uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	altOffset64 = 0x9e3779b97f4a7c15
	altPrime64  = 0xc2b2ae3d27d4eb4f
)

type hasher struct{ a, b uint64 }

func newHasher() hasher { return hasher{fnvOffset64, altOffset64} }

func (h *hasher) byte(c byte) {
	h.a = (h.a ^ uint64(c)) * fnvPrime64
	h.b = (h.b ^ uint64(c)) * altPrime64
}

func (h *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v))
		v >>= 8
	}
}

func (h *hasher) i64(v int64)   { h.u64(uint64(v)) }
func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *hasher) sig(s sig) { h.u64(s.a); h.u64(s.b) }

func (h *hasher) bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

func (h *hasher) sum() sig { return sig{h.a, h.b} }

// leafSig digests a zero-cost table entry (materialized source dataset or
// replan seed).
func leafSig(source, metaKey string, records, bytes int64) sig {
	h := newHasher()
	h.str("leaf")
	h.str(source)
	h.str(metaKey)
	h.i64(records)
	h.i64(bytes)
	return h.sum()
}

// derivedEntrySig digests a derived table entry: the producing node and
// materialization, the chosen output, and the full input resolution. Equal
// signatures extract to identical plan subtrees.
func derivedEntrySig(c *candidate, outIndex int, metaKey string, t pathTotals) sig {
	h := newHasher()
	h.str("op")
	h.str(c.node.Name)
	h.str(c.mo.Name)
	h.u64(uint64(outIndex))
	h.str(metaKey)
	h.i64(c.outRecords)
	h.i64(c.outBytes)
	h.f64(t.cost)
	h.f64(t.time)
	h.f64(t.money)
	h.u64(uint64(len(c.inputs)))
	for _, in := range c.inputs {
		h.sig(in.entry.sig)
		h.bool(in.moved)
		h.f64(in.moveTime)
		h.f64(in.moveCost)
	}
	return h.sum()
}

// pDerivedSig is derivedEntrySig for the multi-objective table.
func pDerivedSig(c *pCandidate, outIndex int, metaKey string) sig {
	h := newHasher()
	h.str("pop")
	h.str(c.node.Name)
	h.str(c.mo.Name)
	h.u64(uint64(outIndex))
	h.str(metaKey)
	h.i64(c.outRecords)
	h.i64(c.outBytes)
	h.f64(c.opTime)
	h.f64(c.opMoney)
	h.u64(uint64(len(c.inputs)))
	for _, in := range c.inputs {
		h.sig(in.entry.sig)
		h.bool(in.moved)
		h.f64(in.moveTime)
		h.f64(in.moveCost)
	}
	return h.sum()
}

// entryMapSig digests one tag front and records every entry signature read
// into p.readSigs — the DP parent links captured by node footprints.
func (p *Planner) entryMapSig(h *hasher, m map[string]*tagEntry) {
	keys := sortedKeys(m)
	h.u64(uint64(len(keys)))
	for _, k := range keys {
		h.str(k)
		h.sig(m[k].sig)
		p.readSigs = append(p.readSigs, m[k].sig)
	}
}

func (p *Planner) pEntryMapSig(h *hasher, m map[string][]*pEntry) {
	keys := sortedPKeys(m)
	h.u64(uint64(len(keys)))
	for _, k := range keys {
		h.str(k)
		h.u64(uint64(len(m[k])))
		for _, e := range m[k] {
			h.sig(e.sig)
			p.readSigs = append(p.readSigs, e.sig)
		}
	}
}

// nodeKey digests an operator node's full DP context: its identity, the tag
// fronts of every input, and the pre-insert state of every output. Must be
// called with p.mu held (it reads the meta-string cache).
func (p *Planner) nodeKey(o *workflow.Node, dp map[*workflow.Node]map[string]*tagEntry) sig {
	h := newHasher()
	h.str("node")
	h.str(o.Name)
	h.str(p.metaStrLocked(o.Operator.Meta))
	h.u64(uint64(len(o.Inputs)))
	for _, in := range o.Inputs {
		h.str(in.Name)
		p.entryMapSig(&h, dp[in])
	}
	h.u64(uint64(len(o.Outputs)))
	for _, out := range o.Outputs {
		h.str(out.Name)
		p.entryMapSig(&h, dp[out])
	}
	return h.sum()
}

// pNodeKey is nodeKey over the multi-objective table.
func (p *Planner) pNodeKey(o *workflow.Node, dp map[*workflow.Node]map[string][]*pEntry) sig {
	h := newHasher()
	h.str("pnode")
	h.str(o.Name)
	h.str(p.metaStrLocked(o.Operator.Meta))
	h.u64(uint64(len(o.Inputs)))
	for _, in := range o.Inputs {
		h.str(in.Name)
		p.pEntryMapSig(&h, dp[in])
	}
	h.u64(uint64(len(o.Outputs)))
	for _, out := range o.Outputs {
		h.str(out.Name)
		p.pEntryMapSig(&h, dp[out])
	}
	return h.sum()
}

// insertRec is one recorded table insert of a node evaluation.
type insertRec struct {
	out int // index into the node's Outputs
	e   *tagEntry
}

// nodeResult is the memoized outcome of evaluating one operator node.
type nodeResult struct {
	inserts            []insertRec
	tried, kept, moves int
}

// pInsertRec / pNodeResult mirror insertRec / nodeResult for ParetoPlans.
type pInsertRec struct {
	out int
	e   *pEntry
}

type pNodeResult struct {
	inserts []pInsertRec
}

// cacheValidity holds the counters the cache was last reconciled against.
// Availability is tracked separately as a per-engine fingerprint
// (planCache.engines/availPrev) diffed in place each build.
type cacheValidity struct {
	epoch  uint64 // Config.Epoch() — external untyped invalidation counter
	libGen uint64 // operator library generation
}

// planCache holds every memoized artefact. It is guarded by Planner.mu,
// which also serializes whole table builds so one build never observes a
// concurrent flush (mixing entry generations would break step deduplication
// during extraction).
type planCache struct {
	init     bool
	validity cacheValidity
	epoch    uint64 // completed flushes (the ires_planner_epoch gauge)

	nodes   map[sig]*nodeResult
	pnodes  map[sig]*pNodeResult
	leaves  map[sig]*tagEntry
	pleaves map[sig]*pEntry
	seeds   map[sig]map[string]*tagEntry
	// metaStrs caches Tree.String() renderings keyed by tree pointer (node
	// keys and seed hashes re-render the same trees every build). Flushed
	// with the rest of the cache; trees must not be mutated between builds
	// (mutating a graph's operator metadata without rebuilding the graph is
	// unsupported).
	metaStrs map[*metadata.Tree]string

	// feet records each cached node result's dependency footprint, and the
	// reverse indices below map each footprint dimension back to the node
	// keys that depend on it (invalidate.go).
	feet       map[sig]*footprint
	byEngine   map[string]map[sig]struct{} // engine -> dependent node keys
	byEstOp    map[string]map[sig]struct{} // estimated op -> dependent node keys
	dependents map[sig]map[sig]struct{}    // entry sig -> node keys that read it

	// engines/availPrev are the availability fingerprint: the sorted library
	// engine list (cached per library generation, keeping the steady-state
	// validity check allocation-free) and the last observed '0'/'1' bit per
	// engine.
	engines     []string
	availPrev   []byte
	enginesGen  uint64
	enginesInit bool

	hits, misses uint64 // cumulative node-level lookups
	rowsAlloc    uint64 // tagEntry/pEntry rows created since construction
	partials     uint64 // typed invalidation events applied partially
	evicted      uint64 // node results evicted by partial invalidation
}

// CacheStats is a snapshot of the planner's memoization counters.
type CacheStats struct {
	// Hits and Misses count operator-node memo lookups across
	// Plan/Replan/ParetoPlans builds.
	Hits   uint64
	Misses uint64
	// Epoch counts completed wholesale cache flushes.
	Epoch uint64
	// NodeEntries is the number of node results currently cached.
	NodeEntries int
	// RowsAllocated counts DP table rows (tagEntry/pEntry) ever created;
	// a fully warm build leaves it unchanged.
	RowsAllocated uint64
	// PartialInvalidations counts typed invalidation events applied as
	// partial evictions (engine flaps, profiler retrains, library changes
	// that did not force a wholesale flush).
	PartialInvalidations uint64
	// EvictedEntries counts node results evicted by partial invalidation,
	// downstream dependents included.
	EvictedEntries uint64
}

// CacheStats returns the planner's current memoization counters.
func (p *Planner) CacheStats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CacheStats{
		Hits:                 p.cache.hits,
		Misses:               p.cache.misses,
		Epoch:                p.cache.epoch,
		NodeEntries:          len(p.cache.nodes) + len(p.cache.pnodes),
		RowsAllocated:        p.cache.rowsAlloc,
		PartialInvalidations: p.cache.partials,
		EvictedEntries:       p.cache.evicted,
	}
}

// FlushCache drops every memoized result and bumps the planner epoch, as an
// invalidation would. Cold-start benchmarks and tests use it; normal
// invalidation is automatic via Config.Epoch/library/availability changes.
func (p *Planner) FlushCache() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cache.init {
		p.flushLocked()
	}
}

func (p *Planner) flushLocked() {
	p.cache.nodes = make(map[sig]*nodeResult)
	p.cache.pnodes = make(map[sig]*pNodeResult)
	p.cache.leaves = make(map[sig]*tagEntry)
	p.cache.pleaves = make(map[sig]*pEntry)
	p.cache.seeds = make(map[sig]map[string]*tagEntry)
	p.cache.metaStrs = make(map[*metadata.Tree]string)
	p.cache.feet = make(map[sig]*footprint)
	p.cache.byEngine = make(map[string]map[sig]struct{})
	p.cache.byEstOp = make(map[string]map[sig]struct{})
	p.cache.dependents = make(map[sig]map[sig]struct{})
	p.cache.epoch++
}

// metaStrLocked renders a metadata tree to its canonical string, memoized by
// tree pointer (nil renders as the empty tree).
func (p *Planner) metaStrLocked(t *metadata.Tree) string {
	if t == nil {
		return ""
	}
	if s, ok := p.cache.metaStrs[t]; ok {
		return s
	}
	s := t.String()
	p.cache.metaStrs[t] = s
	return s
}

// recordBuildLocked folds one build's cache counters into the cumulative
// stats and the metrics registry.
func (p *Planner) recordBuildLocked(stats *dpStats) {
	p.cache.hits += uint64(stats.cacheHits)
	p.cache.misses += uint64(stats.cacheMisses)
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Inc(MetricCacheHits, nil, float64(stats.cacheHits))
		p.cfg.Metrics.Inc(MetricCacheMisses, nil, float64(stats.cacheMisses))
		p.cfg.Metrics.Set(MetricEpoch, nil, float64(p.cache.epoch))
	}
}

// Metric names the planner reports through Config.Metrics. They are the
// Prometheus spellings of the planner cache counters; none of them are
// trace-event fields, which must stay byte-identical warm vs cold.
const (
	MetricCacheHits            = "ires_planner_cache_hits_total"
	MetricCacheMisses          = "ires_planner_cache_misses_total"
	MetricEpoch                = "ires_planner_epoch"
	MetricPartialInvalidations = "ires_planner_partial_invalidations_total"
	MetricEvictedEntries       = "ires_planner_evicted_entries_total"
)

// leafEntryLocked returns the (memoized) zero-cost entry for a materialized
// source dataset.
func (p *Planner) leafEntryLocked(d *workflow.Node) *tagEntry {
	meta := d.Dataset.Constraints()
	metaKey := p.metaStrLocked(meta)
	if meta == nil {
		meta = metadata.New()
	}
	records, bytes := d.Dataset.Records(), d.Dataset.SizeBytes()
	s := leafSig(d.Name, metaKey, records, bytes)
	if e, ok := p.cache.leaves[s]; ok {
		return e
	}
	e := &tagEntry{
		meta:    meta.Clone(),
		metaKey: metaKey,
		records: records,
		bytes:   bytes,
		source:  d.Name,
		sig:     s,
	}
	p.cache.rowsAlloc++
	p.cache.leaves[s] = e
	return e
}

// pLeafEntryLocked is leafEntryLocked for the multi-objective table.
func (p *Planner) pLeafEntryLocked(d *workflow.Node) *pEntry {
	meta := d.Dataset.Constraints()
	metaKey := p.metaStrLocked(meta)
	if meta == nil {
		meta = metadata.New()
	}
	records, bytes := d.Dataset.Records(), d.Dataset.SizeBytes()
	h := newHasher()
	h.str("pleaf")
	h.str(d.Name)
	h.str(metaKey)
	h.i64(records)
	h.i64(bytes)
	s := h.sum()
	if e, ok := p.cache.pleaves[s]; ok {
		return e
	}
	e := &pEntry{
		meta:    meta.Clone(),
		metaKey: metaKey,
		records: records,
		bytes:   bytes,
		source:  d.Name,
		sig:     s,
	}
	p.cache.rowsAlloc++
	p.cache.pleaves[s] = e
	return e
}

// seedForLocked validates the done-set against the graph and returns the
// (memoized) seed entry map for it. The map is read-only downstream, so the
// same map is shared by every replan with an identical done-set — replaying
// with unchanged intermediates allocates no new table rows.
func (p *Planner) seedForLocked(g *workflow.Graph, done []MaterializedIntermediate) (map[string]*tagEntry, error) {
	for _, d := range done {
		if _, ok := g.Node(d.Dataset); !ok {
			return nil, fmt.Errorf("planner: replan: unknown dataset %q", d.Dataset)
		}
	}
	sorted := append([]MaterializedIntermediate(nil), done...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Dataset < sorted[j].Dataset })
	h := newHasher()
	h.str("seed")
	h.u64(uint64(len(sorted)))
	for _, d := range sorted {
		h.str(d.Dataset)
		h.str(p.metaStrLocked(d.Meta))
		h.i64(d.Records)
		h.i64(d.Bytes)
	}
	s := h.sum()
	if m, ok := p.cache.seeds[s]; ok {
		return m, nil
	}
	m := make(map[string]*tagEntry, len(sorted))
	for _, d := range sorted {
		metaKey := p.metaStrLocked(d.Meta)
		meta := d.Meta
		if meta == nil {
			meta = metadata.New()
		}
		e := &tagEntry{
			meta:    meta.Clone(),
			metaKey: metaKey,
			records: d.Records,
			bytes:   d.Bytes,
			source:  d.Dataset,
		}
		e.sig = leafSig(d.Dataset, metaKey, d.Records, d.Bytes)
		p.cache.rowsAlloc++
		m[d.Dataset] = e
	}
	p.cache.seeds[s] = m
	return m, nil
}

// defaultWorkers picks the candidate-evaluation pool width: enough to
// overlap estimator calls, small enough not to oversubscribe test runs.
func defaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runConcurrent invokes fn(0..n-1) over a bounded worker pool. Callers own
// determinism: fn writes to index-addressed slots and the caller reduces in
// index order.
func (p *Planner) runConcurrent(n int, fn func(int)) {
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
