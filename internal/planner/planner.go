// Package planner implements the IReS multi-engine workflow planner
// (D3.3 §2.2.3, Algorithm 1): a dynamic program over the abstract workflow's
// topological order that, for every intermediate dataset, keeps the cheapest
// plan per distinct dataset tag (location/format), inserting move/transform
// operators between engines where input/output specifications disagree.
//
// Worst-case complexity is O(op * m^2 * k) for op abstract operators, m
// materialized matches per operator and k inputs per operator, as derived in
// the paper.
//
// # Tree relaxation
//
// The dynamic program accumulates path costs bottom-up as if every plan were
// a tree: a tagEntry's cost sums the full cost of each input's producing
// subplan. When a workflow is a DAG with sharing — a diamond where one
// upstream operator feeds two downstream branches that re-merge — the shared
// producer is counted once per consuming branch during the DP, a standard
// relaxation that keeps the table per-dataset instead of per-subplan-set.
// Extraction, however, deduplicates shared producers (one plan step per
// candidate), so the emitted plan is cheaper than the DP value suggests. The
// reported Plan.EstTimeSec/EstCost/EstObjective are therefore recomputed
// from the deduplicated steps after extraction: cost as the sum over unique
// steps, time as the critical path over step dependencies. Only step
// *selection* retains the tree relaxation.
package planner

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/workflow"
)

// ErrNoPlan indicates no feasible materialized execution plan exists (no
// matching operators, all engines down, or every configuration infeasible).
var ErrNoPlan = errors.New("planner: no feasible execution plan")

// Estimator supplies per-operator metric predictions. *profiler.Profiler
// satisfies it.
type Estimator interface {
	Estimate(opName, target string, feats map[string]float64) (float64, bool)
}

// Estimator target names (mirrors the profiler's).
const (
	targetExecTime   = "execTime"
	targetCost       = "cost"
	targetOutRecords = "outputRecords"
	targetOutBytes   = "outputBytes"
)

// Objective folds a (time, monetary cost) estimate into the scalar the DP
// minimises — the user-defined optimization policy.
type Objective func(timeSec, cost float64) float64

// MinTime is the execution-time-minimising policy.
func MinTime(timeSec, _ float64) float64 { return timeSec }

// MinCost is the monetary-cost-minimising policy.
func MinCost(_, cost float64) float64 { return cost }

// Weighted returns a policy blending time and cost.
func Weighted(wTime, wCost float64) Objective {
	return func(t, c float64) float64 { return wTime*t + wCost*c }
}

// Resources mirrors engine.Resources without importing it (the planner is
// engine-agnostic); the executor converts.
type Resources struct {
	Nodes     int
	CoresPerN int
	MemMBPerN int
}

// Config parameterises a Planner.
type Config struct {
	Library   *operator.Library
	Estimator Estimator
	// MoveSeconds estimates the duration of moving n bytes between engines;
	// nil uses a 100MB/s + 1.5s default.
	MoveSeconds func(bytes int64) float64
	// MoveCostRate converts move seconds into monetary cost units.
	MoveCostRate float64
	// Objective is the optimization policy (default MinTime).
	Objective Objective
	// EngineAvailable filters engines during planning; nil admits all.
	EngineAvailable func(name string) bool
	// Resources chooses the provisioned resources for a materialized
	// operator at a given input scale (the elastic-provisioning hook);
	// nil uses 16x(2c,3456MB).
	Resources func(mo *operator.Materialized, records, bytes int64) Resources
	// Tracer receives plan.start/plan.finish events with DP statistics;
	// nil discards them.
	Tracer trace.Tracer
	// Now supplies the virtual time stamped on trace events; nil stamps 0
	// (the planner itself never consumes time on the virtual clock).
	Now func() time.Duration
	// Epoch supplies an external untyped invalidation counter: any movement
	// forces a wholesale cache flush at the next build boundary (the
	// platform wires its infrastructure generation here); nil reads as 0.
	// Typed changes — engine availability, profiler retrains, library
	// mutations — should instead use EngineAvailability/ProfilerRetrain and
	// the library change listener, which evict only the dependent cache
	// entries. See invalidate.go.
	Epoch func() uint64
	// Metrics receives the planner cache counters (MetricCacheHits,
	// MetricCacheMisses, MetricEpoch, MetricPartialInvalidations,
	// MetricEvictedEntries); nil discards them. Cache counters are
	// deliberately not trace-event fields: warm and cold builds must emit
	// byte-identical traces.
	Metrics *trace.Registry
	// Workers bounds the concurrent evaluation of one node's materialized
	// candidates; 0 picks a small default, negative forces sequential.
	Workers int
	// MaxCachedNodes bounds the memoized node results (plus metadata
	// renderings) held between builds; exceeding it flushes wholesale at
	// the next build boundary. 0 uses the default (sized for 10k-operator
	// DAGs).
	MaxCachedNodes int
}

// Planner computes optimal materialized plans for abstract workflows.
// Table builds are serialized on mu, which also guards the memo cache; the
// candidate evaluations inside one build fan out over a worker pool.
type Planner struct {
	cfg       Config
	workers   int
	maxCached int

	mu    sync.Mutex
	cache planCache
	// readSigs is the scratch buffer nodeKey/pNodeKey fill with the entry
	// signatures they read; buildTable copies it into the footprint of a
	// freshly evaluated node. Guarded by mu (builds are serialized).
	readSigs []sig

	// pendMu guards the pending typed invalidation events. It is a leaf
	// mutex: event producers (breaker trips, profiler retrains, library
	// mutations) enqueue without contending with a running build.
	pendMu sync.Mutex
	pend   pending
}

// New builds a planner, filling Config defaults.
func New(cfg Config) (*Planner, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("planner: Config.Library is required")
	}
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("planner: Config.Estimator is required")
	}
	if cfg.MoveSeconds == nil {
		cfg.MoveSeconds = func(bytes int64) float64 {
			if bytes < 0 {
				bytes = 0
			}
			return 1.5 + float64(bytes)/100e6
		}
	}
	if cfg.MoveCostRate == 0 {
		cfg.MoveCostRate = 1.0
	}
	if cfg.Objective == nil {
		cfg.Objective = MinTime
	}
	if cfg.Resources == nil {
		cfg.Resources = func(*operator.Materialized, int64, int64) Resources {
			return Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}
		}
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Nop()
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Duration { return 0 }
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = defaultWorkers()
	}
	if workers < 1 {
		workers = 1
	}
	maxCached := cfg.MaxCachedNodes
	if maxCached == 0 {
		maxCached = defaultMaxCachedNodes
	}
	p := &Planner{cfg: cfg, workers: workers, maxCached: maxCached}
	// Library mutations announce themselves as typed events, so the build
	// boundary can re-match cached footprints instead of flushing wholesale.
	cfg.Library.AddChangeListener(p.libraryChanged)
	return p, nil
}

// emit stamps the current virtual time on ev and hands it to the tracer.
func (p *Planner) emit(ev trace.Event) {
	p.cfg.Tracer.Emit(ev.At(p.cfg.Now()))
}

// dpStats aggregates what one buildTable pass did, for plan.finish events.
// cacheHits/cacheMisses feed the metrics registry and CacheStats only —
// never trace-event fields, which must stay byte-identical warm vs cold.
type dpStats struct {
	candidatesTried int // (operator, materialization) pairs attempted
	candidatesKept  int // feasible candidates inserted into the table
	movesConsidered int // input slots bridged with a move/transform
	entriesKept     int // tagEntry inserts that created or improved a slot
	cacheHits       int // operator nodes served from the memo cache
	cacheMisses     int // operator nodes evaluated cold
}

func (s *dpStats) fields(pl *Plan) map[string]float64 {
	f := map[string]float64{
		"candidatesTried": float64(s.candidatesTried),
		"candidatesKept":  float64(s.candidatesKept),
		"movesConsidered": float64(s.movesConsidered),
		"entriesKept":     float64(s.entriesKept),
	}
	if pl != nil {
		f["steps"] = float64(len(pl.Steps))
		f["estTimeSec"] = pl.EstTimeSec
		f["estCost"] = pl.EstCost
	}
	return f
}

// tagEntry is one dpTable record: the cheapest known way to produce a
// dataset in a specific tag (location/format).
type tagEntry struct {
	meta *metadata.Tree // dataset constraints tree (Engine/FS/type ...)
	// metaKey caches meta.String(): entries are immutable once built, and
	// cached entries replay through insert on every warm build, so the tag
	// key must not be re-rendered per build.
	metaKey string
	records int64
	bytes   int64

	cost  float64 // objective value accumulated along the path
	time  float64 // accumulated estimated seconds
	money float64 // accumulated estimated monetary cost

	// source is the workflow source dataset name for leaf entries.
	source string
	// cand is the producing candidate for derived entries.
	cand *candidate
	// outIndex selects which output of the candidate this entry is.
	outIndex int
	// sig is the structural digest of the producing subplan (memo.go).
	sig sig
}

// inputChoice records how one input slot of a candidate is satisfied.
type inputChoice struct {
	entry    *tagEntry
	moved    bool
	moveTime float64
	moveCost float64
	moveMeta *metadata.Tree
}

// candidate is one materialized operator choice with resolved inputs.
type candidate struct {
	node    *workflow.Node
	mo      *operator.Materialized
	res     Resources
	params  map[string]float64
	inputs  []inputChoice
	opTime  float64
	opMoney float64

	inRecords, inBytes   int64
	outRecords, outBytes int64
}

// Plan is a materialized execution plan: steps in dependency order.
type Plan struct {
	Steps []*Step
	// EstObjective is the DP value of the plan under the policy.
	EstObjective float64
	// EstTimeSec and EstCost are the accumulated estimates.
	EstTimeSec float64
	EstCost    float64
	// PlanningTime is the wall-clock time the planner spent.
	PlanningTime time.Duration
	// Target names the workflow's target dataset.
	Target string
}

// StepKind distinguishes operator steps from planner-inserted moves.
type StepKind int

const (
	// StepOperator runs a materialized operator.
	StepOperator StepKind = iota
	// StepMove transfers/transforms an intermediate dataset between
	// engines.
	StepMove
)

func (k StepKind) String() string {
	if k == StepMove {
		return "move"
	}
	return "operator"
}

// Step is one unit of a materialized plan.
type Step struct {
	ID   int
	Kind StepKind
	Name string

	// Operator step fields.
	WorkflowNode string // abstract operator node name
	Op           *operator.Materialized
	Engine       string
	Algorithm    string
	Res          Resources
	Params       map[string]float64
	// OutDataset is the workflow dataset node this step produces (operator
	// steps only; the first output is reported).
	OutDataset string

	// DependsOn lists step IDs that must complete first.
	DependsOn []int
	// SourceInputs lists workflow source datasets consumed directly.
	SourceInputs []string

	InRecords, InBytes   int64
	OutRecords, OutBytes int64
	EstTimeSec           float64
	EstCost              float64
	OutMeta              *metadata.Tree
}

func (s *Step) String() string {
	if s.Kind == StepMove {
		return fmt.Sprintf("[%d] move %s (%.1fs)", s.ID, s.Name, s.EstTimeSec)
	}
	return fmt.Sprintf("[%d] %s on %s (%.1fs)", s.ID, s.Name, s.Engine, s.EstTimeSec)
}

// Plan runs Algorithm 1 on the abstract workflow and returns the optimal
// materialized plan under the configured policy.
func (p *Planner) Plan(g *workflow.Graph) (*Plan, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureCacheValidLocked()
	p.emit(trace.Event{Type: trace.EvPlanStart, Fields: map[string]float64{"nodes": float64(g.Len())}})
	dp, stats, err := p.buildTable(g, nil)
	if err != nil {
		return nil, err
	}
	p.recordBuildLocked(stats)
	plan, err := p.extract(g, dp, started)
	if err != nil {
		return nil, err
	}
	p.emit(trace.Event{Type: trace.EvPlanFinish, Fields: stats.fields(plan)})
	return plan, nil
}

// buildTable fills the dpTable. seed pre-populates dataset entries (used by
// replanning to inject already-materialized intermediates). Must be called
// with p.mu held: it reads and populates the memo cache.
func (p *Planner) buildTable(g *workflow.Graph, seed map[string]*tagEntry) (map[*workflow.Node]map[string]*tagEntry, *dpStats, error) {
	stats := &dpStats{}
	dp := make(map[*workflow.Node]map[string]*tagEntry)
	insert := func(n *workflow.Node, e *tagEntry) {
		key := e.metaKey
		m := dp[n]
		if m == nil {
			m = make(map[string]*tagEntry)
			dp[n] = m
		}
		if old, ok := m[key]; !ok || e.cost < old.cost {
			m[key] = e
			stats.entriesKept++
		}
	}

	// Initialise dpTable with materialized datasets (line 5-10 of Alg. 1).
	for _, d := range g.Datasets() {
		if se, ok := seed[d.Name]; ok {
			insert(d, se)
			continue
		}
		if d.Dataset.IsMaterialized() {
			insert(d, p.leafEntryLocked(d))
		}
	}

	ops, err := g.OperatorsTopological()
	if err != nil {
		return nil, nil, err
	}
	for _, o := range ops {
		p.readSigs = p.readSigs[:0]
		key := p.nodeKey(o, dp)
		res, ok := p.cache.nodes[key]
		if ok {
			stats.cacheHits++
		} else {
			stats.cacheMisses++
			var foot *footprint
			res, foot = p.evalNode(o, dp)
			foot.inSigs = append([]sig(nil), p.readSigs...)
			p.cache.nodes[key] = res
			p.registerFootLocked(key, foot)
		}
		// Replaying the recorded inserts through the normal min-merge
		// reproduces the cold table exactly, entriesKept included (the key
		// covers the outputs' pre-insert state).
		stats.candidatesTried += res.tried
		stats.candidatesKept += res.kept
		stats.movesConsidered += res.moves
		for _, rec := range res.inserts {
			insert(o.Outputs[rec.out], rec.e)
		}
	}
	return dp, stats, nil
}

// evalNode evaluates every available materialization of one operator node
// cold, fanning the candidate evaluations over the worker pool and reducing
// strictly in library (name) order so the recorded insert sequence — and
// therefore every downstream plan and trace byte — is deterministic. It also
// returns the node's dependency footprint (inSigs left for the caller).
func (p *Planner) evalNode(o *workflow.Node, dp map[*workflow.Node]map[string]*tagEntry) (*nodeResult, *footprint) {
	res := &nodeResult{}
	all := p.cfg.Library.FindMaterialized(o.Operator)
	foot := p.newFootprintLocked(o.Operator, all)
	var mos []*operator.Materialized
	for _, mo := range all {
		if p.cfg.EngineAvailable != nil && !p.cfg.EngineAvailable(mo.Engine()) {
			continue
		}
		mos = append(mos, mo)
		foot.estOps = append(foot.estOps, mo.Name)
	}
	res.tried = len(mos)
	cands := make([]*candidate, len(mos))
	p.runConcurrent(len(mos), func(i int) { cands[i] = p.tryCandidate(o, mos[i], dp) })
	for _, cand := range cands {
		if cand == nil {
			continue
		}
		res.kept++
		for _, in := range cand.inputs {
			if in.moved {
				res.moves++
			}
		}
		total := cand.pathCost(p.cfg.Objective)
		for idx := range o.Outputs {
			outMeta := cand.mo.OutputSpec(idx)
			if outMeta == nil {
				outMeta = metadata.New()
				outMeta.Set("Engine", cand.mo.Engine())
			}
			meta := outMeta.Clone()
			e := &tagEntry{
				meta:     meta,
				metaKey:  meta.String(),
				records:  cand.outRecords,
				bytes:    cand.outBytes,
				cost:     total.cost,
				time:     total.time,
				money:    total.money,
				cand:     cand,
				outIndex: idx,
			}
			e.sig = derivedEntrySig(cand, idx, e.metaKey, total)
			p.cache.rowsAlloc++
			res.inserts = append(res.inserts, insertRec{out: idx, e: e})
		}
	}
	return res, foot
}

type pathTotals struct{ cost, time, money float64 }

func (c *candidate) pathCost(obj Objective) pathTotals {
	var t pathTotals
	for _, in := range c.inputs {
		t.cost += in.entry.cost
		t.time += in.entry.time
		t.money += in.entry.money
		if in.moved {
			t.cost += obj(in.moveTime, in.moveCost)
			t.time += in.moveTime
			t.money += in.moveCost
		}
	}
	t.cost += obj(c.opTime, c.opMoney)
	t.time += c.opTime
	t.money += c.opMoney
	return t
}

// tryCandidate resolves every input slot of mo against the dpTable,
// inserting moves where required, and estimates the operator itself.
// It returns nil when the candidate is infeasible.
func (p *Planner) tryCandidate(o *workflow.Node, mo *operator.Materialized, dp map[*workflow.Node]map[string]*tagEntry) *candidate {
	cand := &candidate{
		node:   o,
		mo:     mo,
		params: mo.Params(),
	}
	obj := p.cfg.Objective
	for i, in := range o.Inputs {
		entries := dp[in]
		if len(entries) == 0 {
			return nil
		}
		var best *inputChoice
		bestCost := 0.0
		for _, key := range sortedKeys(entries) {
			tin := entries[key]
			var choice inputChoice
			var cost float64
			if mo.AcceptsInput(i, tin.meta) {
				choice = inputChoice{entry: tin}
				cost = tin.cost
			} else {
				// checkMove: a single move/transform bridges the mismatch.
				moveSec := p.cfg.MoveSeconds(tin.bytes)
				moveCost := moveSec * p.cfg.MoveCostRate
				moved := movedMeta(tin.meta, mo.InputConstraint(i))
				choice = inputChoice{
					entry: tin, moved: true,
					moveTime: moveSec, moveCost: moveCost, moveMeta: moved,
				}
				cost = tin.cost + obj(moveSec, moveCost)
			}
			if best == nil || cost < bestCost {
				c := choice
				best, bestCost = &c, cost
			}
		}
		cand.inputs = append(cand.inputs, *best)
		cand.inRecords += best.entry.records
		cand.inBytes += best.entry.bytes
	}

	cand.res = p.cfg.Resources(mo, cand.inRecords, cand.inBytes)
	feats := map[string]float64{
		"records":  float64(cand.inRecords),
		"bytes":    float64(cand.inBytes),
		"nodes":    float64(cand.res.Nodes),
		"cores":    float64(cand.res.CoresPerN),
		"memoryMB": float64(cand.res.MemMBPerN),
	}
	for k, v := range cand.params {
		feats[k] = v
	}
	t, ok := p.cfg.Estimator.Estimate(mo.Name, targetExecTime, feats)
	if !ok {
		return nil
	}
	c, ok := p.cfg.Estimator.Estimate(mo.Name, targetCost, feats)
	if !ok {
		return nil
	}
	cand.opTime, cand.opMoney = t, c

	if v, ok := p.cfg.Estimator.Estimate(mo.Name, targetOutRecords, feats); ok && v > 0 {
		cand.outRecords = int64(v)
	} else {
		cand.outRecords = cand.inRecords
	}
	if v, ok := p.cfg.Estimator.Estimate(mo.Name, targetOutBytes, feats); ok && v > 0 {
		cand.outBytes = int64(v)
	} else {
		cand.outBytes = cand.inBytes
	}
	return cand
}

// movedMeta derives the dataset tag after a move: the source tag overlaid
// with the destination's location/format requirements (wildcards erased).
func movedMeta(src, req *metadata.Tree) *metadata.Tree {
	out := src.Clone()
	if out == nil {
		out = metadata.New()
	}
	if req == nil {
		return out
	}
	req.Walk(func(path string, n *metadata.Tree) {
		if path == "" {
			return
		}
		if v := n.Value(); v != "" && v != metadata.Wildcard {
			out.Set(path, v)
		}
	})
	return out
}

func sortedKeys(m map[string]*tagEntry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort (maps are tiny)
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// extract backtracks from the target's cheapest entry, materializing plan
// steps (with move steps where inputs were bridged).
func (p *Planner) extract(g *workflow.Graph, dp map[*workflow.Node]map[string]*tagEntry, started time.Time) (*Plan, error) {
	targetNode, _ := g.Node(g.Target)
	entries := dp[targetNode]
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: target %s unreachable", ErrNoPlan, g.Target)
	}
	var best *tagEntry
	for _, key := range sortedKeys(entries) {
		e := entries[key]
		if best == nil || e.cost < best.cost {
			best = e
		}
	}

	plan := &Plan{Target: g.Target}
	candSteps := make(map[*candidate]*Step)
	var build func(e *tagEntry) (int, bool)
	build = func(e *tagEntry) (int, bool) {
		if e.cand == nil {
			return -1, false // workflow source dataset
		}
		if s, ok := candSteps[e.cand]; ok {
			return s.ID, true
		}
		c := e.cand
		step := &Step{
			Kind:         StepOperator,
			Name:         c.node.Name + "/" + c.mo.Name,
			WorkflowNode: c.node.Name,
			Op:           c.mo,
			Engine:       c.mo.Engine(),
			Algorithm:    c.mo.Algorithm(),
			Res:          c.res,
			Params:       c.params,
			InRecords:    c.inRecords,
			InBytes:      c.inBytes,
			OutRecords:   c.outRecords,
			OutBytes:     c.outBytes,
			EstTimeSec:   c.opTime,
			EstCost:      c.opMoney,
		}
		if len(c.node.Outputs) > 0 {
			step.OutDataset = c.node.Outputs[0].Name
			if om := c.mo.OutputSpec(0); om != nil {
				step.OutMeta = om.Clone()
			}
		}
		for _, in := range c.inputs {
			depID, isStep := build(in.entry)
			producerID := depID
			if in.moved {
				mv := &Step{
					Kind:       StepMove,
					Name:       fmt.Sprintf("move->%s", c.node.Name),
					Engine:     "move",
					Algorithm:  "move",
					InRecords:  in.entry.records,
					InBytes:    in.entry.bytes,
					OutRecords: in.entry.records,
					OutBytes:   in.entry.bytes,
					EstTimeSec: in.moveTime,
					EstCost:    in.moveCost,
					OutMeta:    in.moveMeta,
				}
				if isStep {
					mv.DependsOn = append(mv.DependsOn, depID)
				} else if in.entry.source != "" {
					mv.SourceInputs = append(mv.SourceInputs, in.entry.source)
				}
				mv.ID = len(plan.Steps)
				plan.Steps = append(plan.Steps, mv)
				producerID = mv.ID
				isStep = true
			}
			if isStep {
				step.DependsOn = append(step.DependsOn, producerID)
			} else if in.entry.source != "" {
				step.SourceInputs = append(step.SourceInputs, in.entry.source)
			}
		}
		step.ID = len(plan.Steps)
		plan.Steps = append(plan.Steps, step)
		candSteps[c] = step
		return step.ID, true
	}
	build(best)

	// The DP totals are a tree relaxation (see the package comment): shared
	// producers were charged once per consuming branch, but extraction
	// deduplicated them via candSteps. Recompute the reported estimates from
	// the steps actually emitted.
	plan.EstTimeSec, plan.EstCost = plan.StepTotals()
	plan.EstObjective = p.cfg.Objective(plan.EstTimeSec, plan.EstCost)
	plan.PlanningTime = time.Since(started)
	return plan, nil
}

// StepTotals recomputes the plan's estimates from its deduplicated steps:
// total cost is the sum over unique steps, total time the critical path over
// the DependsOn edges (steps with only source inputs start at zero). Steps
// are stored in dependency order, so a single forward pass suffices.
func (pl *Plan) StepTotals() (timeSec, cost float64) {
	finish := make(map[int]float64, len(pl.Steps))
	for _, s := range pl.Steps {
		start := 0.0
		for _, dep := range s.DependsOn {
			if f := finish[dep]; f > start {
				start = f
			}
		}
		f := start + s.EstTimeSec
		finish[s.ID] = f
		if f > timeSec {
			timeSec = f
		}
		cost += s.EstCost
	}
	return timeSec, cost
}
