package planner

import (
	"strings"
	"testing"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/workflow"
)

// TestMultiOutputOperator exercises the "for out in o.getOutputs()" path of
// Algorithm 1: a splitter with two outputs feeding two independent
// consumers, all materialized by a single operator step.
func TestMultiOutputOperator(t *testing.T) {
	lib := mustLib(t, map[string]string{
		"split_spark": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=split
Constraints.Output.number=2
Constraints.Output0.Engine.FS=HDFS
Constraints.Output1.Engine.FS=HDFS
`,
		"countA_spark": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=countA
Constraints.Input0.Engine.FS=HDFS
`,
		"countB_spark": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=countB
Constraints.Input0.Engine.FS=HDFS
`,
		"merge_spark": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=merge
`,
	})
	est := stubEstimator{
		"split_spark":  {time: func(n float64) float64 { return 5 }, outFactor: 0.5},
		"countA_spark": {time: func(n float64) float64 { return 3 }, outFactor: 0.1},
		"countB_spark": {time: func(n float64) float64 { return 4 }, outFactor: 0.1},
		"merge_spark":  {time: func(n float64) float64 { return 2 }, outFactor: 1},
	}
	g := workflow.NewGraph()
	g.AddDataset("src", operator.NewDataset("src", metadata.MustParse(
		"Execution.path=hdfs:///src\nConstraints.Engine.FS=HDFS\nOptimization.documents=1000\nOptimization.size=100000")))
	g.AddOperator("split", operator.NewAbstract("split", metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name=split")))
	g.AddOperator("countA", operator.NewAbstract("countA", metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name=countA")))
	g.AddOperator("countB", operator.NewAbstract("countB", metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name=countB")))
	g.AddOperator("merge", operator.NewAbstract("merge", metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name=merge")))
	for _, d := range []string{"left", "right", "ra", "rb", "out"} {
		g.AddDataset(d, nil)
	}
	// split has TWO output datasets; each feeds its own consumer.
	for _, e := range [][2]string{
		{"src", "split"}, {"split", "left"}, {"split", "right"},
		{"left", "countA"}, {"countA", "ra"},
		{"right", "countB"}, {"countB", "rb"},
		{"ra", "merge"}, {"rb", "merge"}, {"merge", "out"},
	} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetTarget("out"); err != nil {
		t.Fatal(err)
	}

	p := newPlanner(t, lib, est)
	plan, err := p.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// The splitter materializes once even though both outputs are consumed.
	splits := 0
	for _, s := range plan.OperatorSteps() {
		if s.WorkflowNode == "split" {
			splits++
		}
	}
	if splits != 1 {
		t.Fatalf("split materialized %d times:\n%s", splits, plan.Describe())
	}
	if len(plan.OperatorSteps()) != 4 {
		t.Fatalf("want 4 operator steps:\n%s", plan.Describe())
	}
	// Both consumers depend (directly) on the split step.
	splitStep, _ := plan.StepFor("split")
	for _, node := range []string{"countA", "countB"} {
		s, _ := plan.StepFor(node)
		found := false
		for _, dep := range s.DependsOn {
			if dep == splitStep.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s does not depend on split:\n%s", node, plan.Describe())
		}
	}
	// DOT export covers all steps.
	dot := plan.DOT()
	for _, frag := range []string{"digraph plan", "split/split_spark", "->"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
}
