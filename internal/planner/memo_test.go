package planner

import (
	"bytes"
	"sync"
	"testing"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/trace"
)

// textEstimator is the standard stub for the Figure 4 text-analytics
// workflow: Hadoop scales sub-linearly, WEKA is fast on small inputs but
// blows up on large ones.
func textEstimator() stubEstimator {
	return stubEstimator{
		"TF_IDF_mahout": {time: func(r float64) float64 { return 100 + r/100 }, outFactor: 0.8},
		"TF_IDF_weka":   {time: func(r float64) float64 { return 5 + r/10 }, outFactor: 0.8},
		"kmeans_mahout": {time: func(r float64) float64 { return 120 + r/80 }, outFactor: 0.1},
		"kmeans_weka":   {time: func(r float64) float64 { return 8 + r/8 }, outFactor: 0.1},
	}
}

// traceJSONL renders a recorder's retained events as JSON lines, the
// byte-comparison form used by the determinism tests.
func traceJSONL(t *testing.T, rec *trace.Recorder) string {
	t.Helper()
	var b bytes.Buffer
	if err := trace.WriteJSONL(&b, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestWarmPlanByteIdentical is the determinism guard: a warm (fully cached)
// build must produce byte-identical Describe output AND byte-identical trace
// events compared to the cold build that populated the cache. A fresh
// planner with its own recorder serves as the cold reference so sequence
// numbers line up.
func TestWarmPlanByteIdentical(t *testing.T) {
	for _, workers := range []int{-1, 0, 3} {
		lib := textLib(t)
		est := textEstimator()

		coldRec := trace.NewRecorder(0)
		cold := newPlanner(t, lib, est, func(c *Config) { c.Tracer = coldRec; c.Workers = workers })
		warmRec := trace.NewRecorder(0)
		warm := newPlanner(t, lib, est, func(c *Config) { c.Tracer = warmRec; c.Workers = workers })

		g := textWorkflow(t, 1000)
		coldPlan, err := cold.Plan(g)
		if err != nil {
			t.Fatalf("workers=%d: cold plan: %v", workers, err)
		}
		if _, err := warm.Plan(g); err != nil { // populate warm's cache
			t.Fatalf("workers=%d: warm-up plan: %v", workers, err)
		}
		warmPlan, err := warm.Plan(textWorkflow(t, 1000)) // fresh graph, cached subtrees
		if err != nil {
			t.Fatalf("workers=%d: warm plan: %v", workers, err)
		}

		cs := warm.CacheStats()
		if cs.Hits == 0 {
			t.Fatalf("workers=%d: warm build had no cache hits: %+v", workers, cs)
		}
		if got, want := warmPlan.Describe(), coldPlan.Describe(); got != want {
			t.Fatalf("workers=%d: warm Describe diverged:\ncold:\n%s\nwarm:\n%s", workers, want, got)
		}
		// The warm recorder saw two builds; its second build's events must
		// equal the cold recorder's single build after renumbering.
		coldEvents := coldRec.Events()
		warmEvents := warmRec.Events()
		if len(warmEvents) != 2*len(coldEvents) {
			t.Fatalf("workers=%d: event counts: cold=%d warm=%d", workers, len(coldEvents), len(warmEvents))
		}
		second := warmEvents[len(coldEvents):]
		for i := range second {
			second[i].Seq = coldEvents[i].Seq
		}
		var wantBuf, gotBuf bytes.Buffer
		if err := trace.WriteJSONL(&wantBuf, coldEvents); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteJSONL(&gotBuf, second); err != nil {
			t.Fatal(err)
		}
		if wantBuf.String() != gotBuf.String() {
			t.Fatalf("workers=%d: warm trace diverged:\ncold:\n%s\nwarm:\n%s",
				workers, wantBuf.String(), gotBuf.String())
		}
	}
}

// TestWarmReplanByteIdentical extends the guard to replanning with a
// done-set and a restricted engine set (the fault path exercised after
// breaker trips in fixed-seed fault schedules).
func TestWarmReplanByteIdentical(t *testing.T) {
	lib := textLib(t)
	est := textEstimator()
	javaDown := func(name string) bool { return name != "Java" }
	done := []MaterializedIntermediate{{
		Dataset: "d1",
		Meta: metadata.MustParse(`
Engine.FS=HDFS
type=SequenceFile
`),
		Records: 800,
		Bytes:   800 * 4000,
	}}

	coldRec := trace.NewRecorder(0)
	cold := newPlanner(t, lib, est, func(c *Config) { c.Tracer = coldRec; c.EngineAvailable = javaDown })
	warmRec := trace.NewRecorder(0)
	warm := newPlanner(t, lib, est, func(c *Config) { c.Tracer = warmRec; c.EngineAvailable = javaDown })

	coldPlan, err := cold.Replan(textWorkflow(t, 1000), done)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Replan(textWorkflow(t, 1000), done); err != nil {
		t.Fatal(err)
	}
	warmPlan, err := warm.Replan(textWorkflow(t, 1000), done)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats().Hits == 0 {
		t.Fatal("warm replan had no cache hits")
	}
	if got, want := warmPlan.Describe(), coldPlan.Describe(); got != want {
		t.Fatalf("warm replan Describe diverged:\ncold:\n%s\nwarm:\n%s", want, got)
	}
	coldEvents := coldRec.Events()
	warmEvents := warmRec.Events()
	second := warmEvents[len(coldEvents):]
	for i := range second {
		second[i].Seq = coldEvents[i].Seq
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := trace.WriteJSONL(&wantBuf, coldEvents); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&gotBuf, second); err != nil {
		t.Fatal(err)
	}
	if wantBuf.String() != gotBuf.String() {
		t.Fatalf("warm replan trace diverged:\ncold:\n%s\nwarm:\n%s", wantBuf.String(), gotBuf.String())
	}
}

// TestWarmParetoByteIdentical covers the multi-objective table: a warm
// ParetoPlans call must return the same front, plan for plan, as the cold
// call that filled the cache.
func TestWarmParetoByteIdentical(t *testing.T) {
	lib := textLib(t)
	est := textEstimator()
	p := newPlanner(t, lib, est)

	coldPlans, err := p.ParetoPlans(textWorkflow(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	warmPlans, err := p.ParetoPlans(textWorkflow(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheStats().Hits == 0 {
		t.Fatal("warm pareto build had no cache hits")
	}
	if len(warmPlans) != len(coldPlans) {
		t.Fatalf("front size changed: cold=%d warm=%d", len(coldPlans), len(warmPlans))
	}
	for i := range coldPlans {
		if got, want := warmPlans[i].Describe(), coldPlans[i].Describe(); got != want {
			t.Fatalf("front[%d] diverged:\ncold:\n%s\nwarm:\n%s", i, want, got)
		}
	}
}

// TestReplanSeedReuse is the regression test for the hoisted seed map:
// replanning twice with the same done-set must not allocate any new DP
// table rows — the second build is served entirely from cache.
func TestReplanSeedReuse(t *testing.T) {
	p := newPlanner(t, textLib(t), textEstimator())
	done := []MaterializedIntermediate{{
		Dataset: "d1",
		Meta: metadata.MustParse(`
Engine.FS=HDFS
type=SequenceFile
`),
		Records: 800,
		Bytes:   800 * 4000,
	}}
	first, err := p.Replan(textWorkflow(t, 1000), done)
	if err != nil {
		t.Fatal(err)
	}
	rows := p.CacheStats().RowsAllocated
	second, err := p.Replan(textWorkflow(t, 1000), done)
	if err != nil {
		t.Fatal(err)
	}
	after := p.CacheStats()
	if after.RowsAllocated != rows {
		t.Fatalf("warm replan allocated %d new table rows", after.RowsAllocated-rows)
	}
	if after.Hits == 0 {
		t.Fatal("warm replan had no cache hits")
	}
	if first.Describe() != second.Describe() {
		t.Fatalf("replans diverged:\n%s\nvs\n%s", first.Describe(), second.Describe())
	}
}

// TestCacheMetricsAgree asserts the satellite contract: the registry's
// ires_planner_cache_* series must agree exactly with CacheStats (which
// itself accumulates the per-build dpStats), and the counters must appear
// in the Prometheus exposition. Cache counters must NOT leak into trace
// events, which have to stay byte-identical warm vs cold.
func TestCacheMetricsAgree(t *testing.T) {
	reg := trace.NewRegistry()
	rec := trace.NewRecorder(0)
	p := newPlanner(t, textLib(t), textEstimator(), func(c *Config) {
		c.Metrics = reg
		c.Tracer = rec
	})
	for i := 0; i < 3; i++ {
		if _, err := p.Plan(textWorkflow(t, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	cs := p.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("expected both hits and misses after 3 builds: %+v", cs)
	}
	if got := reg.Value(MetricCacheHits, nil); got != float64(cs.Hits) {
		t.Fatalf("%s=%v, CacheStats.Hits=%d", MetricCacheHits, got, cs.Hits)
	}
	if got := reg.Value(MetricCacheMisses, nil); got != float64(cs.Misses) {
		t.Fatalf("%s=%v, CacheStats.Misses=%d", MetricCacheMisses, got, cs.Misses)
	}
	if got := reg.Value(MetricEpoch, nil); got != float64(cs.Epoch) {
		t.Fatalf("%s=%v, CacheStats.Epoch=%d", MetricEpoch, got, cs.Epoch)
	}
	var prom bytes.Buffer
	reg.WritePrometheus(&prom)
	for _, name := range []string{MetricCacheHits, MetricCacheMisses, MetricEpoch} {
		if !bytes.Contains(prom.Bytes(), []byte(name)) {
			t.Fatalf("Prometheus exposition missing %s:\n%s", name, prom.String())
		}
	}
	// No cache counter may appear in trace-event fields.
	for _, ev := range rec.Events() {
		for _, k := range []string{"cacheHits", "cacheMisses"} {
			if _, ok := ev.Fields[k]; ok {
				t.Fatalf("trace event %s carries cache counter %q", ev.Type, k)
			}
		}
	}
}

// TestEpochInvalidation covers every external invalidation channel. The
// untyped Epoch hook must still flush wholesale (epoch bump, next build
// all-miss); library mutations and availability flips are typed and must
// evict only the dependent entries — no epoch bump, warm hits for the
// untouched subtrees — while still yielding correct fresh plans.
func TestEpochInvalidation(t *testing.T) {
	t.Run("epoch hook", func(t *testing.T) {
		var epoch uint64
		p := newPlanner(t, textLib(t), textEstimator(), func(c *Config) {
			c.Epoch = func() uint64 { return epoch }
		})
		if _, err := p.Plan(textWorkflow(t, 1000)); err != nil {
			t.Fatal(err)
		}
		before := p.CacheStats()
		epoch++
		if _, err := p.Plan(textWorkflow(t, 1000)); err != nil {
			t.Fatal(err)
		}
		after := p.CacheStats()
		if after.Epoch != before.Epoch+1 {
			t.Fatalf("epoch hook bump did not flush: before=%+v after=%+v", before, after)
		}
		if after.Hits != before.Hits {
			t.Fatalf("post-flush build hit the cache: before=%+v after=%+v", before, after)
		}
	})

	t.Run("library mutation", func(t *testing.T) {
		lib := textLib(t)
		p := newPlanner(t, lib, textEstimator())
		if _, err := p.Plan(textWorkflow(t, 1000)); err != nil {
			t.Fatal(err)
		}
		before := p.CacheStats()
		if _, err := lib.AddOperatorDescription("kmeans_spark", `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.Input0.Engine.FS=HDFS
Constraints.Input0.type=SequenceFile
Constraints.Output0.Engine.FS=HDFS
Constraints.Output0.type=SequenceFile
`); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Plan(textWorkflow(t, 1000)); err != nil {
			t.Fatal(err)
		}
		after := p.CacheStats()
		if after.Epoch != before.Epoch {
			t.Fatalf("library mutation flushed wholesale: before=%+v after=%+v", before, after)
		}
		if after.PartialInvalidations != before.PartialInvalidations+1 {
			t.Fatalf("library mutation not applied as a partial event: before=%+v after=%+v", before, after)
		}
		// Only the kmeans node's match list changed: its entry is evicted and
		// re-evaluated, the tfidf subtree stays warm and hits.
		if after.EvictedEntries != before.EvictedEntries+1 {
			t.Fatalf("library mutation should evict exactly the kmeans node: before=%+v after=%+v", before, after)
		}
		if after.Hits != before.Hits+1 || after.Misses != before.Misses+1 {
			t.Fatalf("expected 1 warm hit + 1 re-evaluation: before=%+v after=%+v", before, after)
		}
	})

	t.Run("availability flip", func(t *testing.T) {
		javaUp := true
		var mu sync.Mutex
		avail := func(name string) bool {
			mu.Lock()
			defer mu.Unlock()
			return javaUp || name != "Java"
		}
		est := textEstimator()
		p := newPlanner(t, textLib(t), est, func(c *Config) { c.EngineAvailable = avail })
		small, err := p.Plan(textWorkflow(t, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if got := small.Engines(); len(got) != 1 || got[0] != "Java" {
			t.Fatalf("baseline small-input plan should be all-WEKA, got %v", got)
		}
		before := p.CacheStats()
		mu.Lock()
		javaUp = false
		mu.Unlock()
		flipped, err := p.Plan(textWorkflow(t, 1000))
		if err != nil {
			t.Fatal(err)
		}
		after := p.CacheStats()
		if after.Epoch != before.Epoch {
			t.Fatalf("availability flip flushed wholesale: before=%+v after=%+v", before, after)
		}
		// No typed event was sent: the per-build availability fingerprint must
		// catch the flip on its own. Both nodes match a Java operator, so both
		// are footprint-hit and re-evaluated.
		if after.PartialInvalidations != before.PartialInvalidations+1 {
			t.Fatalf("fingerprint flip not applied as a partial event: before=%+v after=%+v", before, after)
		}
		if after.EvictedEntries != before.EvictedEntries+2 {
			t.Fatalf("expected both Java-matching nodes evicted: before=%+v after=%+v", before, after)
		}
		for _, e := range flipped.Engines() {
			if e == "Java" {
				t.Fatalf("plan still uses unavailable Java engine:\n%s", flipped.Describe())
			}
		}
	})
}

// TestFlushCache checks the explicit flush used by cold-start benchmarks.
func TestFlushCache(t *testing.T) {
	p := newPlanner(t, textLib(t), textEstimator())
	if _, err := p.Plan(textWorkflow(t, 1000)); err != nil {
		t.Fatal(err)
	}
	if p.CacheStats().NodeEntries == 0 {
		t.Fatal("cold build cached nothing")
	}
	p.FlushCache()
	cs := p.CacheStats()
	if cs.NodeEntries != 0 {
		t.Fatalf("flush left %d node entries", cs.NodeEntries)
	}
	if cs.Epoch == 0 {
		t.Fatal("flush did not bump the epoch")
	}
	if _, err := p.Plan(textWorkflow(t, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := p.CacheStats().Hits; got != 0 {
		t.Fatalf("post-flush build reported %d hits", got)
	}
}

// TestConcurrentPlansRace hammers one planner from several goroutines (a mix
// of Plan/Replan/ParetoPlans) so `go test -race` can catch cache races.
func TestConcurrentPlansRace(t *testing.T) {
	p := newPlanner(t, textLib(t), textEstimator(), func(c *Config) { c.Workers = 3 })
	done := []MaterializedIntermediate{{
		Dataset: "d1",
		Meta: metadata.MustParse(`
Engine.FS=HDFS
type=SequenceFile
`),
		Records: 800,
		Bytes:   800 * 4000,
	}}
	want, err := p.Plan(textWorkflow(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				switch (i + j) % 3 {
				case 0:
					pl, err := p.Plan(textWorkflow(t, 1000))
					if err != nil {
						t.Error(err)
						return
					}
					if pl.Describe() != want.Describe() {
						t.Errorf("concurrent plan diverged:\n%s", pl.Describe())
						return
					}
				case 1:
					if _, err := p.Replan(textWorkflow(t, 1000), done); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := p.ParetoPlans(textWorkflow(t, 1000)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}
