package planner

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/workflow"
)

// stubOp defines the behaviour of a fake estimator for one operator.
type stubOp struct {
	time      func(records float64) float64
	outFactor float64
	feasible  func(records float64) bool
}

type stubEstimator map[string]stubOp

func (s stubEstimator) Estimate(opName, target string, feats map[string]float64) (float64, bool) {
	op, ok := s[opName]
	if !ok {
		return 0, false
	}
	rec := feats["records"]
	if op.feasible != nil && !op.feasible(rec) {
		return 0, false
	}
	switch target {
	case targetExecTime:
		return op.time(rec), true
	case targetCost:
		return op.time(rec) * feats["nodes"], true
	case targetOutRecords:
		return rec * op.outFactor, true
	case targetOutBytes:
		return feats["bytes"] * op.outFactor, true
	}
	return 0, false
}

func mustLib(t *testing.T, descs map[string]string) *operator.Library {
	t.Helper()
	lib := operator.NewLibrary()
	for name, d := range descs {
		if _, err := lib.AddOperatorDescription(name, d); err != nil {
			t.Fatal(err)
		}
	}
	return lib
}

// textWorkflow builds the paper's Figure 4 abstract workflow:
// crawlDocuments -> TF_IDF -> d1 -> kmeans -> d2($$target)
func textWorkflow(t *testing.T, docs int64) *workflow.Graph {
	t.Helper()
	g := workflow.NewGraph()
	ds := operator.NewDataset("crawlDocuments", metadata.MustParse(`
Constraints.Engine.FS=HDFS
Constraints.type=SequenceFile
Execution.path=hdfs:///crawl
`))
	ds.Meta.Set("Optimization.documents", itoa(docs))
	ds.Meta.Set("Optimization.size", itoa(docs*5000))
	if _, err := g.AddDataset("crawlDocuments", ds); err != nil {
		t.Fatal(err)
	}
	tfidf := operator.NewAbstract("TF_IDF", metadata.MustParse(`
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Output.number=1
`))
	kmeans := operator.NewAbstract("kmeans", metadata.MustParse(`
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Output.number=1
`))
	if _, err := g.AddOperator("TF_IDF", tfidf); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOperator("kmeans", kmeans); err != nil {
		t.Fatal(err)
	}
	g.AddDataset("d1", nil)
	g.AddDataset("d2", nil)
	for _, e := range [][2]string{{"crawlDocuments", "TF_IDF"}, {"TF_IDF", "d1"}, {"d1", "kmeans"}, {"kmeans", "d2"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetTarget("d2"); err != nil {
		t.Fatal(err)
	}
	return g
}

func itoa(n int64) string {
	var b []byte
	if n == 0 {
		return "0"
	}
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Standard two-implementation library: mahout/Hadoop (HDFS SequenceFile)
// and WEKA/Java (local arff).
func textLib(t *testing.T) *operator.Library {
	return mustLib(t, map[string]string{
		"TF_IDF_mahout": `
Constraints.Engine=Hadoop
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.Input0.Engine.FS=HDFS
Constraints.Input0.type=SequenceFile
Constraints.Output0.Engine.FS=HDFS
Constraints.Output0.type=SequenceFile
`,
		"TF_IDF_weka": `
Constraints.Engine=Java
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.Input0.Engine.FS=LFS
Constraints.Input0.type=arff
Constraints.Output0.Engine.FS=LFS
Constraints.Output0.type=arff
`,
		"kmeans_mahout": `
Constraints.Engine=Hadoop
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.Input0.Engine.FS=HDFS
Constraints.Input0.type=SequenceFile
Constraints.Output0.Engine.FS=HDFS
Constraints.Output0.type=SequenceFile
`,
		"kmeans_weka": `
Constraints.Engine=Java
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.Input0.Engine.FS=LFS
Constraints.Input0.type=arff
Constraints.Output0.Engine.FS=LFS
Constraints.Output0.type=arff
`,
	})
}

func newPlanner(t *testing.T, lib *operator.Library, est Estimator, opts ...func(*Config)) *Planner {
	t.Helper()
	cfg := Config{Library: lib, Estimator: est}
	for _, o := range opts {
		o(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPaperFigure5SmallInput reproduces the paper's Figure 5 walkthrough:
// for a small corpus the centralized WEKA implementations win both steps,
// with a single move (HDFS SequenceFile -> local arff) inserted up front.
func TestPaperFigure5SmallInput(t *testing.T) {
	est := stubEstimator{
		"TF_IDF_mahout": {time: func(n float64) float64 { return 30 + n/1e4 }, outFactor: 0.5},
		"TF_IDF_weka":   {time: func(n float64) float64 { return 1 + n/1e3 }, outFactor: 0.5},
		"kmeans_mahout": {time: func(n float64) float64 { return 30 + n/1e4 }, outFactor: 0.1},
		"kmeans_weka":   {time: func(n float64) float64 { return 1 + n/1e3 }, outFactor: 0.1},
	}
	p := newPlanner(t, textLib(t), est)
	plan, err := p.Plan(textWorkflow(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	tf, ok := plan.StepFor("TF_IDF")
	if !ok || tf.Op.Name != "TF_IDF_weka" {
		t.Fatalf("TF_IDF materialized as %v, want weka\n%s", tf, plan.Describe())
	}
	km, ok := plan.StepFor("kmeans")
	if !ok || km.Op.Name != "kmeans_weka" {
		t.Fatalf("kmeans materialized as %v, want weka", km)
	}
	// Exactly one move: HDFS source -> local arff for weka tf-idf. The
	// weka->weka hop needs none.
	moves := 0
	for _, s := range plan.Steps {
		if s.Kind == StepMove {
			moves++
		}
	}
	if moves != 1 {
		t.Fatalf("moves = %d, want 1\n%s", moves, plan.Describe())
	}
}

// TestLargeInputPrefersDistributed flips the estimator so Hadoop wins large
// inputs; no move is needed since the source is already HDFS.
func TestLargeInputPrefersDistributed(t *testing.T) {
	est := stubEstimator{
		"TF_IDF_mahout": {time: func(n float64) float64 { return 30 + n/1e5 }, outFactor: 0.5},
		"TF_IDF_weka":   {time: func(n float64) float64 { return 1 + n/1e2 }, outFactor: 0.5},
		"kmeans_mahout": {time: func(n float64) float64 { return 30 + n/1e5 }, outFactor: 0.1},
		"kmeans_weka":   {time: func(n float64) float64 { return 1 + n/1e2 }, outFactor: 0.1},
	}
	p := newPlanner(t, textLib(t), est)
	plan, err := p.Plan(textWorkflow(t, 10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := plan.StepFor("TF_IDF")
	if tf.Op.Name != "TF_IDF_mahout" {
		t.Fatalf("want mahout for 10M docs, got %s", tf.Op.Name)
	}
	for _, s := range plan.Steps {
		if s.Kind == StepMove {
			t.Fatalf("unexpected move in all-HDFS plan:\n%s", plan.Describe())
		}
	}
	if len(plan.Engines()) != 1 || plan.Engines()[0] != "Hadoop" {
		t.Fatalf("engines = %v", plan.Engines())
	}
}

// TestHybridPlanBeatsSingleEngine builds the Fig 12 situation: tf-idf
// cheapest centralized, k-means cheapest distributed; the optimal plan mixes
// engines and pays one move.
func TestHybridPlanBeatsSingleEngine(t *testing.T) {
	est := stubEstimator{
		"TF_IDF_mahout": {time: func(n float64) float64 { return 100 }, outFactor: 0.5},
		"TF_IDF_weka":   {time: func(n float64) float64 { return 10 }, outFactor: 0.5},
		"kmeans_mahout": {time: func(n float64) float64 { return 10 }, outFactor: 0.1},
		"kmeans_weka":   {time: func(n float64) float64 { return 100 }, outFactor: 0.1},
	}
	p := newPlanner(t, textLib(t), est)
	plan, err := p.Plan(textWorkflow(t, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := plan.StepFor("TF_IDF")
	km, _ := plan.StepFor("kmeans")
	if tf.Op.Name != "TF_IDF_weka" || km.Op.Name != "kmeans_mahout" {
		t.Fatalf("hybrid not chosen: %s, %s\n%s", tf.Op.Name, km.Op.Name, plan.Describe())
	}
	if len(plan.Engines()) != 2 {
		t.Fatalf("engines = %v, want 2", plan.Engines())
	}
	// Moves: source HDFS->weka local, then weka local->mahout HDFS.
	moves := 0
	for _, s := range plan.Steps {
		if s.Kind == StepMove {
			moves++
		}
	}
	if moves != 2 {
		t.Fatalf("moves = %d, want 2\n%s", moves, plan.Describe())
	}
	// Dependencies must chain: kmeans step depends on a move which depends
	// on the tf-idf step.
	if len(km.DependsOn) != 1 {
		t.Fatalf("kmeans deps = %v", km.DependsOn)
	}
	mv := plan.Steps[km.DependsOn[0]]
	if mv.Kind != StepMove || len(mv.DependsOn) != 1 || plan.Steps[mv.DependsOn[0]].ID != tf.ID {
		t.Fatalf("dependency chain broken:\n%s", plan.Describe())
	}
}

func TestUnavailableEngineExcluded(t *testing.T) {
	est := stubEstimator{
		"TF_IDF_mahout": {time: func(n float64) float64 { return 1 }, outFactor: 0.5},
		"TF_IDF_weka":   {time: func(n float64) float64 { return 100 }, outFactor: 0.5},
		"kmeans_mahout": {time: func(n float64) float64 { return 1 }, outFactor: 0.1},
		"kmeans_weka":   {time: func(n float64) float64 { return 100 }, outFactor: 0.1},
	}
	p := newPlanner(t, textLib(t), est, func(c *Config) {
		c.EngineAvailable = func(name string) bool { return name != "Hadoop" }
	})
	plan, err := p.Plan(textWorkflow(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.OperatorSteps() {
		if s.Engine == "Hadoop" {
			t.Fatalf("excluded engine used:\n%s", plan.Describe())
		}
	}
}

func TestInfeasibleConfigurationsSkipped(t *testing.T) {
	// weka infeasible beyond 10k records (OOM wall): large input must go to
	// mahout despite worse estimates.
	est := stubEstimator{
		"TF_IDF_mahout": {time: func(n float64) float64 { return 1000 }, outFactor: 0.5},
		"TF_IDF_weka": {time: func(n float64) float64 { return 1 }, outFactor: 0.5,
			feasible: func(n float64) bool { return n < 10_000 }},
		"kmeans_mahout": {time: func(n float64) float64 { return 1000 }, outFactor: 0.1},
		"kmeans_weka": {time: func(n float64) float64 { return 1 }, outFactor: 0.1,
			feasible: func(n float64) bool { return n < 10_000 }},
	}
	p := newPlanner(t, textLib(t), est)
	plan, err := p.Plan(textWorkflow(t, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := plan.StepFor("TF_IDF")
	if tf.Op.Name != "TF_IDF_mahout" {
		t.Fatalf("infeasible weka still chosen")
	}
	// kmeans input is 500k records (0.5 factor) — still infeasible for weka.
	km, _ := plan.StepFor("kmeans")
	if km.Op.Name != "kmeans_mahout" {
		t.Fatalf("infeasible weka kmeans chosen")
	}
}

func TestNoPlanError(t *testing.T) {
	est := stubEstimator{}
	p := newPlanner(t, textLib(t), est)
	_, err := p.Plan(textWorkflow(t, 1000))
	if !errors.Is(err, ErrNoPlan) {
		t.Fatalf("err = %v, want ErrNoPlan", err)
	}
}

// TestLocationAwareDP verifies the dpTable keeps one entry per tag: a more
// expensive implementation whose output sits in the right store wins when
// the downstream step is location-sensitive.
func TestLocationAwareDP(t *testing.T) {
	lib := mustLib(t, map[string]string{
		// step1 alternatives: cheap produces LFS output, pricey produces HDFS.
		"s1_cheap_lfs": `
Constraints.Engine=Java
Constraints.OpSpecification.Algorithm.name=step1
Constraints.Output0.Engine.FS=LFS
`,
		"s1_pricey_hdfs": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=step1
Constraints.Output0.Engine.FS=HDFS
`,
		// step2 only exists on Spark and requires HDFS input.
		"s2_spark": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=step2
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
`,
	})
	est := stubEstimator{
		"s1_cheap_lfs":   {time: func(n float64) float64 { return 3 }, outFactor: 1},
		"s1_pricey_hdfs": {time: func(n float64) float64 { return 5 }, outFactor: 1},
		"s2_spark":       {time: func(n float64) float64 { return 1 }, outFactor: 1},
	}
	g := workflow.NewGraph()
	src := operator.NewDataset("src", metadata.MustParse("Execution.path=hdfs:///src\nConstraints.Engine.FS=HDFS\nOptimization.size=2000000000\nOptimization.documents=1000"))
	g.AddDataset("src", src)
	g.AddOperator("step1", operator.NewAbstract("step1", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=step1")))
	g.AddOperator("step2", operator.NewAbstract("step2", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=step2")))
	g.AddDataset("mid", nil)
	g.AddDataset("out", nil)
	for _, e := range [][2]string{{"src", "step1"}, {"step1", "mid"}, {"mid", "step2"}, {"step2", "out"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetTarget("out")

	// Move cost is high (2GB at 100MB/s = 20s): 3 + 20 + 1 > 5 + 1.
	p := newPlanner(t, lib, est)
	plan, err := p.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := plan.StepFor("step1")
	if s1.Op.Name != "s1_pricey_hdfs" {
		t.Fatalf("location-aware choice failed:\n%s", plan.Describe())
	}
}

func TestReplanReusesIntermediates(t *testing.T) {
	est := stubEstimator{
		"TF_IDF_mahout": {time: func(n float64) float64 { return 50 }, outFactor: 0.5},
		"TF_IDF_weka":   {time: func(n float64) float64 { return 40 }, outFactor: 0.5},
		"kmeans_mahout": {time: func(n float64) float64 { return 20 }, outFactor: 0.1},
		"kmeans_weka":   {time: func(n float64) float64 { return 30 }, outFactor: 0.1},
	}
	p := newPlanner(t, textLib(t), est)
	g := textWorkflow(t, 10_000)

	// d1 already materialized on HDFS by a prior partial execution.
	done := []MaterializedIntermediate{{
		Dataset: "d1",
		Meta:    metadata.MustParse("Engine.FS=HDFS\ntype=SequenceFile"),
		Records: 5_000,
		Bytes:   25_000_000,
	}}
	plan, err := p.Replan(g, done)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.StepFor("TF_IDF"); ok {
		t.Fatalf("replan re-executed completed TF_IDF:\n%s", plan.Describe())
	}
	km, ok := plan.StepFor("kmeans")
	if !ok {
		t.Fatal("kmeans missing from replan")
	}
	if km.Op.Name != "kmeans_mahout" {
		t.Fatalf("kmeans impl = %s, want mahout (input already HDFS)", km.Op.Name)
	}
	if plan.EstTimeSec >= 50 {
		t.Fatalf("replan cost %.1f should be < full plan", plan.EstTimeSec)
	}

	if _, err := p.Replan(g, []MaterializedIntermediate{{Dataset: "nope"}}); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
}

func TestTrivialTargetAlreadyMaterialized(t *testing.T) {
	// Target dataset is itself materialized: plan has zero steps.
	g := workflow.NewGraph()
	ds := operator.NewDataset("d", metadata.MustParse("Execution.path=hdfs:///d"))
	g.AddDataset("d", ds)
	g.SetTarget("d")
	p := newPlanner(t, operator.NewLibrary(), stubEstimator{})
	plan, err := p.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 || plan.EstObjective != 0 {
		t.Fatalf("trivial plan wrong: %s", plan.Describe())
	}
}

func TestDiamondSharedProducerNotDuplicated(t *testing.T) {
	lib := mustLib(t, map[string]string{
		"a_java":    "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=a",
		"b_java":    "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=b",
		"c_java":    "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=c",
		"join_java": "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=join\nConstraints.Input.number=2",
	})
	est := stubEstimator{
		"a_java":    {time: func(n float64) float64 { return 5 }, outFactor: 1},
		"b_java":    {time: func(n float64) float64 { return 5 }, outFactor: 1},
		"c_java":    {time: func(n float64) float64 { return 5 }, outFactor: 1},
		"join_java": {time: func(n float64) float64 { return 5 }, outFactor: 1},
	}
	g := workflow.NewGraph()
	g.AddDataset("src", operator.NewDataset("src", metadata.MustParse("Execution.path=/src\nOptimization.documents=100\nOptimization.size=1000")))
	for _, op := range []string{"a", "b", "c", "join"} {
		g.AddOperator(op, operator.NewAbstract(op, metadata.MustParse("Constraints.OpSpecification.Algorithm.name="+op)))
	}
	for _, d := range []string{"da", "db", "dc", "out"} {
		g.AddDataset(d, nil)
	}
	// src -> a -> da; da -> b -> db; da -> c -> dc; db,dc -> join -> out
	for _, e := range [][2]string{
		{"src", "a"}, {"a", "da"},
		{"da", "b"}, {"b", "db"},
		{"da", "c"}, {"c", "dc"},
		{"db", "join"}, {"dc", "join"}, {"join", "out"},
	} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetTarget("out")
	p := newPlanner(t, lib, est)
	plan, err := p.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range plan.OperatorSteps() {
		counts[s.WorkflowNode]++
	}
	for op, c := range counts {
		if c != 1 {
			t.Fatalf("operator %s materialized %d times:\n%s", op, c, plan.Describe())
		}
	}
	if len(plan.OperatorSteps()) != 4 {
		t.Fatalf("want 4 operator steps:\n%s", plan.Describe())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing library accepted")
	}
	if _, err := New(Config{Library: operator.NewLibrary()}); err == nil {
		t.Fatal("missing estimator accepted")
	}
}

func TestMinCostObjective(t *testing.T) {
	// Under MinCost, the high-node plan loses even though faster
	// (stub cost = time * nodes).
	lib := mustLib(t, map[string]string{
		"x_spark": "Constraints.Engine=Spark\nConstraints.OpSpecification.Algorithm.name=x",
		"x_java":  "Constraints.Engine=Java\nConstraints.OpSpecification.Algorithm.name=x",
	})
	est := stubEstimator{
		"x_spark": {time: func(n float64) float64 { return 10 }, outFactor: 1},
		"x_java":  {time: func(n float64) float64 { return 50 }, outFactor: 1},
	}
	g := workflow.NewGraph()
	g.AddDataset("src", operator.NewDataset("src", metadata.MustParse("Execution.path=/s\nOptimization.documents=10\nOptimization.size=100")))
	g.AddOperator("x", operator.NewAbstract("x", metadata.MustParse("Constraints.OpSpecification.Algorithm.name=x")))
	g.AddDataset("out", nil)
	g.Connect("src", "x")
	g.Connect("x", "out")
	g.SetTarget("out")

	resByEngine := func(mo *operator.Materialized, _, _ int64) Resources {
		if mo.Engine() == "Java" {
			return Resources{Nodes: 1, CoresPerN: 2, MemMBPerN: 1024}
		}
		return Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 1024}
	}

	pTime := newPlanner(t, lib, est, func(c *Config) { c.Resources = resByEngine })
	planT, err := pTime.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := planT.StepFor("x"); s.Op.Name != "x_spark" {
		t.Fatalf("MinTime chose %s", s.Op.Name)
	}

	pCost := newPlanner(t, lib, est, func(c *Config) {
		c.Objective = MinCost
		c.Resources = resByEngine
	})
	planC, err := pCost.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// java: 50*1=50; spark: 10*16=160 -> java wins on cost.
	if s, _ := planC.StepFor("x"); s.Op.Name != "x_java" {
		t.Fatalf("MinCost chose %s", s.Op.Name)
	}
}

// Property: under MinTime, the plan's estimated time equals the sum of its
// step times (tree workflows), and is never worse than forcing any single
// engine.
func TestQuickPlanOptimality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random chain workflow of depth 2-5, two engines with random costs.
		depth := r.Intn(4) + 2
		lib := operator.NewLibrary()
		est := stubEstimator{}
		engines := []string{"Java", "Spark"}
		fses := map[string]string{"Java": "LFS", "Spark": "HDFS"}
		for d := 0; d < depth; d++ {
			alg := "op" + itoa(int64(d))
			for _, eng := range engines {
				name := alg + "_" + eng
				desc := "Constraints.Engine=" + eng +
					"\nConstraints.OpSpecification.Algorithm.name=" + alg +
					"\nConstraints.Input0.Engine.FS=" + fses[eng] +
					"\nConstraints.Output0.Engine.FS=" + fses[eng]
				if _, err := lib.AddOperatorDescription(name, desc); err != nil {
					return false
				}
				cost := float64(r.Intn(100) + 1)
				est[name] = stubOp{time: func(n float64) float64 { return cost }, outFactor: 1}
			}
		}
		g := workflow.NewGraph()
		g.AddDataset("src", operator.NewDataset("src",
			metadata.MustParse("Execution.path=/s\nConstraints.Engine.FS=HDFS\nOptimization.documents=100\nOptimization.size=1000")))
		prev := "src"
		for d := 0; d < depth; d++ {
			op := "node" + itoa(int64(d))
			g.AddOperator(op, operator.NewAbstract(op,
				metadata.MustParse("Constraints.OpSpecification.Algorithm.name=op"+itoa(int64(d)))))
			ds := "d" + itoa(int64(d))
			g.AddDataset(ds, nil)
			g.Connect(prev, op)
			g.Connect(op, ds)
			prev = ds
		}
		g.SetTarget(prev)

		p, err := New(Config{Library: lib, Estimator: est})
		if err != nil {
			return false
		}
		plan, err := p.Plan(g)
		if err != nil {
			return false
		}
		// (1) step-sum consistency
		sum := 0.0
		for _, s := range plan.Steps {
			sum += s.EstTimeSec
		}
		if diff := sum - plan.EstTimeSec; diff > 1e-6 || diff < -1e-6 {
			return false
		}
		// (2) never worse than each single-engine forced plan
		for _, eng := range engines {
			eng := eng
			pf, err := New(Config{Library: lib, Estimator: est,
				EngineAvailable: func(name string) bool { return name == eng }})
			if err != nil {
				return false
			}
			forced, err := pf.Plan(g)
			if err != nil {
				continue // single engine may be infeasible
			}
			if plan.EstObjective > forced.EstObjective+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeContainsSteps(t *testing.T) {
	est := stubEstimator{
		"TF_IDF_mahout": {time: func(n float64) float64 { return 1 }, outFactor: 0.5},
		"TF_IDF_weka":   {time: func(n float64) float64 { return 9 }, outFactor: 0.5},
		"kmeans_mahout": {time: func(n float64) float64 { return 1 }, outFactor: 0.1},
		"kmeans_weka":   {time: func(n float64) float64 { return 9 }, outFactor: 0.1},
	}
	p := newPlanner(t, textLib(t), est)
	plan, err := p.Plan(textWorkflow(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Describe()
	if !strings.Contains(d, "TF_IDF/TF_IDF_mahout") || !strings.Contains(d, "plan for target d2") {
		t.Fatalf("Describe output:\n%s", d)
	}
}
