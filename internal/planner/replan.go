package planner

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/workflow"
)

// MaterializedIntermediate is an intermediate workflow dataset that already
// exists (a surviving result of a partially executed plan). Replanning
// seeds the dpTable with these at zero cost, so the new plan reuses them
// instead of re-executing their producers — the IResReplan strategy of
// D3.3 §4.5.
type MaterializedIntermediate struct {
	Dataset string // workflow dataset node name
	Meta    *metadata.Tree
	Records int64
	Bytes   int64
}

// PartialOperator reports sub-operator checkpoint progress surviving a
// suspension or crash: the named workflow operator has durably completed
// UnitsDone of UnitsTotal work units (iterations or partitions) under
// Algorithm. The replanned execution seeds this progress into its attempts —
// the sub-operator analogue of seeding dpTable rows with materialized
// intermediates.
type PartialOperator struct {
	WorkflowNode string // workflow operator node name (stable across replans)
	Algorithm    string
	UnitsDone    int
	UnitsTotal   int
}

// Replan computes a fresh optimal plan for the workflow given the
// already-materialized intermediates. Combine with Config.EngineAvailable
// to exclude the failed engine.
func (p *Planner) Replan(g *workflow.Graph, done []MaterializedIntermediate) (*Plan, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureCacheValidLocked()
	p.emit(trace.Event{Type: trace.EvPlanStart, Fields: map[string]float64{
		"nodes": float64(g.Len()), "replan": 1, "seeded": float64(len(done)),
	}})
	// The seed entry map is memoized per done-set (memo.go): replanning with
	// the same surviving intermediates reuses the previous rows outright.
	seed, err := p.seedForLocked(g, done)
	if err != nil {
		return nil, err
	}
	dp, stats, err := p.buildTable(g, seed)
	if err != nil {
		return nil, err
	}
	p.recordBuildLocked(stats)
	plan, err := p.extract(g, dp, started)
	if err != nil {
		return nil, err
	}
	f := stats.fields(plan)
	f["replan"] = 1
	p.emit(trace.Event{Type: trace.EvPlanFinish, Fields: f})
	return plan, nil
}

// Describe renders a human-readable summary of the plan. The output is a
// pure function of the plan's steps and estimates — it deliberately omits
// wall-clock PlanningTime so identical plans describe identically.
func (pl *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for target %s: est time %.1fs, est cost %.1f (objective %.2f)\n",
		pl.Target, pl.EstTimeSec, pl.EstCost, pl.EstObjective)
	for _, s := range pl.Steps {
		fmt.Fprintf(&b, "  %s", s)
		if len(s.DependsOn) > 0 {
			fmt.Fprintf(&b, " after %v", s.DependsOn)
		}
		if len(s.SourceInputs) > 0 {
			fmt.Fprintf(&b, " reads %v", s.SourceInputs)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// DOT renders the materialized plan as a Graphviz digraph: operator steps
// as boxes labelled with their engine, moves as diamonds, source datasets
// as ellipses.
func (pl *Plan) DOT() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  rankdir=LR;\n")
	sources := make(map[string]bool)
	for _, s := range pl.Steps {
		switch s.Kind {
		case StepMove:
			fmt.Fprintf(&b, "  step%d [shape=diamond, label=%q];\n", s.ID, s.Name)
		default:
			fmt.Fprintf(&b, "  step%d [shape=box, label=\"%s\\n@%s\"];\n", s.ID, s.Name, s.Engine)
		}
		for _, src := range s.SourceInputs {
			sources[src] = true
		}
	}
	srcNames := make([]string, 0, len(sources))
	for n := range sources {
		srcNames = append(srcNames, n)
	}
	sort.Strings(srcNames)
	for _, n := range srcNames {
		fmt.Fprintf(&b, "  %q [shape=ellipse];\n", n)
	}
	for _, s := range pl.Steps {
		for _, dep := range s.DependsOn {
			fmt.Fprintf(&b, "  step%d -> step%d;\n", dep, s.ID)
		}
		for _, src := range s.SourceInputs {
			fmt.Fprintf(&b, "  %q -> step%d;\n", src, s.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// OperatorSteps returns only the operator steps of the plan.
func (pl *Plan) OperatorSteps() []*Step {
	var out []*Step
	for _, s := range pl.Steps {
		if s.Kind == StepOperator {
			out = append(out, s)
		}
	}
	return out
}

// Engines returns the distinct engines used by operator steps, in first-use
// order.
func (pl *Plan) Engines() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range pl.Steps {
		if s.Kind == StepOperator && !seen[s.Engine] {
			seen[s.Engine] = true
			out = append(out, s.Engine)
		}
	}
	return out
}

// StepFor returns the operator step materializing the given abstract
// workflow operator node, if present.
func (pl *Plan) StepFor(workflowNode string) (*Step, bool) {
	for _, s := range pl.Steps {
		if s.Kind == StepOperator && s.WorkflowNode == workflowNode {
			return s, true
		}
	}
	return nil, false
}
