package planner

import (
	"fmt"
	"sort"
	"time"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/workflow"
)

// matOp aliases the library's materialized operator type.
type matOp = operator.Materialized

// Pareto-frontier planning — the multi-objective extension the paper lists
// as work-in-progress ("finding Pareto frontier execution plans",
// D3.3 §2.2.3). Instead of folding (time, cost) into a scalar objective,
// the dynamic program keeps, per dataset tag, the set of mutually
// non-dominated (time, cost) plans, pruned to a bounded front size. The
// result is a set of materialized plans the user picks from.

// MaxFrontPerTag bounds the number of non-dominated entries kept per
// dataset tag; larger values trade planning time for front resolution.
const MaxFrontPerTag = 16

type pVec struct {
	time  float64
	money float64
}

func (a pVec) dominates(b pVec) bool {
	return a.time <= b.time && a.money <= b.money && (a.time < b.time || a.money < b.money)
}

// pEntry is one non-dominated dpTable record.
type pEntry struct {
	meta *metadata.Tree
	// metaKey caches meta.String(); see tagEntry.metaKey.
	metaKey string
	records int64
	bytes   int64
	v       pVec

	source   string
	cand     *pCandidate
	outIndex int
	// sig is the structural digest of the producing subplan (memo.go).
	sig sig
}

// pChoice is one resolved input of a candidate.
type pChoice struct {
	entry    *pEntry
	moved    bool
	moveTime float64
	moveCost float64
	moveMeta *metadata.Tree
}

// pCandidate is a materialized operator with one specific combination of
// input entries.
type pCandidate struct {
	node    *workflow.Node
	mo      *matOp
	res     Resources
	params  map[string]float64
	inputs  []pChoice
	opTime  float64
	opMoney float64

	inRecords, inBytes   int64
	outRecords, outBytes int64
}

// ParetoPlans runs the multi-objective DP and returns the Pareto front of
// materialized plans, sorted by ascending estimated time (descending cost).
func (p *Planner) ParetoPlans(g *workflow.Graph) ([]*Plan, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureCacheValidLocked()
	p.emit(trace.Event{Type: trace.EvPlanStart, Fields: map[string]float64{
		"nodes": float64(g.Len()), "pareto": 1,
	}})

	stats := &dpStats{}
	prunedFronts := 0 // dominated/thinned entries dropped from tag fronts
	dp := make(map[*workflow.Node]map[string][]*pEntry)
	insert := func(n *workflow.Node, e *pEntry) {
		key := e.metaKey
		m := dp[n]
		if m == nil {
			m = make(map[string][]*pEntry)
			dp[n] = m
		}
		before := len(m[key]) + 1
		m[key] = pruneFront(append(m[key], e))
		prunedFronts += before - len(m[key])
	}

	for _, d := range g.Datasets() {
		if d.Dataset.IsMaterialized() {
			insert(d, p.pLeafEntryLocked(d))
		}
	}

	ops, err := g.OperatorsTopological()
	if err != nil {
		return nil, err
	}
	for _, o := range ops {
		p.readSigs = p.readSigs[:0]
		key := p.pNodeKey(o, dp)
		res, ok := p.cache.pnodes[key]
		if ok {
			stats.cacheHits++
		} else {
			stats.cacheMisses++
			var foot *footprint
			res, foot = p.evalParetoNode(o, dp)
			foot.inSigs = append([]sig(nil), p.readSigs...)
			p.cache.pnodes[key] = res
			p.registerFootLocked(key, foot)
		}
		// Replay through the normal front merge so prunedFronts counts
		// exactly as a cold build would.
		for _, rec := range res.inserts {
			insert(o.Outputs[rec.out], rec.e)
		}
	}
	p.recordBuildLocked(stats)

	targetNode, _ := g.Node(g.Target)
	var front []*pEntry
	for _, key := range sortedPKeys(dp[targetNode]) {
		front = append(front, dp[targetNode][key]...)
	}
	front = pruneFront(front)
	if len(front) == 0 {
		return nil, fmt.Errorf("%w: target %s unreachable", ErrNoPlan, g.Target)
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].v.time != front[j].v.time {
			return front[i].v.time < front[j].v.time
		}
		return front[i].v.money < front[j].v.money
	})

	plans := make([]*Plan, 0, len(front))
	for _, e := range front {
		plan := p.extractPareto(g, e)
		plan.PlanningTime = time.Since(started)
		plans = append(plans, plan)
	}
	p.emit(trace.Event{Type: trace.EvPlanFinish, Fields: map[string]float64{
		"pareto":       1,
		"frontSize":    float64(len(plans)),
		"prunedFronts": float64(prunedFronts),
	}})
	return plans, nil
}

// evalParetoNode enumerates every available materialization of one operator
// node cold, fanning the per-materialization candidate enumeration over the
// worker pool and reducing in library (name) order for determinism. It also
// returns the node's dependency footprint (inSigs left for the caller).
func (p *Planner) evalParetoNode(o *workflow.Node, dp map[*workflow.Node]map[string][]*pEntry) (*pNodeResult, *footprint) {
	res := &pNodeResult{}
	all := p.cfg.Library.FindMaterialized(o.Operator)
	foot := p.newFootprintLocked(o.Operator, all)
	var mos []*matOp
	for _, mo := range all {
		if p.cfg.EngineAvailable != nil && !p.cfg.EngineAvailable(mo.Engine()) {
			continue
		}
		mos = append(mos, mo)
		foot.estOps = append(foot.estOps, mo.Name)
	}
	lists := make([][]*pCandidate, len(mos))
	p.runConcurrent(len(mos), func(i int) { lists[i] = p.paretoCandidates(o, mos[i], dp) })
	for i, mo := range mos {
		for _, cand := range lists[i] {
			total := cand.pathVec()
			for idx := range o.Outputs {
				outMeta := mo.OutputSpec(idx)
				if outMeta == nil {
					outMeta = metadata.New()
					outMeta.Set("Engine", mo.Engine())
				}
				meta := outMeta.Clone()
				e := &pEntry{
					meta:     meta,
					metaKey:  meta.String(),
					records:  cand.outRecords,
					bytes:    cand.outBytes,
					v:        total,
					cand:     cand,
					outIndex: idx,
				}
				e.sig = pDerivedSig(cand, idx, e.metaKey)
				p.cache.rowsAlloc++
				res.inserts = append(res.inserts, pInsertRec{out: idx, e: e})
			}
		}
	}
	return res, foot
}

// paretoCandidates enumerates the non-dominated input combinations for one
// materialized operator, capped at MaxFrontPerTag combinations.
func (p *Planner) paretoCandidates(o *workflow.Node, mo *matOp, dp map[*workflow.Node]map[string][]*pEntry) []*pCandidate {
	partials := []pPartial{{}}
	for i, in := range o.Inputs {
		var options []pChoice
		var optionVec []pVec
		for _, key := range sortedPKeys(dp[in]) {
			for _, tin := range dp[in][key] {
				if mo.AcceptsInput(i, tin.meta) {
					options = append(options, pChoice{entry: tin})
					optionVec = append(optionVec, tin.v)
				} else {
					moveSec := p.cfg.MoveSeconds(tin.bytes)
					moveCost := moveSec * p.cfg.MoveCostRate
					options = append(options, pChoice{
						entry: tin, moved: true,
						moveTime: moveSec, moveCost: moveCost,
						moveMeta: movedMeta(tin.meta, mo.InputConstraint(i)),
					})
					optionVec = append(optionVec, pVec{tin.v.time + moveSec, tin.v.money + moveCost})
				}
			}
		}
		if len(options) == 0 {
			return nil
		}
		var next []pPartial
		for _, pt := range partials {
			for oi, opt := range options {
				next = append(next, pPartial{
					inputs:  append(append([]pChoice(nil), pt.inputs...), opt),
					v:       pVec{pt.v.time + optionVec[oi].time, pt.v.money + optionVec[oi].money},
					records: pt.records + opt.entry.records,
					bytes:   pt.bytes + opt.entry.bytes,
				})
			}
		}
		partials = prunePartials(next)
	}

	var out []*pCandidate
	for _, pt := range partials {
		res := p.cfg.Resources(mo, pt.records, pt.bytes)
		params := mo.Params()
		feats := map[string]float64{
			"records":  float64(pt.records),
			"bytes":    float64(pt.bytes),
			"nodes":    float64(res.Nodes),
			"cores":    float64(res.CoresPerN),
			"memoryMB": float64(res.MemMBPerN),
		}
		for k, v := range params {
			feats[k] = v
		}
		t, ok := p.cfg.Estimator.Estimate(mo.Name, targetExecTime, feats)
		if !ok {
			continue
		}
		c, ok := p.cfg.Estimator.Estimate(mo.Name, targetCost, feats)
		if !ok {
			continue
		}
		cand := &pCandidate{
			node: o, mo: mo, res: res, params: params,
			inputs: pt.inputs, opTime: t, opMoney: c,
			inRecords: pt.records, inBytes: pt.bytes,
		}
		if v, ok := p.cfg.Estimator.Estimate(mo.Name, targetOutRecords, feats); ok && v > 0 {
			cand.outRecords = int64(v)
		} else {
			cand.outRecords = pt.records
		}
		if v, ok := p.cfg.Estimator.Estimate(mo.Name, targetOutBytes, feats); ok && v > 0 {
			cand.outBytes = int64(v)
		} else {
			cand.outBytes = pt.bytes
		}
		out = append(out, cand)
	}
	return out
}

func (c *pCandidate) pathVec() pVec {
	v := pVec{c.opTime, c.opMoney}
	for _, in := range c.inputs {
		v.time += in.entry.v.time
		v.money += in.entry.v.money
		if in.moved {
			v.time += in.moveTime
			v.money += in.moveCost
		}
	}
	return v
}

// pruneFront removes dominated entries and thins the survivors to
// MaxFrontPerTag by keeping time-extremes and evenly spaced members.
func pruneFront(entries []*pEntry) []*pEntry {
	var nd []*pEntry
	for i, e := range entries {
		dominated := false
		for j, other := range entries {
			if i == j {
				continue
			}
			if other.v.dominates(e.v) || (other.v == e.v && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			nd = append(nd, e)
		}
	}
	if len(nd) <= MaxFrontPerTag {
		return nd
	}
	sort.Slice(nd, func(i, j int) bool { return nd[i].v.time < nd[j].v.time })
	out := make([]*pEntry, 0, MaxFrontPerTag)
	step := float64(len(nd)-1) / float64(MaxFrontPerTag-1)
	for i := 0; i < MaxFrontPerTag; i++ {
		out = append(out, nd[int(float64(i)*step)])
	}
	return out
}

// pPartial accumulates resolved input choices while combining input slots.
type pPartial struct {
	inputs  []pChoice
	v       pVec
	records int64
	bytes   int64
}

// prunePartials removes dominated input combinations and caps the set.
func prunePartials(parts []pPartial) []pPartial {
	var nd []pPartial
	for i, e := range parts {
		dominated := false
		for j, other := range parts {
			if i == j {
				continue
			}
			if other.v.dominates(e.v) || (other.v == e.v && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			nd = append(nd, e)
		}
	}
	if len(nd) <= MaxFrontPerTag {
		return nd
	}
	sort.Slice(nd, func(i, j int) bool { return nd[i].v.time < nd[j].v.time })
	out := make([]pPartial, 0, MaxFrontPerTag)
	step := float64(len(nd)-1) / float64(MaxFrontPerTag-1)
	for i := 0; i < MaxFrontPerTag; i++ {
		out = append(out, nd[int(float64(i)*step)])
	}
	return out
}

func sortedPKeys(m map[string][]*pEntry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// extractPareto backtracks one front entry into a Plan.
func (p *Planner) extractPareto(g *workflow.Graph, best *pEntry) *Plan {
	plan := &Plan{Target: g.Target}
	candSteps := make(map[*pCandidate]*Step)
	var build func(e *pEntry) (int, bool)
	build = func(e *pEntry) (int, bool) {
		if e.cand == nil {
			return -1, false
		}
		if s, ok := candSteps[e.cand]; ok {
			return s.ID, true
		}
		c := e.cand
		step := &Step{
			Kind:         StepOperator,
			Name:         c.node.Name + "/" + c.mo.Name,
			WorkflowNode: c.node.Name,
			Op:           c.mo,
			Engine:       c.mo.Engine(),
			Algorithm:    c.mo.Algorithm(),
			Res:          c.res,
			Params:       c.params,
			InRecords:    c.inRecords,
			InBytes:      c.inBytes,
			OutRecords:   c.outRecords,
			OutBytes:     c.outBytes,
			EstTimeSec:   c.opTime,
			EstCost:      c.opMoney,
		}
		if len(c.node.Outputs) > 0 {
			step.OutDataset = c.node.Outputs[0].Name
			if om := c.mo.OutputSpec(0); om != nil {
				step.OutMeta = om.Clone()
			}
		}
		for _, in := range c.inputs {
			depID, isStep := build(in.entry)
			producerID := depID
			if in.moved {
				mv := &Step{
					Kind:       StepMove,
					Name:       fmt.Sprintf("move->%s", c.node.Name),
					Engine:     "move",
					Algorithm:  "move",
					InRecords:  in.entry.records,
					InBytes:    in.entry.bytes,
					OutRecords: in.entry.records,
					OutBytes:   in.entry.bytes,
					EstTimeSec: in.moveTime,
					EstCost:    in.moveCost,
					OutMeta:    in.moveMeta,
				}
				if isStep {
					mv.DependsOn = append(mv.DependsOn, depID)
				} else if in.entry.source != "" {
					mv.SourceInputs = append(mv.SourceInputs, in.entry.source)
				}
				mv.ID = len(plan.Steps)
				plan.Steps = append(plan.Steps, mv)
				producerID = mv.ID
				isStep = true
			}
			if isStep {
				step.DependsOn = append(step.DependsOn, producerID)
			} else if in.entry.source != "" {
				step.SourceInputs = append(step.SourceInputs, in.entry.source)
			}
		}
		step.ID = len(plan.Steps)
		plan.Steps = append(plan.Steps, step)
		candSteps[c] = step
		return step.ID, true
	}
	build(best)
	// As in extract: the front vectors are tree-relaxed, the emitted steps
	// deduplicated, so the reported estimates come from the steps themselves.
	plan.EstTimeSec, plan.EstCost = plan.StepTotals()
	plan.EstObjective = plan.EstTimeSec
	return plan
}
