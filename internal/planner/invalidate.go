package planner

// Dependency-scoped partial invalidation. Every memoized node result records
// a footprint of the external state it depends on — the engines of its
// library matches, the materialized operators it estimated, the abstract
// operator it matched against the library, and the structural signatures of
// every table entry it read while being keyed (the DP parent links). The
// planner maintains reverse indices over those footprints so a typed
// invalidation event (an engine availability change, a profiler retrain of
// one target, a library add/remove) evicts only the footprint-hit entries
// plus everything reachable from them downstream; untouched subtrees stay
// warm and insert-replay exactly as before.
//
// Wholesale flush (flushLocked) remains the fallback for untyped changes:
// a Config.Epoch movement, a library generation delta not explained by
// change-listener events, an untyped ("") event, or the cache-size bound.
//
// Correctness rests on two mechanisms. First, the per-engine availability
// fingerprint is re-probed at every build boundary, so availability changes
// no counter records (a circuit breaker re-opening on virtual-time cooldown)
// evict the affected nodes even without a typed event. Second, a node's key
// digests its input fronts, so once an upstream node re-evaluates
// differently, every downstream key changes and misses; the eager downstream
// eviction here additionally keeps the cache free of unreachable stale
// results so the size bound measures live entries.

import (
	"sort"

	"github.com/asap-project/ires/internal/operator"
)

// footprint records the external dependencies of one memoized node result.
type footprint struct {
	// abstract is the workflow operator the node matched against the
	// library; library changes re-match it to detect candidate-set drift.
	abstract *operator.Abstract
	// matchSig digests the full library match list (names + definitions,
	// before availability filtering).
	matchSig sig
	// engines lists the distinct engines over every library match,
	// available or not — an unavailable engine coming back changes the
	// candidate set just as an available one going down does.
	engines []string
	// estOps lists the materialized operator names whose estimates (and
	// provisioned resources) the evaluation consumed.
	estOps []string
	// inSigs lists the structural signatures of every table entry read
	// while keying the node — the DP parent links the eviction walks.
	inSigs []sig
}

// pending accumulates typed invalidation events between builds. It is
// guarded by Planner.pendMu, a leaf mutex, so producers (breaker trips,
// profiler retrains, library mutations) never contend with a running build.
type pending struct {
	engines   map[string]struct{}
	estOps    map[string]struct{}
	lib       uint64 // library change-listener events seen
	wholesale bool
}

// EngineAvailability records a typed invalidation event: the named engine's
// availability changed (or may have changed). The next build evicts only the
// node results whose candidate set touches that engine. An empty name is an
// untyped change and forces a wholesale flush.
func (p *Planner) EngineAvailability(engine string) {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	if engine == "" {
		p.pend.wholesale = true
		return
	}
	if p.pend.engines == nil {
		p.pend.engines = make(map[string]struct{})
	}
	p.pend.engines[engine] = struct{}{}
}

// ProfilerRetrain records a typed invalidation event: the prediction models
// for the named materialized operator changed. The next build evicts only
// the node results that estimated that operator. An empty name is an untyped
// change and forces a wholesale flush.
func (p *Planner) ProfilerRetrain(opName string) {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	if opName == "" {
		p.pend.wholesale = true
		return
	}
	if p.pend.estOps == nil {
		p.pend.estOps = make(map[string]struct{})
	}
	p.pend.estOps[opName] = struct{}{}
}

// libraryChanged is registered as a Library change listener (planner.New).
// It only counts events: the build boundary re-matches cached footprints
// against the library directly, which also catches replaced definitions that
// keep the same operator name.
func (p *Planner) libraryChanged(string) {
	p.pendMu.Lock()
	p.pend.lib++
	p.pendMu.Unlock()
}

// drainPending atomically takes and clears the pending event set.
func (p *Planner) drainPending() pending {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	out := p.pend
	p.pend = pending{}
	return out
}

// matchSigLocked digests the library's current match list for an abstract
// operator (names and definition renderings). Equal digests mean the node
// would see the same candidate set today.
func (p *Planner) matchSigLocked(a *operator.Abstract) sig {
	return p.matchListSigLocked(p.cfg.Library.FindMaterialized(a))
}

func (p *Planner) matchListSigLocked(mos []*operator.Materialized) sig {
	h := newHasher()
	h.str("match")
	h.u64(uint64(len(mos)))
	for _, mo := range mos {
		h.str(mo.Name)
		h.str(p.metaStrLocked(mo.Meta))
	}
	return h.sum()
}

// newFootprintLocked builds the footprint skeleton for a node evaluation
// from its unfiltered library match list (estOps and inSigs are filled by
// the caller).
func (p *Planner) newFootprintLocked(a *operator.Abstract, mos []*operator.Materialized) *footprint {
	f := &footprint{abstract: a, matchSig: p.matchListSigLocked(mos)}
	for _, mo := range mos {
		e := mo.Engine()
		dup := false
		for _, have := range f.engines {
			if have == e {
				dup = true
				break
			}
		}
		if !dup {
			f.engines = append(f.engines, e)
		}
	}
	sort.Strings(f.engines)
	return f
}

// registerFootLocked indexes a freshly evaluated node result under every
// footprint dimension.
func (p *Planner) registerFootLocked(key sig, foot *footprint) {
	c := &p.cache
	c.feet[key] = foot
	for _, e := range foot.engines {
		addKeyIdx(c.byEngine, e, key)
	}
	for _, op := range foot.estOps {
		addKeyIdx(c.byEstOp, op, key)
	}
	for _, s := range foot.inSigs {
		addSigIdx(c.dependents, s, key)
	}
}

func addKeyIdx(idx map[string]map[sig]struct{}, k string, key sig) {
	b := idx[k]
	if b == nil {
		b = make(map[sig]struct{})
		idx[k] = b
	}
	b[key] = struct{}{}
}

func delKeyIdx(idx map[string]map[sig]struct{}, k string, key sig) {
	if b := idx[k]; b != nil {
		delete(b, key)
		if len(b) == 0 {
			delete(idx, k)
		}
	}
}

func addSigIdx(idx map[sig]map[sig]struct{}, s, key sig) {
	b := idx[s]
	if b == nil {
		b = make(map[sig]struct{})
		idx[s] = b
	}
	b[key] = struct{}{}
}

func delSigIdx(idx map[sig]map[sig]struct{}, s, key sig) {
	if b := idx[s]; b != nil {
		delete(b, key)
		if len(b) == 0 {
			delete(idx, s)
		}
	}
}

// probeAvail renders one engine's availability bit.
func (p *Planner) probeAvail(engine string) byte {
	if p.cfg.EngineAvailable == nil || p.cfg.EngineAvailable(engine) {
		return '1'
	}
	return '0'
}

// refreshEnginesLocked re-derives the sorted library engine list and carries
// over the known availability bits whenever the library generation moved.
// Steady-state builds reuse the cached list, so the per-build validity check
// allocates nothing.
func (p *Planner) refreshEnginesLocked(libGen uint64) {
	c := &p.cache
	if c.enginesInit && c.enginesGen == libGen {
		return
	}
	engines := p.cfg.Library.Engines()
	prev := make([]byte, len(engines))
	for i, e := range engines {
		j := sort.SearchStrings(c.engines, e)
		if c.enginesInit && j < len(c.engines) && c.engines[j] == e && j < len(c.availPrev) {
			prev[i] = c.availPrev[j]
		} else {
			prev[i] = p.probeAvail(e)
		}
	}
	c.engines, c.availPrev = engines, prev
	c.enginesGen, c.enginesInit = libGen, true
}

// availDiffLocked re-probes EngineAvailable for every library engine,
// reports each engine whose availability flipped since the last build, and
// updates the stored fingerprint in place. This catches availability changes
// no typed event announces — e.g. a circuit breaker re-opening on
// virtual-time cooldown — without allocating in the steady state.
func (p *Planner) availDiffLocked(flipped func(engine string)) int {
	if p.cfg.EngineAvailable == nil {
		return 0
	}
	c := &p.cache
	flips := 0
	for i, e := range c.engines {
		if bit := p.probeAvail(e); bit != c.availPrev[i] {
			c.availPrev[i] = bit
			flipped(e)
			flips++
		}
	}
	return flips
}

// ensureCacheValidLocked runs (with p.mu held) at the start of every build.
// It drains the pending typed events and evicts exactly the footprint-hit
// node results plus everything reachable from them through the DP parent
// links; untouched subtrees stay warm. The wholesale flush fallback covers
// untyped changes (see the file comment). Evictions never happen mid-build,
// so one build never mixes entry generations.
func (p *Planner) ensureCacheValidLocked() {
	pend := p.drainPending()
	libGen := p.cfg.Library.Gen()
	var epoch uint64
	if p.cfg.Epoch != nil {
		epoch = p.cfg.Epoch()
	}

	if !p.cache.init {
		p.cache.init = true
		p.flushLocked()
		p.cache.epoch = 0 // the initial allocation is not an invalidation
		p.cache.validity = cacheValidity{epoch: epoch, libGen: libGen}
		p.refreshEnginesLocked(libGen)
		return
	}

	// libDelta is the library movement since the last build; when the typed
	// change-listener events explain all of it, a re-match scan replaces the
	// wholesale flush.
	libDelta := libGen - p.cache.validity.libGen
	wholesale := pend.wholesale ||
		epoch != p.cache.validity.epoch ||
		(libDelta != 0 && pend.lib < libDelta) ||
		len(p.cache.nodes)+len(p.cache.pnodes)+len(p.cache.metaStrs) > p.maxCached
	if wholesale {
		p.flushLocked()
		p.cache.validity = cacheValidity{epoch: epoch, libGen: libGen}
		p.cache.enginesInit = false
		p.refreshEnginesLocked(libGen)
		return
	}

	var seeds map[sig]struct{}
	addKey := func(k sig) {
		if seeds == nil {
			seeds = make(map[sig]struct{})
		}
		seeds[k] = struct{}{}
	}
	addBucket := func(b map[sig]struct{}) {
		for k := range b {
			addKey(k)
		}
	}
	events := 0

	if libDelta != 0 {
		events++
		for key, foot := range p.cache.feet {
			if p.matchSigLocked(foot.abstract) != foot.matchSig {
				addKey(key)
			}
		}
		p.cache.validity.libGen = libGen
		p.refreshEnginesLocked(libGen)
	}
	events += p.availDiffLocked(func(e string) { addBucket(p.cache.byEngine[e]) })
	for e := range pend.engines {
		addBucket(p.cache.byEngine[e])
		events++
	}
	for op := range pend.estOps {
		addBucket(p.cache.byEstOp[op])
		events++
	}
	if events == 0 {
		return
	}
	evicted := p.evictLocked(seeds)
	p.cache.partials += uint64(events)
	p.cache.evicted += uint64(evicted)
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Inc(MetricPartialInvalidations, nil, float64(events))
		if evicted > 0 {
			p.cfg.Metrics.Inc(MetricEvictedEntries, nil, float64(evicted))
		}
	}
}

// evictLocked removes every node result in seeds plus everything reachable
// downstream through the dependents index (nodes whose key digested an
// evicted node's output entries), detaching each from every reverse index.
// It returns the number of node results evicted.
func (p *Planner) evictLocked(seeds map[sig]struct{}) int {
	if len(seeds) == 0 {
		return 0
	}
	c := &p.cache
	stack := make([]sig, 0, len(seeds))
	for k := range seeds {
		stack = append(stack, k)
	}
	evicted := 0
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		foot, ok := c.feet[k]
		if !ok {
			continue // already evicted (or never footprinted)
		}
		delete(c.feet, k)
		evicted++
		if res, ok := c.nodes[k]; ok {
			delete(c.nodes, k)
			for _, rec := range res.inserts {
				for dep := range c.dependents[rec.e.sig] {
					stack = append(stack, dep)
				}
			}
		} else if pres, ok := c.pnodes[k]; ok {
			delete(c.pnodes, k)
			for _, rec := range pres.inserts {
				for dep := range c.dependents[rec.e.sig] {
					stack = append(stack, dep)
				}
			}
		}
		for _, e := range foot.engines {
			delKeyIdx(c.byEngine, e, k)
		}
		for _, op := range foot.estOps {
			delKeyIdx(c.byEstOp, op, k)
		}
		for _, s := range foot.inSigs {
			delSigIdx(c.dependents, s, k)
		}
	}
	return evicted
}
