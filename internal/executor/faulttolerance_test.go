package executor

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/asap-project/ires/internal/faults"
	"github.com/asap-project/ires/internal/planner"
)

// scriptedInjector is a deterministic Injector for tests: it fails the first
// failN RunFault calls per step name, and stretches the first launch of the
// steps listed in stretch.
type scriptedInjector struct {
	mu       sync.Mutex
	failN    map[string]int
	stretch  map[string]float64
	launches map[string]int
}

func (si *scriptedInjector) RunFault(engineName, stepName string, attempt int, durSec float64, now time.Duration) error {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.failN[stepName] > 0 {
		si.failN[stepName]--
		return faults.ErrInjected
	}
	return nil
}

func (si *scriptedInjector) StretchFactor(engineName, stepName string, now time.Duration) float64 {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.launches == nil {
		si.launches = map[string]int{}
	}
	si.launches[stepName]++
	if f, ok := si.stretch[stepName]; ok && si.launches[stepName] == 1 {
		return f
	}
	return 1
}

func (f *fixture) checkClean(t *testing.T) {
	t.Helper()
	if err := f.clus.CheckInvariants(); err != nil {
		t.Fatalf("cluster invariants violated: %v", err)
	}
	freeC, _ := f.clus.Available()
	capC, _ := f.clus.Capacity()
	if freeC != capC {
		t.Fatalf("containers leaked: %d free of %d", freeC, capC)
	}
	if live := f.clus.LiveContainers(); live != 0 {
		t.Fatalf("%d containers still live", live)
	}
}

// TestRetryExhaustionThenReplan is the table-driven contract of the layered
// recovery: retries absorb transient failures while the budget lasts, and
// only exhaustion falls through to replanning.
func TestRetryExhaustionThenReplan(t *testing.T) {
	cases := []struct {
		name        string
		maxAttempts int
		failures    int // injected failures for the first operator step
		wantReplans int
		wantRetries int
	}{
		{"no faults", 3, 0, 0, 0},
		{"retries absorb transients", 4, 3, 0, 3},
		{"exhaustion falls through to replan", 2, 3, 1, 2},
		{"zero policy preserves fail-then-replan", 0, 1, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t)
			g := chainWorkflow(t, 5_000)
			plan, err := f.plnr.Plan(g)
			if err != nil {
				t.Fatal(err)
			}
			victim := plan.OperatorSteps()[0].Name
			f.exec.Faults = &scriptedInjector{failN: map[string]int{victim: tc.failures}}
			f.exec.Retry = RetryPolicy{MaxAttempts: tc.maxAttempts, BaseBackoff: time.Second, Multiplier: 2}

			res, err := f.exec.Execute(g, plan)
			if err != nil {
				t.Fatalf("execution failed: %v", err)
			}
			if res.FinalRecords <= 0 {
				t.Fatal("workflow did not complete")
			}
			if res.Replans != tc.wantReplans {
				t.Fatalf("replans = %d, want %d", res.Replans, tc.wantReplans)
			}
			if res.Retries != tc.wantRetries {
				t.Fatalf("retries = %d, want %d", res.Retries, tc.wantRetries)
			}
			f.checkClean(t)
		})
	}
}

// TestRetryBackoffGrowsInVirtualTime pins the exponential backoff: with base
// 2s and multiplier 2, the relaunches of a thrice-failing step must be spaced
// at least 2s, 4s and 8s apart.
func TestRetryBackoffGrowsInVirtualTime(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 5_000)
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.OperatorSteps()[0].Name
	f.exec.Faults = &scriptedInjector{failN: map[string]int{victim: 3}}
	f.exec.Retry = RetryPolicy{MaxAttempts: 4, BaseBackoff: 2 * time.Second, Multiplier: 2}

	res, err := f.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	var starts []time.Duration
	for _, log := range res.StepLog {
		if log.Name == victim {
			starts = append(starts, log.Start)
		}
	}
	if len(starts) != 4 {
		t.Fatalf("victim step logged %d attempts, want 4", len(starts))
	}
	wantGaps := []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second}
	for i, want := range wantGaps {
		if gap := starts[i+1] - starts[i]; gap < want {
			t.Fatalf("gap %d = %v, want >= %v (backoff not applied)", i, gap, want)
		}
	}
}

// TestSpeculativeWinnerLoserAccounting stretches the first attempt of a step
// 10x so the straggler deadline fires, launches a same-choice backup, and
// verifies the backup wins while the loser's containers are fully released.
func TestSpeculativeWinnerLoserAccounting(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 5_000)
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.OperatorSteps()[0]
	f.exec.Faults = &scriptedInjector{stretch: map[string]float64{victim.Name: 10}}
	f.exec.TimeoutFactor = 2
	f.exec.Speculate = func(s *planner.Step) (SpeculativeChoice, bool) {
		// Same-engine relaunch on fresh containers (YARN-style speculation).
		return SpeculativeChoice{
			OpName: s.Op.Name, Engine: s.Engine, Algorithm: s.Algorithm,
			Res: s.Res, Params: s.Params,
		}, true
	}

	res, err := f.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRecords <= 0 {
		t.Fatal("workflow did not complete")
	}
	if res.SpeculativeLaunches != 1 {
		t.Fatalf("speculative launches = %d, want 1", res.SpeculativeLaunches)
	}
	if res.SpeculativeWins != 1 {
		t.Fatalf("speculative wins = %d, want 1 (fresh copy should beat a 10x straggler)", res.SpeculativeWins)
	}
	if res.Replans != 0 {
		t.Fatalf("replans = %d, want 0 (speculation must not consume the replan budget)", res.Replans)
	}
	won := false
	for _, log := range res.StepLog {
		if log.Name == victim.Name && log.Speculative && !log.Failed {
			won = true
		}
	}
	if !won {
		t.Fatalf("no successful speculative run in the log: %+v", res.StepLog)
	}
	f.checkClean(t)
}

// TestSpeculationWithoutHeadroomIsDropped pins the gang-allocation rule: a
// backup copy that cannot be placed is silently skipped and the original
// keeps running.
func TestSpeculationWithoutHeadroomIsDropped(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 100_000) // large: Spark plan gangs the whole cluster
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.OperatorSteps()[0]
	if victim.Res.Nodes != 16 {
		t.Skipf("precondition: expected a whole-cluster gang, got %d nodes", victim.Res.Nodes)
	}
	f.exec.Faults = &scriptedInjector{stretch: map[string]float64{victim.Name: 10}}
	f.exec.TimeoutFactor = 2
	f.exec.Speculate = func(s *planner.Step) (SpeculativeChoice, bool) {
		return SpeculativeChoice{
			OpName: s.Op.Name, Engine: s.Engine, Algorithm: s.Algorithm,
			Res: s.Res, Params: s.Params,
		}, true
	}
	res, err := f.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeculativeLaunches != 0 {
		t.Fatalf("backup launched with zero headroom: %d", res.SpeculativeLaunches)
	}
	if res.FinalRecords <= 0 {
		t.Fatal("original attempt did not complete")
	}
	f.checkClean(t)
}

// Property: under any seeded fault schedule — transients, stragglers, a node
// crash with delayed repair — execution either completes or returns a typed
// error, and the cluster is never over-allocated or leaked afterwards.
func TestQuickFaultScheduleAlwaysTerminates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newFixtureSeed(t, 33)
		g := chainWorkflow(t, int64(2_000+r.Intn(10_000)))
		plan, err := fx.plnr.Plan(g)
		if err != nil {
			return true
		}
		cfg := faults.Config{
			Seed:      seed,
			Default:   faults.Transient{FailProb: r.Float64() * 0.5, MTBFSec: 200 + r.Float64()*800},
			Straggler: faults.Straggler{Prob: r.Float64() * 0.5, Factor: 2 + r.Float64()*4},
		}
		if r.Intn(2) == 0 {
			at := time.Duration(5+r.Intn(60)) * time.Second
			cfg.NodeCrashes = []faults.NodeCrash{{Node: "node3", At: at}}
			fx.clock.Schedule(at+30*time.Second, func(time.Duration) {
				_ = fx.clus.RestoreNode("node3")
			})
		}
		sched := faults.New(cfg)
		if err := sched.Arm(fx.clock, fx.env, fx.clus); err != nil {
			return false
		}
		fx.exec.Faults = sched
		fx.exec.Retry = RetryPolicy{MaxAttempts: 1 + r.Intn(4), BaseBackoff: time.Second, Multiplier: 2}
		fx.exec.MaxReplans = 4

		res, err := fx.exec.Execute(g, plan)
		if err != nil {
			typed := errors.Is(err, ErrTooManyReplans) ||
				errors.Is(err, ErrDeadlock) ||
				errors.Is(err, planner.ErrNoPlan)
			if !typed {
				t.Logf("seed %d: untyped error: %v", seed, err)
				return false
			}
		} else if res.FinalRecords <= 0 {
			t.Logf("seed %d: completed with no output", seed)
			return false
		}
		if err := fx.clus.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if live := fx.clus.LiveContainers(); live != 0 {
			t.Logf("seed %d: %d containers leaked", seed, live)
			return false
		}
		// The run may end before the scheduled node repair; restore health so
		// free capacity is comparable to total capacity.
		_ = fx.clus.RestoreNode("node3")
		freeC, _ := fx.clus.Available()
		capC, _ := fx.clus.Capacity()
		if freeC != capC {
			t.Logf("seed %d: %d free of %d after run", seed, freeC, capC)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
