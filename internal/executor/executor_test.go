package executor

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/metrics"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// truthEstimator answers from engine ground truth for operators registered
// in reg (opName -> engine/algorithm).
type truthEstimator struct {
	env *engine.Environment
	reg map[string][2]string
}

func (e truthEstimator) Estimate(opName, target string, feats map[string]float64) (float64, bool) {
	ea, ok := e.reg[opName]
	if !ok {
		return 0, false
	}
	res := engine.Resources{Nodes: int(feats["nodes"]), CoresPerN: int(feats["cores"]), MemMBPerN: int(feats["memoryMB"])}
	in := engine.Input{Records: int64(feats["records"]), Bytes: int64(feats["bytes"])}
	t, err := e.env.GroundTruthSec(ea[0], ea[1], in, res)
	if err != nil {
		return 0, false
	}
	switch target {
	case "execTime":
		return t, true
	case "cost":
		return t * res.CostRate(), true
	}
	return 0, false // sizes fall back to pass-through
}

type fixture struct {
	env   *engine.Environment
	clock *vtime.Clock
	clus  *cluster.Cluster
	lib   *operator.Library
	plnr  *planner.Planner
	exec  *Executor
}

// replanAdapter wires the planner into the executor's Replanner interface.
type replanAdapter struct{ p *planner.Planner }

func (r replanAdapter) Replan(g *workflow.Graph, done []planner.MaterializedIntermediate) (*planner.Plan, error) {
	return r.p.Replan(g, done)
}

func newFixture(t *testing.T) *fixture { return newFixtureSeed(t, 21) }

func newFixtureSeed(t *testing.T, seed int64) *fixture {
	t.Helper()
	f := &fixture{
		env:   engine.NewDefaultEnvironment(seed),
		clock: vtime.NewClock(),
		lib:   operator.NewLibrary(),
	}
	f.clus = cluster.New(f.clock, 16, 2, 3456)
	reg := map[string][2]string{}
	add := func(name, eng, alg, fs string) {
		desc := "Constraints.Engine=" + eng +
			"\nConstraints.OpSpecification.Algorithm.name=" + alg +
			"\nConstraints.Input0.Engine.FS=" + fs +
			"\nConstraints.Output0.Engine.FS=" + fs
		if _, err := f.lib.AddOperatorDescription(name, desc); err != nil {
			t.Fatal(err)
		}
		reg[name] = [2]string{eng, alg}
	}
	add("wordcount_java", engine.EngineJava, engine.AlgWordcount, "LFS")
	add("wordcount_spark", engine.EngineSpark, engine.AlgWordcount, "HDFS")
	add("sort_java", engine.EngineJava, engine.AlgSort, "LFS")
	add("sort_spark", engine.EngineSpark, engine.AlgSort, "HDFS")

	est := truthEstimator{env: f.env, reg: reg}
	resChooser := func(mo *operator.Materialized, _, _ int64) planner.Resources {
		if mo.Engine() == engine.EngineJava {
			return planner.Resources{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}
		}
		return planner.Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}
	}
	p, err := planner.New(planner.Config{
		Library:         f.lib,
		Estimator:       est,
		EngineAvailable: f.env.Available,
		Resources:       resChooser,
		MoveSeconds:     func(b int64) float64 { return f.env.TransferSec(b) },
	})
	if err != nil {
		t.Fatal(err)
	}
	f.plnr = p
	f.exec = &Executor{
		Env:       f.env,
		Cluster:   f.clus,
		Clock:     f.clock,
		Replanner: replanAdapter{p},
	}
	return f
}

// chainWorkflow builds src -> wordcount -> d1 -> sort -> d2($$target).
func chainWorkflow(t *testing.T, docs int64) *workflow.Graph {
	t.Helper()
	g := workflow.NewGraph()
	src := operator.NewDataset("src", metadata.MustParse(
		"Execution.path=/data/src\nConstraints.Engine.FS=LFS"))
	src.Meta.Set("Optimization.documents", metadata.MustParse("x=1").GetDefault("y", itoa(docs)))
	src.Meta.Set("Optimization.size", itoa(docs*1000))
	g.AddDataset("src", src)
	g.AddOperator("wc", operator.NewAbstract("wc", metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name="+engine.AlgWordcount)))
	g.AddOperator("sort", operator.NewAbstract("sort", metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name="+engine.AlgSort)))
	g.AddDataset("d1", nil)
	g.AddDataset("d2", nil)
	for _, e := range [][2]string{{"src", "wc"}, {"wc", "d1"}, {"d1", "sort"}, {"sort", "d2"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetTarget("d2")
	return g
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestExecuteChain(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 10_000)
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	var observed []string
	f.exec.Observer = func(op string, run *metrics.Run) { observed = append(observed, op) }

	res, err := f.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if res.Replans != 0 {
		t.Fatalf("unexpected replans: %d", res.Replans)
	}
	if res.FinalRecords <= 0 || res.FinalBytes <= 0 {
		t.Fatalf("final output not tracked: %d/%d", res.FinalRecords, res.FinalBytes)
	}
	if len(observed) != len(plan.OperatorSteps()) {
		t.Fatalf("observer called %d times, want %d", len(observed), len(plan.OperatorSteps()))
	}
	if res.TotalCostUnits <= 0 {
		t.Fatal("cost not accumulated")
	}
	// Makespan should be within noise of the plan estimate (truth-based
	// estimator).
	est := time.Duration(plan.EstTimeSec * float64(time.Second))
	if res.Makespan > est*2 || res.Makespan < est/2 {
		t.Fatalf("makespan %v far from estimate %v", res.Makespan, est)
	}
	// All containers returned.
	freeC, _ := f.clus.Available()
	capC, _ := f.clus.Capacity()
	if freeC != capC {
		t.Fatalf("containers leaked: %d free of %d", freeC, capC)
	}
}

func TestParallelBranchesOverlap(t *testing.T) {
	f := newFixture(t)
	// Two independent wordcounts feeding a sort (join-like).
	g := workflow.NewGraph()
	for _, s := range []string{"srcA", "srcB"} {
		d := operator.NewDataset(s, metadata.MustParse("Execution.path=/"+s+"\nConstraints.Engine.FS=HDFS"))
		// Small inputs: each branch lands on Java (one container), so the
		// branches can genuinely overlap on the 16-node cluster.
		d.Meta.Set("Optimization.documents", "5000")
		d.Meta.Set("Optimization.size", "5000000")
		g.AddDataset(s, d)
	}
	g.AddOperator("wcA", operator.NewAbstract("wcA", metadata.MustParse("Constraints.OpSpecification.Algorithm.name="+engine.AlgWordcount)))
	g.AddOperator("wcB", operator.NewAbstract("wcB", metadata.MustParse("Constraints.OpSpecification.Algorithm.name="+engine.AlgWordcount)))
	g.AddOperator("merge", operator.NewAbstract("merge", metadata.MustParse("Constraints.OpSpecification.Algorithm.name="+engine.AlgSort)))
	g.AddDataset("dA", nil)
	g.AddDataset("dB", nil)
	g.AddDataset("out", nil)
	for _, e := range [][2]string{{"srcA", "wcA"}, {"wcA", "dA"}, {"srcB", "wcB"}, {"wcB", "dB"},
		{"dA", "merge"}, {"dB", "merge"}, {"merge", "out"}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetTarget("out")

	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, log := range res.StepLog {
		sum += log.End - log.Start
	}
	// With 2 Java branches (1 node each) or mixed placement, branches must
	// overlap: makespan strictly below the serial sum.
	if res.Makespan >= sum {
		t.Fatalf("no parallelism: makespan %v vs serial %v", res.Makespan, sum)
	}
}

func TestFailureTriggersReplanToOtherEngine(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 5_000) // small: Java preferred
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if eng := plan.OperatorSteps()[0].Engine; eng != engine.EngineJava {
		t.Fatalf("precondition: expected Java plan, got %s", eng)
	}
	// Kill Java before execution starts.
	f.env.SetAvailable(engine.EngineJava, false)

	res, err := f.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d, want 1", res.Replans)
	}
	for _, log := range res.StepLog {
		if !log.Failed && log.Engine == engine.EngineJava {
			t.Fatal("step ran on dead engine")
		}
	}
	if res.FinalRecords <= 0 {
		t.Fatal("workflow did not complete after replan")
	}
	if res.ReplanTime <= 0 {
		t.Fatal("replanning time not recorded")
	}
}

func TestMidWorkflowFailureReusesIntermediates(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 5_000)
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// Kill Java right after the first operator completes: watch for the wc
	// step's completion via an observer, then flip availability.
	f.exec.Observer = func(op string, run *metrics.Run) {
		if strings.HasPrefix(op, "wordcount") && !run.Failed {
			f.env.SetAvailable(engine.EngineJava, false)
		}
	}
	res, err := f.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d, want 1", res.Replans)
	}
	// wordcount must have run exactly once (intermediate d1 reused).
	wcRuns := 0
	for _, run := range res.Runs {
		if strings.HasPrefix(run.Operator, "wordcount") && !run.Failed {
			wcRuns++
		}
	}
	if wcRuns != 1 {
		t.Fatalf("wordcount executed %d times, want 1 (intermediates discarded?)", wcRuns)
	}
	// The sort must have completed on Spark.
	done := false
	for _, log := range res.StepLog {
		if strings.HasPrefix(log.Name, "sort") && !log.Failed && log.Engine == engine.EngineSpark {
			done = true
		}
	}
	if !done {
		t.Fatalf("sort never completed on Spark:\n%+v", res.StepLog)
	}
}

func TestNoReplannerFatal(t *testing.T) {
	f := newFixture(t)
	f.exec.Replanner = nil
	g := chainWorkflow(t, 5_000)
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	f.env.SetAvailable(engine.EngineJava, false)
	if _, err := f.exec.Execute(g, plan); err == nil {
		t.Fatal("failure without replanner should be fatal")
	}
}

// stuckReplanner always returns the same failing plan.
type stuckReplanner struct{ plan *planner.Plan }

func (s stuckReplanner) Replan(*workflow.Graph, []planner.MaterializedIntermediate) (*planner.Plan, error) {
	return s.plan, nil
}

func TestMaxReplans(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 5_000)
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	f.env.SetAvailable(engine.EngineJava, false)
	f.exec.Replanner = stuckReplanner{plan}
	f.exec.MaxReplans = 2
	_, err = f.exec.Execute(g, plan)
	if !errors.Is(err, ErrTooManyReplans) {
		t.Fatalf("err = %v, want ErrTooManyReplans", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	f := newFixture(t)
	g := chainWorkflow(t, 5_000)
	plan, err := f.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the cluster so no step can ever be placed.
	f.exec.Cluster = cluster.New(f.clock, 1, 1, 128)
	_, err = f.exec.Execute(g, plan)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestMissingDependencies(t *testing.T) {
	f := newFixture(t)
	if _, err := (&Executor{}).Execute(nil, nil); err == nil {
		t.Fatal("nil wiring accepted")
	}
	_ = f
}
