// Package executor implements the IReS executor layer (D3.3 §2.3): the
// enforcer walks a materialized plan over the simulated YARN cluster,
// allocating containers per step, charging virtual time, feeding run metrics
// back to the model-refinement path, detecting failures in real time and —
// instead of discarding completed work — replanning only the remaining
// workflow, reusing every materialized intermediate result.
//
// Recovery is layered, cheapest mechanism first:
//
//  1. transient step failures are retried on the same engine with
//     exponential backoff in virtual time (RetryPolicy);
//  2. steps exceeding TimeoutFactor × their predicted duration are treated
//     as stragglers: a speculative copy launches on the next-best
//     engine/resource choice and whichever attempt finishes first wins,
//     the loser's containers being released immediately;
//  3. node failures invalidate the containers running on the node; the
//     executor observes this through the cluster Monitor and fails the
//     affected steps instead of letting them complete impossibly;
//  4. engines failing repeatedly trip a CircuitBreaker and are excluded
//     from replans for a cooldown window;
//  5. only when retries on the same engine are exhausted does the executor
//     fall through to replanning the remaining workflow.
package executor

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/metrics"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// ErrDeadlock indicates no step can start and none is running (unsatisfied
// dependencies or permanently insufficient resources).
var ErrDeadlock = errors.New("executor: no runnable step")

// ErrTooManyReplans indicates the failure/replan loop exceeded MaxReplans.
var ErrTooManyReplans = errors.New("executor: too many replans")

// ErrContainersLost indicates a step's containers were invalidated by a
// node failure mid-run. It is retryable: the work relaunches elsewhere.
var ErrContainersLost = errors.New("executor: containers lost to node failure")

// ErrCanceled indicates the run was canceled through its run handle. The
// executor drains in-flight attempts (releasing their containers) before
// returning it.
var ErrCanceled = errors.New("executor: run canceled")

// ErrSuspended indicates the run was cooperatively preempted: the executor
// stopped at the next completed-operator boundary, drained every in-flight
// attempt (releasing its containers) and reported the materialized
// intermediates in Result.Intermediates so a later Resume can replan from
// the done set without re-executing completed work.
var ErrSuspended = errors.New("executor: run suspended")

// Replanner produces a new plan for the remaining workflow given the
// intermediates that already exist. The core platform wires this to the
// planner with engine availability checked live, so failed engines are
// excluded automatically.
type Replanner interface {
	Replan(g *workflow.Graph, done []planner.MaterializedIntermediate) (*planner.Plan, error)
}

// Injector is the chaos hook consulted at every operator attempt launch —
// *faults.Schedule implements it. Move steps are exempt (they hold no
// containers and model plain network transfers).
type Injector interface {
	// RunFault decides whether this attempt fails transiently; durSec is
	// the attempt's predicted duration.
	RunFault(engineName, stepName string, attempt int, durSec float64, now time.Duration) error
	// StretchFactor returns the straggler slowdown multiplier (>= 1)
	// applied to the attempt's duration.
	StretchFactor(engineName, stepName string, now time.Duration) float64
}

// RetryPolicy bounds per-step same-engine retries. The zero value means a
// single attempt (no retries), preserving fail-then-replan semantics.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per step per plan
	// (1 attempt = no retry; values <= 0 are treated as 1).
	MaxAttempts int
	// BaseBackoff is the virtual-time delay before the first retry
	// (default 1s when retries are enabled).
	BaseBackoff time.Duration
	// Multiplier grows the backoff exponentially (default 2).
	Multiplier float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before the next attempt after `failed` failures.
func (p RetryPolicy) backoff(failed int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Second
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := base
	for i := 1; i < failed; i++ {
		d = time.Duration(float64(d) * mult)
	}
	return d
}

// SpeculativeChoice is an alternative materialization for a straggling
// step: the next-best engine/resource option for the same abstract
// operator.
type SpeculativeChoice struct {
	OpName    string
	Engine    string
	Algorithm string
	Res       planner.Resources
	Params    map[string]float64
}

// Executor enforces materialized plans.
type Executor struct {
	Env     *engine.Environment
	Cluster *cluster.Cluster
	Clock   *vtime.Clock
	// Observer receives the monitoring record of every operator run
	// (model refinement); may be nil.
	Observer func(operatorName string, run *metrics.Run)
	// Replanner enables fault-tolerant partial replanning; nil makes
	// failures fatal.
	Replanner Replanner
	// MaxReplans bounds the failure/replan loop (default 5).
	MaxReplans int
	// LaunchOverheadSec is the per-operator-step YARN container launch
	// overhead added to each run's duration (the "couple of seconds" the
	// paper attributes to YARN-based execution).
	LaunchOverheadSec float64

	// Retry bounds per-step same-engine retries; the zero value disables
	// them.
	Retry RetryPolicy
	// TimeoutFactor enables straggler detection: a step exceeding
	// TimeoutFactor × its predicted duration gets a speculative copy
	// (requires Speculate). Zero disables timeouts.
	TimeoutFactor float64
	// Speculate picks the next-best engine/resource choice for a
	// straggling step; nil disables speculative execution.
	Speculate func(s *planner.Step) (SpeculativeChoice, bool)
	// Faults is the chaos-injection hook; nil injects nothing.
	Faults Injector
	// Breaker, when non-nil, records per-engine failures/successes so
	// flapping engines are blacklisted from replans for a cooldown.
	Breaker *CircuitBreaker
	// Monitor, when non-nil, is subscribed for health-change wakeups:
	// container losses are detected at monitor polls rather than at step
	// completion.
	Monitor *cluster.Monitor
	// Tracer receives attempt-lifecycle, container and replan events; nil
	// discards them.
	Tracer trace.Tracer

	// Party, when non-nil, makes every virtual-time advance cooperative:
	// instead of driving the shared clock directly, the executor parks on
	// its party and the clock advances only when all concurrent runs are
	// parked. Required when several executors share one clock.
	Party *vtime.Party
	// Lease, when non-nil, confines container allocation to the reserved
	// nodes of one admission lease; resource requests wider than the lease
	// are clamped to its size.
	Lease *cluster.Reservation
	// Canceled, when non-nil, is polled at decision points; returning true
	// aborts the run with ErrCanceled after draining in-flight work.
	Canceled func() bool
	// Suspend, when non-nil, is the cooperative-preemption hook: polled at
	// the same decision points as Canceled, returning true makes the run
	// stop at the next completed-operator boundary, drain in-flight
	// attempts, and return ErrSuspended with Result.Intermediates set.
	// With checkpointing enabled the drain is boundary-aware: attempts
	// yield at their next checkpoint boundary instead (see CheckpointPolicy).
	Suspend func() bool

	// Checkpoint enables sub-operator checkpointing (see CheckpointPolicy);
	// the zero value disables it.
	Checkpoint CheckpointPolicy
	// CkptScope namespaces checkpoint keys in the shared cluster store —
	// the scheduler sets it to the run id so concurrent runs (and a run's
	// resumed segments, which share the id) see only their own progress.
	CkptScope string

	healthDirty atomic.Bool
}

// advanceTo moves virtual time to target: cooperatively (yielding to other
// runs) when a Party is set, directly otherwise.
func (e *Executor) advanceTo(target time.Duration) {
	if e.Party != nil {
		e.Party.WaitUntil(target)
		return
	}
	e.Clock.AdvanceTo(target)
}

// canceled reports whether the run handle asked this execution to stop.
func (e *Executor) canceled() bool {
	return e.Canceled != nil && e.Canceled()
}

// suspendRequested reports whether the scheduler asked this execution to
// yield its lease at the next operator boundary.
func (e *Executor) suspendRequested() bool {
	return e.Suspend != nil && e.Suspend()
}

// emit stamps the current virtual time on ev and hands it to the tracer.
func (e *Executor) emit(ev trace.Event) {
	if e.Tracer == nil {
		return
	}
	e.Tracer.Emit(ev.At(e.Clock.Now()))
}

// NotifyHealthChange marks the cluster health board dirty; the execution
// loop sweeps for lost containers at the next opportunity. It is the
// Monitor.OnChange subscription target and safe to call from any goroutine.
func (e *Executor) NotifyHealthChange() { e.healthDirty.Store(true) }

// StepExec logs one step execution attempt.
type StepExec struct {
	Name    string
	Engine  string
	Start   time.Duration
	End     time.Duration
	Failed  bool
	Failure string
	// Attempt numbers the execution attempts of a step within one plan
	// (1-based; 0 in logs predating retries is equivalent to 1).
	Attempt int
	// Speculative marks runs launched as straggler backups.
	Speculative bool
}

// Result summarises one workflow execution.
type Result struct {
	// Makespan is the simulated wall-clock duration of the execution.
	Makespan time.Duration
	// TotalCostUnits accumulates the paper's resource-cost metric over all
	// runs.
	TotalCostUnits float64
	// Runs holds the monitoring record of every attempted step.
	Runs []*metrics.Run
	// Replans counts fault-triggered replanning rounds.
	Replans int
	// ReplanTime accumulates the (real) planning time of replans.
	ReplanTime time.Duration
	// Retries counts same-engine step relaunches after transient failures.
	Retries int
	// SpeculativeLaunches counts straggler backup copies started;
	// SpeculativeWins counts those that beat the original attempt.
	SpeculativeLaunches int
	SpeculativeWins     int
	// ContainersLost counts containers invalidated by node failures.
	ContainersLost int
	// FinalRecords/FinalBytes describe the target dataset.
	FinalRecords int64
	FinalBytes   int64
	StepLog      []StepExec

	// Intermediates lists the materialized intermediate datasets at the
	// moment the run stopped. Populated on ErrSuspended so the scheduler
	// can later Resume from the done set (replan-from-done-set) without
	// re-executing any completed operator.
	Intermediates []planner.MaterializedIntermediate

	// Sub-operator checkpointing counters: writes banked, attempts seeded
	// from a stored checkpoint, total units skipped by those restores, and
	// attempts that yielded cooperatively at a checkpoint boundary.
	CheckpointWrites   int
	CheckpointRestores int
	RestoredUnits      int
	AttemptYields      int
	// Partials reports the checkpointed progress of incomplete operators at
	// suspension — the sub-operator counterpart of Intermediates, seeded
	// into the resumed segment's attempts through the shared cluster store.
	Partials []planner.PartialOperator
}

// Execute enforces the plan for the workflow. On step failure it retries per
// the RetryPolicy, then asks the Replanner for a plan over the remaining
// work and continues, reusing materialized intermediates.
func (e *Executor) Execute(g *workflow.Graph, plan *planner.Plan) (*Result, error) {
	return e.run(g, plan, nil)
}

// Resume continues a previously suspended run: the Replanner produces a plan
// over the remaining workflow given the already-materialized intermediates
// (the done set captured at suspension), so completed operators are seeded at
// zero cost and never re-executed.
func (e *Executor) Resume(g *workflow.Graph, done []planner.MaterializedIntermediate) (*Result, error) {
	if e.Replanner == nil {
		return nil, errors.New("executor: Resume requires a Replanner")
	}
	plan, err := e.Replanner.Replan(g, done)
	if err != nil {
		return nil, fmt.Errorf("executor: resume replan failed: %w", err)
	}
	return e.run(g, plan, done)
}

// run is the shared body of Execute and Resume; done seeds the materialized
// intermediates of a resumed run.
func (e *Executor) run(g *workflow.Graph, plan *planner.Plan, done []planner.MaterializedIntermediate) (*Result, error) {
	if e.Env == nil || e.Cluster == nil || e.Clock == nil {
		return nil, fmt.Errorf("executor: Env, Cluster and Clock are required")
	}
	if e.Monitor != nil {
		unsubscribe := e.Monitor.OnChange(e.NotifyHealthChange)
		defer unsubscribe()
	}
	maxReplans := e.MaxReplans
	if maxReplans == 0 {
		maxReplans = 5
	}

	res := &Result{}
	start := e.Clock.Now()

	// Materialized datasets available to steps: workflow sources up front,
	// intermediates as they complete.
	datasets := make(map[string]*dataset)
	for _, d := range g.Datasets() {
		if d.Dataset.IsMaterialized() {
			datasets[d.Name] = &dataset{
				records: d.Dataset.Records(),
				bytes:   d.Dataset.SizeBytes(),
				meta:    d.Dataset.Constraints(),
			}
		}
	}
	// A resumed run starts with its previously materialized intermediates
	// in place, exactly as if the producing steps had just completed here.
	for _, mi := range done {
		datasets[mi.Dataset] = &dataset{records: mi.Records, bytes: mi.Bytes, meta: mi.Meta}
	}

	current := plan
	for {
		if e.canceled() {
			return res, ErrCanceled
		}
		failed, err := e.runPlan(g, current, datasets, res)
		if errors.Is(err, ErrSuspended) {
			res.Intermediates = intermediates(g, datasets)
			res.Partials = e.partialProgress(current)
			res.Makespan = e.Clock.Now() - start
			return res, ErrSuspended
		}
		if err != nil {
			return res, err
		}
		if failed == nil {
			break // plan completed
		}
		if e.Replanner == nil {
			return res, fmt.Errorf("executor: step %s failed and no replanner configured: %s", failed.Name, failed.Failure)
		}
		res.Replans++
		e.emit(trace.Event{
			Type: trace.EvReplan, Step: failed.Name, Engine: failed.Engine,
			Error:  failed.Failure,
			Fields: map[string]float64{"round": float64(res.Replans)},
		})
		if res.Replans > maxReplans {
			return res, fmt.Errorf("%w: %d", ErrTooManyReplans, res.Replans)
		}
		done := intermediates(g, datasets)
		next, err := e.Replanner.Replan(g, done)
		if err != nil && e.Breaker != nil && len(e.Breaker.Tripped()) > 0 {
			// The only remaining implementations may sit on blacklisted
			// engines. Wait out the cooldown (half-open readmits them)
			// and try once more before giving up.
			e.advanceTo(e.Clock.Now() + e.Breaker.Cooldown)
			next, err = e.Replanner.Replan(g, done)
		}
		if err != nil {
			return res, fmt.Errorf("executor: replan after %s failed: %w", failed.Name, err)
		}
		res.ReplanTime += next.PlanningTime
		current = next
	}

	res.Makespan = e.Clock.Now() - start
	if target, ok := datasets[g.Target]; ok {
		res.FinalRecords = target.records
		res.FinalBytes = target.bytes
	}
	return res, nil
}

type dataset struct {
	records int64
	bytes   int64
	meta    *metadata.Tree
}

// outMetaOf returns the dataset tag a completed step produced. Speculative
// winners keep the planned tag: as with YARN speculation, the backup writes
// to the output location the plan declared, so downstream steps and replans
// see the data where they expect it.
func outMetaOf(s *planner.Step, engineName string) *metadata.Tree {
	if s.OutMeta != nil {
		return s.OutMeta.Clone()
	}
	t := metadata.New()
	if s.Kind == planner.StepOperator {
		t.Set("Engine", engineName)
	}
	return t
}

// attemptRun is one live execution attempt (primary or speculative copy).
type attemptRun struct {
	opName      string
	engineName  string
	start       time.Duration
	end         time.Duration
	ctrs        []*cluster.Container
	run         *metrics.Run
	speculative bool
	attempt     int

	// Checkpoint schedule (empty when the attempt is not checkpointable):
	// pending write marks in time order, the total/seeded/banked unit
	// counts, the per-write cost, and the store key.
	marks      []ckptMark
	totalUnits int
	baseUnits  int
	banked     int
	writeSec   float64
	ckptKey    string
}

// flight is the in-flight state of one plan step: the primary attempt plus
// at most one speculative copy.
type flight struct {
	step      *planner.Step
	copies    []*attemptRun
	deadline  time.Duration // 0 = no straggler timeout
	specTried bool
	inRecords int64
	inBytes   int64
}

// planRun carries the mutable state of one runPlan invocation.
type planRun struct {
	e        *Executor
	plan     *planner.Plan
	datasets map[string]*dataset
	res      *Result

	doneSteps map[int]*dataset
	inFlight  map[int]*flight
	attempts  map[int]int
	retryAt   map[int]time.Duration
	completed int
	failure   *StepExec
}

// runPlan executes one plan until completion or first unrecoverable step
// failure. It returns the failed step log entry (nil on success).
func (e *Executor) runPlan(g *workflow.Graph, plan *planner.Plan, datasets map[string]*dataset, res *Result) (*StepExec, error) {
	st := &planRun{
		e:         e,
		plan:      plan,
		datasets:  datasets,
		res:       res,
		doneSteps: make(map[int]*dataset),
		inFlight:  make(map[int]*flight),
		attempts:  make(map[int]int),
		retryAt:   make(map[int]time.Duration),
	}

	// stallSince tracks how long the run has been fully blocked (nothing in
	// flight, nothing launchable, no retry window open). Pending clock
	// events — a scheduled node restore, an engine outage, a monitor poll —
	// may unblock it, so we wait on them up to stallLimit of virtual time
	// before declaring deadlock (monitor polls reschedule themselves
	// forever, so waiting must be bounded).
	const stallLimit = time.Hour
	stalled := false
	var stallSince time.Duration

	canceled := false
	suspended := false
	for st.completed < len(plan.Steps) && st.failure == nil {
		if e.canceled() {
			canceled = true
			break
		}
		if e.suspendRequested() {
			suspended = true
			break
		}
		startedAny, err := st.startReady()
		if err != nil {
			return nil, err
		}
		if st.failure != nil {
			break
		}
		if len(st.inFlight) == 0 {
			if at, ok := st.earliestRetry(); ok && at > e.Clock.Now() {
				// Nothing running, but a backoff window is open: advance
				// straight to the retry time. A retry time already in the
				// past means the step is launchable but blocked (e.g. on
				// capacity) — fall through to the stall wait below.
				stalled = false
				st.advanceClockTo(at)
				continue
			}
			if !startedAny {
				now := e.Clock.Now()
				if !stalled {
					stalled, stallSince = true, now
				}
				if at, ok := e.Clock.NextEventAt(); ok && now-stallSince < stallLimit {
					st.advanceClockTo(at)
					continue
				}
				return nil, fmt.Errorf("%w: %d/%d steps done", ErrDeadlock, st.completed, len(plan.Steps))
			}
			stalled = false
			continue
		}
		stalled = false
		st.advanceOnce()
	}

	// Let in-flight steps finish so their intermediates survive the
	// failure (the paper's executor keeps successfully produced results).
	// The same drain implements the operator-boundary half of cooperative
	// preemption: a suspend request never kills running attempts, it stops
	// the run at the next point where every launched gang has completed.
	for len(st.inFlight) > 0 {
		st.advanceOnce()
	}
	if canceled {
		return nil, ErrCanceled
	}
	if suspended {
		return nil, ErrSuspended
	}
	return st.failure, nil
}

// ready reports whether a step can start now.
func (st *planRun) ready(s *planner.Step, now time.Duration) bool {
	if _, ok := st.doneSteps[s.ID]; ok {
		return false
	}
	if _, ok := st.inFlight[s.ID]; ok {
		return false
	}
	if at, ok := st.retryAt[s.ID]; ok && now < at {
		return false
	}
	for _, dep := range s.DependsOn {
		if _, ok := st.doneSteps[dep]; !ok {
			return false
		}
	}
	for _, src := range s.SourceInputs {
		if _, ok := st.datasets[src]; !ok {
			return false
		}
	}
	return true
}

func (st *planRun) inputOf(s *planner.Step) (records, bytes int64) {
	for _, dep := range s.DependsOn {
		if d := st.doneSteps[dep]; d != nil {
			records += d.records
			bytes += d.bytes
		}
	}
	for _, src := range s.SourceInputs {
		if d := st.datasets[src]; d != nil {
			records += d.records
			bytes += d.bytes
		}
	}
	return records, bytes
}

// earliestRetry returns the soonest open backoff deadline among pending
// retries.
func (st *planRun) earliestRetry() (time.Duration, bool) {
	var best time.Duration
	found := false
	for id, at := range st.retryAt {
		if _, done := st.doneSteps[id]; done {
			continue
		}
		if !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}

// startReady launches every ready step whose containers fit. It reports
// whether any step started.
func (st *planRun) startReady() (bool, error) {
	e := st.e
	startedAny := false
	for _, s := range st.plan.Steps {
		now := e.Clock.Now()
		if !st.ready(s, now) {
			continue
		}
		inRecords, inBytes := st.inputOf(s)

		if s.Kind == planner.StepMove {
			dur := e.Env.TransferSec(inBytes)
			run := &metrics.Run{
				Operator: s.Name, Algorithm: "move", Engine: "move",
				ExecTimeSec:  dur,
				InputRecords: inRecords, InputBytes: inBytes,
				OutputRecords: inRecords, OutputBytes: inBytes,
				Date: time.Unix(0, 0).Add(now),
			}
			st.inFlight[s.ID] = &flight{
				step:      s,
				copies:    []*attemptRun{{opName: s.Name, engineName: "move", start: now, end: now + secs(dur), run: run}},
				inRecords: inRecords, inBytes: inBytes,
			}
			e.emit(trace.Event{
				Type: trace.EvAttemptStart, Step: s.Name, Engine: "move",
				Fields: map[string]float64{"predictedSec": dur, "inBytes": float64(inBytes)},
			})
			startedAny = true
			continue
		}

		attempt := st.attempts[s.ID] + 1
		copyRun, launchErr, hardErr := st.launch(s, s.Op.Name, s.Engine, s.Algorithm, s.Res, s.Params, inRecords, inBytes, attempt, false)
		if hardErr != nil {
			return startedAny, hardErr
		}
		if launchErr != nil {
			if errors.Is(launchErr, cluster.ErrInsufficientResources) {
				// Also reached when the lease was revoked mid-launch (the
				// error wraps cluster.ErrReleasedReservation): the policy's
				// suspend signal lands at this same boundary, so parking the
				// step is right in both cases.
				continue // wait for a completion to free resources
			}
			st.failAttempt(s, s.Engine, launchErr, copyRun)
			if st.failure != nil {
				break
			}
			continue
		}
		delete(st.retryAt, s.ID)
		fl := &flight{step: s, copies: []*attemptRun{copyRun}, inRecords: inRecords, inBytes: inBytes}
		if e.TimeoutFactor > 0 && e.Speculate != nil {
			predicted := copyRun.run.ExecTimeSec
			if f := st.stretchOf(copyRun); f > 1 {
				predicted /= f
			}
			fl.deadline = copyRun.start + secs(e.TimeoutFactor*(predicted+e.LaunchOverheadSec))
		}
		st.inFlight[s.ID] = fl
		startedAny = true
	}
	return startedAny, nil
}

// stretchOf recovers the straggler factor applied to an attempt (stored on
// launch via the run's params to avoid a parallel bookkeeping map).
func (st *planRun) stretchOf(c *attemptRun) float64 {
	if c.run == nil || c.run.Params == nil {
		return 1
	}
	if f, ok := c.run.Params["faultStretch"]; ok && f > 1 {
		return f
	}
	return 1
}

// launch allocates containers and starts one attempt of an operator step.
// launchErr is a recoverable per-attempt failure (the returned attemptRun
// then carries the failed monitoring record, if any); hardErr aborts the
// whole execution.
func (st *planRun) launch(s *planner.Step, opName, engineName, algorithm string, r planner.Resources, params map[string]float64, inRecords, inBytes int64, attempt int, speculative bool) (*attemptRun, error, error) {
	e := st.e
	now := e.Clock.Now()
	eRes := engine.Resources{Nodes: r.Nodes, CoresPerN: r.CoresPerN, MemMBPerN: r.MemMBPerN}
	if e.Lease != nil && eRes.Nodes > e.Lease.Size() {
		// The plan may want more gang members than the admission lease
		// holds; run narrower (and correspondingly slower) rather than
		// poach capacity granted to other runs.
		eRes.Nodes = e.Lease.Size()
	}
	if e.Lease != nil {
		// Slice leases cap per-node draw at the slice dimensions; running
		// thinner beats bouncing off the lease's AllocateIn confinement.
		if sc, sm := e.Lease.SliceDims(); sc > 0 {
			if eRes.CoresPerN > sc {
				eRes.CoresPerN = sc
			}
			if eRes.MemMBPerN > sm {
				eRes.MemMBPerN = sm
			}
		}
	}
	ctrs, err := e.Cluster.AllocateIn(e.Lease, eRes.Nodes, eRes.CoresPerN, eRes.MemMBPerN)
	if err != nil {
		if errors.Is(err, cluster.ErrInsufficientResources) {
			return nil, err, nil
		}
		return nil, nil, err
	}
	e.emit(trace.Event{
		Type: trace.EvContainerAlloc, Step: s.Name, Engine: engineName,
		Fields: map[string]float64{"containers": float64(len(ctrs))},
	})
	releaseTraced := func() {
		e.Cluster.ReleaseAll(ctrs)
		e.emit(trace.Event{
			Type: trace.EvContainerRelease, Step: s.Name, Engine: engineName,
			Fields: map[string]float64{"containers": float64(len(ctrs))},
		})
	}
	in := engine.Input{Records: inRecords, Bytes: inBytes, Params: params}
	run, err := e.Env.Execute(engineName, algorithm, in, eRes, now)
	if run != nil {
		run.Operator = opName
	}
	if err != nil {
		releaseTraced()
		return &attemptRun{opName: opName, engineName: engineName, start: now, run: run, speculative: speculative, attempt: attempt}, err, nil
	}
	// Chaos hooks: injected transient failure, then straggler stretch.
	if e.Faults != nil {
		if ferr := e.Faults.RunFault(engineName, s.Name, attempt, run.ExecTimeSec, now); ferr != nil {
			releaseTraced()
			run.Failed = true
			run.FailureReason = ferr.Error()
			return &attemptRun{opName: opName, engineName: engineName, start: now, run: run, speculative: speculative, attempt: attempt}, ferr, nil
		}
		if f := e.Faults.StretchFactor(engineName, s.Name, now); f > 1 {
			run.ExecTimeSec *= f
			run.CostUnits *= f
			if run.Params == nil {
				run.Params = map[string]float64{}
			}
			run.Params["faultStretch"] = f
		}
	}
	// Checkpoint schedule: seed banked progress from the store, place write
	// marks, fold restore/write overheads into the run's modeled duration
	// (so predictedSec, cost and speculation deadlines all see the real
	// span). nil when checkpointing is off or the run isn't checkpointable.
	ck := st.planCheckpoints(s, engineName, algorithm, in, eRes, run)
	e.emit(trace.Event{
		Type: trace.EvAttemptStart, Step: s.Name, Operator: opName, Engine: engineName,
		Attempt: attempt, Speculative: speculative,
		Fields: map[string]float64{"predictedSec": run.ExecTimeSec, "inRecords": float64(inRecords)},
	})
	c := &attemptRun{
		opName:      opName,
		engineName:  engineName,
		start:       now,
		end:         now + secs(run.ExecTimeSec+e.LaunchOverheadSec),
		ctrs:        ctrs,
		run:         run,
		speculative: speculative,
		attempt:     attempt,
	}
	if ck != nil {
		c.marks = ck.marks
		c.totalUnits = ck.totalUnits
		c.baseUnits = ck.baseUnits
		c.banked = ck.baseUnits
		c.writeSec = ck.writeSec
		c.ckptKey = ck.key
		if ck.baseUnits > 0 {
			st.res.CheckpointRestores++
			st.res.RestoredUnits += ck.baseUnits
			e.emit(trace.Event{
				Type: trace.EvCheckpointRestore, Step: s.Name, Operator: opName, Engine: engineName,
				Attempt: attempt, Speculative: speculative,
				Fields: map[string]float64{
					"units":      float64(ck.baseUnits),
					"totalUnits": float64(ck.totalUnits),
					"restoreSec": ck.restoreSec,
				},
			})
		}
	}
	return c, nil, nil
}

// retryable classifies attempt errors: deterministic engine verdicts (OOM,
// service OFF, unknown engine/algorithm) go straight to replanning, while
// everything else — injected transients, container losses — may succeed on
// a relaunch.
func retryable(err error) bool {
	switch {
	case errors.Is(err, engine.ErrOutOfMemory),
		errors.Is(err, engine.ErrUnavailable),
		errors.Is(err, engine.ErrUnknownEngine),
		errors.Is(err, engine.ErrUnknownAlgorithm):
		return false
	}
	return true
}

// failAttempt records a failed attempt, schedules a same-engine retry while
// the budget lasts, and otherwise marks the plan failed (triggering
// replanning upstream). engineObserved distinguishes genuine engine errors
// (fed to the Observer for model refinement, matching the historical
// behaviour) from infrastructure faults, which say nothing about the
// engine's capability and must not poison the feasibility models.
func (st *planRun) failAttempt(s *planner.Step, engineName string, err error, c *attemptRun) {
	e := st.e
	now := e.Clock.Now()
	st.attempts[s.ID]++
	attempt := st.attempts[s.ID]
	if e.Breaker != nil {
		e.Breaker.RecordFailure(engineName)
	}
	start := now
	var failedRun *metrics.Run
	if c != nil {
		start = c.start
		failedRun = c.run
	}
	log := StepExec{
		Name: s.Name, Engine: engineName,
		Start: start, End: now,
		Failed: true, Failure: err.Error(),
		Attempt: attempt,
	}
	st.res.StepLog = append(st.res.StepLog, log)
	e.emit(trace.Event{
		Type: trace.EvAttemptFail, Step: s.Name, Engine: engineName,
		Attempt: attempt, Error: err.Error(),
	})
	if failedRun != nil {
		st.res.Runs = append(st.res.Runs, failedRun)
		// Only genuine engine verdicts refine the models; injected faults
		// and node failures are infrastructure noise.
		if e.Observer != nil && !retryable(err) {
			e.Observer(c.opName, failedRun)
		}
	}
	if retryable(err) && attempt < e.Retry.attempts() {
		st.retryAt[s.ID] = now + e.Retry.backoff(attempt)
		st.res.Retries++
		e.emit(trace.Event{
			Type: trace.EvAttemptRetry, Step: s.Name, Engine: engineName,
			Attempt: attempt,
			Fields:  map[string]float64{"retryAtSec": st.retryAt[s.ID].Seconds()},
		})
		return
	}
	if st.failure == nil {
		st.failure = &log
	}
}

// Decision-point kinds, ordered by tie-break priority at equal times:
// completions first (they free resources and may clear checkpoints), then
// checkpoint marks, then straggler deadlines. The ordering makes nextStop a
// pure function of the flight set, independent of map iteration order.
const (
	stopCompletion = iota
	stopMark
	stopDeadline
)

// nextStop picks the next decision point: the earliest attempt completion,
// checkpoint-write mark, or armed straggler deadline.
func (st *planRun) nextStop() (time.Duration, int) {
	var best time.Duration
	kind := stopCompletion
	found := false
	better := func(t time.Duration, k int) bool {
		if !found {
			return true
		}
		if t != best {
			return t < best
		}
		return k < kind
	}
	for _, f := range st.inFlight {
		for _, c := range f.copies {
			if better(c.end, stopCompletion) {
				best, kind, found = c.end, stopCompletion, true
			}
			if len(c.marks) > 0 && better(c.marks[0].at, stopMark) {
				best, kind, found = c.marks[0].at, stopMark, true
			}
		}
		if f.deadline > 0 && !f.specTried && st.failure == nil && better(f.deadline, stopDeadline) {
			best, kind, found = f.deadline, stopDeadline, true
		}
	}
	return best, kind
}

// advanceClockTo moves virtual time to target, stepping through scheduled
// events (fault injections, monitor polls) and sweeping for container
// losses after each.
func (st *planRun) advanceClockTo(target time.Duration) {
	for {
		evAt, ok := st.e.Clock.NextEventAt()
		if !ok || evAt >= target {
			break
		}
		st.e.advanceTo(evAt)
		if st.sweepLost(false) {
			return
		}
	}
	st.e.advanceTo(target)
	st.sweepLost(false)
}

// advanceOnce advances to the next decision point and handles it: a
// container-loss sweep, a straggler deadline (speculation) or an attempt
// completion.
func (st *planRun) advanceOnce() {
	target, kind := st.nextStop()
	for {
		evAt, ok := st.e.Clock.NextEventAt()
		if !ok || evAt >= target {
			break
		}
		st.e.advanceTo(evAt)
		if st.sweepLost(false) {
			// Flights changed (an attempt died with its node); recompute
			// everything from the outer loop at the current instant.
			return
		}
	}
	st.e.advanceTo(target)
	if st.sweepLost(false) {
		return
	}
	switch kind {
	case stopDeadline:
		st.fireDeadlines(target)
	case stopMark:
		st.fireMarks(target)
	default:
		st.completeDue(target)
	}
}

// sweepLost scans in-flight attempts for containers invalidated by node
// failures. With a Monitor attached the sweep runs only after an observed
// health change (detection latency = the monitoring period, as on a real
// cluster); without one it runs unconditionally, catching the crash event
// itself. force bypasses the gating (used when a dead container is caught
// red-handed at completion time). It returns whether any flight changed.
func (st *planRun) sweepLost(force bool) bool {
	e := st.e
	if !force && e.Monitor != nil && !e.healthDirty.Swap(false) {
		return false
	}
	changed := false
	for id, f := range st.inFlight {
		var alive []*attemptRun
		for _, c := range f.copies {
			lost := 0
			for _, ctr := range c.ctrs {
				if ctr.Lost() {
					lost++
				}
			}
			if lost == 0 {
				alive = append(alive, c)
				continue
			}
			changed = true
			st.res.ContainersLost += lost
			// Gang semantics: surviving containers of a dead attempt are
			// released immediately.
			e.Cluster.ReleaseAll(c.ctrs)
			e.emit(trace.Event{
				Type: trace.EvContainerLost, Step: f.step.Name, Engine: c.engineName,
				Attempt: c.attempt, Speculative: c.speculative,
				Fields: map[string]float64{"containers": float64(lost)},
			})
			if survivors := len(c.ctrs) - lost; survivors > 0 {
				e.emit(trace.Event{
					Type: trace.EvContainerRelease, Step: f.step.Name, Engine: c.engineName,
					Fields: map[string]float64{"containers": float64(survivors)},
				})
			}
			if c.speculative {
				st.res.StepLog = append(st.res.StepLog, StepExec{
					Name: f.step.Name, Engine: c.engineName,
					Start: c.start, End: e.Clock.Now(),
					Failed: true, Failure: ErrContainersLost.Error(),
					Attempt: c.attempt, Speculative: true,
				})
				e.emit(trace.Event{
					Type: trace.EvAttemptFail, Step: f.step.Name, Engine: c.engineName,
					Attempt: c.attempt, Speculative: true,
					Error: ErrContainersLost.Error(),
				})
			}
		}
		if len(alive) == len(f.copies) {
			continue
		}
		f.copies = alive
		if len(alive) == 0 {
			delete(st.inFlight, id)
			st.failAttempt(f.step, f.step.Engine, ErrContainersLost, nil)
		}
	}
	return changed
}

// fireDeadlines launches speculative copies for flights whose straggler
// deadline has passed.
func (st *planRun) fireDeadlines(now time.Duration) {
	e := st.e
	for _, f := range st.inFlight {
		if f.deadline <= 0 || f.specTried || f.deadline > now || st.failure != nil {
			continue
		}
		f.specTried = true
		if e.Speculate == nil {
			continue
		}
		choice, ok := e.Speculate(f.step)
		if !ok || choice.Engine == "" {
			continue
		}
		attempt := st.attempts[f.step.ID] + 1
		c, launchErr, hardErr := st.launch(f.step, choice.OpName, choice.Engine, choice.Algorithm, choice.Res, choice.Params, f.inRecords, f.inBytes, attempt, true)
		if hardErr != nil || launchErr != nil {
			// A backup that cannot start is simply dropped; the original
			// keeps running. Still count genuine engine failures against
			// the breaker.
			if launchErr != nil && !errors.Is(launchErr, cluster.ErrInsufficientResources) && e.Breaker != nil {
				e.Breaker.RecordFailure(choice.Engine)
			}
			continue
		}
		f.copies = append(f.copies, c)
		st.res.SpeculativeLaunches++
		e.emit(trace.Event{
			Type: trace.EvSpeculate, Step: f.step.Name, Engine: choice.Engine,
			Attempt: attempt,
			Fields:  map[string]float64{"deadlineSec": f.deadline.Seconds()},
		})
	}
}

// completeDue completes the earliest finished attempt at or before now (ties
// broken by step ID, keeping completion order deterministic), verifying its
// containers are still alive.
func (st *planRun) completeDue(now time.Duration) {
	e := st.e
	var fl *flight
	var w *attemptRun
	for _, f := range st.inFlight {
		for _, c := range f.copies {
			if c.end > now {
				continue
			}
			if w == nil || c.end < w.end || (c.end == w.end && f.step.ID < fl.step.ID) {
				fl, w = f, c
			}
		}
	}
	if w == nil {
		return
	}
	// Verify the winner survived: a node crash between monitor polls must
	// never produce an impossible completion.
	for _, ctr := range w.ctrs {
		if ctr.Lost() {
			st.sweepLost(true)
			return
		}
	}

	s := fl.step
	delete(st.inFlight, s.ID)
	delete(st.retryAt, s.ID)
	releaseCopy := func(c *attemptRun) {
		e.Cluster.ReleaseAll(c.ctrs)
		if len(c.ctrs) > 0 {
			e.emit(trace.Event{
				Type: trace.EvContainerRelease, Step: s.Name, Engine: c.engineName,
				Fields: map[string]float64{"containers": float64(len(c.ctrs))},
			})
		}
	}
	releaseCopy(w)
	// The losing copy (if any) is cancelled and its containers released.
	for _, c := range fl.copies {
		if c == w {
			continue
		}
		releaseCopy(c)
	}
	if w.speculative {
		st.res.SpeculativeWins++
	}
	st.completed++
	e.emit(trace.Event{
		Type: trace.EvAttemptFinish, Step: s.Name, Operator: w.opName, Engine: w.engineName,
		Attempt: w.attempt, Speculative: w.speculative,
		Fields: map[string]float64{
			"durSec":     (w.end - w.start).Seconds(),
			"outRecords": float64(w.run.OutputRecords),
			"costUnits":  w.run.CostUnits,
		},
	})

	out := &dataset{records: w.run.OutputRecords, bytes: w.run.OutputBytes, meta: outMetaOf(s, w.engineName)}
	st.doneSteps[s.ID] = out
	st.res.Runs = append(st.res.Runs, w.run)
	st.res.TotalCostUnits += w.run.CostUnits
	st.res.StepLog = append(st.res.StepLog, StepExec{
		Name: s.Name, Engine: w.engineName,
		Start: w.start, End: w.end,
		Attempt: w.attempt, Speculative: w.speculative,
	})
	if e.Breaker != nil && s.Kind == planner.StepOperator {
		e.Breaker.RecordSuccess(w.engineName)
	}
	if w.ckptKey != "" {
		// The operator is done; its checkpoints are garbage.
		e.Cluster.ClearCheckpoint(w.ckptKey)
	}
	if s.Kind == planner.StepOperator {
		// The Observer fires for every completed operator step — including
		// during the post-failure drain — so model refinement never skips
		// runs without an output dataset. Attempts seeded from a checkpoint
		// are excluded: their duration covers only the remaining units and
		// would poison the full-operator performance models.
		if e.Observer != nil && w.baseUnits == 0 {
			e.Observer(w.opName, w.run)
		}
		if s.OutDataset != "" {
			st.datasets[s.OutDataset] = out
		}
	}
}

// intermediates lists the currently materialized intermediate datasets
// (excluding the workflow's original sources).
func intermediates(g *workflow.Graph, datasets map[string]*dataset) []planner.MaterializedIntermediate {
	var out []planner.MaterializedIntermediate
	for _, d := range g.Datasets() {
		state, ok := datasets[d.Name]
		if !ok || d.Dataset.IsMaterialized() {
			continue
		}
		out = append(out, planner.MaterializedIntermediate{
			Dataset: d.Name,
			Meta:    state.meta,
			Records: state.records,
			Bytes:   state.bytes,
		})
	}
	return out
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
