// Package executor implements the IReS executor layer (D3.3 §2.3): the
// enforcer walks a materialized plan over the simulated YARN cluster,
// allocating containers per step, charging virtual time, feeding run metrics
// back to the model-refinement path, detecting failures in real time and —
// instead of discarding completed work — replanning only the remaining
// workflow, reusing every materialized intermediate result.
package executor

import (
	"errors"
	"fmt"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/metrics"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// ErrDeadlock indicates no step can start and none is running (unsatisfied
// dependencies or permanently insufficient resources).
var ErrDeadlock = errors.New("executor: no runnable step")

// ErrTooManyReplans indicates the failure/replan loop exceeded MaxReplans.
var ErrTooManyReplans = errors.New("executor: too many replans")

// Replanner produces a new plan for the remaining workflow given the
// intermediates that already exist. The core platform wires this to the
// planner with engine availability checked live, so failed engines are
// excluded automatically.
type Replanner interface {
	Replan(g *workflow.Graph, done []planner.MaterializedIntermediate) (*planner.Plan, error)
}

// Executor enforces materialized plans.
type Executor struct {
	Env     *engine.Environment
	Cluster *cluster.Cluster
	Clock   *vtime.Clock
	// Observer receives the monitoring record of every operator run
	// (model refinement); may be nil.
	Observer func(operatorName string, run *metrics.Run)
	// Replanner enables fault-tolerant partial replanning; nil makes
	// failures fatal.
	Replanner Replanner
	// MaxReplans bounds the failure/replan loop (default 5).
	MaxReplans int
	// LaunchOverheadSec is the per-operator-step YARN container launch
	// overhead added to each run's duration (the "couple of seconds" the
	// paper attributes to YARN-based execution).
	LaunchOverheadSec float64
}

// StepExec logs one step execution attempt.
type StepExec struct {
	Name    string
	Engine  string
	Start   time.Duration
	End     time.Duration
	Failed  bool
	Failure string
}

// Result summarises one workflow execution.
type Result struct {
	// Makespan is the simulated wall-clock duration of the execution.
	Makespan time.Duration
	// TotalCostUnits accumulates the paper's resource-cost metric over all
	// runs.
	TotalCostUnits float64
	// Runs holds the monitoring record of every attempted step.
	Runs []*metrics.Run
	// Replans counts fault-triggered replanning rounds.
	Replans int
	// ReplanTime accumulates the (real) planning time of replans.
	ReplanTime time.Duration
	// FinalRecords/FinalBytes describe the target dataset.
	FinalRecords int64
	FinalBytes   int64
	StepLog      []StepExec
}

// Execute enforces the plan for the workflow. On step failure it asks the
// Replanner for a plan over the remaining work and continues, reusing
// materialized intermediates.
func (e *Executor) Execute(g *workflow.Graph, plan *planner.Plan) (*Result, error) {
	if e.Env == nil || e.Cluster == nil || e.Clock == nil {
		return nil, fmt.Errorf("executor: Env, Cluster and Clock are required")
	}
	maxReplans := e.MaxReplans
	if maxReplans == 0 {
		maxReplans = 5
	}

	res := &Result{}
	start := e.Clock.Now()

	// Materialized datasets available to steps: workflow sources up front,
	// intermediates as they complete.
	datasets := make(map[string]*dataset)
	for _, d := range g.Datasets() {
		if d.Dataset.IsMaterialized() {
			datasets[d.Name] = &dataset{
				records: d.Dataset.Records(),
				bytes:   d.Dataset.SizeBytes(),
				meta:    d.Dataset.Constraints(),
			}
		}
	}

	current := plan
	for {
		failed, err := e.runPlan(g, current, datasets, res)
		if err != nil {
			return res, err
		}
		if failed == nil {
			break // plan completed
		}
		if e.Replanner == nil {
			return res, fmt.Errorf("executor: step %s failed and no replanner configured: %s", failed.Name, failed.Failure)
		}
		res.Replans++
		if res.Replans > maxReplans {
			return res, fmt.Errorf("%w: %d", ErrTooManyReplans, res.Replans)
		}
		done := intermediates(g, datasets)
		next, err := e.Replanner.Replan(g, done)
		if err != nil {
			return res, fmt.Errorf("executor: replan after %s failed: %w", failed.Name, err)
		}
		res.ReplanTime += next.PlanningTime
		current = next
	}

	res.Makespan = e.Clock.Now() - start
	if target, ok := datasets[g.Target]; ok {
		res.FinalRecords = target.records
		res.FinalBytes = target.bytes
	}
	return res, nil
}

type dataset struct {
	records int64
	bytes   int64
	meta    *metadata.Tree
}

// outMetaOf returns the dataset tag a completed step produced.
func outMetaOf(s *planner.Step) *metadata.Tree {
	if s.OutMeta != nil {
		return s.OutMeta.Clone()
	}
	t := metadata.New()
	if s.Kind == planner.StepOperator {
		t.Set("Engine", s.Engine)
	}
	return t
}

// runPlan executes one plan until completion or first failure. It returns
// the failed step log entry (nil on success).
func (e *Executor) runPlan(g *workflow.Graph, plan *planner.Plan, datasets map[string]*dataset, res *Result) (*StepExec, error) {
	type running struct {
		step *planner.Step
		end  time.Duration
		ctrs []*cluster.Container
		run  *metrics.Run
	}

	doneSteps := make(map[int]*dataset) // step ID -> output
	inFlight := make(map[int]*running)
	completed := 0

	ready := func(s *planner.Step) bool {
		if _, ok := doneSteps[s.ID]; ok {
			return false
		}
		if _, ok := inFlight[s.ID]; ok {
			return false
		}
		for _, dep := range s.DependsOn {
			if _, ok := doneSteps[dep]; !ok {
				return false
			}
		}
		for _, src := range s.SourceInputs {
			if _, ok := datasets[src]; !ok {
				return false
			}
		}
		return true
	}

	inputOf := func(s *planner.Step) (records, bytes int64) {
		for _, dep := range s.DependsOn {
			if d := doneSteps[dep]; d != nil {
				records += d.records
				bytes += d.bytes
			}
		}
		for _, src := range s.SourceInputs {
			if d := datasets[src]; d != nil {
				records += d.records
				bytes += d.bytes
			}
		}
		return records, bytes
	}

	var failure *StepExec
	for completed < len(plan.Steps) && failure == nil {
		// Start every ready step whose containers fit.
		startedAny := false
		for _, s := range plan.Steps {
			if !ready(s) {
				continue
			}
			inRecords, inBytes := inputOf(s)
			now := e.Clock.Now()

			if s.Kind == planner.StepMove {
				dur := e.Env.TransferSec(inBytes)
				run := &metrics.Run{
					Operator: s.Name, Algorithm: "move", Engine: "move",
					ExecTimeSec:  dur,
					InputRecords: inRecords, InputBytes: inBytes,
					OutputRecords: inRecords, OutputBytes: inBytes,
					Date: time.Unix(0, 0).Add(now),
				}
				inFlight[s.ID] = &running{step: s, end: now + secs(dur), run: run}
				startedAny = true
				continue
			}

			eRes := engine.Resources{Nodes: s.Res.Nodes, CoresPerN: s.Res.CoresPerN, MemMBPerN: s.Res.MemMBPerN}
			ctrs, err := e.Cluster.Allocate(eRes.Nodes, eRes.CoresPerN, eRes.MemMBPerN)
			if err != nil {
				if errors.Is(err, cluster.ErrInsufficientResources) {
					continue // wait for a completion to free resources
				}
				return nil, err
			}
			in := engine.Input{Records: inRecords, Bytes: inBytes, Params: s.Params}
			run, err := e.Env.Execute(s.Engine, s.Algorithm, in, eRes, now)
			if run != nil {
				run.Operator = s.Op.Name
			}
			if err != nil {
				e.Cluster.ReleaseAll(ctrs)
				log := StepExec{Name: s.Name, Engine: s.Engine, Start: now, End: now, Failed: true, Failure: err.Error()}
				res.StepLog = append(res.StepLog, log)
				if run != nil {
					res.Runs = append(res.Runs, run)
					if e.Observer != nil {
						e.Observer(s.Op.Name, run)
					}
				}
				failure = &log
				break
			}
			inFlight[s.ID] = &running{step: s, end: now + secs(run.ExecTimeSec+e.LaunchOverheadSec), ctrs: ctrs, run: run}
			startedAny = true
		}
		if failure != nil {
			break
		}
		if len(inFlight) == 0 {
			if !startedAny {
				return nil, fmt.Errorf("%w: %d/%d steps done", ErrDeadlock, completed, len(plan.Steps))
			}
			continue
		}

		// Advance to the earliest completion.
		var next *running
		for _, r := range inFlight {
			if next == nil || r.end < next.end ||
				(r.end == next.end && r.step.ID < next.step.ID) {
				next = r
			}
		}
		e.Clock.AdvanceTo(next.end)
		delete(inFlight, next.step.ID)
		e.Cluster.ReleaseAll(next.ctrs)
		completed++

		s := next.step
		out := &dataset{records: next.run.OutputRecords, bytes: next.run.OutputBytes, meta: outMetaOf(s)}
		doneSteps[s.ID] = out
		res.Runs = append(res.Runs, next.run)
		res.TotalCostUnits += next.run.CostUnits
		res.StepLog = append(res.StepLog, StepExec{
			Name: s.Name, Engine: s.Engine,
			Start: next.end - secs(next.run.ExecTimeSec), End: next.end,
		})
		if s.Kind == planner.StepOperator {
			if e.Observer != nil {
				e.Observer(s.Op.Name, next.run)
			}
			if s.OutDataset != "" {
				datasets[s.OutDataset] = out
			}
		}
	}

	// Let in-flight steps finish so their intermediates survive the
	// failure (the paper's executor keeps successfully produced results).
	for len(inFlight) > 0 {
		var next *running
		for _, r := range inFlight {
			if next == nil || r.end < next.end {
				next = r
			}
		}
		e.Clock.AdvanceTo(next.end)
		delete(inFlight, next.step.ID)
		e.Cluster.ReleaseAll(next.ctrs)
		s := next.step
		out := &dataset{records: next.run.OutputRecords, bytes: next.run.OutputBytes, meta: outMetaOf(s)}
		res.Runs = append(res.Runs, next.run)
		res.TotalCostUnits += next.run.CostUnits
		res.StepLog = append(res.StepLog, StepExec{
			Name: s.Name, Engine: s.Engine,
			Start: next.end - secs(next.run.ExecTimeSec), End: next.end,
		})
		if s.Kind == planner.StepOperator && s.OutDataset != "" {
			datasets[s.OutDataset] = out
			if e.Observer != nil {
				e.Observer(s.Op.Name, next.run)
			}
		}
	}
	return failure, nil
}

// intermediates lists the currently materialized intermediate datasets
// (excluding the workflow's original sources).
func intermediates(g *workflow.Graph, datasets map[string]*dataset) []planner.MaterializedIntermediate {
	var out []planner.MaterializedIntermediate
	for _, d := range g.Datasets() {
		state, ok := datasets[d.Name]
		if !ok || d.Dataset.IsMaterialized() {
			continue
		}
		out = append(out, planner.MaterializedIntermediate{
			Dataset: d.Name,
			Meta:    state.meta,
			Records: state.records,
			Bytes:   state.bytes,
		})
	}
	return out
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
