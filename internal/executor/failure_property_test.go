package executor

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metrics"
)

// Property (DESIGN.md invariant): with deterministic payload sizes, the
// workflow's final output is identical whether or not an engine dies
// mid-execution — replanning changes *where* operators run, never *what*
// they produce.
func TestQuickFailureTransparentOutputs(t *testing.T) {
	f := func(seed int64) bool {
		docs := int64(2_000 + int(uint64(seed)%8_000))

		runOnce := func(inject bool) (int64, int64, bool) {
			// Fixed seed keeps profiles (and hence baseline plans)
			// comparable across the two runs.
			fx := newFixtureSeed(t, 77)
			g := chainWorkflow(t, docs)
			plan, err := fx.plnr.Plan(g)
			if err != nil {
				return 0, 0, false
			}
			if inject {
				// Kill the first step's engine once it completes.
				victim := plan.OperatorSteps()[0].Engine
				firstAlg := plan.OperatorSteps()[0].Algorithm
				fx.exec.Observer = func(op string, run *metrics.Run) {
					if run.Algorithm == firstAlg && !run.Failed {
						fx.env.SetAvailable(victim, false)
					}
				}
			}
			res, err := fx.exec.Execute(g, plan)
			if err != nil {
				return 0, 0, false
			}
			return res.FinalRecords, res.FinalBytes, true
		}

		recA, bytesA, okA := runOnce(false)
		recB, bytesB, okB := runOnce(true)
		if !okA || !okB {
			return false
		}
		return recA == recB && bytesA == bytesB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: workflows at random scales — sometimes restricted to a single
// engine — execute to completion and release the whole cluster afterwards.
func TestQuickRandomChainsComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fx := newFixture(t)
		g := chainWorkflow(t, int64(1_000+r.Intn(20_000)))
		// Half the time, force a single engine.
		if r.Intn(2) == 0 {
			eng := []string{engine.EngineJava, engine.EngineSpark}[r.Intn(2)]
			for _, other := range []string{engine.EngineJava, engine.EngineSpark} {
				fx.env.SetAvailable(other, other == eng)
			}
		}
		plan, err := fx.plnr.Plan(g)
		if err != nil {
			return true // single-engine restriction may be infeasible: fine
		}
		res, err := fx.exec.Execute(g, plan)
		if err != nil {
			return false
		}
		if res.FinalRecords <= 0 {
			return false
		}
		freeC, _ := fx.clus.Available()
		capC, _ := fx.clus.Capacity()
		return freeC == capC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestReplanPreservesStepNaming double-checks that replanned steps carry
// the workflow node names the monitoring surfaces rely on.
func TestReplanPreservesStepNaming(t *testing.T) {
	fx := newFixture(t)
	g := chainWorkflow(t, 5_000)
	plan, err := fx.plnr.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	fx.env.SetAvailable(plan.OperatorSteps()[0].Engine, false)
	res, err := fx.exec.Execute(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, log := range res.StepLog {
		if !log.Failed && !strings.Contains(log.Name, "move") {
			parts := strings.SplitN(log.Name, "/", 2)
			seen[parts[0]] = true
		}
	}
	for _, node := range []string{"wc", "sort"} {
		if !seen[node] {
			t.Fatalf("workflow node %s missing from step log: %+v", node, res.StepLog)
		}
	}
}
