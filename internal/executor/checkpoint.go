package executor

import (
	"math"
	"sort"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metrics"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/trace"
)

// CheckpointPolicy enables sub-operator checkpointing: iterative operators
// checkpoint at iteration boundaries, single-pass operators at partition
// boundaries (see engine.CheckpointSpec). Checkpoints bound cooperative
// preemption latency to one checkpoint interval (attempts yield at the next
// boundary instead of the operator boundary) and let retries, speculative
// copies and resumed runs seed completed units instead of restarting the
// operator from unit zero. The zero value disables checkpointing, keeping
// every pre-existing execution timeline byte-identical.
type CheckpointPolicy struct {
	// Enabled turns the layer on.
	Enabled bool
	// MinIntervalSec is the minimum virtual time between checkpoint writes:
	// boundaries arriving faster are skipped so tight iteration loops don't
	// drown in write overhead. Zero or negative defaults to 5s.
	MinIntervalSec float64
	// Durable materializes checkpoints to the shared store so they survive
	// any node crash; otherwise checkpoints are replicated across the gang's
	// nodes only and die with the last replica.
	Durable bool
}

// interval returns the effective minimum checkpoint interval.
func (p CheckpointPolicy) interval() float64 {
	if p.MinIntervalSec <= 0 {
		return 5
	}
	return p.MinIntervalSec
}

// ckptMark is one scheduled checkpoint write inside a live attempt.
type ckptMark struct {
	at    time.Duration // absolute virtual time the write completes
	units int           // work units durably completed at this boundary
}

// ckptPlan is the checkpoint schedule computed at attempt launch.
type ckptPlan struct {
	key        string
	baseUnits  int // units seeded from a stored checkpoint
	totalUnits int
	writeSec   float64
	restoreSec float64
	marks      []ckptMark
}

// ckptKeyOf namespaces a step's checkpoint key by the executor's scope (the
// scheduler run id) and the abstract workflow node — stable across replans
// and across same-algorithm engine switches, so a retry on a different
// engine still resumes the algorithm's banked progress.
func (e *Executor) ckptKeyOf(s *planner.Step) string {
	scope := e.CkptScope
	if scope == "" {
		scope = "run"
	}
	return scope + "/" + s.WorkflowNode
}

// planCheckpoints computes the checkpoint schedule of one attempt: seed
// progress from the store, place a write mark every stride units (at least
// MinIntervalSec apart), and fold restore + write overheads into the run's
// modeled duration and cost. It returns nil when the attempt is not
// checkpointable. run.ExecTimeSec must already include noise and straggler
// stretch; the caller derives the attempt end from the adjusted value.
func (st *planRun) planCheckpoints(s *planner.Step, engineName, algorithm string, in engine.Input, res engine.Resources, run *metrics.Run) *ckptPlan {
	e := st.e
	if !e.Checkpoint.Enabled || run.ExecTimeSec <= 0 {
		return nil
	}
	spec, ok := e.Env.CheckpointSpec(engineName, algorithm, in, res)
	if !ok {
		return nil
	}
	key := e.ckptKeyOf(s)
	base := e.Cluster.CheckpointProgress(key, algorithm, spec.Units)
	if base >= spec.Units {
		base = spec.Units - 1
	}
	unitSec := run.ExecTimeSec / float64(spec.Units)
	stride := int(math.Ceil(e.Checkpoint.interval() / unitSec))
	if stride < 1 {
		stride = 1
	}
	p := &ckptPlan{key: key, baseUnits: base, totalUnits: spec.Units, writeSec: spec.WriteSec}
	if base > 0 {
		p.restoreSec = spec.RestoreSec
	}
	now := e.Clock.Now()
	j := 0
	for u := base + stride; u < spec.Units; u += stride {
		j++
		at := e.LaunchOverheadSec + p.restoreSec + float64(u-base)*unitSec + float64(j)*spec.WriteSec
		p.marks = append(p.marks, ckptMark{at: now + secs(at), units: u})
	}
	// The attempt's actual modeled time: restore, the remaining units, and
	// the checkpoint writes. Cost scales with it so the paper's cost metric
	// charges (and the planner's speculation deadlines see) the real span.
	actual := p.restoreSec + float64(spec.Units-base)*unitSec + float64(j)*spec.WriteSec
	if run.ExecTimeSec > 0 {
		run.CostUnits *= actual / run.ExecTimeSec
	}
	run.ExecTimeSec = actual
	return p
}

// gangNodes returns the sorted distinct node names hosting a gang — the
// replica set of its non-durable checkpoints.
func gangNodes(ctrs []*cluster.Container) []string {
	seen := make(map[string]bool, len(ctrs))
	var out []string
	for _, c := range ctrs {
		if !seen[c.NodeName] {
			seen[c.NodeName] = true
			out = append(out, c.NodeName)
		}
	}
	sort.Strings(out)
	return out
}

// fireMarks handles checkpoint-write decision points: every due mark is
// committed to the cluster store, and — checked directly here, not at the
// outer loop, so a preempt request never waits past the first boundary —
// an attempt that just banked a checkpoint yields cooperatively when a
// suspend is pending, releasing its gang instead of running to the operator
// boundary. Flights are visited in step-ID order for deterministic traces.
func (st *planRun) fireMarks(now time.Duration) {
	e := st.e
	ids := make([]int, 0, len(st.inFlight))
	for id := range st.inFlight {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		f := st.inFlight[id]
		kept := f.copies[:0]
		yielded := false
		for _, c := range f.copies {
			fired := false
			for len(c.marks) > 0 && c.marks[0].at <= now {
				m := c.marks[0]
				c.marks = c.marks[1:]
				fired = true
				c.banked = m.units
				e.Cluster.PutCheckpoint(c.ckptKey, c.run.Algorithm, m.units, c.totalUnits, gangNodes(c.ctrs), e.Checkpoint.Durable)
				st.res.CheckpointWrites++
				e.emit(trace.Event{
					Type: trace.EvCheckpointWrite, Step: f.step.Name, Operator: c.opName, Engine: c.engineName,
					Attempt: c.attempt, Speculative: c.speculative,
					Fields: map[string]float64{
						"units":      float64(m.units),
						"totalUnits": float64(c.totalUnits),
						"writeSec":   c.writeSec,
					},
				})
			}
			if fired && e.suspendRequested() {
				// Boundary-aware suspension: the checkpoint just written is
				// this attempt's durable progress; drop the gang here.
				e.Cluster.ReleaseAll(c.ctrs)
				if len(c.ctrs) > 0 {
					e.emit(trace.Event{
						Type: trace.EvContainerRelease, Step: f.step.Name, Engine: c.engineName,
						Fields: map[string]float64{"containers": float64(len(c.ctrs))},
					})
				}
				st.res.AttemptYields++
				e.emit(trace.Event{
					Type: trace.EvAttemptYield, Step: f.step.Name, Operator: c.opName, Engine: c.engineName,
					Attempt: c.attempt, Speculative: c.speculative,
					Fields: map[string]float64{
						"units":      float64(c.banked),
						"totalUnits": float64(c.totalUnits),
					},
				})
				yielded = true
				continue
			}
			kept = append(kept, c)
		}
		if !yielded {
			continue
		}
		f.copies = kept
		if len(f.copies) == 0 {
			// The whole flight yielded at its boundary: the step is neither
			// done nor failed; the resumed run replans and its relaunch seeds
			// the banked units.
			delete(st.inFlight, id)
		}
	}
}

// partialProgress reports the checkpointed sub-operator progress surviving
// in the store for the plan's operator steps — the Partials payload of a
// suspended Result, the sub-operator counterpart of Intermediates.
func (e *Executor) partialProgress(plan *planner.Plan) []planner.PartialOperator {
	if !e.Checkpoint.Enabled || plan == nil || e.Cluster == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []planner.PartialOperator
	for _, s := range plan.Steps {
		if s.Kind != planner.StepOperator || seen[s.WorkflowNode] {
			continue
		}
		seen[s.WorkflowNode] = true
		alg, units, total, ok := e.Cluster.CheckpointInfo(e.ckptKeyOf(s))
		if !ok {
			continue
		}
		out = append(out, planner.PartialOperator{
			WorkflowNode: s.WorkflowNode, Algorithm: alg,
			UnitsDone: units, UnitsTotal: total,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkflowNode < out[j].WorkflowNode })
	return out
}
