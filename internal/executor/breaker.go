package executor

import (
	"sort"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
)

// CircuitBreaker blacklists engines that keep failing: after Threshold
// consecutive failures an engine is excluded (from replans and from
// speculation targets) for a Cooldown window of virtual time, after which it
// gets a fresh chance. This is the classic YARN-style node/service blacklist
// adapted to engines: a flapping service stops eating retry and replan
// budget while it is down, without being removed permanently.
type CircuitBreaker struct {
	mu    sync.Mutex
	clock *vtime.Clock
	// Threshold is the consecutive-failure count that trips the breaker.
	Threshold int
	// Cooldown is how long a tripped engine stays excluded.
	Cooldown time.Duration
	// Tracer receives trip/reset events; nil discards them.
	Tracer trace.Tracer
	// OnTransition, if set, is told which engine tripped or reset — the
	// platform wires this to the planner's typed EngineAvailability
	// invalidation. It runs with b.mu held and must only enqueue. The lazy
	// half-open transition inside Allows is deliberately not reported: the
	// planner's per-build availability fingerprint catches it.
	OnTransition func(engineName string)

	state map[string]*breakerState
	// gen counts availability transitions (trip, reset, half-open).
	gen uint64
}

// Gen returns the breaker's availability-transition generation counter.
func (b *CircuitBreaker) Gen() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

type breakerState struct {
	consecutive  int
	trippedUntil time.Duration
	tripped      bool
}

// NewCircuitBreaker builds a breaker over the virtual clock. A threshold of
// zero or less disables tripping entirely; cooldown defaults to 120s.
func NewCircuitBreaker(clock *vtime.Clock, threshold int, cooldown time.Duration) *CircuitBreaker {
	if cooldown <= 0 {
		cooldown = 120 * time.Second
	}
	return &CircuitBreaker{
		clock:     clock,
		Threshold: threshold,
		Cooldown:  cooldown,
		state:     make(map[string]*breakerState),
	}
}

func (b *CircuitBreaker) now() time.Duration {
	if b.clock == nil {
		return 0
	}
	return b.clock.Now()
}

// RecordFailure counts a failed attempt against the engine and reports
// whether this failure tripped the breaker.
func (b *CircuitBreaker) RecordFailure(engineName string) bool {
	if b == nil || b.Threshold <= 0 || engineName == "" {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state[engineName]
	if st == nil {
		st = &breakerState{}
		b.state[engineName] = st
	}
	st.consecutive++
	if st.consecutive >= b.Threshold && !st.tripped {
		st.tripped = true
		st.trippedUntil = b.now() + b.Cooldown
		b.gen++
		if b.OnTransition != nil {
			b.OnTransition(engineName)
		}
		b.emitLocked(trace.Event{
			Type: trace.EvBreakerTrip, Engine: engineName,
			Fields: map[string]float64{
				"consecutive": float64(st.consecutive),
				"untilSec":    st.trippedUntil.Seconds(),
			},
		})
		return true
	}
	return false
}

// emitLocked stamps the current virtual time and forwards to the tracer; the
// caller holds b.mu.
func (b *CircuitBreaker) emitLocked(ev trace.Event) {
	if b.Tracer == nil {
		return
	}
	b.Tracer.Emit(ev.At(b.now()))
}

// RecordSuccess resets the engine's consecutive-failure count and closes a
// tripped breaker (the engine proved itself healthy again).
func (b *CircuitBreaker) RecordSuccess(engineName string) {
	if b == nil || engineName == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.state[engineName]; st != nil {
		if st.tripped {
			b.emitLocked(trace.Event{Type: trace.EvBreakerReset, Engine: engineName})
			b.gen++
			if b.OnTransition != nil {
				b.OnTransition(engineName)
			}
		}
		st.consecutive = 0
		st.tripped = false
	}
}

// Allows reports whether the engine may be used right now. A tripped engine
// becomes usable again once its cooldown elapses (half-open: the next
// failure re-trips immediately since the consecutive count is preserved).
func (b *CircuitBreaker) Allows(engineName string) bool {
	if b == nil || b.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state[engineName]
	if st == nil || !st.tripped {
		return true
	}
	if b.now() >= st.trippedUntil {
		// Cooldown elapsed: half-open. One more failure re-trips.
		st.tripped = false
		st.consecutive = b.Threshold - 1
		if st.consecutive < 0 {
			st.consecutive = 0
		}
		b.gen++
		return true
	}
	return false
}

// Tripped lists the currently excluded engines, sorted.
func (b *CircuitBreaker) Tripped() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	now := b.now()
	var out []string
	for name, st := range b.state {
		if st.tripped && now < st.trippedUntil {
			out = append(out, name)
		}
	}
	b.mu.Unlock()
	sort.Strings(out)
	return out
}
