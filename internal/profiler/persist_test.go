package profiler

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/asap-project/ires/internal/engine"
)

func TestExportImportRoundTrip(t *testing.T) {
	env := engine.NewDefaultEnvironment(12)
	src := newProfiler(env)
	if _, err := src.ProfileOffline("tfidf_spark", engine.EngineSpark, engine.AlgTFIDF, tfidfSpace()); err != nil {
		t.Fatal(err)
	}
	// Include a feasibility wall.
	prSpace := Space{
		Records:        []int64{10_000, 1_000_000, 50_000_000},
		BytesPerRecord: 40,
		Params:         map[string][]float64{"iterations": {10}},
		Resources:      []engine.Resources{engine.SingleNode},
	}
	if _, err := src.ProfileOffline("pagerank_java", engine.EngineJava, engine.AlgPagerank, prSpace); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newProfiler(engine.NewDefaultEnvironment(12))
	if err := dst.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if got := dst.Operators(); len(got) != 2 {
		t.Fatalf("imported operators = %v", got)
	}
	// Estimates must survive the round trip (same training data, same seed).
	feats := map[string]float64{
		"records": 20_000, "bytes": 20_000 * 5000,
		"nodes": 16, "cores": 2, "memoryMB": 3456,
	}
	want, ok1 := src.Estimate("tfidf_spark", TargetExecTime, feats)
	got, ok2 := dst.Estimate("tfidf_spark", TargetExecTime, feats)
	if !ok1 || !ok2 {
		t.Fatal("estimate unavailable after round trip")
	}
	if math.Abs(want-got) > 1e-9 {
		t.Fatalf("estimate drifted: %v -> %v", want, got)
	}
	// The feasibility wall survives too.
	if dst.Feasible("pagerank_java", 60_000_000) {
		t.Fatal("imported wall lost")
	}
	if !dst.Feasible("pagerank_java", 1_000_000) {
		t.Fatal("imported wall over-restrictive")
	}
	// Refinement continues to work on imported models.
	run, err := engine.NewDefaultEnvironment(13).Execute(engine.EngineSpark, engine.AlgTFIDF,
		engine.Input{Records: 40_000, Bytes: 2e8}, engine.StandardCluster, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Observe("tfidf_spark", run); err != nil {
		t.Fatal(err)
	}
	om, _ := dst.Models("tfidf_spark")
	if om.SampleCount() != 16 {
		t.Fatalf("samples after observe = %d, want 16", om.SampleCount())
	}
}

// A library whose feature set grew mid-session (historical rows zero-padded
// for the new parameter) must survive a save/load cycle without changing
// predictions. Import refits the persisted model family rather than
// re-running CV selection, which can land on a different family over the
// padded matrix and silently shift every estimate.
func TestExportImportKeepsExtendedFeatureSemantics(t *testing.T) {
	env := engine.NewDefaultEnvironment(7)
	src := newProfiler(env)
	if _, err := src.ProfileOffline("tfidf_spark", engine.EngineSpark, engine.AlgTFIDF, tfidfSpace()); err != nil {
		t.Fatal(err)
	}
	// Observed runs introduce a new operator parameter "k", extending the
	// feature set and zero-padding the offline rows.
	for i := int64(1); i <= 6; i++ {
		run := obsRun(i*20_000, 1.7*float64(i), map[string]float64{"k": float64(3 + i%2)})
		if err := src.Observe("tfidf_spark", run); err != nil {
			t.Fatal(err)
		}
	}
	som, _ := src.Models("tfidf_spark")
	extended := false
	for _, f := range som.Features {
		if f == "k" {
			extended = true
		}
	}
	if !extended {
		t.Fatalf("feature set %v not extended with k", som.Features)
	}

	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newProfiler(engine.NewDefaultEnvironment(7))
	if err := dst.Import(&buf); err != nil {
		t.Fatal(err)
	}

	dom, ok := dst.Models("tfidf_spark")
	if !ok {
		t.Fatal("operator missing after import")
	}
	feats := map[string]float64{
		"records": 60_000, "bytes": 6_000_000,
		"nodes": 8, "cores": 2, "memoryMB": 3456, "k": 4,
	}
	for _, target := range []string{TargetExecTime, TargetCost, TargetOutRecords, TargetOutBytes} {
		if got, want := dom.ChosenFamily(target), som.ChosenFamily(target); got != want {
			t.Errorf("%s: model family flipped %q -> %q across round trip", target, want, got)
		}
		want, ok1 := src.Estimate("tfidf_spark", target, feats)
		got, ok2 := dst.Estimate("tfidf_spark", target, feats)
		if ok1 != ok2 {
			t.Fatalf("%s: estimate availability drifted (%v -> %v)", target, ok1, ok2)
		}
		if math.Abs(want-got) > 1e-9 {
			t.Errorf("%s: estimate drifted across round trip: %v -> %v", target, want, got)
		}
	}
}

// Version-1 files carry no recorded family choices; they must still import,
// falling back to full cross-validated selection as before.
func TestImportVersion1Compat(t *testing.T) {
	payload := `{"version": 1, "operators": [{
		"operator": "legacy_op", "algorithm": "alg", "engine": "Spark",
		"features": ["records", "nodes"],
		"samples": [[1000, 2], [2000, 2], [4000, 4], [8000, 4]],
		"targets": {"execTime": [1, 2, 3.5, 5]}}]}`
	p := newProfiler(engine.NewDefaultEnvironment(1))
	if err := p.Import(strings.NewReader(payload)); err != nil {
		t.Fatalf("v1 import: %v", err)
	}
	om, ok := p.Models("legacy_op")
	if !ok {
		t.Fatal("legacy operator missing after v1 import")
	}
	if om.ChosenFamily(TargetExecTime) == "" {
		t.Fatal("no model family selected for v1-imported target")
	}
	if _, ok := p.Estimate("legacy_op", TargetExecTime, map[string]float64{"records": 3000, "nodes": 3}); !ok {
		t.Fatal("estimate unavailable after v1 import")
	}
}

func TestImportErrors(t *testing.T) {
	p := newProfiler(engine.NewDefaultEnvironment(1))
	cases := []string{
		"{not json",
		`{"version": 99, "operators": []}`,
		`{"version": 1, "operators": [{"operator": ""}]}`,
		`{"version": 1, "operators": [{"operator": "x", "features": ["a"], "samples": [[1,2]], "targets": {}}]}`,
		`{"version": 1, "operators": [{"operator": "x", "features": ["a"], "samples": [[1]], "targets": {"execTime": [1,2]}}]}`,
	}
	for _, c := range cases {
		if err := p.Import(strings.NewReader(c)); err == nil {
			t.Errorf("accepted bad payload %q", c)
		}
	}
}

func TestExportEmpty(t *testing.T) {
	p := newProfiler(engine.NewDefaultEnvironment(1))
	var buf bytes.Buffer
	if err := p.Export(&buf); err != nil {
		t.Fatal(err)
	}
	q := newProfiler(engine.NewDefaultEnvironment(1))
	if err := q.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if len(q.Operators()) != 0 {
		t.Fatal("empty import produced operators")
	}
}
