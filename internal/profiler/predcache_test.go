package profiler

import (
	"testing"

	"github.com/asap-project/ires/internal/engine"
)

// TestPredictionCache verifies the Estimate memoization: repeated queries
// with identical feature vectors hit the cache and return identical values,
// while new observations invalidate it so refits actually change answers.
func TestPredictionCache(t *testing.T) {
	env := engine.NewDefaultEnvironment(21)
	p := newProfiler(env)
	if _, err := p.ProfileOffline("tfidf_spark", engine.EngineSpark, engine.AlgTFIDF, tfidfSpace()); err != nil {
		t.Fatal(err)
	}
	feats := map[string]float64{
		"records": 20_000, "bytes": 20_000 * 5000,
		"nodes": 16, "cores": 2, "memoryMB": 3456,
	}

	first, ok := p.Estimate("tfidf_spark", TargetExecTime, feats)
	if !ok {
		t.Fatal("estimate unavailable")
	}
	_, misses0 := p.PredictionCacheStats()
	for i := 0; i < 5; i++ {
		v, ok := p.Estimate("tfidf_spark", TargetExecTime, feats)
		if !ok || v != first {
			t.Fatalf("cached estimate diverged: %v/%v vs %v", v, ok, first)
		}
	}
	hits, misses := p.PredictionCacheStats()
	if hits < 5 {
		t.Fatalf("repeated estimates hit the cache %d times, want >=5", hits)
	}
	if misses != misses0 {
		t.Fatalf("repeated estimates missed: %d -> %d", misses0, misses)
	}

	// Different feature vector: a miss, not a stale hit.
	feats2 := map[string]float64{
		"records": 40_000, "bytes": 40_000 * 5000,
		"nodes": 16, "cores": 2, "memoryMB": 3456,
	}
	if _, ok := p.Estimate("tfidf_spark", TargetExecTime, feats2); !ok {
		t.Fatal("estimate unavailable")
	}
	if _, m := p.PredictionCacheStats(); m != misses+1 {
		t.Fatalf("distinct features should miss: misses %d -> %d", misses, m)
	}

	// Observe invalidates: the profiler generation moves and a refit may
	// change the prediction; the cache must not serve the old value blindly.
	gen := p.Gen()
	run, err := env.Execute(engine.EngineSpark, engine.AlgTFIDF,
		engine.Input{Records: 20_000, Bytes: 20_000 * 5000}, engine.StandardCluster, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe("tfidf_spark", run); err != nil {
		t.Fatal(err)
	}
	if p.Gen() == gen {
		t.Fatal("Observe did not bump the profiler generation")
	}
	om, _ := p.Models("tfidf_spark")
	om.mu.Lock()
	cacheLen := len(om.predCache)
	om.mu.Unlock()
	if cacheLen != 0 {
		t.Fatalf("Observe left %d stale cache entries", cacheLen)
	}
	// Post-invalidation estimates still work (recomputed, re-cached).
	v1, ok := p.Estimate("tfidf_spark", TargetExecTime, feats)
	if !ok {
		t.Fatal("post-observe estimate unavailable")
	}
	v2, ok := p.Estimate("tfidf_spark", TargetExecTime, feats)
	if !ok || v1 != v2 {
		t.Fatalf("post-observe cache inconsistent: %v vs %v", v1, v2)
	}
}

// TestPredictionCacheInfeasible checks that infeasible verdicts are cached
// too, and that the cache never converts them into stale positives.
func TestPredictionCacheInfeasible(t *testing.T) {
	env := engine.NewDefaultEnvironment(22)
	p := newProfiler(env)
	space := Space{
		Records:        []int64{10_000, 100_000, 1_000_000, 50_000_000},
		BytesPerRecord: 40,
		Params:         map[string][]float64{"iterations": {10}},
		Resources:      []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}},
	}
	if _, err := p.ProfileOffline("pagerank_java", engine.EngineJava, engine.AlgPagerank, space); err != nil {
		t.Fatal(err)
	}
	feats := map[string]float64{"records": 60_000_000, "bytes": 60_000_000 * 40,
		"nodes": 1, "cores": 2, "memoryMB": 3456, "iterations": 10}
	for i := 0; i < 3; i++ {
		if _, ok := p.Estimate("pagerank_java", TargetExecTime, feats); ok {
			t.Fatal("infeasible configuration estimated")
		}
	}
	hits, _ := p.PredictionCacheStats()
	if hits < 2 {
		t.Fatalf("infeasible verdicts not cached: %d hits", hits)
	}
}

// TestProfilerGen covers the generation counter's channels: offline
// profiling, observation, and import each must move it.
func TestProfilerGen(t *testing.T) {
	env := engine.NewDefaultEnvironment(23)
	p := newProfiler(env)
	if p.Gen() != 0 {
		t.Fatalf("fresh profiler Gen = %d", p.Gen())
	}
	if _, err := p.ProfileOffline("tfidf_spark", engine.EngineSpark, engine.AlgTFIDF, tfidfSpace()); err != nil {
		t.Fatal(err)
	}
	g1 := p.Gen()
	if g1 == 0 {
		t.Fatal("ProfileOffline did not bump Gen")
	}
	feats := map[string]float64{"records": 20_000, "bytes": 20_000 * 5000,
		"nodes": 16, "cores": 2, "memoryMB": 3456}
	p.Estimate("tfidf_spark", TargetExecTime, feats) // read-only: no bump
	if p.Gen() != g1 {
		t.Fatal("Estimate bumped Gen")
	}
}
