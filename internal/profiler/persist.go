package profiler

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/asap-project/ires/internal/model"
)

// The paper's models "are stored and updated in an IReS library" that
// outlives individual workflow runs. Export/Import persist the library: the
// training buffers (profiled and observed runs) and feasibility walls are
// serialised; models are retrained on import, so persistence is independent
// of model internals.

// persistedOperator is the JSON form of one operator's model state.
type persistedOperator struct {
	Operator       string               `json:"operator"`
	Algorithm      string               `json:"algorithm"`
	Engine         string               `json:"engine"`
	Features       []string             `json:"features"`
	X              [][]float64          `json:"samples"`
	Targets        map[string][]float64 `json:"targets"`
	MinFailRecords float64              `json:"minFailRecords,omitempty"`
	// Chosen records the selected model family per target (since version
	// 2). Without it, import re-runs full CV selection, which may pick a
	// different family than the exporter was using — especially after the
	// feature set grew mid-session and old samples were zero-padded — and
	// silently change predictions across a save/load cycle.
	Chosen map[string]string `json:"chosen,omitempty"`
	// SinceReselect preserves the incremental-retraining cadence (version 2).
	SinceReselect int `json:"sinceReselect,omitempty"`
}

type persistedLibrary struct {
	Version   int                 `json:"version"`
	Operators []persistedOperator `json:"operators"`
}

// persistVersion 2 adds Chosen/SinceReselect; version-1 files (no recorded
// family choices) import with full re-selection, as before.
const persistVersion = 2

// Export writes the profiler's model library as JSON.
func (p *Profiler) Export(w io.Writer) error {
	lib := persistedLibrary{Version: persistVersion}
	for _, name := range p.Operators() {
		om, _ := p.Models(name)
		om.mu.Lock()
		po := persistedOperator{
			Operator:       om.Operator,
			Algorithm:      om.Algorithm,
			Engine:         om.Engine,
			Features:       append([]string(nil), om.Features...),
			MinFailRecords: om.minFailRecords,
			Targets:        make(map[string][]float64, len(om.targets)),
			Chosen:         make(map[string]string, len(om.chosen)),
			SinceReselect:  om.sinceReselect,
		}
		for t, fam := range om.chosen {
			po.Chosen[t] = fam
		}
		po.X = make([][]float64, len(om.X))
		for i, row := range om.X {
			po.X[i] = append([]float64(nil), row...)
		}
		for t, ys := range om.targets {
			po.Targets[t] = append([]float64(nil), ys...)
		}
		om.mu.Unlock()
		lib.Operators = append(lib.Operators, po)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(lib)
}

// Import reads a persisted library, replacing any same-named operators, and
// retrains every imported model — using the persisted family choice when one
// was recorded, full cross-validated selection otherwise.
func (p *Profiler) Import(r io.Reader) error {
	var lib persistedLibrary
	if err := json.NewDecoder(r).Decode(&lib); err != nil {
		return fmt.Errorf("profiler: import: %w", err)
	}
	if lib.Version < 1 || lib.Version > persistVersion {
		return fmt.Errorf("profiler: import: unsupported version %d", lib.Version)
	}
	for _, po := range lib.Operators {
		if po.Operator == "" {
			return fmt.Errorf("profiler: import: unnamed operator")
		}
		for _, row := range po.X {
			if len(row) != len(po.Features) {
				return fmt.Errorf("profiler: import: %s: sample width %d != %d features",
					po.Operator, len(row), len(po.Features))
			}
		}
		for t, ys := range po.Targets {
			if len(ys) != len(po.X) {
				return fmt.Errorf("profiler: import: %s: target %s has %d values for %d samples",
					po.Operator, t, len(ys), len(po.X))
			}
		}
		om := &OperatorModels{
			Operator:      po.Operator,
			Algorithm:     po.Algorithm,
			Engine:        po.Engine,
			Features:      append([]string(nil), po.Features...),
			X:             po.X,
			targets:       po.Targets,
			models:        make(map[string]model.Model),
			chosen:        make(map[string]string),
			factories:     p.Factories,
			cvFolds:       p.CVFolds,
			seed:          p.Seed,
			reselectEvery: p.ReselectEvery,
		}
		om.minFailRecords = po.MinFailRecords
		om.sinceReselect = po.SinceReselect
		if om.targets == nil {
			om.targets = make(map[string][]float64)
		}
		if len(om.X) > 0 {
			if err := om.retrainRestoring(po.Chosen); err != nil {
				return fmt.Errorf("profiler: import: retraining %s: %w", po.Operator, err)
			}
		}
		p.mu.Lock()
		p.store[po.Operator] = om
		p.mu.Unlock()
		p.noteRetrain(po.Operator)
	}
	return nil
}
