// Package profiler implements the Profiler/Modeler and Model Refinement
// modules of IReS (D3.3 §2.2.1-§2.2.2): offline profiling of materialized
// operators over a grid of data-, operator- and resource-specific
// parameters, cross-validated model selection over the model zoo, and
// online refinement of the models from the metrics of every actual run.
package profiler

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metrics"
	"github.com/asap-project/ires/internal/model"
)

// Targets modelled for every operator. Output sizes are modelled alongside
// performance so the planner can propagate intermediate dataset sizes
// through the workflow.
const (
	TargetExecTime   = "execTime"
	TargetCost       = "cost"
	TargetOutRecords = "outputRecords"
	TargetOutBytes   = "outputBytes"
)

// BaseFeatures are the data- and resource-specific features recorded for
// every run; operator-specific parameters are appended per operator.
var BaseFeatures = []string{"records", "bytes", "nodes", "cores", "memoryMB"}

// Space declares the profiling parameter space of one operator: the input
// scales, the operator-specific parameters and the resource configurations
// to sweep (D3.3 §2.2.1's three input-parameter categories).
type Space struct {
	Records        []int64
	BytesPerRecord int64
	Params         map[string][]float64
	Resources      []engine.Resources
}

// combinations enumerates the full grid, deterministically ordered.
func (s Space) combinations() []profilePoint {
	paramNames := make([]string, 0, len(s.Params))
	for k := range s.Params {
		paramNames = append(paramNames, k)
	}
	sort.Strings(paramNames)

	points := []profilePoint{{params: map[string]float64{}}}
	for _, name := range paramNames {
		var next []profilePoint
		for _, pt := range points {
			for _, v := range s.Params[name] {
				np := profilePoint{params: map[string]float64{}}
				for k, vv := range pt.params {
					np.params[k] = vv
				}
				np.params[name] = v
				next = append(next, np)
			}
		}
		points = next
	}
	var out []profilePoint
	for _, rec := range s.Records {
		for _, res := range s.Resources {
			for _, pt := range points {
				out = append(out, profilePoint{
					records: rec,
					bytes:   rec * s.BytesPerRecord,
					res:     res,
					params:  pt.params,
				})
			}
		}
	}
	return out
}

type profilePoint struct {
	records int64
	bytes   int64
	res     engine.Resources
	params  map[string]float64
}

// OperatorModels holds the trained estimation models of one materialized
// operator together with its training buffer. It refines itself as runs are
// observed.
type OperatorModels struct {
	mu sync.Mutex

	Operator  string
	Algorithm string
	Engine    string
	Features  []string

	X       [][]float64
	targets map[string][]float64
	models  map[string]model.Model
	chosen  map[string]string // target -> selected family name

	// failures records feature vectors of failed runs; the smallest failing
	// record count approximates the operator's feasibility wall (OOM).
	minFailRecords float64

	factories []model.Factory
	cvFolds   int
	seed      int64
	// reselectEvery controls how often (in observations) full CV model
	// re-selection happens; in between, only the incumbent family is
	// retrained.
	reselectEvery int
	sinceReselect int

	// predCache memoizes Estimate results per (target, projected feature
	// vector): the planner's DP asks for the same configurations many times
	// per table build. Any mutation of the models, the training buffer or
	// the feasibility wall clears it, so cached values are always what a
	// fresh prediction would return.
	predCache            map[string]predResult
	predHits, predMisses uint64
}

// predResult is one memoized prediction (value plus the ok flag, so
// infeasible configurations are cached too).
type predResult struct {
	v  float64
	ok bool
}

// maxPredCache bounds the per-operator prediction cache; overflow clears it.
const maxPredCache = 4096

// invalidatePredLocked drops every memoized prediction. Callers hold om.mu.
func (om *OperatorModels) invalidatePredLocked() {
	om.predCache = nil
}

// PredictionCacheStats reports the cumulative Estimate cache hit/miss
// counts of this operator's models.
func (om *OperatorModels) PredictionCacheStats() (hits, misses uint64) {
	om.mu.Lock()
	defer om.mu.Unlock()
	return om.predHits, om.predMisses
}

// Profiler owns the model store: one OperatorModels per materialized
// operator.
type Profiler struct {
	mu    sync.RWMutex
	env   *engine.Environment
	store map[string]*OperatorModels
	// gen counts model-state mutations (profiling, observation, import).
	// Accessed atomically.
	gen uint64
	// retrainListener, if set, is told which operator's models changed on
	// every mutation — the planner wires this to a typed partial
	// invalidation (ProfilerRetrain) instead of flushing its whole cache.
	retrainListener func(opName string)

	// Factories is the model zoo used for selection; defaults to
	// model.DefaultFactories.
	Factories []model.Factory
	// CVFolds is the cross-validation fold count (default 5).
	CVFolds int
	// ReselectEvery is the refinement re-selection period (default 10).
	ReselectEvery int
	Seed          int64
}

// New returns a profiler over the given engine environment.
func New(env *engine.Environment, seed int64) *Profiler {
	return &Profiler{
		env:           env,
		store:         make(map[string]*OperatorModels),
		Factories:     model.DefaultFactories(seed),
		CVFolds:       5,
		ReselectEvery: 10,
		Seed:          seed,
	}
}

// Gen returns the profiler's model-mutation generation counter.
func (p *Profiler) Gen() uint64 { return atomic.LoadUint64(&p.gen) }

// SetRetrainListener registers the callback notified with the operator name
// on every model mutation (profiling, observation, import). Call before the
// profiler is shared across goroutines.
func (p *Profiler) SetRetrainListener(fn func(opName string)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retrainListener = fn
}

// noteRetrain bumps the generation counter and announces the retrained
// operator to the listener.
func (p *Profiler) noteRetrain(opName string) {
	atomic.AddUint64(&p.gen, 1)
	p.mu.RLock()
	fn := p.retrainListener
	p.mu.RUnlock()
	if fn != nil {
		fn(opName)
	}
}

// PredictionCacheStats sums the Estimate cache counters across every
// profiled operator.
func (p *Profiler) PredictionCacheStats() (hits, misses uint64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, om := range p.store {
		h, m := om.PredictionCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// ResetPredictionCaches drops every operator's memoized Estimate results
// (the hit/miss counters keep accumulating). Predictions are unchanged —
// the generation counter does not move — so this exists for cold-start
// benchmarking, not invalidation, which is automatic on model updates.
func (p *Profiler) ResetPredictionCaches() {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, om := range p.store {
		om.mu.Lock()
		om.predCache = nil
		om.mu.Unlock()
	}
}

// Models returns the model set of an operator, if profiled.
func (p *Profiler) Models(opName string) (*OperatorModels, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	om, ok := p.store[opName]
	return om, ok
}

// Operators lists profiled operator names, sorted.
func (p *Profiler) Operators() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.store))
	for n := range p.store {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (p *Profiler) ensure(opName, algorithm, engineName string, paramNames []string) *OperatorModels {
	p.mu.Lock()
	defer p.mu.Unlock()
	if om, ok := p.store[opName]; ok {
		return om
	}
	features := append([]string{}, BaseFeatures...)
	base := make(map[string]bool, len(BaseFeatures))
	for _, f := range BaseFeatures {
		base[f] = true
	}
	for _, n := range paramNames {
		if !base[n] {
			features = append(features, n)
		}
	}
	om := &OperatorModels{
		Operator:      opName,
		Algorithm:     algorithm,
		Engine:        engineName,
		Features:      features,
		targets:       make(map[string][]float64),
		models:        make(map[string]model.Model),
		chosen:        make(map[string]string),
		factories:     p.Factories,
		cvFolds:       p.CVFolds,
		seed:          p.Seed,
		reselectEvery: p.ReselectEvery,
	}
	p.store[opName] = om
	return om
}

// ProfileOffline runs the offline profiling phase for one materialized
// operator: every grid point is executed on the (simulated) engine, metrics
// are collected, and models are trained with cross-validated selection. It
// returns the number of successful runs.
func (p *Profiler) ProfileOffline(opName, engineName, algorithm string, space Space) (int, error) {
	if len(space.Records) == 0 || len(space.Resources) == 0 {
		return 0, fmt.Errorf("profiler: empty profiling space for %s", opName)
	}
	paramNames := make([]string, 0, len(space.Params))
	for k := range space.Params {
		paramNames = append(paramNames, k)
	}
	sort.Strings(paramNames)
	om := p.ensure(opName, algorithm, engineName, paramNames)
	defer p.noteRetrain(opName)

	succeeded := 0
	for _, pt := range space.combinations() {
		in := engine.Input{Records: pt.records, Bytes: pt.bytes, Params: pt.params}
		run, err := p.env.Execute(engineName, algorithm, in, pt.res, 0)
		if err != nil {
			om.observeFailure(run)
			continue
		}
		om.appendRun(run)
		succeeded++
	}
	if succeeded == 0 {
		return 0, fmt.Errorf("profiler: every profiling run of %s on %s failed", opName, engineName)
	}
	if err := om.retrain(true); err != nil {
		return succeeded, fmt.Errorf("profiler: training %s: %w", opName, err)
	}
	return succeeded, nil
}

// Observe feeds one actual-run record back into the operator's models (the
// model-refinement path). Failed runs update the feasibility wall instead.
func (p *Profiler) Observe(opName string, run *metrics.Run) error {
	p.mu.RLock()
	om, ok := p.store[opName]
	p.mu.RUnlock()
	if !ok {
		om = p.ensure(opName, run.Algorithm, run.Engine, run.ParamNames())
		// Reduce features to base + run params happens inside ensure; fall
		// through to observation.
	}
	defer p.noteRetrain(opName)
	if run.Failed {
		om.observeFailure(run)
		return nil
	}
	om.appendRun(run)
	om.mu.Lock()
	om.sinceReselect++
	full := om.sinceReselect >= om.reselectEvery || len(om.chosen) == 0
	if full {
		om.sinceReselect = 0
	}
	om.mu.Unlock()
	return om.retrain(full)
}

// Estimate predicts a target metric for the operator under the given
// feature values. The boolean result is false when the operator is
// unprofiled or the configuration is beyond the observed feasibility wall.
func (p *Profiler) Estimate(opName, target string, feats map[string]float64) (float64, bool) {
	p.mu.RLock()
	om, ok := p.store[opName]
	p.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return om.Estimate(target, feats)
}

// Feasible reports whether the configuration is inside the operator's
// observed feasibility wall.
func (p *Profiler) Feasible(opName string, records float64) bool {
	p.mu.RLock()
	om, ok := p.store[opName]
	p.mu.RUnlock()
	if !ok {
		return false
	}
	om.mu.Lock()
	defer om.mu.Unlock()
	return om.feasibleLocked(records)
}

// extendFeaturesLocked grows the feature set when a run carries parameters
// never seen before, back-filling historical rows with zero — the value those
// runs effectively had for a knob that did not exist yet. Without this, the
// first run to reach an operator would freeze its feature set forever and
// later parameters would be silently ignored by every model.
func (om *OperatorModels) extendFeaturesLocked(run *metrics.Run) {
	known := make(map[string]bool, len(om.Features))
	for _, f := range om.Features {
		known[f] = true
	}
	for _, name := range run.ParamNames() {
		if known[name] {
			continue
		}
		known[name] = true
		om.Features = append(om.Features, name)
		for i := range om.X {
			om.X[i] = append(om.X[i], 0)
		}
	}
}

func (om *OperatorModels) appendRun(run *metrics.Run) {
	om.mu.Lock()
	defer om.mu.Unlock()
	om.invalidatePredLocked()
	om.extendFeaturesLocked(run)
	x := make([]float64, len(om.Features))
	for i, f := range om.Features {
		v, _ := run.Feature(f)
		x[i] = v
	}
	om.X = append(om.X, x)
	om.targets[TargetExecTime] = append(om.targets[TargetExecTime], run.ExecTimeSec)
	om.targets[TargetCost] = append(om.targets[TargetCost], run.CostUnits)
	om.targets[TargetOutRecords] = append(om.targets[TargetOutRecords], float64(run.OutputRecords))
	om.targets[TargetOutBytes] = append(om.targets[TargetOutBytes], float64(run.OutputBytes))
}

func (om *OperatorModels) observeFailure(run *metrics.Run) {
	if run == nil {
		return
	}
	om.mu.Lock()
	defer om.mu.Unlock()
	rec := run.Params["records"]
	if rec > 0 && (om.minFailRecords == 0 || rec < om.minFailRecords) {
		om.minFailRecords = rec
		om.invalidatePredLocked() // the feasibility wall moved
	}
}

// retrain refits the models. When reselect is true a full cross-validated
// family selection runs; otherwise the incumbent family is refit on the
// enlarged buffer.
func (om *OperatorModels) retrain(reselect bool) error {
	om.mu.Lock()
	defer om.mu.Unlock()
	om.invalidatePredLocked()
	for target, y := range om.targets {
		if len(y) == 0 {
			continue
		}
		switch {
		case len(y) < 3:
			// Too few samples for cross-validation: fall back to the first
			// family (linear) until more observations arrive.
			m := om.factories[0]()
			if err := m.Train(om.X, y); err != nil {
				return err
			}
			om.models[target] = m
			om.chosen[target] = m.Name()
		case reselect || om.models[target] == nil:
			m, _, err := model.SelectBestRelative(om.factories, om.X, y, om.cvFolds, om.seed)
			if err != nil {
				return err
			}
			om.models[target] = m
			om.chosen[target] = m.Name()
		default:
			if err := om.models[target].Train(om.X, y); err != nil {
				return err
			}
		}
	}
	return nil
}

// retrainRestoring refits models from a persisted library, honouring the
// family choices recorded at export time: a target whose family is present in
// chosen (and known to this profiler's factories) is refit with that family
// directly, so a save/load cycle cannot flip the selection — important when
// old samples were zero-padded after the feature set grew, where fresh CV can
// land on a different family than the exporter was using. Targets without a
// recorded family (version-1 files, or a family this build no longer ships)
// fall back to full cross-validated selection.
func (om *OperatorModels) retrainRestoring(chosen map[string]string) error {
	om.mu.Lock()
	defer om.mu.Unlock()
	om.invalidatePredLocked()
	for target, y := range om.targets {
		if len(y) == 0 {
			continue
		}
		var m model.Model
		if fam := chosen[target]; fam != "" {
			for _, f := range om.factories {
				if cand := f(); cand.Name() == fam {
					m = cand
					break
				}
			}
		}
		if m == nil {
			if len(y) < 3 {
				m = om.factories[0]()
			} else {
				sel, _, err := model.SelectBestRelative(om.factories, om.X, y, om.cvFolds, om.seed)
				if err != nil {
					return err
				}
				om.models[target] = sel
				om.chosen[target] = sel.Name()
				continue
			}
		}
		if err := m.Train(om.X, y); err != nil {
			return err
		}
		om.models[target] = m
		om.chosen[target] = m.Name()
	}
	return nil
}

// Estimate predicts one target for a feature map. Results (including
// infeasible verdicts) are memoized per projected feature vector until the
// next model mutation.
func (om *OperatorModels) Estimate(target string, feats map[string]float64) (float64, bool) {
	om.mu.Lock()
	defer om.mu.Unlock()
	m, ok := om.models[target]
	if !ok {
		return 0, false
	}
	key := om.predKeyLocked(target, feats)
	if r, ok := om.predCache[key]; ok {
		om.predHits++
		return r.v, r.ok
	}
	om.predMisses++
	r := predResult{}
	if om.feasibleLocked(feats["records"]) {
		x := make([]float64, len(om.Features))
		for i, f := range om.Features {
			x[i] = feats[f]
		}
		v := m.Predict(x)
		if v < 0 {
			v = 0
		}
		r = predResult{v: v, ok: true}
	}
	if om.predCache == nil || len(om.predCache) >= maxPredCache {
		om.predCache = make(map[string]predResult)
	}
	om.predCache[key] = r
	return r.v, r.ok
}

// predKeyLocked builds the cache key: the target plus the feature map
// projected onto this operator's feature set (extra keys in feats are
// ignored by prediction and therefore by the key too).
func (om *OperatorModels) predKeyLocked(target string, feats map[string]float64) string {
	key := make([]byte, 0, len(target)+1+8*len(om.Features))
	key = append(key, target...)
	key = append(key, 0)
	var buf [8]byte
	for _, f := range om.Features {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(feats[f]))
		key = append(key, buf[:]...)
	}
	return string(key)
}

func (om *OperatorModels) feasibleLocked(records float64) bool {
	if om.minFailRecords == 0 {
		return true
	}
	return records < om.minFailRecords*0.95
}

// SampleCount reports the training-buffer size.
func (om *OperatorModels) SampleCount() int {
	om.mu.Lock()
	defer om.mu.Unlock()
	return len(om.X)
}

// ChosenFamily reports the model family currently selected for a target.
func (om *OperatorModels) ChosenFamily(target string) string {
	om.mu.Lock()
	defer om.mu.Unlock()
	return om.chosen[target]
}
