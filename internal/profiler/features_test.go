package profiler

import (
	"fmt"
	"sync"
	"testing"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metrics"
)

func obsRun(records int64, execSec float64, params map[string]float64) *metrics.Run {
	p := map[string]float64{
		"records": float64(records), "bytes": float64(records * 100),
		"nodes": 4, "cores": 2, "memoryMB": 3456,
	}
	for k, v := range params {
		p[k] = v
	}
	return &metrics.Run{
		Operator: "op", Algorithm: "alg", Engine: "Spark",
		Params:       p,
		ExecTimeSec:  execSec,
		CostUnits:    execSec * 8,
		InputRecords: records, InputBytes: records * 100,
		OutputRecords: records, OutputBytes: records * 100,
	}
}

// A never-profiled operator's feature set must not be frozen to whatever
// parameters its first observed run happened to carry: later runs with new
// parameters extend the set, and historical rows are padded with zero.
func TestObserveExtendsFeatureSet(t *testing.T) {
	p := New(engine.NewDefaultEnvironment(1), 1)

	// First runs carry only the base features.
	for i := int64(1); i <= 4; i++ {
		if err := p.Observe("op", obsRun(i*10_000, float64(i), nil)); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	om, ok := p.Models("op")
	if !ok {
		t.Fatal("operator not registered after Observe")
	}
	if got, want := len(om.Features), len(BaseFeatures); got != want {
		t.Fatalf("initial features = %v, want just the %d base features", om.Features, want)
	}

	// A later run introduces a new operator parameter.
	for i := int64(5); i <= 8; i++ {
		if err := p.Observe("op", obsRun(i*10_000, float64(i), map[string]float64{"k": 5})); err != nil {
			t.Fatalf("Observe with new param: %v", err)
		}
	}
	found := false
	for _, f := range om.Features {
		if f == "k" {
			found = true
		}
	}
	if !found {
		t.Fatalf("feature set %v not extended with new param k", om.Features)
	}
	for i, row := range om.X {
		if len(row) != len(om.Features) {
			t.Fatalf("row %d has %d values for %d features (historical rows not re-vectorized)", i, len(row), len(om.Features))
		}
	}

	// The extended feature is usable for estimation.
	feats := map[string]float64{
		"records": 50_000, "bytes": 5_000_000,
		"nodes": 4, "cores": 2, "memoryMB": 3456, "k": 5,
	}
	if _, ok := p.Estimate("op", TargetExecTime, feats); !ok {
		t.Fatal("Estimate failed after feature extension")
	}
}

// Parallel Observe/Estimate calls must be race-free (run with -race).
func TestProfilerConcurrentObserveEstimate(t *testing.T) {
	p := New(engine.NewDefaultEnvironment(1), 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := fmt.Sprintf("op%d", w%4)
			for i := int64(1); i <= 12; i++ {
				params := map[string]float64{fmt.Sprintf("p%d", w%3): float64(w)}
				if err := p.Observe(op, obsRun(i*1_000, float64(i), params)); err != nil {
					t.Errorf("Observe: %v", err)
					return
				}
				feats := map[string]float64{
					"records": float64(i * 1_000), "bytes": float64(i * 100_000),
					"nodes": 4, "cores": 2, "memoryMB": 3456,
				}
				p.Estimate(op, TargetExecTime, feats)
				p.Operators()
			}
		}()
	}
	wg.Wait()
}
