package profiler

import (
	"math"
	"testing"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/model"
)

func fastFactories() []model.Factory {
	return []model.Factory{
		func() model.Model { return model.NewLinear() },
		func() model.Model { return model.NewKNN(3) },
		func() model.Model { return model.NewTree(8, 2) },
	}
}

func newProfiler(env *engine.Environment) *Profiler {
	p := New(env, 11)
	p.Factories = fastFactories()
	return p
}

func tfidfSpace() Space {
	return Space{
		Records:        []int64{1000, 5000, 10_000, 50_000, 100_000},
		BytesPerRecord: 5000,
		Resources: []engine.Resources{
			{Nodes: 4, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 8, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
		},
	}
}

func TestProfileOfflineAndEstimate(t *testing.T) {
	env := engine.NewDefaultEnvironment(3)
	p := newProfiler(env)

	n, err := p.ProfileOffline("tfidf_spark", engine.EngineSpark, engine.AlgTFIDF, tfidfSpace())
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("successful runs = %d, want 15", n)
	}
	om, ok := p.Models("tfidf_spark")
	if !ok || om.SampleCount() != 15 {
		t.Fatal("model store wrong")
	}
	if om.ChosenFamily(TargetExecTime) == "" {
		t.Fatal("no family selected")
	}

	// Estimation close to ground truth at an interpolated point.
	feats := map[string]float64{
		"records": 20_000, "bytes": 20_000 * 5000,
		"nodes": 16, "cores": 2, "memoryMB": 3456,
	}
	est, ok := p.Estimate("tfidf_spark", TargetExecTime, feats)
	if !ok {
		t.Fatal("estimate unavailable")
	}
	truth, err := env.GroundTruthSec(engine.EngineSpark, engine.AlgTFIDF,
		engine.Input{Records: 20_000, Bytes: 20_000 * 5000}, engine.Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.5 {
		t.Errorf("estimate %.1f vs truth %.1f (rel %.2f)", est, truth, rel)
	}

	// Cost target also modelled.
	if _, ok := p.Estimate("tfidf_spark", TargetCost, feats); !ok {
		t.Error("cost estimate unavailable")
	}
}

func TestFeasibilityWall(t *testing.T) {
	env := engine.NewDefaultEnvironment(4)
	p := newProfiler(env)
	// Java pagerank OOMs above ~11.5M edges on a 3456MB node.
	space := Space{
		Records:        []int64{10_000, 100_000, 1_000_000, 50_000_000},
		BytesPerRecord: 40,
		Params:         map[string][]float64{"iterations": {10}},
		Resources:      []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}},
	}
	n, err := p.ProfileOffline("pagerank_java", engine.EngineJava, engine.AlgPagerank, space)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("successful runs = %d, want 3 (50M-edge run must OOM)", n)
	}
	if !p.Feasible("pagerank_java", 1_000_000) {
		t.Error("1M edges should be feasible")
	}
	if p.Feasible("pagerank_java", 60_000_000) {
		t.Error("60M edges should be infeasible")
	}
	if _, ok := p.Estimate("pagerank_java", TargetExecTime, map[string]float64{"records": 60_000_000}); ok {
		t.Error("estimate should refuse infeasible configurations")
	}
	if p.Feasible("unknown_op", 10) {
		t.Error("unknown operator reported feasible")
	}
}

func TestObserveRefinesModels(t *testing.T) {
	env := engine.NewDefaultEnvironment(5)
	p := newProfiler(env)
	p.ReselectEvery = 5

	// Sparse initial profile: only two points.
	space := Space{
		Records:        []int64{1000, 100_000},
		BytesPerRecord: 5000,
		Resources:      []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}},
	}
	if _, err := p.ProfileOffline("tfidf_spark", engine.EngineSpark, engine.AlgTFIDF, space); err != nil {
		t.Fatal(err)
	}

	probe := map[string]float64{
		"records": 50_000, "bytes": 50_000 * 5000,
		"nodes": 16, "cores": 2, "memoryMB": 3456,
	}
	truth, _ := env.GroundTruthSec(engine.EngineSpark, engine.AlgTFIDF,
		engine.Input{Records: 50_000, Bytes: 50_000 * 5000}, engine.StandardCluster)

	relErr := func() float64 {
		est, ok := p.Estimate("tfidf_spark", TargetExecTime, probe)
		if !ok {
			t.Fatal("estimate unavailable")
		}
		return math.Abs(est-truth) / truth
	}
	before := relErr()

	// Feed 30 observed runs at varied scales.
	for i := 0; i < 30; i++ {
		recs := int64(5000 + i*3000)
		run, err := env.Execute(engine.EngineSpark, engine.AlgTFIDF,
			engine.Input{Records: recs, Bytes: recs * 5000}, engine.StandardCluster, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Observe("tfidf_spark", run); err != nil {
			t.Fatal(err)
		}
	}
	after := relErr()
	om, _ := p.Models("tfidf_spark")
	if om.SampleCount() != 32 {
		t.Fatalf("samples = %d, want 32", om.SampleCount())
	}
	if after > before+0.05 {
		t.Errorf("refinement made estimates worse: before %.3f after %.3f", before, after)
	}
	if after > 0.35 {
		t.Errorf("post-refinement error too high: %.3f", after)
	}
}

func TestObserveUnknownOperatorBootstraps(t *testing.T) {
	env := engine.NewDefaultEnvironment(6)
	p := newProfiler(env)
	run, err := env.Execute(engine.EngineJava, engine.AlgLineCount,
		engine.Input{Records: 1000, Bytes: 1e5}, engine.SingleNode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe("linecount_java", run); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Estimate("linecount_java", TargetExecTime, map[string]float64{"records": 1000}); !ok {
		t.Fatal("bootstrap observation produced no model")
	}
	if got := p.Operators(); len(got) != 1 || got[0] != "linecount_java" {
		t.Fatalf("Operators = %v", got)
	}
}

func TestObserveFailedRunUpdatesWall(t *testing.T) {
	env := engine.NewDefaultEnvironment(7)
	p := newProfiler(env)
	space := Space{
		Records:        []int64{1000, 10_000},
		BytesPerRecord: 40,
		Resources:      []engine.Resources{engine.SingleNode},
	}
	if _, err := p.ProfileOffline("pr_java", engine.EngineJava, engine.AlgPagerank, space); err != nil {
		t.Fatal(err)
	}
	run, err := env.Execute(engine.EngineJava, engine.AlgPagerank,
		engine.Input{Records: 50_000_000, Bytes: 2e9}, engine.SingleNode, 0)
	if err == nil {
		t.Fatal("expected OOM")
	}
	if err := p.Observe("pr_java", run); err != nil {
		t.Fatal(err)
	}
	if p.Feasible("pr_java", 49_000_000) {
		t.Error("wall not updated from observed failure")
	}
}

func TestProfileOfflineErrors(t *testing.T) {
	env := engine.NewDefaultEnvironment(8)
	p := newProfiler(env)
	if _, err := p.ProfileOffline("x", engine.EngineSpark, engine.AlgTFIDF, Space{}); err == nil {
		t.Fatal("empty space accepted")
	}
	// Engine OFF: every run fails.
	env.SetAvailable(engine.EngineSpark, false)
	if _, err := p.ProfileOffline("x", engine.EngineSpark, engine.AlgTFIDF, tfidfSpace()); err == nil {
		t.Fatal("profiling a dead engine should fail")
	}
}

func TestSpaceCombinations(t *testing.T) {
	s := Space{
		Records:        []int64{1, 2},
		BytesPerRecord: 10,
		Params:         map[string][]float64{"k": {4, 8}, "iterations": {3}},
		Resources:      []engine.Resources{engine.SingleNode, engine.StandardCluster},
	}
	combos := s.combinations()
	if len(combos) != 2*2*2*1 {
		t.Fatalf("combinations = %d, want 8", len(combos))
	}
	for _, c := range combos {
		if c.bytes != c.records*10 {
			t.Fatal("bytes not derived")
		}
		if c.params["iterations"] != 3 {
			t.Fatal("param missing")
		}
	}
}
