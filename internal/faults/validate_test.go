package faults

import (
	"errors"
	"math"
	"testing"
	"time"
)

// validConfig is a fully-populated schedule that must pass validation.
func validConfig() Config {
	return Config{
		Seed:    7,
		Default: Transient{FailProb: 0.1, MTBFSec: 900},
		PerEngine: map[string]Transient{
			"Spark": {FailProb: 0.25},
			"Hama":  {MTBFSec: 300},
		},
		Outages:     []Outage{{Engine: "Spark", At: 30 * time.Second}},
		NodeCrashes: []NodeCrash{{Node: "node3", At: 45 * time.Second}},
		Straggler:   Straggler{Prob: 0.2, Factor: 3},
	}
}

func TestValidateAcceptsGoodConfigs(t *testing.T) {
	cases := map[string]Config{
		"zero value":             {},
		"fully populated":        validConfig(),
		"prob exactly 0 and 1":   {Default: Transient{FailProb: 1}, Straggler: Straggler{Prob: 0}},
		"factor 0 means default": {Straggler: Straggler{Prob: 0.5, Factor: 0}},
		"factor exactly 1":       {Straggler: Straggler{Prob: 0.5, Factor: 1}},
		"crash at time zero":     {NodeCrashes: []NodeCrash{{Node: "node0"}}},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", name, err)
		}
	}
}

func TestValidateNamesTheBadField(t *testing.T) {
	mut := func(f func(*Config)) Config {
		cfg := validConfig()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"failProb above 1", mut(func(c *Config) { c.Default.FailProb = 1.5 }), "Default.FailProb"},
		{"failProb negative", mut(func(c *Config) { c.Default.FailProb = -0.1 }), "Default.FailProb"},
		{"failProb NaN", mut(func(c *Config) { c.Default.FailProb = math.NaN() }), "Default.FailProb"},
		{"mtbf negative", mut(func(c *Config) { c.Default.MTBFSec = -1 }), "Default.MTBFSec"},
		{"mtbf NaN", mut(func(c *Config) { c.Default.MTBFSec = math.NaN() }), "Default.MTBFSec"},
		{"per-engine empty name", mut(func(c *Config) { c.PerEngine[""] = Transient{} }), "PerEngine"},
		{"per-engine bad prob", mut(func(c *Config) { c.PerEngine["Hama"] = Transient{FailProb: 2} }), "PerEngine[Hama].FailProb"},
		{"outage empty engine", mut(func(c *Config) { c.Outages[0].Engine = "" }), "Outages[0].Engine"},
		{"outage negative time", mut(func(c *Config) { c.Outages[0].At = -time.Second }), "Outages[0].AtSec"},
		{"crash empty node", mut(func(c *Config) { c.NodeCrashes[0].Node = "" }), "NodeCrashes[0].Node"},
		{"crash negative time", mut(func(c *Config) { c.NodeCrashes[0].At = -time.Millisecond }), "NodeCrashes[0].AtSec"},
		{"straggler prob above 1", mut(func(c *Config) { c.Straggler.Prob = 1.01 }), "Straggler.Prob"},
		{"straggler factor below 1", mut(func(c *Config) { c.Straggler.Factor = 0.5 }), "Straggler.Factor"},
		{"straggler factor NaN", mut(func(c *Config) { c.Straggler.Factor = math.NaN() }), "Straggler.Factor"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
			continue
		}
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: error %T is not a *ValidationError", tc.name, err)
			continue
		}
		if verr.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q", tc.name, verr.Field, tc.field)
		}
	}
}

func TestPlaceMidInterval(t *testing.T) {
	const iv = 10 * time.Second
	start := 5 * time.Second
	cases := []struct {
		name     string
		k        int
		frac     float64
		interval time.Duration
		want     time.Duration
	}{
		{"at a boundary", 2, 0, iv, 25 * time.Second},
		{"mid interval", 1, 0.5, iv, 20 * time.Second},
		{"negative k clamps to start interval", -3, 0.5, iv, 10 * time.Second},
		{"negative frac clamps to boundary", 1, -0.7, iv, 15 * time.Second},
		{"NaN frac clamps to boundary", 1, math.NaN(), iv, 15 * time.Second},
		{"negative interval collapses to start", 4, 0.5, -iv, start},
	}
	for _, tc := range cases {
		if got := PlaceMidInterval(start, tc.interval, tc.k, tc.frac); got != tc.want {
			t.Errorf("%s: PlaceMidInterval = %v, want %v", tc.name, got, tc.want)
		}
	}
	// frac >= 1 must land strictly before the next boundary, never on it.
	got := PlaceMidInterval(start, iv, 1, 1.0)
	if got < start+iv || got >= start+2*iv {
		t.Errorf("frac=1: PlaceMidInterval = %v, want in [%v, %v)", got, start+iv, start+2*iv)
	}
}
