package faults

import (
	"errors"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/vtime"
)

// timeline draws n RunFault verdicts from a fresh schedule and returns the
// boolean fault pattern.
func timeline(seed int64, prob float64, n int) []bool {
	s := New(Config{Seed: seed, Default: Transient{FailProb: prob}})
	out := make([]bool, n)
	for i := range out {
		out[i] = s.RunFault("Spark", "step", 1, 10, 0) != nil
	}
	return out
}

func TestDeterministicTimeline(t *testing.T) {
	a := timeline(42, 0.5, 64)
	b := timeline(42, 0.5, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := timeline(43, 0.5, 64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw timelines")
	}
}

func TestRunFaultWrapsErrInjected(t *testing.T) {
	s := New(Config{Seed: 1, Default: Transient{FailProb: 1}})
	err := s.RunFault("Spark", "step", 2, 10, 5*time.Second)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := s.Stats().Transient; got != 1 {
		t.Fatalf("Transient stat = %d, want 1", got)
	}
}

func TestZeroProbNeverFails(t *testing.T) {
	s := New(Config{Seed: 9})
	for i := 0; i < 100; i++ {
		if err := s.RunFault("Spark", "step", 1, 1000, 0); err != nil {
			t.Fatalf("fault injected with zero probability: %v", err)
		}
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("stats nonzero: %+v", st)
	}
}

// TestMTBFExposure checks the exponential reliability model: with MTBF only,
// long attempts must fail measurably more often than short ones, and
// zero-duration attempts never fail.
func TestMTBFExposure(t *testing.T) {
	count := func(durSec float64) int {
		s := New(Config{Seed: 7, Default: Transient{MTBFSec: 100}})
		n := 0
		for i := 0; i < 500; i++ {
			if s.RunFault("Spark", "step", 1, durSec, 0) != nil {
				n++
			}
		}
		return n
	}
	if n := count(0); n != 0 {
		t.Fatalf("zero-duration attempts failed %d times", n)
	}
	short, long := count(10), count(300)
	// Expected rates: 1-exp(-0.1) ≈ 9.5% vs 1-exp(-3) ≈ 95%.
	if short >= long {
		t.Fatalf("exposure model inverted: short %d/500 >= long %d/500", short, long)
	}
	if long < 400 {
		t.Fatalf("long attempts failed only %d/500, want ~475", long)
	}
}

func TestPerEngineOverride(t *testing.T) {
	s := New(Config{
		Seed:      1,
		Default:   Transient{FailProb: 1},
		PerEngine: map[string]Transient{"Java": {}},
	})
	if err := s.RunFault("Java", "step", 1, 10, 0); err != nil {
		t.Fatalf("override engine failed: %v", err)
	}
	if err := s.RunFault("Spark", "step", 1, 10, 0); err == nil {
		t.Fatal("default engine did not fail at prob 1")
	}
}

func TestStretchFactor(t *testing.T) {
	s := New(Config{Seed: 3, Straggler: Straggler{Prob: 1}})
	if f := s.StretchFactor("Spark", "step", 0); f != 3.0 {
		t.Fatalf("default straggler factor = %v, want 3.0", f)
	}
	if got := s.Stats().Stragglers; got != 1 {
		t.Fatalf("Stragglers stat = %d, want 1", got)
	}
	off := New(Config{Seed: 3})
	if f := off.StretchFactor("Spark", "step", 0); f != 1 {
		t.Fatalf("disabled straggler stretched by %v", f)
	}
}

func TestArmOutageAndCrash(t *testing.T) {
	clock := vtime.NewClock()
	env := engine.NewDefaultEnvironment(1)
	clus := cluster.New(clock, 4, 2, 4096)
	ctrs, err := clus.Allocate(4, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Outages:     []Outage{{Engine: engine.EngineSpark, At: 10 * time.Second}},
		NodeCrashes: []NodeCrash{{Node: "node0", At: 20 * time.Second}},
	})
	if err := s.Arm(clock, env, clus); err != nil {
		t.Fatal(err)
	}
	if err := s.Arm(clock, env, clus); err != nil { // idempotent
		t.Fatal(err)
	}
	if !env.Available(engine.EngineSpark) {
		t.Fatal("outage fired before its time")
	}
	clock.Advance(15 * time.Second)
	if env.Available(engine.EngineSpark) {
		t.Fatal("outage did not fire at 10s")
	}
	lostBefore := 0
	for _, ctr := range ctrs {
		if ctr.Lost() {
			lostBefore++
		}
	}
	if lostBefore != 0 {
		t.Fatalf("%d containers lost before the crash", lostBefore)
	}
	clock.Advance(10 * time.Second)
	lost := 0
	for _, ctr := range ctrs {
		if ctr.Lost() {
			lost++
		}
	}
	if lost != 1 {
		t.Fatalf("crash of node0 invalidated %d containers, want 1", lost)
	}
	st := s.Stats()
	if st.Outages != 1 || st.NodeCrash != 1 {
		t.Fatalf("stats = %+v, want 1 outage and 1 crash", st)
	}
	if err := clus.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestArmErrors(t *testing.T) {
	if err := New(Config{}).Arm(nil, nil, nil); err == nil {
		t.Fatal("Arm accepted a nil clock")
	}
	clock := vtime.NewClock()
	clus := cluster.New(clock, 2, 2, 4096)
	s := New(Config{NodeCrashes: []NodeCrash{{Node: "no-such-node"}}})
	if err := s.Arm(clock, nil, clus); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}
