package faults

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ValidationError reports an out-of-range or nonsensical field in a fault
// Config, naming the offending field so API callers (and the HTTP layer)
// can surface a precise message instead of silently arming a schedule that
// injects nothing — or everything.
type ValidationError struct {
	Field  string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("faults: invalid %s: %s", e.Field, e.Reason)
}

// validProb reports whether p is a probability in [0,1].
func validProb(p float64) bool {
	return !math.IsNaN(p) && p >= 0 && p <= 1
}

// validateTransient checks one transient process under a field prefix.
func validateTransient(field string, t Transient) error {
	if !validProb(t.FailProb) {
		return &ValidationError{Field: field + ".FailProb", Reason: fmt.Sprintf("%v is not a probability in [0,1]", t.FailProb)}
	}
	if math.IsNaN(t.MTBFSec) || t.MTBFSec < 0 {
		return &ValidationError{Field: field + ".MTBFSec", Reason: fmt.Sprintf("%v is negative", t.MTBFSec)}
	}
	return nil
}

// Validate checks every field of the schedule before it is armed:
// probabilities in [0,1], non-negative times, straggler factor >= 1 (or 0,
// meaning "use the default"), and timed faults naming their target. It
// returns a *ValidationError naming the first bad field.
func (c Config) Validate() error {
	if err := validateTransient("Default", c.Default); err != nil {
		return err
	}
	engines := make([]string, 0, len(c.PerEngine))
	for name := range c.PerEngine {
		engines = append(engines, name)
	}
	sort.Strings(engines)
	for _, name := range engines {
		if name == "" {
			return &ValidationError{Field: "PerEngine", Reason: "empty engine name"}
		}
		if err := validateTransient("PerEngine["+name+"]", c.PerEngine[name]); err != nil {
			return err
		}
	}
	for i, o := range c.Outages {
		if o.Engine == "" {
			return &ValidationError{Field: fmt.Sprintf("Outages[%d].Engine", i), Reason: "empty engine name"}
		}
		if o.At < 0 {
			return &ValidationError{Field: fmt.Sprintf("Outages[%d].AtSec", i), Reason: fmt.Sprintf("%v is negative", o.At.Seconds())}
		}
	}
	for i, nc := range c.NodeCrashes {
		if nc.Node == "" {
			return &ValidationError{Field: fmt.Sprintf("NodeCrashes[%d].Node", i), Reason: "empty node name"}
		}
		if nc.At < 0 {
			return &ValidationError{Field: fmt.Sprintf("NodeCrashes[%d].AtSec", i), Reason: fmt.Sprintf("%v is negative", nc.At.Seconds())}
		}
	}
	if !validProb(c.Straggler.Prob) {
		return &ValidationError{Field: "Straggler.Prob", Reason: fmt.Sprintf("%v is not a probability in [0,1]", c.Straggler.Prob)}
	}
	if f := c.Straggler.Factor; f != 0 && (math.IsNaN(f) || f < 1) {
		return &ValidationError{Field: "Straggler.Factor", Reason: fmt.Sprintf("%v is below 1 (0 means default)", f)}
	}
	if !validProb(c.OOM.Prob) {
		return &ValidationError{Field: "OOM.Prob", Reason: fmt.Sprintf("%v is not a probability in [0,1]", c.OOM.Prob)}
	}
	return nil
}

// PlaceMidInterval places a fault relative to checkpoint boundaries: it
// returns start + k full checkpoint intervals + frac of the next one, so a
// crash can be aimed exactly at a boundary (frac 0), mid-interval (frac
// 0.5), or just before the next write (frac close to 1). frac is clamped to
// [0,1); negative inputs clamp to the start.
func PlaceMidInterval(start, interval time.Duration, k int, frac float64) time.Duration {
	if k < 0 {
		k = 0
	}
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	}
	if frac >= 1 {
		frac = math.Nextafter(1, 0)
	}
	if interval < 0 {
		interval = 0
	}
	return start + time.Duration(k)*interval + time.Duration(frac*float64(interval))
}
