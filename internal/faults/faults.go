// Package faults is a deterministic, seeded chaos-injection layer driven by
// virtual time. It models the failure shapes a production YARN deployment
// exhibits — transient engine errors, permanent service outages, node
// crashes and straggler slowdowns — so the executor's recovery machinery
// (retries, speculation, circuit breaking, replanning; D3.3 §2.3) can be
// exercised and measured without a real cluster. Everything is driven by a
// single seed: identical seeds produce identical fault timelines, which
// keeps the fault-sweep experiments and property tests reproducible.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
)

// ErrInjected marks a transient failure produced by the injection layer
// (a lost task, a flaky service RPC, a corrupted shuffle fetch). It is
// retryable: the same attempt on the same engine may well succeed.
var ErrInjected = errors.New("faults: injected transient failure")

// Transient parameterises the per-engine transient error process. Both
// knobs may be combined; either alone is enough.
type Transient struct {
	// FailProb is the per-attempt probability that a launch fails outright.
	FailProb float64
	// MTBFSec, when positive, adds a duration-dependent failure mode: an
	// attempt predicted to run d seconds fails with probability
	// 1-exp(-d/MTBF) — long runs are proportionally more exposed, the
	// classic exponential reliability model.
	MTBFSec float64
}

// Outage is a permanent engine-service failure at a virtual time: the
// service goes OFF and stays OFF (until something turns it back on).
type Outage struct {
	Engine string
	At     time.Duration
}

// NodeCrash kills a cluster node at a virtual time, invalidating the
// containers running on it (see cluster.FailNode).
type NodeCrash struct {
	Node string
	At   time.Duration
}

// Straggler parameterises slowdown injection: with probability Prob a run's
// duration is multiplied by Factor mid-flight, which is what per-step
// timeouts and speculative execution exist to absorb.
type Straggler struct {
	Prob   float64
	Factor float64 // e.g. 3.0; values <= 1 disable the slowdown
}

// OOMKill parameterises the memory-oversubscription fault. It only matters
// on clusters with a memory-overcommit ratio above 1: whenever an
// allocation pushes a node's actual usage past physical memory, the armed
// schedule is consulted once per candidate kill and fires with probability
// Prob, invalidating the node's largest live container (the cluster emits
// fault.oomkill and the loss feeds the executor's ordinary
// retry/checkpoint-restore recovery). Prob 0 disables the killer: the
// oversubscribed node is tolerated silently.
type OOMKill struct {
	Prob float64
}

// Config declares a full fault schedule.
type Config struct {
	// Seed drives every random draw; zero is a valid seed.
	Seed int64
	// Default applies to engines absent from PerEngine.
	Default Transient
	// PerEngine overrides the transient process for specific engines.
	PerEngine map[string]Transient
	// Outages and NodeCrashes fire at their virtual times once armed.
	Outages     []Outage
	NodeCrashes []NodeCrash
	// Straggler applies to every operator attempt.
	Straggler Straggler
	// OOM governs the OOM killer on memory-overcommitted clusters.
	OOM OOMKill
}

// Stats counts what the schedule actually injected.
type Stats struct {
	Transient  int `json:"transient"`  // injected launch failures
	Stragglers int `json:"stragglers"` // slowed-down runs
	Outages    int `json:"outages"`    // permanent engine outages fired
	NodeCrash  int `json:"nodeCrashes"`
	OOMKills   int `json:"oomKills"` // containers killed for oversubscribed memory
}

// Schedule is an armed fault plan. It implements the executor's Injector
// interface; Arm wires the timed faults (outages, node crashes) onto the
// virtual clock. Schedule is safe for concurrent use.
type Schedule struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	stats  Stats
	armed  bool
	tracer trace.Tracer

	// The OOM-killer draw runs under the cluster's lock (the hook fires
	// mid-allocation), so it uses its own mutex and seeded stream instead
	// of s.mu/s.rng: taking s.mu there would invert the lock order against
	// emitLocked's tracer callbacks, and a dedicated stream keeps the
	// transient/straggler timeline invariant to how many OOM draws happen.
	oomMu    sync.Mutex
	oomRng   *rand.Rand
	oomKills int
}

// SetTracer installs the event sink for injected-fault events.
func (s *Schedule) SetTracer(t trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// emitLocked stamps vt on ev and forwards to the tracer; the caller holds
// s.mu.
func (s *Schedule) emitLocked(ev trace.Event, vt time.Duration) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(ev.At(vt))
}

// New builds a schedule from the config.
func New(cfg Config) *Schedule {
	if cfg.Straggler.Factor == 0 {
		cfg.Straggler.Factor = 3.0
	}
	return &Schedule{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		oomRng: rand.New(rand.NewSource(cfg.Seed ^ 0x6f6f6d)), // "oom"
	}
}

// Arm schedules the timed faults on the clock: engine outages flip the
// service OFF in env, node crashes call cluster.FailNode. Arm is idempotent
// and tolerates nil env/cluster (the corresponding faults are skipped).
func (s *Schedule) Arm(clock *vtime.Clock, env *engine.Environment, clus *cluster.Cluster) error {
	s.mu.Lock()
	if s.armed {
		s.mu.Unlock()
		return nil
	}
	s.armed = true
	outages := s.cfg.Outages
	crashes := s.cfg.NodeCrashes
	oomProb := s.cfg.OOM.Prob
	s.mu.Unlock()

	if clock == nil {
		return fmt.Errorf("faults: Arm requires a clock")
	}
	for _, o := range outages {
		if env == nil {
			continue
		}
		o := o
		clock.Schedule(o.At, func(now time.Duration) {
			env.SetAvailable(o.Engine, false)
			s.mu.Lock()
			s.stats.Outages++
			s.emitLocked(trace.Event{Type: trace.EvFaultOutage, Engine: o.Engine}, now)
			s.mu.Unlock()
		})
	}
	for _, nc := range crashes {
		if clus == nil {
			continue
		}
		nc := nc
		if err := clus.FailNode(nc.Node, nc.At); err != nil {
			return err
		}
		s.mu.Lock()
		s.stats.NodeCrash++
		s.mu.Unlock()
	}
	if oomProb > 0 && clus != nil {
		// The hook runs under the cluster lock and must not call back into
		// the cluster or emit events (the cluster emits fault.oomkill
		// itself); it only draws from the dedicated seeded stream.
		clus.SetOOMKiller(func(node string, overMB int) bool {
			s.oomMu.Lock()
			defer s.oomMu.Unlock()
			if s.oomRng.Float64() >= oomProb {
				return false
			}
			s.oomKills++
			return true
		})
	}
	return nil
}

// transientFor returns the transient process governing an engine.
func (s *Schedule) transientFor(engineName string) Transient {
	if t, ok := s.cfg.PerEngine[engineName]; ok {
		return t
	}
	return s.cfg.Default
}

// RunFault decides whether an operator attempt fails transiently. durSec is
// the attempt's predicted duration (feeds the MTBF exposure model); the
// returned error wraps ErrInjected so the executor classifies it as
// retryable. Draws are consumed in call order from the seeded stream, so a
// given seed yields one deterministic fault timeline per execution.
func (s *Schedule) RunFault(engineName, stepName string, attempt int, durSec float64, now time.Duration) error {
	t := s.transientFor(engineName)
	p := t.FailProb
	if t.MTBFSec > 0 && durSec > 0 {
		p = 1 - (1-p)*math.Exp(-durSec/t.MTBFSec)
	}
	if p <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng.Float64() >= p {
		return nil
	}
	s.stats.Transient++
	s.emitLocked(trace.Event{
		Type: trace.EvFaultTransient, Step: stepName, Engine: engineName, Attempt: attempt,
		Fields: map[string]float64{"prob": p},
	}, now)
	return fmt.Errorf("%w: %s on %s (attempt %d at %v)", ErrInjected, stepName, engineName, attempt, now)
}

// StretchFactor returns the straggler multiplier (>= 1) applied to an
// attempt's duration.
func (s *Schedule) StretchFactor(engineName, stepName string, now time.Duration) float64 {
	st := s.cfg.Straggler
	if st.Prob <= 0 || st.Factor <= 1 {
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng.Float64() >= st.Prob {
		return 1
	}
	s.stats.Stragglers++
	s.emitLocked(trace.Event{
		Type: trace.EvFaultStraggler, Step: stepName, Engine: engineName,
		Fields: map[string]float64{"factor": st.Factor},
	}, now)
	return st.Factor
}

// Stats returns a snapshot of the injection counters.
func (s *Schedule) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	s.oomMu.Lock()
	st.OOMKills = s.oomKills
	s.oomMu.Unlock()
	return st
}

// Config returns a copy of the schedule's configuration.
func (s *Schedule) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}
