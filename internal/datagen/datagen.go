// Package datagen produces the synthetic stand-ins for the paper's
// proprietary inputs: power-law call graphs for the WIND telecom CDR traces
// (graph analytics), Zipf-vocabulary document corpora for the IMR web
// crawls (text analytics), and clustered numeric vectors. Experiments
// depend only on input size scaling, which the generators parameterise.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// Edge is one directed graph edge (a call from Src to Dst).
type Edge struct {
	Src, Dst int32
}

// CallGraph generates a directed graph with the given number of edges over
// ~edges/10 vertices using preferential-attachment-style endpoint sampling,
// yielding the heavy-tailed degree distribution of real call graphs.
func CallGraph(edges int, seed int64) []Edge {
	if edges <= 0 {
		return nil
	}
	vertices := edges / 10
	if vertices < 2 {
		vertices = 2
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(vertices-1))
	out := make([]Edge, edges)
	for i := range out {
		src := int32(zipf.Uint64())
		dst := int32(zipf.Uint64())
		if src == dst {
			dst = (dst + 1) % int32(vertices)
		}
		out[i] = Edge{Src: src, Dst: dst}
	}
	return out
}

// VertexCount returns the number of distinct vertices referenced by edges.
func VertexCount(edges []Edge) int {
	max := int32(-1)
	for _, e := range edges {
		if e.Src > max {
			max = e.Src
		}
		if e.Dst > max {
			max = e.Dst
		}
	}
	return int(max + 1)
}

// Document is one corpus entry.
type Document struct {
	ID     int
	Tokens []string
}

// Corpus generates docs documents whose tokens follow a Zipf distribution
// over a synthetic vocabulary, with per-document length jitter — the
// statistical shape tf-idf and wordcount care about.
func Corpus(docs, meanLen int, seed int64) []Document {
	if docs <= 0 {
		return nil
	}
	if meanLen <= 0 {
		meanLen = 100
	}
	rng := rand.New(rand.NewSource(seed))
	vocab := docs*meanLen/20 + 50
	zipf := rand.NewZipf(rng, 1.1, 2, uint64(vocab-1))
	out := make([]Document, docs)
	for i := range out {
		n := meanLen/2 + rng.Intn(meanLen+1)
		tokens := make([]string, n)
		for j := range tokens {
			tokens[j] = word(zipf.Uint64())
		}
		out[i] = Document{ID: i, Tokens: tokens}
	}
	return out
}

// word renders a vocabulary index as a deterministic pseudo-word.
func word(idx uint64) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if idx == 0 {
		return "a"
	}
	var buf []byte
	for idx > 0 {
		buf = append(buf, letters[idx%26])
		idx /= 26
	}
	return string(buf)
}

// Vector is a dense numeric feature vector.
type Vector []float64

// ClusteredVectors generates n vectors in dims dimensions drawn from k
// Gaussian clusters, returning the vectors and the true cluster of each —
// ideal k-means input with known structure.
func ClusteredVectors(n, dims, k int, seed int64) ([]Vector, []int) {
	if n <= 0 || dims <= 0 || k <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Vector, k)
	for c := range centers {
		centers[c] = make(Vector, dims)
		for d := range centers[c] {
			centers[c][d] = rng.Float64() * 100
		}
	}
	vecs := make([]Vector, n)
	truth := make([]int, n)
	for i := range vecs {
		c := i % k
		truth[i] = c
		v := make(Vector, dims)
		for d := range v {
			v[d] = centers[c][d] + rng.NormFloat64()*2
		}
		vecs[i] = v
	}
	return vecs, truth
}

// Lines renders n synthetic log lines (for linecount/grep workloads).
func Lines(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("2017-02-%02d %02d:%02d:%02d event=%s id=%d",
			1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60),
			[]string{"INFO", "WARN", "ERROR", "DEBUG"}[rng.Intn(4)], rng.Intn(1<<20))
	}
	return out
}

// SizeOfCorpus approximates the byte size of a corpus (what a SequenceFile
// of it would occupy).
func SizeOfCorpus(docs []Document) int64 {
	var total int64
	for _, d := range docs {
		for _, t := range d.Tokens {
			total += int64(len(t)) + 1
		}
		total += 16
	}
	return total
}

// Stats summarises a corpus for quick sanity checks.
func Stats(docs []Document) (nDocs int, nTokens int, vocab int) {
	seen := make(map[string]struct{})
	for _, d := range docs {
		nTokens += len(d.Tokens)
		for _, t := range d.Tokens {
			seen[t] = struct{}{}
		}
	}
	return len(docs), nTokens, len(seen)
}

// ZipfSkew measures how skewed the degree distribution of a graph is: the
// fraction of edges touching the top 1% of vertices. Power-law graphs score
// far above uniform ones.
func ZipfSkew(edges []Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	deg := make(map[int32]int)
	for _, e := range edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	var counts []int
	for _, c := range deg {
		counts = append(counts, c)
	}
	// Partial selection of the top 1%.
	top := int(math.Ceil(float64(len(counts)) / 100))
	if top < 1 {
		top = 1
	}
	// Simple selection sort of the top segment (counts are small).
	for i := 0; i < top; i++ {
		maxJ := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[maxJ] {
				maxJ = j
			}
		}
		counts[i], counts[maxJ] = counts[maxJ], counts[i]
	}
	sumTop := 0
	for i := 0; i < top; i++ {
		sumTop += counts[i]
	}
	return float64(sumTop) / float64(2*len(edges))
}
