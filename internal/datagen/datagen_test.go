package datagen

import (
	"testing"
	"testing/quick"
)

func TestCallGraphShape(t *testing.T) {
	edges := CallGraph(10_000, 1)
	if len(edges) != 10_000 {
		t.Fatalf("edges = %d", len(edges))
	}
	v := VertexCount(edges)
	if v < 2 || v > 1_001 {
		t.Fatalf("vertices = %d", v)
	}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("self loop")
		}
		if e.Src < 0 || e.Dst < 0 {
			t.Fatal("negative vertex")
		}
	}
	if CallGraph(0, 1) != nil {
		t.Fatal("zero edges should be nil")
	}
}

func TestCallGraphDeterministic(t *testing.T) {
	a := CallGraph(5_000, 9)
	b := CallGraph(5_000, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic generation")
		}
	}
	c := CallGraph(5_000, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestCorpusShape(t *testing.T) {
	docs := Corpus(100, 50, 2)
	if len(docs) != 100 {
		t.Fatalf("docs = %d", len(docs))
	}
	for i, d := range docs {
		if d.ID != i {
			t.Fatal("IDs not sequential")
		}
		if len(d.Tokens) < 25 || len(d.Tokens) > 101 {
			t.Fatalf("doc %d has %d tokens", i, len(d.Tokens))
		}
	}
	nd, nt, vocab := Stats(docs)
	if nd != 100 || nt == 0 || vocab == 0 {
		t.Fatalf("stats: %d %d %d", nd, nt, vocab)
	}
	if Corpus(0, 10, 1) != nil {
		t.Fatal("empty corpus should be nil")
	}
	// meanLen default kicks in.
	if d := Corpus(1, 0, 1); len(d[0].Tokens) == 0 {
		t.Fatal("default meanLen broken")
	}
}

func TestClusteredVectors(t *testing.T) {
	vecs, truth := ClusteredVectors(90, 3, 3, 4)
	if len(vecs) != 90 || len(truth) != 90 {
		t.Fatal("wrong counts")
	}
	for i, v := range vecs {
		if len(v) != 3 {
			t.Fatal("wrong dims")
		}
		if truth[i] != i%3 {
			t.Fatal("truth labels wrong")
		}
	}
	if v, tr := ClusteredVectors(0, 3, 3, 4); v != nil || tr != nil {
		t.Fatal("degenerate input should be nil")
	}
}

func TestLinesAndSizes(t *testing.T) {
	lines := Lines(50, 5)
	if len(lines) != 50 {
		t.Fatal("wrong count")
	}
	corpus := Corpus(20, 30, 6)
	if SizeOfCorpus(corpus) <= 0 {
		t.Fatal("size must be positive")
	}
	if SizeOfCorpus(nil) != 0 {
		t.Fatal("empty corpus size nonzero")
	}
}

func TestZipfSkew(t *testing.T) {
	if ZipfSkew(nil) != 0 {
		t.Fatal("empty graph skew")
	}
	skew := ZipfSkew(CallGraph(20_000, 3))
	if skew <= 0.02 || skew > 1 {
		t.Fatalf("skew = %v", skew)
	}
}

// Property: every generated edge references vertices inside [0,
// VertexCount).
func TestQuickEdgeBounds(t *testing.T) {
	f := func(seed int64) bool {
		n := 100 + int(uint64(seed)%5000)
		edges := CallGraph(n, seed)
		v := int32(VertexCount(edges))
		for _, e := range edges {
			if e.Src >= v || e.Dst >= v || e.Src < 0 || e.Dst < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
