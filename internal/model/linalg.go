package model

import (
	"fmt"
	"math"
)

// solveSPD solves A x = b for symmetric positive-definite A via Cholesky
// decomposition, adding a small jitter to the diagonal when the matrix is
// near-singular. A is modified in place.
func solveSPD(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("model: solveSPD dimension mismatch")
	}
	// Attempt Cholesky with escalating jitter.
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		L, ok := cholesky(A, jitter)
		if ok {
			return choleskySolve(L, b), nil
		}
		if jitter == 0 {
			jitter = 1e-10 * traceMean(A)
			if jitter == 0 {
				jitter = 1e-10
			}
		} else {
			jitter *= 100
		}
	}
	return nil, fmt.Errorf("model: matrix not positive definite")
}

func traceMean(A [][]float64) float64 {
	s := 0.0
	for i := range A {
		s += math.Abs(A[i][i])
	}
	return s / float64(len(A))
}

// cholesky returns the lower-triangular factor of A + jitter*I, or ok=false
// when the factorisation fails.
func cholesky(A [][]float64, jitter float64) ([][]float64, bool) {
	n := len(A)
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := A[i][j]
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= L[i][k] * L[j][k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, false
				}
				L[i][i] = math.Sqrt(sum)
			} else {
				L[i][j] = sum / L[j][j]
			}
		}
	}
	return L, true
}

// choleskySolve solves L L^T x = b.
func choleskySolve(L [][]float64, b []float64) []float64 {
	n := len(L)
	// Forward substitution: L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= L[i][k] * z[k]
		}
		z[i] = sum / L[i][i]
	}
	// Back substitution: L^T x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= L[k][i] * x[k]
		}
		x[i] = sum / L[i][i]
	}
	return x
}

// normalEquations computes (X^T X + ridge*I) w = X^T y for the design
// matrix X (rows are samples) and returns w.
func normalEquations(X [][]float64, y []float64, ridge float64) ([]float64, error) {
	if len(X) == 0 {
		return nil, ErrNoData
	}
	d := len(X[0])
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	b := make([]float64, d)
	for r, row := range X {
		for i := 0; i < d; i++ {
			b[i] += row[i] * y[r]
			for j := 0; j <= i; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			A[j][i] = A[i][j]
		}
		A[i][i] += ridge
	}
	return solveSPD(A, b)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func mean(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

func variance(y []float64) float64 {
	if len(y) < 2 {
		return 0
	}
	m := mean(y)
	s := 0.0
	for _, v := range y {
		d := v - m
		s += d * d
	}
	return s / float64(len(y))
}
