package model

import "math"

// standardizer rescales features to zero mean and unit variance; constant
// features map to zero. Several models (kNN, RBF, MLP, GP) depend on it
// because the platform's raw features span wildly different magnitudes
// (record counts in the millions next to core counts below ten).
type standardizer struct {
	mean  []float64
	scale []float64
}

func fitStandardizer(X [][]float64) *standardizer {
	if len(X) == 0 {
		return &standardizer{}
	}
	d := len(X[0])
	s := &standardizer{mean: make([]float64, d), scale: make([]float64, d)}
	for j := 0; j < d; j++ {
		m := 0.0
		for _, row := range X {
			m += row[j]
		}
		m /= float64(len(X))
		v := 0.0
		for _, row := range X {
			dlt := row[j] - m
			v += dlt * dlt
		}
		v /= float64(len(X))
		s.mean[j] = m
		if sd := math.Sqrt(v); sd > 1e-12 {
			s.scale[j] = 1 / sd
		} else {
			s.scale[j] = 0 // constant feature: contributes nothing
		}
	}
	return s
}

func (s *standardizer) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		if j < len(s.mean) {
			out[j] = (x[j] - s.mean[j]) * s.scale[j]
		}
	}
	return out
}

func (s *standardizer) applyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.apply(row)
	}
	return out
}

// targetScaler standardizes the regression target; MLP training needs it
// for stable gradients.
type targetScaler struct {
	mean, sd float64
}

func fitTargetScaler(y []float64) *targetScaler {
	m := mean(y)
	sd := math.Sqrt(variance(y))
	if sd < 1e-12 {
		sd = 1
	}
	return &targetScaler{mean: m, sd: sd}
}

func (t *targetScaler) encode(v float64) float64 { return (v - t.mean) / t.sd }
func (t *targetScaler) decode(v float64) float64 { return v*t.sd + t.mean }
