package model

import (
	"math"
	"sort"
)

// KNN is an inverse-distance-weighted k-nearest-neighbour regressor over
// standardized features — the "interpolation" technique of the paper's
// model list. With k=1 it reproduces profiled points exactly.
type KNN struct {
	k     int
	std   *standardizer
	X     [][]float64
	y     []float64
	dirty bool
}

// NewKNN returns an untrained kNN regressor with the given neighbourhood
// size (clamped to at least 1).
func NewKNN(k int) *KNN {
	if k < 1 {
		k = 1
	}
	return &KNN{k: k}
}

// Name implements Model.
func (m *KNN) Name() string { return "KNN" }

// Train implements Model. Training stores the standardized sample set.
func (m *KNN) Train(X [][]float64, y []float64) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	m.std = fitStandardizer(X)
	m.X = m.std.applyAll(X)
	m.y = clone1D(y)
	return nil
}

// Predict implements Model.
func (m *KNN) Predict(x []float64) float64 {
	if len(m.X) == 0 {
		return 0
	}
	q := m.std.apply(x)
	type nb struct {
		d float64
		y float64
	}
	nbs := make([]nb, len(m.X))
	for i := range m.X {
		nbs[i] = nb{d: sqDist(q, m.X[i]), y: m.y[i]}
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].d < nbs[j].d })
	k := m.k
	if k > len(nbs) {
		k = len(nbs)
	}
	// Exact hit: return the stored value (1-NN interpolation property).
	if nbs[0].d == 0 {
		return nbs[0].y
	}
	num, den := 0.0, 0.0
	for i := 0; i < k; i++ {
		w := 1.0 / (math.Sqrt(nbs[i].d) + 1e-12)
		num += w * nbs[i].y
		den += w
	}
	return num / den
}
