package model

import (
	"math/rand"
	"sort"
)

// Linear is ordinary least-squares linear regression over standardized
// features, with an intercept and a whisper of ridge regularisation.
// Standardization matters: the platform's raw features span nine orders of
// magnitude (bytes vs core counts) and include exactly collinear and
// constant columns, which wreck an unconditioned normal-equation solve.
type Linear struct {
	weights []float64 // last entry is the intercept
	std     *standardizer
	ridge   float64
}

// NewLinear returns an untrained linear regressor.
func NewLinear() *Linear { return &Linear{ridge: 1e-9} }

// Name implements Model.
func (l *Linear) Name() string { return "LinearRegression" }

// Train implements Model.
func (l *Linear) Train(X [][]float64, y []float64) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	l.std = fitStandardizer(X)
	aug := augment(l.std.applyAll(X))
	w, err := normalEquations(aug, y, l.ridge)
	if err != nil {
		// Degenerate design: escalate regularisation.
		w, err = normalEquations(aug, y, 1e-4)
		if err != nil {
			return err
		}
	}
	l.weights = w
	return nil
}

// Predict implements Model.
func (l *Linear) Predict(x []float64) float64 {
	if l.weights == nil {
		return 0
	}
	z := l.std.apply(x)
	s := l.weights[len(l.weights)-1]
	for i := 0; i < len(l.weights)-1 && i < len(z); i++ {
		s += l.weights[i] * z[i]
	}
	return s
}

// augment appends the constant-1 intercept column.
func augment(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row)+1)
		copy(r, row)
		r[len(row)] = 1
		out[i] = r
	}
	return out
}

// LeastMedianSquares is the robust regression flavour WEKA exposes
// (Rousseeuw & Leroy): it fits OLS on many random subsamples and keeps the
// fit with the smallest median squared residual, which shrugs off the
// outlier runs a busy cluster produces.
type LeastMedianSquares struct {
	inner   *Linear
	seed    int64
	samples int
}

// NewLeastMedianSquares returns an untrained LMS regressor.
func NewLeastMedianSquares(seed int64) *LeastMedianSquares {
	return &LeastMedianSquares{seed: seed, samples: 40}
}

// Name implements Model.
func (l *LeastMedianSquares) Name() string { return "LeastMedSq" }

// Train implements Model.
func (l *LeastMedianSquares) Train(X [][]float64, y []float64) error {
	dims, err := validate(X, y)
	if err != nil {
		return err
	}
	n := len(X)
	subset := dims + 2 // minimal sample size for a determined fit
	if subset >= n {
		// Too few points for subsampling: plain OLS.
		l.inner = NewLinear()
		return l.inner.Train(X, y)
	}
	rng := rand.New(rand.NewSource(l.seed))
	var best *Linear
	bestMed := 0.0
	for s := 0; s < l.samples; s++ {
		idx := rng.Perm(n)[:subset]
		sx := make([][]float64, subset)
		sy := make([]float64, subset)
		for i, j := range idx {
			sx[i], sy[i] = X[j], y[j]
		}
		cand := NewLinear()
		if err := cand.Train(sx, sy); err != nil {
			continue
		}
		med := medianSquaredResidual(cand, X, y)
		if best == nil || med < bestMed {
			best, bestMed = cand, med
		}
	}
	if best == nil {
		best = NewLinear()
		if err := best.Train(X, y); err != nil {
			return err
		}
	}
	l.inner = best
	return nil
}

// Predict implements Model.
func (l *LeastMedianSquares) Predict(x []float64) float64 {
	if l.inner == nil {
		return 0
	}
	return l.inner.Predict(x)
}

func medianSquaredResidual(m Model, X [][]float64, y []float64) float64 {
	res := make([]float64, len(X))
	for i := range X {
		d := m.Predict(X[i]) - y[i]
		res[i] = d * d
	}
	sort.Float64s(res)
	return res[len(res)/2]
}
