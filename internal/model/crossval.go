package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Score summarises one model family's cross-validated fit.
type Score struct {
	Name string
	RMSE float64
	// RelErr is the mean absolute relative error |pred-actual|/actual over
	// validation folds (the paper's Fig 16 metric).
	RelErr float64
}

// CrossValidate performs k-fold cross-validation of every factory on the
// samples and returns the per-family scores, sorted by the input factory
// order. Folds are shuffled deterministically by seed.
func CrossValidate(factories []Factory, X [][]float64, y []float64, k int, seed int64) ([]Score, error) {
	if _, err := validate(X, y); err != nil {
		return nil, err
	}
	if k < 2 {
		k = 2
	}
	if k > len(X) {
		k = len(X)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(X))

	scores := make([]Score, len(factories))
	for fi, fac := range factories {
		var se, re float64
		var n int
		name := ""
		for fold := 0; fold < k; fold++ {
			var trX, vaX [][]float64
			var trY, vaY []float64
			for i, p := range perm {
				if i%k == fold {
					vaX = append(vaX, X[p])
					vaY = append(vaY, y[p])
				} else {
					trX = append(trX, X[p])
					trY = append(trY, y[p])
				}
			}
			if len(trX) == 0 || len(vaX) == 0 {
				continue
			}
			m := fac()
			name = m.Name()
			if err := m.Train(trX, trY); err != nil {
				// A family that cannot train on this fold is penalised, not
				// fatal: other families may still fit.
				se += math.Inf(1)
				n += len(vaX)
				continue
			}
			for i := range vaX {
				pred := m.Predict(vaX[i])
				d := pred - vaY[i]
				se += d * d
				if vaY[i] != 0 {
					re += math.Abs(d) / math.Abs(vaY[i])
				}
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("model: cross-validation produced no folds")
		}
		scores[fi] = Score{
			Name:   name,
			RMSE:   math.Sqrt(se / float64(n)),
			RelErr: re / float64(n),
		}
	}
	return scores, nil
}

// SelectBest cross-validates every factory and returns the winning family
// (by RMSE) trained on the full dataset, together with all scores. Ties
// and NaNs resolve to the earliest factory.
func SelectBest(factories []Factory, X [][]float64, y []float64, k int, seed int64) (Model, []Score, error) {
	return selectBest(factories, X, y, k, seed, func(s Score) float64 { return s.RMSE })
}

// SelectBestRelative selects by mean relative error instead of RMSE. For
// targets spanning orders of magnitude (execution times from seconds to
// hours), relative error weights every scale equally — the criterion the
// paper's estimation-accuracy evaluation uses.
func SelectBestRelative(factories []Factory, X [][]float64, y []float64, k int, seed int64) (Model, []Score, error) {
	return selectBest(factories, X, y, k, seed, func(s Score) float64 { return s.RelErr })
}

func selectBest(factories []Factory, X [][]float64, y []float64, k int, seed int64, key func(Score) float64) (Model, []Score, error) {
	scores, err := CrossValidate(factories, X, y, k, seed)
	if err != nil {
		return nil, nil, err
	}
	best := 0
	for i, s := range scores {
		if !math.IsNaN(key(s)) && key(s) < key(scores[best]) {
			best = i
		}
	}
	m := factories[best]()
	if err := m.Train(X, y); err != nil {
		return nil, scores, err
	}
	return m, scores, nil
}
