package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth generates n samples of a target function over d dims with optional
// noise.
func synth(n, d int, seed int64, fn func(x []float64) float64, noise float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		X[i] = x
		y[i] = fn(x) + rng.NormFloat64()*noise
	}
	return X, y
}

func linearFn(x []float64) float64 { return 3*x[0] - 2*x[1] + 7 }

func nonlinearFn(x []float64) float64 {
	return 5*math.Sin(x[0]/2) + 0.5*x[1]*x[1]
}

func rmse(m Model, X [][]float64, y []float64) float64 {
	s := 0.0
	for i := range X {
		d := m.Predict(X[i]) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(X)))
}

func allModels() []Factory { return DefaultFactories(7) }

func TestAllModelsTrainAndPredict(t *testing.T) {
	X, y := synth(80, 3, 1, linearFn, 0.5)
	tX, tY := synth(30, 3, 2, linearFn, 0)
	for _, fac := range allModels() {
		m := fac()
		if err := m.Train(X, y); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		e := rmse(m, tX, tY)
		// Everything should beat a constant-mean predictor on a clean
		// linear target.
		base := math.Sqrt(variance(tY))
		if e >= base {
			t.Errorf("%s: rmse %.2f not better than mean baseline %.2f", m.Name(), e, base)
		}
	}
}

func TestLinearRecoverExact(t *testing.T) {
	X, y := synth(50, 2, 3, linearFn, 0)
	m := NewLinear()
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {1, 2}, {5, 5}} {
		want := linearFn(x)
		if got := m.Predict(x); math.Abs(got-want) > 1e-6 {
			t.Errorf("Predict(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLeastMedianSquaresRobustToOutliers(t *testing.T) {
	X, y := synth(60, 2, 4, linearFn, 0.1)
	// Corrupt 15% of targets badly.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 9; i++ {
		y[rng.Intn(len(y))] += 500
	}
	ols := NewLinear()
	lms := NewLeastMedianSquares(6)
	if err := ols.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if err := lms.Train(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := synth(40, 2, 7, linearFn, 0)
	if el, eo := rmse(lms, tX, tY), rmse(ols, tX, tY); el >= eo {
		t.Errorf("LMS rmse %.2f not better than OLS %.2f under outliers", el, eo)
	}
}

func TestKNNExactInterpolation(t *testing.T) {
	X, y := synth(30, 2, 8, nonlinearFn, 0)
	m := NewKNN(3)
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got := m.Predict(X[i]); math.Abs(got-y[i]) > 1e-9 {
			t.Fatalf("kNN not exact on training point %d: %v vs %v", i, got, y[i])
		}
	}
}

func TestTreeFitsNonlinear(t *testing.T) {
	X, y := synth(300, 2, 9, nonlinearFn, 0.1)
	m := NewTree(10, 2)
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := synth(80, 2, 10, nonlinearFn, 0)
	base := math.Sqrt(variance(tY))
	if e := rmse(m, tX, tY); e >= base*0.6 {
		t.Errorf("tree rmse %.2f vs baseline %.2f", e, base)
	}
}

func TestEnsemblesBeatSingleTreeOnNoisy(t *testing.T) {
	X, y := synth(200, 3, 11, nonlinearFn, 2.0)
	tX, tY := synth(100, 3, 12, nonlinearFn, 0)
	tree := NewTree(10, 1)
	bag := NewBagging(15, 13)
	if err := tree.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if err := bag.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if eb, et := rmse(bag, tX, tY), rmse(tree, tX, tY); eb >= et*1.1 {
		t.Errorf("bagging rmse %.2f much worse than single tree %.2f", eb, et)
	}
}

func TestGPInterpolatesSmooth(t *testing.T) {
	X, y := synth(60, 2, 14, nonlinearFn, 0.05)
	m := NewGaussianProcess(1.0, 0.05)
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := synth(40, 2, 15, nonlinearFn, 0)
	base := math.Sqrt(variance(tY))
	if e := rmse(m, tX, tY); e >= base*0.5 {
		t.Errorf("GP rmse %.2f vs baseline %.2f", e, base)
	}
}

func TestMLPLearnsLinear(t *testing.T) {
	X, y := synth(100, 2, 16, linearFn, 0.2)
	m := NewMLP(8, 400, 0.05, 17)
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := synth(40, 2, 18, linearFn, 0)
	base := math.Sqrt(variance(tY))
	if e := rmse(m, tX, tY); e >= base*0.5 {
		t.Errorf("MLP rmse %.2f vs baseline %.2f", e, base)
	}
}

func TestRBFNetwork(t *testing.T) {
	X, y := synth(120, 2, 19, nonlinearFn, 0.1)
	m := NewRBFNetwork(10, 20)
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := synth(40, 2, 21, nonlinearFn, 0)
	base := math.Sqrt(variance(tY))
	if e := rmse(m, tX, tY); e >= base*0.8 {
		t.Errorf("RBF rmse %.2f vs baseline %.2f", e, base)
	}
}

func TestDiscretizedBounded(t *testing.T) {
	X, y := synth(100, 2, 22, nonlinearFn, 0.1)
	m := NewDiscretized(6)
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	tX, _ := synth(50, 2, 23, nonlinearFn, 0)
	for _, x := range tX {
		p := m.Predict(x)
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Fatalf("discretized prediction %v outside target range [%v,%v]", p, lo, hi)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	for _, fac := range allModels() {
		m := fac()
		if err := m.Train(nil, nil); err == nil {
			t.Errorf("%s: nil data accepted", m.Name())
		}
		if err := m.Train([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
			t.Errorf("%s: row/target mismatch accepted", m.Name())
		}
		if err := m.Train([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
			t.Errorf("%s: ragged rows accepted", m.Name())
		}
		// Untrained prediction is 0, not a panic.
		if got := fac().Predict([]float64{1, 2}); got != 0 {
			t.Errorf("%s: untrained Predict = %v", m.Name(), got)
		}
	}
}

func TestSingleSampleTraining(t *testing.T) {
	// All models must survive a one-point dataset (first profiling run).
	for _, fac := range allModels() {
		m := fac()
		if err := m.Train([][]float64{{2, 3}}, []float64{10}); err != nil {
			t.Errorf("%s: single-sample train failed: %v", m.Name(), err)
			continue
		}
		if p := m.Predict([]float64{2, 3}); math.IsNaN(p) || math.IsInf(p, 0) {
			t.Errorf("%s: single-sample predict = %v", m.Name(), p)
		}
	}
}

func TestConstantTarget(t *testing.T) {
	X, _ := synth(20, 2, 24, linearFn, 0)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 42
	}
	for _, fac := range allModels() {
		m := fac()
		if err := m.Train(X, y); err != nil {
			t.Errorf("%s: constant target train failed: %v", m.Name(), err)
			continue
		}
		if p := m.Predict(X[0]); math.Abs(p-42) > 1.0 {
			t.Errorf("%s: constant target predict = %v, want ~42", m.Name(), p)
		}
	}
}

func TestConstantFeature(t *testing.T) {
	// One feature never varies (e.g. all profiling runs used 16 nodes).
	rng := rand.New(rand.NewSource(25))
	X := make([][]float64, 40)
	y := make([]float64, 40)
	for i := range X {
		v := rng.Float64() * 10
		X[i] = []float64{v, 5.0}
		y[i] = 2 * v
	}
	for _, fac := range allModels() {
		m := fac()
		if err := m.Train(X, y); err != nil {
			t.Errorf("%s: constant feature train failed: %v", m.Name(), err)
			continue
		}
		if p := m.Predict([]float64{3, 5}); math.IsNaN(p) {
			t.Errorf("%s: NaN prediction with constant feature", m.Name())
		}
	}
}

func TestCrossValidateSelectsReasonably(t *testing.T) {
	X, y := synth(80, 2, 26, linearFn, 0.1)
	m, scores, err := SelectBest(DefaultFactories(1), X, y, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(DefaultFactories(1)) {
		t.Fatalf("scores = %d", len(scores))
	}
	// On a clean linear target the winner must predict well.
	tX, tY := synth(40, 2, 27, linearFn, 0)
	base := math.Sqrt(variance(tY))
	if e := rmse(m, tX, tY); e > base*0.3 {
		t.Errorf("selected model %s rmse %.3f vs baseline %.3f", m.Name(), e, base)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, err := CrossValidate(allModels(), nil, nil, 5, 1); err == nil {
		t.Fatal("nil data accepted")
	}
}

func TestCrossValidateSmallN(t *testing.T) {
	X, y := synth(3, 2, 28, linearFn, 0)
	if _, _, err := SelectBest([]Factory{func() Model { return NewLinear() }}, X, y, 10, 1); err != nil {
		t.Fatalf("small-n CV failed: %v", err)
	}
}

// Property: training is deterministic — two identical models trained on the
// same data give identical predictions.
func TestQuickDeterministicTraining(t *testing.T) {
	facs := allModels()
	f := func(seed int64, which uint8) bool {
		fac := facs[int(which)%len(facs)]
		X, y := synth(40, 3, seed, nonlinearFn, 0.3)
		a, b := fac(), fac()
		if err := a.Train(X, y); err != nil {
			return true // acceptable failure, must just be consistent
		}
		if err := b.Train(X, y); err != nil {
			return false
		}
		probe, _ := synth(10, 3, seed+1, nonlinearFn, 0)
		for _, x := range probe {
			if a.Predict(x) != b.Predict(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: more data never makes the linear model catastrophically worse
// on a clean linear target (sanity of the normal-equation path).
func TestQuickLinearStability(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(uint64(seed)%90)
		X, y := synth(n, 2, seed, linearFn, 0)
		m := NewLinear()
		if err := m.Train(X, y); err != nil {
			return false
		}
		tX, tY := synth(20, 2, seed+1, linearFn, 0)
		return rmse(m, tX, tY) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
