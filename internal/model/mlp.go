package model

import (
	"math"
	"math/rand"
)

// MLP is a single-hidden-layer multilayer perceptron with tanh activations,
// trained by full-batch gradient descent over standardized features and
// targets — WEKA's MultilayerPerceptron stand-in at the scale of profiling
// datasets.
type MLP struct {
	hidden int
	epochs int
	lr     float64
	seed   int64

	std    *standardizer
	tgt    *targetScaler
	w1     [][]float64 // hidden x (dims+1)
	w2     []float64   // hidden+1
	inDims int
}

// NewMLP returns an untrained perceptron with the given hidden width,
// epoch budget and learning rate.
func NewMLP(hidden, epochs int, lr float64, seed int64) *MLP {
	if hidden < 1 {
		hidden = 1
	}
	if epochs < 1 {
		epochs = 1
	}
	if lr <= 0 {
		lr = 0.01
	}
	return &MLP{hidden: hidden, epochs: epochs, lr: lr, seed: seed}
}

// Name implements Model.
func (m *MLP) Name() string { return "MultilayerPerceptron" }

// Train implements Model.
func (m *MLP) Train(X [][]float64, y []float64) error {
	dims, err := validate(X, y)
	if err != nil {
		return err
	}
	m.inDims = dims
	m.std = fitStandardizer(X)
	m.tgt = fitTargetScaler(y)
	Z := m.std.applyAll(X)
	T := make([]float64, len(y))
	for i, v := range y {
		T[i] = m.tgt.encode(v)
	}

	rng := rand.New(rand.NewSource(m.seed))
	m.w1 = make([][]float64, m.hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, dims+1)
		for j := range m.w1[h] {
			m.w1[h][j] = rng.NormFloat64() * 0.5
		}
	}
	m.w2 = make([]float64, m.hidden+1)
	for j := range m.w2 {
		m.w2[j] = rng.NormFloat64() * 0.5
	}

	n := float64(len(Z))
	act := make([]float64, m.hidden+1)
	for epoch := 0; epoch < m.epochs; epoch++ {
		g1 := make([][]float64, m.hidden)
		for h := range g1 {
			g1[h] = make([]float64, dims+1)
		}
		g2 := make([]float64, m.hidden+1)
		for i, z := range Z {
			// Forward.
			for h := 0; h < m.hidden; h++ {
				s := m.w1[h][dims]
				for j := 0; j < dims; j++ {
					s += m.w1[h][j] * z[j]
				}
				act[h] = math.Tanh(s)
			}
			act[m.hidden] = 1
			out := dot(act, m.w2)
			// Backward.
			errOut := out - T[i]
			for h := 0; h <= m.hidden; h++ {
				g2[h] += errOut * act[h]
			}
			for h := 0; h < m.hidden; h++ {
				dh := errOut * m.w2[h] * (1 - act[h]*act[h])
				for j := 0; j < dims; j++ {
					g1[h][j] += dh * z[j]
				}
				g1[h][dims] += dh
			}
		}
		for h := 0; h <= m.hidden; h++ {
			m.w2[h] -= m.lr * g2[h] / n
		}
		for h := 0; h < m.hidden; h++ {
			for j := 0; j <= dims; j++ {
				m.w1[h][j] -= m.lr * g1[h][j] / n
			}
		}
	}
	return nil
}

// Predict implements Model.
func (m *MLP) Predict(x []float64) float64 {
	if m.w1 == nil {
		return 0
	}
	z := m.std.apply(x)
	act := make([]float64, m.hidden+1)
	for h := 0; h < m.hidden; h++ {
		s := m.w1[h][m.inDims]
		for j := 0; j < m.inDims && j < len(z); j++ {
			s += m.w1[h][j] * z[j]
		}
		act[h] = math.Tanh(s)
	}
	act[m.hidden] = 1
	return m.tgt.decode(dot(act, m.w2))
}
