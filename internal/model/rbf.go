package model

import (
	"math"
	"math/rand"
)

// RBFNetwork is a radial-basis-function network (Broomhead & Lowe): k-means
// picks the centres over standardized features, Gaussian activations feed a
// linear output layer solved in closed form.
type RBFNetwork struct {
	centers  int
	seed     int64
	std      *standardizer
	mu       [][]float64
	gamma    float64
	weights  []float64 // len(mu)+1, last is bias
	trainedK int
}

// NewRBFNetwork returns an untrained RBF network with the given number of
// centres.
func NewRBFNetwork(centers int, seed int64) *RBFNetwork {
	if centers < 1 {
		centers = 1
	}
	return &RBFNetwork{centers: centers, seed: seed}
}

// Name implements Model.
func (m *RBFNetwork) Name() string { return "RBFNetwork" }

// Train implements Model.
func (m *RBFNetwork) Train(X [][]float64, y []float64) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	m.std = fitStandardizer(X)
	Z := m.std.applyAll(X)

	k := m.centers
	if k > len(Z) {
		k = len(Z)
	}
	m.trainedK = k
	m.mu = kmeansCenters(Z, k, m.seed, 20)

	// Bandwidth: inverse of the mean inter-centre distance.
	m.gamma = 1.0
	if k > 1 {
		sum, cnt := 0.0, 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				sum += math.Sqrt(sqDist(m.mu[i], m.mu[j]))
				cnt++
			}
		}
		if cnt > 0 && sum > 0 {
			d := sum / float64(cnt)
			m.gamma = 1.0 / (2 * d * d)
		}
	}

	// Design matrix of activations, solved by ridge-stabilised least
	// squares.
	design := make([][]float64, len(Z))
	for i, z := range Z {
		design[i] = m.activations(z)
	}
	w, err := normalEquations(design, y, 1e-6)
	if err != nil {
		return err
	}
	m.weights = w
	return nil
}

func (m *RBFNetwork) activations(z []float64) []float64 {
	act := make([]float64, m.trainedK+1)
	for i := 0; i < m.trainedK; i++ {
		act[i] = math.Exp(-m.gamma * sqDist(z, m.mu[i]))
	}
	act[m.trainedK] = 1 // bias
	return act
}

// Predict implements Model.
func (m *RBFNetwork) Predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	return dot(m.activations(m.std.apply(x)), m.weights)
}

// kmeansCenters runs Lloyd's algorithm over standardized points and returns
// k centres. Deterministic given the seed.
func kmeansCenters(Z [][]float64, k int, seed int64, iters int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	n := len(Z)
	centers := make([][]float64, k)
	perm := rng.Perm(n)
	for i := 0; i < k; i++ {
		centers[i] = append([]float64(nil), Z[perm[i%n]]...)
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, z := range Z {
			best, bd := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(z, centers[c]); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		for c := range centers {
			var members int
			sum := make([]float64, len(Z[0]))
			for i, z := range Z {
				if assign[i] == c {
					members++
					for j := range z {
						sum[j] += z[j]
					}
				}
			}
			if members > 0 {
				for j := range sum {
					sum[j] /= float64(members)
				}
				centers[c] = sum
			}
		}
	}
	return centers
}
