package model

import (
	"math"
	"math/rand"
	"sort"
)

// Tree is a CART-style regression tree splitting on variance reduction.
type Tree struct {
	maxDepth int
	minLeaf  int
	root     *treeNode
	// featureMask, when non-nil, restricts splits to the masked features
	// (used by the random-subspace ensemble).
	featureMask []int
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64
	leaf        bool
}

// NewTree returns an untrained regression tree.
func NewTree(maxDepth, minLeaf int) *Tree {
	if maxDepth < 1 {
		maxDepth = 1
	}
	if minLeaf < 1 {
		minLeaf = 1
	}
	return &Tree{maxDepth: maxDepth, minLeaf: minLeaf}
}

// Name implements Model.
func (t *Tree) Name() string { return "RegressionTree" }

// Train implements Model.
func (t *Tree) Train(X [][]float64, y []float64) error {
	dims, err := validate(X, y)
	if err != nil {
		return err
	}
	features := t.featureMask
	if features == nil {
		features = make([]int, dims)
		for i := range features {
			features[i] = i
		}
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, features, 0)
	return nil
}

func (t *Tree) build(X [][]float64, y []float64, idx, features []int, depth int) *treeNode {
	ys := make([]float64, len(idx))
	for i, j := range idx {
		ys[i] = y[j]
	}
	node := &treeNode{value: mean(ys), leaf: true}
	if depth >= t.maxDepth || len(idx) < 2*t.minLeaf || variance(ys) == 0 {
		return node
	}

	bestVar := math.Inf(1)
	bestFeature, bestSplit := -1, 0.0
	for _, f := range features {
		vals := make([]float64, len(idx))
		for i, j := range idx {
			vals[i] = X[j][f]
		}
		order := make([]int, len(idx))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		// Incremental variance scan over sorted split positions.
		var lsum, lsq, rsum, rsq float64
		for _, o := range order {
			rsum += ys[o]
			rsq += ys[o] * ys[o]
		}
		nl, nr := 0.0, float64(len(idx))
		for p := 0; p < len(order)-1; p++ {
			v := ys[order[p]]
			lsum += v
			lsq += v * v
			rsum -= v
			rsq -= v * v
			nl++
			nr--
			if vals[order[p]] == vals[order[p+1]] {
				continue // cannot split between equal values
			}
			if int(nl) < t.minLeaf || int(nr) < t.minLeaf {
				continue
			}
			lvar := lsq - lsum*lsum/nl
			rvar := rsq - rsum*rsum/nr
			total := lvar + rvar
			if total < bestVar {
				bestVar = total
				bestFeature = f
				bestSplit = (vals[order[p]] + vals[order[p+1]]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}

	var li, ri []int
	for _, j := range idx {
		if X[j][bestFeature] <= bestSplit {
			li = append(li, j)
		} else {
			ri = append(ri, j)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return node
	}
	node.leaf = false
	node.feature = bestFeature
	node.threshold = bestSplit
	node.left = t.build(X, y, li, features, depth+1)
	node.right = t.build(X, y, ri, features, depth+1)
	return node
}

// Predict implements Model.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if n.feature < len(x) && x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Bagging is Breiman's bootstrap-aggregated ensemble of regression trees.
type Bagging struct {
	n     int
	seed  int64
	trees []*Tree
}

// NewBagging returns an untrained bagging ensemble of n trees.
func NewBagging(n int, seed int64) *Bagging {
	if n < 1 {
		n = 1
	}
	return &Bagging{n: n, seed: seed}
}

// Name implements Model.
func (b *Bagging) Name() string { return "Bagging" }

// Train implements Model.
func (b *Bagging) Train(X [][]float64, y []float64) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(b.seed))
	b.trees = b.trees[:0]
	for i := 0; i < b.n; i++ {
		bx := make([][]float64, len(X))
		by := make([]float64, len(y))
		for j := range bx {
			k := rng.Intn(len(X))
			bx[j], by[j] = X[k], y[k]
		}
		tr := NewTree(8, 2)
		if err := tr.Train(bx, by); err != nil {
			return err
		}
		b.trees = append(b.trees, tr)
	}
	return nil
}

// Predict implements Model.
func (b *Bagging) Predict(x []float64) float64 {
	if len(b.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, tr := range b.trees {
		s += tr.Predict(x)
	}
	return s / float64(len(b.trees))
}

// RandomSubspace is Ho's random-subspace ensemble: each tree sees a random
// subset of the features.
type RandomSubspace struct {
	n     int
	frac  float64
	seed  int64
	trees []*Tree
}

// NewRandomSubspace returns an untrained random-subspace ensemble of n
// trees, each trained on ceil(frac*dims) features.
func NewRandomSubspace(n int, frac float64, seed int64) *RandomSubspace {
	if n < 1 {
		n = 1
	}
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	return &RandomSubspace{n: n, frac: frac, seed: seed}
}

// Name implements Model.
func (r *RandomSubspace) Name() string { return "RandomSubSpace" }

// Train implements Model.
func (r *RandomSubspace) Train(X [][]float64, y []float64) error {
	dims, err := validate(X, y)
	if err != nil {
		return err
	}
	take := int(math.Ceil(r.frac * float64(dims)))
	if take < 1 {
		take = 1
	}
	rng := rand.New(rand.NewSource(r.seed))
	r.trees = r.trees[:0]
	for i := 0; i < r.n; i++ {
		mask := rng.Perm(dims)[:take]
		tr := NewTree(8, 2)
		tr.featureMask = mask
		if err := tr.Train(X, y); err != nil {
			return err
		}
		r.trees = append(r.trees, tr)
	}
	return nil
}

// Predict implements Model.
func (r *RandomSubspace) Predict(x []float64) float64 {
	if len(r.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, tr := range r.trees {
		s += tr.Predict(x)
	}
	return s / float64(len(r.trees))
}

// Discretized implements WEKA's "regression by discretization": the target
// is binned into equal-frequency classes, a tree classifies the bin, and
// the prediction is the mean target of the predicted bin.
type Discretized struct {
	bins    int
	tree    *Tree
	centers []float64
}

// NewDiscretized returns an untrained regression-by-discretization model
// with the given number of target bins.
func NewDiscretized(bins int) *Discretized {
	if bins < 2 {
		bins = 2
	}
	return &Discretized{bins: bins}
}

// Name implements Model.
func (d *Discretized) Name() string { return "RegressionByDiscretization" }

// Train implements Model.
func (d *Discretized) Train(X [][]float64, y []float64) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	// Equal-frequency binning of the target.
	order := make([]int, len(y))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return y[order[a]] < y[order[b]] })
	bins := d.bins
	if bins > len(y) {
		bins = len(y)
	}
	labels := make([]float64, len(y))
	sums := make([]float64, bins)
	counts := make([]float64, bins)
	for rank, idx := range order {
		bin := rank * bins / len(y)
		labels[idx] = float64(bin)
		sums[bin] += y[idx]
		counts[bin]++
	}
	d.centers = make([]float64, bins)
	for b := 0; b < bins; b++ {
		if counts[b] > 0 {
			d.centers[b] = sums[b] / counts[b]
		}
	}
	// A regression tree over bin indices acts as the classifier.
	d.tree = NewTree(8, 1)
	return d.tree.Train(X, labels)
}

// Predict implements Model.
func (d *Discretized) Predict(x []float64) float64 {
	if d.tree == nil || len(d.centers) == 0 {
		return 0
	}
	bin := int(math.Round(d.tree.Predict(x)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(d.centers) {
		bin = len(d.centers) - 1
	}
	return d.centers[bin]
}
