package model

import "math"

// GaussianProcess is GP regression with an RBF kernel over standardized
// features — the "Gaussian Process" entry of the paper's model list. The
// posterior mean is computed via a Cholesky solve of (K + noise*I).
type GaussianProcess struct {
	lengthScale float64
	noise       float64

	std   *standardizer
	tgt   *targetScaler
	Z     [][]float64
	alpha []float64
}

// NewGaussianProcess returns an untrained GP with the given RBF length
// scale and observation-noise variance.
func NewGaussianProcess(lengthScale, noise float64) *GaussianProcess {
	if lengthScale <= 0 {
		lengthScale = 1
	}
	if noise <= 0 {
		noise = 1e-4
	}
	return &GaussianProcess{lengthScale: lengthScale, noise: noise}
}

// Name implements Model.
func (g *GaussianProcess) Name() string { return "GaussianProcess" }

func (g *GaussianProcess) kernel(a, b []float64) float64 {
	return math.Exp(-sqDist(a, b) / (2 * g.lengthScale * g.lengthScale))
}

// Train implements Model.
func (g *GaussianProcess) Train(X [][]float64, y []float64) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	g.std = fitStandardizer(X)
	g.tgt = fitTargetScaler(y)
	g.Z = g.std.applyAll(X)
	t := make([]float64, len(y))
	for i, v := range y {
		t[i] = g.tgt.encode(v)
	}
	n := len(g.Z)
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			k := g.kernel(g.Z[i], g.Z[j])
			K[i][j] = k
			K[j][i] = k
		}
		K[i][i] += g.noise
	}
	alpha, err := solveSPD(K, t)
	if err != nil {
		return err
	}
	g.alpha = alpha
	return nil
}

// Predict implements Model.
func (g *GaussianProcess) Predict(x []float64) float64 {
	if g.alpha == nil {
		return 0
	}
	z := g.std.apply(x)
	s := 0.0
	for i, zi := range g.Z {
		s += g.alpha[i] * g.kernel(z, zi)
	}
	return g.tgt.decode(s)
}
