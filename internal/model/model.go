// Package model implements the estimation-model zoo IReS uses in place of
// WEKA (D3.3 §2.2.1): linear regression (including a least-median-of-squares
// flavour), k-nearest-neighbour interpolation, decision-tree regression,
// bagging, random subspaces, regression by discretization, RBF networks,
// multilayer perceptrons and Gaussian processes — plus the k-fold
// cross-validation harness that keeps whichever model best fits the
// available profiling data.
//
// All models are pure Go, deterministic given their seed, and sized for the
// small feature spaces (a handful of data/operator/resource parameters) and
// sample counts (tens to hundreds of profiled runs) the platform works with.
package model

import (
	"errors"
	"fmt"
)

// Model is a trainable regressor mapping a feature vector to a scalar
// estimate (execution time, cost, output size, ...).
type Model interface {
	// Name identifies the model family for reporting and selection.
	Name() string
	// Train fits the model on the given samples. Implementations must cope
	// with n < dims and duplicate rows.
	Train(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector. Predict on an
	// untrained model returns 0.
	Predict(x []float64) float64
}

// ErrNoData is returned when Train is called without samples.
var ErrNoData = errors.New("model: no training data")

// ErrDimMismatch is returned when feature vectors disagree in length.
var ErrDimMismatch = errors.New("model: dimension mismatch")

func validate(X [][]float64, y []float64) (dims int, err error) {
	if len(X) == 0 || len(y) == 0 {
		return 0, ErrNoData
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("%w: %d rows vs %d targets", ErrDimMismatch, len(X), len(y))
	}
	dims = len(X[0])
	if dims == 0 {
		return 0, fmt.Errorf("%w: empty feature vector", ErrDimMismatch)
	}
	for i, row := range X {
		if len(row) != dims {
			return 0, fmt.Errorf("%w: row %d has %d features, want %d", ErrDimMismatch, i, len(row), dims)
		}
	}
	return dims, nil
}

// Factory constructs a fresh, untrained model. Cross-validation uses
// factories so every fold trains from scratch.
type Factory func() Model

// DefaultFactories returns the platform's full model zoo, seeded
// deterministically.
func DefaultFactories(seed int64) []Factory {
	return []Factory{
		func() Model { return NewLinear() },
		func() Model { return NewLeastMedianSquares(seed) },
		func() Model { return NewKNN(3) },
		func() Model { return NewTree(8, 2) },
		func() Model { return NewBagging(10, seed) },
		func() Model { return NewRandomSubspace(10, 0.5, seed) },
		func() Model { return NewDiscretized(8) },
		func() Model { return NewRBFNetwork(8, seed) },
		func() Model { return NewMLP(8, 300, 0.05, seed) },
		func() Model { return NewGaussianProcess(1.0, 0.1) },
	}
}

func clone2D(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

func clone1D(y []float64) []float64 {
	return append([]float64(nil), y...)
}
