package experiments

import "testing"

// TestGiantDAGFlapIdentity is the small-size smoke version of the giant-DAG
// benchmark: the flap-replan byte-identity gate plus the eviction-scope
// property (a single engine flap must evict a constant couple of node
// results, not a graph-sized fraction).
func TestGiantDAGFlapIdentity(t *testing.T) {
	env, err := NewGiantDAGBench(90, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.VerifyFlap(); err != nil {
		t.Fatal(err)
	}
	cs := env.P.CacheStats()
	if cs.Epoch != 0 {
		t.Fatalf("flap cycle caused a wholesale flush: %+v", cs)
	}
	// Two flaps (down, up): the footprint hit is the mShrink node, and the
	// parent-link walk adds its mJPEG dependent — 2 results per flap.
	if cs.EvictedEntries > 4 {
		t.Fatalf("flap eviction not scoped: evicted %d results for 2 flaps on a %d-operator graph (%+v)",
			cs.EvictedEntries, env.Size, cs)
	}
	if cs.Hits < uint64(env.Size) {
		t.Fatalf("flap replans were not warm: %+v for %d operators", cs, env.Size)
	}
}
