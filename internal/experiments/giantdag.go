package experiments

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/pegasus"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/workflow"
)

// Giant-DAG planner benchmark: a Pegasus Montage workflow at thousands of
// operators, m alternative engines per algorithm, plus one extra "flapEngine"
// implementing only the sink-adjacent mShrink algorithm. Flapping that engine
// up and down is the worst case the partial-invalidation scheme is designed
// for: the typed event's footprint touches two node results (mShrink and its
// mJPEG dependent) out of the whole DAG, so a replan after the flap re-derives
// those two and insert-replays everything else warm. The wholesale baseline
// flushes the entire cache for the same flap.

// giantFlapEngine is the extra engine the flap benchmarks toggle.
const giantFlapEngine = "flapEngine"

// giantFlapAlg is the algorithm the flap engine implements; in Montage it is
// adjacent to the sink (mShrink -> mJPEG -> target).
const giantFlapAlg = "mShrink"

// GiantDAGBench is a reusable giant-DAG benchmark environment.
type GiantDAGBench struct {
	G       *workflow.Graph
	P       *planner.Planner
	Size    int // operators in the generated graph
	Engines int // engine implementations per algorithm (flap engine excluded)
	lib     *operator.Library
	flapUp  atomic.Bool
	// RefUp and RefDown are cold-planner references for the two availability
	// states; warm replans after a flap must describe identically.
	RefUp, RefDown string
}

// giantLib builds the m-engine pegasus library plus the flap engine's
// implementation of the flap algorithm.
func giantLib(g *workflow.Graph, engines int) (*operator.Library, error) {
	lib := operator.NewLibrary()
	flapAlgSeen := false
	for _, alg := range pegasus.Algorithms(g) {
		if alg == giantFlapAlg {
			flapAlgSeen = true
		}
		for e := 0; e < engines; e++ {
			name := fmt.Sprintf("%s_engine%d", alg, e)
			desc := fmt.Sprintf(`Constraints.Engine=engine%d
Constraints.OpSpecification.Algorithm.name=%s
Constraints.Input0.Engine.FS=FS%d
Constraints.Output0.Engine.FS=FS%d
`, e, alg, e%3, e%3)
			if _, err := lib.AddOperatorDescription(name, desc); err != nil {
				return nil, err
			}
		}
	}
	if !flapAlgSeen {
		return nil, fmt.Errorf("giant dag: graph has no %s operator to flap", giantFlapAlg)
	}
	desc := fmt.Sprintf(`Constraints.Engine=%s
Constraints.OpSpecification.Algorithm.name=%s
Constraints.Input0.Engine.FS=FS0
Constraints.Output0.Engine.FS=FS0
`, giantFlapEngine, giantFlapAlg)
	if _, err := lib.AddOperatorDescription(giantFlapAlg+"_"+giantFlapEngine, desc); err != nil {
		return nil, err
	}
	return lib, nil
}

// NewGiantDAGBench generates the Montage graph, builds the library and the
// warm planner, and captures cold-planner references for both flap states.
func NewGiantDAGBench(size, engines int) (*GiantDAGBench, error) {
	g, err := pegasus.Generate(pegasus.Montage, size)
	if err != nil {
		return nil, err
	}
	lib, err := giantLib(g, engines)
	if err != nil {
		return nil, err
	}
	e := &GiantDAGBench{G: g, Size: pegasus.OperatorCount(g), Engines: engines, lib: lib}
	e.flapUp.Store(true)
	p, err := planner.New(planner.Config{
		Library:   lib,
		Estimator: synthEstimator{},
		EngineAvailable: func(name string) bool {
			return name != giantFlapEngine || e.flapUp.Load()
		},
	})
	if err != nil {
		return nil, err
	}
	e.P = p

	// Cold references: fresh planners pinned to each availability state.
	for _, up := range []bool{true, false} {
		up := up
		ref, err := planner.New(planner.Config{
			Library:         lib,
			Estimator:       synthEstimator{},
			EngineAvailable: func(name string) bool { return name != giantFlapEngine || up },
		})
		if err != nil {
			return nil, err
		}
		pl, err := ref.Plan(g)
		if err != nil {
			return nil, err
		}
		if up {
			e.RefUp = pl.Describe()
		} else {
			e.RefDown = pl.Describe()
		}
	}
	return e, nil
}

// setFlap changes the flap engine's availability and sends the typed
// invalidation event a platform would.
func (e *GiantDAGBench) setFlap(up bool) {
	e.flapUp.Store(up)
	e.P.EngineAvailability(giantFlapEngine)
}

// VerifyFlap drives the warm planner through a down/up flap cycle and checks
// each replan against the matching cold reference — the byte-identity gate
// for partial invalidation at giant scale. The benched planner is verified
// on Describe output; a second, trace-recording planner pair additionally
// pins the trace bytes (kept off the benched planner so event emission
// never skews the measurements).
func (e *GiantDAGBench) VerifyFlap() error {
	if _, err := e.P.Plan(e.G); err != nil {
		return err
	}
	for _, step := range []struct {
		up   bool
		want string
	}{{false, e.RefDown}, {true, e.RefUp}} {
		e.setFlap(step.up)
		pl, err := e.P.Plan(e.G)
		if err != nil {
			return err
		}
		if pl.Describe() != step.want {
			return fmt.Errorf("giant dag: warm replan (flap up=%v) diverged from cold reference", step.up)
		}
	}
	if cs := e.P.CacheStats(); cs.PartialInvalidations == 0 || cs.EvictedEntries == 0 {
		return fmt.Errorf("giant dag: flap cycle recorded no partial invalidation: %+v", cs)
	}
	return e.verifyFlapTraces()
}

// verifyFlapTraces replays the flap cycle on a trace-recording warm planner
// and compares the event bytes of each replan against a cold planner built
// under the same availability.
func (e *GiantDAGBench) verifyFlapTraces() error {
	var up atomic.Bool
	up.Store(true)
	avail := func(name string) bool { return name != giantFlapEngine || up.Load() }
	warmRec := trace.NewRecorder(0)
	warm, err := planner.New(planner.Config{
		Library: e.lib, Estimator: synthEstimator{},
		EngineAvailable: avail, Tracer: warmRec,
	})
	if err != nil {
		return err
	}
	if _, err := warm.Plan(e.G); err != nil {
		return err
	}
	for _, state := range []bool{false, true} {
		up.Store(state)
		warm.EngineAvailability(giantFlapEngine)
		before := len(warmRec.Events())
		if _, err := warm.Plan(e.G); err != nil {
			return err
		}

		coldRec := trace.NewRecorder(0)
		cold, err := planner.New(planner.Config{
			Library: e.lib, Estimator: synthEstimator{},
			EngineAvailable: avail, Tracer: coldRec,
		})
		if err != nil {
			return err
		}
		if _, err := cold.Plan(e.G); err != nil {
			return err
		}
		coldEvents := coldRec.Events()
		warmEvents := warmRec.Events()[before:]
		if len(warmEvents) != len(coldEvents) {
			return fmt.Errorf("giant dag: trace event counts diverged (flap up=%v): cold=%d warm=%d",
				state, len(coldEvents), len(warmEvents))
		}
		for i := range warmEvents {
			warmEvents[i].Seq = coldEvents[i].Seq
		}
		var want, got bytes.Buffer
		if err := trace.WriteJSONL(&want, coldEvents); err != nil {
			return err
		}
		if err := trace.WriteJSONL(&got, warmEvents); err != nil {
			return err
		}
		if want.String() != got.String() {
			return fmt.Errorf("giant dag: warm replan trace diverged from cold reference (flap up=%v)", state)
		}
	}
	return nil
}

// BenchGiantPlanCold measures a from-scratch plan of the giant DAG.
func (e *GiantDAGBench) BenchGiantPlanCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.P.FlushCache()
		if _, err := e.P.Plan(e.G); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchGiantReplanWarm measures a fully warm replan (no invalidation).
func (e *GiantDAGBench) BenchGiantReplanWarm(b *testing.B) {
	b.ReportAllocs()
	if _, err := e.P.Plan(e.G); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.P.Plan(e.G); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchGiantFlapReplanPartial measures the replan after a single engine flap
// under dependency-scoped partial invalidation: each iteration toggles the
// flap engine, sends the typed event, and replans.
func (e *GiantDAGBench) BenchGiantFlapReplanPartial(b *testing.B) {
	b.ReportAllocs()
	if _, err := e.P.Plan(e.G); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.setFlap(i%2 != 0)
		if _, err := e.P.Plan(e.G); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.setFlap(true)
	if _, err := e.P.Plan(e.G); err != nil {
		b.Fatal(err)
	}
}

// BenchGiantFlapReplanWholesale is the baseline the tentpole replaces: the
// same flap, but the whole cache is flushed before the replan.
func (e *GiantDAGBench) BenchGiantFlapReplanWholesale(b *testing.B) {
	b.ReportAllocs()
	if _, err := e.P.Plan(e.G); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.flapUp.Store(i%2 != 0)
		e.P.FlushCache()
		if _, err := e.P.Plan(e.G); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.flapUp.Store(true)
	e.P.FlushCache()
	if _, err := e.P.Plan(e.G); err != nil {
		b.Fatal(err)
	}
}

// GiantDAGReport is the giant-DAG section of BENCH_PLANNER.json.
type GiantDAGReport struct {
	Category  string               `json:"category"`
	Operators int                  `json:"operators"`
	Engines   int                  `json:"engines"`
	Results   []PlannerBenchResult `json:"results"`
	// PartialFlapSpeedup is wholesale flap-replan ns/op over partial
	// flap-replan ns/op — the tracked gate (>= 5x).
	PartialFlapSpeedup float64 `json:"partialFlapSpeedup"`
	// FlapIdentical records that warm replans after each flap described
	// identically to cold planners under the same availability.
	FlapIdentical bool `json:"flapIdentical"`
	// Planner cache counters after the run.
	PartialInvalidations uint64 `json:"partialInvalidations"`
	EvictedEntries       uint64 `json:"evictedEntries"`
}

// RunGiantDAGBench builds the giant-DAG environment, runs the identity gate,
// then measures the four cells and derives the partial-vs-wholesale speedup.
func RunGiantDAGBench(size, engines int) (*GiantDAGReport, error) {
	env, err := NewGiantDAGBench(size, engines)
	if err != nil {
		return nil, err
	}
	if err := env.VerifyFlap(); err != nil {
		return nil, err
	}

	cold := testing.Benchmark(env.BenchGiantPlanCold)
	warm := testing.Benchmark(env.BenchGiantReplanWarm)
	partial := testing.Benchmark(env.BenchGiantFlapReplanPartial)
	wholesale := testing.Benchmark(env.BenchGiantFlapReplanWholesale)

	report := &GiantDAGReport{
		Category:  string(pegasus.Montage),
		Operators: env.Size,
		Engines:   engines,
		Results: []PlannerBenchResult{
			toResult("BenchmarkGiantPlanCold", cold),
			toResult("BenchmarkGiantReplanWarm", warm),
			toResult("BenchmarkGiantFlapReplanPartial", partial),
			toResult("BenchmarkGiantFlapReplanWholesale", wholesale),
		},
		FlapIdentical: true,
	}
	if partial.NsPerOp() > 0 {
		report.PartialFlapSpeedup = float64(wholesale.NsPerOp()) / float64(partial.NsPerOp())
	}
	cs := env.P.CacheStats()
	report.PartialInvalidations = cs.PartialInvalidations
	report.EvictedEntries = cs.EvictedEntries
	return report, nil
}
