package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/federation"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/scheduler"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// Federation bench shape: two regions of fedBenchNodes node agents each, a
// batch of checkpointing workflows split across them by data locality, and a
// full region outage mid-flight. The outage must be recovered by
// cross-cluster replans that restore the durable checkpoints mirrored at
// write time — no checkpointed work unit may execute twice.
const (
	fedBenchMembers  = 2
	fedBenchNodes    = 64
	fedBenchRuns     = 24
	fedBenchUnitSec  = 5.0
	fedBenchOutageAt = 12 * time.Second
)

// FedBench is the machine-readable result of the federation gate
// (cmd/bench-fed, `make bench-fed`).
type FedBench struct {
	Seed            int64   `json:"seed"`
	Members         int     `json:"members"`
	NodesPerMember  int     `json:"nodesPerMember"`
	Runs            int     `json:"runs"`
	OutageAtSec     float64 `json:"outageAtSec"`
	AffectedRuns    int     `json:"affectedRuns"`
	Replans         int     `json:"replans"`
	MovedRuns       int     `json:"movedRuns"`
	TotalUnits      int     `json:"totalUnits"`
	ExecutedUnits   int     `json:"executedUnits"`
	RestoredUnits   int     `json:"restoredUnits"`
	ReExecutedUnits int     `json:"reExecutedUnits"`
	MakespanSec     float64 `json:"makespanSec"`
	Deterministic   bool    `json:"deterministic"`
}

// Gate returns an error unless the acceptance conditions hold: the region
// outage strands real work, every stranded run completes via a
// cross-cluster replan, replanned runs restore mirrored checkpoints instead
// of recomputing (zero re-executed units), and the whole scenario is
// byte-identical across two fixed-seed executions.
func (b FedBench) Gate() error {
	switch {
	case b.AffectedRuns < 3:
		return fmt.Errorf("only %d runs were in flight on the failed region — outage too late to matter", b.AffectedRuns)
	case b.MovedRuns != b.AffectedRuns || b.Replans != b.AffectedRuns:
		return fmt.Errorf("affected=%d but moved=%d replans=%d — some stranded runs were not replanned exactly once",
			b.AffectedRuns, b.MovedRuns, b.Replans)
	case b.RestoredUnits == 0:
		return fmt.Errorf("replanned runs restored no mirrored checkpoint units — the zero-reexecution claim is vacuous")
	case b.ReExecutedUnits != 0:
		return fmt.Errorf("%d checkpointed units were re-executed after replan, want 0", b.ReExecutedUnits)
	case b.ExecutedUnits != b.TotalUnits:
		return fmt.Errorf("executed %d units, want exactly %d — work was lost or double-counted (restored units run once on the dead region, then resume from the mirror)",
			b.ExecutedUnits, b.TotalUnits)
	case !b.Deterministic:
		return fmt.Errorf("traces differ between two fixed-seed executions")
	}
	return nil
}

// fedBenchRecord tracks every executed work unit per checkpoint key, and the
// checkpoint progress each execution attempt started from.
type fedBenchRecord struct {
	mu       sync.Mutex
	units    map[string]map[int]int // key -> unit -> times executed
	restored int
	executed int
}

func newFedBenchRecord() *fedBenchRecord {
	return &fedBenchRecord{units: make(map[string]map[int]int)}
}

func (r *fedBenchRecord) start(key string, progress int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.restored += progress
}

func (r *fedBenchRecord) unit(key string, i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.units[key] == nil {
		r.units[key] = make(map[int]int)
	}
	r.units[key][i]++
	r.executed++
}

func (r *fedBenchRecord) reExecuted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.units {
		for _, times := range m {
			if times > 1 {
				n += times - 1
			}
		}
	}
	return n
}

// fedBenchExec is the checkpointing unit-stepping executor stub: it banks a
// durable checkpoint after every unit and seeds from the banked progress at
// start, so a replanned run on a cluster holding mirrored checkpoints
// resumes where the dead region stopped. A cancellation landing mid-unit
// discards the partial unit.
type fedBenchExec struct {
	clock *vtime.Clock
	clu   *cluster.Cluster
	ctx   scheduler.ExecContext
	units map[string]int
	rec   *fedBenchRecord
}

func (e *fedBenchExec) Execute(g *workflow.Graph, plan *planner.Plan) (*executor.Result, error) {
	key := "fed/" + g.Target
	total := e.units[g.Target]
	begin := e.clock.Now()
	unitDur := time.Duration(fedBenchUnitSec * float64(time.Second))
	start := e.clu.CheckpointProgress(key, "units", total)
	e.rec.start(key, start)
	for i := start; i < total; i++ {
		if e.ctx.Canceled() {
			return nil, executor.ErrCanceled
		}
		if e.ctx.Suspend() {
			return &executor.Result{Makespan: e.clock.Now() - begin}, executor.ErrSuspended
		}
		e.ctx.Party.WaitUntil(e.clock.Now() + unitDur)
		if e.ctx.Canceled() {
			return nil, executor.ErrCanceled
		}
		e.rec.unit(key, i)
		e.clu.PutCheckpoint(key, "units", i+1, total, nil, true)
	}
	return &executor.Result{Makespan: e.clock.Now() - begin}, nil
}

func (e *fedBenchExec) Resume(g *workflow.Graph, done []planner.MaterializedIntermediate) (*executor.Result, error) {
	return e.Execute(g, nil)
}

// fedBenchUnits gives workflow i its unit count: 6-9 units, deterministic in
// the index so both executions of a seed see identical work.
func fedBenchUnits(i int) int { return 6 + i%4 }

type fedBenchPass struct {
	affected  int
	replans   int
	moved     int
	total     int
	executed  int
	restored  int
	reExec    int
	makespan  float64
	traceJSON []byte
}

// runFedBenchPass executes the scenario once: submit fedBenchRuns
// checkpointing workflows across the two regions (placement by data
// locality splits them evenly), fail region east mid-flight, and wait for
// every federated run to complete wherever it ended up.
func runFedBenchPass(seed int64) (*fedBenchPass, error) {
	clock := vtime.NewClock()
	rec := newFedBenchRecord()
	tracer := &fedBenchTracer{}

	members := make([]*federation.Member, 0, fedBenchMembers)
	for _, name := range []string{"east", "west"} {
		clu := cluster.New(clock, fedBenchNodes, 4, 8192)
		clu.SetTracer(tracer)
		units := make(map[string]int, fedBenchRuns)
		for i := 0; i < fedBenchRuns; i++ {
			units[fmt.Sprintf("wf-%02d", i)] = fedBenchUnits(i)
		}
		sched, err := scheduler.New(scheduler.Config{
			Clock:   clock,
			Cluster: clu,
			Policy:  scheduler.FairShare{MaxConcurrent: 16},
			Tracer:  tracer,
			Plan: func(g *workflow.Graph) (*planner.Plan, error) {
				return &planner.Plan{Target: g.Target}, nil
			},
			NewExecutor: func(ctx scheduler.ExecContext) scheduler.Exec {
				return &fedBenchExec{clock: clock, clu: clu, ctx: ctx, units: units, rec: rec}
			},
		})
		if err != nil {
			return nil, err
		}
		members = append(members, &federation.Member{
			Name: name, Cluster: clu, Scheduler: sched,
			Datasets: map[string]bool{"ds-" + name: true},
		})
	}
	f, err := federation.New(clock, tracer, members...)
	if err != nil {
		return nil, err
	}

	runs := make([]*federation.Run, 0, fedBenchRuns)
	for i := 0; i < fedBenchRuns; i++ {
		name := fmt.Sprintf("wf-%02d", i)
		ds := "ds-east"
		if i%2 == 1 {
			ds = "ds-west"
		}
		fr, err := f.Submit(fedGraphNamed(name), scheduler.SubmitOptions{Name: name}, ds)
		if err != nil {
			return nil, err
		}
		runs = append(runs, fr)
	}
	clock.Schedule(fedBenchOutageAt, func(time.Duration) {
		_ = f.FailRegion("east")
	})
	pass := &fedBenchPass{}
	for i, fr := range runs {
		if _, _, err := fr.Wait(); err != nil {
			return nil, fmt.Errorf("federated run %s (wf-%02d) failed: %w", fr.ID(), i, err)
		}
		pass.moved += fr.Moves()
		pass.total += fedBenchUnits(i)
	}
	f.WaitIdle()

	pass.replans = f.Replans()
	pass.affected = 0
	for _, fr := range runs {
		if fr.Moves() > 0 {
			pass.affected++
		}
	}
	pass.executed = rec.executed
	pass.restored = rec.restored
	pass.reExec = rec.reExecuted()
	pass.makespan = clock.Now().Seconds()

	var buf bytes.Buffer
	tracer.mu.Lock()
	err = trace.WriteJSONL(&buf, tracer.events)
	tracer.mu.Unlock()
	if err != nil {
		return nil, err
	}
	pass.traceJSON = buf.Bytes()
	return pass, nil
}

// fedBenchTracer records the merged event stream of both clusters, both
// schedulers and the federation layer for the byte-identity comparison.
type fedBenchTracer struct {
	mu     sync.Mutex
	events []trace.Event
}

func (t *fedBenchTracer) Emit(ev trace.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, ev)
}

// fedGraphNamed builds a single-target graph; the target doubles as the
// checkpoint key, so a replanned resubmission finds the banked units.
func fedGraphNamed(name string) *workflow.Graph {
	g := workflow.NewGraph()
	g.Target = name
	return g
}

// RunFedBench executes the federation outage scenario twice on one seed and
// compares the full event traces byte-for-byte.
func RunFedBench(seed int64) (*FedBench, error) {
	first, err := runFedBenchPass(seed)
	if err != nil {
		return nil, err
	}
	second, err := runFedBenchPass(seed)
	if err != nil {
		return nil, fmt.Errorf("repeat pass: %w", err)
	}
	return &FedBench{
		Seed:            seed,
		Members:         fedBenchMembers,
		NodesPerMember:  fedBenchNodes,
		Runs:            fedBenchRuns,
		OutageAtSec:     fedBenchOutageAt.Seconds(),
		AffectedRuns:    first.affected,
		Replans:         first.replans,
		MovedRuns:       first.moved,
		TotalUnits:      first.total,
		ExecutedUnits:   first.executed,
		RestoredUnits:   first.restored,
		ReExecutedUnits: first.reExec,
		MakespanSec:     first.makespan,
		Deterministic:   bytes.Equal(first.traceJSON, second.traceJSON),
	}, nil
}
