package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/trace"
)

// schedBenchSubmitSec is the virtual time at which the urgent workflow
// arrives, well inside the long run's first operator.
const schedBenchSubmitSec = 20.0

// SchedPolicyOutcome is one admission policy's side of the deadline
// benchmark.
type SchedPolicyOutcome struct {
	Policy          string  `json:"policy"`
	UrgentFinishSec float64 `json:"urgentFinishSec"`
	BatchSec        float64 `json:"batchSec"`
	MeetsDeadline   bool    `json:"meetsDeadline"`
	Preemptions     int     `json:"preemptions"`
	SuspendedSec    float64 `json:"suspendedSec"`
	ReExecutedOps   int     `json:"reExecutedOps"`
	TraceBytes      int     `json:"traceBytes"`
	Deterministic   bool    `json:"deterministic"`
}

// SchedDeadlineBench is the machine-readable result of the scheduling gate
// (cmd/bench-sched, `make bench-sched`). The scenario: a long text workflow
// holds the whole cluster when a small urgent workflow with a deadline
// arrives. FIFO makes the urgent run wait out the long one and misses the
// deadline; the Deadline (EDF) policy preempts the long run at its next
// operator boundary, runs the urgent workflow to completion, then resumes
// the long run from its materialized intermediates without re-executing any
// completed operator.
type SchedDeadlineBench struct {
	Seed        int64              `json:"seed"`
	SubmitSec   float64            `json:"urgentSubmitSec"`
	DeadlineSec float64            `json:"deadlineSec"`
	FIFO        SchedPolicyOutcome `json:"fifo"`
	EDF         SchedPolicyOutcome `json:"deadline"`
}

// Gate returns an error unless every acceptance condition of the benchmark
// holds: the deadline discriminates the policies (EDF meets it, FIFO
// misses), preemption actually happened and resumed without re-running
// completed operators, and both policies produced byte-identical per-run
// traces across two executions.
func (b SchedDeadlineBench) Gate() error {
	switch {
	case b.FIFO.MeetsDeadline:
		return fmt.Errorf("FIFO met the %.0fs deadline (urgent finished %.1fs) — scenario has no contention", b.DeadlineSec, b.FIFO.UrgentFinishSec)
	case !b.EDF.MeetsDeadline:
		return fmt.Errorf("Deadline policy missed the %.0fs deadline (urgent finished %.1fs)", b.DeadlineSec, b.EDF.UrgentFinishSec)
	case b.EDF.Preemptions == 0:
		return fmt.Errorf("Deadline policy met the deadline without preempting — scenario too loose")
	case b.EDF.ReExecutedOps != 0:
		return fmt.Errorf("resume re-executed %d completed operators, want 0", b.EDF.ReExecutedOps)
	case !b.FIFO.Deterministic:
		return fmt.Errorf("FIFO per-run traces differ between two fixed-seed executions")
	case !b.EDF.Deterministic:
		return fmt.Errorf("Deadline per-run traces differ between two fixed-seed executions")
	}
	return nil
}

// RunSchedDeadlineBench executes the benchmark. The deadline is not a magic
// number: a calibration pass first measures the urgent run's finish time
// under both policies (the finish times do not depend on the deadline value —
// any finite deadline outranks the long run's infinite one, and the victim
// carries no deadline of its own), then the official deadline is set halfway
// between the two. Both policies then run the official scenario twice to
// check per-run trace determinism.
func RunSchedDeadlineBench(seed int64) (*SchedDeadlineBench, error) {
	// Calibration: any finite deadline works, it only has to exist.
	provisional := schedBenchSubmitSec + 1
	edfCal, err := runSchedDeadlineScenario(seed, ires.Deadline(), provisional)
	if err != nil {
		return nil, fmt.Errorf("calibrating Deadline policy: %w", err)
	}
	fifoCal, err := runSchedDeadlineScenario(seed, ires.FIFO(), provisional)
	if err != nil {
		return nil, fmt.Errorf("calibrating FIFO: %w", err)
	}
	if edfCal.urgentFinish >= fifoCal.urgentFinish {
		return nil, fmt.Errorf("preemption bought nothing: urgent finished at %.1fs under Deadline vs %.1fs under FIFO",
			edfCal.urgentFinish, fifoCal.urgentFinish)
	}
	deadline := math.Round((edfCal.urgentFinish + fifoCal.urgentFinish) / 2)

	bench := &SchedDeadlineBench{Seed: seed, SubmitSec: schedBenchSubmitSec, DeadlineSec: deadline}
	for _, pc := range []struct {
		label string
		adm   func() ires.AdmissionPolicy
		out   *SchedPolicyOutcome
	}{
		{"FIFO", func() ires.AdmissionPolicy { return ires.FIFO() }, &bench.FIFO},
		{"Deadline", func() ires.AdmissionPolicy { return ires.Deadline() }, &bench.EDF},
	} {
		first, err := runSchedDeadlineScenario(seed, pc.adm(), deadline)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pc.label, err)
		}
		second, err := runSchedDeadlineScenario(seed, pc.adm(), deadline)
		if err != nil {
			return nil, fmt.Errorf("%s (repeat): %w", pc.label, err)
		}
		*pc.out = SchedPolicyOutcome{
			Policy:          pc.label,
			UrgentFinishSec: first.urgentFinish,
			BatchSec:        first.batch,
			MeetsDeadline:   first.urgentFinish <= deadline,
			Preemptions:     first.preemptions,
			SuspendedSec:    first.suspendedSec,
			ReExecutedOps:   first.reExecuted,
			TraceBytes:      len(first.traces),
			Deterministic:   bytes.Equal(first.traces, second.traces),
		}
	}
	return bench, nil
}

// schedScenarioResult is one execution of the contention scenario.
type schedScenarioResult struct {
	urgentFinish float64
	batch        float64
	preemptions  int
	suspendedSec float64
	reExecuted   int
	traces       []byte // per-run JSONL traces, concatenated in run order
}

// runSchedDeadlineScenario runs the long workflow from t=0 and submits the
// urgent one (with the given absolute deadline) at schedBenchSubmitSec on a
// fresh platform under the given admission policy.
func runSchedDeadlineScenario(seed int64, adm ires.AdmissionPolicy, deadlineSec float64) (*schedScenarioResult, error) {
	p, err := ires.NewPlatform(ires.Options{Seed: seed, Admission: adm})
	if err != nil {
		return nil, err
	}
	if err := profileTextOps(p, seed); err != nil {
		return nil, err
	}
	long, err := TextWorkflow(p, 150_000)
	if err != nil {
		return nil, err
	}
	urgent, err := TextWorkflow(p, 20_000)
	if err != nil {
		return nil, err
	}
	longRun := p.SubmitWith(long, ires.SubmitOptions{Name: "long"})
	urgentCh := make(chan *ires.Run, 1)
	p.Clock.Schedule(time.Duration(schedBenchSubmitSec*float64(time.Second)), func(time.Duration) {
		urgentCh <- p.SubmitWith(urgent, ires.SubmitOptions{Name: "urgent", Deadline: time.Duration(deadlineSec * float64(time.Second))})
	})
	p.Drain()
	urgentRun := <-urgentCh

	res := &schedScenarioResult{}
	var runIDs []string
	for _, s := range p.Runs() {
		if s.Status != "succeeded" {
			return nil, fmt.Errorf("run %s (%s) ended %s: %s", s.ID, s.Workflow, s.Status, s.Error)
		}
		if s.FinishedSec > res.batch {
			res.batch = s.FinishedSec
		}
		runIDs = append(runIDs, s.ID)
		switch s.ID {
		case urgentRun.ID():
			res.urgentFinish = s.FinishedSec
		case longRun.ID():
			res.preemptions = s.Preemptions
			res.suspendedSec = s.SuspendedSec
		}
	}
	res.reExecuted = reExecutedOps(p.TraceForRun(longRun.ID()))

	sort.Strings(runIDs)
	var buf bytes.Buffer
	for _, id := range runIDs {
		fmt.Fprintf(&buf, "# run %s\n", id)
		if err := trace.WriteJSONL(&buf, p.TraceForRun(id)); err != nil {
			return nil, err
		}
	}
	res.traces = buf.Bytes()
	return res, nil
}

// reExecutedOps counts operators that completed more than once in a run's
// trace — the resume-from-done-set contract says none should: the replanned
// remainder must start from the materialized intermediates, not from
// scratch. Speculative backup copies are not re-executions.
func reExecutedOps(events []trace.Event) int {
	finishes := map[string]int{}
	for _, ev := range events {
		if ev.Type == trace.EvAttemptFinish && !ev.Speculative {
			finishes[ev.Step]++
		}
	}
	re := 0
	for _, n := range finishes {
		if n > 1 {
			re += n - 1
		}
	}
	return re
}

// SchedDeadline renders the benchmark as an ires-bench report table.
func SchedDeadline(seed int64) (*Report, error) {
	b, err := RunSchedDeadlineBench(seed)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "SCHEDDL",
		Title: "Deadline scheduling: EDF preemption vs FIFO on a contended cluster",
	}
	table := Table{
		Title: fmt.Sprintf("urgent workflow submitted at t=%.0fs with deadline %.0fs (long workflow holds the cluster)",
			b.SubmitSec, b.DeadlineSec),
		Header: []string{"policy", "urgent finish (s)", "deadline met", "batch (s)", "preemptions", "suspended (s)", "re-executed ops", "trace deterministic"},
	}
	for _, o := range []SchedPolicyOutcome{b.FIFO, b.EDF} {
		table.Rows = append(table.Rows, []string{
			o.Policy,
			fmt.Sprintf("%.1f", o.UrgentFinishSec),
			fmt.Sprintf("%v", o.MeetsDeadline),
			fmt.Sprintf("%.1f", o.BatchSec),
			fmt.Sprintf("%d", o.Preemptions),
			fmt.Sprintf("%.1f", o.SuspendedSec),
			fmt.Sprintf("%d", o.ReExecutedOps),
			fmt.Sprintf("%v", o.Deterministic),
		})
	}
	r.Tables = append(r.Tables, table)
	if err := b.Gate(); err != nil {
		r.Note("GATE FAILED: %v", err)
	} else {
		r.Note("Deadline meets the %.0fs deadline FIFO misses (%.1fs vs %.1fs urgent finish); the preempted run resumed from its done set with zero re-executed operators.",
			b.DeadlineSec, b.EDF.UrgentFinishSec, b.FIFO.UrgentFinishSec)
	}
	return r, nil
}
