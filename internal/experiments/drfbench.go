package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/trace"
)

// drfBenchWindowSec is the sampling window for dominant shares. It is
// deliberately shorter than any single run: the starvation signal lives in
// the early concurrent window — over a full horizon even FIFO eventually
// runs everyone and the averages converge.
const drfBenchWindowSec = 30

// DRFTenantShare is one tenant's time-averaged dominant share over the
// sampling window.
type DRFTenantShare struct {
	Tenant           string  `json:"tenant"`
	AvgDominantShare float64 `json:"avgDominantShare"`
}

// DRFFairnessOutcome is one policy's side of the two-tenant fairness
// scenario: a cores-heavy tenant (full-core, tiny-memory slices) and a
// memory-heavy tenant (single-core, near-full-memory slices) submit
// identical workloads at t=0.
type DRFFairnessOutcome struct {
	Policy        string           `json:"policy"`
	Shares        []DRFTenantShare `json:"shares"`
	Spread        float64          `json:"spread"`      // |a-b| / max(a,b)
	MinMaxRatio   float64          `json:"minMaxRatio"` // min share / max share
	BatchSec      float64          `json:"batchSec"`
	TraceBytes    int              `json:"traceBytes"`
	Deterministic bool             `json:"deterministic"`
}

// DRFOvercommitOutcome is the oversubscription scenario: two tenants whose
// slice demands fit under the overcommitted memory cap but exceed physical
// memory once both allocate, with an always-fire OOM killer and durable
// checkpointing.
type DRFOvercommitOutcome struct {
	OOMKills      int     `json:"oomKills"`
	Restores      int     `json:"checkpointRestores"`
	ReExecutedOps int     `json:"reExecutedOps"`
	BatchSec      float64 `json:"batchSec"`
	TraceBytes    int     `json:"traceBytes"`
	Deterministic bool    `json:"deterministic"`
}

// DRFBench is the machine-readable result of the DRF gate (cmd/bench-drf,
// `make bench-drf`): Dominant Resource Fairness must equalize the two
// tenants' dominant shares in the early window where FIFO starves one of
// them, and the oversubscribed workload must complete through the
// OOM-kill -> retry/checkpoint-restore loop with byte-identical fixed-seed
// traces.
type DRFBench struct {
	Seed       int64                `json:"seed"`
	WindowSec  float64              `json:"windowSec"`
	DRF        DRFFairnessOutcome   `json:"drf"`
	FIFO       DRFFairnessOutcome   `json:"fifo"`
	Overcommit DRFOvercommitOutcome `json:"overcommit"`
}

// Gate returns an error unless every acceptance condition holds.
func (b DRFBench) Gate() error {
	switch {
	case b.DRF.Spread > 0.10:
		return fmt.Errorf("DRF dominant shares spread %.2f, want <= 0.10 (shares %+v)", b.DRF.Spread, b.DRF.Shares)
	case b.FIFO.MinMaxRatio >= 0.5:
		return fmt.Errorf("FIFO min/max share ratio %.2f, want < 0.5 — no starvation, scenario has no contention", b.FIFO.MinMaxRatio)
	case !b.DRF.Deterministic || !b.FIFO.Deterministic:
		return fmt.Errorf("fairness traces differ between two fixed-seed executions (drf=%v fifo=%v)",
			b.DRF.Deterministic, b.FIFO.Deterministic)
	case b.Overcommit.OOMKills == 0:
		return fmt.Errorf("oversubscription scenario injected no OOM kills")
	case b.Overcommit.Restores == 0:
		return fmt.Errorf("OOM kills never hit a checkpointed operator (no restores)")
	case b.Overcommit.ReExecutedOps != 0:
		return fmt.Errorf("OOM recovery re-executed %d completed operators, want 0", b.Overcommit.ReExecutedOps)
	case !b.Overcommit.Deterministic:
		return fmt.Errorf("oversubscription traces differ between two fixed-seed executions")
	}
	return nil
}

// RunDRFBench executes both scenarios, each twice per policy for the
// determinism check.
func RunDRFBench(seed int64) (*DRFBench, error) {
	bench := &DRFBench{Seed: seed, WindowSec: drfBenchWindowSec}
	for _, pc := range []struct {
		label string
		adm   func() ires.AdmissionPolicy
		out   *DRFFairnessOutcome
	}{
		{"DRF", func() ires.AdmissionPolicy { return ires.DRF(nil, 4) }, &bench.DRF},
		{"FIFO", func() ires.AdmissionPolicy { return ires.FIFO() }, &bench.FIFO},
	} {
		first, err := runDRFFairnessScenario(seed, pc.adm())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pc.label, err)
		}
		second, err := runDRFFairnessScenario(seed, pc.adm())
		if err != nil {
			return nil, fmt.Errorf("%s (repeat): %w", pc.label, err)
		}
		*pc.out = first.DRFFairnessOutcome
		pc.out.Policy = pc.label
		pc.out.Deterministic = bytes.Equal(first.traces, second.traces)
		pc.out.TraceBytes = len(first.traces)
	}

	first, err := runDRFOvercommitScenario(seed)
	if err != nil {
		return nil, fmt.Errorf("overcommit: %w", err)
	}
	second, err := runDRFOvercommitScenario(seed)
	if err != nil {
		return nil, fmt.Errorf("overcommit (repeat): %w", err)
	}
	bench.Overcommit = first.DRFOvercommitOutcome
	bench.Overcommit.Deterministic = bytes.Equal(first.traces, second.traces)
	bench.Overcommit.TraceBytes = len(first.traces)
	return bench, nil
}

// drfFairnessResult carries one execution's outcome plus its trace bytes.
type drfFairnessResult struct {
	DRFFairnessOutcome
	traces []byte
}

// runDRFFairnessScenario submits three cores-heavy and three memory-heavy
// runs at t=0 under the given policy and samples per-tenant dominant shares
// once per virtual second across the window.
func runDRFFairnessScenario(seed int64, adm ires.AdmissionPolicy) (*drfFairnessResult, error) {
	p, err := ckptPlatform(ires.Options{Seed: seed, Admission: adm})
	if err != nil {
		return nil, err
	}
	totalCores, totalMem := p.Cluster.Capacity()

	// Cores-heavy: both node cores, 1/13.5 of node memory. Memory-heavy:
	// one core, full node memory. One of each co-locates on a node; two of
	// the same tenant never do — the same structural mix as the paper's
	// DRF motivating example.
	demands := []struct {
		tenant     string
		cores, mem int
	}{
		{"compute", 2, 256},
		{"etl", 1, 3456},
	}
	for i := 0; i < 6; i++ {
		d := demands[i%2]
		wf, err := ckptChainWorkflow(p, 150_000)
		if err != nil {
			return nil, err
		}
		p.SubmitWith(wf, ires.SubmitOptions{
			Name:   fmt.Sprintf("%s-%d", d.tenant, i/2),
			Tenant: d.tenant, DemandCores: d.cores, DemandMemMB: d.mem,
		})
	}

	// Sample dominant shares each virtual second; the callbacks only read
	// snapshots, so they perturb nothing.
	sums := map[string]float64{}
	for s := 1; s <= drfBenchWindowSec; s++ {
		p.Clock.Schedule(time.Duration(s)*time.Second, func(time.Duration) {
			cores := map[string]int{}
			mem := map[string]int{}
			for _, snap := range p.Runs() {
				if snap.Status != "running" {
					continue
				}
				cores[snap.Tenant] += snap.LeasedCores
				mem[snap.Tenant] += snap.LeasedMemMB
			}
			for _, d := range demands {
				cs := float64(cores[d.tenant]) / float64(totalCores)
				ms := float64(mem[d.tenant]) / float64(totalMem)
				sums[d.tenant] += math.Max(cs, ms)
			}
		})
	}
	p.Drain()

	res := &drfFairnessResult{}
	var runIDs []string
	for _, s := range p.Runs() {
		if s.Status != "succeeded" {
			return nil, fmt.Errorf("run %s (%s) ended %s: %s", s.ID, s.Workflow, s.Status, s.Error)
		}
		if s.FinishedSec > res.BatchSec {
			res.BatchSec = s.FinishedSec
		}
		runIDs = append(runIDs, s.ID)
	}

	a := sums["compute"] / drfBenchWindowSec
	b := sums["etl"] / drfBenchWindowSec
	res.Shares = []DRFTenantShare{{"compute", a}, {"etl", b}}
	if max := math.Max(a, b); max > 0 {
		res.Spread = math.Abs(a-b) / max
		res.MinMaxRatio = math.Min(a, b) / max
	}

	sort.Strings(runIDs)
	var buf bytes.Buffer
	for _, id := range runIDs {
		fmt.Fprintf(&buf, "# run %s\n", id)
		if err := trace.WriteJSONL(&buf, p.TraceForRun(id)); err != nil {
			return nil, err
		}
	}
	res.traces = buf.Bytes()
	return res, nil
}

// drfOvercommitResult carries one execution's outcome plus its trace bytes.
type drfOvercommitResult struct {
	DRFOvercommitOutcome
	traces []byte
}

// runDRFOvercommitScenario oversubscribes a 4-node cluster: tenant A's
// 2916MB slices and tenant B's 2268MB slices sum to exactly the 1.5x cap
// (5184MB) but exceed the 3456MB physical node memory once both allocate.
// B's arrival triggers the sweep; the victim is A's larger mid-flight
// container, and A's durable checkpoints carry its banked iterations across
// the OOM-kill -> retry arc.
func runDRFOvercommitScenario(seed int64) (*drfOvercommitResult, error) {
	p, err := ckptPlatform(ires.Options{
		Seed:          seed,
		ClusterNodes:  4,
		CoresPerNode:  4,
		MemMBPerNode:  3456,
		MemOvercommit: 1.5,
		Admission:     ires.DRF(nil, 2),
		Retry:         ires.RetryPolicy{MaxAttempts: 8, BaseBackoff: 4 * time.Second},
		Checkpoint:    ires.CheckpointPolicy{Enabled: true, MinIntervalSec: 4, Durable: true},
	})
	if err != nil {
		return nil, err
	}
	if err := p.InjectFaults(ires.FaultConfig{Seed: seed, OOM: ires.OOMKillFaults{Prob: 1}}); err != nil {
		return nil, err
	}

	wfA, err := ckptChainWorkflow(p, 120_000)
	if err != nil {
		return nil, err
	}
	runA := p.SubmitWith(wfA, ires.SubmitOptions{
		Name: "mem-a", Tenant: "tenant-a", DemandCores: 2, DemandMemMB: 2916,
	})
	wfB, err := ckptWorkflow(p, engine.AlgKMeans, 15_000)
	if err != nil {
		return nil, err
	}
	p.Clock.Schedule(5*time.Second, func(time.Duration) {
		p.SubmitWith(wfB, ires.SubmitOptions{
			Name: "mem-b", Tenant: "tenant-b", DemandCores: 2, DemandMemMB: 2268,
		})
	})
	p.Drain()

	res := &drfOvercommitResult{}
	var runIDs []string
	for _, s := range p.Runs() {
		if s.Status != "succeeded" {
			return nil, fmt.Errorf("run %s (%s) ended %s: %s", s.ID, s.Workflow, s.Status, s.Error)
		}
		if s.FinishedSec > res.BatchSec {
			res.BatchSec = s.FinishedSec
		}
		runIDs = append(runIDs, s.ID)
	}
	res.OOMKills = p.FaultStats().OOMKills
	for _, ev := range p.TraceForRun(runA.ID()) {
		if ev.Type == trace.EvCheckpointRestore {
			res.Restores++
		}
	}
	res.ReExecutedOps = reExecutedOps(p.TraceForRun(runA.ID()))

	sort.Strings(runIDs)
	var buf bytes.Buffer
	for _, id := range runIDs {
		fmt.Fprintf(&buf, "# run %s\n", id)
		if err := trace.WriteJSONL(&buf, p.TraceForRun(id)); err != nil {
			return nil, err
		}
	}
	res.traces = buf.Bytes()
	return res, nil
}
