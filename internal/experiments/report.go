// Package experiments reproduces every table and figure of the paper's
// evaluation (D3.3 §4 and the MuSQLE appendix): each harness regenerates
// the corresponding plot's series or table rows. Absolute numbers come from
// the simulated engine substrate; the shapes — who wins, by what factor,
// where crossovers and failure walls fall — are the reproduction targets
// (see EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample; Failed marks configurations that could not
// run (e.g. OOM), which the paper plots as truncated lines.
type Point struct {
	X      float64
	Y      float64
	Failed bool
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Table is one table of a report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is the output of one experiment harness.
type Report struct {
	ID     string // e.g. "FIG11"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Tables []Table
	Notes  []string
}

// AddSeries appends a series.
func (r *Report) AddSeries(label string, pts ...Point) {
	r.Series = append(r.Series, Series{Label: label, Points: pts})
}

// Note appends a free-form observation.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render prints the report as aligned text (the textual equivalent of the
// paper's figure).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		fmt.Fprintf(&b, "%s vs %s\n", r.YLabel, r.XLabel)
		// Collect the x domain.
		xs := map[float64]bool{}
		for _, s := range r.Series {
			for _, p := range s.Points {
				xs[p.X] = true
			}
		}
		domain := make([]float64, 0, len(xs))
		for x := range xs {
			domain = append(domain, x)
		}
		sortFloats(domain)

		fmt.Fprintf(&b, "%14s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "%16s", s.Label)
		}
		b.WriteByte('\n')
		for _, x := range domain {
			fmt.Fprintf(&b, "%14s", fmtNum(x))
			for _, s := range r.Series {
				cell := "-"
				for _, p := range s.Points {
					if p.X == x {
						if p.Failed {
							cell = "FAIL"
						} else {
							cell = fmtNum(p.Y)
						}
					}
				}
				fmt.Fprintf(&b, "%16s", cell)
			}
			b.WriteByte('\n')
		}
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "-- %s --\n", t.Title)
		for _, h := range t.Header {
			fmt.Fprintf(&b, "%18s", h)
		}
		b.WriteByte('\n')
		for _, row := range t.Rows {
			for _, c := range row {
				fmt.Fprintf(&b, "%18s", c)
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SeriesByLabel fetches a series.
func (r *Report) SeriesByLabel(label string) (Series, bool) {
	for _, s := range r.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// YAt returns the series value at x.
func (s Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x && !p.Failed {
			return p.Y, true
		}
	}
	return 0, false
}

// FailedAt reports whether the series failed at x.
func (s Series) FailedAt(x float64) bool {
	for _, p := range s.Points {
		if p.X == x {
			return p.Failed
		}
	}
	return false
}

func fmtNum(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e6:
		return fmt.Sprintf("%.0f", v)
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
