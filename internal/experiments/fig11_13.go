package experiments

import (
	"fmt"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
)

// singleEngineSec computes the "run the whole workflow natively on one
// engine" baseline: the sum of simulated operator runs on that engine,
// without any IReS machinery. Runs draw from the same run-to-run noise
// distribution as IReS-managed executions, keeping the comparison fair.
// ok=false marks an infeasible run (OOM or engine down).
func singleEngineSec(env *engine.Environment, eng string, steps []baselineStep) (float64, bool) {
	total := 0.0
	for _, s := range steps {
		res := engine.StandardCluster
		if p, ok := env.Engine(eng); ok && p.Centralized {
			res = engine.SingleNode
		}
		run, err := env.Execute(eng, s.alg, engine.Input{Records: s.records, Bytes: s.bytes, Params: s.params}, res, 0)
		if err != nil {
			return 0, false
		}
		total += run.ExecTimeSec
	}
	return total, true
}

type baselineStep struct {
	alg     string
	records int64
	bytes   int64
	params  map[string]float64
}

// iresRunSec plans and executes the workflow on the platform, returning the
// simulated makespan.
func iresRunSec(p *ires.Platform, wf *ires.Workflow) (float64, bool) {
	plan, err := p.Plan(wf)
	if err != nil {
		return 0, false
	}
	res, err := p.Execute(wf, plan)
	if err != nil {
		return 0, false
	}
	return res.Makespan.Seconds(), true
}

// Fig11 reproduces Figure 11: graph analytics (PageRank over CDR graphs)
// execution time vs edge count, for Java, Hama, Spark and IReS.
func Fig11(seed int64) (*Report, error) {
	p, err := GraphPlatform(seed)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "FIG11",
		Title:  "Graph analytics: execution time vs input size (single engines vs IReS)",
		XLabel: "edges",
		YLabel: "execution time (s)",
	}
	sizes := []int64{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
	for _, eng := range []string{ires.EngineJava, ires.EngineHama, ires.EngineSpark} {
		var pts []Point
		for _, n := range sizes {
			steps := []baselineStep{{alg: engine.AlgPagerank, records: n, bytes: n * 40,
				params: map[string]float64{"iterations": 10}}}
			sec, ok := singleEngineSec(p.Env, eng, steps)
			pts = append(pts, Point{X: float64(n), Y: sec, Failed: !ok})
		}
		r.AddSeries(eng, pts...)
	}
	var pts []Point
	for _, n := range sizes {
		wf, err := GraphWorkflow(p, n)
		if err != nil {
			return nil, err
		}
		sec, ok := iresRunSec(p, wf)
		pts = append(pts, Point{X: float64(n), Y: sec, Failed: !ok})
	}
	r.AddSeries("IReS", pts...)
	annotateWinner(r, sizes)
	return r, nil
}

// Fig12 reproduces Figure 12: text analytics (tf-idf -> k-means) execution
// time vs document count, for scikit, Spark and IReS (which may go hybrid).
func Fig12(seed int64) (*Report, error) {
	p, err := TextPlatform(seed)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "FIG12",
		Title:  "Text analytics: execution time vs input size (single engines vs IReS)",
		XLabel: "documents",
		YLabel: "execution time (s)",
	}
	sizes := []int64{1_000, 3_000, 5_000, 10_000, 30_000, 100_000, 1_000_000}
	for _, eng := range []string{ires.EngineScikit, ires.EngineSpark} {
		var pts []Point
		for _, n := range sizes {
			steps := []baselineStep{
				{alg: engine.AlgTFIDF, records: n, bytes: n * 5_000},
				{alg: engine.AlgKMeans, records: n, bytes: n * 2_500},
			}
			sec, ok := singleEngineSec(p.Env, eng, steps)
			pts = append(pts, Point{X: float64(n), Y: sec, Failed: !ok})
		}
		r.AddSeries(eng, pts...)
	}
	var pts []Point
	hybridAt := []int64{}
	for _, n := range sizes {
		wf, err := TextWorkflow(p, n)
		if err != nil {
			return nil, err
		}
		plan, err := p.Plan(wf)
		if err != nil {
			pts = append(pts, Point{X: float64(n), Failed: true})
			continue
		}
		if len(plan.Engines()) > 1 {
			hybridAt = append(hybridAt, n)
		}
		res, err := p.Execute(wf, plan)
		if err != nil {
			pts = append(pts, Point{X: float64(n), Failed: true})
			continue
		}
		pts = append(pts, Point{X: float64(n), Y: res.Makespan.Seconds()})
	}
	r.AddSeries("IReS", pts...)
	if len(hybridAt) > 0 {
		r.Note("hybrid multi-engine plans chosen at %v documents", hybridAt)
	}
	annotateWinner(r, sizes)
	return r, nil
}

// Fig13 reproduces Figure 13: the relational workflow (three SPJ queries
// over PostgreSQL/MemSQL/HDFS-resident tables plus a combining join) vs
// TPC-H scale, for each single engine and IReS.
func Fig13(seed int64) (*Report, error) {
	p, err := SQLPlatform(seed)
	if err != nil {
		return nil, err
	}
	if err := RegisterCombineOps(p); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "FIG13",
		Title:  "Relational analytics: execution time vs TPC-H scale (single engines vs IReS)",
		XLabel: "TPCH scale (GB)",
		YLabel: "execution time (s)",
	}
	scales := []float64{1, 2, 5, 10, 20, 50}
	rows := func(gb, frac float64) int64 { return int64(gb * 6_000_000 * frac) }

	for _, eng := range []string{ires.EnginePostgreSQL, ires.EngineMemSQL, ires.EngineSpark} {
		var pts []Point
		for _, gb := range scales {
			// Native single-engine run: all three queries plus the final
			// join execute on this engine; foreign tables must be shipped
			// in first.
			steps := []baselineStep{
				{alg: engine.AlgSQLQ1, records: rows(gb, 0.026), bytes: rows(gb, 0.026) * 170},
				{alg: engine.AlgSQLQ2, records: rows(gb, 0.07), bytes: rows(gb, 0.07) * 170},
				{alg: engine.AlgSQLQ3, records: rows(gb, 1.0), bytes: rows(gb, 1.0) * 170},
				{alg: engine.AlgJoin, records: rows(gb, 0.05), bytes: rows(gb, 0.05) * 170},
			}
			sec, ok := singleEngineSec(p.Env, eng, steps)
			if ok {
				// Data movement into the engine: everything not already
				// resident there (approximate: 2 of the 3 table groups).
				foreignBytes := int64(0)
				switch eng {
				case ires.EnginePostgreSQL:
					foreignBytes = (rows(gb, 0.07) + rows(gb, 1.0)) * 170
				case ires.EngineMemSQL:
					foreignBytes = (rows(gb, 0.026) + rows(gb, 1.0)) * 170
				case ires.EngineSpark:
					foreignBytes = (rows(gb, 0.026) + rows(gb, 0.07)) * 170
				}
				sec += p.Env.TransferSec(foreignBytes)
			}
			pts = append(pts, Point{X: gb, Y: sec, Failed: !ok})
		}
		r.AddSeries(eng, pts...)
	}

	var pts []Point
	for _, gb := range scales {
		wf, err := SQLWorkflow(p, gb)
		if err != nil {
			return nil, err
		}
		sec, ok := iresRunSec(p, wf)
		pts = append(pts, Point{X: gb, Y: sec, Failed: !ok})
	}
	r.AddSeries("IReS", pts...)
	r.Note("IReS runs q1 in PostgreSQL, q2 in MemSQL, q3 in Spark (minimal movements)")
	annotateWinner(r, nil)
	return r, nil
}

// annotateWinner records, per x, the fastest series — quick textual
// confirmation of who wins where.
func annotateWinner(r *Report, _ []int64) {
	if len(r.Series) == 0 {
		return
	}
	xs := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	domain := make([]float64, 0, len(xs))
	for x := range xs {
		domain = append(domain, x)
	}
	sortFloats(domain)
	for _, x := range domain {
		bestLabel := ""
		bestY := 0.0
		for _, s := range r.Series {
			if y, ok := s.YAt(x); ok && (bestLabel == "" || y < bestY) {
				bestLabel, bestY = s.Label, y
			}
		}
		if bestLabel != "" {
			r.Note("x=%s fastest: %s (%.1fs)", fmtNum(x), bestLabel, bestY)
		}
	}
}

// SpeedupOverBestSingle computes IReS's speedup over the best single-engine
// series at x (>1 means IReS wins).
func SpeedupOverBestSingle(r *Report, x float64) (float64, error) {
	iresSeries, ok := r.SeriesByLabel("IReS")
	if !ok {
		return 0, fmt.Errorf("experiments: no IReS series")
	}
	iresY, ok := iresSeries.YAt(x)
	if !ok {
		return 0, fmt.Errorf("experiments: IReS failed at %v", x)
	}
	best := 0.0
	found := false
	for _, s := range r.Series {
		if s.Label == "IReS" {
			continue
		}
		if y, ok := s.YAt(x); ok && (!found || y < best) {
			best, found = y, true
		}
	}
	if !found {
		return 0, fmt.Errorf("experiments: every single engine failed at %v", x)
	}
	return best / iresY, nil
}
