package experiments

import (
	"fmt"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/model"
)

// fastFactories is the reduced model zoo the experiment harnesses use so a
// full evaluation run stays in the seconds range. (Fig 16 uses its own
// richer set.)
func fastFactories(seed int64) []model.Factory {
	return []model.Factory{
		func() model.Model { return model.NewLinear() },
		func() model.Model { return model.NewKNN(2) },
		func() model.Model { return model.NewTree(8, 2) },
	}
}

// GraphPlatform builds a platform with the paper's three PageRank
// implementations (Java, Hama, Spark) registered and profiled — the Fig 11
// setup.
func GraphPlatform(seed int64) (*ires.Platform, error) {
	p, err := ires.NewPlatform(ires.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	p.Profiler.Factories = fastFactories(seed)
	ops := map[string]string{
		"pagerank_java":  pagerankDesc(ires.EngineJava),
		"pagerank_hama":  pagerankDesc(ires.EngineHama),
		"pagerank_spark": pagerankDesc(ires.EngineSpark),
	}
	for name, desc := range ops {
		if err := p.RegisterOperator(name, desc); err != nil {
			return nil, err
		}
	}
	resFor := func(eng string) []engine.Resources {
		if eng == ires.EngineJava {
			return []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
		}
		return []engine.Resources{
			{Nodes: 8, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
		}
	}
	records := []int64{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 200_000_000}
	for name := range ops {
		mo, _ := p.Library.Operator(name)
		space := ires.ProfileSpace{
			Records:        records,
			BytesPerRecord: 40,
			Params:         map[string][]float64{"iterations": {10}},
			Resources:      resFor(mo.Engine()),
		}
		if _, err := p.ProfileOperator(name, space); err != nil {
			return nil, fmt.Errorf("profiling %s: %w", name, err)
		}
	}
	return p, nil
}

func pagerankDesc(eng string) string {
	return "Constraints.Engine=" + eng + `
Constraints.OpSpecification.Algorithm.name=pagerank
Constraints.Input.number=1
Constraints.Output.number=1
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
Optimization.param.iterations=10
`
}

// GraphWorkflow builds the CDR influence workflow: cdr -> pagerank -> scores.
func GraphWorkflow(p *ires.Platform, edges int64) (*ires.Workflow, error) {
	return p.NewWorkflow().
		DatasetWithMeta("cdr",
			"Constraints.Engine.FS=HDFS\nConstraints.type=csv\nExecution.path=hdfs:///cdr"+
				fmt.Sprintf("\nOptimization.documents=%d\nOptimization.size=%d", edges, edges*40)).
		Operator("pagerank", "Constraints.OpSpecification.Algorithm.name=pagerank").
		Dataset("scores").
		Chain("cdr", "pagerank", "scores").
		Target("scores").
		Build()
}

// TextPlatform builds the Fig 12 setup: tf-idf and k-means on scikit
// (centralized) and Spark/MLlib (distributed), profiled.
func TextPlatform(seed int64) (*ires.Platform, error) {
	p, err := ires.NewPlatform(ires.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := profileTextOps(p, seed); err != nil {
		return nil, err
	}
	return p, nil
}

// profileTextOps registers and profiles the Fig 12 operator pairs on an
// existing platform (the scheduler-contention experiment builds its platforms
// with non-default admission policies).
func profileTextOps(p *ires.Platform, seed int64) error {
	p.Profiler.Factories = fastFactories(seed)
	ops := map[string]string{
		"tfidf_scikit":  textDesc(ires.EngineScikit, "TF_IDF", "LFS", "csv"),
		"tfidf_spark":   textDesc(ires.EngineSpark, "TF_IDF", "HDFS", "SequenceFile"),
		"kmeans_scikit": textDesc(ires.EngineScikit, "kmeans", "LFS", "csv"),
		"kmeans_spark":  textDesc(ires.EngineSpark, "kmeans", "HDFS", "SequenceFile"),
	}
	for name, desc := range ops {
		if err := p.RegisterOperator(name, desc); err != nil {
			return err
		}
	}
	for name := range ops {
		mo, _ := p.Library.Operator(name)
		res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
		if mo.Engine() == ires.EngineScikit {
			res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
		}
		space := ires.ProfileSpace{
			Records:        []int64{1_000, 3_000, 10_000, 30_000, 100_000, 1_000_000},
			BytesPerRecord: 5_000,
			Resources:      res,
		}
		if _, err := p.ProfileOperator(name, space); err != nil {
			return fmt.Errorf("profiling %s: %w", name, err)
		}
	}
	return nil
}

func textDesc(eng, alg, fs, typ string) string {
	return "Constraints.Engine=" + eng +
		"\nConstraints.OpSpecification.Algorithm.name=" + alg +
		"\nConstraints.Input0.Engine.FS=" + fs +
		"\nConstraints.Input0.type=" + typ +
		"\nConstraints.Output0.Engine.FS=" + fs +
		"\nConstraints.Output0.type=" + typ + "\n"
}

// TextWorkflow builds web-content -> tf-idf -> d1 -> k-means -> clusters.
func TextWorkflow(p *ires.Platform, docs int64) (*ires.Workflow, error) {
	return p.NewWorkflow().
		DatasetWithMeta("webContent",
			"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///warc"+
				fmt.Sprintf("\nOptimization.documents=%d\nOptimization.size=%d", docs, docs*5_000)).
		Operator("tfidf", "Constraints.OpSpecification.Algorithm.name=TF_IDF").
		Operator("kmeans", "Constraints.OpSpecification.Algorithm.name=kmeans").
		Dataset("d1").
		Dataset("clusters").
		Chain("webContent", "tfidf", "d1", "kmeans", "clusters").
		Target("clusters").
		Build()
}

// SQLPlatform builds the Fig 13 setup: the three SPJ queries as black-box
// operators, each implemented on PostgreSQL, MemSQL and Spark, with input
// tables resident in their home stores.
func SQLPlatform(seed int64) (*ires.Platform, error) {
	p, err := ires.NewPlatform(ires.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	p.Profiler.Factories = fastFactories(seed)
	engines := []string{ires.EnginePostgreSQL, ires.EngineMemSQL, ires.EngineSpark}
	fsOf := map[string]string{
		ires.EnginePostgreSQL: "PostgreSQL",
		ires.EngineMemSQL:     "MemSQL",
		ires.EngineSpark:      "HDFS",
	}
	for q := 1; q <= 3; q++ {
		for _, eng := range engines {
			name := fmt.Sprintf("sql_q%d_%s", q, eng)
			desc := "Constraints.Engine=" + eng +
				fmt.Sprintf("\nConstraints.OpSpecification.Algorithm.name=sql_q%d", q) +
				"\nConstraints.Input0.Engine.FS=" + fsOf[eng] +
				"\nConstraints.Output0.Engine.FS=" + fsOf[eng] + "\n"
			if err := p.RegisterOperator(name, desc); err != nil {
				return nil, err
			}
			res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
			if eng == ires.EnginePostgreSQL {
				res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
			}
			space := ires.ProfileSpace{
				// One record ~ one scanned row; 1GB ~ 6M rows. The grid
				// covers the full operating range of Fig 13 (1-50GB, with
				// the q1/q2 subsets reaching down to ~150k rows).
				Records: []int64{150_000, 600_000, 3_000_000, 12_000_000,
					60_000_000, 150_000_000, 300_000_000},
				BytesPerRecord: 170,
				Resources:      res,
			}
			if _, err := p.ProfileOperator(name, space); err != nil {
				return nil, fmt.Errorf("profiling %s: %w", name, err)
			}
		}
	}
	return p, nil
}

// SQLWorkflow builds the relational workflow at a TPC-H scale (GB): the
// three queries read their resident table groups and a final Spark join
// combines them. Row counts follow TPC-H proportions (~6M rows/GB for the
// fact tables, ~7% for the medium group, ~2.6% for the small group).
func SQLWorkflow(p *ires.Platform, scaleGB float64) (*ires.Workflow, error) {
	rows := func(frac float64) int64 { return int64(scaleGB * 6_000_000 * frac) }
	ds := func(name, fs string, records int64) string {
		return "Constraints.Engine.FS=" + fs + "\nExecution.path=" + fs + ":///" + name +
			fmt.Sprintf("\nOptimization.documents=%d\nOptimization.size=%d", records, records*170)
	}
	return p.NewWorkflow().
		DatasetWithMeta("legacyTables", ds("legacy", "PostgreSQL", rows(0.026))).
		DatasetWithMeta("mediumTables", ds("medium", "MemSQL", rows(0.07))).
		DatasetWithMeta("factTables", ds("fact", "HDFS", rows(1.0))).
		Operator("q1", "Constraints.OpSpecification.Algorithm.name=sql_q1").
		Operator("q2", "Constraints.OpSpecification.Algorithm.name=sql_q2").
		Operator("q3", "Constraints.OpSpecification.Algorithm.name=sql_q3").
		Dataset("r1").Dataset("r2").Dataset("r3").
		Operator("combine", "Constraints.OpSpecification.Algorithm.name=join").
		Dataset("result").
		Chain("legacyTables", "q1", "r1", "combine").
		Chain("mediumTables", "q2", "r2", "combine").
		Chain("factTables", "q3", "r3", "combine").
		Connect("combine", "result").
		Target("result").
		Build()
}

// RegisterCombineOps registers the final-join implementations for the SQL
// workflow and profiles them.
func RegisterCombineOps(p *ires.Platform) error {
	for _, eng := range []string{ires.EngineSpark, ires.EnginePostgreSQL} {
		fs := "HDFS"
		res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
		if eng == ires.EnginePostgreSQL {
			fs = "PostgreSQL"
			res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
		}
		name := "join_" + eng
		desc := "Constraints.Engine=" + eng +
			"\nConstraints.OpSpecification.Algorithm.name=join" +
			"\nConstraints.Input0.Engine.FS=" + fs +
			"\nConstraints.Input1.Engine.FS=" + fs +
			"\nConstraints.Input2.Engine.FS=" + fs +
			"\nConstraints.Output0.Engine.FS=" + fs + "\n"
		if err := p.RegisterOperator(name, desc); err != nil {
			return err
		}
		space := ires.ProfileSpace{
			Records:        []int64{50_000, 200_000, 1_000_000, 5_000_000, 20_000_000},
			BytesPerRecord: 170,
			Resources:      res,
		}
		if _, err := p.ProfileOperator(name, space); err != nil {
			return err
		}
	}
	return nil
}
