package experiments

import (
	"strings"
	"testing"
)

// TestFaultSweepAcceptance pins the headline robustness claim: across the
// sweep, the full recovery policy completes every seeded workload, including
// every fault rate at which replan-only exhausts its replan budget, and the
// hardening machinery (retries, speculation, container-loss detection)
// demonstrably engages.
func TestFaultSweepAcceptance(t *testing.T) {
	rows, err := FaultSweepRows(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(faultSweepRates)*3 {
		t.Fatalf("got %d rows, want %d", len(rows), len(faultSweepRates)*3)
	}
	replanOnlyFailed := false
	var retries, specLaunches, ctrsLost int
	for _, row := range rows {
		if row.Strategy == "full" {
			if !row.Completed {
				t.Errorf("full policy failed at rate %.2f: %s", row.Rate, row.Outcome)
			}
			retries += row.Retries
			specLaunches += row.SpecLaunches
			ctrsLost += row.CtrsLost
		}
		if row.Strategy == "replan-only" && !row.Completed {
			replanOnlyFailed = true
		}
		if row.Rate == 0 && !row.Completed {
			t.Errorf("%s failed with zero faults: %s", row.Strategy, row.Outcome)
		}
	}
	if !replanOnlyFailed {
		t.Error("replan-only never exhausted its budget; the sweep shows no contrast")
	}
	if retries == 0 {
		t.Error("full policy recorded zero retries across the sweep")
	}
	if specLaunches == 0 {
		t.Error("full policy never launched a speculative copy")
	}
	if ctrsLost == 0 {
		t.Error("node crashes never cost a container")
	}

	rep, err := FaultSweep(42)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	if !strings.Contains(out, "full policy completed every workload") {
		t.Fatalf("report lost its headline note:\n%s", out)
	}
}
