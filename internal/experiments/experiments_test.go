package experiments

import (
	"strings"
	"testing"
)

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(42)
	if err != nil {
		t.Fatal(err)
	}
	java, _ := r.SeriesByLabel("Java")
	hama, _ := r.SeriesByLabel("Hama")
	spark, _ := r.SeriesByLabel("Spark")
	iresS, ok := r.SeriesByLabel("IReS")
	if !ok {
		t.Fatal("missing IReS series")
	}

	// Regime winners.
	jy, _ := java.YAt(10_000)
	hy, _ := hama.YAt(10_000)
	sy, _ := spark.YAt(10_000)
	if !(jy < hy && jy < sy) {
		t.Errorf("10k edges: Java should win (%v %v %v)", jy, hy, sy)
	}
	jy, _ = java.YAt(10_000_000)
	hy, _ = hama.YAt(10_000_000)
	sy, _ = spark.YAt(10_000_000)
	if !(hy < jy && hy < sy) {
		t.Errorf("10M edges: Hama should win (%v %v %v)", jy, hy, sy)
	}
	// Memory walls.
	if !java.FailedAt(100_000_000) || !hama.FailedAt(100_000_000) {
		t.Error("Java and Hama must fail at 100M edges")
	}
	if spark.FailedAt(100_000_000) || iresS.FailedAt(100_000_000) {
		t.Error("Spark and IReS must survive 100M edges")
	}
	// IReS tracks the best single engine within overhead everywhere.
	for _, x := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} {
		iy, ok := iresS.YAt(x)
		if !ok {
			t.Fatalf("IReS failed at %v", x)
		}
		best := bestSingleAt(r, x)
		if iy > best*1.5+5 {
			t.Errorf("IReS at %v edges: %.1fs vs best single %.1fs", x, iy, best)
		}
	}
}

func bestSingleAt(r *Report, x float64) float64 {
	best := 0.0
	found := false
	for _, s := range r.Series {
		if s.Label == "IReS" {
			continue
		}
		if y, ok := s.YAt(x); ok && (!found || y < best) {
			best, found = y, true
		}
	}
	return best
}

func TestFig12HybridSpeedup(t *testing.T) {
	r, err := Fig12(42)
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid plans must appear somewhere in the mid-range.
	hybridSeen := false
	for _, n := range r.Notes {
		if strings.Contains(n, "hybrid multi-engine plans") {
			hybridSeen = true
		}
	}
	if !hybridSeen {
		t.Error("no hybrid plan chosen anywhere (paper: hybrid zone 10k-40k docs)")
	}
	// IReS must strictly beat the best single engine at at least one size —
	// the paper's headline up-to-30% claim.
	beat := false
	for _, x := range []float64{1e3, 3e3, 5e3, 1e4, 3e4, 1e5} {
		if sp, err := SpeedupOverBestSingle(r, x); err == nil && sp > 1.02 {
			beat = true
		}
	}
	if !beat {
		t.Error("IReS never beat the fastest single-engine execution")
	}
	// And must never be drastically worse than the best single engine.
	// (At the very smallest sizes the fixed planning/launch overheads and
	// boundary model error dominate — the paper's "overhead is visible for
	// small input sizes" — so the guard is looser there.)
	for _, x := range []float64{1e4, 1e5, 1e6} {
		if sp, err := SpeedupOverBestSingle(r, x); err == nil && sp < 0.65 {
			t.Errorf("IReS at %v docs is %.2fx the best single engine", x, sp)
		}
	}
	if sp, err := SpeedupOverBestSingle(r, 1e3); err == nil && sp < 0.45 {
		t.Errorf("IReS at 1k docs is %.2fx the best single engine", sp)
	}
	// scikit OOMs at 1M docs.
	scikit, _ := r.SeriesByLabel("scikit")
	if !scikit.FailedAt(1_000_000) {
		t.Error("scikit should fail at 1M documents")
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Fig13(42)
	if err != nil {
		t.Fatal(err)
	}
	memsql, _ := r.SeriesByLabel("MemSQL")
	postgres, _ := r.SeriesByLabel("PostgreSQL")
	iresS, _ := r.SeriesByLabel("IReS")
	// MemSQL works at <=2GB and fails beyond (intermediate results exceed
	// cluster memory).
	if memsql.FailedAt(1) || memsql.FailedAt(2) {
		t.Error("MemSQL should handle <=2GB")
	}
	for _, x := range []float64{5, 10, 20, 50} {
		if !memsql.FailedAt(x) {
			t.Errorf("MemSQL should fail at %vGB", x)
		}
	}
	// PostgreSQL's transfer costs are prohibitive at scale.
	py, _ := postgres.YAt(50)
	iy, ok := iresS.YAt(50)
	if !ok || py < iy*3 {
		t.Errorf("PostgreSQL at 50GB (%.0fs) should be far above IReS (%.0fs)", py, iy)
	}
	// IReS stays within 25% of the best feasible choice at every scale.
	for _, x := range []float64{1, 2, 5, 10, 20, 50} {
		iy, ok := iresS.YAt(x)
		if !ok {
			t.Fatalf("IReS failed at %vGB", x)
		}
		if best := bestSingleAt(r, x); iy > best*1.25 {
			t.Errorf("IReS at %vGB: %.0fs vs best single %.0fs", x, iy, best)
		}
	}
}

func TestFig14PlannerScaling(t *testing.T) {
	reports, err := Fig14([]int{30, 100, 300}, []int{4, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		for _, s := range r.Series {
			for _, p := range s.Points {
				if p.Y > 5.0 {
					t.Errorf("%s/%s: %.2fs at %v nodes exceeds the paper's bound", r.ID, s.Label, p.Y, p.X)
				}
			}
			// Monotone-ish growth with size.
			y30, _ := s.YAt(30)
			y300, _ := s.YAt(300)
			if y300 < y30 {
				t.Errorf("%s/%s: time shrank with workflow size", r.ID, s.Label)
			}
		}
	}
	// More engines cost more planning time (m^2 term), comparing totals.
	tot := func(r *Report) float64 {
		sum := 0.0
		for _, s := range r.Series {
			for _, p := range s.Points {
				sum += p.Y
			}
		}
		return sum
	}
	if tot(reports[1]) <= tot(reports[0]) {
		t.Error("8 engines should plan slower than 4 engines in aggregate")
	}
}

func TestFig15EngineScaling(t *testing.T) {
	reports, err := Fig15([]int{30, 100}, []int{2, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		two, ok2 := r.SeriesByLabel("2 engines")
		eight, ok8 := r.SeriesByLabel("8 engines")
		if !ok2 || !ok8 {
			t.Fatalf("%s: missing series", r.ID)
		}
		y2, _ := two.YAt(100)
		y8, _ := eight.YAt(100)
		if y8 <= y2 {
			t.Errorf("%s: 8 engines (%.4fs) not slower than 2 (%.4fs)", r.ID, y8, y2)
		}
	}
}

func TestFig16aErrorDrops(t *testing.T) {
	r, err := Fig16a(60, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		first := s.Points[0].Y
		last := s.Points[len(s.Points)-1].Y
		if last >= first {
			t.Errorf("%s: error did not drop (%.3f -> %.3f)", s.Label, first, last)
		}
		// Paper: below 30% after ~50 runs.
		y, ok := s.YAt(50)
		if !ok {
			y = last
		}
		if y > 0.30 {
			t.Errorf("%s: error at 50 runs = %.3f, want < 0.30", s.Label, y)
		}
	}
}

func TestFig16bSpikeAndRecovery(t *testing.T) {
	r, err := Fig16b(160, 80, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series[0]
	before, _ := s.YAt(80)
	spike, _ := s.YAt(90)
	final := s.Points[len(s.Points)-1].Y
	if spike <= before {
		t.Errorf("no error spike after infrastructure change (%.3f -> %.3f)", before, spike)
	}
	if final >= spike {
		t.Errorf("models did not recover (spike %.3f, final %.3f)", spike, final)
	}
	if final > 0.35 {
		t.Errorf("final error %.3f too high", final)
	}
}

func TestFig17ProvisioningShape(t *testing.T) {
	timeR, costR, err := Fig17(9)
	if err != nil {
		t.Fatal(err)
	}
	maxT, _ := timeR.SeriesByLabel("max resources")
	minT, _ := timeR.SeriesByLabel("min resources")
	iresT, _ := timeR.SeriesByLabel("IReS")
	maxC, _ := costR.SeriesByLabel("max resources")
	minC, _ := costR.SeriesByLabel("min resources")
	iresC, _ := costR.SeriesByLabel("IReS")

	for _, x := range []float64{1e3, 1e4, 1e5, 1e6, 1e7} {
		tMax, _ := maxT.YAt(x)
		tMin, _ := minT.YAt(x)
		tIres, ok := iresT.YAt(x)
		if !ok {
			t.Fatalf("IReS failed at %v", x)
		}
		// IReS time close to max-resources, far from min at scale.
		if tIres > tMax*1.8+5 {
			t.Errorf("IReS time at %v: %.1f vs max-resources %.1f", x, tIres, tMax)
		}
		if x >= 1e6 && tIres > tMin*0.8 {
			t.Errorf("IReS at %v should be well below min-resources (%.1f vs %.1f)", x, tIres, tMin)
		}
		// Cost strictly between the static strategies.
		cMax, _ := maxC.YAt(x)
		cMin, _ := minC.YAt(x)
		cIres, _ := iresC.YAt(x)
		if !(cIres >= cMin*0.9 && cIres <= cMax*1.1) {
			t.Errorf("IReS cost at %v (%.0f) outside [min %.0f, max %.0f]", x, cIres, cMin, cMax)
		}
	}
}

func TestFaultToleranceClaims(t *testing.T) {
	r, err := FaultTolerance(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 9 {
		t.Fatalf("expected 9 rows, got %+v", r.Tables)
	}
	// Parse the table back into scenario -> strategy -> exec time.
	exec := map[string]map[string]float64{}
	for _, row := range r.Tables[0].Rows {
		if exec[row[0]] == nil {
			exec[row[0]] = map[string]float64{}
		}
		var v float64
		if _, err := sscanFloat(row[2], &v); err != nil {
			t.Fatal(err)
		}
		exec[row[0]][row[1]] = v
	}
	for scenario, byStrat := range exec {
		if byStrat["IResReplan"] > byStrat["TrivialReplan"]*1.02 {
			t.Errorf("%s: IResReplan (%.1f) worse than TrivialReplan (%.1f)",
				scenario, byStrat["IResReplan"], byStrat["TrivialReplan"])
		}
	}
	// The later the failure, the bigger the relative gain vs Trivial.
	gain := func(s string) float64 {
		return 1 - exec[s]["IResReplan"]/exec[s]["TrivialReplan"]
	}
	if gain("HelloWorld3 fails") <= gain("HelloWorld1 fails") {
		t.Errorf("late failure gain (%.2f) not above early failure gain (%.2f)",
			gain("HelloWorld3 fails"), gain("HelloWorld1 fails"))
	}
}

func sscanFloat(s string, v *float64) (int, error) {
	var parsed float64
	var frac, div float64 = 0, 1
	neg := false
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	seenDot := false
	for ; i < len(s); i++ {
		c := s[i]
		if c == '.' {
			seenDot = true
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		if seenDot {
			div *= 10
			frac = frac*10 + float64(c-'0')
		} else {
			parsed = parsed*10 + float64(c-'0')
		}
	}
	parsed += frac / div
	if neg {
		parsed = -parsed
	}
	*v = parsed
	return 1, nil
}

func TestMusqleOptTimeBounded(t *testing.T) {
	r, err := MusqleOptTime(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Series[0].Points {
		if p.Y > 1.0 {
			t.Errorf("optimization at %v tables took %.2fs", p.X, p.Y)
		}
	}
	r2, err := MusqleEngineScaling(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Series) != 3 {
		t.Fatalf("series = %d", len(r2.Series))
	}
}

func TestMusqleExecNeverWorse(t *testing.T) {
	r, err := MusqleExec(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := r.SeriesByLabel("MuSQLE")
	for _, p := range mu.Points {
		if p.Failed {
			t.Errorf("MuSQLE failed on query %v", p.X)
			continue
		}
		for _, s := range r.Series {
			if s.Label == "MuSQLE" {
				continue
			}
			if y, ok := s.YAt(p.X); ok && p.Y > y*1.001 {
				t.Errorf("query %v: MuSQLE %.2f worse than forced %s %.2f", p.X, p.Y, s.Label, y)
			}
		}
	}
}

func TestMusqleCorrectnessAllPass(t *testing.T) {
	r, err := MusqleCorrectness(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("query %s produced wrong results", row[0])
		}
	}
}

func TestAblationDPMatchesExhaustive(t *testing.T) {
	r, err := AblationDPvsExhaustive(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.HasPrefix(n, "MISMATCH") {
			t.Error(n)
		}
	}
	dp, _ := r.SeriesByLabel("DP planner")
	ex, _ := r.SeriesByLabel("exhaustive")
	dpY, _ := dp.YAt(12)
	exY, _ := ex.YAt(12)
	if exY < dpY {
		t.Errorf("exhaustive (%.4fs) should be slower than DP (%.4fs) at 12 ops", exY, dpY)
	}
}

func TestAblationModelSelection(t *testing.T) {
	r, err := AblationModelSelection(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables[0].Rows) < 5 {
		t.Fatal("too few strategies compared")
	}
}

func TestSchedContentionPoliciesDiffer(t *testing.T) {
	r, err := SchedContention(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 3 {
		t.Fatalf("expected one table with 3 policy rows, got %+v", r.Tables)
	}
	// Parse the summary table back into policy -> (batch, mean makespan, peak).
	type row struct {
		batch, mean float64
		peak        string
	}
	byPolicy := map[string]row{}
	for _, tr := range r.Tables[0].Rows {
		var b, m float64
		if _, err := sscanFloat(tr[1], &b); err != nil {
			t.Fatal(err)
		}
		if _, err := sscanFloat(tr[2], &m); err != nil {
			t.Fatal(err)
		}
		byPolicy[tr[0]] = row{batch: b, mean: m, peak: tr[4]}
	}
	fifo, fair := byPolicy["FIFO"], byPolicy["FairShare(2)"]
	// FIFO never overlaps; fair-share must.
	if fifo.peak != "1" {
		t.Errorf("FIFO peak concurrency = %s, want 1", fifo.peak)
	}
	if fair.peak == "0" || fair.peak == "1" {
		t.Errorf("FairShare(2) peak concurrency = %s, want >1", fair.peak)
	}
	// The acceptance criterion: the policies produce measurably different
	// makespans on the identical burst (>5% apart both per-run and per-batch).
	relDiff := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d / b
	}
	if relDiff(fifo.mean, fair.mean) < 0.05 {
		t.Errorf("mean makespans indistinguishable: FIFO %.1fs vs FairShare(2) %.1fs", fifo.mean, fair.mean)
	}
	if relDiff(fifo.batch, fair.batch) < 0.05 {
		t.Errorf("batch completion indistinguishable: FIFO %.1fs vs FairShare(2) %.1fs", fifo.batch, fair.batch)
	}
	// Overlapped runs lease fewer nodes each, so their individual makespans
	// must stretch relative to whole-cluster FIFO runs.
	if fair.mean <= fifo.mean {
		t.Errorf("FairShare(2) mean makespan %.1fs not above FIFO %.1fs", fair.mean, fifo.mean)
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "X", Title: "t", XLabel: "x", YLabel: "y"}
	r.AddSeries("a", Point{X: 1, Y: 2}, Point{X: 10, Y: 20, Failed: true})
	r.Tables = append(r.Tables, Table{Title: "tab", Header: []string{"h"}, Rows: [][]string{{"v"}}})
	r.Note("note %d", 1)
	out := r.Render()
	for _, frag := range []string{"== X: t ==", "FAIL", "tab", "note 1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
}
