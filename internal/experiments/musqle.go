package experiments

import (
	"fmt"
	"time"

	"github.com/asap-project/ires/internal/musqle"
	"github.com/asap-project/ires/internal/sqldata"
)

// MusqleOptTime reproduces MuSQLE Fig 4: optimization time vs query size
// (2-7 tables) for the real three-engine stack.
func MusqleOptTime(seed int64, reps int) (*Report, error) {
	cat := musqle.NewCatalog()
	if err := cat.LoadTPCH(sqldata.Generate(0.002, seed)); err != nil {
		return nil, err
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)

	r := &Report{
		ID:     "MQ-F4",
		Title:  "MuSQLE optimization time vs query size (3 engines)",
		XLabel: "tables in query",
		YLabel: "optimization time (s)",
	}
	var pts []Point
	for n := 2; n <= 7; n++ {
		var total time.Duration
		count := 0
		for rep := 0; rep < reps; rep++ {
			q, err := musqle.GenerateQuery(cat, n, rep%2 == 0, seed+int64(n*100+rep))
			if err != nil {
				return nil, err
			}
			plan, err := opt.Optimize(q)
			if err != nil {
				return nil, fmt.Errorf("opt %d tables: %w", n, err)
			}
			total += plan.OptimizationTime
			count++
		}
		pts = append(pts, Point{X: float64(n), Y: (total / time.Duration(count)).Seconds()})
	}
	r.AddSeries("3 engines", pts...)
	return r, nil
}

// MusqleEngineScaling reproduces MuSQLE Fig 5: optimization time vs query
// size for 2-6 synthetic engine APIs.
func MusqleEngineScaling(seed int64, reps int) (*Report, error) {
	r := &Report{
		ID:     "MQ-F5",
		Title:  "MuSQLE optimization time vs engine count (synthetic APIs)",
		XLabel: "tables in query",
		YLabel: "optimization time (s)",
	}
	for _, engines := range []int{2, 4, 6} {
		reg := musqle.SyntheticRegistry(engines)
		cat := musqle.NewCatalog()
		tables := sqldata.Generate(0.002, seed)
		for _, name := range sqldata.TableNames() {
			// Spread tables round-robin over the synthetic engines.
			eng := reg.Names()[len(cat.Tables())%engines]
			if err := cat.AddTable(tables[name], eng); err != nil {
				return nil, err
			}
		}
		opt := musqle.NewOptimizer(cat, reg)
		var pts []Point
		for n := 2; n <= 7; n++ {
			var total time.Duration
			count := 0
			for rep := 0; rep < reps; rep++ {
				q, err := musqle.GenerateQuery(cat, n, false, seed+int64(n*100+rep))
				if err != nil {
					return nil, err
				}
				plan, err := opt.Optimize(q)
				if err != nil {
					return nil, err
				}
				total += plan.OptimizationTime
				count++
			}
			pts = append(pts, Point{X: float64(n), Y: (total / time.Duration(count)).Seconds()})
		}
		r.AddSeries(fmt.Sprintf("%d engines", engines), pts...)
	}
	return r, nil
}

// MusqleExec reproduces MuSQLE Figs 8-10: per-query execution time of the
// 18-query workload under MuSQLE vs each engine forced, with tables in
// their home stores, at a given TPC-H scale factor. Physical data is
// generated at dataSF; statistics are scaled to statSF so plans reflect the
// target scale while execution (correctness) runs on in-memory data. The
// reported times are the engines' cost-model estimates at statSF.
func MusqleExec(seed int64, statSF float64) (*Report, error) {
	cat := musqle.NewCatalog()
	if err := cat.LoadTPCH(sqldata.Generate(0.002, seed)); err != nil {
		return nil, err
	}
	if statSF > 0 {
		if err := cat.ScaleStatsTo(statSF); err != nil {
			return nil, err
		}
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)
	queries, err := musqle.QuerySet18(cat)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     fmt.Sprintf("MQ-EXEC-%.0fGB", statSF),
		Title:  fmt.Sprintf("MuSQLE vs single engines, TPCH %.0fGB, home-store placement", statSF),
		XLabel: "query",
		YLabel: "estimated execution time (s)",
	}
	labels := append([]string{"MuSQLE"}, reg.Names()...)
	series := make(map[string][]Point, len(labels))
	wins := 0
	for qi, q := range queries {
		x := float64(qi)
		multi, err := opt.Optimize(q)
		if err != nil {
			series["MuSQLE"] = append(series["MuSQLE"], Point{X: x, Failed: true})
			continue
		}
		series["MuSQLE"] = append(series["MuSQLE"], Point{X: x, Y: multi.EstSec})
		bestSingle := 0.0
		anySingle := false
		for _, e := range reg.Names() {
			forced, err := opt.OptimizeOn(q, e)
			if err != nil {
				series[e] = append(series[e], Point{X: x, Failed: true})
				continue
			}
			series[e] = append(series[e], Point{X: x, Y: forced.EstSec})
			if !anySingle || forced.EstSec < bestSingle {
				bestSingle, anySingle = forced.EstSec, true
			}
		}
		if anySingle && multi.EstSec < bestSingle*0.95 {
			wins++
		}
	}
	for _, l := range labels {
		r.Series = append(r.Series, Series{Label: l, Points: series[l]})
	}
	r.Note("MuSQLE beats the best single engine by >5%% on %d of %d queries", wins, len(queries))
	return r, nil
}

// MusqleCorrectness executes the 18-query workload on physical data and
// verifies every multi-engine result against the reference executor —
// reported as a table (pass/fail, result sizes, simulated seconds).
func MusqleCorrectness(seed int64) (*Report, error) {
	cat := musqle.NewCatalog()
	// Tiny scale: the reference executor is a nested-loop oracle; some
	// generated star queries have inherently large outputs.
	if err := cat.LoadTPCH(sqldata.Generate(0.0004, seed)); err != nil {
		return nil, err
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)
	queries, err := musqle.QuerySet18(cat)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "MQ-CORRECT", Title: "MuSQLE multi-engine execution correctness (vs reference joins)"}
	table := Table{
		Title:  "18-query workload, physical execution",
		Header: []string{"query", "tables", "rows", "sim time (s)", "engines", "correct"},
	}
	for qi, q := range queries {
		plan, err := opt.Optimize(q)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %w", qi, err)
		}
		res, err := musqle.Execute(plan, q, cat, reg)
		if err != nil {
			return nil, fmt.Errorf("Q%d exec: %w", qi, err)
		}
		want, err := musqle.ReferenceExecute(q, cat)
		if err != nil {
			return nil, fmt.Errorf("Q%d ref: %w", qi, err)
		}
		ok := res.Table.NumRows() == want.NumRows()
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("Q%d", qi),
			fmt.Sprintf("%d", len(q.Tables)),
			fmt.Sprintf("%d", res.Table.NumRows()),
			fmt.Sprintf("%.3f", res.SimSec),
			fmt.Sprintf("%v", plan.EnginesUsed),
			fmt.Sprintf("%v", ok),
		})
		if !ok {
			r.Note("Q%d row-count mismatch: got %d want %d", qi, res.Table.NumRows(), want.NumRows())
		}
	}
	r.Tables = append(r.Tables, table)
	return r, nil
}
