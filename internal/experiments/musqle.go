package experiments

import (
	"fmt"
	"strconv"

	"github.com/asap-project/ires/internal/musqle"
	"github.com/asap-project/ires/internal/sqldata"
	"github.com/asap-project/ires/internal/trace"
)

// The MuSQLE figures keep their measurement bookkeeping in a trace.Registry
// rather than ad-hoc accumulators: each figure records observations under
// stable metric names and derives its report series from the registry, so
// the same numbers are one WritePrometheus call away from any exposition
// surface.
const (
	musqleOptSecondsMetric  = "musqle_opt_seconds"
	musqleExecEstSecMetric  = "musqle_exec_est_seconds"
	musqleExecTriedMetric   = "musqle_exec_attempted"
	musqleExecFailedMetric  = "musqle_exec_failed"
	musqleExecWinsMetric    = "musqle_exec_wins_total"
	musqleExecQueriesMetric = "musqle_exec_queries_total"
	musqleCorrectMetric     = "musqle_correct_total"
	musqleSimSecondsMetric  = "musqle_sim_seconds"
)

// MusqleOptTime reproduces MuSQLE Fig 4: optimization time vs query size
// (2-7 tables) for the real three-engine stack.
func MusqleOptTime(seed int64, reps int) (*Report, error) {
	cat := musqle.NewCatalog()
	if err := cat.LoadTPCH(sqldata.Generate(0.002, seed)); err != nil {
		return nil, err
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)

	metrics := trace.NewRegistry()
	metrics.Help(musqleOptSecondsMetric, "MuSQLE optimization time per query size")
	r := &Report{
		ID:     "MQ-F4",
		Title:  "MuSQLE optimization time vs query size (3 engines)",
		XLabel: "tables in query",
		YLabel: "optimization time (s)",
	}
	var pts []Point
	for n := 2; n <= 7; n++ {
		labels := map[string]string{"tables": strconv.Itoa(n)}
		for rep := 0; rep < reps; rep++ {
			q, err := musqle.GenerateQuery(cat, n, rep%2 == 0, seed+int64(n*100+rep))
			if err != nil {
				return nil, err
			}
			plan, err := opt.Optimize(q)
			if err != nil {
				return nil, fmt.Errorf("opt %d tables: %w", n, err)
			}
			metrics.Observe(musqleOptSecondsMetric, labels, plan.OptimizationTime.Seconds())
		}
		mean := metrics.HistogramSum(musqleOptSecondsMetric, labels) /
			metrics.HistogramCount(musqleOptSecondsMetric, labels)
		pts = append(pts, Point{X: float64(n), Y: mean})
	}
	r.AddSeries("3 engines", pts...)
	return r, nil
}

// MusqleEngineScaling reproduces MuSQLE Fig 5: optimization time vs query
// size for 2-6 synthetic engine APIs.
func MusqleEngineScaling(seed int64, reps int) (*Report, error) {
	metrics := trace.NewRegistry()
	metrics.Help(musqleOptSecondsMetric, "MuSQLE optimization time per engine count and query size")
	r := &Report{
		ID:     "MQ-F5",
		Title:  "MuSQLE optimization time vs engine count (synthetic APIs)",
		XLabel: "tables in query",
		YLabel: "optimization time (s)",
	}
	for _, engines := range []int{2, 4, 6} {
		reg := musqle.SyntheticRegistry(engines)
		cat := musqle.NewCatalog()
		tables := sqldata.Generate(0.002, seed)
		for _, name := range sqldata.TableNames() {
			// Spread tables round-robin over the synthetic engines.
			eng := reg.Names()[len(cat.Tables())%engines]
			if err := cat.AddTable(tables[name], eng); err != nil {
				return nil, err
			}
		}
		opt := musqle.NewOptimizer(cat, reg)
		var pts []Point
		for n := 2; n <= 7; n++ {
			labels := map[string]string{
				"engines": strconv.Itoa(engines),
				"tables":  strconv.Itoa(n),
			}
			for rep := 0; rep < reps; rep++ {
				q, err := musqle.GenerateQuery(cat, n, false, seed+int64(n*100+rep))
				if err != nil {
					return nil, err
				}
				plan, err := opt.Optimize(q)
				if err != nil {
					return nil, err
				}
				metrics.Observe(musqleOptSecondsMetric, labels, plan.OptimizationTime.Seconds())
			}
			mean := metrics.HistogramSum(musqleOptSecondsMetric, labels) /
				metrics.HistogramCount(musqleOptSecondsMetric, labels)
			pts = append(pts, Point{X: float64(n), Y: mean})
		}
		r.AddSeries(fmt.Sprintf("%d engines", engines), pts...)
	}
	return r, nil
}

// MusqleExec reproduces MuSQLE Figs 8-10: per-query execution time of the
// 18-query workload under MuSQLE vs each engine forced, with tables in
// their home stores, at a given TPC-H scale factor. Physical data is
// generated at dataSF; statistics are scaled to statSF so plans reflect the
// target scale while execution (correctness) runs on in-memory data. The
// reported times are the engines' cost-model estimates at statSF.
func MusqleExec(seed int64, statSF float64) (*Report, error) {
	cat := musqle.NewCatalog()
	if err := cat.LoadTPCH(sqldata.Generate(0.002, seed)); err != nil {
		return nil, err
	}
	if statSF > 0 {
		if err := cat.ScaleStatsTo(statSF); err != nil {
			return nil, err
		}
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)
	queries, err := musqle.QuerySet18(cat)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     fmt.Sprintf("MQ-EXEC-%.0fGB", statSF),
		Title:  fmt.Sprintf("MuSQLE vs single engines, TPCH %.0fGB, home-store placement", statSF),
		XLabel: "query",
		YLabel: "estimated execution time (s)",
	}
	metrics := trace.NewRegistry()
	metrics.Help(musqleExecEstSecMetric, "estimated execution seconds per query and planner series")
	metrics.Help(musqleExecWinsMetric, "queries where the multi-engine plan beats the best single engine by >5%")
	labels := append([]string{"MuSQLE"}, reg.Names()...)
	qLabel := func(series string, qi int) map[string]string {
		return map[string]string{"series": series, "query": strconv.Itoa(qi)}
	}
	for qi, q := range queries {
		metrics.Inc(musqleExecQueriesMetric, nil, 1)
		multi, err := opt.Optimize(q)
		if err != nil {
			metrics.Set(musqleExecFailedMetric, qLabel("MuSQLE", qi), 1)
			continue
		}
		metrics.Set(musqleExecTriedMetric, qLabel("MuSQLE", qi), 1)
		metrics.Set(musqleExecEstSecMetric, qLabel("MuSQLE", qi), multi.EstSec)
		bestSingle := 0.0
		anySingle := false
		for _, e := range reg.Names() {
			forced, err := opt.OptimizeOn(q, e)
			if err != nil {
				metrics.Set(musqleExecFailedMetric, qLabel(e, qi), 1)
				continue
			}
			metrics.Set(musqleExecTriedMetric, qLabel(e, qi), 1)
			metrics.Set(musqleExecEstSecMetric, qLabel(e, qi), forced.EstSec)
			if !anySingle || forced.EstSec < bestSingle {
				bestSingle, anySingle = forced.EstSec, true
			}
		}
		if anySingle && multi.EstSec < bestSingle*0.95 {
			metrics.Inc(musqleExecWinsMetric, nil, 1)
		}
	}
	// Derive the report series from the registry: one point per query a
	// series attempted or failed; queries never reached (the MuSQLE plan
	// itself failed) stay absent, matching the pre-registry bookkeeping.
	for _, l := range labels {
		var pts []Point
		for qi := range queries {
			switch {
			case metrics.Value(musqleExecFailedMetric, qLabel(l, qi)) > 0:
				pts = append(pts, Point{X: float64(qi), Failed: true})
			case metrics.Value(musqleExecTriedMetric, qLabel(l, qi)) > 0:
				pts = append(pts, Point{X: float64(qi), Y: metrics.Value(musqleExecEstSecMetric, qLabel(l, qi))})
			}
		}
		r.Series = append(r.Series, Series{Label: l, Points: pts})
	}
	r.Note("MuSQLE beats the best single engine by >5%% on %.0f of %.0f queries",
		metrics.Value(musqleExecWinsMetric, nil), metrics.Value(musqleExecQueriesMetric, nil))
	return r, nil
}

// MusqleCorrectness executes the 18-query workload on physical data and
// verifies every multi-engine result against the reference executor —
// reported as a table (pass/fail, result sizes, simulated seconds).
func MusqleCorrectness(seed int64) (*Report, error) {
	cat := musqle.NewCatalog()
	// Tiny scale: the reference executor is a nested-loop oracle; some
	// generated star queries have inherently large outputs.
	if err := cat.LoadTPCH(sqldata.Generate(0.0004, seed)); err != nil {
		return nil, err
	}
	reg := musqle.DefaultRegistry()
	opt := musqle.NewOptimizer(cat, reg)
	queries, err := musqle.QuerySet18(cat)
	if err != nil {
		return nil, err
	}
	metrics := trace.NewRegistry()
	metrics.Help(musqleCorrectMetric, "multi-engine executions verified against the reference executor")
	metrics.Help(musqleSimSecondsMetric, "simulated execution seconds across the workload")
	r := &Report{ID: "MQ-CORRECT", Title: "MuSQLE multi-engine execution correctness (vs reference joins)"}
	table := Table{
		Title:  "18-query workload, physical execution",
		Header: []string{"query", "tables", "rows", "sim time (s)", "engines", "correct"},
	}
	for qi, q := range queries {
		plan, err := opt.Optimize(q)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %w", qi, err)
		}
		res, err := musqle.Execute(plan, q, cat, reg)
		if err != nil {
			return nil, fmt.Errorf("Q%d exec: %w", qi, err)
		}
		want, err := musqle.ReferenceExecute(q, cat)
		if err != nil {
			return nil, fmt.Errorf("Q%d ref: %w", qi, err)
		}
		ok := res.Table.NumRows() == want.NumRows()
		verdict := "pass"
		if !ok {
			verdict = "fail"
		}
		metrics.Inc(musqleCorrectMetric, map[string]string{"result": verdict}, 1)
		metrics.Observe(musqleSimSecondsMetric, nil, res.SimSec)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("Q%d", qi),
			fmt.Sprintf("%d", len(q.Tables)),
			fmt.Sprintf("%d", res.Table.NumRows()),
			fmt.Sprintf("%.3f", res.SimSec),
			fmt.Sprintf("%v", plan.EnginesUsed),
			fmt.Sprintf("%v", ok),
		})
		if !ok {
			r.Note("Q%d row-count mismatch: got %d want %d", qi, res.Table.NumRows(), want.NumRows())
		}
	}
	r.Tables = append(r.Tables, table)
	if fails := metrics.Value(musqleCorrectMetric, map[string]string{"result": "fail"}); fails > 0 {
		r.Note("%.0f of %.0f queries failed verification", fails,
			metrics.Value(musqleCorrectMetric, map[string]string{"result": "pass"})+fails)
	}
	return r, nil
}
