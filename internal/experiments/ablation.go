package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/model"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/profiler"
	"github.com/asap-project/ires/internal/workflow"
)

// AblationDPvsExhaustive validates the DP planner against exhaustive
// enumeration on chain workflows small enough to brute-force, then
// contrasts their scaling: the DP's O(op*m^2*k) vs the exhaustive m^op.
func AblationDPvsExhaustive(seed int64) (*Report, error) {
	r := &Report{
		ID:     "ABL-DP",
		Title:  "DP planner vs exhaustive enumeration (chain workflows, 3 engines)",
		XLabel: "operators",
		YLabel: "planning time (s)",
	}
	const m = 3 // engines per operator
	est := synthEstimator{}
	var dpPts, exPts []Point
	for _, ops := range []int{2, 4, 6, 8, 10, 12} {
		g, lib, err := chainWorkflowWithLib(ops, m)
		if err != nil {
			return nil, err
		}
		p, err := planner.New(planner.Config{Library: lib, Estimator: est})
		if err != nil {
			return nil, err
		}
		started := time.Now()
		plan, err := p.Plan(g)
		if err != nil {
			return nil, err
		}
		dpPts = append(dpPts, Point{X: float64(ops), Y: time.Since(started).Seconds()})

		started = time.Now()
		bestExhaustive, err := exhaustiveChainCost(g, lib, est)
		if err != nil {
			return nil, err
		}
		exPts = append(exPts, Point{X: float64(ops), Y: time.Since(started).Seconds()})

		if math.Abs(plan.EstObjective-bestExhaustive) > 1e-6 {
			r.Note("MISMATCH at %d ops: DP %.4f vs exhaustive %.4f", ops, plan.EstObjective, bestExhaustive)
		}
	}
	r.AddSeries("DP planner", dpPts...)
	r.AddSeries("exhaustive", exPts...)
	r.Note("DP and exhaustive agree on optimal cost at every size (no MISMATCH notes above)")
	return r, nil
}

// chainWorkflowWithLib builds a linear workflow of ops operators, each with
// m engine alternatives owning distinct stores.
func chainWorkflowWithLib(ops, m int) (*workflow.Graph, *operator.Library, error) {
	lib := operator.NewLibrary()
	g := workflow.NewGraph()
	src := operator.NewDataset("src", metadata.MustParse(
		"Execution.path=/src\nConstraints.Engine.FS=FS0\nOptimization.documents=100000\nOptimization.size=100000000"))
	if _, err := g.AddDataset("src", src); err != nil {
		return nil, nil, err
	}
	prev := "src"
	for i := 0; i < ops; i++ {
		alg := fmt.Sprintf("chainop%d", i)
		for e := 0; e < m; e++ {
			name := fmt.Sprintf("%s_engine%d", alg, e)
			desc := fmt.Sprintf("Constraints.Engine=engine%d\nConstraints.OpSpecification.Algorithm.name=%s\nConstraints.Input0.Engine.FS=FS%d\nConstraints.Output0.Engine.FS=FS%d\n", e, alg, e, e)
			if _, err := lib.AddOperatorDescription(name, desc); err != nil {
				return nil, nil, err
			}
		}
		opNode := fmt.Sprintf("op%d", i)
		out := fmt.Sprintf("d%d", i)
		if _, err := g.AddOperator(opNode, operator.NewAbstract(opNode,
			metadata.MustParse("Constraints.OpSpecification.Algorithm.name="+alg))); err != nil {
			return nil, nil, err
		}
		if _, err := g.AddDataset(out, nil); err != nil {
			return nil, nil, err
		}
		if err := g.Connect(prev, opNode); err != nil {
			return nil, nil, err
		}
		if err := g.Connect(opNode, out); err != nil {
			return nil, nil, err
		}
		prev = out
	}
	return g, lib, g.SetTarget(prev)
}

// exhaustiveChainCost brute-forces every implementation assignment of a
// chain workflow, mirroring the planner's cost semantics (MinTime policy,
// single move between mismatched stores).
func exhaustiveChainCost(g *workflow.Graph, lib *operator.Library, est planner.Estimator) (float64, error) {
	ops, err := g.OperatorsTopological()
	if err != nil {
		return 0, err
	}
	choices := make([][]*operator.Materialized, len(ops))
	for i, o := range ops {
		choices[i] = lib.FindMaterialized(o.Operator)
		if len(choices[i]) == 0 {
			return 0, fmt.Errorf("no implementations for %s", o.Name)
		}
	}
	src := g.Sources()[0]
	srcMeta := src.Dataset.Constraints()
	srcRecords := src.Dataset.Records()
	srcBytes := src.Dataset.SizeBytes()
	moveSec := func(bytes int64) float64 { return 1.5 + float64(bytes)/100e6 }

	best := math.Inf(1)
	var recurse func(level int, meta *metadata.Tree, records, bytes int64, acc float64)
	recurse = func(level int, meta *metadata.Tree, records, bytes int64, acc float64) {
		if acc >= best {
			return
		}
		if level == len(ops) {
			best = acc
			return
		}
		for _, mo := range choices[level] {
			cost := acc
			if !mo.AcceptsInput(0, meta) {
				cost += moveSec(bytes)
			}
			feats := map[string]float64{
				"records": float64(records), "bytes": float64(bytes),
				"nodes": 16, "cores": 2, "memoryMB": 3456,
			}
			t, ok := est.Estimate(mo.Name, "execTime", feats)
			if !ok {
				continue
			}
			cost += t
			outMeta := mo.OutputSpec(0)
			outRecords := records
			outBytes := bytes
			if v, ok := est.Estimate(mo.Name, "outputRecords", feats); ok {
				outRecords = int64(v)
			}
			if v, ok := est.Estimate(mo.Name, "outputBytes", feats); ok {
				outBytes = int64(v)
			}
			recurse(level+1, outMeta, outRecords, outBytes, cost)
		}
	}
	recurse(0, srcMeta, srcRecords, srcBytes, 0)
	return best, nil
}

// AblationModelSelection contrasts cross-validated family selection against
// fixing a single family, on the Spark tf-idf operator profile.
func AblationModelSelection(seed int64) (*Report, error) {
	env := engine.NewDefaultEnvironment(seed)
	rng := rand.New(rand.NewSource(seed))

	// Collect a profiling dataset.
	var X [][]float64
	var y []float64
	for _, rec := range []int64{1_000, 5_000, 20_000, 100_000, 500_000, 2_000_000} {
		for _, nodes := range []int{2, 4, 8, 16} {
			res := engine.Resources{Nodes: nodes, CoresPerN: 2, MemMBPerN: 3456}
			run, err := env.Execute(engine.EngineSpark, engine.AlgTFIDF,
				engine.Input{Records: rec, Bytes: rec * 5_000}, res, 0)
			if err != nil {
				return nil, err
			}
			X = append(X, []float64{float64(rec), float64(rec * 5_000), float64(nodes)})
			y = append(y, run.ExecTimeSec)
		}
	}
	probeErr := func(m model.Model) float64 {
		total, n := 0.0, 0
		for i := 0; i < 40; i++ {
			rec := int64(1_000 + rng.Intn(2_000_000))
			nodes := []int{2, 4, 8, 16}[rng.Intn(4)]
			res := engine.Resources{Nodes: nodes, CoresPerN: 2, MemMBPerN: 3456}
			truth, err := env.GroundTruthSec(engine.EngineSpark, engine.AlgTFIDF,
				engine.Input{Records: rec, Bytes: rec * 5_000}, res)
			if err != nil {
				continue
			}
			pred := m.Predict([]float64{float64(rec), float64(rec * 5_000), float64(nodes)})
			total += math.Abs(pred-truth) / truth
			n++
		}
		return total / float64(n)
	}

	r := &Report{ID: "ABL-CV", Title: "Cross-validated model selection vs fixed families"}
	table := Table{Title: "Mean relative error on held-out configurations", Header: []string{"strategy", "rel err"}}

	factories := model.DefaultFactories(seed)
	selected, scores, err := model.SelectBestRelative(factories, X, y, 5, seed)
	if err != nil {
		return nil, err
	}
	table.Rows = append(table.Rows, []string{"CV-selected (" + selected.Name() + ")",
		fmt.Sprintf("%.4f", probeErr(selected))})
	for _, fac := range factories {
		m := fac()
		if err := m.Train(X, y); err != nil {
			continue
		}
		table.Rows = append(table.Rows, []string{"fixed " + m.Name(), fmt.Sprintf("%.4f", probeErr(m))})
	}
	r.Tables = append(r.Tables, table)
	for _, s := range scores {
		r.Note("CV score %s: rmse %.3f relerr %.4f", s.Name, s.RMSE, s.RelErr)
	}
	_ = profiler.TargetExecTime
	return r, nil
}
