package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"time"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/faults"
	"github.com/asap-project/ires/internal/trace"
)

// ckptBenchSubmitSec is the virtual time at which the urgent deadlined
// workflow arrives, well inside the long run's iterative first operator.
const ckptBenchSubmitSec = 30.0

// ckptBenchIters is the iteration count of the long PageRank operator: high
// enough that dozens of checkpoint boundaries pass under the preempt
// request, so bounded vs unbounded suspension latency is unmistakable.
const ckptBenchIters = 40

// CkptLatencyOutcome is one checkpoint mode's side of the preemption-latency
// scenario: the Deadline policy preempts a long iterative run mid-operator.
type CkptLatencyOutcome struct {
	Mode              string  `json:"mode"`
	PreemptLatencySec float64 `json:"preemptLatencySec"`
	UrgentFinishSec   float64 `json:"urgentFinishSec"`
	BatchSec          float64 `json:"batchSec"`
	Preemptions       int     `json:"preemptions"`
	Yields            int     `json:"yields"`
	Writes            int     `json:"checkpointWrites"`
	ReExecutedOps     int     `json:"reExecutedOps"`
	Deterministic     bool    `json:"deterministic"`
}

// CkptRecoveryOutcome is one recovery mode's side of the mid-operator
// node-crash scenario: the same seed runs once cleanly and once with a crash
// aimed between checkpoint boundaries; RecomputedSec is the extra operator
// virtual time the crashed run paid over the clean one.
type CkptRecoveryOutcome struct {
	Mode           string  `json:"mode"`
	CleanExecSec   float64 `json:"cleanExecSec"`
	CrashedExecSec float64 `json:"crashedExecSec"`
	RecomputedSec  float64 `json:"recomputedSec"`
	Restores       int     `json:"checkpointRestores"`
	RestoredUnits  int     `json:"restoredUnits"`
	Writes         int     `json:"checkpointWrites"`
	Deterministic  bool    `json:"deterministic"`
}

// CkptBench is the machine-readable result of the checkpointing gate
// (cmd/bench-ckpt, `make bench-ckpt`). Two scenarios on the same seed:
//
//   - Latency: a long iterative workflow holds the cluster under the
//     Deadline policy when an urgent deadlined workflow arrives. Without
//     checkpointing the preempt request waits for the operator boundary
//     (unbounded — the whole remaining operator); with checkpointing the
//     attempt yields at the next checkpoint boundary, bounding the
//     suspension latency by one checkpoint interval.
//   - Recovery: a node crash lands mid-operator (placed between checkpoint
//     boundaries via faults.PlaceMidInterval). Operator-granular recovery
//     restarts the operator from unit zero; checkpointed recovery restores
//     the banked units and re-executes strictly less virtual time.
type CkptBench struct {
	Seed         int64               `json:"seed"`
	SubmitSec    float64             `json:"urgentSubmitSec"`
	IntervalSec  float64             `json:"checkpointIntervalSec"`
	CrashAtSec   float64             `json:"crashAtSec"`
	LatencyCkpt  CkptLatencyOutcome  `json:"latencyCheckpointed"`
	LatencyGran  CkptLatencyOutcome  `json:"latencyGranular"`
	RecoveryCkpt CkptRecoveryOutcome `json:"recoveryCheckpointed"`
	RecoveryGran CkptRecoveryOutcome `json:"recoveryGranular"`
}

// Gate returns an error unless every acceptance condition holds: preemption
// latency bounded by one checkpoint interval (and unbounded without
// checkpoints), strictly less re-executed virtual time after a mid-operator
// crash, zero re-executed completed operators across the preemption arc, and
// byte-identical fixed-seed traces for every scenario.
func (b CkptBench) Gate() error {
	const eps = 1.0 // one checkpoint write + boundary rounding slack
	switch {
	case b.LatencyCkpt.Preemptions == 0 || b.LatencyGran.Preemptions == 0:
		return fmt.Errorf("Deadline policy did not preempt (ckpt=%d granular=%d preemptions) — scenario has no contention",
			b.LatencyCkpt.Preemptions, b.LatencyGran.Preemptions)
	case b.LatencyCkpt.Writes < 2 || b.IntervalSec <= 0:
		return fmt.Errorf("too few checkpoint writes (%d) to measure the interval", b.LatencyCkpt.Writes)
	case b.LatencyCkpt.Yields == 0:
		return fmt.Errorf("checkpointed run never yielded at a boundary")
	case b.LatencyCkpt.PreemptLatencySec > b.IntervalSec+eps:
		return fmt.Errorf("checkpointed preempt latency %.2fs exceeds one checkpoint interval (%.2fs)",
			b.LatencyCkpt.PreemptLatencySec, b.IntervalSec)
	case b.LatencyGran.PreemptLatencySec <= 2*b.IntervalSec:
		return fmt.Errorf("granular preempt latency %.2fs is not >> the checkpoint interval %.2fs — scenario too loose",
			b.LatencyGran.PreemptLatencySec, b.IntervalSec)
	case b.LatencyCkpt.ReExecutedOps != 0:
		return fmt.Errorf("checkpointed resume re-executed %d completed operators, want 0", b.LatencyCkpt.ReExecutedOps)
	case !b.LatencyCkpt.Deterministic || !b.LatencyGran.Deterministic:
		return fmt.Errorf("latency scenario traces differ between two fixed-seed executions (ckpt=%v granular=%v)",
			b.LatencyCkpt.Deterministic, b.LatencyGran.Deterministic)
	case b.RecoveryGran.RecomputedSec <= 0:
		return fmt.Errorf("granular crash recovery recomputed %.2fs — the crash missed the operator",
			b.RecoveryGran.RecomputedSec)
	case b.RecoveryCkpt.RecomputedSec <= 0:
		return fmt.Errorf("checkpointed crash recovery recomputed %.2fs — the crash missed the operator",
			b.RecoveryCkpt.RecomputedSec)
	case b.RecoveryCkpt.Restores == 0 || b.RecoveryCkpt.RestoredUnits == 0:
		return fmt.Errorf("checkpointed recovery never restored banked units (restores=%d units=%d)",
			b.RecoveryCkpt.Restores, b.RecoveryCkpt.RestoredUnits)
	case b.RecoveryCkpt.RecomputedSec >= b.RecoveryGran.RecomputedSec:
		return fmt.Errorf("checkpointed recovery recomputed %.1fs, not strictly less than operator-granular %.1fs",
			b.RecoveryCkpt.RecomputedSec, b.RecoveryGran.RecomputedSec)
	case !b.RecoveryCkpt.Deterministic || !b.RecoveryGran.Deterministic:
		return fmt.Errorf("recovery scenario traces differ between two fixed-seed executions (ckpt=%v granular=%v)",
			b.RecoveryCkpt.Deterministic, b.RecoveryGran.Deterministic)
	}
	return nil
}

// ckptPlatform builds a platform with a long iterative PageRank operator
// (ckptBenchIters iterations, so checkpoint boundaries are plentiful) and a
// small k-means operator, both on Spark.
func ckptPlatform(opts ires.Options) (*ires.Platform, error) {
	p, err := ires.NewPlatform(opts)
	if err != nil {
		return nil, err
	}
	p.Profiler.Factories = fastFactories(opts.Seed)
	ops := map[string]string{
		"ckpt_pagerank": "Constraints.Engine=" + ires.EngineSpark +
			"\nConstraints.OpSpecification.Algorithm.name=" + engine.AlgPagerank +
			"\nConstraints.Input0.Engine.FS=HDFS\nConstraints.Output0.Engine.FS=HDFS" +
			"\nOptimization.param.iterations=" + strconv.Itoa(ckptBenchIters) + "\n",
		"ckpt_kmeans": "Constraints.Engine=" + ires.EngineSpark +
			"\nConstraints.OpSpecification.Algorithm.name=" + engine.AlgKMeans +
			"\nConstraints.Input0.Engine.FS=HDFS\nConstraints.Output0.Engine.FS=HDFS\n",
	}
	for name, desc := range ops {
		if err := p.RegisterOperator(name, desc); err != nil {
			return nil, err
		}
		space := ires.ProfileSpace{
			Records:        []int64{10_000, 100_000, 1_000_000},
			BytesPerRecord: 1_000,
			Resources:      []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}},
		}
		if name == "ckpt_pagerank" {
			space.Params = map[string][]float64{"iterations": {ckptBenchIters}}
		}
		if _, err := p.ProfileOperator(name, space); err != nil {
			return nil, fmt.Errorf("profiling %s: %w", name, err)
		}
	}
	return p, nil
}

// ckptWorkflow builds in -> <algo> -> out with the given input size.
func ckptWorkflow(p *ires.Platform, algo string, records int64) (*ires.Workflow, error) {
	n := strconv.FormatInt(records, 10)
	sz := strconv.FormatInt(records*1_000, 10)
	return p.NewWorkflow().
		DatasetWithMeta("in",
			"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///in"+
				"\nOptimization.documents="+n+"\nOptimization.size="+sz).
		Operator("op", "Constraints.OpSpecification.Algorithm.name="+algo).
		Dataset("out").
		Chain("in", "op", "out").
		Target("out").
		Build()
}

// ckptChainWorkflow builds in -> pagerank -> mid -> kmeans -> out: the
// iterative operator a preempt request lands inside, followed by a second
// operator so an operator-granular suspension has somewhere to land at all
// (a preempted single-operator run would simply finish).
func ckptChainWorkflow(p *ires.Platform, records int64) (*ires.Workflow, error) {
	n := strconv.FormatInt(records, 10)
	sz := strconv.FormatInt(records*1_000, 10)
	return p.NewWorkflow().
		DatasetWithMeta("in",
			"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///in"+
				"\nOptimization.documents="+n+"\nOptimization.size="+sz).
		Operator("opA", "Constraints.OpSpecification.Algorithm.name="+engine.AlgPagerank).
		Operator("opB", "Constraints.OpSpecification.Algorithm.name="+engine.AlgKMeans).
		Dataset("mid").
		Dataset("out").
		Chain("in", "opA", "mid", "opB", "out").
		Target("out").
		Build()
}

// ckptLatencyRun is one execution of the preemption-latency scenario.
type ckptLatencyRun struct {
	preemptLatency float64
	urgentFinish   float64
	batch          float64
	preemptions    int
	yields         int
	writes         int
	intervalSec    float64
	reExecuted     int
	traces         []byte
}

// ckptWriteInterval returns the observed checkpoint period: the smallest
// positive gap between consecutive checkpoint writes of the same step. The
// minimum (not the maximum) is the honest period — the gap spanning a
// suspension window would otherwise count the urgent run's whole execution
// as "one interval".
func ckptWriteInterval(events []trace.Event) float64 {
	last := map[string]float64{}
	best := 0.0
	for _, ev := range events {
		if ev.Type != trace.EvCheckpointWrite {
			continue
		}
		if prev, ok := last[ev.Step]; ok {
			if d := ev.VTimeSec - prev; d > 0 && (best == 0 || d < best) {
				best = d
			}
		}
		last[ev.Step] = ev.VTimeSec
	}
	return best
}

// runCkptLatencyScenario runs the long iterative workflow from t=0 under the
// Deadline policy and submits a small urgent workflow with a deadline at
// ckptBenchSubmitSec, forcing a mid-operator preempt request.
func runCkptLatencyScenario(seed int64, ckpt ires.CheckpointPolicy) (*ckptLatencyRun, error) {
	p, err := ckptPlatform(ires.Options{Seed: seed, Admission: ires.Deadline(), Checkpoint: ckpt})
	if err != nil {
		return nil, err
	}
	long, err := ckptChainWorkflow(p, 300_000)
	if err != nil {
		return nil, err
	}
	urgent, err := ckptWorkflow(p, engine.AlgKMeans, 20_000)
	if err != nil {
		return nil, err
	}
	longRun := p.SubmitWith(long, ires.SubmitOptions{Name: "long"})
	urgentCh := make(chan *ires.Run, 1)
	p.Clock.Schedule(time.Duration(ckptBenchSubmitSec*float64(time.Second)), func(time.Duration) {
		urgentCh <- p.SubmitWith(urgent, ires.SubmitOptions{
			Name: "urgent", Deadline: time.Duration((ckptBenchSubmitSec + 600) * float64(time.Second)),
		})
	})
	p.Drain()
	urgentRun := <-urgentCh

	res := &ckptLatencyRun{}
	var runIDs []string
	for _, s := range p.Runs() {
		if s.Status != "succeeded" {
			return nil, fmt.Errorf("run %s (%s) ended %s: %s", s.ID, s.Workflow, s.Status, s.Error)
		}
		if s.FinishedSec > res.batch {
			res.batch = s.FinishedSec
		}
		runIDs = append(runIDs, s.ID)
		switch s.ID {
		case urgentRun.ID():
			res.urgentFinish = s.FinishedSec
		case longRun.ID():
			res.preemptions = s.Preemptions
			res.preemptLatency = s.PreemptLatencySec
		}
	}
	longTrace := p.TraceForRun(longRun.ID())
	for _, ev := range longTrace {
		switch ev.Type {
		case trace.EvCheckpointWrite:
			res.writes++
		case trace.EvAttemptYield:
			res.yields++
		}
	}
	res.intervalSec = ckptWriteInterval(longTrace)
	res.reExecuted = reExecutedOps(longTrace)

	sort.Strings(runIDs)
	var buf bytes.Buffer
	for _, id := range runIDs {
		fmt.Fprintf(&buf, "# run %s\n", id)
		if err := trace.WriteJSONL(&buf, p.TraceForRun(id)); err != nil {
			return nil, err
		}
	}
	res.traces = buf.Bytes()
	return res, nil
}

// ckptRecoveryRun is one solo execution of the crash-recovery scenario.
type ckptRecoveryRun struct {
	execSec       float64
	writes        int
	restores      int
	restoredUnits int
	firstWriteSec float64
	intervalSec   float64
	traces        []byte
}

// attemptBusySeconds sums the virtual time the cluster spent inside
// operator attempts — attempt.start to the matching finish or fail. Failed
// attempts count in full: that is precisely the work a crash throws away,
// which the StepLog (zero-duration entries for lost attempts) hides.
func attemptBusySeconds(events []trace.Event) float64 {
	started := map[string]float64{}
	busy := 0.0
	for _, ev := range events {
		if ev.Speculative {
			continue
		}
		key := fmt.Sprintf("%s#%d", ev.Step, ev.Attempt)
		switch ev.Type {
		case trace.EvAttemptStart:
			started[key] = ev.VTimeSec
		case trace.EvAttemptFinish, trace.EvAttemptFail:
			if at, ok := started[key]; ok {
				busy += ev.VTimeSec - at
				delete(started, key)
			}
		}
	}
	return busy
}

// runCkptRecoveryPass executes the single-operator iterative workflow once,
// optionally crashing node0 at crashAt (repaired 45s later, so lost work
// must be retried on the surviving nodes in the meantime).
func runCkptRecoveryPass(seed int64, ckpt ires.CheckpointPolicy, crashAt time.Duration) (*ckptRecoveryRun, error) {
	p, err := ckptPlatform(ires.Options{
		Seed:       seed,
		Retry:      ires.RetryPolicy{MaxAttempts: 4, BaseBackoff: 2 * time.Second},
		Checkpoint: ckpt,
	})
	if err != nil {
		return nil, err
	}
	wf, err := ckptWorkflow(p, engine.AlgPagerank, 300_000)
	if err != nil {
		return nil, err
	}
	plan, err := p.Plan(wf)
	if err != nil {
		return nil, err
	}
	if crashAt > 0 {
		cfg := ires.FaultConfig{
			Seed:        seed,
			NodeCrashes: []ires.NodeCrash{{Node: "node0", At: crashAt}},
		}
		if err := p.InjectFaults(cfg); err != nil {
			return nil, err
		}
		p.Clock.Schedule(crashAt+45*time.Second, func(time.Duration) {
			_ = p.RestoreNode("node0")
		})
	}
	res, err := p.Execute(wf, plan)
	if err != nil {
		return nil, fmt.Errorf("execute (crashAt=%s): %w", crashAt, err)
	}
	out := &ckptRecoveryRun{
		writes:        res.CheckpointWrites,
		restores:      res.CheckpointRestores,
		restoredUnits: res.RestoredUnits,
	}
	events := p.TraceEvents()
	out.execSec = attemptBusySeconds(events)
	for _, ev := range events {
		if ev.Type == trace.EvCheckpointWrite {
			out.firstWriteSec = ev.VTimeSec
			break
		}
	}
	out.intervalSec = ckptWriteInterval(events)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		return nil, err
	}
	out.traces = buf.Bytes()
	return out, nil
}

// RunCkptRecovery runs the crash-recovery comparison on one seed: a clean
// calibration pass per mode measures the baseline operator time and the
// checkpoint cadence, the crash is aimed mid-interval between the third and
// fourth checkpoint boundary, and each crashed scenario runs twice to check
// trace determinism. The returned outcomes share the crash instant, so the
// two modes face the same adversary.
func RunCkptRecovery(seed int64) (ckptOut, granOut CkptRecoveryOutcome, crashAtSec float64, err error) {
	on := ires.CheckpointPolicy{Enabled: true}
	off := ires.CheckpointPolicy{}
	cleanCkpt, err := runCkptRecoveryPass(seed, on, 0)
	if err != nil {
		return ckptOut, granOut, 0, fmt.Errorf("clean checkpointed pass: %w", err)
	}
	if cleanCkpt.writes < 5 || cleanCkpt.intervalSec <= 0 {
		return ckptOut, granOut, 0, fmt.Errorf("clean pass banked only %d checkpoints (interval %.2fs) — operator too short to aim a mid-interval crash",
			cleanCkpt.writes, cleanCkpt.intervalSec)
	}
	cleanGran, err := runCkptRecoveryPass(seed, off, 0)
	if err != nil {
		return ckptOut, granOut, 0, fmt.Errorf("clean granular pass: %w", err)
	}

	crashAt := faults.PlaceMidInterval(
		time.Duration(cleanCkpt.firstWriteSec*float64(time.Second)),
		time.Duration(cleanCkpt.intervalSec*float64(time.Second)),
		2, 0.5)

	for _, mc := range []struct {
		mode  string
		ckpt  ires.CheckpointPolicy
		clean *ckptRecoveryRun
		out   *CkptRecoveryOutcome
	}{
		{"checkpointed", on, cleanCkpt, &ckptOut},
		{"operator-granular", off, cleanGran, &granOut},
	} {
		first, err := runCkptRecoveryPass(seed, mc.ckpt, crashAt)
		if err != nil {
			return ckptOut, granOut, 0, fmt.Errorf("%s crash pass: %w", mc.mode, err)
		}
		second, err := runCkptRecoveryPass(seed, mc.ckpt, crashAt)
		if err != nil {
			return ckptOut, granOut, 0, fmt.Errorf("%s crash pass (repeat): %w", mc.mode, err)
		}
		*mc.out = CkptRecoveryOutcome{
			Mode:           mc.mode,
			CleanExecSec:   mc.clean.execSec,
			CrashedExecSec: first.execSec,
			RecomputedSec:  first.execSec - mc.clean.execSec,
			Restores:       first.restores,
			RestoredUnits:  first.restoredUnits,
			Writes:         first.writes,
			Deterministic:  bytes.Equal(first.traces, second.traces),
		}
	}
	return ckptOut, granOut, crashAt.Seconds(), nil
}

// RunCkptBench executes both checkpointing scenarios on one seed.
func RunCkptBench(seed int64) (*CkptBench, error) {
	bench := &CkptBench{Seed: seed, SubmitSec: ckptBenchSubmitSec}
	for _, mc := range []struct {
		mode string
		ckpt ires.CheckpointPolicy
		out  *CkptLatencyOutcome
	}{
		{"checkpointed", ires.CheckpointPolicy{Enabled: true}, &bench.LatencyCkpt},
		{"operator-granular", ires.CheckpointPolicy{}, &bench.LatencyGran},
	} {
		first, err := runCkptLatencyScenario(seed, mc.ckpt)
		if err != nil {
			return nil, fmt.Errorf("%s latency scenario: %w", mc.mode, err)
		}
		second, err := runCkptLatencyScenario(seed, mc.ckpt)
		if err != nil {
			return nil, fmt.Errorf("%s latency scenario (repeat): %w", mc.mode, err)
		}
		*mc.out = CkptLatencyOutcome{
			Mode:              mc.mode,
			PreemptLatencySec: first.preemptLatency,
			UrgentFinishSec:   first.urgentFinish,
			BatchSec:          first.batch,
			Preemptions:       first.preemptions,
			Yields:            first.yields,
			Writes:            first.writes,
			ReExecutedOps:     first.reExecuted,
			Deterministic:     bytes.Equal(first.traces, second.traces),
		}
		if mc.mode == "checkpointed" {
			bench.IntervalSec = first.intervalSec
		}
	}

	ckptOut, granOut, crashAtSec, err := RunCkptRecovery(seed)
	if err != nil {
		return nil, err
	}
	bench.RecoveryCkpt = ckptOut
	bench.RecoveryGran = granOut
	bench.CrashAtSec = crashAtSec
	return bench, nil
}

// CkptReport renders the benchmark as an ires-bench report.
func CkptReport(seed int64) (*Report, error) {
	b, err := RunCkptBench(seed)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "CKPT",
		Title: "Sub-operator checkpointing: bounded preemption latency and crash recovery",
	}
	lat := Table{
		Title: fmt.Sprintf("urgent deadlined workflow at t=%.0fs preempts a %d-iteration PageRank (checkpoint interval %.1fs)",
			b.SubmitSec, ckptBenchIters, b.IntervalSec),
		Header: []string{"mode", "preempt lat (s)", "urgent finish (s)", "yields", "ckpt writes", "re-executed ops", "deterministic"},
	}
	for _, o := range []CkptLatencyOutcome{b.LatencyCkpt, b.LatencyGran} {
		lat.Rows = append(lat.Rows, []string{
			o.Mode,
			fmt.Sprintf("%.2f", o.PreemptLatencySec),
			fmt.Sprintf("%.1f", o.UrgentFinishSec),
			fmt.Sprintf("%d", o.Yields),
			fmt.Sprintf("%d", o.Writes),
			fmt.Sprintf("%d", o.ReExecutedOps),
			fmt.Sprintf("%v", o.Deterministic),
		})
	}
	r.Tables = append(r.Tables, lat, ckptRecoveryTable(b.RecoveryCkpt, b.RecoveryGran, b.CrashAtSec))
	if err := b.Gate(); err != nil {
		r.Note("GATE FAILED: %v", err)
	} else {
		r.Note("checkpointing bounds the preempt latency to %.2fs (one %.1fs interval; %.2fs unbounded) and cuts crash re-execution from %.1fs to %.1fs virtual-seconds on the same crash",
			b.LatencyCkpt.PreemptLatencySec, b.IntervalSec, b.LatencyGran.PreemptLatencySec,
			b.RecoveryGran.RecomputedSec, b.RecoveryCkpt.RecomputedSec)
	}
	return r, nil
}

// ckptRecoveryTable renders the recovery comparison (shared with the
// FAULTSWEEP report).
func ckptRecoveryTable(ckpt, gran CkptRecoveryOutcome, crashAtSec float64) Table {
	t := Table{
		Title:  fmt.Sprintf("node0 crashes mid-operator at t=%.1fs (repaired 45s later)", crashAtSec),
		Header: []string{"recovery", "clean exec (s)", "crashed exec (s)", "recomputed (s)", "restores", "restored units", "deterministic"},
	}
	for _, o := range []CkptRecoveryOutcome{gran, ckpt} {
		t.Rows = append(t.Rows, []string{
			o.Mode,
			fmt.Sprintf("%.1f", o.CleanExecSec),
			fmt.Sprintf("%.1f", o.CrashedExecSec),
			fmt.Sprintf("%.1f", o.RecomputedSec),
			fmt.Sprintf("%d", o.Restores),
			fmt.Sprintf("%d", o.RestoredUnits),
			fmt.Sprintf("%v", o.Deterministic),
		})
	}
	return t
}
