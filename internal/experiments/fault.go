package experiments

import (
	"fmt"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/metrics"
)

// helloWorldOp is one Table 1 row: operator and its available engines.
type helloWorldOp struct {
	alg     string
	engines []string
}

// helloWorldEngines mirrors Table 1 in a deterministic order, so identical
// seeds produce identical profiles (and therefore identical optimal plans)
// across the compared strategies.
func helloWorldEngines() []helloWorldOp {
	return []helloWorldOp{
		{"HelloWorld", []string{ires.EnginePython}},
		{"HelloWorld1", []string{ires.EngineSpark, ires.EnginePython}},
		{"HelloWorld2", []string{ires.EngineSpark, "MLlib", ires.EnginePostgreSQL, "Hive"}},
		{"HelloWorld3", []string{ires.EngineSpark, ires.EnginePython}},
	}
}

// faultPlatform registers and profiles the HelloWorld operator chain of the
// fault-tolerance evaluation (Figs 18-19, Table 1).
func faultPlatform(seed int64, trivialReplan bool) (*ires.Platform, error) {
	return faultPlatformOpts(ires.Options{Seed: seed}, trivialReplan)
}

// faultPlatformOpts is faultPlatform with full control over the platform
// options (the fault sweep varies the recovery policy knobs).
func faultPlatformOpts(opts ires.Options, trivialReplan bool) (*ires.Platform, error) {
	seed := opts.Seed
	p, err := ires.NewPlatform(opts)
	if err != nil {
		return nil, err
	}
	p.Profiler.Factories = fastFactories(seed)
	for _, hw := range helloWorldEngines() {
		for _, eng := range hw.engines {
			if err := profileHelloWorldOp(p, hw.alg, eng); err != nil {
				return nil, err
			}
		}
	}
	if trivialReplan {
		p.UseTrivialReplanner()
	}
	return p, nil
}

// profileHelloWorldOp registers and profiles one <alg>_<engine> operator of
// the HelloWorld family.
func profileHelloWorldOp(p *ires.Platform, alg, eng string) error {
	fs := "HDFS"
	switch eng {
	case ires.EnginePostgreSQL:
		fs = "PostgreSQL"
	case ires.EnginePython:
		fs = "LFS"
	}
	name := fmt.Sprintf("%s_%s", alg, eng)
	desc := "Constraints.Engine=" + eng +
		"\nConstraints.OpSpecification.Algorithm.name=" + alg +
		"\nConstraints.Input0.Engine.FS=" + fs +
		"\nConstraints.Output0.Engine.FS=" + fs + "\n"
	if err := p.RegisterOperator(name, desc); err != nil {
		return err
	}
	prof, _ := p.Env.Engine(eng)
	res := []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}}
	if prof.Centralized {
		res = []engine.Resources{{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}}
	}
	space := ires.ProfileSpace{
		Records:        []int64{200, 1_000, 5_000},
		BytesPerRecord: 1_000,
		Resources:      res,
	}
	if _, err := p.ProfileOperator(name, space); err != nil {
		return fmt.Errorf("profiling %s: %w", name, err)
	}
	return nil
}

// faultWorkflow builds the Fig 18 chain:
// d0 -> HelloWorld -> d1 -> HelloWorld1 -> d2 -> HelloWorld2 -> d3 -> HelloWorld3 -> d4.
func faultWorkflow(p *ires.Platform) (*ires.Workflow, error) {
	b := p.NewWorkflow().
		DatasetWithMeta("d0", "Constraints.Engine.FS=LFS\nExecution.path=/d0\nOptimization.documents=1000\nOptimization.size=1000000")
	prev := "d0"
	for i, alg := range []string{"HelloWorld", "HelloWorld1", "HelloWorld2", "HelloWorld3"} {
		op := fmt.Sprintf("op%d", i)
		out := fmt.Sprintf("d%d", i+1)
		b = b.Operator(op, "Constraints.OpSpecification.Algorithm.name="+alg).
			Dataset(out).
			Chain(prev, op, out)
		prev = out
	}
	return b.Target(prev).Build()
}

// FaultScenarioResult is one row of the Fig 20-22 comparison.
type FaultScenarioResult struct {
	Scenario     string
	Strategy     string
	ExecSec      float64
	PlanMillis   float64
	Replans      int
	FinalEngines []string
}

// FaultTolerance reproduces the fault-tolerance evaluation (Table 1 and
// Figs 18-22): for each of the three failure scenarios — the engine of
// HelloWorld1/2/3 dies just before the operator starts — it measures
// execution and replanning time under IResReplan (partial replanning
// reusing intermediates), TrivialReplan (full workflow re-execution) and
// SubOptPlan (the engine missing from the start, no failure).
func FaultTolerance(seed int64) (*Report, error) {
	r := &Report{
		ID:    "FIG20-22",
		Title: "Fault tolerance: IResReplan vs TrivialReplan vs SubOptPlan",
	}
	table := Table{
		Title:  "Execution and planning time per failure scenario",
		Header: []string{"scenario", "strategy", "exec time (s)", "planning (ms)", "replans"},
	}

	for i := 1; i <= 3; i++ {
		scenario := fmt.Sprintf("HelloWorld%d fails", i)
		var iresExec, trivialExec float64

		for _, strategy := range []string{"IResReplan", "TrivialReplan", "SubOptPlan"} {
			p, err := faultPlatform(seed, strategy == "TrivialReplan")
			if err != nil {
				return nil, err
			}
			wf, err := faultWorkflow(p)
			if err != nil {
				return nil, err
			}
			plan, err := p.Plan(wf)
			if err != nil {
				return nil, err
			}
			victim := engineOfStep(plan, fmt.Sprintf("op%d", i))
			if victim == "" {
				return nil, fmt.Errorf("fault: scenario %d: no engine for op%d", i, i)
			}

			var res *ires.ExecutionResult
			switch strategy {
			case "SubOptPlan":
				// The victim engine is unavailable from the beginning; the
				// (sub-optimal) plan runs without failures.
				p.SetEngineAvailable(victim, false)
				subPlan, err := p.Plan(wf)
				if err != nil {
					return nil, err
				}
				res, err = p.Execute(wf, subPlan)
				if err != nil {
					return nil, err
				}
				res.ReplanTime = subPlan.PlanningTime
			default:
				// Kill the victim the moment the previous operator
				// completes, so operator i fails at launch.
				prevAlg := []string{"HelloWorld", "HelloWorld1", "HelloWorld2"}[i-1]
				armKill(p, prevAlg, victim)
				res, err = p.Execute(wf, plan)
				if err != nil {
					return nil, fmt.Errorf("fault %s/%s: %w", scenario, strategy, err)
				}
			}
			execSec := res.Makespan.Seconds()
			planMs := float64(res.ReplanTime.Microseconds()) / 1000.0
			switch strategy {
			case "IResReplan":
				iresExec = execSec
			case "TrivialReplan":
				trivialExec = execSec
			}
			table.Rows = append(table.Rows, []string{
				scenario, strategy,
				fmt.Sprintf("%.1f", execSec),
				fmt.Sprintf("%.3f", planMs),
				fmt.Sprintf("%d", res.Replans),
			})
		}
		if iresExec > 0 && trivialExec > 0 {
			r.Note("%s: IResReplan %.1fs vs TrivialReplan %.1fs (%.0f%% saved)",
				scenario, iresExec, trivialExec, 100*(1-iresExec/trivialExec))
		}
	}
	r.Tables = append(r.Tables, table)
	return r, nil
}

// armKill installs an observer that disables victim once an operator of the
// given algorithm completes successfully.
func armKill(p *ires.Platform, afterAlg, victim string) {
	p.SetRunObserver(func(op string, run *metrics.Run) {
		if run.Algorithm == afterAlg && !run.Failed {
			p.SetEngineAvailable(victim, false)
		}
	})
}

func engineOfStep(plan *ires.Plan, workflowNode string) string {
	for _, s := range plan.OperatorSteps() {
		if s.WorkflowNode == workflowNode {
			return s.Engine
		}
	}
	return ""
}
