package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/scheduler"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// scaleNodes is the cluster size for the scale benchmark. Every node is
// reserved out from under the scheduler before any run is submitted, so each
// decision round is a pure hold-decision: the policy must look at the state
// and conclude nothing can be admitted. That isolates exactly the per-round
// state cost the indexed rewrite targets — the seed scheduler paid
// O(queue depth) to reach "no" while the indexed one pays O(1).
const scaleNodes = 16

// SchedScalePoint is one (policy, queue depth) measurement.
type SchedScalePoint struct {
	Depth int `json:"depth"`
	// IndexedPerSec / RebuildPerSec are decision rounds per second against
	// the incrementally maintained indexed state vs a from-scratch
	// rebuild of every live run into RunState slices (the seed behavior).
	IndexedPerSec float64 `json:"indexedDecisionsPerSec"`
	RebuildPerSec float64 `json:"rebuildDecisionsPerSec"`
	Speedup       float64 `json:"speedup"`
	// AllocsPerDecision is the heap allocation count of one indexed
	// decision round; the gate requires it to stay flat as depth grows.
	AllocsPerDecision float64 `json:"indexedAllocsPerDecision"`
}

// SchedScalePolicy is one admission policy's scaling curve.
type SchedScalePolicy struct {
	Policy string            `json:"policy"`
	Points []SchedScalePoint `json:"points"`
}

// SchedScaleBench is the machine-readable result of the fleet-scale
// scheduling gate (cmd/bench-sched-scale, `make bench-sched-scale`): a full
// cluster with 10k–100k queued runs, measuring decision-round throughput and
// allocations per round for the indexed state against the rebuild-everything
// baseline.
type SchedScaleBench struct {
	Seed     int64              `json:"seed"`
	Nodes    int                `json:"nodes"`
	Depths   []int              `json:"depths"`
	Policies []SchedScalePolicy `json:"policies"`
}

// Gate returns an error unless, for every policy, the indexed state is at
// least 10x faster than the rebuild at 10k queued runs and the indexed
// allocations per decision stay O(1) in depth (the deepest point may not
// exceed max(2x, +4) of the shallowest).
func (b SchedScaleBench) Gate() error {
	if len(b.Policies) == 0 {
		return fmt.Errorf("no policies measured")
	}
	for _, p := range b.Policies {
		if len(p.Points) < 2 {
			return fmt.Errorf("%s: need at least two depths, got %d", p.Policy, len(p.Points))
		}
		gated := false
		for _, pt := range p.Points {
			if pt.Depth == 10_000 {
				gated = true
				if pt.Speedup < 10 {
					return fmt.Errorf("%s: indexed state only %.1fx faster than rebuild at 10k queued runs, want >= 10x",
						p.Policy, pt.Speedup)
				}
			}
		}
		if !gated {
			return fmt.Errorf("%s: no measurement at the 10k-run gate depth", p.Policy)
		}
		shallow := p.Points[0].AllocsPerDecision
		deep := p.Points[len(p.Points)-1].AllocsPerDecision
		if limit := math.Max(2*shallow, shallow+4); deep > limit {
			return fmt.Errorf("%s: %.1f allocs/decision at depth %d vs %.1f at depth %d — not O(1) in queue depth",
				p.Policy, deep, p.Points[len(p.Points)-1].Depth, shallow, p.Points[0].Depth)
		}
	}
	return nil
}

// scaleExec satisfies scheduler.Exec but must never run: the cluster is
// fully reserved, so no run can be admitted during the benchmark.
type scaleExec struct{}

func (scaleExec) Execute(*workflow.Graph, *planner.Plan) (*executor.Result, error) {
	return nil, fmt.Errorf("bench-sched-scale: executor invoked on a fully reserved cluster")
}

// newScaleScheduler builds a scheduler whose cluster is fully reserved and
// queues depth runs with mixed tenants, users, priorities, and (every third
// run) deadlines — deep enough to exercise the EDF heap, the fair tree, and
// the intrusive queue, while every decision round stays a hold-decision.
func newScaleScheduler(policy scheduler.Policy, depth int, seed int64) (*scheduler.Scheduler, error) {
	clock := vtime.NewClock()
	clu := cluster.New(clock, scaleNodes, 4, 8192)
	if _, err := clu.Reserve(scaleNodes); err != nil {
		return nil, fmt.Errorf("reserving the cluster: %w", err)
	}
	sched, err := scheduler.New(scheduler.Config{
		Clock:       clock,
		Cluster:     clu,
		Policy:      policy,
		Plan:        func(*workflow.Graph) (*planner.Plan, error) { return nil, fmt.Errorf("not planned") },
		NewExecutor: func(scheduler.ExecContext) scheduler.Exec { return scaleExec{} },
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tenants := []string{"acme", "beta", "gamma", "delta"}
	users := []string{"ana", "bob", "cat", "dee", "eli"}
	g := workflow.NewGraph()
	g.Target = "scale"
	for i := 0; i < depth; i++ {
		opts := scheduler.SubmitOptions{
			Tenant:   tenants[rng.Intn(len(tenants))],
			User:     users[rng.Intn(len(users))],
			Priority: rng.Intn(5) - 2,
		}
		if i%3 == 0 {
			opts.Deadline = time.Duration(60+rng.Intn(100_000)) * time.Second
		}
		sched.SubmitWith(g, opts)
	}
	if got := sched.QueueDepth(); got != depth {
		return nil, fmt.Errorf("queue depth %d after submitting %d runs — something was admitted", got, depth)
	}
	return sched, nil
}

// measureRate times f in batches until the budget elapses and returns calls
// per second. batch amortizes the clock reads for sub-microsecond rounds;
// pass 1 for expensive rounds so the budget is respected.
func measureRate(f func(), batch int, budget time.Duration) float64 {
	f() // warm caches outside the timed window
	calls := 0
	start := time.Now()
	for {
		for i := 0; i < batch; i++ {
			f()
		}
		calls += batch
		if elapsed := time.Since(start); elapsed >= budget {
			return float64(calls) / elapsed.Seconds()
		}
	}
}

// RunSchedScaleBench executes the benchmark: for each policy and queue
// depth it builds a fully reserved cluster with depth queued runs, then
// measures hold-decision rounds per second for the indexed state and the
// rebuild baseline, plus heap allocations per indexed round.
func RunSchedScaleBench(seed int64, depths []int) (*SchedScaleBench, error) {
	if len(depths) == 0 {
		depths = []int{1_000, 10_000, 50_000, 100_000}
	}
	bench := &SchedScaleBench{Seed: seed, Nodes: scaleNodes, Depths: depths}
	policies := []scheduler.Policy{
		scheduler.FIFO{},
		scheduler.Deadline{},
		scheduler.HierarchicalFairShare{MaxConcurrent: 4},
	}
	for _, policy := range policies {
		curve := SchedScalePolicy{Policy: policy.Name()}
		for _, depth := range depths {
			sched, err := newScaleScheduler(policy, depth, seed)
			if err != nil {
				return nil, fmt.Errorf("%s depth %d: %w", policy.Name(), depth, err)
			}
			pt := SchedScalePoint{Depth: depth}
			pt.IndexedPerSec = measureRate(func() { sched.DecideIndexed() }, 256, 100*time.Millisecond)
			pt.RebuildPerSec = measureRate(func() { sched.DecideRebuild() }, 1, 150*time.Millisecond)
			if pt.RebuildPerSec > 0 {
				pt.Speedup = pt.IndexedPerSec / pt.RebuildPerSec
			}
			pt.AllocsPerDecision = testing.AllocsPerRun(200, func() { sched.DecideIndexed() })
			curve.Points = append(curve.Points, pt)
		}
		bench.Policies = append(bench.Policies, curve)
	}
	return bench, nil
}
