package experiments

import (
	"errors"
	"fmt"
	"time"

	ires "github.com/asap-project/ires"
)

// FaultSweepRow is one (fault rate, strategy) cell of the sweep.
type FaultSweepRow struct {
	Rate         float64
	Strategy     string
	Completed    bool
	Outcome      string
	ExecSec      float64
	Replans      int
	Retries      int
	SpecLaunches int
	SpecWins     int
	CtrsLost     int
}

// faultSweepRates are the injected per-attempt transient failure
// probabilities the sweep walks through.
var faultSweepRates = []float64{0, 0.2, 0.4, 0.6, 0.8}

// faultSweepStrategies returns the three recovery policies compared:
//
//   - replan-only: the seed behavior — one attempt per step, every failure
//     consumed a replan (bounded by MaxReplans).
//   - retry-only: per-step same-engine retries with exponential backoff;
//     replanning remains the last resort once a step's budget is exhausted.
//   - full: retries plus straggler speculation (timeout factor) plus the
//     engine circuit breaker.
func faultSweepStrategies(seed int64) []struct {
	Name string
	Opts ires.Options
} {
	retry := ires.RetryPolicy{MaxAttempts: 8, BaseBackoff: 2 * time.Second, Multiplier: 2}
	// Elastic provisioning for every strategy: steps get right-sized gangs
	// instead of whole-cluster ones, which both matches the paper's
	// provisioning story and leaves the headroom speculative backups need.
	return []struct {
		Name string
		Opts ires.Options
	}{
		{"replan-only", ires.Options{Seed: seed, ElasticProvisioning: true}},
		{"retry-only", ires.Options{Seed: seed, ElasticProvisioning: true, Retry: retry}},
		{"full", ires.Options{
			Seed:                seed,
			ElasticProvisioning: true,
			Retry:               retry,
			TimeoutFactor:       2.0,
			BreakerThreshold:    3,
			BreakerCooldown:     60 * time.Second,
		}},
	}
}

// FaultSweepRows executes the sweep and returns the raw cells: each recovery
// policy runs the HelloWorld chain under every injected fault rate, with the
// same deterministic fault schedule per (rate, strategy) cell. Beyond the
// transient failures, rates above zero also inject stragglers (25% of runs
// slowed 4x, which only the full policy can absorb via speculation) and a
// mid-run node crash followed by a delayed repair.
func FaultSweepRows(seed int64) ([]FaultSweepRow, error) {
	var rows []FaultSweepRow
	for ri, rate := range faultSweepRates {
		for _, strat := range faultSweepStrategies(seed) {
			p, err := faultPlatformOpts(strat.Opts, false)
			if err != nil {
				return nil, err
			}
			// Give the Python-only HelloWorld a Spark implementation too, so
			// every step of the chain has an alternative engine to
			// speculate on when it straggles.
			if err := profileHelloWorldOp(p, "HelloWorld", ires.EngineSpark); err != nil {
				return nil, err
			}
			wf, err := faultWorkflow(p)
			if err != nil {
				return nil, err
			}
			plan, err := p.Plan(wf)
			if err != nil {
				return nil, err
			}

			cfg := ires.FaultConfig{
				// One fault timeline per rate, shared by the three
				// strategies so they face the same adversary.
				Seed:    seed*1000 + int64(ri),
				Default: ires.FaultTransient{FailProb: rate},
			}
			if rate > 0 {
				cfg.Straggler = ires.StragglerFaults{Prob: 0.25, Factor: 4}
				// node0 is where most-free-first places centralized
				// single-container steps, so the crash hits live work.
				cfg.NodeCrashes = []ires.NodeCrash{{Node: "node0", At: 40 * time.Second}}
				// Repair the node a while later: work lost on it must be
				// retried (or replanned) elsewhere in the meantime.
				p.Clock.Schedule(120*time.Second, func(time.Duration) {
					_ = p.RestoreNode("node0")
				})
			}
			if err := p.InjectFaults(cfg); err != nil {
				return nil, err
			}

			res, execErr := p.Execute(wf, plan)
			row := FaultSweepRow{Rate: rate, Strategy: strat.Name, Completed: execErr == nil, Outcome: "completed"}
			if execErr != nil {
				switch {
				case errors.Is(execErr, ires.ErrTooManyReplans):
					row.Outcome = "replans exhausted"
				case errors.Is(execErr, ires.ErrDeadlock):
					row.Outcome = "deadlocked"
				default:
					row.Outcome = "failed: " + trim(execErr.Error(), 40)
				}
			}
			if res != nil {
				row.ExecSec = res.Makespan.Seconds()
			}
			// Recovery counters come from the metrics registry (fed by the
			// trace stream) rather than the executor's result struct: each
			// cell runs on a fresh platform, so the totals are the cell's —
			// and they stay populated even when the execution fails partway.
			reg := p.Metrics()
			row.Replans = int(reg.Value("ires_replans_total", nil))
			row.Retries = int(reg.Value("ires_retries_total", nil))
			row.SpecLaunches = int(reg.Value("ires_speculative_launches_total", nil))
			row.SpecWins = int(reg.Value("ires_speculative_wins_total", nil))
			row.CtrsLost = int(reg.Sum("ires_containers_lost_total"))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FaultSweep renders the sweep as a report: the headline result is that the
// full policy (retries + speculation + breaker + partial replanning) keeps
// completing workloads at fault rates where replan-only exhausts its replan
// budget — retries absorb transient failures locally so the replan budget is
// preserved for failures that actually need a new plan.
func FaultSweep(seed int64) (*Report, error) {
	rows, err := FaultSweepRows(seed)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "FAULTSWEEP",
		Title: "Recovery policy sweep: retry-only vs replan-only vs full policy",
	}
	table := Table{
		Title:  "HelloWorld chain under injected transient faults, stragglers and a node crash",
		Header: []string{"fault rate", "strategy", "outcome", "exec (s)", "replans", "retries", "spec wins", "ctrs lost"},
	}
	fullCompleted := true
	replanOnlyBroke := -1.0
	for _, row := range rows {
		exec := "-"
		if row.Completed {
			exec = fmt.Sprintf("%.1f", row.ExecSec)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.2f", row.Rate), row.Strategy, row.Outcome, exec,
			fmt.Sprintf("%d", row.Replans),
			fmt.Sprintf("%d", row.Retries),
			fmt.Sprintf("%d/%d", row.SpecWins, row.SpecLaunches),
			fmt.Sprintf("%d", row.CtrsLost),
		})
		switch row.Strategy {
		case "full":
			if !row.Completed {
				fullCompleted = false
			}
		case "replan-only":
			if !row.Completed && replanOnlyBroke < 0 {
				replanOnlyBroke = row.Rate
			}
		}
	}
	r.Tables = append(r.Tables, table)
	if replanOnlyBroke >= 0 && fullCompleted {
		r.Note("full policy completed every workload; replan-only first exceeded its replan budget at rate %.2f", replanOnlyBroke)
	} else if replanOnlyBroke < 0 {
		r.Note("replan-only survived every rate on this seed; raise the sweep rates to expose the budget limit")
	} else {
		r.Note("WARNING: full policy failed to complete at some rate on this seed")
	}

	// Sub-operator recovery comparison: the same mid-operator node crash
	// handled operator-granular (restart the operator) vs checkpointed
	// (resume from the last banked iteration boundary).
	ckptOut, granOut, crashAtSec, err := RunCkptRecovery(seed)
	if err != nil {
		return nil, fmt.Errorf("checkpoint recovery comparison: %w", err)
	}
	r.Tables = append(r.Tables, ckptRecoveryTable(ckptOut, granOut, crashAtSec))
	if ckptOut.RecomputedSec < granOut.RecomputedSec {
		r.Note("checkpointed recovery re-executed %.1f virtual-seconds vs %.1f operator-granular on the same crash (restored %d of %d iterations)",
			ckptOut.RecomputedSec, granOut.RecomputedSec, ckptOut.RestoredUnits, ckptBenchIters)
	} else {
		r.Note("WARNING: checkpointed recovery re-executed %.1f virtual-seconds, not less than operator-granular %.1f",
			ckptOut.RecomputedSec, granOut.RecomputedSec)
	}
	return r, nil
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
