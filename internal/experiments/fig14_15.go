package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/pegasus"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/workflow"
)

// synthEstimator is a deterministic stand-in for trained models when
// benchmarking pure planner performance: estimates are a hash-derived
// function of operator name and input size, always feasible.
type synthEstimator struct{}

func (synthEstimator) Estimate(opName, target string, feats map[string]float64) (float64, bool) {
	h := fnv.New32a()
	h.Write([]byte(opName))
	base := 1 + float64(h.Sum32()%100)
	switch target {
	case "execTime":
		return base + feats["records"]/1e5, true
	case "cost":
		return (base + feats["records"]/1e5) * feats["nodes"], true
	case "outputRecords":
		return feats["records"] * 0.8, true
	case "outputBytes":
		return feats["bytes"] * 0.8, true
	}
	return 0, false
}

// pegasusPlanner builds a planner whose library holds m alternative engine
// implementations for every algorithm of the graph. Engines own distinct
// stores, so cross-engine hops require planner-inserted moves.
func pegasusPlanner(g *workflow.Graph, engines int) (*planner.Planner, error) {
	lib := operator.NewLibrary()
	for _, alg := range pegasus.Algorithms(g) {
		for e := 0; e < engines; e++ {
			name := fmt.Sprintf("%s_engine%d", alg, e)
			desc := fmt.Sprintf(`Constraints.Engine=engine%d
Constraints.OpSpecification.Algorithm.name=%s
Constraints.Input0.Engine.FS=FS%d
Constraints.Output0.Engine.FS=FS%d
`, e, alg, e%3, e%3)
			if _, err := lib.AddOperatorDescription(name, desc); err != nil {
				return nil, err
			}
		}
	}
	return planner.New(planner.Config{Library: lib, Estimator: synthEstimator{}})
}

// PlanPegasus builds the m-engine library for a generated Pegasus graph
// and runs one optimization pass, returning the planning duration — the
// unit of the Fig 14-15 measurements, exported for benchmarks.
func PlanPegasus(g *workflow.Graph, engines int) (time.Duration, error) {
	p, err := pegasusPlanner(g, engines)
	if err != nil {
		return 0, err
	}
	return planOnce(p, g)
}

// planOnce measures one optimization run.
func planOnce(p *planner.Planner, g *workflow.Graph) (time.Duration, error) {
	plan, err := p.Plan(g)
	if err != nil {
		return 0, err
	}
	return plan.PlanningTime, nil
}

// medianPlanTime plans the workflow reps times and returns the median
// duration.
func medianPlanTime(p *planner.Planner, g *workflow.Graph, reps int) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		d, err := planOnce(p, g)
		if err != nil {
			return 0, err
		}
		times = append(times, d)
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2], nil
}

// Fig14 reproduces Figure 14: planner optimization time for the five
// Pegasus workflow categories, 30-1000 nodes, with 4 and 8 alternative
// engines per operator.
func Fig14(sizes []int, engineCounts []int, reps int) ([]*Report, error) {
	if len(sizes) == 0 {
		sizes = []int{30, 100, 300, 1000}
	}
	if len(engineCounts) == 0 {
		engineCounts = []int{4, 8}
	}
	var reports []*Report
	for _, m := range engineCounts {
		r := &Report{
			ID:     fmt.Sprintf("FIG14-%dengines", m),
			Title:  fmt.Sprintf("Workflow optimization time, %d engines per operator", m),
			XLabel: "workflow nodes",
			YLabel: "optimization time (s)",
		}
		for _, cat := range pegasus.Categories() {
			var pts []Point
			for _, size := range sizes {
				g, err := pegasus.Generate(cat, size)
				if err != nil {
					return nil, err
				}
				p, err := pegasusPlanner(g, m)
				if err != nil {
					return nil, err
				}
				d, err := medianPlanTime(p, g, reps)
				if err != nil {
					return nil, fmt.Errorf("%s/%d/%d engines: %w", cat, size, m, err)
				}
				pts = append(pts, Point{X: float64(size), Y: d.Seconds()})
			}
			r.AddSeries(string(cat), pts...)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// Fig15 reproduces Figure 15: optimization time for Montage and
// Epigenomics while ranging the number of engines (2-8).
func Fig15(sizes []int, engineCounts []int, reps int) ([]*Report, error) {
	if len(sizes) == 0 {
		sizes = []int{30, 100, 300, 1000}
	}
	if len(engineCounts) == 0 {
		engineCounts = []int{2, 4, 6, 8}
	}
	var reports []*Report
	for _, cat := range []pegasus.Category{pegasus.Montage, pegasus.Epigenomics} {
		r := &Report{
			ID:     "FIG15-" + string(cat),
			Title:  fmt.Sprintf("Optimization time for %s vs engine count", cat),
			XLabel: "workflow nodes",
			YLabel: "optimization time (s)",
		}
		for _, m := range engineCounts {
			var pts []Point
			for _, size := range sizes {
				g, err := pegasus.Generate(cat, size)
				if err != nil {
					return nil, err
				}
				p, err := pegasusPlanner(g, m)
				if err != nil {
					return nil, err
				}
				d, err := medianPlanTime(p, g, reps)
				if err != nil {
					return nil, err
				}
				pts = append(pts, Point{X: float64(size), Y: d.Seconds()})
			}
			r.AddSeries(fmt.Sprintf("%d engines", m), pts...)
		}
		reports = append(reports, r)
	}
	return reports, nil
}
