package experiments

import (
	"fmt"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/provision"
)

// Fig17 reproduces Figure 17: execution time and execution cost vs input
// size for the Spark (MLlib) tf-idf operator under three provisioning
// strategies — static max resources, static min resources, and IReS's
// NSGA-II-driven elastic provisioning. Cost follows the paper's metric
// #VM * cores/VM * GB/VM * t. It returns the time report and the cost
// report (the figure's two panels).
func Fig17(seed int64) (*Report, *Report, error) {
	p, err := ires.NewPlatform(ires.Options{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	p.Profiler.Factories = fastFactories(seed)
	if err := p.RegisterOperator("tfidf_mllib", textDesc(ires.EngineSpark, "TF_IDF", "HDFS", "SequenceFile")); err != nil {
		return nil, nil, err
	}
	space := ires.ProfileSpace{
		Records:        []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000},
		BytesPerRecord: 5_000,
		// Cross nodes with memory so the models can separate the two
		// effects (a confounded grid makes provisioning mispick).
		Resources: []engine.Resources{
			{Nodes: 2, CoresPerN: 2, MemMBPerN: 1024},
			{Nodes: 2, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 4, CoresPerN: 2, MemMBPerN: 1024},
			{Nodes: 4, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 8, CoresPerN: 2, MemMBPerN: 1024},
			{Nodes: 8, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 1024},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
		},
	}
	if _, err := p.ProfileOperator("tfidf_mllib", space); err != nil {
		return nil, nil, err
	}

	timeR := &Report{
		ID: "FIG17-time", Title: "Provisioning: execution time vs input size",
		XLabel: "documents", YLabel: "execution time (s)",
	}
	costR := &Report{
		ID: "FIG17-cost", Title: "Provisioning: execution cost vs input size",
		XLabel: "documents", YLabel: "execution cost (#VM*cores*GB*t)",
	}
	sizes := []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

	maxRes := engine.Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}
	minRes := engine.Resources{Nodes: 2, CoresPerN: 2, MemMBPerN: 1024}

	runWith := func(docs int64, res engine.Resources) (float64, float64, error) {
		in := engine.Input{Records: docs, Bytes: docs * 5_000}
		run, err := p.Env.Execute(ires.EngineSpark, "TF_IDF", in, res, 0)
		if err != nil {
			return 0, 0, err
		}
		return run.ExecTimeSec, run.CostUnits, nil
	}

	type strat struct {
		label  string
		choose func(docs int64) (engine.Resources, error)
	}
	strategies := []strat{
		{"max resources", func(int64) (engine.Resources, error) { return maxRes, nil }},
		{"min resources", func(int64) (engine.Resources, error) { return minRes, nil }},
		{"IReS", func(docs int64) (engine.Resources, error) {
			best, err := p.ProvisionFront("tfidf_mllib", docs, docs*5_000, nil)
			if err != nil {
				return engine.Resources{}, err
			}
			// ProvisionFront sorts fastest-first; the platform policy is
			// MinTime, so take the head but prefer equal-time cheaper
			// options (epsilon 5%).
			pick := best[0]
			for _, o := range best {
				if o.EstTime <= pick.EstTime*1.05 && o.EstCost < pick.EstCost {
					pick = o
				}
			}
			return pick.Res, nil
		}},
	}
	for _, s := range strategies {
		var tPts, cPts []Point
		for _, docs := range sizes {
			res, err := s.choose(docs)
			if err != nil {
				return nil, nil, fmt.Errorf("fig17 %s at %d docs: %w", s.label, docs, err)
			}
			sec, cost, err := runWith(docs, res)
			if err != nil {
				tPts = append(tPts, Point{X: float64(docs), Failed: true})
				cPts = append(cPts, Point{X: float64(docs), Failed: true})
				continue
			}
			tPts = append(tPts, Point{X: float64(docs), Y: sec})
			cPts = append(cPts, Point{X: float64(docs), Y: cost})
		}
		timeR.AddSeries(s.label, tPts...)
		costR.AddSeries(s.label, cPts...)
	}
	_ = provision.MinTime // provisioning policy exercised through the platform
	return timeR, costR, nil
}
