package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/model"
	"github.com/asap-project/ires/internal/profiler"
)

// modelingOp describes one single-operator learning-curve experiment
// (Fig 16 uses Wordcount/MapReduce and Pagerank/Java).
type modelingOp struct {
	label  string
	opName string
	engine string
	alg    string
	// setup sampling ranges
	records   []int64
	nodes     []int
	params    map[string][]float64
	resSingle bool // centralized engine: one node only
}

func fig16Ops() []modelingOp {
	return []modelingOp{
		{
			label: "Wordcount MapReduce", opName: "wordcount_mr",
			engine: engine.EngineMapReduce, alg: engine.AlgWordcount,
			records: []int64{10_000, 30_000, 100_000, 300_000, 1_000_000},
			nodes:   []int{2, 4, 8, 16},
		},
		{
			label: "Pagerank Java", opName: "pagerank_java",
			engine: engine.EngineJava, alg: engine.AlgPagerank,
			records:   []int64{10_000, 100_000, 1_000_000, 5_000_000},
			nodes:     []int{1},
			params:    map[string][]float64{"iterations": {5, 10, 20}},
			resSingle: true,
		},
	}
}

// sampleSetup draws one uniform setup from the operator's parameter sets.
func (m modelingOp) sampleSetup(rng *rand.Rand) (engine.Input, engine.Resources) {
	rec := m.records[rng.Intn(len(m.records))]
	in := engine.Input{Records: rec, Bytes: rec * 1_000, Params: map[string]float64{}}
	for name, vals := range m.params {
		in.Params[name] = vals[rng.Intn(len(vals))]
	}
	res := engine.Resources{Nodes: m.nodes[rng.Intn(len(m.nodes))], CoresPerN: 2, MemMBPerN: 3456}
	return in, res
}

// relErrOn computes the mean relative execution-time estimation error over
// a probe set against engine ground truth. Unestimable probes count as
// error 1 (no knowledge).
func relErrOn(p *profiler.Profiler, env *engine.Environment, m modelingOp, probes [][2]interface{}) float64 {
	total := 0.0
	for _, pr := range probes {
		in := pr[0].(engine.Input)
		res := pr[1].(engine.Resources)
		truth, err := env.GroundTruthSec(m.engine, m.alg, in, res)
		if err != nil {
			continue
		}
		feats := map[string]float64{
			"records": float64(in.Records), "bytes": float64(in.Bytes),
			"nodes": float64(res.Nodes), "cores": float64(res.CoresPerN), "memoryMB": float64(res.MemMBPerN),
		}
		for k, v := range in.Params {
			feats[k] = v
		}
		est, ok := p.Estimate(m.opName, profiler.TargetExecTime, feats)
		if !ok {
			total += 1.0
			continue
		}
		total += math.Abs(est-truth) / truth
	}
	return total / float64(len(probes))
}

func fig16Factories(seed int64) []model.Factory {
	return []model.Factory{
		func() model.Model { return model.NewLinear() },
		func() model.Model { return model.NewKNN(3) },
		func() model.Model { return model.NewTree(8, 2) },
		func() model.Model { return model.NewBagging(8, seed) },
	}
}

// Fig16a reproduces Figure 16a: relative execution-time estimation error
// vs number of observed executions under normal operation, for
// Wordcount/MapReduce and Pagerank/Java.
func Fig16a(runs int, seed int64) (*Report, error) {
	if runs <= 0 {
		runs = 80
	}
	r := &Report{
		ID:     "FIG16a",
		Title:  "Relative estimation error vs executions (online refinement)",
		XLabel: "executions",
		YLabel: "relative estimation error",
	}
	for _, m := range fig16Ops() {
		env := engine.NewDefaultEnvironment(seed)
		p := profiler.New(env, seed)
		p.Factories = fig16Factories(seed)
		p.ReselectEvery = 10
		rng := rand.New(rand.NewSource(seed + 7))
		probes := probeSet(m, seed+99, 25)

		var pts []Point
		for i := 1; i <= runs; i++ {
			in, res := m.sampleSetup(rng)
			run, err := env.Execute(m.engine, m.alg, in, res, 0)
			if err != nil {
				return nil, fmt.Errorf("fig16a %s run %d: %w", m.label, i, err)
			}
			if err := p.Observe(m.opName, run); err != nil {
				return nil, err
			}
			if i%5 == 0 || i == 1 {
				pts = append(pts, Point{X: float64(i), Y: relErrOn(p, env, m, probes)})
			}
		}
		r.AddSeries(m.label, pts...)
	}
	return r, nil
}

// Fig16b reproduces Figure 16b: the Wordcount/MapReduce error trajectory
// when the cluster's HDDs are swapped for SSDs after changeAt executions —
// the error spikes, then the refined models re-converge without being
// discarded.
func Fig16b(runs, changeAt int, seed int64) (*Report, error) {
	if runs <= 0 {
		runs = 180
	}
	if changeAt <= 0 {
		changeAt = 100
	}
	m := fig16Ops()[0] // Wordcount MapReduce
	env := engine.NewDefaultEnvironment(seed)
	p := profiler.New(env, seed)
	p.Factories = fig16Factories(seed)
	p.ReselectEvery = 10
	rng := rand.New(rand.NewSource(seed + 7))
	probes := probeSet(m, seed+99, 25)

	r := &Report{
		ID:     "FIG16b",
		Title:  fmt.Sprintf("Estimation error with an infrastructure change after %d executions", changeAt),
		XLabel: "executions",
		YLabel: "relative estimation error",
	}
	var pts []Point
	for i := 1; i <= runs; i++ {
		if i == changeAt+1 {
			infra := env.Infrastructure()
			infra.DiskFactor = 0.3 // HDD -> SSD upgrade
			env.SetInfrastructure(infra)
			r.Note("infrastructure change (HDD->SSD) applied after execution %d", changeAt)
		}
		in, res := m.sampleSetup(rng)
		run, err := env.Execute(m.engine, m.alg, in, res, 0)
		if err != nil {
			return nil, err
		}
		if err := p.Observe(m.opName, run); err != nil {
			return nil, err
		}
		if i%5 == 0 || i == 1 {
			pts = append(pts, Point{X: float64(i), Y: relErrOn(p, env, m, probes)})
		}
	}
	r.AddSeries(m.label, pts...)
	return r, nil
}

func probeSet(m modelingOp, seed int64, n int) [][2]interface{} {
	rng := rand.New(rand.NewSource(seed))
	probes := make([][2]interface{}, n)
	for i := range probes {
		in, res := m.sampleSetup(rng)
		probes[i] = [2]interface{}{in, res}
	}
	return probes
}
